# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_fsm[1]_include.cmake")
include("/root/repo/build/tests/test_enumerator[1]_include.cmake")
include("/root/repo/build/tests/test_tour[1]_include.cmake")
include("/root/repo/build/tests/test_postman[1]_include.cmake")
include("/root/repo/build/tests/test_pp_isa[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_ref_sim[1]_include.cmake")
include("/root/repo/build/tests/test_pp_control[1]_include.cmake")
include("/root/repo/build/tests/test_pp_fsm_model[1]_include.cmake")
include("/root/repo/build/tests/test_pp_core[1]_include.cmake")
include("/root/repo/build/tests/test_vecgen[1]_include.cmake")
include("/root/repo/build/tests/test_player[1]_include.cmake")
include("/root/repo/build/tests/test_hdl[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_mutations[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_config_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_graph_extra[1]_include.cmake")
include("/root/repo/build/tests/test_hdl_designs[1]_include.cmake")

# Empty dependencies file for test_postman.
# This may be replaced when dependencies are built.

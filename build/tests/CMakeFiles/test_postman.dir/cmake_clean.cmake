file(REMOVE_RECURSE
  "CMakeFiles/test_postman.dir/test_postman.cc.o"
  "CMakeFiles/test_postman.dir/test_postman.cc.o.d"
  "test_postman"
  "test_postman.pdb"
  "test_postman[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_postman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_vecgen.dir/test_vecgen.cc.o"
  "CMakeFiles/test_vecgen.dir/test_vecgen.cc.o.d"
  "test_vecgen"
  "test_vecgen.pdb"
  "test_vecgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vecgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

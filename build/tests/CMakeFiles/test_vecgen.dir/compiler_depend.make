# Empty compiler generated dependencies file for test_vecgen.
# This may be replaced when dependencies are built.

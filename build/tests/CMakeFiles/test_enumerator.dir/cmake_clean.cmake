file(REMOVE_RECURSE
  "CMakeFiles/test_enumerator.dir/test_enumerator.cc.o"
  "CMakeFiles/test_enumerator.dir/test_enumerator.cc.o.d"
  "test_enumerator"
  "test_enumerator.pdb"
  "test_enumerator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enumerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

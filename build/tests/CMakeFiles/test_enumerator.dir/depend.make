# Empty dependencies file for test_enumerator.
# This may be replaced when dependencies are built.

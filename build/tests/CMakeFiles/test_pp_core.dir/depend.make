# Empty dependencies file for test_pp_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_pp_core.dir/test_pp_core.cc.o"
  "CMakeFiles/test_pp_core.dir/test_pp_core.cc.o.d"
  "test_pp_core"
  "test_pp_core.pdb"
  "test_pp_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

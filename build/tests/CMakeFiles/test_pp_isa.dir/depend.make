# Empty dependencies file for test_pp_isa.
# This may be replaced when dependencies are built.

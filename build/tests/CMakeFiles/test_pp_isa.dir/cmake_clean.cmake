file(REMOVE_RECURSE
  "CMakeFiles/test_pp_isa.dir/test_pp_isa.cc.o"
  "CMakeFiles/test_pp_isa.dir/test_pp_isa.cc.o.d"
  "test_pp_isa"
  "test_pp_isa.pdb"
  "test_pp_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

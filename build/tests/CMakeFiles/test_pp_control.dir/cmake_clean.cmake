file(REMOVE_RECURSE
  "CMakeFiles/test_pp_control.dir/test_pp_control.cc.o"
  "CMakeFiles/test_pp_control.dir/test_pp_control.cc.o.d"
  "test_pp_control"
  "test_pp_control.pdb"
  "test_pp_control[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pp_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

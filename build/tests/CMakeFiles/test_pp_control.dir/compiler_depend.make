# Empty compiler generated dependencies file for test_pp_control.
# This may be replaced when dependencies are built.

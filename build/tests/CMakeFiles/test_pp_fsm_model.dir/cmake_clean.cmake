file(REMOVE_RECURSE
  "CMakeFiles/test_pp_fsm_model.dir/test_pp_fsm_model.cc.o"
  "CMakeFiles/test_pp_fsm_model.dir/test_pp_fsm_model.cc.o.d"
  "test_pp_fsm_model"
  "test_pp_fsm_model.pdb"
  "test_pp_fsm_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pp_fsm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

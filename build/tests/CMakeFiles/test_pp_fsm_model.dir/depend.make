# Empty dependencies file for test_pp_fsm_model.
# This may be replaced when dependencies are built.

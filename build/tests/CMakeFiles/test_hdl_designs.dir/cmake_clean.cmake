file(REMOVE_RECURSE
  "CMakeFiles/test_hdl_designs.dir/test_hdl_designs.cc.o"
  "CMakeFiles/test_hdl_designs.dir/test_hdl_designs.cc.o.d"
  "test_hdl_designs"
  "test_hdl_designs.pdb"
  "test_hdl_designs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdl_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_hdl_designs.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_graph_extra.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_graph_extra.dir/test_graph_extra.cc.o"
  "CMakeFiles/test_graph_extra.dir/test_graph_extra.cc.o.d"
  "test_graph_extra"
  "test_graph_extra.pdb"
  "test_graph_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

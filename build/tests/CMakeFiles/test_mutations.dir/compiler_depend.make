# Empty compiler generated dependencies file for test_mutations.
# This may be replaced when dependencies are built.

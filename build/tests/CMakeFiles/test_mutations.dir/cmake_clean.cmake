file(REMOVE_RECURSE
  "CMakeFiles/test_mutations.dir/test_mutations.cc.o"
  "CMakeFiles/test_mutations.dir/test_mutations.cc.o.d"
  "test_mutations"
  "test_mutations.pdb"
  "test_mutations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mutations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_ref_sim.dir/test_ref_sim.cc.o"
  "CMakeFiles/test_ref_sim.dir/test_ref_sim.cc.o.d"
  "test_ref_sim"
  "test_ref_sim.pdb"
  "test_ref_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ref_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_ref_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_bug_latency"
  "../bench/bench_bug_latency.pdb"
  "CMakeFiles/bench_bug_latency.dir/bench_bug_latency.cc.o"
  "CMakeFiles/bench_bug_latency.dir/bench_bug_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bug_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_bug_latency.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_random_vs_tour.
# This may be replaced when dependencies are built.

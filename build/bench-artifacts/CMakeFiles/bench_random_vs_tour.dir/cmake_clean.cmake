file(REMOVE_RECURSE
  "../bench/bench_random_vs_tour"
  "../bench/bench_random_vs_tour.pdb"
  "CMakeFiles/bench_random_vs_tour.dir/bench_random_vs_tour.cc.o"
  "CMakeFiles/bench_random_vs_tour.dir/bench_random_vs_tour.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_random_vs_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_tour_ablation"
  "../bench/bench_tour_ablation.pdb"
  "CMakeFiles/bench_tour_ablation.dir/bench_tour_ablation.cc.o"
  "CMakeFiles/bench_tour_ablation.dir/bench_tour_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tour_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

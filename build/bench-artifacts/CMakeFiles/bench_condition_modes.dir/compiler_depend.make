# Empty compiler generated dependencies file for bench_condition_modes.
# This may be replaced when dependencies are built.

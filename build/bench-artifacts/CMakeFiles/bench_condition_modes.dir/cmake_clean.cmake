file(REMOVE_RECURSE
  "../bench/bench_condition_modes"
  "../bench/bench_condition_modes.pdb"
  "CMakeFiles/bench_condition_modes.dir/bench_condition_modes.cc.o"
  "CMakeFiles/bench_condition_modes.dir/bench_condition_modes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_condition_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_mutation_sweep.
# This may be replaced when dependencies are built.

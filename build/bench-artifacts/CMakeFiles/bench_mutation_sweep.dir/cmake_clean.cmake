file(REMOVE_RECURSE
  "../bench/bench_mutation_sweep"
  "../bench/bench_mutation_sweep.pdb"
  "CMakeFiles/bench_mutation_sweep.dir/bench_mutation_sweep.cc.o"
  "CMakeFiles/bench_mutation_sweep.dir/bench_mutation_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mutation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

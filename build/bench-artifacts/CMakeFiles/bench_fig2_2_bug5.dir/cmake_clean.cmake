file(REMOVE_RECURSE
  "../bench/bench_fig2_2_bug5"
  "../bench/bench_fig2_2_bug5.pdb"
  "CMakeFiles/bench_fig2_2_bug5.dir/bench_fig2_2_bug5.cc.o"
  "CMakeFiles/bench_fig2_2_bug5.dir/bench_fig2_2_bug5.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_2_bug5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

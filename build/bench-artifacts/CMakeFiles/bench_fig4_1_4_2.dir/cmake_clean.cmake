file(REMOVE_RECURSE
  "../bench/bench_fig4_1_4_2"
  "../bench/bench_fig4_1_4_2.pdb"
  "CMakeFiles/bench_fig4_1_4_2.dir/bench_fig4_1_4_2.cc.o"
  "CMakeFiles/bench_fig4_1_4_2.dir/bench_fig4_1_4_2.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_1_4_2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

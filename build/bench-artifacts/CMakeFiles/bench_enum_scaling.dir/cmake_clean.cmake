file(REMOVE_RECURSE
  "../bench/bench_enum_scaling"
  "../bench/bench_enum_scaling.pdb"
  "CMakeFiles/bench_enum_scaling.dir/bench_enum_scaling.cc.o"
  "CMakeFiles/bench_enum_scaling.dir/bench_enum_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enum_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

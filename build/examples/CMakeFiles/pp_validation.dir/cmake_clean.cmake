file(REMOVE_RECURSE
  "CMakeFiles/pp_validation.dir/pp_validation.cpp.o"
  "CMakeFiles/pp_validation.dir/pp_validation.cpp.o.d"
  "pp_validation"
  "pp_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

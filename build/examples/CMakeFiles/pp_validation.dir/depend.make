# Empty dependencies file for pp_validation.
# This may be replaced when dependencies are built.

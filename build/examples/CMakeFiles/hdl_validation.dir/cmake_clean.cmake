file(REMOVE_RECURSE
  "CMakeFiles/hdl_validation.dir/hdl_validation.cpp.o"
  "CMakeFiles/hdl_validation.dir/hdl_validation.cpp.o.d"
  "hdl_validation"
  "hdl_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdl_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for hdl_validation.
# This may be replaced when dependencies are built.

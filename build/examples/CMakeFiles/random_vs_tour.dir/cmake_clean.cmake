file(REMOVE_RECURSE
  "CMakeFiles/random_vs_tour.dir/random_vs_tour.cpp.o"
  "CMakeFiles/random_vs_tour.dir/random_vs_tour.cpp.o.d"
  "random_vs_tour"
  "random_vs_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_vs_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for random_vs_tour.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/archval_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hdl/CMakeFiles/archval_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/archval_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/vecgen/CMakeFiles/archval_vecgen.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/archval_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/pp/CMakeFiles/archval_pp.dir/DependInfo.cmake"
  "/root/repo/build/src/murphi/CMakeFiles/archval_murphi.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/archval_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/archval_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/archval_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

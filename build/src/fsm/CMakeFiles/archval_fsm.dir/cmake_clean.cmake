file(REMOVE_RECURSE
  "CMakeFiles/archval_fsm.dir/built_model.cc.o"
  "CMakeFiles/archval_fsm.dir/built_model.cc.o.d"
  "CMakeFiles/archval_fsm.dir/model.cc.o"
  "CMakeFiles/archval_fsm.dir/model.cc.o.d"
  "libarchval_fsm.a"
  "libarchval_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archval_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for archval_fsm.
# This may be replaced when dependencies are built.

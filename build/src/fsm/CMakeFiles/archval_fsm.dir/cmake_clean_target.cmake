file(REMOVE_RECURSE
  "libarchval_fsm.a"
)

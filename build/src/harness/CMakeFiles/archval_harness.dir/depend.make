# Empty dependencies file for archval_harness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libarchval_harness.a"
)

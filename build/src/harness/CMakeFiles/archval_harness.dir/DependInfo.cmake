
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/baselines.cc" "src/harness/CMakeFiles/archval_harness.dir/baselines.cc.o" "gcc" "src/harness/CMakeFiles/archval_harness.dir/baselines.cc.o.d"
  "/root/repo/src/harness/bug5_scenario.cc" "src/harness/CMakeFiles/archval_harness.dir/bug5_scenario.cc.o" "gcc" "src/harness/CMakeFiles/archval_harness.dir/bug5_scenario.cc.o.d"
  "/root/repo/src/harness/bug_hunt.cc" "src/harness/CMakeFiles/archval_harness.dir/bug_hunt.cc.o" "gcc" "src/harness/CMakeFiles/archval_harness.dir/bug_hunt.cc.o.d"
  "/root/repo/src/harness/coverage.cc" "src/harness/CMakeFiles/archval_harness.dir/coverage.cc.o" "gcc" "src/harness/CMakeFiles/archval_harness.dir/coverage.cc.o.d"
  "/root/repo/src/harness/vector_player.cc" "src/harness/CMakeFiles/archval_harness.dir/vector_player.cc.o" "gcc" "src/harness/CMakeFiles/archval_harness.dir/vector_player.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vecgen/CMakeFiles/archval_vecgen.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/archval_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/pp/CMakeFiles/archval_pp.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/archval_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/archval_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/archval_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

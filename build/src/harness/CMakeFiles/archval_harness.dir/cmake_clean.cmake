file(REMOVE_RECURSE
  "CMakeFiles/archval_harness.dir/baselines.cc.o"
  "CMakeFiles/archval_harness.dir/baselines.cc.o.d"
  "CMakeFiles/archval_harness.dir/bug5_scenario.cc.o"
  "CMakeFiles/archval_harness.dir/bug5_scenario.cc.o.d"
  "CMakeFiles/archval_harness.dir/bug_hunt.cc.o"
  "CMakeFiles/archval_harness.dir/bug_hunt.cc.o.d"
  "CMakeFiles/archval_harness.dir/coverage.cc.o"
  "CMakeFiles/archval_harness.dir/coverage.cc.o.d"
  "CMakeFiles/archval_harness.dir/vector_player.cc.o"
  "CMakeFiles/archval_harness.dir/vector_player.cc.o.d"
  "libarchval_harness.a"
  "libarchval_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archval_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for archval_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libarchval_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/archval_core.dir/validation_flow.cc.o"
  "CMakeFiles/archval_core.dir/validation_flow.cc.o.d"
  "libarchval_core.a"
  "libarchval_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archval_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libarchval_rtl.a"
)

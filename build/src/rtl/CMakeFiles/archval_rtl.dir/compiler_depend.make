# Empty compiler generated dependencies file for archval_rtl.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/archval_rtl.dir/faults.cc.o"
  "CMakeFiles/archval_rtl.dir/faults.cc.o.d"
  "CMakeFiles/archval_rtl.dir/mutations.cc.o"
  "CMakeFiles/archval_rtl.dir/mutations.cc.o.d"
  "CMakeFiles/archval_rtl.dir/pp_config.cc.o"
  "CMakeFiles/archval_rtl.dir/pp_config.cc.o.d"
  "CMakeFiles/archval_rtl.dir/pp_control.cc.o"
  "CMakeFiles/archval_rtl.dir/pp_control.cc.o.d"
  "CMakeFiles/archval_rtl.dir/pp_core.cc.o"
  "CMakeFiles/archval_rtl.dir/pp_core.cc.o.d"
  "CMakeFiles/archval_rtl.dir/pp_fsm_model.cc.o"
  "CMakeFiles/archval_rtl.dir/pp_fsm_model.cc.o.d"
  "libarchval_rtl.a"
  "libarchval_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archval_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

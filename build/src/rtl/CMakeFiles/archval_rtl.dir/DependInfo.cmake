
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/faults.cc" "src/rtl/CMakeFiles/archval_rtl.dir/faults.cc.o" "gcc" "src/rtl/CMakeFiles/archval_rtl.dir/faults.cc.o.d"
  "/root/repo/src/rtl/mutations.cc" "src/rtl/CMakeFiles/archval_rtl.dir/mutations.cc.o" "gcc" "src/rtl/CMakeFiles/archval_rtl.dir/mutations.cc.o.d"
  "/root/repo/src/rtl/pp_config.cc" "src/rtl/CMakeFiles/archval_rtl.dir/pp_config.cc.o" "gcc" "src/rtl/CMakeFiles/archval_rtl.dir/pp_config.cc.o.d"
  "/root/repo/src/rtl/pp_control.cc" "src/rtl/CMakeFiles/archval_rtl.dir/pp_control.cc.o" "gcc" "src/rtl/CMakeFiles/archval_rtl.dir/pp_control.cc.o.d"
  "/root/repo/src/rtl/pp_core.cc" "src/rtl/CMakeFiles/archval_rtl.dir/pp_core.cc.o" "gcc" "src/rtl/CMakeFiles/archval_rtl.dir/pp_core.cc.o.d"
  "/root/repo/src/rtl/pp_fsm_model.cc" "src/rtl/CMakeFiles/archval_rtl.dir/pp_fsm_model.cc.o" "gcc" "src/rtl/CMakeFiles/archval_rtl.dir/pp_fsm_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pp/CMakeFiles/archval_pp.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/archval_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/archval_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for archval_support.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/archval_support.dir/bitvec.cc.o"
  "CMakeFiles/archval_support.dir/bitvec.cc.o.d"
  "CMakeFiles/archval_support.dir/logging.cc.o"
  "CMakeFiles/archval_support.dir/logging.cc.o.d"
  "CMakeFiles/archval_support.dir/memusage.cc.o"
  "CMakeFiles/archval_support.dir/memusage.cc.o.d"
  "CMakeFiles/archval_support.dir/rng.cc.o"
  "CMakeFiles/archval_support.dir/rng.cc.o.d"
  "CMakeFiles/archval_support.dir/stats.cc.o"
  "CMakeFiles/archval_support.dir/stats.cc.o.d"
  "CMakeFiles/archval_support.dir/status.cc.o"
  "CMakeFiles/archval_support.dir/status.cc.o.d"
  "CMakeFiles/archval_support.dir/strings.cc.o"
  "CMakeFiles/archval_support.dir/strings.cc.o.d"
  "libarchval_support.a"
  "libarchval_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archval_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

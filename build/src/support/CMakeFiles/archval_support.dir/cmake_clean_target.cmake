file(REMOVE_RECURSE
  "libarchval_support.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/archval_pp.dir/assembler.cc.o"
  "CMakeFiles/archval_pp.dir/assembler.cc.o.d"
  "CMakeFiles/archval_pp.dir/isa.cc.o"
  "CMakeFiles/archval_pp.dir/isa.cc.o.d"
  "CMakeFiles/archval_pp.dir/ref_sim.cc.o"
  "CMakeFiles/archval_pp.dir/ref_sim.cc.o.d"
  "libarchval_pp.a"
  "libarchval_pp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archval_pp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

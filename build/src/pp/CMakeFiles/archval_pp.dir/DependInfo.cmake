
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pp/assembler.cc" "src/pp/CMakeFiles/archval_pp.dir/assembler.cc.o" "gcc" "src/pp/CMakeFiles/archval_pp.dir/assembler.cc.o.d"
  "/root/repo/src/pp/isa.cc" "src/pp/CMakeFiles/archval_pp.dir/isa.cc.o" "gcc" "src/pp/CMakeFiles/archval_pp.dir/isa.cc.o.d"
  "/root/repo/src/pp/ref_sim.cc" "src/pp/CMakeFiles/archval_pp.dir/ref_sim.cc.o" "gcc" "src/pp/CMakeFiles/archval_pp.dir/ref_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/archval_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libarchval_pp.a"
)

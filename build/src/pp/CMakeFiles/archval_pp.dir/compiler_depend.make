# Empty compiler generated dependencies file for archval_pp.
# This may be replaced when dependencies are built.

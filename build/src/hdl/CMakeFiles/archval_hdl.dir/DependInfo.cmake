
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdl/ast.cc" "src/hdl/CMakeFiles/archval_hdl.dir/ast.cc.o" "gcc" "src/hdl/CMakeFiles/archval_hdl.dir/ast.cc.o.d"
  "/root/repo/src/hdl/elaborate.cc" "src/hdl/CMakeFiles/archval_hdl.dir/elaborate.cc.o" "gcc" "src/hdl/CMakeFiles/archval_hdl.dir/elaborate.cc.o.d"
  "/root/repo/src/hdl/lexer.cc" "src/hdl/CMakeFiles/archval_hdl.dir/lexer.cc.o" "gcc" "src/hdl/CMakeFiles/archval_hdl.dir/lexer.cc.o.d"
  "/root/repo/src/hdl/parser.cc" "src/hdl/CMakeFiles/archval_hdl.dir/parser.cc.o" "gcc" "src/hdl/CMakeFiles/archval_hdl.dir/parser.cc.o.d"
  "/root/repo/src/hdl/translate.cc" "src/hdl/CMakeFiles/archval_hdl.dir/translate.cc.o" "gcc" "src/hdl/CMakeFiles/archval_hdl.dir/translate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsm/CMakeFiles/archval_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/archval_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

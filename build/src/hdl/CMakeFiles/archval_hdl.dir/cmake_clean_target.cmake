file(REMOVE_RECURSE
  "libarchval_hdl.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/archval_hdl.dir/ast.cc.o"
  "CMakeFiles/archval_hdl.dir/ast.cc.o.d"
  "CMakeFiles/archval_hdl.dir/elaborate.cc.o"
  "CMakeFiles/archval_hdl.dir/elaborate.cc.o.d"
  "CMakeFiles/archval_hdl.dir/lexer.cc.o"
  "CMakeFiles/archval_hdl.dir/lexer.cc.o.d"
  "CMakeFiles/archval_hdl.dir/parser.cc.o"
  "CMakeFiles/archval_hdl.dir/parser.cc.o.d"
  "CMakeFiles/archval_hdl.dir/translate.cc.o"
  "CMakeFiles/archval_hdl.dir/translate.cc.o.d"
  "libarchval_hdl.a"
  "libarchval_hdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archval_hdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

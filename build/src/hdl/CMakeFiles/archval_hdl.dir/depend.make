# Empty dependencies file for archval_hdl.
# This may be replaced when dependencies are built.

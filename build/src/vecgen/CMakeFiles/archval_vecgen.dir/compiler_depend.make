# Empty compiler generated dependencies file for archval_vecgen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/archval_vecgen.dir/trace_io.cc.o"
  "CMakeFiles/archval_vecgen.dir/trace_io.cc.o.d"
  "CMakeFiles/archval_vecgen.dir/vector_gen.cc.o"
  "CMakeFiles/archval_vecgen.dir/vector_gen.cc.o.d"
  "libarchval_vecgen.a"
  "libarchval_vecgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archval_vecgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libarchval_vecgen.a"
)

# Empty dependencies file for archval_murphi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/archval_murphi.dir/enumerator.cc.o"
  "CMakeFiles/archval_murphi.dir/enumerator.cc.o.d"
  "libarchval_murphi.a"
  "libarchval_murphi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archval_murphi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libarchval_murphi.a"
)

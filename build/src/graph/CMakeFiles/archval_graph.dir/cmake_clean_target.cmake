file(REMOVE_RECURSE
  "libarchval_graph.a"
)

# Empty compiler generated dependencies file for archval_graph.
# This may be replaced when dependencies are built.

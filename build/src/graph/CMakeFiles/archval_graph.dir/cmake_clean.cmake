file(REMOVE_RECURSE
  "CMakeFiles/archval_graph.dir/postman.cc.o"
  "CMakeFiles/archval_graph.dir/postman.cc.o.d"
  "CMakeFiles/archval_graph.dir/state_graph.cc.o"
  "CMakeFiles/archval_graph.dir/state_graph.cc.o.d"
  "CMakeFiles/archval_graph.dir/tour.cc.o"
  "CMakeFiles/archval_graph.dir/tour.cc.o.d"
  "libarchval_graph.a"
  "libarchval_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archval_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/postman.cc" "src/graph/CMakeFiles/archval_graph.dir/postman.cc.o" "gcc" "src/graph/CMakeFiles/archval_graph.dir/postman.cc.o.d"
  "/root/repo/src/graph/state_graph.cc" "src/graph/CMakeFiles/archval_graph.dir/state_graph.cc.o" "gcc" "src/graph/CMakeFiles/archval_graph.dir/state_graph.cc.o.d"
  "/root/repo/src/graph/tour.cc" "src/graph/CMakeFiles/archval_graph.dir/tour.cc.o" "gcc" "src/graph/CMakeFiles/archval_graph.dir/tour.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/archval_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

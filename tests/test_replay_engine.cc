/**
 * @file
 * Checkpointed replay tests (ctest label `replay`): value-semantics
 * snapshots must be bit-exact against fresh-from-reset replay at
 * every cycle, and ReplayEngine must return byte-identical
 * PlayResults to the sequential VectorPlayer for any worker count
 * and any checkpoint-cache budget — while actually avoiding
 * simulated cycles on prefix-sharing batches.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "harness/replay_engine.hh"
#include "harness/vector_player.hh"
#include "murphi/enumerator.hh"
#include "support/status.hh"

namespace archval::harness
{
namespace
{

using rtl::BugId;
using rtl::BugSet;
using rtl::PpConfig;
using rtl::PpFsmModel;

class ReplayFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        config_ = new PpConfig(PpConfig::smallPreset());
        model_ = new PpFsmModel(*config_);
        murphi::Enumerator enumerator(*model_);
        graph_ = new graph::StateGraph(enumerator.runOrThrow());
        // Split the tour into many reset-rooted traces (the paper's
        // 10k-instruction limit, scaled down): prefix sharing only
        // exists across traces, and the round-trip test is O(n^2) in
        // the shortest trace's cycle count.
        graph::TourOptions tour_options;
        tour_options.maxInstructionsPerTrace = 1'000;
        graph::TourGenerator tour_gen(*graph_, tour_options);
        tours_ = new std::vector<graph::Trace>(tour_gen.run());
        vecgen::VectorGenerator generator(*model_, 42);
        traces_ = new std::vector<vecgen::TestTrace>(
            generator.generateAll(*graph_, *tours_));
    }

    static void
    TearDownTestSuite()
    {
        delete traces_;
        delete tours_;
        delete graph_;
        delete model_;
        delete config_;
        traces_ = nullptr;
        tours_ = nullptr;
        graph_ = nullptr;
        model_ = nullptr;
        config_ = nullptr;
    }

    static PpConfig *config_;
    static PpFsmModel *model_;
    static graph::StateGraph *graph_;
    static std::vector<graph::Trace> *tours_;
    static std::vector<vecgen::TestTrace> *traces_;
};

PpConfig *ReplayFixture::config_ = nullptr;
PpFsmModel *ReplayFixture::model_ = nullptr;
graph::StateGraph *ReplayFixture::graph_ = nullptr;
std::vector<graph::Trace> *ReplayFixture::tours_ = nullptr;
std::vector<vecgen::TestTrace> *ReplayFixture::traces_ = nullptr;

/** Field-by-field PlayResult equality with a readable message. */
void
expectSameResult(const PlayResult &expected, const PlayResult &actual,
                 const std::string &what)
{
    EXPECT_EQ(expected.diverged, actual.diverged) << what;
    EXPECT_EQ(expected.diff, actual.diff) << what;
    EXPECT_EQ(expected.cycles, actual.cycles) << what;
    EXPECT_EQ(expected.instructions, actual.instructions) << what;
    EXPECT_EQ(expected.lockstepErrors, actual.lockstepErrors) << what;
    EXPECT_EQ(expected.drained, actual.drained) << what;
    EXPECT_EQ(expected.skipped, actual.skipped) << what;
}

TEST_F(ReplayFixture, PpCoreSnapshotRoundTripEqualsFreshReplay)
{
    // For the shortest tour trace: checkpoint a run at *every* cycle,
    // resume each checkpoint in a separate core, and require the
    // resumed run's outcome to be bit-identical to the uninterrupted
    // one — with and without an injected bug.
    const vecgen::TestTrace &trace = *std::min_element(
        traces_->begin(), traces_->end(),
        [](const auto &a, const auto &b) {
            return a.cycles.size() < b.cycles.size();
        });
    ASSERT_FALSE(trace.cycles.empty());

    std::vector<BugSet> bug_sets(2);
    bug_sets[1].set(static_cast<size_t>(BugId::Bug3ConflictAddr));

    for (const BugSet &bugs : bug_sets) {
        VectorPlayer player(*config_);
        PlayResult fresh = player.play(trace, bugs);

        rtl::PpCore walker(*config_, rtl::CoreMode::Vector);
        VectorPlayer::primeCore(walker, trace, bugs);
        for (size_t c = 0; c <= trace.cycles.size(); ++c) {
            rtl::PpCore::Snapshot snap = walker.snapshot();
            EXPECT_EQ(snap.cycles(), c);
            EXPECT_GT(snap.bytes(), 0u);

            rtl::PpCore resumed(*config_, rtl::CoreMode::Vector);
            VectorPlayer::primeCore(resumed, trace, bugs);
            resumed.restore(snap);
            VectorPlayer::drive(resumed, trace, c,
                                trace.cycles.size());
            PlayResult result =
                VectorPlayer::finish(*config_, resumed, trace);
            expectSameResult(
                fresh, result,
                "checkpoint at cycle " + std::to_string(c) +
                    (bugs.any() ? " (bug3)" : " (bug-free)"));

            if (c < trace.cycles.size())
                VectorPlayer::drive(walker, trace, c, c + 1);
        }
    }
}

TEST_F(ReplayFixture, PpCoreRebindRejectsForeignPrefix)
{
    const vecgen::TestTrace &trace = traces_->front();
    ASSERT_GE(trace.cycles.size(), 8u);
    rtl::PpCore core(*config_, rtl::CoreMode::Vector);
    VectorPlayer::primeCore(core, trace, BugSet{});
    VectorPlayer::drive(core, trace, 0, trace.cycles.size());
    ASSERT_GT(core.streamConsumed(), 0u);

    // Rebinding to a stream that agrees on the consumed prefix is
    // fine (longer suffix allowed)...
    std::vector<uint32_t> extended = trace.fetchStream;
    extended.push_back(0x12345678);
    core.rebindStream(extended);

    // ...but a mutated consumed word must be rejected.
    std::vector<uint32_t> corrupt = trace.fetchStream;
    corrupt[0] ^= 1;
    EXPECT_THROW(core.rebindStream(corrupt), FatalError);
}

TEST_F(ReplayFixture, RefSimSnapshotRoundTrip)
{
    const vecgen::TestTrace &trace = traces_->front();
    pp::RefSim fresh(config_->machine);
    fresh.setStreamMode(true);
    fresh.loadProgram(trace.retiredStream);
    fresh.setInbox(trace.inbox);

    // Snapshot halfway, run both the original and a restored copy to
    // completion, and compare everything observable.
    uint64_t half = trace.retiredStream.size() / 2;
    fresh.run(half);
    pp::RefSim::Snapshot snap = fresh.snapshot();
    EXPECT_EQ(snap.instructionsRetired(), fresh.instructionsRetired());
    EXPECT_GT(snap.bytes(), 0u);
    fresh.run(trace.retiredStream.size() + 8);

    pp::RefSim resumed(config_->machine);
    resumed.restore(snap);
    resumed.run(trace.retiredStream.size() + 8);

    EXPECT_EQ(fresh.archState(), resumed.archState());
    EXPECT_EQ(fresh.pc(), resumed.pc());
    EXPECT_EQ(fresh.instructionsRetired(),
              resumed.instructionsRetired());
    EXPECT_EQ(fresh.stopReason(), resumed.stopReason());
}

TEST_F(ReplayFixture, EngineMatchesSequentialPlayerEverywhere)
{
    // The acceptance matrix: worker counts {1,2,8} x cache budgets
    // {0 (disabled), small (forces eviction), unbounded}, bug-free
    // and with a bug injected. Every cell must reproduce the
    // sequential player byte-for-byte.
    std::vector<BugSet> bug_sets(2);
    bug_sets[1].set(static_cast<size_t>(BugId::Bug5MembusGlitch));

    VectorPlayer player(*config_);
    std::vector<PlayResult> expected;
    for (const BugSet &bugs : bug_sets)
        for (const auto &trace : *traces_)
            expected.push_back(player.play(trace, bugs));

    size_t one_snapshot =
        rtl::PpCore(*config_, rtl::CoreMode::Vector).snapshotBytes();
    const size_t budgets[] = {0, 2 * one_snapshot, size_t{1} << 40};
    const unsigned workers[] = {1, 2, 8};

    for (size_t budget : budgets) {
        for (unsigned nw : workers) {
            ReplayOptions options;
            options.numThreads = nw;
            options.checkpointBudgetBytes = budget;
            ReplayEngine engine(*config_, options);
            std::vector<PlayResult> actual =
                engine.playAll(*traces_, bug_sets);
            ASSERT_EQ(actual.size(), expected.size());
            for (size_t i = 0; i < expected.size(); ++i) {
                expectSameResult(
                    expected[i], actual[i],
                    "job " + std::to_string(i) + " workers=" +
                        std::to_string(nw) + " budget=" +
                        std::to_string(budget));
            }
            EXPECT_EQ(engine.stats().jobs,
                      traces_->size() * bug_sets.size());
            if (budget == 0) {
                EXPECT_EQ(engine.stats().checkpointsPublished, 0u);
                EXPECT_EQ(engine.stats().cyclesAvoided, 0u);
            }
        }
    }
}

TEST_F(ReplayFixture, PrefixSharingAvoidsSimulatedCycles)
{
    // Tour traces are reset-rooted DFS walks: with the cache enabled
    // the engine must resume shared prefixes from checkpoints rather
    // than re-stepping them.
    ReplayOptions options;
    options.minPrefixCycles = 4;
    ReplayEngine engine(*config_, options);
    engine.playAll(*traces_);
    const ReplayStats &stats = engine.stats();
    EXPECT_GT(stats.checkpointsPublished, 0u);
    EXPECT_GT(stats.checkpointHits, 0u);
    EXPECT_GT(stats.cyclesAvoided, 0u);
    EXPECT_LT(stats.simulatedCycles,
              stats.batchCycles + stats.cyclesAvoided);
    // Most planned restores must verify and hit. A few fallbacks are
    // legitimate even within one generator seed: a load fetched
    // inside the shared prefix can have its address constrained by a
    // conflict check *after* the branch point, so its operand bytes
    // differ between donor and consumer.
    EXPECT_GT(stats.checkpointHits, stats.verifyFallbacks);
}

TEST_F(ReplayFixture, BugFreeDonorCopiesUntriggeredJobs)
{
    // The bug-set axis: every fault effect is strictly guarded by its
    // trigger conjunction, and PpCore records the first cycle each
    // conjunction held on the bug-free run. A (trace, bug) job whose
    // bug never triggered must copy the donor result without
    // simulating — and the engine's copy count must equal exactly the
    // number of such jobs, computed here independently.
    std::vector<BugSet> bug_sets(1 + rtl::numBugs);
    for (size_t b = 0; b < rtl::numBugs; ++b)
        bug_sets[1 + b].set(b);

    uint64_t expected_copies = 0;
    for (const auto &trace : *traces_) {
        rtl::PpCore core(*config_, rtl::CoreMode::Vector);
        VectorPlayer::primeCore(core, trace, BugSet{});
        VectorPlayer::drive(core, trace, 0, trace.cycles.size());
        VectorPlayer::finish(*config_, core, trace);
        for (size_t b = 0; b < rtl::numBugs; ++b) {
            if (core.bugFirstTrigger(static_cast<BugId>(b)) ==
                UINT64_MAX)
                ++expected_copies;
        }
    }
    ASSERT_GT(expected_copies, 0u)
        << "batch exercises every bug on every trace; the copy "
           "path is untestable at this scale";

    VectorPlayer player(*config_);
    std::vector<PlayResult> expected;
    for (const BugSet &bugs : bug_sets)
        for (const auto &trace : *traces_)
            expected.push_back(player.play(trace, bugs));

    for (unsigned nw : {1u, 2u, 8u}) {
        ReplayOptions options;
        options.numThreads = nw;
        ReplayEngine engine(*config_, options);
        std::vector<PlayResult> actual =
            engine.playAll(*traces_, bug_sets);
        ASSERT_EQ(actual.size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i) {
            expectSameResult(expected[i], actual[i],
                             "job " + std::to_string(i) +
                                 " workers=" + std::to_string(nw));
        }
        EXPECT_EQ(engine.stats().bugSetCopies, expected_copies)
            << "workers=" << nw;
    }
}

TEST_F(ReplayFixture, NestedPrefixBatchChainsCheckpoints)
{
    // Tours emitted with nestedPrefixSplits make consecutive traces
    // share their entire stem; the engine must simulate each stem
    // once (every trace resumes from its predecessor's checkpoint)
    // and still reproduce the sequential player byte-for-byte.
    graph::TourOptions tour_options;
    tour_options.maxInstructionsPerTrace = 4'000;
    tour_options.nestedPrefixSplits = true;
    graph::TourGenerator tour_gen(*graph_, tour_options);
    auto tours = tour_gen.run();
    vecgen::VectorGenerator generator(*model_, 42);
    auto nested = generator.generateAll(*graph_, tours);
    ASSERT_GT(nested.size(), 2u);

    VectorPlayer player(*config_);
    std::vector<PlayResult> expected;
    for (const auto &trace : nested)
        expected.push_back(player.play(trace));

    for (unsigned nw : {1u, 2u, 8u}) {
        ReplayOptions options;
        options.numThreads = nw;
        ReplayEngine engine(*config_, options);
        std::vector<PlayResult> actual = engine.playAll(nested);
        ASSERT_EQ(actual.size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i) {
            expectSameResult(expected[i], actual[i],
                             "nested trace " + std::to_string(i) +
                                 " workers=" + std::to_string(nw));
        }
        // Stems dominate a nested batch: well over the bench's 30%
        // acceptance bar must come off the simulated-cycle count.
        EXPECT_GT(engine.stats().avoidedFraction(), 0.3)
            << "workers=" << nw;
        EXPECT_GT(engine.stats().checkpointHits, 0u);
    }
}

TEST_F(ReplayFixture, ForeignStimulusFallsBackNotCorrupts)
{
    // Same tours concretized under a different vecgen seed: forced
    // cycles match (they come from the edges), operand bytes do not.
    // The plan pairs such traces; runtime verification must reject
    // the checkpoints and fall back to from-reset replay with exact
    // results.
    vecgen::VectorGenerator other(*model_, 1042);
    std::vector<vecgen::TestTrace> mixed = *traces_;
    std::vector<vecgen::TestTrace> foreign =
        other.generateAll(*graph_, *tours_);
    mixed.insert(mixed.end(), foreign.begin(), foreign.end());

    VectorPlayer player(*config_);
    ReplayOptions options;
    options.minPrefixCycles = 4;
    ReplayEngine engine(*config_, options);
    std::vector<PlayResult> actual = engine.playAll(mixed);
    ASSERT_EQ(actual.size(), mixed.size());
    for (size_t i = 0; i < mixed.size(); ++i) {
        expectSameResult(player.play(mixed[i]), actual[i],
                         "mixed trace " + std::to_string(i));
    }
    EXPECT_GT(engine.stats().verifyFallbacks, 0u);
}

TEST_F(ReplayFixture, StopOnDivergenceMatchesSequentialBreak)
{
    // The early-exit mode must reproduce the sequential
    // play-until-divergence loop exactly: identical results up to
    // and including the first divergence, everything after skipped —
    // for any worker count.
    BugSet bugs;
    bugs.set(static_cast<size_t>(BugId::Bug3ConflictAddr));

    VectorPlayer player(*config_);
    std::vector<PlayResult> expected;
    size_t first_div = traces_->size();
    for (size_t t = 0; t < traces_->size(); ++t) {
        expected.push_back(player.play((*traces_)[t], bugs));
        if (expected.back().diverged) {
            first_div = t;
            break;
        }
    }
    ASSERT_LT(first_div, traces_->size()) << "bug3 not detected";

    for (unsigned nw : {1u, 2u, 8u}) {
        ReplayOptions options;
        options.numThreads = nw;
        options.stopOnDivergence = true;
        ReplayEngine engine(*config_, options);
        std::vector<PlayResult> actual = engine.playAll(*traces_, bugs);
        for (size_t t = 0; t < traces_->size(); ++t) {
            if (t <= first_div) {
                expectSameResult(expected[t], actual[t],
                                 "pre-divergence trace " +
                                     std::to_string(t) + " workers=" +
                                     std::to_string(nw));
            } else {
                EXPECT_TRUE(actual[t].skipped)
                    << "trace " << t << " workers=" << nw;
            }
        }
        EXPECT_EQ(engine.stats().jobsSkipped,
                  traces_->size() - first_div - 1);
    }
}

TEST_F(ReplayFixture, EmptyBatchesAreHarmless)
{
    ReplayEngine engine(*config_);
    EXPECT_TRUE(engine.playAll({}, BugSet{}).empty());
    EXPECT_TRUE(
        engine.playAll(*traces_, std::vector<BugSet>{}).empty());
}

} // namespace
} // namespace archval::harness

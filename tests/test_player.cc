/**
 * @file
 * End-to-end methodology tests: enumerate -> tour -> vectors ->
 * simulate-and-compare. Bug-free runs must show zero divergence and
 * perfect control lockstep with the intended tour path; each injected
 * Table 2.1 bug must be exposed by the tour vectors.
 */

#include <gtest/gtest.h>

#include "harness/baselines.hh"
#include "harness/bug_hunt.hh"
#include "harness/coverage.hh"
#include "harness/vector_player.hh"
#include "murphi/enumerator.hh"

namespace archval::harness
{
namespace
{

using rtl::BugId;
using rtl::BugSet;
using rtl::PpConfig;
using rtl::PpFsmModel;

class PlayerFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        config_ = new PpConfig(PpConfig::smallPreset());
        model_ = new PpFsmModel(*config_);
        murphi::Enumerator enumerator(*model_);
        graph_ = new graph::StateGraph(enumerator.runOrThrow());
        graph::TourGenerator tour_gen(*graph_);
        tours_ = new std::vector<graph::Trace>(tour_gen.run());
        vecgen::VectorGenerator generator(*model_, 42);
        traces_ = new std::vector<vecgen::TestTrace>(
            generator.generateAll(*graph_, *tours_));
    }

    static void
    TearDownTestSuite()
    {
        delete traces_;
        delete tours_;
        delete graph_;
        delete model_;
        delete config_;
        traces_ = nullptr;
        tours_ = nullptr;
        graph_ = nullptr;
        model_ = nullptr;
        config_ = nullptr;
    }

    static PpConfig *config_;
    static PpFsmModel *model_;
    static graph::StateGraph *graph_;
    static std::vector<graph::Trace> *tours_;
    static std::vector<vecgen::TestTrace> *traces_;
};

PpConfig *PlayerFixture::config_ = nullptr;
PpFsmModel *PlayerFixture::model_ = nullptr;
graph::StateGraph *PlayerFixture::graph_ = nullptr;
std::vector<graph::Trace> *PlayerFixture::tours_ = nullptr;
std::vector<vecgen::TestTrace> *PlayerFixture::traces_ = nullptr;

TEST_F(PlayerFixture, BugFreeRunsNeverDiverge)
{
    VectorPlayer player(*config_);
    for (const auto &trace : *traces_) {
        PlayResult result = player.play(trace);
        EXPECT_FALSE(result.diverged)
            << "trace " << trace.traceIndex << ": " << result.diff;
        EXPECT_TRUE(result.drained)
            << "trace " << trace.traceIndex << " did not drain";
    }
}

TEST_F(PlayerFixture, ControlFollowsTourInLockstep)
{
    // The forced vectors must drive the RTL control through exactly
    // the arcs the tour prescribes — the paper's central mechanism.
    VectorPlayer player(*config_);
    size_t checked = std::min<size_t>(tours_->size(), 25);
    for (size_t i = 0; i < checked; ++i) {
        PlayResult result = player.playChecked(
            *model_, *graph_, (*tours_)[i], (*traces_)[i]);
        EXPECT_EQ(result.lockstepErrors, 0u) << "trace " << i;
        EXPECT_FALSE(result.diverged) << result.diff;
    }
}

TEST_F(PlayerFixture, EveryInjectedBugIsExposedByTourVectors)
{
    VectorPlayer player(*config_);
    for (size_t b = 0; b < rtl::numBugs; ++b) {
        BugSet bugs;
        bugs.set(b);
        bool detected = false;
        for (const auto &trace : *traces_) {
            PlayResult result = player.play(trace, bugs);
            if (result.diverged) {
                detected = true;
                break;
            }
        }
        EXPECT_TRUE(detected)
            << "tour vectors missed "
            << rtl::bugName(static_cast<BugId>(b)) << " ("
            << rtl::bugSummary(static_cast<BugId>(b)) << ")";
    }
}

TEST_F(PlayerFixture, RandomWalkerProducesValidWalks)
{
    RandomWalker walker(*graph_, 5);
    graph::Trace walk = walker.walk(500);
    ASSERT_FALSE(walk.edges.empty());
    // Walk continuity from reset.
    graph::StateId at = graph_->resetState();
    for (auto e : walk.edges) {
        EXPECT_EQ(graph_->edge(e).src, at);
        at = graph_->edge(e).dst;
    }
    EXPECT_GE(walk.instructions, 500u);
}

TEST_F(PlayerFixture, RandomWalkerIsDeterministicPerSeed)
{
    // Identical seeds reproduce the walk bit-for-bit; distinct
    // seeds diverge. Checked on two graph sizes because the walker's
    // draws depend on per-state out-degrees.
    auto check = [](const graph::StateGraph &graph) {
        RandomWalker a(graph, 1234), b(graph, 1234), c(graph, 4321);
        graph::Trace wa = a.walk(2'000);
        graph::Trace wb = b.walk(2'000);
        graph::Trace wc = c.walk(2'000);
        EXPECT_EQ(wa.edges, wb.edges);
        EXPECT_EQ(wa.instructions, wb.instructions);
        EXPECT_NE(wa.edges, wc.edges);

        // A reseeded walker replays its whole sequence of walks.
        RandomWalker d(graph, 777), e(graph, 777);
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(d.walk(500).edges, e.walk(500).edges)
                << "walk " << i;
    };

    check(*graph_);

    PpConfig larger = PpConfig::smallPreset();
    larger.lineWords = 3; // deeper refill counters, larger graph
    PpFsmModel larger_model(larger);
    murphi::Enumerator enumerator(larger_model);
    graph::StateGraph larger_graph = enumerator.runOrThrow();
    ASSERT_GT(larger_graph.numStates(), graph_->numStates());
    check(larger_graph);
}

TEST_F(PlayerFixture, BiasedWalkerProducesValidWalks)
{
    BiasedWalker walker(*model_, *graph_, 31);
    graph::Trace walk = walker.walk(400);
    ASSERT_FALSE(walk.edges.empty());
    graph::StateId at = graph_->resetState();
    uint64_t instrs = 0;
    for (auto e : walk.edges) {
        EXPECT_EQ(graph_->edge(e).src, at);
        at = graph_->edge(e).dst;
        instrs += graph_->edge(e).instrCount;
    }
    EXPECT_EQ(instrs, walk.instructions);
    EXPECT_GE(walk.instructions, 400u);
}

TEST_F(PlayerFixture, BiasedWalkerVectorsDoNotDivergeBugFree)
{
    BiasedWalker walker(*model_, *graph_, 33);
    vecgen::VectorGenerator generator(*model_, 55);
    VectorPlayer player(*config_);
    for (int i = 0; i < 8; ++i) {
        graph::Trace walk = walker.walk(300);
        vecgen::TestTrace trace =
            generator.generate(*graph_, walk, i);
        PlayResult result = player.play(trace);
        EXPECT_FALSE(result.diverged)
            << "walk " << i << ": " << result.diff;
    }
}

TEST_F(PlayerFixture, BiasedWalkerFavorsCommonPaths)
{
    // Under naturalistic event rates a biased walk covers far fewer
    // distinct arcs per instruction than the uniform walker.
    BiasedWalker biased(*model_, *graph_, 77);
    RandomWalker uniform(*graph_, 77);
    CoverageTracker biased_cov(*graph_), uniform_cov(*graph_);
    biased_cov.addTrace(biased.walk(5'000));
    uniform_cov.addTrace(uniform.walk(5'000));
    EXPECT_LT(biased_cov.coveredEdges(), uniform_cov.coveredEdges());
}

TEST_F(PlayerFixture, RandomWalkVectorsDoNotDivergeBugFree)
{
    RandomWalker walker(*graph_, 9);
    vecgen::VectorGenerator generator(*model_, 77);
    VectorPlayer player(*config_);
    for (int i = 0; i < 10; ++i) {
        graph::Trace walk = walker.walk(300);
        vecgen::TestTrace trace =
            generator.generate(*graph_, walk, i);
        PlayResult result = player.play(trace);
        EXPECT_FALSE(result.diverged)
            << "walk " << i << ": " << result.diff;
    }
}

TEST_F(PlayerFixture, CoverageTrackerMatchesTourTotals)
{
    CoverageTracker tracker(*graph_);
    for (const auto &tour : *tours_)
        tracker.addTrace(tour);
    EXPECT_EQ(tracker.coveredEdges(), graph_->numEdges());
    EXPECT_DOUBLE_EQ(tracker.fraction(), 1.0);
}

TEST_F(PlayerFixture, RandomCoverageLagsTourCoverage)
{
    // At equal instruction budget, the tour covers more arcs — the
    // paper's efficiency claim.
    uint64_t tour_instructions = 0;
    for (const auto &tour : *tours_)
        tour_instructions += tour.instructions;

    CoverageTracker random_tracker(*graph_);
    RandomWalker walker(*graph_, 21);
    while (random_tracker.instructions() < tour_instructions) {
        graph::Trace walk = walker.walk(1'000);
        if (walk.edges.empty())
            break;
        random_tracker.addTrace(walk);
    }
    EXPECT_LT(random_tracker.coveredEdges(), graph_->numEdges());
}

TEST_F(PlayerFixture, DirectedSuitePassesBugFree)
{
    for (const auto &result :
         runDirectedSuite(*config_, BugSet{})) {
        if (result.ran) {
            EXPECT_FALSE(result.diverged)
                << result.name << ": " << result.diff;
        }
    }
}

TEST_F(PlayerFixture, DirectedSuiteRunsOnFullPreset)
{
    PpConfig full = PpConfig::fullPreset();
    for (const auto &result : runDirectedSuite(full, BugSet{})) {
        EXPECT_TRUE(result.ran) << result.name;
        EXPECT_FALSE(result.diverged)
            << result.name << ": " << result.diff;
    }
}

TEST_F(PlayerFixture, BugHuntReportsTourDetection)
{
    BugHunt hunt(*config_, *model_, *graph_, *traces_);
    HuntResult result = hunt.hunt(BugId::Bug3ConflictAddr, 5'000);
    EXPECT_TRUE(result.tour.detected) << "tour missed bug3";
    std::string table = renderHuntTable({result});
    EXPECT_NE(table.find("bug3"), std::string::npos);
}

} // namespace
} // namespace archval::harness

/**
 * @file
 * Unit tests for the Chinese Postman baseline: balanced
 * augmentation, Euler tour construction, and comparison against the
 * greedy tour generator.
 */

#include <gtest/gtest.h>

#include "graph/postman.hh"
#include "graph/tour.hh"

namespace archval::graph
{
namespace
{

StateGraph
ringGraph(unsigned n)
{
    StateGraph g;
    for (unsigned i = 0; i < n; ++i)
        g.addStateUnretained();
    for (unsigned i = 0; i < n; ++i)
        g.addEdge(i, (i + 1) % n, i, 1);
    return g;
}

TEST(Postman, RingNeedsNoAugmentation)
{
    auto graph = ringGraph(7);
    auto result = solveResettablePostman(graph);
    for (auto m : result.multiplicity)
        EXPECT_EQ(m, 1u);
    EXPECT_EQ(result.resetReturns, 0u);
    EXPECT_EQ(result.totalTraversals, 7u);
    auto tour = hierholzerTour(graph, result);
    EXPECT_EQ(checkPostmanTour(graph, result, tour), "");
}

TEST(Postman, DeadEndUsesResetReturn)
{
    // 0 -> 1 with no way back: the postman must use a virtual return.
    StateGraph graph;
    graph.addStateUnretained();
    graph.addStateUnretained();
    graph.addEdge(0, 1, 0, 1);
    auto result = solveResettablePostman(graph);
    EXPECT_EQ(result.resetReturns, 1u);
    EXPECT_EQ(result.totalTraversals, 1u);
    auto tour = hierholzerTour(graph, result);
    EXPECT_EQ(checkPostmanTour(graph, result, tour), "");
}

TEST(Postman, ImbalancedNodeDuplicatesShortPath)
{
    // 0 -> 1 (x2 parallel edges), 1 -> 0 (x1): one edge must repeat.
    StateGraph graph;
    graph.addStateUnretained();
    graph.addStateUnretained();
    graph.addEdge(0, 1, 0, 1);
    graph.addEdge(0, 1, 1, 1);
    graph.addEdge(1, 0, 2, 1);
    auto result = solveResettablePostman(graph);
    // Either the 1->0 edge repeats or a reset return is used; both
    // cost 1, total traversals + returns = 4.
    EXPECT_EQ(result.tourLength, 4u);
    auto tour = hierholzerTour(graph, result);
    EXPECT_EQ(checkPostmanTour(graph, result, tour), "");
}

TEST(Postman, BranchyGraphStillBalances)
{
    // Reset fans out to two rings of different lengths.
    StateGraph graph;
    for (int i = 0; i < 6; ++i)
        graph.addStateUnretained();
    graph.addEdge(0, 1, 0, 1);
    graph.addEdge(1, 2, 1, 1);
    graph.addEdge(2, 0, 2, 1);
    graph.addEdge(0, 3, 3, 1);
    graph.addEdge(3, 4, 4, 1);
    graph.addEdge(4, 5, 5, 1);
    graph.addEdge(5, 0, 6, 1);
    auto result = solveResettablePostman(graph);
    auto tour = hierholzerTour(graph, result);
    EXPECT_EQ(checkPostmanTour(graph, result, tour), "");
    EXPECT_EQ(result.totalTraversals, 7u);
    EXPECT_EQ(result.resetReturns, 0u);
}

TEST(Postman, LowerBoundsGreedyTour)
{
    // On any graph, the postman tour length (traversals + returns) is
    // a lower bound for the greedy generator's cost (traversals +
    // trace restarts).
    StateGraph graph;
    for (int i = 0; i < 8; ++i)
        graph.addStateUnretained();
    // A messy graph: hub with spokes and back edges.
    graph.addEdge(0, 1, 0, 1);
    graph.addEdge(1, 2, 1, 1);
    graph.addEdge(2, 0, 2, 1);
    graph.addEdge(1, 3, 3, 1);
    graph.addEdge(3, 1, 4, 1);
    graph.addEdge(2, 4, 5, 1);
    graph.addEdge(4, 5, 6, 1);
    graph.addEdge(5, 2, 7, 1);
    graph.addEdge(0, 6, 8, 1);
    graph.addEdge(6, 7, 9, 1);
    graph.addEdge(7, 6, 10, 1); // 6<->7 trap: no way back to 0

    auto postman = solveResettablePostman(graph);
    auto tour = hierholzerTour(graph, postman);
    ASSERT_EQ(checkPostmanTour(graph, postman, tour), "");

    TourGenerator generator(graph);
    auto traces = generator.run();
    ASSERT_EQ(checkTourCoverage(graph, traces), "");
    uint64_t greedy_cost = generator.stats().totalEdgeTraversals +
                           (generator.stats().numTraces - 1);
    EXPECT_LE(postman.tourLength, greedy_cost);
}

TEST(Postman, TourVisitsEveryEdgeAtLeastOnce)
{
    auto graph = ringGraph(5);
    graph.addEdge(2, 2, 99, 1); // self loop
    auto result = solveResettablePostman(graph);
    auto tour = hierholzerTour(graph, result);
    EXPECT_EQ(checkPostmanTour(graph, result, tour), "");
    std::vector<bool> seen(graph.numEdges(), false);
    for (EdgeId e : tour) {
        if (e != resetReturnEdge)
            seen[e] = true;
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

} // namespace
} // namespace archval::graph

/**
 * @file
 * Tests for the HDL frontend: lexer, parser, elaboration (parameters,
 * hierarchy), and translation to an enumerable FSM model, including
 * latch inference and the annotation directives.
 */

#include <gtest/gtest.h>

#include "graph/tour.hh"
#include "hdl/elaborate.hh"
#include "hdl/lexer.hh"
#include "hdl/parser.hh"
#include "hdl/translate.hh"
#include "murphi/enumerator.hh"

namespace archval::hdl
{
namespace
{

TEST(Lexer, TokenKinds)
{
    auto tokens = lex("module foo; wire [3:0] x; // vfsm state x\n"
                      "assign x = 4'b1010; endmodule");
    ASSERT_TRUE(tokens.ok()) << tokens.errorMessage();
    const auto &toks = tokens.value();
    EXPECT_EQ(toks[0].kind, TokKind::Identifier);
    EXPECT_EQ(toks[0].text, "module");
    bool saw_directive = false, saw_sized = false;
    for (const auto &tok : toks) {
        if (tok.kind == TokKind::Directive) {
            saw_directive = true;
            EXPECT_EQ(tok.text, "state x");
        }
        if (tok.kind == TokKind::Number && tok.width == 4) {
            saw_sized = true;
            EXPECT_EQ(tok.value, 10u);
        }
    }
    EXPECT_TRUE(saw_directive);
    EXPECT_TRUE(saw_sized);
}

TEST(Lexer, SizedLiteralBases)
{
    auto tokens = lex("8'hff 3'd5 6'o17 4'b10_01");
    ASSERT_TRUE(tokens.ok()) << tokens.errorMessage();
    const auto &toks = tokens.value();
    EXPECT_EQ(toks[0].value, 0xffu);
    EXPECT_EQ(toks[1].value, 5u);
    EXPECT_EQ(toks[2].value, 15u);
    EXPECT_EQ(toks[3].value, 9u);
}

TEST(Lexer, SkipsOrdinaryComments)
{
    auto tokens = lex("a // plain comment\n/* block\ncomment */ b");
    ASSERT_TRUE(tokens.ok());
    ASSERT_EQ(tokens.value().size(), 3u); // a, b, eof
    EXPECT_EQ(tokens.value()[1].text, "b");
    EXPECT_EQ(tokens.value()[1].line, 3u);
}

TEST(Lexer, ErrorsOnBadLiteral)
{
    EXPECT_FALSE(lex("4'q0").ok());
    EXPECT_FALSE(lex("4'").ok());
}

const char *trafficLight = R"(
// Classic traffic light with a pedestrian request input.
module traffic(clk, walk_req);
  input clk;
  input walk_req;
  reg [1:0] state;   // vfsm state state reset 0
  reg [1:0] timer;   // vfsm state timer reset 0

  always @(posedge clk) begin
    case (state)
      2'd0: begin              // green
        if (walk_req && timer == 2'd3) begin
          state <= 2'd1;
          timer <= 2'd0;
        end else if (timer != 2'd3)
          timer <= timer + 2'd1;
      end
      2'd1: state <= 2'd2;     // yellow
      2'd2: begin              // red
        if (timer == 2'd2) begin
          state <= 2'd0;
          timer <= 2'd0;
        end else
          timer <= timer + 2'd1;
      end
      default: state <= 2'd0;
    endcase
  end
endmodule
)";

TEST(Parser, TrafficLightParses)
{
    auto design = parse(trafficLight);
    ASSERT_TRUE(design.ok()) << design.errorMessage();
    ASSERT_EQ(design.value().modules.size(), 1u);
    const Module &m = design.value().modules[0];
    EXPECT_EQ(m.name, "traffic");
    EXPECT_EQ(m.portOrder.size(), 2u);
    EXPECT_EQ(m.annotations.size(), 2u);
    EXPECT_EQ(m.always.size(), 1u);
    EXPECT_TRUE(m.always[0].sequential);
    EXPECT_EQ(m.always[0].clock, "clk");
}

TEST(Parser, ReportsLineNumbersInErrors)
{
    auto design = parse("module m();\nwire x\nendmodule");
    ASSERT_FALSE(design.ok());
    EXPECT_NE(design.errorMessage().find("line 3"), std::string::npos);
}

TEST(Parser, RejectsInitialBlocks)
{
    auto design = parse("module m(); initial x = 1; endmodule");
    EXPECT_FALSE(design.ok());
}

TEST(Parser, VfsmOffSkipsTranslation)
{
    auto design = parse(R"(
        module m(clk);
          input clk;
          wire a, b;
          assign a = 1'b1;
          // vfsm off
          assign b = 1'b0;
          // vfsm on
        endmodule
    )");
    ASSERT_TRUE(design.ok()) << design.errorMessage();
    const Module &m = design.value().modules[0];
    ASSERT_EQ(m.assigns.size(), 2u);
    EXPECT_TRUE(m.assigns[0].translated);
    EXPECT_FALSE(m.assigns[1].translated);
}

TEST(Elaborate, ParameterWidths)
{
    auto design = parse(R"(
        module m(clk);
          input clk;
          parameter W = 5;
          reg [W-1:0] counter;
          always @(posedge clk) counter <= counter + 1;
        endmodule
    )");
    ASSERT_TRUE(design.ok()) << design.errorMessage();
    auto elab = elaborate(design.value(), "m");
    ASSERT_TRUE(elab.ok()) << elab.errorMessage();
    const ElabNet *net = elab.value().findNet("counter");
    ASSERT_NE(net, nullptr);
    EXPECT_EQ(net->width, 5u);
}

TEST(Elaborate, HierarchyFlattensWithPrefixes)
{
    auto design = parse(R"(
        module child(clk, in, out);
          input clk;
          input in;
          output out;
          reg bit;  // vfsm state bit
          always @(posedge clk) bit <= in;
          assign out = bit;
        endmodule
        module top(clk, x);
          input clk;
          input x;
          wire y;
          child c0 (.clk(clk), .in(x), .out(y));
        endmodule
    )");
    ASSERT_TRUE(design.ok()) << design.errorMessage();
    auto elab = elaborate(design.value(), "top");
    ASSERT_TRUE(elab.ok()) << elab.errorMessage();
    EXPECT_NE(elab.value().findNet("c0.bit"), nullptr);
    EXPECT_NE(elab.value().findNet("c0.in"), nullptr);
    // Annotation name carried the prefix too.
    bool found = false;
    for (const auto &ann : elab.value().annotations)
        found |= ann.name == "c0.bit";
    EXPECT_TRUE(found);
}

TEST(Elaborate, ParameterOverride)
{
    auto design = parse(R"(
        module counter(clk);
          input clk;
          parameter W = 2;
          reg [W-1:0] value;
          always @(posedge clk) value <= value + 1;
        endmodule
        module top(clk);
          input clk;
          counter #(.W(7)) c (.clk(clk));
        endmodule
    )");
    ASSERT_TRUE(design.ok()) << design.errorMessage();
    auto elab = elaborate(design.value(), "top");
    ASSERT_TRUE(elab.ok()) << elab.errorMessage();
    EXPECT_EQ(elab.value().findNet("c.value")->width, 7u);
}

TEST(Elaborate, UnknownModuleFails)
{
    auto design = parse("module top(clk); input clk; "
                        "nosuch u (.clk(clk)); endmodule");
    ASSERT_TRUE(design.ok()) << design.errorMessage();
    EXPECT_FALSE(elaborate(design.value(), "top").ok());
}

TEST(Translate, TrafficLightEnumerates)
{
    auto result = translateSource(trafficLight, "traffic");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const auto &model = *result.value().model;

    // walk_req is a free 1-bit input; clk was consumed.
    ASSERT_EQ(model.choiceVars().size(), 1u);
    EXPECT_EQ(model.choiceVars()[0].name, "walk_req");
    EXPECT_EQ(model.choiceVars()[0].cardinality, 2u);
    EXPECT_EQ(model.stateBits(), 4u);

    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    // Reachable: green with timer 0..3, yellow, red timer 0..2.
    EXPECT_GT(graph.numStates(), 5u);
    EXPECT_LT(graph.numStates(), 16u);

    graph::TourGenerator tours(graph);
    auto traces = tours.run();
    EXPECT_EQ(checkTourCoverage(graph, traces), "");
}

TEST(Translate, CombinationalOutputsEvaluate)
{
    auto result = translateSource(R"(
        module m(clk, go);
          input clk;
          input go;
          reg [2:0] count;  // vfsm state count reset 2
          wire at_max;
          wire [2:0] next;
          assign at_max = count == 3'd7;
          assign next = at_max ? 3'd0 : count + 3'd1;
          always @(posedge clk) if (go) count <= next;
        endmodule
    )", "m");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const auto &model = *result.value().model;
    BitVec reset = model.resetState();
    EXPECT_EQ(model.evalNet("at_max", reset, {0}), 0u);
    EXPECT_EQ(model.evalNet("next", reset, {0}), 3u);

    auto t = model.next(reset, {1});
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->next.getField(0, 3), 3u);
    auto hold = model.next(reset, {0});
    EXPECT_EQ(hold->next.getField(0, 3), 2u);
}

TEST(Translate, LatchInferenceMakesState)
{
    auto result = translateSource(R"(
        module m(clk, en, d);
          input clk;
          input en;
          input d;
          reg q;
          always @(*) begin
            if (en) q = d;   // no else: transparent latch
          end
        endmodule
    )", "m");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    bool note_found = false;
    for (const auto &note : result.value().notes)
        note_found |= note.find("latch") != std::string::npos;
    EXPECT_TRUE(note_found);

    const auto &model = *result.value().model;
    ASSERT_EQ(model.stateVars().size(), 1u);
    EXPECT_EQ(model.stateVars()[0].name, "q");

    // Latch semantics: q follows d while en, holds otherwise.
    BitVec zero = model.resetState();
    auto codec = model.makeChoiceCodec();
    fsm::Choice choice(2, 0);
    size_t en_idx = codec.vars()[0].name == "en" ? 0 : 1;
    size_t d_idx = 1 - en_idx;
    choice[en_idx] = 1;
    choice[d_idx] = 1;
    auto t = model.next(zero, choice);
    EXPECT_EQ(t->next.getField(0, 1), 1u);
    choice[en_idx] = 0;
    choice[d_idx] = 0;
    auto held = model.next(t->next, choice);
    EXPECT_EQ(held->next.getField(0, 1), 1u); // held
}

TEST(Translate, CombinationalLoopFails)
{
    auto result = translateSource(R"(
        module m(clk);
          input clk;
          wire a, b;
          assign a = b;
          assign b = a;
        endmodule
    )", "m");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errorMessage().find("combinational loop"),
              std::string::npos);
}

TEST(Translate, MultipleDriversFail)
{
    auto result = translateSource(R"(
        module m(clk);
          input clk;
          wire a;
          assign a = 1'b0;
          assign a = 1'b1;
        endmodule
    )", "m");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errorMessage().find("multiple drivers"),
              std::string::npos);
}

TEST(Translate, BlockingInSequentialFails)
{
    auto result = translateSource(R"(
        module m(clk);
          input clk;
          reg q;
          always @(posedge clk) q = 1'b1;
        endmodule
    )", "m");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errorMessage().find("non-blocking"),
              std::string::npos);
}

TEST(Translate, WideFreeInputNeedsAnnotation)
{
    auto bad = translateSource(R"(
        module m(clk, bus);
          input clk;
          input [31:0] bus;
          reg q;
          always @(posedge clk) q <= bus == 32'd5;
        endmodule
    )", "m");
    EXPECT_FALSE(bad.ok());

    auto good = translateSource(R"(
        module m(clk, bus);
          input clk;
          input [31:0] bus;   // vfsm input bus 3
          reg q;
          always @(posedge clk) q <= bus == 32'd2;
        endmodule
    )", "m");
    ASSERT_TRUE(good.ok()) << good.errorMessage();
    EXPECT_EQ(good.value().model->choiceVars()[0].cardinality, 3u);
}

TEST(Translate, InstrAnnotationCountsInstructions)
{
    auto result = translateSource(R"(
        module m(clk, fetch);
          input clk;
          input fetch;
          reg [1:0] count;
          wire issued;
          assign issued = fetch;   // vfsm instr issued
          always @(posedge clk) if (fetch) count <= count + 2'd1;
        endmodule
    )", "m");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const auto &model = *result.value().model;
    auto t1 = model.next(model.resetState(), {1});
    auto t0 = model.next(model.resetState(), {0});
    EXPECT_EQ(t1->instructions, 1u);
    EXPECT_EQ(t0->instructions, 0u);
}

TEST(Translate, PartSelectAssignment)
{
    auto result = translateSource(R"(
        module m(clk, hi);
          input clk;
          input hi;
          reg [3:0] q;
          always @(posedge clk) begin
            q[1:0] <= 2'b11;
            if (hi) q[3:2] <= 2'b10;
          end
        endmodule
    )", "m");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const auto &model = *result.value().model;
    auto t = model.next(model.resetState(), {1});
    EXPECT_EQ(t->next.getField(0, 4), 0xbu); // 10_11
    auto t0 = model.next(model.resetState(), {0});
    EXPECT_EQ(t0->next.getField(0, 4), 0x3u); // high bits held (0)
}

TEST(Translate, CaseWithMultipleLabels)
{
    auto result = translateSource(R"(
        module m(clk, in);
          input clk;
          input [1:0] in;
          reg hit;
          always @(posedge clk) begin
            case (in)
              2'd0, 2'd3: hit <= 1'b1;
              default: hit <= 1'b0;
            endcase
          end
        endmodule
    )", "m");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const auto &model = *result.value().model;
    EXPECT_EQ(model.next(model.resetState(), {0})->next.getField(0, 1),
              1u);
    EXPECT_EQ(model.next(model.resetState(), {1})->next.getField(0, 1),
              0u);
    EXPECT_EQ(model.next(model.resetState(), {3})->next.getField(0, 1),
              1u);
}

TEST(Translate, HierarchicalHandshakeEnumerates)
{
    // Two interacting FSMs (requester and responder) connected in a
    // top module — the "interacting FSMs with interlock" shape the
    // paper describes.
    auto result = translateSource(R"(
        module requester(clk, start, ack, req);
          input clk;
          input start;
          input ack;
          output req;
          reg state;  // vfsm state state
          assign req = state;
          always @(posedge clk) begin
            if (state == 1'b0) begin
              if (start) state <= 1'b1;
            end else begin
              if (ack) state <= 1'b0;
            end
          end
        endmodule
        module responder(clk, req, ack);
          input clk;
          input req;
          output ack;
          reg [1:0] state;  // vfsm state state
          assign ack = state == 2'd2;
          always @(posedge clk) begin
            case (state)
              2'd0: if (req) state <= 2'd1;
              2'd1: state <= 2'd2;       // service delay
              2'd2: if (!req) state <= 2'd0;
              default: state <= 2'd0;
            endcase
          end
        endmodule
        module top(clk, start);
          input clk;
          input start;
          wire req, ack;
          requester r (.clk(clk), .start(start), .ack(ack),
                       .req(req));
          responder s (.clk(clk), .req(req), .ack(ack));
        endmodule
    )", "top");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const auto &model = *result.value().model;
    EXPECT_EQ(model.stateBits(), 3u);

    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    // The interlock keeps this well under the 2^3 x choices bound.
    EXPECT_GE(graph.numStates(), 4u);
    EXPECT_LE(graph.numStates(), 8u);

    graph::TourGenerator tours(graph);
    auto traces = tours.run();
    EXPECT_EQ(checkTourCoverage(graph, traces), "");
}

} // namespace
} // namespace archval::hdl

/**
 * @file
 * Unit tests for the PP assembler: mnemonics, labels, error paths,
 * disassembly round trips.
 */

#include <gtest/gtest.h>

#include "pp/assembler.hh"
#include "pp/isa.hh"

namespace archval::pp
{
namespace
{

TEST(Assembler, BasicProgram)
{
    auto result = assemble(R"(
        addi r1, r0, 5
        addi r2, r0, 7
        add r3, r1, r2
        halt
    )");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const auto &words = result.value();
    ASSERT_EQ(words.size(), 4u);
    EXPECT_EQ(decode(words[2]).toString(), "add r3, r1, r2");
    EXPECT_EQ(decode(words[3]).op, Opcode::Halt);
}

TEST(Assembler, CommentsAndBlankLines)
{
    auto result = assemble(
        "; leading comment\n"
        "\n"
        "nop # trailing comment\n"
        "halt\n");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    EXPECT_EQ(result.value().size(), 2u);
}

TEST(Assembler, MemoryOperands)
{
    auto result = assemble("lw r4, 16(r2)\nsw r4, -4(r3)\nhalt");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    DecodedInstr lw = decode(result.value()[0]);
    EXPECT_EQ(lw.op, Opcode::Lw);
    EXPECT_EQ(lw.rt, 4);
    EXPECT_EQ(lw.rs, 2);
    EXPECT_EQ(lw.imm, 16);
    DecodedInstr sw = decode(result.value()[1]);
    EXPECT_EQ(sw.imm, -4);
}

TEST(Assembler, MemoryOperandDefaultOffset)
{
    auto result = assemble("lw r1, (r2)\nhalt");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    EXPECT_EQ(decode(result.value()[0]).imm, 0);
}

TEST(Assembler, BranchToLabel)
{
    auto result = assemble(R"(
        addi r1, r0, 3
    loop:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    )");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    DecodedInstr bne = decode(result.value()[2]);
    EXPECT_EQ(bne.op, Opcode::Bne);
    // Branch from word 2 back to word 1: offset -2 (relative to
    // next instruction).
    EXPECT_EQ(bne.imm, -2);
}

TEST(Assembler, JumpToLabel)
{
    auto result = assemble(R"(
    start:
        nop
        j start
    )");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    EXPECT_EQ(decode(result.value()[1]).target, 0u);
}

TEST(Assembler, SwitchAndSend)
{
    auto result = assemble("switch r5\nsend r5\nhalt");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    EXPECT_EQ(classOfWord(result.value()[0]), InstrClass::Switch);
    EXPECT_EQ(classOfWord(result.value()[1]), InstrClass::Send);
}

TEST(Assembler, ShiftInstructions)
{
    auto result = assemble("sll r1, r2, 4\nsrl r3, r4, 1\nsra r5, r6, 31");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    EXPECT_EQ(decode(result.value()[0]).shamt, 4);
    EXPECT_EQ(decode(result.value()[2]).shamt, 31);
}

TEST(Assembler, HexImmediates)
{
    auto result = assemble("ori r1, r0, 0xff\nhalt");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    EXPECT_EQ(decode(result.value()[0]).imm, 0xff);
}

TEST(Assembler, UnknownMnemonicFails)
{
    auto result = assemble("frobnicate r1, r2");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errorMessage().find("unknown mnemonic"),
              std::string::npos);
}

TEST(Assembler, BadRegisterFails)
{
    EXPECT_FALSE(assemble("add r1, r99, r2").ok());
    EXPECT_FALSE(assemble("add r1, x2, r3").ok());
}

TEST(Assembler, WrongArityFails)
{
    EXPECT_FALSE(assemble("add r1, r2").ok());
    EXPECT_FALSE(assemble("send").ok());
}

TEST(Assembler, DuplicateLabelFails)
{
    auto result = assemble("a:\nnop\na:\nnop");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errorMessage().find("duplicate label"),
              std::string::npos);
}

TEST(Assembler, ErrorNamesLineNumber)
{
    auto result = assemble("nop\nnop\nbogus");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errorMessage().find("line 3"), std::string::npos);
}

TEST(Assembler, DisassembleReassembles)
{
    auto result = assemble(R"(
        addi r1, r0, 5
        lw r2, 8(r1)
        sw r2, 12(r1)
        switch r3
        send r3
        halt
    )");
    ASSERT_TRUE(result.ok());
    std::string text = disassemble(result.value());
    EXPECT_NE(text.find("addi r1, r0, 5"), std::string::npos);
    EXPECT_NE(text.find("lw r2, 8(r1)"), std::string::npos);
    EXPECT_NE(text.find("switch r3"), std::string::npos);
}

} // namespace
} // namespace archval::pp

/**
 * @file
 * Unit tests for the Figure 3.3 tour generator: coverage, reset
 * rooting, instruction limits, trace splitting.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "fsm/built_model.hh"
#include "graph/state_graph.hh"
#include "graph/tour.hh"
#include "murphi/enumerator.hh"

namespace archval::graph
{
namespace
{

/** Build a small graph by hand. Edges get instrCount 1 by default. */
StateGraph
ringGraph(unsigned n)
{
    StateGraph g;
    for (unsigned i = 0; i < n; ++i)
        g.addStateUnretained();
    for (unsigned i = 0; i < n; ++i)
        g.addEdge(i, (i + 1) % n, i, 1);
    return g;
}

TEST(Tour, SingleRingIsOneTrace)
{
    auto graph = ringGraph(5);
    TourGenerator generator(graph);
    auto traces = generator.run();
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_EQ(traces[0].edges.size(), 5u);
    EXPECT_EQ(checkTourCoverage(graph, traces), "");
    EXPECT_EQ(generator.stats().totalEdgeTraversals, 5u);
    EXPECT_EQ(generator.stats().totalInstructions, 5u);
}

TEST(Tour, EmptyGraphYieldsNoTraces)
{
    StateGraph graph;
    graph.addStateUnretained();
    TourGenerator generator(graph);
    auto traces = generator.run();
    EXPECT_TRUE(traces.empty());
}

TEST(Tour, ResetOnlyEdgesForceMultipleTraces)
{
    // Reset (0) has two edges into a ring that never returns to 0:
    // both edges can only be covered by separate traces — the paper's
    // "edges that can only be reached from reset" lower bound.
    StateGraph graph;
    for (int i = 0; i < 3; ++i)
        graph.addStateUnretained();
    graph.addEdge(0, 1, 0, 1);
    graph.addEdge(0, 2, 1, 1);
    graph.addEdge(1, 2, 2, 1);
    graph.addEdge(2, 1, 3, 1);

    TourGenerator generator(graph);
    auto traces = generator.run();
    EXPECT_EQ(traces.size(), 2u);
    EXPECT_EQ(checkTourCoverage(graph, traces), "");
}

TEST(Tour, BfsBridgesDisconnectedCoverage)
{
    // Two loops joined at reset; DFS exhausts one loop, BFS must
    // route back through covered edges to reach the other.
    StateGraph graph;
    for (int i = 0; i < 5; ++i)
        graph.addStateUnretained();
    // Loop A: 0 -> 1 -> 0
    graph.addEdge(0, 1, 0, 1);
    graph.addEdge(1, 0, 1, 1);
    // Loop B: 0 -> 2 -> 3 -> 4 -> 0
    graph.addEdge(0, 2, 2, 1);
    graph.addEdge(2, 3, 3, 1);
    graph.addEdge(3, 4, 4, 1);
    graph.addEdge(4, 0, 5, 1);

    TourGenerator generator(graph);
    auto traces = generator.run();
    EXPECT_EQ(traces.size(), 1u);
    EXPECT_EQ(checkTourCoverage(graph, traces), "");
}

TEST(Tour, RevisitsStatesWithRemainingEdges)
{
    // Diamond with parallel edges: 0->1 (x2), 1->0 (x2).
    StateGraph graph;
    graph.addStateUnretained();
    graph.addStateUnretained();
    graph.addEdge(0, 1, 0, 1);
    graph.addEdge(0, 1, 1, 1);
    graph.addEdge(1, 0, 2, 1);
    graph.addEdge(1, 0, 3, 1);

    TourGenerator generator(graph);
    auto traces = generator.run();
    EXPECT_EQ(traces.size(), 1u);
    EXPECT_EQ(traces[0].edges.size(), 4u);
    EXPECT_EQ(checkTourCoverage(graph, traces), "");
}

TEST(Tour, InstructionLimitSplitsTraces)
{
    auto graph = ringGraph(30);
    TourOptions options;
    options.maxInstructionsPerTrace = 10;
    TourGenerator generator(graph, options);
    auto traces = generator.run();
    EXPECT_GT(traces.size(), 1u);
    // The limit is approximate (a trace may exceed it by its
    // reset-connecting prefix plus one edge) but every limited trace
    // must have reached it, and each trace must make progress.
    for (const auto &t : traces) {
        if (t.limitTerminated) {
            EXPECT_GE(t.instructions, 10u);
        }
        EXPECT_FALSE(t.edges.empty());
    }
    EXPECT_EQ(checkTourCoverage(graph, traces), "");
    EXPECT_GT(generator.stats().tracesTerminatedByLimit, 0u);
}

TEST(Tour, NestedPrefixSplitsShareStems)
{
    auto graph = ringGraph(30);
    TourOptions options;
    options.maxInstructionsPerTrace = 10;
    options.nestedPrefixSplits = true;
    TourGenerator generator(graph, options);
    auto traces = generator.run();
    EXPECT_EQ(checkTourCoverage(graph, traces), "");
    ASSERT_GT(traces.size(), 1u);

    // Every trace except the last must be a strict prefix of its
    // successor (the whole batch is one nested family on a ring),
    // cut at limit-spaced instruction counts.
    for (size_t i = 0; i + 1 < traces.size(); ++i) {
        const Trace &a = traces[i];
        const Trace &b = traces[i + 1];
        ASSERT_LT(a.edges.size(), b.edges.size());
        EXPECT_TRUE(std::equal(a.edges.begin(), a.edges.end(),
                               b.edges.begin()))
            << "trace " << i << " is not a prefix of its successor";
        EXPECT_TRUE(a.limitTerminated);
        EXPECT_GE(a.instructions, 10u * (i + 1));
        EXPECT_LT(a.instructions, 10u * (i + 2));
    }
    EXPECT_FALSE(traces.back().limitTerminated);

    // Stats describe the emitted (split) batch, not the raw walk.
    uint64_t edges = 0, instrs = 0;
    for (const auto &t : traces) {
        edges += t.edges.size();
        instrs += t.instructions;
    }
    EXPECT_EQ(generator.stats().numTraces, traces.size());
    EXPECT_EQ(generator.stats().totalEdgeTraversals, edges);
    EXPECT_EQ(generator.stats().totalInstructions, instrs);
    EXPECT_EQ(generator.stats().tracesTerminatedByLimit,
              traces.size() - 1);
}

TEST(Tour, NestedPrefixSplitsWithoutLimitIsUnsplit)
{
    auto graph = ringGraph(8);
    TourOptions options;
    options.nestedPrefixSplits = true; // limit 0: option is inert
    TourGenerator generator(graph, options);
    auto traces = generator.run();
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_EQ(traces[0].edges.size(), 8u);
    EXPECT_EQ(checkTourCoverage(graph, traces), "");
}

TEST(Tour, LimitCountsInstructionsNotEdges)
{
    // Ring where only every third edge carries an instruction: the
    // limit should allow ~3x the edges.
    StateGraph graph;
    const unsigned n = 30;
    for (unsigned i = 0; i < n; ++i)
        graph.addStateUnretained();
    for (unsigned i = 0; i < n; ++i)
        graph.addEdge(i, (i + 1) % n, i, i % 3 == 0 ? 1 : 0);

    TourOptions options;
    options.maxInstructionsPerTrace = 5;
    TourGenerator generator(graph, options);
    auto traces = generator.run();
    EXPECT_EQ(checkTourCoverage(graph, traces), "");
    EXPECT_GT(traces.size(), 1u);
    // Zero-instruction edges must not count toward the limit: the
    // first trace walks 5 instruction-carrying edges, which in this
    // ring means well over 5 edges traversed.
    EXPECT_GT(traces[0].edges.size(), 5u);
    EXPECT_EQ(traces[0].instructions, 5u);
}

TEST(Tour, StatsConsistentWithTraces)
{
    auto graph = ringGraph(12);
    TourGenerator generator(graph);
    auto traces = generator.run();
    uint64_t edges = 0, instrs = 0, longest = 0;
    for (const auto &t : traces) {
        edges += t.edges.size();
        instrs += t.instructions;
        longest = std::max<uint64_t>(longest, t.edges.size());
    }
    EXPECT_EQ(generator.stats().totalEdgeTraversals, edges);
    EXPECT_EQ(generator.stats().totalInstructions, instrs);
    EXPECT_EQ(generator.stats().longestTraceEdges, longest);
    EXPECT_EQ(generator.stats().numTraces, traces.size());
}

TEST(Tour, CoverageCheckerDetectsGap)
{
    auto graph = ringGraph(4);
    TourGenerator generator(graph);
    auto traces = generator.run();
    ASSERT_EQ(traces.size(), 1u);
    traces[0].instructions -=
        graph.edge(traces[0].edges.back()).instrCount;
    traces[0].edges.pop_back();
    EXPECT_NE(checkTourCoverage(graph, traces), "");
}

TEST(Tour, CoverageCheckerDetectsDiscontinuity)
{
    auto graph = ringGraph(4);
    std::vector<Trace> traces(1);
    traces[0].edges = {0, 2}; // skips edge 1: walk breaks at state 1
    traces[0].instructions = 2;
    EXPECT_NE(checkTourCoverage(graph, traces), "");
}

TEST(Tour, WorksOnEnumeratedModel)
{
    // End-to-end: enumerate a counter model, tour it, verify.
    fsm::LambdaModel model(
        "counter",
        std::vector<fsm::StateVarInfo>{{"count", 5, 0}},
        std::vector<fsm::ChoiceVarInfo>{{"delta", 3}},
        [](const BitVec &state, const fsm::Choice &choice)
            -> std::optional<BitVec> {
            BitVec next(5);
            next.setField(0, 5,
                          (state.getField(0, 5) + choice[0]) & 31);
            return next;
        },
        [](const BitVec &, const fsm::Choice &choice) -> unsigned {
            return choice[0] > 0 ? 1 : 0;
        });
    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    TourGenerator generator(graph);
    auto traces = generator.run();
    EXPECT_EQ(checkTourCoverage(graph, traces), "");
    EXPECT_GE(generator.stats().totalEdgeTraversals, graph.numEdges());
}

TEST(GraphAnalysis, SccOnRing)
{
    auto graph = ringGraph(6);
    auto scc = stronglyConnectedComponents(graph);
    EXPECT_EQ(scc.numComponents, 1u);
}

TEST(GraphAnalysis, SccSeparatesDag)
{
    StateGraph graph;
    for (int i = 0; i < 3; ++i)
        graph.addStateUnretained();
    graph.addEdge(0, 1, 0, 0);
    graph.addEdge(1, 2, 0, 0);
    auto scc = stronglyConnectedComponents(graph);
    EXPECT_EQ(scc.numComponents, 3u);
}

TEST(GraphAnalysis, ReachabilityFromReset)
{
    StateGraph graph;
    for (int i = 0; i < 4; ++i)
        graph.addStateUnretained();
    graph.addEdge(0, 1, 0, 0);
    graph.addEdge(2, 3, 0, 0); // island
    auto reach = reachableFrom(graph, 0);
    EXPECT_TRUE(reach[0]);
    EXPECT_TRUE(reach[1]);
    EXPECT_FALSE(reach[2]);
    EXPECT_FALSE(reach[3]);
}

TEST(GraphAnalysis, SummaryCounts)
{
    auto graph = ringGraph(6);
    auto summary = summarize(graph);
    EXPECT_EQ(summary.numStates, 6u);
    EXPECT_EQ(summary.numEdges, 6u);
    EXPECT_EQ(summary.maxOutDegree, 1u);
    EXPECT_EQ(summary.numSinkStates, 0u);
    EXPECT_EQ(summary.largestScc, 6u);
}

} // namespace
} // namespace archval::graph

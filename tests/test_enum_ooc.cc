/**
 * @file
 * Differential battery for the out-of-core enumerator: for every
 * corpus design and the PP FSM model, the disk-backed search must
 * produce a graph byte-identical to the in-memory search across
 * every step kernel, worker count, residency budget — including the
 * pathological single-partition table — and process count, and every
 * injected spill fault (flipped CRC byte, truncated record file,
 * killed worker process, unusable spill directory) must either
 * rebuild the identical graph or surface a typed error, counted in
 * enum.spill_fallbacks. Registered under the ctest label `ooc`;
 * ARCHVAL_ENUM_SOAK widens the PP configuration to paper scale.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "graph/state_graph.hh"
#include "hdl/corpus.hh"
#include "murphi/enum_internal.hh"
#include "murphi/enumerator.hh"
#include "murphi/ooc.hh"
#include "rtl/pp_fsm_model.hh"
#include "support/spill_store.hh"

// TSan does not support fork-without-exec, so the multi-process
// differentials are skipped under it; the thread and single-process
// out-of-core paths still run TSan-clean.
#if defined(__SANITIZE_THREAD__)
#define ARCHVAL_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ARCHVAL_TSAN 1
#endif
#endif
#ifndef ARCHVAL_TSAN
#define ARCHVAL_TSAN 0
#endif

namespace archval
{
namespace
{

/** Serialize every observable byte of a graph (same digest as the
 *  parallel-enumerator suite uses). */
std::string
fingerprintBytes(const graph::StateGraph &graph)
{
    std::string bytes;
    auto put64 = [&bytes](uint64_t value) {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(char(value >> (8 * i)));
    };
    put64(graph.numStates());
    put64(graph.numEdges());
    put64(graph.statesRetained());
    for (graph::StateId s = 0; s < graph.numStates(); ++s) {
        if (graph.statesRetained()) {
            const BitVec &packed = graph.packedState(s);
            put64(packed.numBits());
            bytes += packed.toString();
        }
        for (graph::EdgeId e : graph.outEdges(s))
            put64(e);
    }
    for (graph::EdgeId e = 0; e < graph.numEdges(); ++e) {
        const graph::Edge &edge = graph.edge(e);
        put64(edge.src);
        put64(edge.dst);
        put64(edge.choiceCode);
        put64(edge.instrCount);
    }
    return bytes;
}

/** The residency budgets every differential sweeps: effectively
 *  unbounded (paging machinery active, nothing evicted), tight
 *  (constant eviction churn), and the pathological single-partition
 *  table (oocPartitions = 1, everything in one shard). */
struct BudgetCase
{
    const char *name;
    size_t budgetBytes;
    size_t partitions; ///< 0 = default
};

const BudgetCase kBudgets[] = {
    {"unbounded", size_t(1) << 30, 0},
    {"tight", size_t(32) << 10, 0},
    {"pathological-1-shard", 4096, 1},
};

murphi::EnumOptions
baseOptions()
{
    murphi::EnumOptions options;
    options.recording = murphi::EdgeRecording::FirstCondition;
    options.retainStates = true;
    return options;
}

std::string
inMemoryBaseline(const fsm::Model &model, murphi::EnumOptions options)
{
    options.memoryBudgetBytes = 0;
    options.numProcesses = 1;
    options.numThreads = 1;
    murphi::Enumerator sequential(model, options);
    auto graph = sequential.runOrThrow();
    EXPECT_GT(graph.numStates(), 0u);
    return fingerprintBytes(graph);
}

/**
 * The tentpole differential: OOC graphs must be byte-identical to
 * the in-memory graph for every kernel x worker count x budget.
 */
void
expectOocIdentical(const fsm::Model &model)
{
    for (murphi::StepKernel kernel :
         {murphi::StepKernel::Interpreted, murphi::StepKernel::Bytecode,
          murphi::StepKernel::BitSliced}) {
        murphi::EnumOptions options = baseOptions();
        options.compiledStep = kernel;
        const std::string expected = inMemoryBaseline(model, options);

        for (const BudgetCase &budget : kBudgets) {
            for (unsigned workers : {1u, 2u, 8u}) {
                options.numThreads = workers;
                options.memoryBudgetBytes = budget.budgetBytes;
                options.oocPartitions = budget.partitions;
                murphi::Enumerator ooc(model, options);
                auto graph = ooc.runOrThrow();
                EXPECT_EQ(fingerprintBytes(graph), expected)
                    << model.name() << " kernel " << int(kernel)
                    << " diverges at " << workers << " threads, "
                    << budget.name << " budget";
                EXPECT_EQ(ooc.stats().spillFallbacks, 0u);
                // The acceptance gate: whenever nothing degraded,
                // the steady-state resident table footprint stayed
                // under the budget.
                EXPECT_LE(ooc.stats().residencyHighWaterBytes,
                          budget.budgetBytes)
                    << model.name() << " over budget (" << budget.name
                    << ")";
                if (budget.budgetBytes < (size_t(1) << 30)) {
                    EXPECT_GT(ooc.stats().spillBytesWritten, 0u)
                        << budget.name
                        << " budget never touched disk";
                }
            }
        }
    }
}

TEST(EnumOoc, CorpusDesignsIdenticalAcrossBudgetsAndKernels)
{
    for (const hdl::CorpusDesign &design : hdl::designCorpus()) {
        auto result = hdl::translateCorpus(design);
        ASSERT_TRUE(result.ok()) << design.name << ": "
                                 << result.errorMessage();
        expectOocIdentical(*result.value().model);
    }
}

TEST(EnumOoc, PpFsmModelIdenticalAcrossBudgetsAndKernels)
{
    rtl::PpConfig config = rtl::PpConfig::smallPreset();
    if (std::getenv("ARCHVAL_ENUM_SOAK"))
        config = rtl::PpConfig::fullPreset();
    rtl::PpFsmModel model(config);
    expectOocIdentical(model);
}

TEST(EnumOoc, UnretainedGraphsIdenticalUnderBudget)
{
    // retainStates = false is the true out-of-core shape: no packed
    // state survives outside the partitioned table and the frontier.
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    murphi::EnumOptions options = baseOptions();
    options.retainStates = false;
    const std::string expected = inMemoryBaseline(model, options);
    for (const BudgetCase &budget : kBudgets) {
        options.numThreads = 2;
        options.memoryBudgetBytes = budget.budgetBytes;
        options.oocPartitions = budget.partitions;
        murphi::Enumerator ooc(model, options);
        auto graph = ooc.runOrThrow();
        EXPECT_EQ(fingerprintBytes(graph), expected) << budget.name;
        EXPECT_EQ(ooc.stats().spillFallbacks, 0u);
    }
}

TEST(EnumOoc, AllConditionsRecordingIdenticalToo)
{
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    murphi::EnumOptions options = baseOptions();
    options.recording = murphi::EdgeRecording::AllConditions;
    const std::string expected = inMemoryBaseline(model, options);
    options.numThreads = 4;
    options.memoryBudgetBytes = kBudgets[1].budgetBytes;
    murphi::Enumerator ooc(model, options);
    EXPECT_EQ(fingerprintBytes(ooc.runOrThrow()), expected);
}

TEST(EnumOoc, MaxStatesCapStillEnforced)
{
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    murphi::EnumOptions options = baseOptions();
    options.maxStates = 10;
    options.memoryBudgetBytes = kBudgets[1].budgetBytes;
    murphi::Enumerator ooc(model, options);
    auto result = ooc.run();
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errorMessage().find("state explosion"),
              std::string::npos);
}

// --- Multi-process differentials ------------------------------------

TEST(EnumOoc, MultiProcessIdenticalToSingleProcess)
{
    if (ARCHVAL_TSAN)
        GTEST_SKIP() << "fork without exec is unsupported under TSan";
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    for (murphi::StepKernel kernel :
         {murphi::StepKernel::Interpreted,
          murphi::StepKernel::BitSliced}) {
        murphi::EnumOptions options = baseOptions();
        options.compiledStep = kernel;
        const std::string expected = inMemoryBaseline(model, options);
        for (unsigned processes : {2u, 4u}) {
            for (size_t budget :
                 {size_t(0), kBudgets[1].budgetBytes}) {
                options.numProcesses = processes;
                options.memoryBudgetBytes = budget;
                murphi::Enumerator ooc(model, options);
                auto graph = ooc.runOrThrow();
                EXPECT_EQ(fingerprintBytes(graph), expected)
                    << processes << " processes, budget " << budget;
                EXPECT_EQ(ooc.stats().spillFallbacks, 0u);
                EXPECT_EQ(ooc.stats().numProcesses, processes);
            }
        }
    }
}

TEST(EnumOoc, CorpusDesignMultiProcessIdentical)
{
    if (ARCHVAL_TSAN)
        GTEST_SKIP() << "fork without exec is unsupported under TSan";
    auto result = hdl::translateCorpus(hdl::largestCorpusDesign());
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const fsm::Model &model = *result.value().model;
    murphi::EnumOptions options = baseOptions();
    options.compiledStep = murphi::StepKernel::Bytecode;
    const std::string expected = inMemoryBaseline(model, options);
    options.numProcesses = 2;
    options.memoryBudgetBytes = kBudgets[1].budgetBytes;
    murphi::Enumerator ooc(model, options);
    EXPECT_EQ(fingerprintBytes(ooc.runOrThrow()), expected);
}

// --- Fault injection ------------------------------------------------

/** First shard page-out gets one payload byte flipped: the CRC must
 *  catch it at page-in and the partition be rebuilt from the
 *  retained graph — identical graph, counted fallback. */
TEST(EnumOoc, CorruptShardFileRebuildsFromGraph)
{
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    murphi::EnumOptions options = baseOptions();
    const std::string expected = inMemoryBaseline(model, options);

    bool corrupted = false;
    murphi::ooc::TestHooks hooks;
    hooks.afterShardPageOut = [&](const std::string &path, size_t) {
        if (corrupted)
            return;
        // Offset 20 lands inside the header record's payload; any
        // flipped payload byte must surface as a CRC mismatch.
        ASSERT_TRUE(corruptFileByteForTesting(path, 20));
        corrupted = true;
    };
    options.numThreads = 2;
    options.memoryBudgetBytes = kBudgets[1].budgetBytes;
    options.testHooks = &hooks;
    murphi::Enumerator ooc(model, options);
    auto graph = ooc.runOrThrow();
    EXPECT_TRUE(corrupted) << "tight budget never paged a shard out";
    EXPECT_EQ(fingerprintBytes(graph), expected);
    EXPECT_GE(ooc.stats().spillFallbacks, 1u);
}

/** Same fault with the pathological single shard: every candidate
 *  resolution goes through the damaged file. */
TEST(EnumOoc, CorruptShardSinglePartitionRebuilds)
{
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    murphi::EnumOptions options = baseOptions();
    const std::string expected = inMemoryBaseline(model, options);
    bool corrupted = false;
    murphi::ooc::TestHooks hooks;
    hooks.afterShardPageOut = [&](const std::string &path, size_t) {
        if (!corrupted) {
            ASSERT_TRUE(corruptFileByteForTesting(path, 20));
            corrupted = true;
        }
    };
    options.memoryBudgetBytes = 4096;
    options.oocPartitions = 1;
    options.testHooks = &hooks;
    murphi::Enumerator ooc(model, options);
    EXPECT_EQ(fingerprintBytes(ooc.runOrThrow()), expected);
    EXPECT_TRUE(corrupted);
    EXPECT_GE(ooc.stats().spillFallbacks, 1u);
}

/** A truncated frontier file must be detected (record framing) and
 *  the frontier rebuilt from the retained graph. */
TEST(EnumOoc, TruncatedFrontierRebuildsFromGraph)
{
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    murphi::EnumOptions options = baseOptions();
    const std::string expected = inMemoryBaseline(model, options);
    bool truncated = false;
    murphi::ooc::TestHooks hooks;
    hooks.afterFrontierWrite = [&](const std::string &path) {
        if (truncated)
            return;
        struct stat st
        {
        };
        ASSERT_EQ(::stat(path.c_str(), &st), 0);
        ASSERT_TRUE(truncateFileForTesting(
            path, static_cast<uint64_t>(st.st_size) - 5));
        truncated = true;
    };
    options.memoryBudgetBytes = kBudgets[1].budgetBytes;
    options.testHooks = &hooks;
    murphi::Enumerator ooc(model, options);
    auto graph = ooc.runOrThrow();
    EXPECT_TRUE(truncated);
    EXPECT_EQ(fingerprintBytes(graph), expected);
    EXPECT_GE(ooc.stats().spillFallbacks, 1u);
}

/** Without retained states there is nothing to rebuild from: damage
 *  must surface as a typed error result, never a crash and never a
 *  silently different graph. */
TEST(EnumOoc, DamageWithoutRetentionIsTypedError)
{
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    murphi::EnumOptions options = baseOptions();
    options.retainStates = false;
    bool corrupted = false;
    murphi::ooc::TestHooks hooks;
    hooks.afterShardPageOut = [&](const std::string &path, size_t) {
        if (!corrupted) {
            ASSERT_TRUE(corruptFileByteForTesting(path, 20));
            corrupted = true;
        }
    };
    options.memoryBudgetBytes = 4096;
    options.oocPartitions = 1;
    options.testHooks = &hooks;
    murphi::Enumerator ooc(model, options);
    auto result = ooc.run();
    ASSERT_TRUE(corrupted);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errorMessage().find("damaged"),
              std::string::npos)
        << result.errorMessage();
    EXPECT_GE(ooc.stats().spillFallbacks, 1u);
}

/** An unusable spill directory degrades to the fully-resident search
 *  (identical graph, one counted fallback) instead of failing. */
TEST(EnumOoc, UnusableSpillDirDegradesInMemory)
{
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    murphi::EnumOptions options = baseOptions();
    const std::string expected = inMemoryBaseline(model, options);
    options.memoryBudgetBytes = kBudgets[1].budgetBytes;
    options.spillDir = "/dev/null/not-a-directory";
    murphi::Enumerator ooc(model, options);
    auto graph = ooc.runOrThrow();
    EXPECT_EQ(fingerprintBytes(graph), expected);
    EXPECT_GE(ooc.stats().spillFallbacks, 1u);
    EXPECT_EQ(ooc.stats().pageOuts, 0u);
    EXPECT_EQ(ooc.stats().spillBytesWritten, 0u);
}

/** Killing a worker process mid-level re-expands its slice in the
 *  parent: identical graph, counted fallback. */
TEST(EnumOoc, KilledWorkerProcessReexpandsLocally)
{
    if (ARCHVAL_TSAN)
        GTEST_SKIP() << "fork without exec is unsupported under TSan";
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    murphi::EnumOptions options = baseOptions();
    const std::string expected = inMemoryBaseline(model, options);
    bool killed = false;
    murphi::ooc::TestHooks hooks;
    hooks.onLevelStart = [&](size_t level,
                             const std::vector<int> &pids) {
        if (killed || level != 1 || pids.empty() || pids[0] <= 0)
            return;
        ASSERT_EQ(::kill(pids[0], SIGKILL), 0);
        killed = true;
    };
    options.numProcesses = 2;
    options.testHooks = &hooks;
    murphi::Enumerator ooc(model, options);
    auto graph = ooc.runOrThrow();
    EXPECT_TRUE(killed) << "search ended before level 1";
    EXPECT_EQ(fingerprintBytes(graph), expected);
    EXPECT_GE(ooc.stats().spillFallbacks, 1u);
}

// --- Spill file unit coverage ---------------------------------------

TEST(EnumOoc, FrontierFileRoundTripsAndRejectsMismatch)
{
    murphi::ooc::SpillDir dir("");
    ASSERT_TRUE(dir.ok());
    std::vector<BitVec> states;
    for (uint64_t i = 0; i < 700; ++i) {
        BitVec state(67);
        state.setField(0, 64, i * 0x9e3779b97f4a7c15ull);
        state.setField(64, 3, i & 7);
        states.push_back(std::move(state));
    }
    const std::string path = murphi::ooc::frontierPath(dir.path(), 3);
    uint64_t bytes = 0;
    ASSERT_TRUE(
        murphi::ooc::writeFrontierFile(path, 3, 67, states, &bytes));
    EXPECT_GT(bytes, 0u);

    std::vector<BitVec> back;
    ASSERT_TRUE(
        murphi::ooc::readFrontierFile(path, 3, 67, 700, back));
    ASSERT_EQ(back.size(), states.size());
    for (size_t i = 0; i < states.size(); ++i)
        EXPECT_EQ(back[i], states[i]) << "state " << i;

    // Wrong level, wrong width, wrong count: all rejected.
    EXPECT_FALSE(
        murphi::ooc::readFrontierFile(path, 4, 67, 700, back));
    EXPECT_FALSE(
        murphi::ooc::readFrontierFile(path, 3, 66, 700, back));
    EXPECT_FALSE(
        murphi::ooc::readFrontierFile(path, 3, 67, 699, back));

    // A flipped payload byte is a CRC mismatch, not wrong states.
    ASSERT_TRUE(corruptFileByteForTesting(path, 64));
    EXPECT_FALSE(
        murphi::ooc::readFrontierFile(path, 3, 67, 700, back));
    EXPECT_TRUE(back.empty());
}

TEST(EnumOoc, ShardFileRoundTripsAndRejectsDamage)
{
    murphi::ooc::SpillDir dir("");
    ASSERT_TRUE(dir.ok());
    murphi::ooc::StateMap table;
    for (uint64_t i = 0; i < 600; ++i) {
        BitVec state(33);
        state.setField(0, 33, i | (i << 20));
        table.emplace(std::move(state),
                      static_cast<graph::StateId>(i));
    }
    const std::string path = murphi::ooc::shardPath(dir.path(), 7);
    uint64_t bytes = 0;
    ASSERT_TRUE(
        murphi::ooc::writeShardFile(path, 7, 33, table, &bytes));
    EXPECT_GT(bytes, 0u);

    murphi::ooc::StateMap back;
    ASSERT_TRUE(murphi::ooc::readShardFile(
        path, 7, 33, [&](BitVec &&key, graph::StateId id) {
            back.emplace(std::move(key), id);
        }));
    EXPECT_EQ(back, table);

    // Wrong partition or width: rejected before any entry is used.
    EXPECT_FALSE(murphi::ooc::readShardFile(
        path, 8, 33, [](BitVec &&, graph::StateId) {}));
    EXPECT_FALSE(murphi::ooc::readShardFile(
        path, 7, 32, [](BitVec &&, graph::StateId) {}));

    // Truncation mid-records is Damaged, not a short table.
    struct stat st
    {
    };
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    ASSERT_TRUE(truncateFileForTesting(
        path, static_cast<uint64_t>(st.st_size) / 2));
    EXPECT_FALSE(murphi::ooc::readShardFile(
        path, 7, 33, [](BitVec &&, graph::StateId) {}));
}

TEST(EnumOoc, ProvisionalIdFlagUnchanged)
{
    // The provisional-id encoding is shared between the in-memory
    // and out-of-core searches; moving it must not change it.
    EXPECT_EQ(murphi::detail::kPendingFlag, 0x8000'0000u);
}

} // namespace
} // namespace archval

/**
 * @file
 * Determinism and equivalence suite for the parallel sharded
 * enumerator: for each HDL example design and the PP FSM model, the
 * parallel search at worker counts {1, 2, 8} must produce a graph
 * byte-identical to the sequential search — same ids, same packed
 * states, same edges in the same order — in both edge-recording
 * modes. Registered under the ctest label `enum`.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "fsm/built_model.hh"
#include "hdl/translate.hh"
#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"

namespace archval
{
namespace
{

/**
 * Serialize every observable byte of a graph: per state the packed
 * vector, per edge (in id order) all four fields, and the adjacency
 * lists. Two graphs with equal fingerprints are interchangeable for
 * every downstream consumer (tours, vectors, fuzzing, coverage).
 */
std::string
fingerprintBytes(const graph::StateGraph &graph)
{
    std::string bytes;
    auto put64 = [&bytes](uint64_t value) {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(char(value >> (8 * i)));
    };
    put64(graph.numStates());
    put64(graph.numEdges());
    put64(graph.statesRetained());
    for (graph::StateId s = 0; s < graph.numStates(); ++s) {
        if (graph.statesRetained()) {
            const BitVec &packed = graph.packedState(s);
            put64(packed.numBits());
            bytes += packed.toString();
        }
        for (graph::EdgeId e : graph.outEdges(s))
            put64(e);
    }
    for (graph::EdgeId e = 0; e < graph.numEdges(); ++e) {
        const graph::Edge &edge = graph.edge(e);
        put64(edge.src);
        put64(edge.dst);
        put64(edge.choiceCode);
        put64(edge.instrCount);
    }
    return bytes;
}

/** Enumerate @p model and compare graphs across worker counts. */
void
expectIdenticalAcrossWorkerCounts(const fsm::Model &model,
                                  murphi::EdgeRecording recording,
                                  bool retain_states = true)
{
    murphi::EnumOptions options;
    options.recording = recording;
    options.retainStates = retain_states;

    options.numThreads = 1;
    murphi::Enumerator sequential(model, options);
    auto baseline = sequential.runOrThrow();
    const std::string expected = fingerprintBytes(baseline);
    ASSERT_GT(baseline.numStates(), 0u);

    for (unsigned threads : {1u, 2u, 8u}) {
        options.numThreads = threads;
        murphi::Enumerator parallel(model, options);
        auto graph = parallel.runOrThrow();

        // Byte-identical, and state-for-state / edge-for-edge equal.
        EXPECT_EQ(fingerprintBytes(graph), expected)
            << model.name() << " diverges at " << threads
            << " threads";
        ASSERT_EQ(graph.numStates(), baseline.numStates());
        ASSERT_EQ(graph.numEdges(), baseline.numEdges());
        for (graph::StateId s = 0; s < graph.numStates(); ++s) {
            if (retain_states) {
                ASSERT_EQ(graph.packedState(s),
                          baseline.packedState(s))
                    << "state " << s << " at " << threads
                    << " threads";
            }
            ASSERT_EQ(graph.outEdges(s), baseline.outEdges(s));
        }
        for (graph::EdgeId e = 0; e < graph.numEdges(); ++e) {
            const graph::Edge &got = graph.edge(e);
            const graph::Edge &want = baseline.edge(e);
            ASSERT_EQ(got.src, want.src) << "edge " << e;
            ASSERT_EQ(got.dst, want.dst) << "edge " << e;
            ASSERT_EQ(got.choiceCode, want.choiceCode)
                << "edge " << e;
            ASSERT_EQ(got.instrCount, want.instrCount)
                << "edge " << e;
        }

        // Search-shape statistics are scheduling-independent too.
        EXPECT_EQ(parallel.stats().numStates,
                  sequential.stats().numStates);
        EXPECT_EQ(parallel.stats().numEdges,
                  sequential.stats().numEdges);
        EXPECT_EQ(parallel.stats().transitionsTried,
                  sequential.stats().transitionsTried);
        EXPECT_EQ(parallel.stats().transitionsValid,
                  sequential.stats().transitionsValid);
        ASSERT_EQ(parallel.stats().levels.size(),
                  sequential.stats().levels.size());
        for (size_t i = 0; i < parallel.stats().levels.size(); ++i) {
            EXPECT_EQ(parallel.stats().levels[i].frontierWidth,
                      sequential.stats().levels[i].frontierWidth);
            EXPECT_EQ(parallel.stats().levels[i].newStates,
                      sequential.stats().levels[i].newStates);
            EXPECT_EQ(parallel.stats().levels[i].newEdges,
                      sequential.stats().levels[i].newEdges);
        }
    }
}

void
expectIdenticalInBothModes(const fsm::Model &model)
{
    expectIdenticalAcrossWorkerCounts(
        model, murphi::EdgeRecording::FirstCondition);
    expectIdenticalAcrossWorkerCounts(
        model, murphi::EdgeRecording::AllConditions);
}

/** The HDL example designs from the end-to-end design suite. */
const char *elevator = R"(
module elevator(clk, req0, req1);
  input clk;
  input req0;
  input req1;
  reg floor;        // vfsm state floor reset 0
  reg [1:0] mode;   // vfsm state mode reset 0
  reg [1:0] timer;  // vfsm state timer reset 0
  reg pend0;        // vfsm state pend0 reset 0
  reg pend1;        // vfsm state pend1 reset 0

  wire want_here;
  wire want_there;
  assign want_here = (floor == 1'b0 && pend0) ||
                     (floor == 1'b1 && pend1);
  assign want_there = (floor == 1'b0 && pend1) ||
                      (floor == 1'b1 && pend0);

  always @(posedge clk) begin
    if (req0) pend0 <= 1'b1;
    if (req1) pend1 <= 1'b1;
    case (mode)
      2'd0: begin
        if (want_here) begin
          mode <= 2'd2;
          timer <= 2'd0;
        end else if (want_there)
          mode <= 2'd1;
      end
      2'd1: begin
        floor <= !floor;
        mode <= 2'd2;
        timer <= 2'd0;
      end
      2'd2: begin
        if (timer == 2'd1) begin
          if (floor == 1'b0) pend0 <= 1'b0;
          else pend1 <= 1'b0;
          mode <= 2'd0;
        end else
          timer <= timer + 2'd1;
      end
      default: mode <= 2'd0;
    endcase
  end
endmodule
)";

const char *creditSender = R"(
module credit_sender(clk, want_send, credit_return);
  input clk;
  input want_send;
  input credit_return;
  parameter MAX = 3;
  reg [1:0] credits;  // vfsm state credits reset 3
  wire can_send;
  assign can_send = credits != 2'd0;  // vfsm instr sent
  wire sent;
  assign sent = want_send && can_send;

  always @(posedge clk) begin
    if (sent && !credit_return)
      credits <= credits - 2'd1;
    else if (!sent && credit_return && credits != MAX)
      credits <= credits + 2'd1;
  end
endmodule
)";

TEST(EnumParallel, ElevatorIdenticalAcrossWorkerCounts)
{
    auto result = hdl::translateSource(elevator, "elevator");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    expectIdenticalInBothModes(*result.value().model);
}

TEST(EnumParallel, CreditSenderIdenticalAcrossWorkerCounts)
{
    auto result = hdl::translateSource(creditSender, "credit_sender");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    expectIdenticalInBothModes(*result.value().model);
}

TEST(EnumParallel, PpFsmModelIdenticalAcrossWorkerCounts)
{
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    expectIdenticalInBothModes(model);
}

TEST(EnumParallel, PpFsmModelLargerConfigIdentical)
{
    // A mid-size PP configuration by default; set ARCHVAL_ENUM_SOAK
    // to run the paper-scale full preset (adds ~10s). FirstCondition
    // only to keep the suite fast (AllConditions is covered above).
    rtl::PpConfig config = rtl::PpConfig::smallPreset();
    config.lineWords = 4;
    config.dualIssue = true;
    if (std::getenv("ARCHVAL_ENUM_SOAK"))
        config = rtl::PpConfig::fullPreset();
    rtl::PpFsmModel model(config);
    expectIdenticalAcrossWorkerCounts(
        model, murphi::EdgeRecording::FirstCondition);
}

TEST(EnumParallel, UnretainedGraphsIdenticalToo)
{
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    expectIdenticalAcrossWorkerCounts(
        model, murphi::EdgeRecording::FirstCondition,
        /*retain_states=*/false);
}

TEST(EnumParallel, WideShallowModelExercisesSlicing)
{
    // One root fanning out to 256 states in a single level: the
    // level barrier must assign ids in canonical order even when
    // every worker owns a disjoint slice of a single wide level.
    auto model = std::make_unique<fsm::LambdaModel>(
        "wide",
        std::vector<fsm::StateVarInfo>{{"s", 9, 0}},
        std::vector<fsm::ChoiceVarInfo>{{"c", 256}},
        [](const BitVec &state, const fsm::Choice &choice)
            -> std::optional<BitVec> {
            BitVec next(9);
            uint64_t v = state.getField(0, 9);
            next.setField(0, 9, v == 0 ? 256 + choice[0] - 255 : v);
            return next;
        });
    expectIdenticalInBothModes(*model);
}

} // namespace
} // namespace archval

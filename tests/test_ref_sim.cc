/**
 * @file
 * Unit tests for the instruction-level reference simulator.
 */

#include <gtest/gtest.h>

#include "pp/assembler.hh"
#include "pp/ref_sim.hh"
#include "support/status.hh"

namespace archval::pp
{
namespace
{

std::vector<uint32_t>
mustAssemble(const std::string &text)
{
    auto result = assemble(text);
    EXPECT_TRUE(result.ok()) << result.errorMessage();
    return result.value();
}

TEST(RefSim, AluArithmetic)
{
    RefSim sim;
    sim.loadProgram(mustAssemble(R"(
        addi r1, r0, 10
        addi r2, r0, 3
        add r3, r1, r2
        sub r4, r1, r2
        and r5, r1, r2
        or  r6, r1, r2
        xor r7, r1, r2
        slt r8, r2, r1
        slt r9, r1, r2
        halt
    )"));
    EXPECT_EQ(sim.run(), StopReason::Halted);
    EXPECT_EQ(sim.reg(3), 13u);
    EXPECT_EQ(sim.reg(4), 7u);
    EXPECT_EQ(sim.reg(5), 2u);
    EXPECT_EQ(sim.reg(6), 11u);
    EXPECT_EQ(sim.reg(7), 9u);
    EXPECT_EQ(sim.reg(8), 1u);
    EXPECT_EQ(sim.reg(9), 0u);
}

TEST(RefSim, R0IsHardwiredZero)
{
    RefSim sim;
    sim.loadProgram(mustAssemble("addi r0, r0, 99\nhalt"));
    sim.run();
    EXPECT_EQ(sim.reg(0), 0u);
}

TEST(RefSim, Shifts)
{
    RefSim sim;
    sim.loadProgram(mustAssemble(R"(
        addi r1, r0, -8
        sll r2, r1, 2
        srl r3, r1, 2
        sra r4, r1, 2
        halt
    )"));
    sim.run();
    EXPECT_EQ(sim.reg(2), static_cast<uint32_t>(-32));
    EXPECT_EQ(sim.reg(3), 0x3ffffffeu);
    EXPECT_EQ(sim.reg(4), static_cast<uint32_t>(-2));
}

TEST(RefSim, LuiAndOriBuildConstants)
{
    RefSim sim;
    sim.loadProgram(mustAssemble(R"(
        lui r1, 0x1234
        ori r1, r1, 0x5678
        halt
    )"));
    sim.run();
    EXPECT_EQ(sim.reg(1), 0x12345678u);
}

TEST(RefSim, LoadStoreRoundTrip)
{
    RefSim sim;
    sim.loadProgram(mustAssemble(R"(
        addi r1, r0, 0x44
        addi r2, r0, 64
        sw r1, 0(r2)
        lw r3, 0(r2)
        halt
    )"));
    sim.run();
    EXPECT_EQ(sim.reg(3), 0x44u);
    EXPECT_EQ(sim.archState().dmem[16], 0x44u);
}

TEST(RefSim, MemoryAddressWraps)
{
    MachineConfig config;
    config.dmemWords = 16;
    RefSim sim(config);
    sim.loadProgram(mustAssemble(R"(
        addi r1, r0, 0x77
        addi r2, r0, 68   ; word 17 wraps to word 1
        sw r1, 0(r2)
        halt
    )"));
    sim.run();
    EXPECT_EQ(sim.archState().dmem[1], 0x77u);
}

TEST(RefSim, SwitchPopsInbox)
{
    RefSim sim;
    sim.loadProgram(mustAssemble("switch r1\nswitch r2\nhalt"));
    sim.setInbox({0xaa, 0xbb});
    EXPECT_EQ(sim.run(), StopReason::Halted);
    EXPECT_EQ(sim.reg(1), 0xaau);
    EXPECT_EQ(sim.reg(2), 0xbbu);
}

TEST(RefSim, SwitchOnEmptyInboxStops)
{
    RefSim sim;
    sim.loadProgram(mustAssemble("switch r1\nhalt"));
    EXPECT_EQ(sim.run(), StopReason::InboxEmpty);
}

TEST(RefSim, SendPushesOutbox)
{
    RefSim sim;
    sim.loadProgram(mustAssemble(R"(
        addi r1, r0, 11
        send r1
        addi r1, r0, 22
        send r1
        halt
    )"));
    sim.run();
    auto outbox = sim.archState().outbox;
    ASSERT_EQ(outbox.size(), 2u);
    EXPECT_EQ(outbox[0], 11u);
    EXPECT_EQ(outbox[1], 22u);
}

TEST(RefSim, BranchLoop)
{
    RefSim sim;
    sim.loadProgram(mustAssemble(R"(
        addi r1, r0, 5
        addi r2, r0, 0
    loop:
        add r2, r2, r1
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    )"));
    EXPECT_EQ(sim.run(), StopReason::Halted);
    EXPECT_EQ(sim.reg(2), 15u); // 5+4+3+2+1
}

TEST(RefSim, BeqTakenAndNotTaken)
{
    RefSim sim;
    sim.loadProgram(mustAssemble(R"(
        addi r1, r0, 1
        beq r1, r0, skip   ; not taken
        addi r2, r0, 7
        beq r1, r1, skip   ; taken
        addi r2, r0, 99    ; skipped
    skip:
        halt
    )"));
    sim.run();
    EXPECT_EQ(sim.reg(2), 7u);
}

TEST(RefSim, JumpRedirects)
{
    RefSim sim;
    sim.loadProgram(mustAssemble(R"(
        j over
        addi r1, r0, 1   ; skipped
    over:
        addi r2, r0, 2
        halt
    )"));
    sim.run();
    EXPECT_EQ(sim.reg(1), 0u);
    EXPECT_EQ(sim.reg(2), 2u);
}

TEST(RefSim, StepLimitStopsRunawayLoop)
{
    RefSim sim;
    sim.loadProgram(mustAssemble("spin:\nj spin"));
    EXPECT_EQ(sim.run(100), StopReason::StepLimit);
    EXPECT_EQ(sim.instructionsRetired(), 100u);
}

TEST(RefSim, RunOffEnd)
{
    RefSim sim;
    sim.loadProgram(mustAssemble("nop\nnop"));
    EXPECT_EQ(sim.run(), StopReason::RanOffEnd);
}

TEST(RefSim, ArchStateDiffFindsRegisterMismatch)
{
    RefSim a, b;
    a.loadProgram(mustAssemble("addi r1, r0, 1\nhalt"));
    b.loadProgram(mustAssemble("addi r1, r0, 2\nhalt"));
    a.run();
    b.run();
    auto diff = a.archState().diff(b.archState());
    EXPECT_NE(diff.find("r1"), std::string::npos);
}

TEST(RefSim, ArchStateDiffFindsMemoryMismatch)
{
    RefSim a, b;
    a.loadProgram(mustAssemble("halt"));
    b.loadProgram(mustAssemble("halt"));
    a.pokeDmem(5, 1);
    a.run();
    b.run();
    // pokeDmem happens after loadProgram resets memory, so re-poke.
    a.pokeDmem(5, 1);
    EXPECT_NE(a.archState().diff(b.archState()), "");
}

TEST(RefSim, ArchStateEqualWhenSameRun)
{
    RefSim a, b;
    auto program = mustAssemble(R"(
        addi r1, r0, 3
        sw r1, 4(r0)
        send r1
        halt
    )");
    a.loadProgram(program);
    b.loadProgram(program);
    a.run();
    b.run();
    EXPECT_EQ(a.archState().diff(b.archState()), "");
    EXPECT_EQ(a.archState(), b.archState());
}

TEST(RefSim, PokeDmemVisibleToLoads)
{
    RefSim sim;
    sim.loadProgram(mustAssemble("lw r1, 12(r0)\nhalt"));
    sim.pokeDmem(3, 0xdead);
    sim.run();
    EXPECT_EQ(sim.reg(1), 0xdeadu);
}

TEST(RefSim, BadDmemConfigIsFatal)
{
    MachineConfig config;
    config.dmemWords = 100; // not a power of two
    EXPECT_THROW(RefSim sim(config), FatalError);
}

} // namespace
} // namespace archval::pp

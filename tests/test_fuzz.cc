/**
 * @file
 * Coverage-guided fuzzing subsystem tests: corpus scheduling, trace
 * mutation validity, engine feedback behaviour, campaign determinism
 * across worker threads, and CoverageTracker merge/reset.
 *
 * Budgets honour ARCHVAL_FUZZ_SMOKE=1 (set by ctest) so the whole
 * file runs in seconds under the tier-1 suite; unset the variable
 * for a longer soak.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "fuzz/campaign.hh"
#include "fuzz/corpus.hh"
#include "fuzz/engine.hh"
#include "fuzz/mutator.hh"
#include "harness/bug_hunt.hh"
#include "murphi/enumerator.hh"

namespace archval::fuzz
{
namespace
{

using rtl::BugId;
using rtl::BugSet;
using rtl::PpConfig;
using rtl::PpFsmModel;

bool
smokeMode()
{
    const char *env = std::getenv("ARCHVAL_FUZZ_SMOKE");
    return env && env[0] == '1';
}

uint64_t
engineBudget()
{
    return smokeMode() ? 6'000 : 60'000;
}

CampaignOptions
campaignOptions()
{
    CampaignOptions options;
    options.workers = 4;
    options.roundInstructions = smokeMode() ? 2'000 : 10'000;
    options.maxRounds = smokeMode() ? 3 : 8;
    options.seed = 7;
    return options;
}

class FuzzFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        config_ = new PpConfig(PpConfig::smallPreset());
        model_ = new PpFsmModel(*config_);
        murphi::Enumerator enumerator(*model_);
        graph_ = new graph::StateGraph(enumerator.runOrThrow());
        graph::TourGenerator tour_gen(*graph_);
        tours_ = new std::vector<graph::Trace>(tour_gen.run());
    }

    static void
    TearDownTestSuite()
    {
        delete tours_;
        delete graph_;
        delete model_;
        delete config_;
        tours_ = nullptr;
        graph_ = nullptr;
        model_ = nullptr;
        config_ = nullptr;
    }

    static PpConfig *config_;
    static PpFsmModel *model_;
    static graph::StateGraph *graph_;
    static std::vector<graph::Trace> *tours_;
};

PpConfig *FuzzFixture::config_ = nullptr;
PpFsmModel *FuzzFixture::model_ = nullptr;
graph::StateGraph *FuzzFixture::graph_ = nullptr;
std::vector<graph::Trace> *FuzzFixture::tours_ = nullptr;

TEST_F(FuzzFixture, CoverageTrackerMergeUnionsArcs)
{
    harness::CoverageTracker a(*graph_), b(*graph_);
    const auto &tour = tours_->front();
    size_t half = tour.edges.size() / 2;

    graph::Trace front, back;
    front.edges.assign(tour.edges.begin(),
                       tour.edges.begin() + half);
    back.edges.assign(tour.edges.begin() + half, tour.edges.end());
    a.addTrace(front);
    b.addTrace(back);

    uint64_t union_size = 0;
    {
        harness::CoverageTracker both(*graph_);
        both.addTrace(front);
        both.addTrace(back);
        union_size = both.coveredEdges();
    }

    uint64_t a_instr = a.instructions(), b_instr = b.instructions();
    a.merge(b);
    EXPECT_EQ(a.coveredEdges(), union_size);
    EXPECT_EQ(a.instructions(), a_instr + b_instr);

    // Merging again must not double-count arcs.
    a.merge(b);
    EXPECT_EQ(a.coveredEdges(), union_size);
}

TEST_F(FuzzFixture, CoverageTrackerResetClears)
{
    harness::CoverageTracker tracker(*graph_);
    tracker.addTrace(tours_->front());
    tracker.samplePoint();
    ASSERT_GT(tracker.coveredEdges(), 0u);

    tracker.reset();
    EXPECT_EQ(tracker.coveredEdges(), 0u);
    EXPECT_EQ(tracker.instructions(), 0u);
    EXPECT_EQ(tracker.cycles(), 0u);
    EXPECT_TRUE(tracker.curve().empty());
    EXPECT_DOUBLE_EQ(tracker.fraction(), 0.0);
}

TEST_F(FuzzFixture, CorpusPicksAreEnergyWeightedAndDeterministic)
{
    Corpus corpus;
    Candidate candidate;
    candidate.trace = tours_->front();
    corpus.add(candidate, 1);
    corpus.add(candidate, 1'000'000);

    Rng rng(3);
    size_t heavy_picks = 0;
    for (int i = 0; i < 20; ++i) {
        if (corpus.pick(rng) == 1)
            ++heavy_picks;
    }
    // The heavy entry dominates even as its energy halves.
    EXPECT_GE(heavy_picks, 15u);

    // Same seed, same pick sequence (fresh corpora: picks decay
    // energy, so state must match too).
    Corpus fresh_a, fresh_b;
    for (Corpus *c : {&fresh_a, &fresh_b}) {
        c->add(candidate, 1);
        c->add(candidate, 1'000'000);
    }
    Rng rng_a(99), rng_b(99);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(fresh_a.pick(rng_a), fresh_b.pick(rng_b));
}

TEST_F(FuzzFixture, CorpusEvictsLowestEnergyPastBound)
{
    Corpus corpus(3);
    Candidate candidate;
    candidate.trace = tours_->front();
    corpus.add(candidate, 10);
    corpus.add(candidate, 2); // victim
    corpus.add(candidate, 30);
    corpus.add(candidate, 20);
    ASSERT_EQ(corpus.size(), 3u);
    for (const CorpusEntry &entry : corpus.entries())
        EXPECT_NE(entry.energy, 2u);
}

TEST_F(FuzzFixture, EveryMutationOperatorPreservesWalkValidity)
{
    TraceMutator mutator(*graph_, 600);
    Rng rng(11);

    Candidate base, donor;
    base.trace = tours_->front();
    donor.trace = tours_->size() > 1 ? (*tours_)[1] : tours_->front();

    for (size_t op = 0;
         op < static_cast<size_t>(MutationOp::NumOps); ++op) {
        for (int i = 0; i < 40; ++i) {
            Candidate mutant =
                mutator.apply(static_cast<MutationOp>(op), base,
                              donor, rng);
            EXPECT_EQ(checkTraceValid(*graph_, mutant.trace), "")
                << mutationOpName(static_cast<MutationOp>(op))
                << " iteration " << i;
            EXPECT_FALSE(mutant.trace.edges.empty());
        }
    }
}

TEST_F(FuzzFixture, MutantsOfMutantsStayValid)
{
    // Chained mutation is the actual fuzz-loop workload.
    TraceMutator mutator(*graph_, 600);
    Rng rng(23);
    Candidate current;
    current.trace = tours_->front();
    for (int i = 0; i < 120; ++i) {
        current = mutator.mutate(current, current, rng);
        ASSERT_EQ(checkTraceValid(*graph_, current.trace), "")
            << "generation " << i;
    }
}

TEST_F(FuzzFixture, ClassResampleKeepsWalkChangesSeed)
{
    TraceMutator mutator(*graph_, 600);
    Rng rng(5);
    Candidate base;
    base.trace = tours_->front();
    base.vecgenSeed = 1234;
    Candidate mutant = mutator.apply(MutationOp::ClassResample, base,
                                     base, rng);
    EXPECT_EQ(mutant.trace.edges, base.trace.edges);
    EXPECT_NE(mutant.vecgenSeed, base.vecgenSeed);
}

TEST_F(FuzzFixture, EngineIsDeterministicForFixedSeed)
{
    FuzzEngine a(*config_, *model_, *graph_, 42);
    FuzzEngine b(*config_, *model_, *graph_, 42);
    a.seedCorpus(*tours_);
    b.seedCorpus(*tours_);
    FuzzDetection da = a.run(BugSet{}, engineBudget() / 4);
    FuzzDetection db = b.run(BugSet{}, engineBudget() / 4);
    EXPECT_EQ(da.detected, db.detected);
    EXPECT_EQ(a.stats().iterations, b.stats().iterations);
    EXPECT_EQ(a.stats().instructions, b.stats().instructions);
    EXPECT_EQ(a.stats().cycles, b.stats().cycles);
    EXPECT_EQ(a.coverage().coveredEdges(),
              b.coverage().coveredEdges());
    EXPECT_EQ(a.corpus().size(), b.corpus().size());
}

TEST_F(FuzzFixture, EngineNeverDivergesBugFree)
{
    FuzzEngine engine(*config_, *model_, *graph_, 17);
    engine.seedCorpus(*tours_);
    FuzzDetection detection =
        engine.run(BugSet{}, engineBudget() / 2);
    EXPECT_FALSE(detection.detected) << detection.detail;
    EXPECT_GT(engine.stats().iterations, 0u);
}

TEST_F(FuzzFixture, EngineCoverageFeedbackGrowsCorpus)
{
    FuzzOptions options;
    options.seedTours = 1;
    options.seedWalks = 1;
    options.maxTraceInstructions = 300;
    FuzzEngine engine(*config_, *model_, *graph_, 19, options);
    engine.seedCorpus(*tours_);
    size_t seeded = engine.corpus().size();
    engine.run(BugSet{}, engineBudget() / 2);
    // The mutation loop must have admitted interesting candidates
    // and credited them to a feedback signal.
    EXPECT_GT(engine.corpus().size(), seeded);
    EXPECT_GT(engine.stats().arcNovel + engine.stats().stateNovel,
              0u);
    EXPECT_GT(engine.coverage().coveredEdges(), 0u);
}

TEST_F(FuzzFixture, EngineDetectsInjectedBug)
{
    BugSet bugs;
    bugs.set(static_cast<size_t>(BugId::Bug3ConflictAddr));
    FuzzEngine engine(*config_, *model_, *graph_, 2024);
    engine.seedCorpus(*tours_);
    FuzzDetection detection = engine.run(bugs, engineBudget());
    EXPECT_TRUE(detection.detected) << "fuzz engine missed bug3";
    EXPECT_GT(detection.instructions, 0u);
    EXPECT_FALSE(detection.detail.empty());
}

TEST_F(FuzzFixture, CampaignIsBitDeterministicForFixedSeedAndWorkers)
{
    BugSet bugs;
    bugs.set(static_cast<size_t>(BugId::Bug3ConflictAddr));
    CampaignOptions options = campaignOptions();

    CampaignRunner runner_a(*config_, *model_, *graph_, options);
    CampaignRunner runner_b(*config_, *model_, *graph_, options);
    CampaignResult a = runner_a.run(bugs, *tours_);
    CampaignResult b = runner_b.run(bugs, *tours_);

    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.detail, b.detail);
    EXPECT_EQ(a.detectionRound, b.detectionRound);
    EXPECT_EQ(a.detectionWorker, b.detectionWorker);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.coveredEdges, b.coveredEdges);
    EXPECT_EQ(a.corpusSize, b.corpusSize);
}

TEST_F(FuzzFixture, CampaignDetectsInjectedBug)
{
    BugSet bugs;
    bugs.set(static_cast<size_t>(BugId::Bug3ConflictAddr));
    CampaignRunner runner(*config_, *model_, *graph_,
                          campaignOptions());
    CampaignResult result = runner.run(bugs, *tours_);
    EXPECT_TRUE(result.detected) << "campaign missed bug3";
    EXPECT_GT(result.instructions, 0u);
}

TEST_F(FuzzFixture, CampaignMergesWorkerCoverage)
{
    CampaignOptions options = campaignOptions();
    CampaignRunner runner(*config_, *model_, *graph_, options);
    CampaignResult merged = runner.run(BugSet{}, *tours_);

    CampaignOptions solo = options;
    solo.workers = 1;
    CampaignRunner solo_runner(*config_, *model_, *graph_, solo);
    CampaignResult single = solo_runner.run(BugSet{}, *tours_);

    // Four workers spend ~4x the simulation and pool their feedback,
    // so merged coverage cannot trail a single worker's.
    EXPECT_GE(merged.coveredEdges, single.coveredEdges);
    EXPECT_GT(merged.totalInstructions, single.totalInstructions);
}

TEST_F(FuzzFixture, FuzzArmPlugsIntoBugHunt)
{
    vecgen::VectorGenerator generator(*model_, 42);
    std::vector<vecgen::TestTrace> vectors =
        generator.generateAll(*graph_, *tours_);
    harness::BugHunt hunt(*config_, *model_, *graph_, vectors);
    hunt.setFuzzArm(makeCampaignFuzzArm(*config_, *model_, *graph_,
                                        *tours_, campaignOptions()));
    harness::HuntResult result =
        hunt.hunt(BugId::Bug3ConflictAddr, 2'000);
    EXPECT_TRUE(result.fuzzRan);
    EXPECT_TRUE(result.fuzz.detected);
    std::string table = harness::renderHuntTable({result});
    EXPECT_NE(table.find("fuzz campaign"), std::string::npos);
}

} // namespace
} // namespace archval::fuzz

/**
 * @file
 * Tests for the cycle-accurate PP core in program mode: architectural
 * equivalence against the reference simulator on directed programs
 * and on randomized differential sweeps, cache behaviour, stall
 * accounting, and the halt protocol.
 */

#include <gtest/gtest.h>

#include "pp/assembler.hh"
#include "pp/ref_sim.hh"
#include "rtl/pp_core.hh"
#include "support/rng.hh"
#include "support/strings.hh"

namespace archval::rtl
{
namespace
{

using pp::ArchState;
using pp::RefSim;
using pp::StopReason;

std::vector<uint32_t>
mustAssemble(const std::string &text)
{
    auto result = pp::assemble(text);
    EXPECT_TRUE(result.ok()) << result.errorMessage();
    return result.value();
}

/** Run a program on both machines and return the diff ("" = equal). */
std::string
differential(const std::vector<uint32_t> &program,
             const std::deque<uint32_t> &inbox = {},
             const PpConfig &config = PpConfig::smallPreset(),
             uint64_t max_cycles = 200'000)
{
    RefSim ref(config.machine);
    ref.loadProgram(program);
    ref.setInbox(inbox);
    ref.run();

    PpCore core(config, CoreMode::Program);
    core.loadProgram(program);
    core.setInbox(inbox);
    core.run(max_cycles);
    EXPECT_TRUE(core.halted()) << "core did not halt";

    return ref.archState().diff(core.archState());
}

TEST(PpCore, AluProgramMatchesRef)
{
    EXPECT_EQ(differential(mustAssemble(R"(
        addi r1, r0, 100
        addi r2, r0, 23
        add r3, r1, r2
        sub r4, r1, r2
        xor r5, r3, r4
        slt r6, r4, r3
        halt
    )")), "");
}

TEST(PpCore, LoadStoreProgramMatchesRef)
{
    EXPECT_EQ(differential(mustAssemble(R"(
        addi r1, r0, 0x55
        addi r2, r0, 64
        sw r1, 0(r2)
        lw r3, 0(r2)
        addi r4, r3, 1
        sw r4, 4(r2)
        lw r5, 4(r2)
        halt
    )")), "");
}

TEST(PpCore, StoreLoadSameAddressConflictPath)
{
    // Load immediately after a store to the same line: exercises the
    // conflict stall and the drain-before-load ordering.
    EXPECT_EQ(differential(mustAssemble(R"(
        addi r1, r0, 0xab
        addi r2, r0, 128
        sw r1, 0(r2)
        lw r3, 0(r2)
        halt
    )")), "");
}

TEST(PpCore, StoreThenLoadOtherLineBypasses)
{
    EXPECT_EQ(differential(mustAssemble(R"(
        addi r1, r0, 0xcd
        addi r2, r0, 128
        addi r3, r0, 512
        sw r1, 0(r2)
        lw r4, 0(r3)
        lw r5, 0(r2)
        halt
    )")), "");
}

TEST(PpCore, BackToBackStores)
{
    EXPECT_EQ(differential(mustAssemble(R"(
        addi r1, r0, 1
        addi r2, r0, 2
        sw r1, 64(r0)
        sw r2, 68(r0)
        lw r3, 64(r0)
        lw r4, 68(r0)
        halt
    )")), "");
}

TEST(PpCore, SwitchAndSendMatchRef)
{
    EXPECT_EQ(differential(mustAssemble(R"(
        switch r1
        switch r2
        add r3, r1, r2
        send r3
        send r1
        halt
    )"), {5, 9}), "");
}

TEST(PpCore, ManySendsStallOnOutboxCapacity)
{
    // More sends than outbox capacity: the core must stall and drain.
    std::string text;
    text += "addi r1, r0, 7\n";
    for (int i = 0; i < 12; ++i)
        text += "send r1\naddi r1, r1, 1\n";
    text += "halt\n";
    EXPECT_EQ(differential(mustAssemble(text)), "");
}

TEST(PpCore, CacheMissesAndEvictions)
{
    // Walk more lines than the D-cache holds, with stores to make
    // victims dirty: exercises refill, fill-before-spill, writeback.
    std::string text = "addi r1, r0, 1\n";
    for (int i = 0; i < 24; ++i) {
        text += formatString("sw r1, %d(r0)\n", i * 8);
        text += "addi r1, r1, 1\n";
    }
    for (int i = 0; i < 24; ++i)
        text += formatString("lw r2, %d(r0)\nadd r3, r3, r2\n", i * 8);
    text += "halt\n";
    EXPECT_EQ(differential(mustAssemble(text)), "");
}

TEST(PpCore, BranchLoopMatchesRef)
{
    PpConfig config = PpConfig::smallPreset();
    config.modelBranches = true;
    // The branch's sources (r1) are produced two packets earlier
    // (nop padding), per the static schedule contract.
    EXPECT_EQ(differential(mustAssemble(R"(
        addi r1, r0, 4
        addi r2, r0, 0
    loop:
        add r2, r2, r1
        addi r1, r1, -1
        nop
        nop
        bne r1, r0, loop
        halt
    )"), {}, config), "");
}

TEST(PpCore, JumpMatchesRef)
{
    PpConfig config = PpConfig::smallPreset();
    config.modelBranches = true;
    EXPECT_EQ(differential(mustAssemble(R"(
        addi r1, r0, 1
        j over
        addi r1, r0, 99
    over:
        addi r2, r1, 1
        halt
    )"), {}, config), "");
}

TEST(PpCore, DualIssuePairsAluOps)
{
    PpConfig config = PpConfig::smallPreset();
    config.dualIssue = true;
    std::vector<uint32_t> program = mustAssemble(R"(
        addi r1, r0, 1
        addi r2, r0, 2
        addi r3, r0, 3
        addi r4, r0, 4
        halt
    )");

    PpCore core(config, CoreMode::Program);
    core.loadProgram(program);
    core.run(10'000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.reg(1), 1u);
    EXPECT_EQ(core.reg(4), 4u);
    // Dual issue must have saved cycles versus single issue.
    PpConfig single = config;
    single.dualIssue = false;
    PpCore core1(single, CoreMode::Program);
    core1.loadProgram(program);
    core1.run(10'000);
    EXPECT_LT(core.cycles(), core1.cycles());
}

TEST(PpCore, IntraPacketDependencyIsSequential)
{
    // slot1 reads slot0's result: packet semantics are sequential.
    PpConfig config = PpConfig::smallPreset();
    config.dualIssue = true;
    EXPECT_EQ(differential(mustAssemble(R"(
        addi r1, r0, 5
        addi r2, r1, 1
        addi r3, r2, 1
        halt
    )"), {}, config), "");
}

TEST(PpCore, HaltStopsTheMachine)
{
    PpCore core(PpConfig::smallPreset(), CoreMode::Program);
    core.loadProgram(mustAssemble("addi r1, r0, 1\nhalt\naddi r1, r0, 2"));
    core.run(10'000);
    EXPECT_TRUE(core.halted());
    EXPECT_EQ(core.reg(1), 1u);
    EXPECT_FALSE(core.step());
}

TEST(PpCore, CyclesExceedInstructionsWithStalls)
{
    PpCore core(PpConfig::smallPreset(), CoreMode::Program);
    core.loadProgram(mustAssemble(R"(
        lw r1, 0(r0)
        lw r2, 256(r0)
        lw r3, 512(r0)
        halt
    )"));
    core.run(10'000);
    ASSERT_TRUE(core.halted());
    EXPECT_GT(core.cycles(), core.instructionsRetired());
}

TEST(PpCore, PipeEmptyAfterHaltAndDrain)
{
    PpCore core(PpConfig::smallPreset(), CoreMode::Program);
    core.loadProgram(mustAssemble("addi r1, r0, 3\nhalt"));
    core.run(10'000);
    EXPECT_TRUE(core.halted());
}

/**
 * Randomized differential sweep: random straight-line programs (no
 * branches) over all instruction classes must match the reference
 * simulator exactly in every seed. This is the master equivalence
 * property: any mismatch is a bug in the core model.
 */
class RandomProgramSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomProgramSweep, CoreMatchesRef)
{
    Rng rng(GetParam());
    PpConfig config = PpConfig::smallPreset();
    config.dualIssue = rng.chance(1, 2);

    std::vector<uint32_t> program;
    std::deque<uint32_t> inbox;
    const unsigned length = 40 + rng.index(120);
    for (unsigned i = 0; i < length; ++i) {
        switch (rng.index(10)) {
          case 0:
          case 1:
          case 2:
          case 3: { // ALU
            unsigned rd = 1 + rng.index(31);
            unsigned rs = rng.index(32);
            unsigned rt = rng.index(32);
            switch (rng.index(4)) {
              case 0:
                program.push_back(
                    pp::encodeRType(pp::Funct::Add, rd, rs, rt));
                break;
              case 1:
                program.push_back(
                    pp::encodeRType(pp::Funct::Xor, rd, rs, rt));
                break;
              case 2:
                program.push_back(pp::encodeIType(
                    pp::Opcode::Addi, rd, rs,
                    static_cast<int16_t>(rng.next() & 0xffff)));
                break;
              default:
                program.push_back(pp::encodeIType(
                    pp::Opcode::Ori, rd, rs,
                    static_cast<int16_t>(rng.next() & 0x7fff)));
                break;
            }
            break;
          }
          case 4:
          case 5: { // Load
            unsigned rt = 1 + rng.index(31);
            int16_t offset =
                static_cast<int16_t>((rng.index(200)) * 4);
            program.push_back(pp::encodeLw(rt, 0, offset));
            break;
          }
          case 6:
          case 7: { // Store
            unsigned rt = rng.index(32);
            int16_t offset =
                static_cast<int16_t>((rng.index(200)) * 4);
            program.push_back(pp::encodeSw(rt, 0, offset));
            break;
          }
          case 8: { // Switch
            unsigned rd = 1 + rng.index(31);
            program.push_back(pp::encodeSwitch(rd));
            inbox.push_back(static_cast<uint32_t>(rng.next()));
            break;
          }
          default: { // Send
            program.push_back(
                pp::encodeSend(rng.index(32)));
            break;
          }
        }
    }
    program.push_back(pp::encodeHalt());

    EXPECT_EQ(differential(program, inbox, config), "")
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PpCore, RandomProgramSweep,
                         ::testing::Range<uint64_t>(1, 33));

/**
 * Randomized differential sweep with branches: forward skips only,
 * with nop padding to honor the branch scheduling contract.
 */
class RandomBranchSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomBranchSweep, CoreMatchesRef)
{
    Rng rng(GetParam());
    PpConfig config = PpConfig::smallPreset();
    config.modelBranches = true;
    config.dualIssue = rng.chance(1, 2);

    std::vector<uint32_t> program;
    const unsigned blocks = 6 + rng.index(8);
    for (unsigned b = 0; b < blocks; ++b) {
        unsigned rd = 1 + rng.index(15);
        program.push_back(pp::encodeIType(
            pp::Opcode::Addi, rd, 0,
            static_cast<int16_t>(rng.index(100))));
        program.push_back(pp::encodeIType(
            pp::Opcode::Addi, 16 + (b % 8), rd,
            static_cast<int16_t>(rng.index(100))));
        // Padding so the branch reads stable registers.
        program.push_back(pp::encodeNop());
        program.push_back(pp::encodeNop());
        // Forward branch over a small poison block.
        bool eq = rng.chance(1, 2);
        unsigned skip = 1 + rng.index(3);
        program.push_back(pp::encodeBranch(
            eq ? pp::Opcode::Beq : pp::Opcode::Bne, rd, rd,
            static_cast<int16_t>(skip)));
        for (unsigned i = 0; i < skip; ++i) {
            program.push_back(pp::encodeIType(
                pp::Opcode::Addi, 17, 0,
                static_cast<int16_t>(0x0bad)));
        }
    }
    program.push_back(pp::encodeHalt());

    EXPECT_EQ(differential(program, {}, config), "")
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PpCore, RandomBranchSweep,
                         ::testing::Range<uint64_t>(100, 116));

} // namespace
} // namespace archval::rtl

/**
 * @file
 * Unit tests for the explicit-state enumerator, including the
 * FirstCondition vs AllConditions edge-recording modes that the
 * paper's Section 4 discusses (Figure 4.2).
 */

#include <gtest/gtest.h>

#include <set>

#include "fsm/built_model.hh"
#include "murphi/enumerator.hh"
#include "support/status.hh"

namespace archval
{
namespace
{

/** Modulo-N counter where the choice adds 0..2. */
std::unique_ptr<fsm::Model>
counterModel(unsigned bits)
{
    return std::make_unique<fsm::LambdaModel>(
        "counter",
        std::vector<fsm::StateVarInfo>{{"count", bits, 0}},
        std::vector<fsm::ChoiceVarInfo>{{"delta", 3}},
        [bits](const BitVec &state, const fsm::Choice &choice)
            -> std::optional<BitVec> {
            uint64_t mask = (uint64_t(1) << bits) - 1;
            BitVec next(bits);
            next.setField(0, bits,
                          (state.getField(0, bits) + choice[0]) & mask);
            return next;
        });
}

TEST(Enumerator, CounterReachesAllStates)
{
    auto model = counterModel(4);
    murphi::Enumerator enumerator(*model);
    auto graph = enumerator.runOrThrow();
    EXPECT_EQ(graph.numStates(), 16u);
    // FirstCondition: delta 0,1,2 reach three distinct successors.
    EXPECT_EQ(graph.numEdges(), 16u * 3u);
    EXPECT_EQ(enumerator.stats().numStates, 16u);
    EXPECT_EQ(enumerator.stats().bitsPerState, 4u);
}

TEST(Enumerator, ResetStateIsStateZero)
{
    auto model = counterModel(3);
    murphi::Enumerator enumerator(*model);
    auto graph = enumerator.runOrThrow();
    EXPECT_EQ(graph.resetState(), 0u);
    EXPECT_EQ(graph.packedState(0), model->resetState());
}

TEST(Enumerator, UnreachableStatesNotEnumerated)
{
    // Counter that can only ever add 2: odd states unreachable.
    auto model = std::make_unique<fsm::LambdaModel>(
        "even",
        std::vector<fsm::StateVarInfo>{{"count", 4, 0}},
        std::vector<fsm::ChoiceVarInfo>{{"go", 2}},
        [](const BitVec &state, const fsm::Choice &choice)
            -> std::optional<BitVec> {
            BitVec next(4);
            next.setField(0, 4,
                          (state.getField(0, 4) + 2 * choice[0]) & 15);
            return next;
        });
    murphi::Enumerator enumerator(*model);
    auto graph = enumerator.runOrThrow();
    EXPECT_EQ(graph.numStates(), 8u);
}

TEST(Enumerator, RejectedChoicesNotEdges)
{
    auto model = std::make_unique<fsm::LambdaModel>(
        "reject",
        std::vector<fsm::StateVarInfo>{{"s", 2, 0}},
        std::vector<fsm::ChoiceVarInfo>{{"c", 4}},
        [](const BitVec &state, const fsm::Choice &choice)
            -> std::optional<BitVec> {
            if (choice[0] >= 2)
                return std::nullopt; // only choices 0,1 legal
            BitVec next(2);
            next.setField(0, 2,
                          (state.getField(0, 2) + choice[0]) & 3);
            return next;
        });
    murphi::Enumerator enumerator(*model);
    auto graph = enumerator.runOrThrow();
    EXPECT_EQ(graph.numStates(), 4u);
    EXPECT_EQ(graph.numEdges(), 8u); // 2 per state
    EXPECT_EQ(enumerator.stats().transitionsTried, 16u);
    EXPECT_EQ(enumerator.stats().transitionsValid, 8u);
}

/**
 * The Figure 4.2 model: two inputs "a" (0) and "c" (1) both move
 * A -> B (the implementation erroneously merged them). FirstCondition
 * records a single A->B edge labelled with "a"; AllConditions records
 * both.
 */
std::unique_ptr<fsm::Model>
mergedTransitionModel()
{
    return std::make_unique<fsm::LambdaModel>(
        "fig42",
        std::vector<fsm::StateVarInfo>{{"s", 1, 0}},
        std::vector<fsm::ChoiceVarInfo>{{"in", 2}},
        [](const BitVec &state, const fsm::Choice &)
            -> std::optional<BitVec> {
            BitVec next(1);
            next.setField(0, 1, 1 - state.getField(0, 1));
            return next;
        });
}

TEST(Enumerator, FirstConditionMergesParallelEdges)
{
    auto model = mergedTransitionModel();
    murphi::EnumOptions options;
    options.recording = murphi::EdgeRecording::FirstCondition;
    murphi::Enumerator enumerator(*model, options);
    auto graph = enumerator.runOrThrow();
    EXPECT_EQ(graph.numStates(), 2u);
    EXPECT_EQ(graph.numEdges(), 2u); // one per (src,dst) pair
    // The recorded label is the *first* condition tried (choice 0,
    // i.e. input "a") — exactly the paper's failure mode.
    EXPECT_EQ(graph.edge(graph.outEdges(0)[0]).choiceCode, 0u);
}

TEST(Enumerator, AllConditionsKeepsParallelEdges)
{
    auto model = mergedTransitionModel();
    murphi::EnumOptions options;
    options.recording = murphi::EdgeRecording::AllConditions;
    murphi::Enumerator enumerator(*model, options);
    auto graph = enumerator.runOrThrow();
    EXPECT_EQ(graph.numStates(), 2u);
    EXPECT_EQ(graph.numEdges(), 4u); // both conditions per pair
    std::set<uint64_t> codes;
    for (auto e : graph.outEdges(0))
        codes.insert(graph.edge(e).choiceCode);
    EXPECT_EQ(codes, (std::set<uint64_t>{0, 1}));
}

TEST(Enumerator, MaxStatesGuardReturnsError)
{
    auto model = counterModel(10);
    murphi::EnumOptions options;
    options.maxStates = 100;
    murphi::Enumerator enumerator(*model, options);
    auto result = enumerator.run();
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errorMessage().find("state explosion"),
              std::string::npos);
}

TEST(Enumerator, MaxStatesGuardFiresInParallelMode)
{
    auto model = counterModel(10);
    murphi::EnumOptions options;
    options.maxStates = 100;
    options.numThreads = 4;
    murphi::Enumerator enumerator(*model, options);
    auto result = enumerator.run();
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errorMessage().find("state explosion"),
              std::string::npos);
}

TEST(Enumerator, MaxStatesExactlyAtLimitSucceeds)
{
    // The limit is enforced *before* interning: a model with exactly
    // maxStates reachable states completes, one fewer errors out.
    auto model = counterModel(4);
    murphi::EnumOptions options;
    options.maxStates = 16;
    murphi::Enumerator enumerator(*model, options);
    auto result = enumerator.run();
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    EXPECT_EQ(result.value().numStates(), 16u);

    options.maxStates = 15;
    murphi::Enumerator limited(*model, options);
    EXPECT_FALSE(limited.run().ok());
}

TEST(Enumerator, RunOrThrowRaisesFatalError)
{
    auto model = counterModel(10);
    murphi::EnumOptions options;
    options.maxStates = 100;
    murphi::Enumerator enumerator(*model, options);
    EXPECT_THROW(enumerator.runOrThrow(), FatalError);
}

/** Model whose reset state disagrees with its declared layout. */
class BadResetModel : public fsm::Model
{
  public:
    std::string name() const override { return "bad_reset"; }

    const std::vector<fsm::StateVarInfo> &
    stateVars() const override
    {
        static const std::vector<fsm::StateVarInfo> vars{
            {"s", 4, 0}};
        return vars;
    }

    const std::vector<fsm::ChoiceVarInfo> &
    choiceVars() const override
    {
        static const std::vector<fsm::ChoiceVarInfo> vars{{"c", 2}};
        return vars;
    }

    BitVec resetState() const override { return BitVec(3); }

    std::optional<fsm::Transition>
    next(const BitVec &state, const fsm::Choice &) const override
    {
        fsm::Transition t;
        t.next = state;
        return t;
    }
};

TEST(Enumerator, ResetWidthMismatchReturnsError)
{
    BadResetModel model;
    for (unsigned threads : {1u, 4u}) {
        murphi::EnumOptions options;
        options.numThreads = threads;
        murphi::Enumerator enumerator(model, options);
        auto result = enumerator.run();
        ASSERT_FALSE(result.ok());
        EXPECT_NE(result.errorMessage().find("reset state"),
                  std::string::npos);
    }
}

TEST(Enumerator, ZeroBitModelEnumerates)
{
    // A model whose control state is fully implicit is legal: one
    // reachable (empty) state, self-loop edges, retention intact.
    auto model = std::make_unique<fsm::LambdaModel>(
        "zerobit", std::vector<fsm::StateVarInfo>{},
        std::vector<fsm::ChoiceVarInfo>{{"c", 2}},
        [](const BitVec &, const fsm::Choice &)
            -> std::optional<BitVec> { return BitVec(0); });
    murphi::EnumOptions options;
    options.recording = murphi::EdgeRecording::AllConditions;
    murphi::Enumerator enumerator(*model, options);
    auto graph = enumerator.runOrThrow();
    EXPECT_EQ(graph.numStates(), 1u);
    EXPECT_EQ(graph.numEdges(), 2u);
    EXPECT_TRUE(graph.statesRetained());
    EXPECT_EQ(graph.packedState(0).numBits(), 0u);
}

TEST(Enumerator, MemoryAccountingWithinTwiceLowerBound)
{
    // The reported footprint comes from shard bucket counts and node
    // layouts; sanity-check it against an independently computed
    // lower bound: the graph itself plus, per interned state, one
    // table entry (key object + id) and the key's heap words.
    auto model = counterModel(8);
    for (unsigned threads : {1u, 4u}) {
        murphi::EnumOptions options;
        options.numThreads = threads;
        murphi::Enumerator enumerator(*model, options);
        auto graph = enumerator.runOrThrow();
        size_t lower = graph.memoryBytes();
        for (graph::StateId s = 0; s < graph.numStates(); ++s) {
            lower += sizeof(BitVec) + sizeof(graph::StateId) +
                     graph.packedState(s).memoryBytes();
        }
        size_t reported = enumerator.stats().memoryBytes;
        EXPECT_GE(reported, lower) << "threads=" << threads;
        EXPECT_LE(reported, 2 * lower) << "threads=" << threads;
    }
}

TEST(Enumerator, InstructionCountsLandOnEdges)
{
    auto model = std::make_unique<fsm::LambdaModel>(
        "instr",
        std::vector<fsm::StateVarInfo>{{"s", 1, 0}},
        std::vector<fsm::ChoiceVarInfo>{{"c", 2}},
        [](const BitVec &state, const fsm::Choice &) { return state; },
        [](const BitVec &, const fsm::Choice &choice) -> unsigned {
            return choice[0] ? 2 : 0;
        });
    murphi::EnumOptions options;
    options.recording = murphi::EdgeRecording::AllConditions;
    murphi::Enumerator enumerator(*model, options);
    auto graph = enumerator.runOrThrow();
    ASSERT_EQ(graph.numEdges(), 2u);
    EXPECT_EQ(graph.totalEdgeInstructions(), 2u);
}

TEST(Enumerator, StateRetentionOptional)
{
    auto model = counterModel(3);
    murphi::EnumOptions options;
    options.retainStates = false;
    murphi::Enumerator enumerator(*model, options);
    auto graph = enumerator.runOrThrow();
    EXPECT_EQ(graph.numStates(), 8u);
    EXPECT_FALSE(graph.statesRetained());
}

TEST(Enumerator, StatsRenderMentionsRows)
{
    auto model = counterModel(3);
    murphi::Enumerator enumerator(*model);
    enumerator.runOrThrow();
    auto text = enumerator.stats().render();
    EXPECT_NE(text.find("Number of states"), std::string::npos);
    EXPECT_NE(text.find("Number of edges"), std::string::npos);
}

TEST(Enumerator, BfsOrderIsBreadthFirst)
{
    // Line graph 0 -> 1 -> 2 -> ...: BFS ids must equal distance.
    auto model = std::make_unique<fsm::LambdaModel>(
        "line",
        std::vector<fsm::StateVarInfo>{{"s", 4, 0}},
        std::vector<fsm::ChoiceVarInfo>{{"go", 2}},
        [](const BitVec &state, const fsm::Choice &choice)
            -> std::optional<BitVec> {
            uint64_t v = state.getField(0, 4);
            BitVec next(4);
            uint64_t target = choice[0] && v < 15 ? v + 1 : v;
            next.setField(0, 4, target);
            return next;
        });
    murphi::Enumerator enumerator(*model);
    auto graph = enumerator.runOrThrow();
    ASSERT_EQ(graph.numStates(), 16u);
    for (uint32_t id = 0; id < 16; ++id)
        EXPECT_EQ(graph.packedState(id).getField(0, 4), id);
}

TEST(Enumerator, LevelStatsCoverEveryState)
{
    // The per-level breakdown must account for every state and edge
    // exactly once, and every state is expanded exactly once, in
    // both sequential and parallel modes.
    auto model = counterModel(4);
    for (unsigned threads : {1u, 2u}) {
        murphi::EnumOptions options;
        options.numThreads = threads;
        murphi::Enumerator enumerator(*model, options);
        auto graph = enumerator.runOrThrow();
        const auto &stats = enumerator.stats();
        ASSERT_FALSE(stats.levels.empty());
        uint64_t states = 1, edges = 0, expanded = 0;
        for (const auto &level : stats.levels) {
            states += level.newStates;
            edges += level.newEdges;
            expanded += level.frontierWidth;
        }
        EXPECT_EQ(states, graph.numStates()) << "threads=" << threads;
        EXPECT_EQ(edges, graph.numEdges()) << "threads=" << threads;
        EXPECT_EQ(expanded, graph.numStates())
            << "threads=" << threads;
        EXPECT_FALSE(stats.renderLevels().empty());
    }
}

} // namespace
} // namespace archval

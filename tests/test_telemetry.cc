/**
 * @file
 * Telemetry tests (ctest label `telemetry`, TSan-clean): concurrent
 * counter/gauge/histogram hammering must sum exactly; spans must
 * nest and order correctly in the exported trace; the trace JSON
 * must round-trip through a validating parser; disabled mode must
 * leave no file and record no spans; heartbeat start/stop and
 * concurrent shutdown must not race.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "support/telemetry.hh"

namespace archval::telemetry
{
namespace
{

// ---------------------------------------------------------------------
// A minimal validating JSON parser: enough of RFC 8259 to reject
// anything structurally malformed in the exported trace. Numbers are
// parsed as doubles; strings support the escapes writeTrace emits.
// ---------------------------------------------------------------------

struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue &at(const std::string &key) const
    {
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }
    bool has(const std::string &key) const
    {
        return object.count(key) != 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing garbage");
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c +
                                     "' at " + std::to_string(pos_));
        ++pos_;
    }

    JsonValue parseValue()
    {
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            return parseNull();
          default:
            return parseNumber();
        }
    }

    JsonValue parseObject()
    {
        JsonValue v;
        v.type = JsonValue::Type::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            JsonValue key = parseString();
            expect(':');
            v.object.emplace(key.string, parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue parseArray()
    {
        JsonValue v;
        v.type = JsonValue::Type::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue parseString()
    {
        JsonValue v;
        v.type = JsonValue::Type::String;
        expect('"');
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    throw std::runtime_error("bad escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"':
                  case '\\':
                  case '/':
                    v.string += e;
                    break;
                  case 'n':
                    v.string += '\n';
                    break;
                  case 't':
                    v.string += '\t';
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        throw std::runtime_error("bad \\u escape");
                    unsigned code = std::stoul(
                        text_.substr(pos_, 4), nullptr, 16);
                    pos_ += 4;
                    v.string += static_cast<char>(code & 0x7f);
                    break;
                  }
                  default:
                    throw std::runtime_error("unknown escape");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                throw std::runtime_error("raw control char in string");
            } else {
                v.string += c;
            }
        }
        if (pos_ >= text_.size())
            throw std::runtime_error("unterminated string");
        ++pos_; // closing quote
        return v;
    }

    JsonValue parseNumber()
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        auto digits = [&] {
            size_t n = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0)
            throw std::runtime_error("bad number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0)
                throw std::runtime_error("bad fraction");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                throw std::runtime_error("bad exponent");
        }
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = std::stod(text_.substr(start, pos_ - start));
        return v;
    }

    JsonValue parseBool()
    {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
        } else {
            throw std::runtime_error("bad literal");
        }
        return v;
    }

    JsonValue parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            throw std::runtime_error("bad literal");
        pos_ += 4;
        return JsonValue{};
    }

    const std::string &text_;
    size_t pos_ = 0;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

bool
fileExists(const std::string &path)
{
    std::ifstream in(path);
    return in.good();
}

std::string
tempPath(const char *stem)
{
    return ::testing::TempDir() + stem;
}

/** RAII: restore disabled telemetry and delete the file on exit. */
struct TraceSession
{
    explicit TraceSession(std::string path_in,
                          size_t ring = TelemetryOptions{}.spanRingCapacity)
        : path(std::move(path_in))
    {
        std::remove(path.c_str());
        TelemetryOptions options;
        options.tracePath = path;
        options.spanRingCapacity = ring;
        initTelemetry(options);
    }
    ~TraceSession()
    {
        shutdownTelemetry();
        std::remove(path.c_str());
    }
    JsonValue finish()
    {
        shutdownTelemetry();
        JsonParser parser_text(text_ = slurp(path));
        return parser_text.parse();
    }
    std::string path;
    std::string text_;
};

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(Metrics, CounterSumsExactlyAcrossThreads)
{
    Counter &c = counter("test.hammer_counter");
    const uint64_t before = c.value();
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 50'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                c.add(1);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value() - before, kThreads * kPerThread);
}

TEST(Metrics, HistogramSumsExactlyAcrossThreads)
{
    Histogram &h =
        histogram("test.hammer_histogram", {1.0, 10.0, 100.0});
    const uint64_t count_before = h.count();
    const double sum_before = h.sum();
    constexpr int kThreads = 8;
    constexpr int kPerThread = 20'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            for (int i = 0; i < kPerThread; ++i)
                h.record(double(t % 4)); // integer values: CAS sum
                                         // accumulation is exact
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(h.count() - count_before,
              uint64_t(kThreads) * kPerThread);
    // Sum of t%4 over t in [0,8) is 0+1+2+3+0+1+2+3 = 12 per round.
    EXPECT_DOUBLE_EQ(h.sum() - sum_before, 12.0 * kPerThread);
}

TEST(Metrics, HistogramBucketsAndQuantiles)
{
    Histogram h({1.0, 2.0, 4.0});
    for (int i = 0; i < 100; ++i)
        h.record(0.5); // all into bucket 0
    EXPECT_EQ(h.bucketCount(0), 100u);
    EXPECT_EQ(h.bucketCount(3), 0u);
    double p50 = h.quantile(0.5);
    EXPECT_GE(p50, 0.0);
    EXPECT_LE(p50, 1.0);
    h.record(100.0); // overflow bucket
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0); // overflow lower edge
}

TEST(Metrics, GaugeTracksMax)
{
    Gauge &g = gauge("test.gauge_max");
    g.set(7);
    g.set(3);
    EXPECT_EQ(g.value(), 3);
    EXPECT_EQ(g.maxValue(), 7);
}

TEST(Metrics, HandlesAreStable)
{
    Counter &a = counter("test.stable_handle");
    Counter &b = counter("test.stable_handle");
    EXPECT_EQ(&a, &b);
}

TEST(Metrics, SnapshotAndJson)
{
    counter("test.snap_counter").add(5);
    gauge("test.snap_gauge").set(-3);
    histogram("test.snap_hist").record(0.5);
    RegistrySnapshot snap = snapshotMetrics();
    ASSERT_FALSE(snap.samples.empty());
    // Sorted by name.
    for (size_t i = 1; i < snap.samples.size(); ++i)
        EXPECT_LT(snap.samples[i - 1].name, snap.samples[i].name);
    // The flattened JSON parses and carries the counter.
    std::string json = metricsJson(snap);
    JsonParser parser(json);
    JsonValue v = parser.parse();
    ASSERT_EQ(v.type, JsonValue::Type::Object);
    ASSERT_TRUE(v.has("test.snap_counter"));
    EXPECT_GE(v.at("test.snap_counter").number, 5.0);
    EXPECT_TRUE(v.has("test.snap_gauge"));
    EXPECT_TRUE(v.has("test.snap_hist.count"));
    EXPECT_TRUE(v.has("test.snap_hist.p50"));
    EXPECT_FALSE(snap.render().empty());
    EXPECT_FALSE(snap.renderCompact().empty());
}

TEST(Metrics, CompactDeltaReportsRates)
{
    Counter &c = counter("test.delta_counter");
    c.add(10);
    RegistrySnapshot before = snapshotMetrics();
    c.add(30);
    RegistrySnapshot after = snapshotMetrics();

    // 30 new counts over 2 seconds -> +15/s.
    std::string line = after.renderCompactDelta(before, 2.0);
    EXPECT_NE(line.find("test.delta_counter="), std::string::npos);
    EXPECT_NE(line.find("(+15/s)"), std::string::npos) << line;

    // A metric absent from the previous beat rates from zero.
    counter("test.delta_fresh").add(4);
    RegistrySnapshot later = snapshotMetrics();
    line = later.renderCompactDelta(before, 2.0);
    EXPECT_NE(line.find("test.delta_fresh=4(+2/s)"),
              std::string::npos)
        << line;

    // Non-positive interval suppresses the rate suffix but keeps
    // totals.
    line = after.renderCompactDelta(before, 0.0);
    EXPECT_NE(line.find("test.delta_counter="), std::string::npos);
    EXPECT_EQ(line.find("/s)"), std::string::npos) << line;
}

// ---------------------------------------------------------------------
// Spans and trace export
// ---------------------------------------------------------------------

TEST(Spans, DisabledModeLeavesNoFileAndNoSpans)
{
    shutdownTelemetry(); // ensure disabled
    ASSERT_FALSE(tracingEnabled());
    std::string path = tempPath("telemetry_disabled.json");
    std::remove(path.c_str());
    {
        ScopedSpan span("test.disabled");
        ScopedSpan with_args("test.disabled_args", "k", 1);
    }
    shutdownTelemetry();
    EXPECT_FALSE(fileExists(path));
}

TEST(Spans, TraceRoundTripsThroughValidatingParser)
{
    TraceSession session(tempPath("telemetry_roundtrip.json"));
    ASSERT_TRUE(tracingEnabled());
    setThreadName("test.main");
    {
        ScopedSpan outer("test.outer", "level", 3);
        {
            ScopedSpan inner("test.inner", "a", 1, "b", 2);
        }
        {
            ScopedSpan inner2("test.inner");
        }
    }
    JsonValue doc = session.finish();
    ASSERT_EQ(doc.type, JsonValue::Type::Object);
    ASSERT_TRUE(doc.has("traceEvents"));
    const auto &events = doc.at("traceEvents").array;

    size_t x_events = 0;
    size_t meta_named = 0;
    for (const JsonValue &ev : events) {
        const std::string &ph = ev.at("ph").string;
        if (ph == "M") {
            if (ev.at("name").string == "thread_name" &&
                ev.at("args").at("name").string == "test.main")
                ++meta_named;
            continue;
        }
        ASSERT_EQ(ph, "X");
        EXPECT_TRUE(ev.has("ts"));
        EXPECT_TRUE(ev.has("dur"));
        EXPECT_GE(ev.at("dur").number, 0.0);
        ++x_events;
    }
    EXPECT_EQ(x_events, 3u);
    EXPECT_EQ(meta_named, 1u);
    EXPECT_TRUE(doc.at("otherData").has("metrics"));
    EXPECT_TRUE(doc.at("otherData").has("droppedSpans"));
}

TEST(Spans, NestingAndOrderingInvariants)
{
    TraceSession session(tempPath("telemetry_nesting.json"));
    {
        ScopedSpan outer("test.nest_outer");
        ScopedSpan inner("test.nest_inner");
    }
    JsonValue doc = session.finish();

    const JsonValue *outer = nullptr;
    const JsonValue *inner = nullptr;
    for (const JsonValue &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").string != "X")
            continue;
        if (ev.at("name").string == "test.nest_outer")
            outer = &ev;
        if (ev.at("name").string == "test.nest_inner")
            inner = &ev;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    // Same thread; the child interval lies within the parent's.
    EXPECT_EQ(outer->at("tid").number, inner->at("tid").number);
    double o_start = outer->at("ts").number;
    double o_end = o_start + outer->at("dur").number;
    double i_start = inner->at("ts").number;
    double i_end = i_start + inner->at("dur").number;
    EXPECT_LE(o_start, i_start);
    EXPECT_GE(o_end, i_end);
    // Args survive the round-trip.
    ASSERT_TRUE(
        doc.at("traceEvents").array.size() >= 2);
}

TEST(Spans, SpanArgsExported)
{
    TraceSession session(tempPath("telemetry_args.json"));
    {
        ScopedSpan span("test.argspan", "trace", 17, "bug_set", 3);
    }
    JsonValue doc = session.finish();
    bool found = false;
    for (const JsonValue &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").string != "X" ||
            ev.at("name").string != "test.argspan")
            continue;
        found = true;
        EXPECT_DOUBLE_EQ(ev.at("args").at("trace").number, 17.0);
        EXPECT_DOUBLE_EQ(ev.at("args").at("bug_set").number, 3.0);
    }
    EXPECT_TRUE(found);
}

TEST(Spans, RingOverflowBoundsExportAndCountsDrops)
{
    constexpr size_t kRing = 64;
    TraceSession session(tempPath("telemetry_ring.json"), kRing);
    uint64_t dropped_before = droppedSpans();
    for (int i = 0; i < 1000; ++i) {
        ScopedSpan span("test.ring");
    }
    JsonValue doc = session.finish();
    size_t x_events = 0;
    for (const JsonValue &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").string == "X")
            ++x_events;
    }
    EXPECT_LE(x_events, kRing);
    EXPECT_GE(droppedSpans() - dropped_before, 1000 - kRing);
    EXPECT_GE(doc.at("otherData").at("droppedSpans").number,
              double(1000 - kRing));
}

TEST(Spans, ConcurrentSpansFromManyThreads)
{
    TraceSession session(tempPath("telemetry_threads.json"));
    constexpr int kThreads = 8;
    constexpr int kSpansPer = 100;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            setThreadName("test.worker." + std::to_string(t));
            for (int i = 0; i < kSpansPer; ++i) {
                ScopedSpan span("test.concurrent", "i",
                                uint64_t(i));
            }
        });
    }
    for (auto &t : threads)
        t.join();
    JsonValue doc = session.finish();
    size_t concurrent = 0;
    for (const JsonValue &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").string == "X" &&
            ev.at("name").string == "test.concurrent")
            ++concurrent;
    }
    EXPECT_EQ(concurrent, size_t(kThreads) * kSpansPer);
}

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

TEST(Lifecycle, ReinitStartsAFreshTrace)
{
    std::string path1 = tempPath("telemetry_first.json");
    std::string path2 = tempPath("telemetry_second.json");
    std::remove(path1.c_str());
    std::remove(path2.c_str());

    TelemetryOptions options;
    options.tracePath = path1;
    initTelemetry(options);
    {
        ScopedSpan span("test.first_only");
    }
    // Re-init: flushes trace 1, clears spans, arms trace 2.
    options.tracePath = path2;
    initTelemetry(options);
    {
        ScopedSpan span("test.second_only");
    }
    shutdownTelemetry();

    ASSERT_TRUE(fileExists(path1));
    ASSERT_TRUE(fileExists(path2));
    std::string second = slurp(path2);
    EXPECT_EQ(second.find("test.first_only"), std::string::npos);
    EXPECT_NE(second.find("test.second_only"), std::string::npos);
    std::remove(path1.c_str());
    std::remove(path2.c_str());
}

TEST(Lifecycle, ShutdownIsIdempotentAndConcurrent)
{
    std::string path = tempPath("telemetry_shutdown.json");
    TelemetryOptions options;
    options.tracePath = path;
    initTelemetry(options);
    {
        ScopedSpan span("test.shutdown");
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([] { shutdownTelemetry(); });
    for (auto &t : threads)
        t.join();
    EXPECT_FALSE(tracingEnabled());
    EXPECT_TRUE(fileExists(path));
    std::remove(path.c_str());
}

TEST(Lifecycle, HeartbeatStartStopRaces)
{
    // Rapid init/shutdown cycles with a fast heartbeat: the worker
    // thread must start and join cleanly every time.
    for (int i = 0; i < 10; ++i) {
        TelemetryOptions options;
        options.heartbeatSeconds = 0.001;
        options.heartbeatTag = "test";
        initTelemetry(options);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        shutdownTelemetry();
    }
    SUCCEED();
}

TEST(Lifecycle, ResetMetricsForTesting)
{
    counter("test.reset_me").add(9);
    gauge("test.reset_gauge").set(5);
    histogram("test.reset_hist").record(1.0);
    resetMetricsForTesting();
    EXPECT_EQ(counter("test.reset_me").value(), 0u);
    EXPECT_EQ(gauge("test.reset_gauge").value(), 0);
    EXPECT_EQ(histogram("test.reset_hist").count(), 0u);
}

// ---------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------

namespace
{

/** Every exposition line whose metric name starts with @p prefix, in
 *  emission order — the registry is shared across tests, so golden
 *  comparisons filter to the families a test itself registered. */
std::string
promLinesWithPrefix(const std::string &text, const std::string &prefix)
{
    std::istringstream in(text);
    std::string line, out;
    while (std::getline(in, line)) {
        bool match = line.compare(0, prefix.size(), prefix) == 0;
        if (!match && line.compare(0, 2, "# ") == 0) {
            // "# HELP name ..." / "# TYPE name ..."
            size_t name_at = line.find(' ', 2);
            match = name_at != std::string::npos &&
                    line.compare(name_at + 1, prefix.size(),
                                 prefix) == 0;
        }
        if (match)
            out += line + "\n";
    }
    return out;
}

size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    size_t n = 0;
    for (size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + 1))
        ++n;
    return n;
}

} // namespace

TEST(Prometheus, GoldenExpositionFormat)
{
    // Unique names so other tests' registrations cannot collide;
    // reset first so reruns in one process stay deterministic.
    resetMetricsForTesting();
    counter("promgold.requests").add(3);
    gauge("promgold.depth").set(2);
    gauge("promgold.depth").set(1);
    Histogram &h =
        histogram("promgold.latency_seconds{verb=replay}",
                  {0.5, 2.0});
    h.record(0.25);
    h.record(1.0);
    h.record(100.0);

    std::string text = renderPrometheus(snapshotMetrics());
    std::string got = promLinesWithPrefix(text, "archval_promgold_");
    // The full text-format contract in one golden block: name
    // mangling, _total counters, gauge + _max pairing, cumulative
    // buckets with +Inf, _sum/_count, label rendering.
    const std::string expected =
        "# HELP archval_promgold_depth archval metric "
        "promgold.depth\n"
        "# TYPE archval_promgold_depth gauge\n"
        "archval_promgold_depth 1\n"
        "# HELP archval_promgold_depth_max archval metric "
        "promgold.depth (running maximum)\n"
        "# TYPE archval_promgold_depth_max gauge\n"
        "archval_promgold_depth_max 2\n"
        "# HELP archval_promgold_latency_seconds archval metric "
        "promgold.latency_seconds\n"
        "# TYPE archval_promgold_latency_seconds histogram\n"
        "archval_promgold_latency_seconds_bucket{verb=\"replay\","
        "le=\"0.5\"} 1\n"
        "archval_promgold_latency_seconds_bucket{verb=\"replay\","
        "le=\"2\"} 2\n"
        "archval_promgold_latency_seconds_bucket{verb=\"replay\","
        "le=\"+Inf\"} 3\n"
        "archval_promgold_latency_seconds_sum{verb=\"replay\"} "
        "101.25\n"
        "archval_promgold_latency_seconds_count{verb=\"replay\"} "
        "3\n"
        "# HELP archval_promgold_requests_total archval metric "
        "promgold.requests\n"
        "# TYPE archval_promgold_requests_total counter\n"
        "archval_promgold_requests_total 3\n";
    EXPECT_EQ(got, expected);
}

TEST(Prometheus, LabeledVariantsShareOneFamilyHeader)
{
    resetMetricsForTesting();
    histogram("promfam.run_seconds{verb=a}", {1.0}).record(0.5);
    histogram("promfam.run_seconds{verb=b}", {1.0}).record(0.5);
    std::string text = renderPrometheus(snapshotMetrics());
    // HELP/TYPE once per family even with two label sets, and both
    // label sets emitted under it.
    EXPECT_EQ(countOccurrences(
                  text, "# TYPE archval_promfam_run_seconds "
                        "histogram"),
              1u);
    EXPECT_EQ(countOccurrences(
                  text, "# HELP archval_promfam_run_seconds "),
              1u);
    EXPECT_NE(text.find("archval_promfam_run_seconds_count"
                        "{verb=\"a\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("archval_promfam_run_seconds_count"
                        "{verb=\"b\"} 1"),
              std::string::npos);
}

TEST(Prometheus, SanitizesNamesAndEscapesLabelValues)
{
    resetMetricsForTesting();
    counter("promesc.odd-name.x").add(1);
    gauge("promesc.labeled{path=a\"b\\c}").set(4);
    std::string text = renderPrometheus(snapshotMetrics());
    EXPECT_NE(text.find("archval_promesc_odd_name_x_total 1"),
              std::string::npos);
    // Label values escape backslash and quote per the text format.
    EXPECT_NE(text.find("archval_promesc_labeled"
                        "{path=\"a\\\"b\\\\c\"} 4"),
              std::string::npos)
        << text;
}

TEST(Prometheus, SampleProcessMemoryFeedsRssGauges)
{
    sampleProcessMemory();
    std::string text = renderPrometheus(snapshotMetrics());
    EXPECT_NE(text.find("archval_process_rss_bytes "),
              std::string::npos);
    EXPECT_NE(text.find("archval_process_peak_rss_bytes "),
              std::string::npos);
    RegistrySnapshot snap = snapshotMetrics();
    bool found = false;
    for (const MetricSample &s : snap.samples) {
        if (s.name == "process.rss_bytes") {
            found = true;
            EXPECT_GT(s.gauge, 0);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Prometheus, SnapshotCarriesHistogramBuckets)
{
    resetMetricsForTesting();
    Histogram &h = histogram("promsnap.hist", {1.0, 2.0});
    h.record(0.5);
    h.record(10.0);
    RegistrySnapshot snap = snapshotMetrics();
    for (const MetricSample &s : snap.samples) {
        if (s.name != "promsnap.hist")
            continue;
        ASSERT_EQ(s.bounds.size(), 2u);
        ASSERT_EQ(s.buckets.size(), 3u);
        EXPECT_EQ(s.buckets[0], 1u);
        EXPECT_EQ(s.buckets[1], 0u);
        EXPECT_EQ(s.buckets[2], 1u); // overflow
        return;
    }
    FAIL() << "promsnap.hist not in snapshot";
}

// ---------------------------------------------------------------------
// Job correlation
// ---------------------------------------------------------------------

TEST(JobCorrelation, ScopeNestsAndRestores)
{
    EXPECT_EQ(currentJobId(), 0u);
    {
        JobScope outer(7);
        EXPECT_EQ(currentJobId(), 7u);
        {
            JobScope inner(9);
            EXPECT_EQ(currentJobId(), 9u);
        }
        EXPECT_EQ(currentJobId(), 7u);
    }
    EXPECT_EQ(currentJobId(), 0u);
}

TEST(JobCorrelation, SpansCarryJobIdIntoTrace)
{
    TraceSession session(tempPath("telemetry_jobid.json"));
    {
        JobScope job(42);
        ScopedSpan span("test.jobspan", "k", 1);
    }
    {
        ScopedSpan span("test.nojob");
    }
    JsonValue doc = session.finish();
    bool with_job = false, without_job = false;
    for (const JsonValue &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").string != "X")
            continue;
        if (ev.at("name").string == "test.jobspan") {
            with_job = true;
            EXPECT_DOUBLE_EQ(ev.at("args").at("job").number, 42.0);
            EXPECT_DOUBLE_EQ(ev.at("args").at("k").number, 1.0);
        }
        if (ev.at("name").string == "test.nojob") {
            without_job = true;
            EXPECT_FALSE(ev.has("args"));
        }
    }
    EXPECT_TRUE(with_job);
    EXPECT_TRUE(without_job);
}

TEST(JobCorrelation, WorkerThreadsInheritInstalledScope)
{
    TraceSession session(tempPath("telemetry_jobworkers.json"));
    {
        JobScope job(5);
        const uint64_t id = currentJobId();
        std::thread worker([id] {
            JobScope scope(id);
            ScopedSpan span("test.worker_span");
        });
        worker.join();
    }
    JsonValue doc = session.finish();
    bool found = false;
    for (const JsonValue &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").string == "X" &&
            ev.at("name").string == "test.worker_span") {
            found = true;
            EXPECT_DOUBLE_EQ(ev.at("args").at("job").number, 5.0);
        }
    }
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------
// Foreign spans (the fork-boundary shipping primitive)
// ---------------------------------------------------------------------

TEST(ForeignSpans, DrainReturnsRecordedSpansAndClears)
{
    TraceSession session(tempPath("telemetry_drain.json"));
    {
        JobScope job(3);
        ScopedSpan a("test.drain_a");
        ScopedSpan b("test.drain_b");
    }
    std::vector<ForeignSpan> spans = drainThreadSpans();
    ASSERT_EQ(spans.size(), 2u);
    // Ring order: b closed before a.
    EXPECT_EQ(spans[0].name, "test.drain_b");
    EXPECT_EQ(spans[1].name, "test.drain_a");
    EXPECT_EQ(spans[0].jobId, 3u);
    EXPECT_GT(spans[1].durNs, 0u);
    EXPECT_TRUE(drainThreadSpans().empty());
}

TEST(ForeignSpans, RecordUnderSyntheticThreadInTrace)
{
    TraceSession session(tempPath("telemetry_foreign.json"));
    std::vector<ForeignSpan> spans;
    spans.push_back(ForeignSpan{"child.expand", 1000, 500, 11});
    spans.push_back(ForeignSpan{"child.expand", 2000, 300, 11});
    recordForeignSpans("ooc.child.0", spans);
    JsonValue doc = session.finish();

    double foreign_tid = -1;
    for (const JsonValue &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").string == "M" &&
            ev.at("name").string == "thread_name" &&
            ev.at("args").at("name").string == "ooc.child.0")
            foreign_tid = ev.at("tid").number;
    }
    ASSERT_GE(foreign_tid, 0.0) << "synthetic thread not named";
    size_t found = 0;
    for (const JsonValue &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").string != "X" ||
            ev.at("name").string != "child.expand")
            continue;
        ++found;
        EXPECT_DOUBLE_EQ(ev.at("tid").number, foreign_tid);
        EXPECT_DOUBLE_EQ(ev.at("args").at("job").number, 11.0);
    }
    EXPECT_EQ(found, 2u);
}

TEST(ForeignSpans, RepeatedRecordsReuseOneSyntheticThread)
{
    TraceSession session(tempPath("telemetry_foreign2.json"));
    std::vector<ForeignSpan> spans;
    spans.push_back(ForeignSpan{"child.batch", 10, 5, 1});
    recordForeignSpans("ooc.child.1", spans);
    recordForeignSpans("ooc.child.1", spans);
    JsonValue doc = session.finish();
    size_t named = 0;
    for (const JsonValue &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").string == "M" &&
            ev.at("name").string == "thread_name" &&
            ev.at("args").at("name").string == "ooc.child.1")
            ++named;
    }
    EXPECT_EQ(named, 1u);
}

// ---------------------------------------------------------------------
// Heartbeat vs shutdown interleaving (TSan-audited)
// ---------------------------------------------------------------------

TEST(Lifecycle, HeartbeatShutdownVsConcurrentRecorders)
{
    // shutdownTelemetry during an in-flight heartbeat tick must not
    // race the final registry snapshot: recorders hammer the
    // registry and span rings while init/shutdown cycles with a
    // sub-millisecond heartbeat. Run under ARCHVAL_SANITIZE=thread
    // this is the regression test for the heartbeat/trace-export
    // interleaving.
    std::atomic<bool> stop{false};
    std::vector<std::thread> recorders;
    for (int t = 0; t < 4; ++t) {
        recorders.emplace_back([&stop] {
            while (!stop.load(std::memory_order_relaxed)) {
                counter("test.hb_stress").add(1);
                histogram("test.hb_stress_hist").record(0.5);
                gauge("test.hb_stress_gauge").set(3);
                ScopedSpan span("test.hb_stress_span");
            }
        });
    }
    std::string path = tempPath("telemetry_hb_stress.json");
    for (int i = 0; i < 20; ++i) {
        TelemetryOptions options;
        options.heartbeatSeconds = 0.0005;
        options.heartbeatTag = "stress";
        options.tracePath = path;
        initTelemetry(options);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        shutdownTelemetry();
    }
    stop.store(true);
    for (auto &t : recorders)
        t.join();
    std::remove(path.c_str());
    SUCCEED();
}

} // namespace
} // namespace archval::telemetry

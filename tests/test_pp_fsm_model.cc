/**
 * @file
 * Tests for the PP FSM model: packing round trips, canonical choice
 * rejection, and whole-state-space invariants checked over every
 * reachable state of the small preset (property-style sweep via the
 * enumerator).
 */

#include <gtest/gtest.h>

#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"

namespace archval::rtl
{
namespace
{

using pp::InstrClass;

TEST(PpFsmModel, PackUnpackRoundTrip)
{
    PpFsmModel model(PpConfig::smallPreset());
    PpControlState state;
    state.rdClass = InstrClass::Send;
    state.exClass = InstrClass::Load;
    state.memClass = InstrClass::Store;
    state.wbClass = InstrClass::Alu;
    state.fetchAlign = 1;
    state.exDone = false;
    state.memDone = false;
    state.storePending = true;
    state.irefill = IRefill::Fixup;
    state.irefillCount = 2;
    state.drefill = DRefill::CritWait;
    state.drefillCount = 1;
    state.spill = Spill::Wb;
    state.spillCount = 2;
    state.memPort = MemPort::BusyWb;

    PpControlState round = model.unpack(model.pack(state));
    EXPECT_EQ(round, state);
}

TEST(PpFsmModel, ResetPacksToQuiescent)
{
    PpFsmModel model(PpConfig::smallPreset());
    PpControlState state = model.unpack(model.resetState());
    EXPECT_EQ(state, PpControl::resetState());
}

TEST(PpFsmModel, ChoiceVarsMatchEnum)
{
    PpFsmModel model(PpConfig::smallPreset());
    ASSERT_EQ(model.choiceVars().size(), numPpChoiceVars);
    EXPECT_EQ(model.choiceVars()[0].name, "icache.fetch_class");
    EXPECT_EQ(model.choiceVars()[0].cardinality, 5u);
    // Small preset: no dual issue, no branches -> cardinality 1.
    EXPECT_EQ(model.choiceVars()[1].cardinality, 1u);
    EXPECT_EQ(model.choiceVars()[9].cardinality, 1u);
}

TEST(PpFsmModel, FullPresetEnablesExtensions)
{
    PpFsmModel model(PpConfig::fullPreset());
    EXPECT_EQ(model.choiceVars()[0].cardinality, 6u); // + Branch
    EXPECT_EQ(model.choiceVars()[1].cardinality, 2u); // dual
    EXPECT_EQ(model.choiceVars()[9].cardinality, 2u); // taken
    // Target alignment enumerates the line offsets.
    EXPECT_EQ(model.choiceVars()[10].cardinality,
              PpConfig::fullPreset().lineWords);
}

TEST(PpFsmModel, NonCanonicalChoiceRejected)
{
    PpFsmModel model(PpConfig::smallPreset());
    BitVec reset = model.resetState();
    fsm::Choice choice(numPpChoiceVars, 0);

    // From reset with an I-hit fetch the DHit input is never
    // examined (no op in MEM), so a tuple with dhit=1 is rejected.
    choice[static_cast<size_t>(PpChoiceVar::IHit)] = 1;
    EXPECT_TRUE(model.next(reset, choice).has_value());
    choice[static_cast<size_t>(PpChoiceVar::DHit)] = 1;
    EXPECT_FALSE(model.next(reset, choice).has_value());
}

TEST(PpFsmModel, FetchEdgeCountsInstructions)
{
    PpFsmModel model(PpConfig::smallPreset());
    fsm::Choice choice(numPpChoiceVars, 0);
    choice[static_cast<size_t>(PpChoiceVar::IHit)] = 1;
    auto t = model.next(model.resetState(), choice);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->instructions, 1u);

    // An I-miss consumes no instruction.
    fsm::Choice miss(numPpChoiceVars, 0);
    auto tm = model.next(model.resetState(), miss);
    ASSERT_TRUE(tm.has_value());
    EXPECT_EQ(tm->instructions, 0u);
}

TEST(PpFsmModel, DeterministicNext)
{
    PpFsmModel model(PpConfig::smallPreset());
    fsm::Choice choice(numPpChoiceVars, 0);
    choice[static_cast<size_t>(PpChoiceVar::IHit)] = 1;
    choice[static_cast<size_t>(PpChoiceVar::FetchClass)] = 2;
    auto a = model.next(model.resetState(), choice);
    auto b = model.next(model.resetState(), choice);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->next, b->next);
}

/** Enumerates the small preset once and exposes the graph. */
class PpReachableSweep : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        model_ = new PpFsmModel(PpConfig::smallPreset());
        murphi::Enumerator enumerator(*model_);
        graph_ = new graph::StateGraph(enumerator.runOrThrow());
    }

    static void
    TearDownTestSuite()
    {
        delete graph_;
        delete model_;
        graph_ = nullptr;
        model_ = nullptr;
    }

    static PpFsmModel *model_;
    static graph::StateGraph *graph_;
};

PpFsmModel *PpReachableSweep::model_ = nullptr;
graph::StateGraph *PpReachableSweep::graph_ = nullptr;

TEST_F(PpReachableSweep, StateSpaceIsNonTrivialAndBounded)
{
    EXPECT_GT(graph_->numStates(), 100u);
    EXPECT_LT(graph_->numStates(), 2'000'000u);
    EXPECT_GT(graph_->numEdges(), graph_->numStates());
}

TEST_F(PpReachableSweep, PortOwnershipConsistentEverywhere)
{
    for (uint32_t id = 0; id < graph_->numStates(); ++id) {
        PpControlState s = model_->unpack(graph_->packedState(id));
        // The port owner and the owning FSM's state must agree.
        bool d_owns = s.drefill == DRefill::CritWait ||
                      s.drefill == DRefill::Fill;
        bool i_owns = s.irefill == IRefill::Fill;
        bool wb_owns = s.spill == Spill::Wb;
        EXPECT_EQ(d_owns, s.memPort == MemPort::BusyD)
            << s.toString();
        EXPECT_EQ(i_owns, s.memPort == MemPort::BusyI)
            << s.toString();
        EXPECT_EQ(wb_owns, s.memPort == MemPort::BusyWb)
            << s.toString();
        EXPECT_LE(int(d_owns) + int(i_owns) + int(wb_owns), 1)
            << s.toString();
    }
}

TEST_F(PpReachableSweep, CountersOnlyLiveInTheirStates)
{
    for (uint32_t id = 0; id < graph_->numStates(); ++id) {
        PpControlState s = model_->unpack(graph_->packedState(id));
        if (s.drefill != DRefill::Fill) {
            EXPECT_EQ(s.drefillCount, 0u) << s.toString();
        }
        if (s.irefill != IRefill::Fill) {
            EXPECT_EQ(s.irefillCount, 0u) << s.toString();
        }
        if (s.spill != Spill::Wb) {
            EXPECT_EQ(s.spillCount, 0u) << s.toString();
        }
        if (s.drefill == DRefill::Fill) {
            EXPECT_GT(s.drefillCount, 0u) << s.toString();
        }
    }
}

TEST_F(PpReachableSweep, DoneBitsOnlyFalseForRelevantClasses)
{
    auto is_mem = [](InstrClass c) {
        return c == InstrClass::Load || c == InstrClass::Store;
    };
    auto is_comm = [](InstrClass c) {
        return c == InstrClass::Switch || c == InstrClass::Send;
    };
    for (uint32_t id = 0; id < graph_->numStates(); ++id) {
        PpControlState s = model_->unpack(graph_->packedState(id));
        if (!s.exDone) {
            EXPECT_TRUE(is_comm(s.exClass)) << s.toString();
        }
        if (!s.memDone) {
            EXPECT_TRUE(is_mem(s.memClass)) << s.toString();
        }
    }
}

TEST_F(PpReachableSweep, PendingRefillImpliesUnfinishedMemOp)
{
    for (uint32_t id = 0; id < graph_->numStates(); ++id) {
        PpControlState s = model_->unpack(graph_->packedState(id));
        // A D-refill in Req/CritWait exists only while the missing
        // op is still stalled in MEM.
        if (s.drefill == DRefill::Req ||
            s.drefill == DRefill::CritWait) {
            EXPECT_FALSE(s.memDone) << s.toString();
        }
    }
}

TEST_F(PpReachableSweep, NoBranchClassWithoutExtension)
{
    for (uint32_t id = 0; id < graph_->numStates(); ++id) {
        PpControlState s = model_->unpack(graph_->packedState(id));
        EXPECT_NE(s.rdClass, InstrClass::Branch) << s.toString();
        EXPECT_NE(s.exClass, InstrClass::Branch) << s.toString();
        EXPECT_NE(s.memClass, InstrClass::Branch) << s.toString();
    }
}

TEST_F(PpReachableSweep, EveryStateHasASuccessor)
{
    // The control must never deadlock: every reachable state has at
    // least one legal environment action.
    for (uint32_t id = 0; id < graph_->numStates(); ++id)
        EXPECT_FALSE(graph_->outEdges(id).empty())
            << model_->unpack(graph_->packedState(id)).toString();
}

TEST_F(PpReachableSweep, EdgeLabelsDecodeCanonically)
{
    // Spot-check: every recorded edge's choice must re-apply to give
    // the same destination (the transition condition mapping is
    // sound).
    auto codec = model_->makeChoiceCodec();
    size_t checked = 0;
    for (uint32_t id = 0; id < graph_->numStates() && checked < 5000;
         ++id) {
        for (auto e : graph_->outEdges(id)) {
            const auto &edge = graph_->edge(e);
            auto t = model_->next(graph_->packedState(id),
                                  codec.decode(edge.choiceCode));
            ASSERT_TRUE(t.has_value());
            EXPECT_EQ(t->next, graph_->packedState(edge.dst));
            ++checked;
        }
    }
    EXPECT_GT(checked, 0u);
}

} // namespace
} // namespace archval::rtl

/**
 * @file
 * Tests for the control-mutation framework: metadata, mutated
 * control behaviour, model/core lockstep under mutation, and
 * end-to-end detectability through the validation flow.
 */

#include <gtest/gtest.h>

#include "core/validation_flow.hh"
#include "rtl/mutations.hh"
#include "rtl/pp_control.hh"
#include "rtl/pp_fsm_model.hh"

namespace archval::rtl
{
namespace
{

using pp::InstrClass;

TEST(Mutations, MetadataExists)
{
    for (size_t m = 0; m < numMutations; ++m) {
        MutationId mutation = static_cast<MutationId>(m);
        EXPECT_STRNE(mutationName(mutation), "?");
        EXPECT_STRNE(mutationSummary(mutation), "?");
    }
}

TEST(Mutations, DataVisibilitySplit)
{
    unsigned visible = 0;
    for (size_t m = 0; m < numMutations; ++m)
        visible += mutationDataVisible(static_cast<MutationId>(m));
    // Three detectable mutations, three timing-only ones.
    EXPECT_EQ(visible, 3u);
}

/** Drive the mutated control directly (reuses the pattern of
 *  test_pp_control). */
struct Driver
{
    explicit Driver(const PpConfig &config)
        : control(config), state(PpControl::resetState())
    {
    }

    PpOutputs
    step(InstrClass fetch, uint32_t dhit, uint32_t same_line,
         uint32_t ihit = 1)
    {
        SignalInputs inputs;
        inputs.set(PpChoiceVar::FetchClass,
                   static_cast<uint32_t>(fetch) - 1);
        inputs.set(PpChoiceVar::IHit, ihit);
        inputs.set(PpChoiceVar::DHit, dhit);
        inputs.set(PpChoiceVar::SameLine, same_line);
        inputs.set(PpChoiceVar::InboxReady, 1);
        inputs.set(PpChoiceVar::OutboxReady, 1);
        PpOutputs out;
        state = control.step(state, inputs, out);
        return out;
    }

    PpControl control;
    PpControlState state;
};

TEST(Mutations, ConflictDropsLoadCheckSkipsSameLineStall)
{
    PpConfig config = PpConfig::smallPreset();
    config.mutations.set(
        static_cast<size_t>(MutationId::ConflictDropsLoadCheck));
    Driver driver(config);
    driver.step(InstrClass::Store, 1, 0);
    driver.step(InstrClass::Load, 1, 0);
    driver.step(InstrClass::Alu, 1, 0);
    driver.step(InstrClass::Alu, 1, 0); // store probes
    EXPECT_TRUE(driver.state.storePending);
    // Load to the same line: healthy control conflicts; mutated one
    // sails through with a plain hit.
    auto out = driver.step(InstrClass::Alu, 1, 1);
    EXPECT_FALSE(out.conflict);
    EXPECT_TRUE(out.loadHit);
}

TEST(Mutations, ConflictIgnoresStoreOverwritesPending)
{
    PpConfig config = PpConfig::smallPreset();
    config.mutations.set(
        static_cast<size_t>(MutationId::ConflictIgnoresStore));
    Driver driver(config);
    driver.step(InstrClass::Store, 1, 0);
    driver.step(InstrClass::Store, 1, 0);
    driver.step(InstrClass::Alu, 1, 0);
    driver.step(InstrClass::Alu, 1, 0); // first store probes
    auto out = driver.step(InstrClass::Alu, 1, 0); // second store
    EXPECT_FALSE(out.conflict);
    EXPECT_TRUE(out.storeProbe); // probed straight through
}

TEST(Mutations, PortPriorityDroppedLetsIWinTies)
{
    PpConfig config = PpConfig::smallPreset();
    config.mutations.set(
        static_cast<size_t>(MutationId::PortPriorityDropped));
    Driver driver(config);
    // I-miss then D-miss so both FSMs request simultaneously only
    // after the port frees... simpler: I requests while D requests.
    driver.step(InstrClass::Load, 1, 0);
    driver.step(InstrClass::Load, 1, 0, /*ihit=*/0); // I-miss
    EXPECT_EQ(driver.state.irefill, IRefill::Req);
    driver.step(InstrClass::Alu, 0, 0); // I granted (port was free)
    EXPECT_EQ(driver.state.memPort, MemPort::BusyI);
}

/**
 * The central property: under every mutation, the FSM model and the
 * RTL core still share the (mutated) control, so the generated
 * vectors stay in lockstep, and the flow detects exactly the
 * data-visible mutations.
 */
class MutationFlow : public ::testing::TestWithParam<size_t>
{
};

TEST_P(MutationFlow, DetectedIffDataVisible)
{
    MutationId mutation = static_cast<MutationId>(GetParam());
    PpConfig config = PpConfig::smallPreset();
    config.mutations.set(GetParam());

    core::FlowOptions options;
    options.checkLockstep = true;
    options.stopAtFirstDivergence = mutationDataVisible(mutation);
    core::PpValidationFlow flow(config, options);
    core::FlowReport report = flow.run();

    EXPECT_EQ(report.lockstepErrors, 0u)
        << mutationName(mutation)
        << ": model/core control desynchronized";
    EXPECT_EQ(report.bugFound(), mutationDataVisible(mutation))
        << mutationName(mutation) << ": "
        << (report.divergences.empty() ? "no diff"
                                       : report.divergences[0]);
}

INSTANTIATE_TEST_SUITE_P(Mutations, MutationFlow,
                         ::testing::Range<size_t>(0, numMutations));

} // namespace
} // namespace archval::rtl

/**
 * @file
 * Tiered in-trace checkpointing tests (ctest label `checkpoint`).
 *
 * The stride tier rides on three claims, each attacked here:
 *
 *  1. Snapshot serialization is lossless: a snapshot that round-trips
 *     through bytes resumes to a bit-identical outcome, and damaged
 *     bytes are rejected rather than half-decoded.
 *  2. Cross-bug-set restore is sound: below a bug set's first trigger
 *     cycle the bug-free trajectory *is* the bugged trajectory, so
 *     restoring a donor snapshot with the bug mask re-armed
 *     (PpCore::restoreWithBugs) reproduces the bugged run exactly.
 *  3. The engine's results are byte-identical to the sequential
 *     VectorPlayer for every (stride × cache budget × spill budget ×
 *     worker count) combination — including under injected spill
 *     faults, which may cost cycles but never correctness.
 *
 * The suite exercises the worker pool and the spill tier, so it is
 * part of the ARCHVAL_SANITIZE=thread build (see README).
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>

#include "harness/replay_engine.hh"
#include "harness/vector_player.hh"
#include "murphi/enumerator.hh"
#include "support/rng.hh"
#include "support/spill_store.hh"
#include "support/status.hh"

namespace archval::harness
{
namespace
{

using rtl::BugId;
using rtl::BugSet;
using rtl::PpConfig;
using rtl::PpFsmModel;

class CheckpointFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        config_ = new PpConfig(PpConfig::smallPreset());
        model_ = new PpFsmModel(*config_);
        murphi::Enumerator enumerator(*model_);
        graph_ = new graph::StateGraph(enumerator.runOrThrow());
        graph::TourOptions tour_options;
        tour_options.maxInstructionsPerTrace = 1'000;
        graph::TourGenerator tour_gen(*graph_, tour_options);
        tours_ = new std::vector<graph::Trace>(tour_gen.run());
        vecgen::VectorGenerator generator(*model_, 42);
        traces_ = new std::vector<vecgen::TestTrace>(
            generator.generateAll(*graph_, *tours_));

        // All six Table 2.1 bugs as single-bug sets, donor first.
        bug_sets_ = new std::vector<BugSet>(1 + rtl::numBugs);
        for (size_t b = 0; b < rtl::numBugs; ++b)
            (*bug_sets_)[1 + b].set(b);

        // The sequential ground truth for the full trace × bug-set
        // matrix, computed once (every differential test compares
        // engine output against this).
        VectorPlayer player(*config_);
        expected_ = new std::vector<PlayResult>;
        for (const BugSet &bugs : *bug_sets_)
            for (const auto &trace : *traces_)
                expected_->push_back(player.play(trace, bugs));
    }

    static void
    TearDownTestSuite()
    {
        delete expected_;
        delete bug_sets_;
        delete traces_;
        delete tours_;
        delete graph_;
        delete model_;
        delete config_;
        expected_ = nullptr;
        bug_sets_ = nullptr;
        traces_ = nullptr;
        tours_ = nullptr;
        graph_ = nullptr;
        model_ = nullptr;
        config_ = nullptr;
    }

    /** @return one PpCore snapshot's byte footprint. */
    static size_t
    snapshotBytes()
    {
        return rtl::PpCore(*config_, rtl::CoreMode::Vector)
            .snapshotBytes();
    }

    static PpConfig *config_;
    static PpFsmModel *model_;
    static graph::StateGraph *graph_;
    static std::vector<graph::Trace> *tours_;
    static std::vector<vecgen::TestTrace> *traces_;
    static std::vector<BugSet> *bug_sets_;
    static std::vector<PlayResult> *expected_;
};

PpConfig *CheckpointFixture::config_ = nullptr;
PpFsmModel *CheckpointFixture::model_ = nullptr;
graph::StateGraph *CheckpointFixture::graph_ = nullptr;
std::vector<graph::Trace> *CheckpointFixture::tours_ = nullptr;
std::vector<vecgen::TestTrace> *CheckpointFixture::traces_ = nullptr;
std::vector<BugSet> *CheckpointFixture::bug_sets_ = nullptr;
std::vector<PlayResult> *CheckpointFixture::expected_ = nullptr;

/** Field-by-field PlayResult equality with a readable message. */
void
expectSameResult(const PlayResult &expected, const PlayResult &actual,
                 const std::string &what)
{
    EXPECT_EQ(expected.diverged, actual.diverged) << what;
    EXPECT_EQ(expected.diff, actual.diff) << what;
    EXPECT_EQ(expected.cycles, actual.cycles) << what;
    EXPECT_EQ(expected.instructions, actual.instructions) << what;
    EXPECT_EQ(expected.lockstepErrors, actual.lockstepErrors) << what;
    EXPECT_EQ(expected.drained, actual.drained) << what;
    EXPECT_EQ(expected.skipped, actual.skipped) << what;
}

/** Run the engine under @p options over the fixture matrix and
 *  require byte-identical results. @return the run's stats. */
ReplayStats
expectMatrixIdentical(const PpConfig &config,
                      const std::vector<vecgen::TestTrace> &traces,
                      const std::vector<BugSet> &bug_sets,
                      const std::vector<PlayResult> &expected,
                      const ReplayOptions &options,
                      const std::string &what)
{
    ReplayEngine engine(config, options);
    std::vector<PlayResult> actual = engine.playAll(traces, bug_sets);
    EXPECT_EQ(actual.size(), expected.size()) << what;
    for (size_t i = 0; i < expected.size() && i < actual.size(); ++i)
        expectSameResult(expected[i], actual[i],
                         what + " job " + std::to_string(i));
    return engine.stats();
}

// ---------------------------------------------------------------------
// Claim 1: serialization is lossless and damage is rejected.
// ---------------------------------------------------------------------

TEST_F(CheckpointFixture, SerializedSnapshotRoundTripsExactly)
{
    const vecgen::TestTrace &trace = *std::min_element(
        traces_->begin(), traces_->end(),
        [](const auto &a, const auto &b) {
            return a.cycles.size() < b.cycles.size();
        });
    ASSERT_GE(trace.cycles.size(), 4u);

    VectorPlayer player(*config_);
    PlayResult fresh = player.play(trace, BugSet{});

    rtl::PpCore core(*config_, rtl::CoreMode::Vector);
    VectorPlayer::primeCore(core, trace, BugSet{});
    size_t half = trace.cycles.size() / 2;
    VectorPlayer::drive(core, trace, 0, half);

    std::vector<uint8_t> bytes = core.snapshot().serialize();
    ASSERT_FALSE(bytes.empty());

    rtl::PpCore::Snapshot snap = rtl::PpCore::deserializeSnapshot(
        *config_, rtl::CoreMode::Vector, bytes.data(), bytes.size());
    ASSERT_TRUE(snap.valid());
    EXPECT_EQ(snap.cycles(), half);

    rtl::PpCore resumed(*config_, rtl::CoreMode::Vector);
    VectorPlayer::primeCore(resumed, trace, BugSet{});
    resumed.restore(snap);
    VectorPlayer::drive(resumed, trace, half, trace.cycles.size());
    expectSameResult(fresh,
                     VectorPlayer::finish(*config_, resumed, trace),
                     "deserialized mid-trace snapshot");
}

TEST_F(CheckpointFixture, DeserializeRejectsDamage)
{
    const vecgen::TestTrace &trace = traces_->front();
    rtl::PpCore core(*config_, rtl::CoreMode::Vector);
    VectorPlayer::primeCore(core, trace, BugSet{});
    VectorPlayer::drive(core, trace, 0, trace.cycles.size() / 2);
    std::vector<uint8_t> bytes = core.snapshot().serialize();
    ASSERT_GT(bytes.size(), 64u);

    // Truncation at any boundary must fail cleanly, never read out
    // of bounds (exercised under sanitizers by the tsan/asan builds).
    for (size_t keep :
         {size_t{0}, size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
        EXPECT_FALSE(rtl::PpCore::deserializeSnapshot(
                         *config_, rtl::CoreMode::Vector,
                         bytes.data(), keep)
                         .valid())
            << "truncated to " << keep;
    }

    // A snapshot from a different machine configuration must be
    // rejected by the config fingerprint.
    PpConfig other = PpConfig::smallPreset();
    other.machine.dmemWords *= 2;
    EXPECT_FALSE(rtl::PpCore::deserializeSnapshot(
                     other, rtl::CoreMode::Vector, bytes.data(),
                     bytes.size())
                     .valid());

    // Damaged magic/version header must be rejected.
    std::vector<uint8_t> bad = bytes;
    bad[0] ^= 0xFF;
    EXPECT_FALSE(rtl::PpCore::deserializeSnapshot(
                     *config_, rtl::CoreMode::Vector, bad.data(),
                     bad.size())
                     .valid());
}

// ---------------------------------------------------------------------
// Claim 2: cross-bug-set restore with mask re-arming.
// ---------------------------------------------------------------------

TEST_F(CheckpointFixture, BugRearmRoundTripFuzz)
{
    // Randomized attack on the validity rule: for random (trace,
    // cycle, bug set) draws, snapshot the *bug-free* run at the
    // cycle, round-trip it through bytes, restore with the bug mask
    // re-armed, and require the finished run to match the sequential
    // bugged run — whenever the cycle lies strictly below the bug
    // set's first trigger (the rule's precondition). Draws at or
    // above the trigger are discarded: the rule makes no promise
    // there.
    Rng rng(0xC0FFEE42);
    size_t checked = 0;
    for (int draw = 0; draw < 40 && checked < 12; ++draw) {
        const size_t t = rng.index(traces_->size());
        const vecgen::TestTrace &trace = (*traces_)[t];
        if (trace.cycles.size() < 2)
            continue;

        BugSet bugs;
        bugs.set(rng.index(rtl::numBugs));
        if (rng.chance(1, 3))
            bugs.set(rng.index(rtl::numBugs));

        // Donor run: record first-trigger cycles and snapshot at a
        // random mid-trace cycle.
        const size_t cut = 1 + rng.index(trace.cycles.size() - 1);
        rtl::PpCore donor(*config_, rtl::CoreMode::Vector);
        VectorPlayer::primeCore(donor, trace, BugSet{});
        VectorPlayer::drive(donor, trace, 0, cut);
        std::vector<uint8_t> bytes = donor.snapshot().serialize();
        VectorPlayer::drive(donor, trace, cut, trace.cycles.size());
        VectorPlayer::finish(*config_, donor, trace);

        uint64_t first = UINT64_MAX;
        for (size_t b = 0; b < rtl::numBugs; ++b)
            if (bugs.test(b))
                first = std::min(
                    first,
                    donor.bugFirstTrigger(static_cast<BugId>(b)));
        if (cut >= first)
            continue; // precondition unmet: no promise to check
        ++checked;

        rtl::PpCore::Snapshot snap = rtl::PpCore::deserializeSnapshot(
            *config_, rtl::CoreMode::Vector, bytes.data(),
            bytes.size());
        ASSERT_TRUE(snap.valid());

        rtl::PpCore resumed(*config_, rtl::CoreMode::Vector);
        VectorPlayer::primeCore(resumed, trace, bugs);
        resumed.restoreWithBugs(snap, bugs);
        VectorPlayer::drive(resumed, trace, cut, trace.cycles.size());
        PlayResult result =
            VectorPlayer::finish(*config_, resumed, trace);

        VectorPlayer player(*config_);
        expectSameResult(player.play(trace, bugs), result,
                         "trace " + std::to_string(t) + " cut " +
                             std::to_string(cut) + " bugs " +
                             bugs.to_string());
    }
    // The batch triggers bugs late enough that mid-trace cuts below
    // the trigger are common; if this ever fires, re-seed the fuzz.
    EXPECT_GE(checked, 6u) << "too few valid draws to trust the fuzz";
}

// ---------------------------------------------------------------------
// Claim 3: the engine differential across the full sweep.
// ---------------------------------------------------------------------

TEST_F(CheckpointFixture, EngineMatchesSequentialAcrossTierSweep)
{
    // The acceptance sweep: stride × (memory budget, spill budget) ×
    // worker count, all six Table 2.1 bug sets plus the bug-free
    // donor. Tiny memory budgets force evictions into the spill
    // tier; spill budget 0 forces evictions into drops.
    const size_t one = snapshotBytes();
    struct Tier
    {
        size_t memory;
        size_t spill;
        const char *name;
    };
    const Tier tiers[] = {
        {size_t{1} << 40, 0, "mem-unbounded"},
        {2 * one, size_t{1} << 40, "mem-tiny+spill"},
        {2 * one, 0, "mem-tiny+drop"},
    };
    const size_t strides[] = {0, 64, 4096};
    bool stride_hit_somewhere = false;

    for (size_t stride : strides) {
        for (const Tier &tier : tiers) {
            for (unsigned nw : {1u, 2u, 8u}) {
                ReplayOptions options;
                options.numThreads = nw;
                options.checkpointStride = stride;
                options.checkpointBudgetBytes = tier.memory;
                options.spillBudgetBytes = tier.spill;
                ReplayStats stats = expectMatrixIdentical(
                    *config_, *traces_, *bug_sets_, *expected_,
                    options,
                    std::string(tier.name) + " stride=" +
                        std::to_string(stride) +
                        " workers=" + std::to_string(nw));
                if (stride > 0) {
                    EXPECT_GT(stats.strideCheckpoints, 0u)
                        << tier.name << " stride=" << stride;
                }
                if (stats.strideHits > 0) {
                    stride_hit_somewhere = true;
                    EXPECT_GT(stats.strideResumeCycles, 0u);
                    // Resumes land strictly below the first trigger,
                    // so the skipped cycles fit inside the jobs'
                    // reset-to-trigger leads.
                    EXPECT_LE(stats.strideResumeCycles,
                              stats.triggeredLeadCycles);
                    EXPECT_LE(stats.triggeredLeadCycles,
                              stats.triggeredJobCycles);
                }
                if (tier.spill == 0 &&
                    tier.memory > (size_t{1} << 30)) {
                    EXPECT_EQ(stats.spillWrites, 0u);
                }
            }
        }
    }
    // The sweep must actually exercise the tier it validates: at
    // least one configuration resumes a triggered job mid-trace.
    EXPECT_TRUE(stride_hit_somewhere);
}

TEST_F(CheckpointFixture, RandomizedPropertyDifferential)
{
    // Property test: random engine configurations and random bug-set
    // subsets must always reproduce the sequential player. Seeded,
    // so a failure is reproducible from the draw index.
    Rng rng(0x7E57C0DE);
    const size_t one = snapshotBytes();
    size_t max_len = 0;
    for (const auto &trace : *traces_)
        max_len = std::max(max_len, trace.cycles.size());

    for (int draw = 0; draw < 8; ++draw) {
        // Random subset of bug sets, donor included half the time.
        std::vector<BugSet> bug_sets;
        std::vector<PlayResult> expected;
        for (size_t b = 0; b < bug_sets_->size(); ++b) {
            if (rng.chance(1, 2))
                continue;
            bug_sets.push_back((*bug_sets_)[b]);
            expected.insert(
                expected.end(),
                expected_->begin() +
                    static_cast<long>(b * traces_->size()),
                expected_->begin() +
                    static_cast<long>((b + 1) * traces_->size()));
        }
        if (bug_sets.empty()) {
            bug_sets.push_back((*bug_sets_)[0]);
            expected.assign(expected_->begin(),
                            expected_->begin() +
                                static_cast<long>(traces_->size()));
        }

        ReplayOptions options;
        options.numThreads = 1 + (unsigned)rng.index(8);
        options.checkpointStride = rng.index(2 * max_len);
        options.checkpointBudgetBytes =
            rng.chance(1, 4) ? 0 : rng.range(one, 64 * one);
        options.spillBudgetBytes =
            rng.chance(1, 2) ? 0 : rng.range(one, 64 * one);
        options.minPrefixCycles = rng.range(1, 64);
        expectMatrixIdentical(
            *config_, *traces_, bug_sets, expected, options,
            "draw " + std::to_string(draw) + " workers=" +
                std::to_string(options.numThreads) + " stride=" +
                std::to_string(options.checkpointStride));
    }
}

// ---------------------------------------------------------------------
// Spill-tier fault injection: damage may cost cycles, never bytes.
// ---------------------------------------------------------------------

TEST_F(CheckpointFixture, SpillTierRoundTripsUnderPressure)
{
    // A memory budget of ~1 snapshot forces every published
    // checkpoint through the spill tier; results must not change and
    // the spill counters must show real traffic.
    ReplayOptions options;
    options.numThreads = 2;
    options.checkpointStride = 64;
    options.checkpointBudgetBytes = snapshotBytes() + 1;
    options.spillBudgetBytes = size_t{1} << 40;
    options.minPrefixCycles = 4;
    ReplayStats stats = expectMatrixIdentical(
        *config_, *traces_, *bug_sets_, *expected_, options,
        "spill pressure");
    EXPECT_GT(stats.spillWrites, 0u);
    EXPECT_GT(stats.spillBytes, 0u);
    EXPECT_GT(stats.spillReads, 0u);
    EXPECT_EQ(stats.spillFallbacks, 0u);
}

TEST_F(CheckpointFixture, InjectedSpillFaultsDegradeGracefully)
{
    // Every spilled record is damaged on disk (flipped payload byte,
    // then truncation). Faulting back must detect the damage, count
    // a fallback, and replay from an earlier checkpoint or reset —
    // with byte-identical results throughout.
    for (auto fault : {ReplayOptions::SpillFault::CorruptCrc,
                       ReplayOptions::SpillFault::Truncate}) {
        ReplayOptions options;
        options.numThreads = 2;
        options.checkpointStride = 64;
        options.checkpointBudgetBytes = snapshotBytes() + 1;
        options.spillBudgetBytes = size_t{1} << 40;
        options.minPrefixCycles = 4;
        options.spillFault = fault;
        const char *name =
            fault == ReplayOptions::SpillFault::CorruptCrc
                ? "corrupt-crc"
                : "truncate";
        ReplayStats stats = expectMatrixIdentical(
            *config_, *traces_, *bug_sets_, *expected_, options,
            name);
        EXPECT_GT(stats.spillWrites, 0u) << name;
        EXPECT_GT(stats.spillFallbacks, 0u) << name;
    }
}

TEST_F(CheckpointFixture, UnusableSpillDirectoryDisablesTier)
{
    // A nonexistent spill directory must disable the tier (no file,
    // no writes) without affecting results.
    ReplayOptions options;
    options.numThreads = 2;
    options.checkpointBudgetBytes = snapshotBytes() + 1;
    options.spillBudgetBytes = size_t{1} << 40;
    options.spillDir = "/nonexistent/archval-spill-dir";
    options.minPrefixCycles = 4;
    ReplayStats stats = expectMatrixIdentical(
        *config_, *traces_, *bug_sets_, *expected_, options,
        "bad spill dir");
    EXPECT_EQ(stats.spillWrites, 0u);
    EXPECT_EQ(stats.spillReads, 0u);
}

// ---------------------------------------------------------------------
// SpillStore unit-level faults (real file damage, no engine).
// ---------------------------------------------------------------------

TEST(SpillStoreTest, RoundTripAndStats)
{
    SpillStore store(SpillStore::Options{});
    ASSERT_TRUE(store.enabled());
    std::vector<uint8_t> a(1000);
    for (size_t i = 0; i < a.size(); ++i)
        a[i] = (uint8_t)(i * 7);
    std::vector<uint8_t> b(313, 0x5A);

    int64_t ida = store.append(a.data(), a.size());
    int64_t idb = store.append(b.data(), b.size());
    ASSERT_NE(ida, SpillStore::invalidId);
    ASSERT_NE(idb, SpillStore::invalidId);

    std::vector<uint8_t> out;
    EXPECT_TRUE(store.read(idb, out));
    EXPECT_EQ(out, b);
    EXPECT_TRUE(store.read(ida, out));
    EXPECT_EQ(out, a);
    EXPECT_EQ(store.writes(), 2u);
    EXPECT_EQ(store.reads(), 2u);
    EXPECT_EQ(store.readFailures(), 0u);
    EXPECT_EQ(store.bytesWritten(), a.size() + b.size());

    EXPECT_FALSE(store.read(99, out)); // unknown id
    EXPECT_TRUE(out.empty());
}

TEST(SpillStoreTest, CorruptedRecordFailsCrc)
{
    SpillStore store(SpillStore::Options{});
    ASSERT_TRUE(store.enabled());
    std::vector<uint8_t> data(4096, 0xA5);
    int64_t id = store.append(data.data(), data.size());
    ASSERT_NE(id, SpillStore::invalidId);
    ASSERT_TRUE(store.corruptRecordForTesting(id));

    std::vector<uint8_t> out(3, 1);
    EXPECT_FALSE(store.read(id, out));
    EXPECT_TRUE(out.empty()) << "failed read must not leak bytes";
    EXPECT_EQ(store.readFailures(), 1u);
}

TEST(SpillStoreTest, TruncatedFileFailsShortRead)
{
    SpillStore store(SpillStore::Options{});
    ASSERT_TRUE(store.enabled());
    std::vector<uint8_t> first(256, 0x11);
    std::vector<uint8_t> second(256, 0x22);
    int64_t id0 = store.append(first.data(), first.size());
    int64_t id1 = store.append(second.data(), second.size());
    ASSERT_TRUE(store.truncateAtRecordForTesting(id1));

    std::vector<uint8_t> out;
    EXPECT_TRUE(store.read(id0, out)) << "record before cut survives";
    EXPECT_EQ(out, first);
    EXPECT_FALSE(store.read(id1, out));
    EXPECT_TRUE(out.empty());
}

TEST(SpillStoreTest, BudgetCapRefusesOverflow)
{
    SpillStore store(SpillStore::Options{"", 100});
    ASSERT_TRUE(store.enabled());
    std::vector<uint8_t> data(60, 0x33);
    EXPECT_NE(store.append(data.data(), data.size()),
              SpillStore::invalidId);
    // 60 + 60 > 100: the second append must be refused, and the
    // refusal must not disable the store.
    EXPECT_EQ(store.append(data.data(), data.size()),
              SpillStore::invalidId);
    std::vector<uint8_t> small(30, 0x44);
    EXPECT_NE(store.append(small.data(), small.size()),
              SpillStore::invalidId);
}

TEST(SpillStoreTest, ZeroBudgetAndBadDirDisable)
{
    SpillStore none(SpillStore::Options{"", 0});
    EXPECT_FALSE(none.enabled());
    EXPECT_TRUE(none.path().empty());

    SpillStore bad(
        SpillStore::Options{"/nonexistent/archval-spill-dir", 1024});
    EXPECT_FALSE(bad.enabled());
    std::vector<uint8_t> data(8, 0);
    EXPECT_EQ(bad.append(data.data(), data.size()),
              SpillStore::invalidId);
}

// ---------------------------------------------------------------------
// RecordFile writer/reader — the session-store container format.
// ---------------------------------------------------------------------

namespace
{

constexpr uint32_t kTestMagic = 0x52435654; // "TVCR"

std::vector<uint8_t>
patternRecord(size_t size, uint8_t seed)
{
    std::vector<uint8_t> record(size);
    for (size_t i = 0; i < size; ++i)
        record[i] = static_cast<uint8_t>(seed + i * 13);
    return record;
}

std::string
recordFilePath(const char *name)
{
    return ::testing::TempDir() + "/archval-recfile-" + name + "-" +
           std::to_string(::getpid());
}

} // namespace

TEST(RecordFileTest, RoundTripIncludingEmptyRecords)
{
    const std::string path = recordFilePath("roundtrip");
    std::vector<std::vector<uint8_t>> records{
        patternRecord(1, 3), {}, patternRecord(4096, 7),
        patternRecord(17, 11)};
    {
        RecordFileWriter writer(path, kTestMagic, 2);
        ASSERT_TRUE(writer.ok());
        for (const auto &record : records)
            ASSERT_TRUE(writer.append(record));
        ASSERT_TRUE(writer.commit());
    }
    RecordFileReader reader(path, kTestMagic, 2);
    ASSERT_TRUE(reader.ok());
    std::vector<uint8_t> out;
    for (const auto &record : records) {
        ASSERT_EQ(reader.next(out), RecordFileReader::Status::Record);
        EXPECT_EQ(out, record);
    }
    EXPECT_EQ(reader.next(out), RecordFileReader::Status::End);
    EXPECT_EQ(reader.next(out), RecordFileReader::Status::End);
    ::unlink(path.c_str());
}

TEST(RecordFileTest, UncommittedWriterLeavesTargetUntouched)
{
    const std::string path = recordFilePath("atomic");
    {
        RecordFileWriter writer(path, kTestMagic, 1);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.append(patternRecord(64, 1)));
        ASSERT_TRUE(writer.commit());
    }
    {
        // A writer that dies before commit() (daemon killed mid-save)
        // must leave the previously committed file intact.
        RecordFileWriter writer(path, kTestMagic, 1);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.append(patternRecord(999, 2)));
        // no commit
    }
    RecordFileReader reader(path, kTestMagic, 1);
    ASSERT_TRUE(reader.ok());
    std::vector<uint8_t> out;
    ASSERT_EQ(reader.next(out), RecordFileReader::Status::Record);
    EXPECT_EQ(out, patternRecord(64, 1));
    EXPECT_EQ(reader.next(out), RecordFileReader::Status::End);
    ::unlink(path.c_str());
}

TEST(RecordFileTest, ForeignMagicOrVersionFailsOpen)
{
    const std::string path = recordFilePath("identity");
    {
        RecordFileWriter writer(path, kTestMagic, 3);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.append(patternRecord(32, 5)));
        ASSERT_TRUE(writer.commit());
    }
    EXPECT_FALSE(RecordFileReader(path, kTestMagic + 1, 3).ok());
    EXPECT_FALSE(RecordFileReader(path, kTestMagic, 4).ok());
    EXPECT_FALSE(
        RecordFileReader(path + ".nope", kTestMagic, 3).ok());
    EXPECT_TRUE(RecordFileReader(path, kTestMagic, 3).ok());
    ::unlink(path.c_str());
}

TEST(RecordFileTest, FlippedBitAndTruncationAreStickyDamage)
{
    const std::string path = recordFilePath("damage");
    {
        RecordFileWriter writer(path, kTestMagic, 1);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.append(patternRecord(512, 9)));
        ASSERT_TRUE(writer.append(patternRecord(512, 10)));
        ASSERT_TRUE(writer.commit());
    }
    struct stat st;
    ASSERT_EQ(::stat(path.c_str(), &st), 0);

    // Flip one payload byte of the second record: record one still
    // reads, record two is Damaged, and damage is sticky.
    {
        int fd = ::open(path.c_str(), O_RDWR);
        ASSERT_GE(fd, 0);
        const off_t target = st.st_size - 100;
        uint8_t byte = 0;
        ASSERT_EQ(::pread(fd, &byte, 1, target), 1);
        byte ^= 0x01;
        ASSERT_EQ(::pwrite(fd, &byte, 1, target), 1);
        ::close(fd);

        RecordFileReader reader(path, kTestMagic, 1);
        ASSERT_TRUE(reader.ok());
        std::vector<uint8_t> out;
        ASSERT_EQ(reader.next(out),
                  RecordFileReader::Status::Record);
        EXPECT_EQ(out, patternRecord(512, 9));
        EXPECT_EQ(reader.next(out),
                  RecordFileReader::Status::Damaged);
        EXPECT_TRUE(out.empty());
        EXPECT_EQ(reader.next(out),
                  RecordFileReader::Status::Damaged);
    }

    // Truncation mid-record: Damaged, not a short read or End.
    ASSERT_EQ(::truncate(path.c_str(), st.st_size - 10), 0);
    {
        RecordFileReader reader(path, kTestMagic, 1);
        ASSERT_TRUE(reader.ok());
        std::vector<uint8_t> out;
        ASSERT_EQ(reader.next(out),
                  RecordFileReader::Status::Record);
        EXPECT_EQ(reader.next(out),
                  RecordFileReader::Status::Damaged);
    }

    // Truncation inside the header: the open itself fails.
    ASSERT_EQ(::truncate(path.c_str(), 5), 0);
    EXPECT_FALSE(RecordFileReader(path, kTestMagic, 1).ok());
    ::unlink(path.c_str());
}

TEST(SpillStoreTest, ReadOnlyDirectoryDisables)
{
    // Root bypasses directory permission bits, so the scenario is
    // only constructible as an unprivileged user.
    if (::geteuid() == 0)
        GTEST_SKIP() << "running as root: mode 0500 is not read-only";
    std::string dir = ::testing::TempDir() + "/archval-ro-spill";
    ASSERT_EQ(::mkdir(dir.c_str(), 0500), 0);
    SpillStore store(SpillStore::Options{dir, 1024});
    EXPECT_FALSE(store.enabled());
    ::rmdir(dir.c_str());
}

} // namespace
} // namespace archval::harness

/**
 * @file
 * Unit tests for the FSM IR: choice codec, state layout, lambda and
 * explicit-table models.
 */

#include <gtest/gtest.h>

#include "fsm/built_model.hh"
#include "fsm/model.hh"
#include "support/status.hh"

namespace archval::fsm
{
namespace
{

TEST(ChoiceCodec, EncodeDecodeRoundTrip)
{
    ChoiceCodec codec({{"a", 3}, {"b", 2}, {"c", 5}});
    EXPECT_EQ(codec.numCombinations(), 30u);
    for (uint64_t code = 0; code < 30; ++code) {
        Choice choice = codec.decode(code);
        EXPECT_EQ(codec.encode(choice), code);
    }
}

TEST(ChoiceCodec, ComponentsMatchDecode)
{
    ChoiceCodec codec({{"a", 4}, {"b", 7}});
    for (uint64_t code = 0; code < 28; ++code) {
        Choice choice = codec.decode(code);
        EXPECT_EQ(codec.component(code, 0), choice[0]);
        EXPECT_EQ(codec.component(code, 1), choice[1]);
    }
}

TEST(ChoiceCodec, SingleVariable)
{
    ChoiceCodec codec({{"only", 9}});
    EXPECT_EQ(codec.numCombinations(), 9u);
    EXPECT_EQ(codec.decode(7)[0], 7u);
}

TEST(ChoiceCodec, EmptyHasOneCombination)
{
    ChoiceCodec codec(std::vector<ChoiceVarInfo>{});
    EXPECT_EQ(codec.numCombinations(), 1u);
    EXPECT_TRUE(codec.decode(0).empty());
}

TEST(ChoiceCodec, ZeroCardinalityIsFatal)
{
    EXPECT_THROW(ChoiceCodec({{"bad", 0}}), FatalError);
}

TEST(StateLayout, OffsetsAndWidths)
{
    StateLayout layout({{"a", 3, 0}, {"b", 1, 0}, {"c", 5, 0}});
    EXPECT_EQ(layout.totalBits(), 9u);
    EXPECT_EQ(layout.offsetOf(0), 0u);
    EXPECT_EQ(layout.offsetOf(1), 3u);
    EXPECT_EQ(layout.offsetOf(2), 4u);
    EXPECT_EQ(layout.widthOf(2), 5u);
}

TEST(StateLayout, GetSetByIndexAndName)
{
    StateLayout layout({{"a", 3, 0}, {"b", 4, 0}});
    BitVec state(layout.totalBits());
    layout.set(state, 0, 5);
    layout.set(state, 1, 9);
    EXPECT_EQ(layout.get(state, 0), 5u);
    EXPECT_EQ(layout.get(state, 1), 9u);
    EXPECT_EQ(layout.getByName(state, "b"), 9u);
    EXPECT_EQ(layout.indexOf("a"), 0u);
}

TEST(LambdaModel, CounterModel)
{
    // 3-bit counter: choice "step" in {0,1} increments.
    std::vector<StateVarInfo> svars = {{"count", 3, 2}};
    std::vector<ChoiceVarInfo> cvars = {{"step", 2}};
    LambdaModel model(
        "counter", svars, cvars,
        [](const BitVec &state, const Choice &choice)
            -> std::optional<BitVec> {
            BitVec next(3);
            next.setField(0, 3,
                          (state.getField(0, 3) + choice[0]) & 7);
            return next;
        });

    EXPECT_EQ(model.stateBits(), 3u);
    BitVec reset = model.resetState();
    EXPECT_EQ(reset.getField(0, 3), 2u);

    auto t = model.next(reset, {1});
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->next.getField(0, 3), 3u);
    EXPECT_EQ(t->instructions, 0u);
}

TEST(LambdaModel, RejectionPropagates)
{
    LambdaModel model(
        "rejecting", {{"s", 1, 0}}, {{"c", 3}},
        [](const BitVec &state, const Choice &choice)
            -> std::optional<BitVec> {
            if (choice[0] == 2)
                return std::nullopt;
            return state;
        });
    EXPECT_TRUE(model.next(model.resetState(), {0}).has_value());
    EXPECT_FALSE(model.next(model.resetState(), {2}).has_value());
}

TEST(LambdaModel, InstructionCounterHook)
{
    LambdaModel model(
        "instr", {{"s", 1, 0}}, {{"c", 2}},
        [](const BitVec &state, const Choice &) { return state; },
        [](const BitVec &, const Choice &choice) -> unsigned {
            return choice[0];
        });
    EXPECT_EQ(model.next(model.resetState(), {0})->instructions, 0u);
    EXPECT_EQ(model.next(model.resetState(), {1})->instructions, 1u);
}

TEST(ExplicitFsm, DefaultSelfLoop)
{
    ExplicitFsm fsm("t");
    fsm.addState("A");
    fsm.addState("B");
    fsm.addInput("x");
    // No transitions declared: everything self-loops.
    EXPECT_EQ(fsm.step(0, 0), std::optional<size_t>(0));
    EXPECT_EQ(fsm.step(1, 0), std::optional<size_t>(1));
}

TEST(ExplicitFsm, TransitionsAndForbidden)
{
    ExplicitFsm fsm("t");
    fsm.addState("A");
    fsm.addState("B");
    fsm.addInput("go");
    fsm.addInput("halt");
    fsm.addTransition("A", "go", "B");
    fsm.forbid("B", "go");
    EXPECT_EQ(fsm.step(0, 0), std::optional<size_t>(1));
    EXPECT_EQ(fsm.step(0, 1), std::optional<size_t>(0));
    EXPECT_FALSE(fsm.step(1, 0).has_value());
}

TEST(ExplicitFsm, DuplicateStateIsFatal)
{
    ExplicitFsm fsm("t");
    fsm.addState("A");
    EXPECT_THROW(fsm.addState("A"), FatalError);
}

TEST(ExplicitFsm, ToModelMatchesTable)
{
    ExplicitFsm fsm("abc");
    fsm.addState("A");
    fsm.addState("B");
    fsm.addState("C");
    fsm.addInput("a");
    fsm.addInput("b");
    fsm.addTransition("A", "a", "B");
    fsm.addTransition("B", "b", "C");
    fsm.addTransition("C", "a", "A");

    auto model = fsm.toModel();
    ASSERT_EQ(model->choiceVars().size(), 1u);
    EXPECT_EQ(model->choiceVars()[0].cardinality, 2u);

    BitVec state = model->resetState();
    auto step = [&](uint32_t input) {
        auto t = model->next(state, {input});
        ASSERT_TRUE(t.has_value());
        state = t->next;
    };
    step(0); // A -a-> B
    EXPECT_EQ(state.getField(0, model->stateBits()), 1u);
    step(1); // B -b-> C
    EXPECT_EQ(state.getField(0, model->stateBits()), 2u);
    step(1); // C -b-> C (self loop)
    EXPECT_EQ(state.getField(0, model->stateBits()), 2u);
    step(0); // C -a-> A
    EXPECT_EQ(state.getField(0, model->stateBits()), 0u);
}

TEST(Model, DescribeStateNamesEveryVar)
{
    LambdaModel model(
        "d", {{"alpha", 2, 1}, {"beta", 3, 4}}, {{"c", 2}},
        [](const BitVec &state, const Choice &) { return state; });
    std::string text = model.describeState(model.resetState());
    EXPECT_NE(text.find("alpha=1"), std::string::npos);
    EXPECT_NE(text.find("beta=4"), std::string::npos);
}

} // namespace
} // namespace archval::fsm

/**
 * @file
 * Tests for the fault library: metadata, taxonomy, dormancy (a bug
 * stays invisible without its triggering event conjunction), and the
 * bug #5 timing-diagram scenario of Figures 2.2 / 2.3.
 */

#include <gtest/gtest.h>

#include "harness/bug5_scenario.hh"
#include "pp/assembler.hh"
#include "pp/ref_sim.hh"
#include "rtl/faults.hh"
#include "rtl/pp_core.hh"

namespace archval::rtl
{
namespace
{

TEST(Faults, NamesAndSummariesExist)
{
    for (size_t b = 0; b < numBugs; ++b) {
        BugId bug = static_cast<BugId>(b);
        EXPECT_STRNE(bugName(bug), "?");
        EXPECT_STRNE(bugSummary(bug), "?");
        EXPECT_EQ(bugClassOf(bug), BugClass::MultipleEvent);
    }
}

TEST(Faults, ClassNamesMatchTable11)
{
    EXPECT_STREQ(bugClassName(BugClass::PipelineDatapathOnly),
                 "Pipeline/Datapath ONLY");
    EXPECT_STREQ(bugClassName(BugClass::SingleControlLogic),
                 "Single Control Logic");
    EXPECT_STREQ(bugClassName(BugClass::MultipleEvent),
                 "Multiple Event");
}

/**
 * Dormancy: every injected bug needs its multi-event conjunction;
 * a simple program without the corner cases must run clean even
 * with the bug present. This is exactly why such bugs escape
 * ordinary testing (paper Section 1).
 */
class BugDormancy : public ::testing::TestWithParam<size_t>
{
};

TEST_P(BugDormancy, SimpleProgramRunsClean)
{
    // ALU-only: no D-cache traffic and no pipe freezes, so none of
    // the multi-event conjunctions can arise (I-misses alone are
    // harmless). Memory-visible interactions are exercised by the
    // full-flow detection tests instead.
    auto program = pp::assemble(R"(
        addi r1, r0, 5
        addi r2, r0, 6
        add r3, r1, r2
        xor r4, r3, r1
        slt r5, r1, r2
        sub r6, r2, r1
        halt
    )");
    ASSERT_TRUE(program.ok());

    PpConfig config = PpConfig::smallPreset();
    pp::RefSim ref(config.machine);
    ref.loadProgram(program.value());
    ref.run();

    PpCore core(config, CoreMode::Program);
    core.loadProgram(program.value());
    core.setBug(static_cast<BugId>(GetParam()), true);
    core.run(100'000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(ref.archState().diff(core.archState()), "")
        << bugName(static_cast<BugId>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Faults, BugDormancy,
                         ::testing::Range<size_t>(0, numBugs));

TEST(Bug5Scenario, FixedDesignAlwaysCorrect)
{
    PpConfig config = PpConfig::smallPreset();
    for (bool stall : {false, true}) {
        auto outcome =
            harness::runBug5Scenario(config, stall, false);
        EXPECT_FALSE(outcome.corrupted) << "stall=" << stall;
        EXPECT_EQ(outcome.loadedValue, outcome.expectedValue);
    }
}

TEST(Bug5Scenario, GlitchMaskedWithoutExternalStall)
{
    // Figure 2.2: the second write masks the glitch; no corruption.
    auto outcome = harness::runBug5Scenario(
        PpConfig::smallPreset(), false, true);
    EXPECT_FALSE(outcome.corrupted);
}

TEST(Bug5Scenario, ExternalStallInWindowCorruptsRegister)
{
    // Figure 2.3: the stall suppresses the rewrite; garbage remains.
    auto outcome = harness::runBug5Scenario(
        PpConfig::smallPreset(), true, true);
    EXPECT_TRUE(outcome.corrupted);
    EXPECT_NE(outcome.loadedValue, outcome.expectedValue);
}

TEST(Bug5Scenario, WaveformShowsCriticalWordAndStall)
{
    auto outcome = harness::runBug5Scenario(
        PpConfig::smallPreset(), true, true);
    bool saw_crit = false, saw_ext = false;
    for (const auto &line : outcome.waveform) {
        saw_crit |= line.find("CRITWORD") != std::string::npos;
        saw_ext |= line.find("extstall=1") != std::string::npos;
    }
    EXPECT_TRUE(saw_crit);
    EXPECT_TRUE(saw_ext);
}

TEST(Bug5Scenario, WorksOnFullPresetGeometry)
{
    PpConfig config = PpConfig::fullPreset();
    auto masked = harness::runBug5Scenario(config, false, true);
    EXPECT_FALSE(masked.corrupted);
    auto corrupted = harness::runBug5Scenario(config, true, true);
    EXPECT_TRUE(corrupted.corrupted);
}

} // namespace
} // namespace archval::rtl

/**
 * @file
 * Differential tests of the compiled step kernels (src/compile/):
 * the enumerated state graph must be bit-identical whether frontier
 * states are expanded by the expression-tree interpreter, the scalar
 * bytecode kernel, or the 64-lane bit-sliced kernel — for every HDL
 * corpus design, every worker count in {1, 2, 8}, and the PP FSM
 * (which has no compiled form and must fall back cleanly). Also
 * exercises ragged (non-multiple-of-64) batches against the scalar
 * kernel directly, and the CompiledModel drop-in next().
 */

#include <gtest/gtest.h>

#include "compile/compiled_model.hh"
#include "compile/kernel.hh"
#include "graph/state_graph.hh"
#include "hdl/corpus.hh"
#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"

namespace archval::compile
{
namespace
{

using murphi::EnumOptions;
using murphi::Enumerator;
using murphi::StepKernel;

/** Enumerate @p model with the given kernel and worker count. */
uint64_t
enumFingerprint(const fsm::Model &model, StepKernel kernel,
                unsigned threads,
                murphi::EnumStats *stats_out = nullptr)
{
    EnumOptions options;
    options.compiledStep = kernel;
    options.numThreads = threads;
    Enumerator enumerator(model, options);
    graph::StateGraph graph = enumerator.runOrThrow();
    if (stats_out)
        *stats_out = enumerator.stats();
    return graph::fingerprint(graph);
}

/** All three kernels, worker counts {1, 2, 8}: one fingerprint. */
void
expectAllModesIdentical(const fsm::Model &model)
{
    murphi::EnumStats stats;
    const uint64_t reference =
        enumFingerprint(model, StepKernel::Interpreted, 1);
    for (StepKernel kernel : {StepKernel::Interpreted,
                              StepKernel::Bytecode,
                              StepKernel::BitSliced}) {
        for (unsigned threads : {1u, 2u, 8u}) {
            EXPECT_EQ(enumFingerprint(model, kernel, threads, &stats),
                      reference)
                << "kernel " << int(kernel) << " threads " << threads;
            if (kernel != StepKernel::Interpreted) {
                EXPECT_FALSE(stats.compiledFallback);
                EXPECT_EQ(stats.kernelUsed, kernel);
            }
        }
    }
}

TEST(Compile, EveryCorpusDesignAllKernelsAllWorkerCounts)
{
    for (const auto &design : hdl::designCorpus()) {
        SCOPED_TRACE(design.name);
        auto result = hdl::translateCorpus(design);
        ASSERT_TRUE(result.ok()) << result.errorMessage();
        expectAllModesIdentical(*result.value().model);
    }
}

TEST(Compile, PpFsmFallsBackToInterpreted)
{
    // The PP FSM is closure-based: no compiled form. Requesting a
    // compiled kernel must fall back (reported, not an error) and
    // still produce the identical graph.
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    ASSERT_EQ(model.compileSpec(), nullptr);

    murphi::EnumStats stats;
    const uint64_t reference =
        enumFingerprint(model, StepKernel::Interpreted, 1);
    EXPECT_EQ(enumFingerprint(model, StepKernel::BitSliced, 1, &stats),
              reference);
    EXPECT_TRUE(stats.compiledFallback);
    EXPECT_EQ(stats.kernelUsed, StepKernel::Interpreted);
}

TEST(Compile, CompiledModelMatchesInterpreterEverywhere)
{
    // Every reachable state x every choice tuple: CompiledModel's
    // scalar step must equal HdlModel's interpreted step bit for bit
    // (and per-edge instruction count for instruction count).
    for (const auto &design : hdl::designCorpus()) {
        SCOPED_TRACE(design.name);
        auto result = hdl::translateCorpus(design);
        ASSERT_TRUE(result.ok()) << result.errorMessage();
        const fsm::Model &interp = *result.value().model;
        CompiledModel compiled(interp.compileSpec());

        Enumerator enumerator(interp);
        graph::StateGraph graph = enumerator.runOrThrow();
        const fsm::ChoiceCodec codec = interp.makeChoiceCodec();
        for (graph::StateId s = 0; s < graph.numStates(); ++s) {
            const BitVec &packed = graph.packedState(s);
            for (uint64_t code = 0; code < codec.numCombinations();
                 ++code) {
                fsm::Choice choice = codec.decode(code);
                auto a = interp.next(packed, choice);
                auto b = compiled.next(packed, choice);
                ASSERT_EQ(a.has_value(), b.has_value());
                if (a) {
                    ASSERT_EQ(a->next, b->next)
                        << "state " << s << " code " << code;
                    ASSERT_EQ(a->instructions, b->instructions);
                }
            }
        }
    }
}

TEST(Compile, RaggedBatchesMatchScalarKernel)
{
    // Drive the sliced kernel directly with every ragged batch size
    // 1..64 over reachable states of the largest design; each lane's
    // emission sequence must equal the scalar kernel's.
    auto result = hdl::translateCorpus(hdl::largestCorpusDesign());
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const fsm::Model &model = *result.value().model;
    auto program = lower(*model.compileSpec());

    Enumerator enumerator(model);
    graph::StateGraph graph = enumerator.runOrThrow();
    const size_t num_states = graph.numStates();

    ScalarKernel scalar(program);
    SlicedKernel sliced(program);
    size_t next_state = 0;
    for (size_t batch = 1; batch <= 64; ++batch) {
        std::vector<const BitVec *> sources(batch);
        for (size_t i = 0; i < batch; ++i) {
            sources[i] =
                &graph.packedState((next_state + i) % num_states);
        }

        // Expected: scalar expansion of each lane, concatenated in
        // lane order.
        std::vector<std::tuple<size_t, uint64_t, BitVec, unsigned>>
            expected;
        for (size_t i = 0; i < batch; ++i) {
            scalar.forEachTransition(
                *sources[i],
                [&](uint64_t code, fsm::Transition &&t) {
                    expected.emplace_back(i, code, std::move(t.next),
                                          t.instructions);
                });
        }

        std::vector<std::tuple<size_t, uint64_t, BitVec, unsigned>>
            actual;
        sliced.expandBatch(
            sources.data(), batch,
            [&](size_t lane, uint64_t code, fsm::Transition &&t) {
                actual.emplace_back(lane, code, std::move(t.next),
                                    t.instructions);
            });
        ASSERT_EQ(actual, expected) << "batch size " << batch;
        next_state = (next_state + batch) % num_states;
    }
}

TEST(Compile, VariableShiftsTakeScalarFallback)
{
    // The barrel rotator's data-dependent shifts cannot be sliced;
    // the kernel must take the per-lane fallback path and still be
    // bit-identical (covered by the corpus sweep above — here we
    // check the fallback actually engaged, so the sliced path is not
    // silently skipping the design).
    const hdl::CorpusDesign *barrel = nullptr;
    for (const auto &design : hdl::designCorpus()) {
        if (std::string(design.name) == "barrel_rotator")
            barrel = &design;
    }
    ASSERT_NE(barrel, nullptr);
    auto result = hdl::translateCorpus(*barrel);
    ASSERT_TRUE(result.ok()) << result.errorMessage();

    EnumOptions options;
    options.compiledStep = StepKernel::BitSliced;
    Enumerator enumerator(*result.value().model, options);
    enumerator.runOrThrow();
    EXPECT_GT(enumerator.stats().slicedFallbackLanes, 0u);
}

TEST(Compile, BytecodeProgramShape)
{
    auto result = hdl::translateCorpus(hdl::largestCorpusDesign());
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    auto spec = result.value().model->compileSpec();
    ASSERT_NE(spec, nullptr);
    auto program = lower(*spec);

    // Halt-terminated, dense registers, plausible size.
    ASSERT_FALSE(program->insns.empty());
    EXPECT_EQ(program->insns.back().op, BOp::Halt);
    EXPECT_EQ(program->nextRegs.size(), spec->stateVars.size());
    EXPECT_GT(program->numRegs, 0u);
    EXPECT_LT(program->byteSize(), size_t(64) << 10);
}

} // namespace
} // namespace archval::compile

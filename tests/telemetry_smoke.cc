/**
 * @file
 * Telemetry smoke pipeline: a tiny enum + replay run with tracing
 * driven by the environment (`ARCHVAL_TRACE`, `ARCHVAL_HEARTBEAT`).
 * The `telemetry_smoke` ctest (tools/telemetry_smoke.py) runs this
 * binary with a trace path set and validates the emitted JSON with
 * tools/trace_summary.py --check.
 *
 * Exit codes: 0 on success, 1 when the pipeline misbehaves (no
 * states, replay divergence on the bug-free run, empty registry).
 */

#include <cstdio>

#include "harness/replay_engine.hh"
#include "murphi/enumerator.hh"
#include "support/telemetry.hh"
#include "vecgen/vector_gen.hh"

using namespace archval;

int
main()
{
    telemetry::initTelemetryFromEnv();

    rtl::PpConfig config = rtl::PpConfig::smallPreset();
    rtl::PpFsmModel model(config);

    murphi::EnumOptions enum_options;
    enum_options.numThreads = 2;
    murphi::Enumerator enumerator(model, enum_options);
    graph::StateGraph graph = enumerator.runOrThrow();
    if (graph.numStates() == 0 || graph.numEdges() == 0) {
        std::fprintf(stderr, "smoke: empty state graph\n");
        return 1;
    }

    graph::TourOptions tour_options;
    tour_options.maxInstructionsPerTrace = 500;
    graph::TourGenerator tour_gen(graph, tour_options);
    std::vector<graph::Trace> tours = tour_gen.run();
    vecgen::VectorGenerator generator(model, 42);
    std::vector<vecgen::TestTrace> traces =
        generator.generateAll(graph, tours);

    harness::ReplayOptions replay_options;
    replay_options.numThreads = 2;
    harness::ReplayEngine engine(config, replay_options);
    std::vector<harness::PlayResult> results =
        engine.playAll(traces, rtl::BugSet{});
    for (const harness::PlayResult &result : results) {
        if (result.diverged) {
            std::fprintf(stderr, "smoke: bug-free replay diverged\n");
            return 1;
        }
    }

    telemetry::RegistrySnapshot snap = telemetry::snapshotMetrics();
    if (snap.samples.empty()) {
        std::fprintf(stderr, "smoke: metrics registry is empty\n");
        return 1;
    }
    std::fprintf(stderr, "%s", snap.render().c_str());

    telemetry::shutdownTelemetry();
    std::printf("smoke ok: %zu traces, %zu metrics\n", traces.size(),
                snap.samples.size());
    return 0;
}

/**
 * @file
 * Property sweep across the PP model's configuration matrix: every
 * combination of feature flags must enumerate to a deadlock-free
 * graph with sound edge labels, admit a covering tour, and survive a
 * bug-free vector replay without divergence. This is the "the model
 * is valid at every abstraction point" property behind the
 * enum-scaling ablation.
 */

#include <gtest/gtest.h>

#include "harness/vector_player.hh"
#include "support/strings.hh"
#include "murphi/enumerator.hh"
#include "vecgen/vector_gen.hh"

namespace archval::rtl
{
namespace
{

struct MatrixPoint
{
    unsigned lineWords;
    bool dualIssue;
    bool modelBranches;
    bool modelWbStage;
    bool modelAlignment;
};

std::string
pointName(const MatrixPoint &p)
{
    return formatString("L%u%s%s%s%s", p.lineWords,
                        p.dualIssue ? "_dual" : "",
                        p.modelBranches ? "_br" : "",
                        p.modelWbStage ? "_wb" : "",
                        p.modelAlignment ? "_al" : "");
}

PpConfig
configFor(const MatrixPoint &p)
{
    PpConfig config = PpConfig::smallPreset();
    config.lineWords = p.lineWords;
    config.dualIssue = p.dualIssue;
    config.modelBranches = p.modelBranches;
    config.modelWbStage = p.modelWbStage;
    config.modelAlignment = p.modelAlignment;
    return config;
}

class ConfigMatrix : public ::testing::TestWithParam<MatrixPoint>
{
};

TEST_P(ConfigMatrix, EnumeratesToursAndReplaysClean)
{
    PpConfig config = configFor(GetParam());
    PpFsmModel model(config);

    murphi::EnumOptions options;
    options.maxStates = 400'000;
    murphi::Enumerator enumerator(model, options);
    auto graph = enumerator.runOrThrow();

    ASSERT_GT(graph.numStates(), 50u) << pointName(GetParam());

    // No deadlock: every reachable state has a successor.
    for (graph::StateId s = 0; s < graph.numStates(); ++s) {
        ASSERT_FALSE(graph.outEdges(s).empty())
            << pointName(GetParam()) << " deadlocks in "
            << model.unpack(graph.packedState(s)).toString();
    }

    // Edge labels are sound: re-applying a sample of recorded
    // conditions reproduces the recorded destinations.
    auto codec = model.makeChoiceCodec();
    size_t checked = 0;
    for (graph::StateId s = 0;
         s < graph.numStates() && checked < 2'000; s += 97) {
        for (auto e : graph.outEdges(s)) {
            const auto &edge = graph.edge(e);
            auto t = model.next(graph.packedState(s),
                                codec.decode(edge.choiceCode));
            ASSERT_TRUE(t.has_value()) << pointName(GetParam());
            ASSERT_EQ(t->next, graph.packedState(edge.dst))
                << pointName(GetParam());
            ++checked;
        }
    }

    // A covering tour exists and verifies.
    graph::TourOptions tour_options;
    tour_options.maxInstructionsPerTrace = 5'000;
    graph::TourGenerator tours(graph, tour_options);
    auto traces = tours.run();
    ASSERT_EQ(checkTourCoverage(graph, traces), "")
        << pointName(GetParam());

    // Bug-free replay of a few traces stays clean.
    vecgen::VectorGenerator generator(model, 1234);
    harness::VectorPlayer player(config);
    size_t to_play = std::min<size_t>(traces.size(), 3);
    for (size_t i = 0; i < to_play; ++i) {
        auto trace = generator.generate(graph, traces[i], i);
        auto result = player.play(trace);
        EXPECT_FALSE(result.diverged)
            << pointName(GetParam()) << " trace " << i << ": "
            << result.diff;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Rtl, ConfigMatrix,
    ::testing::Values(
        MatrixPoint{1, false, false, false, false},
        MatrixPoint{2, false, false, false, false},
        MatrixPoint{2, true, false, false, false},
        MatrixPoint{2, false, true, false, false},
        MatrixPoint{2, false, false, true, false},
        MatrixPoint{2, true, true, false, false},
        MatrixPoint{2, true, false, false, true},
        MatrixPoint{2, true, true, true, true},
        MatrixPoint{3, false, false, false, false},
        MatrixPoint{4, false, false, false, false},
        MatrixPoint{4, true, true, false, false}),
    [](const ::testing::TestParamInfo<MatrixPoint> &info) {
        return pointName(info.param);
    });

} // namespace
} // namespace archval::rtl

/**
 * @file
 * Unit tests for the PP ISA: encode/decode round trips, instruction
 * classification (Table 3.1), disassembly.
 */

#include <gtest/gtest.h>

#include "pp/isa.hh"

namespace archval::pp
{
namespace
{

TEST(Isa, RTypeRoundTrip)
{
    uint32_t word = encodeRType(Funct::Add, 3, 1, 2);
    DecodedInstr d = decode(word);
    EXPECT_EQ(d.op, Opcode::Special);
    EXPECT_EQ(d.funct, Funct::Add);
    EXPECT_EQ(d.rd, 3);
    EXPECT_EQ(d.rs, 1);
    EXPECT_EQ(d.rt, 2);
    EXPECT_EQ(encode(d), word);
}

TEST(Isa, ITypeRoundTripNegativeImm)
{
    uint32_t word = encodeIType(Opcode::Addi, 5, 6, -42);
    DecodedInstr d = decode(word);
    EXPECT_EQ(d.op, Opcode::Addi);
    EXPECT_EQ(d.rt, 5);
    EXPECT_EQ(d.rs, 6);
    EXPECT_EQ(d.imm, -42);
    EXPECT_EQ(encode(d), word);
}

TEST(Isa, ShiftEncodesShamt)
{
    uint32_t word = encodeRType(Funct::Sll, 4, 0, 2, 13);
    DecodedInstr d = decode(word);
    EXPECT_EQ(d.funct, Funct::Sll);
    EXPECT_EQ(d.shamt, 13);
}

TEST(Isa, JumpTargetRoundTrip)
{
    uint32_t word = encodeJump(0x123456);
    DecodedInstr d = decode(word);
    EXPECT_EQ(d.op, Opcode::J);
    EXPECT_EQ(d.target, 0x123456u);
}

TEST(Isa, NopIsSllZero)
{
    DecodedInstr d = decode(encodeNop());
    EXPECT_TRUE(d.isNop());
    EXPECT_EQ(d.cls(), InstrClass::Alu);
}

TEST(Isa, ClassificationMatchesTable31)
{
    EXPECT_EQ(classOfWord(encodeRType(Funct::Add, 1, 2, 3)),
              InstrClass::Alu);
    EXPECT_EQ(classOfWord(encodeIType(Opcode::Ori, 1, 2, 3)),
              InstrClass::Alu);
    EXPECT_EQ(classOfWord(encodeLw(1, 2, 8)), InstrClass::Load);
    EXPECT_EQ(classOfWord(encodeSw(1, 2, 8)), InstrClass::Store);
    EXPECT_EQ(classOfWord(encodeSwitch(9)), InstrClass::Switch);
    EXPECT_EQ(classOfWord(encodeSend(9)), InstrClass::Send);
    EXPECT_EQ(classOfWord(encodeBranch(Opcode::Beq, 1, 2, -4)),
              InstrClass::Branch);
    EXPECT_EQ(classOfWord(encodeJump(0)), InstrClass::Branch);
    EXPECT_EQ(classOfWord(encodeHalt()), InstrClass::Alu);
}

TEST(Isa, ClassNames)
{
    EXPECT_STREQ(instrClassName(InstrClass::Alu), "ALU");
    EXPECT_STREQ(instrClassName(InstrClass::Load), "LD");
    EXPECT_STREQ(instrClassName(InstrClass::Store), "SD");
    EXPECT_STREQ(instrClassName(InstrClass::Switch), "SWITCH");
    EXPECT_STREQ(instrClassName(InstrClass::Send), "SEND");
}

TEST(Isa, SwitchDestinationInRt)
{
    DecodedInstr d = decode(encodeSwitch(17));
    EXPECT_EQ(d.rt, 17);
}

TEST(Isa, SendSourceInRs)
{
    DecodedInstr d = decode(encodeSend(23));
    EXPECT_EQ(d.rs, 23);
}

TEST(Isa, ToStringSamples)
{
    EXPECT_EQ(decode(encodeRType(Funct::Add, 3, 1, 2)).toString(),
              "add r3, r1, r2");
    EXPECT_EQ(decode(encodeLw(4, 5, -8)).toString(), "lw r4, -8(r5)");
    EXPECT_EQ(decode(encodeSwitch(2)).toString(), "switch r2");
    EXPECT_EQ(decode(encodeSend(7)).toString(), "send r7");
    EXPECT_EQ(decode(encodeNop()).toString(), "nop");
    EXPECT_EQ(decode(encodeHalt()).toString(), "halt");
}

TEST(Isa, RegisterFieldsMasked)
{
    uint32_t word = encodeRType(Funct::Add, 35, 33, 34);
    DecodedInstr d = decode(word);
    EXPECT_EQ(d.rd, 3);
    EXPECT_EQ(d.rs, 1);
    EXPECT_EQ(d.rt, 2);
}

class AllFunctsFixture : public ::testing::TestWithParam<Funct>
{
};

TEST_P(AllFunctsFixture, RoundTrips)
{
    uint32_t word = encodeRType(GetParam(), 1, 2, 3, 4);
    DecodedInstr d = decode(word);
    EXPECT_EQ(d.funct, GetParam());
    EXPECT_EQ(encode(d), word);
}

INSTANTIATE_TEST_SUITE_P(Isa, AllFunctsFixture,
                         ::testing::Values(Funct::Sll, Funct::Srl,
                                           Funct::Sra, Funct::Add,
                                           Funct::Sub, Funct::And,
                                           Funct::Or, Funct::Xor,
                                           Funct::Slt));

class AllOpcodesFixture : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(AllOpcodesFixture, RoundTrips)
{
    uint32_t word = encodeIType(GetParam(), 7, 8, 99);
    DecodedInstr d = decode(word);
    EXPECT_EQ(d.op, GetParam());
    EXPECT_EQ(encode(d), word);
}

INSTANTIATE_TEST_SUITE_P(Isa, AllOpcodesFixture,
                         ::testing::Values(Opcode::Addi, Opcode::Slti,
                                           Opcode::Andi, Opcode::Ori,
                                           Opcode::Xori, Opcode::Lui,
                                           Opcode::Lw, Opcode::Sw,
                                           Opcode::Beq, Opcode::Bne,
                                           Opcode::Switch,
                                           Opcode::Send));

} // namespace
} // namespace archval::pp

/**
 * @file
 * End-to-end tests of realistic annotated-Verilog controllers
 * through the full generic pipeline: parse -> elaborate -> translate
 * -> enumerate -> tour. Each design is the kind of control/datapath-
 * separable hardware Section 4 says the method generalizes to.
 */

#include <gtest/gtest.h>

#include "core/validation_flow.hh"
#include "hdl/translate.hh"
#include "murphi/enumerator.hh"

namespace archval::hdl
{
namespace
{

/** Two-floor elevator with door timer and request latching. */
const char *elevator = R"(
module elevator(clk, req0, req1);
  input clk;
  input req0;
  input req1;
  reg floor;        // vfsm state floor reset 0
  reg [1:0] mode;   // vfsm state mode reset 0  (0=idle,1=move,2=door)
  reg [1:0] timer;  // vfsm state timer reset 0
  reg pend0;        // vfsm state pend0 reset 0
  reg pend1;        // vfsm state pend1 reset 0

  wire want_here;
  wire want_there;
  assign want_here = (floor == 1'b0 && pend0) ||
                     (floor == 1'b1 && pend1);
  assign want_there = (floor == 1'b0 && pend1) ||
                      (floor == 1'b1 && pend0);

  always @(posedge clk) begin
    // Latch requests whenever they pulse.
    if (req0) pend0 <= 1'b1;
    if (req1) pend1 <= 1'b1;

    case (mode)
      2'd0: begin                 // idle
        if (want_here) begin
          mode <= 2'd2;           // open the door here
          timer <= 2'd0;
        end else if (want_there)
          mode <= 2'd1;           // start moving
      end
      2'd1: begin                 // moving (one cycle per floor)
        floor <= !floor;
        mode <= 2'd2;
        timer <= 2'd0;
      end
      2'd2: begin                 // door open, 2-cycle dwell
        if (timer == 2'd1) begin
          if (floor == 1'b0) pend0 <= 1'b0;
          else pend1 <= 1'b0;
          mode <= 2'd0;
        end else
          timer <= timer + 2'd1;
      end
      default: mode <= 2'd0;
    endcase
  end
endmodule
)";

TEST(HdlDesigns, ElevatorFullPipeline)
{
    auto result = translateSource(elevator, "elevator");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const auto &model = *result.value().model;
    EXPECT_EQ(model.stateVars().size(), 5u);
    EXPECT_EQ(model.choiceVars().size(), 2u);

    core::ModelExploration exploration = core::exploreModel(model);
    EXPECT_GT(exploration.enumStats.numStates, 10u);
    EXPECT_LT(exploration.enumStats.numStates, 200u);
    EXPECT_GT(exploration.tourStats.totalEdgeTraversals,
              exploration.enumStats.numEdges / 2);
}

TEST(HdlDesigns, ElevatorNeverOpensWithoutRequest)
{
    // Safety property over the full reachable space: the door only
    // opens (mode 2) when some request is pending or being served.
    auto result = translateSource(elevator, "elevator");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const auto &model = *result.value().model;
    fsm::StateLayout layout(model.stateVars());

    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    size_t mode_idx = layout.indexOf("mode");
    size_t pend0_idx = layout.indexOf("pend0");
    size_t pend1_idx = layout.indexOf("pend1");
    for (graph::StateId s = 0; s < graph.numStates(); ++s) {
        const BitVec &packed = graph.packedState(s);
        if (layout.get(packed, mode_idx) == 2) {
            EXPECT_TRUE(layout.get(packed, pend0_idx) ||
                        layout.get(packed, pend1_idx))
                << "door open with no request in state " << s;
        }
    }
}

/** Credit-based flow-control sender: a classic protocol FSM. */
const char *creditSender = R"(
module credit_sender(clk, want_send, credit_return);
  input clk;
  input want_send;
  input credit_return;
  parameter MAX = 3;
  reg [1:0] credits;  // vfsm state credits reset 3
  wire can_send;
  assign can_send = credits != 2'd0;  // vfsm instr sent
  wire sent;
  assign sent = want_send && can_send;

  always @(posedge clk) begin
    if (sent && !credit_return)
      credits <= credits - 2'd1;
    else if (!sent && credit_return && credits != MAX)
      credits <= credits + 2'd1;
  end
endmodule
)";

TEST(HdlDesigns, CreditSenderNeverOverflowsOrUnderflows)
{
    auto result = translateSource(creditSender, "credit_sender");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const auto &model = *result.value().model;

    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    // credits stays in [0, MAX]: exactly 4 reachable states.
    EXPECT_EQ(graph.numStates(), 4u);

    graph::TourGenerator tours(graph);
    auto traces = tours.run();
    EXPECT_EQ(checkTourCoverage(graph, traces), "");
}

/** A controller split across vfsm off/on regions: diagnostics are
 *  excluded from translation exactly as the paper describes. */
TEST(HdlDesigns, DiagnosticLogicExcluded)
{
    auto result = translateSource(R"(
        module m(clk, go);
          input clk;
          input go;
          reg [1:0] state;   // vfsm state state
          wire active;
          assign active = state != 2'd0;
          // vfsm off
          wire debug_mirror;
          assign debug_mirror = active;
          // vfsm on
          always @(posedge clk) begin
            if (go) state <= state + 2'd1;
          end
        endmodule
    )", "m");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const auto &model = *result.value().model;
    // The mirror wire is outside the translated region: evaluating
    // it must fail while 'active' works.
    BitVec reset = model.resetState();
    EXPECT_EQ(model.evalNet("active", reset, {0}), 0u);

    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    EXPECT_EQ(graph.numStates(), 4u);
}

/** Three-deep hierarchy with parameter overrides at each level. */
TEST(HdlDesigns, DeepHierarchyElaborates)
{
    auto result = translateSource(R"(
        module leaf(clk, tick);
          input clk;
          input tick;
          parameter W = 2;
          reg [W-1:0] count;  // vfsm state count
          always @(posedge clk) if (tick) count <= count + 1;
        endmodule
        module mid(clk, tick);
          input clk;
          input tick;
          parameter W = 2;
          leaf #(.W(W)) inner (.clk(clk), .tick(tick));
        endmodule
        module top(clk, tick);
          input clk;
          input tick;
          mid #(.W(3)) a (.clk(clk), .tick(tick));
          mid b (.clk(clk), .tick(tick));
        endmodule
    )", "top");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const auto &model = *result.value().model;
    // a.inner.count is 3 bits, b.inner.count is 2 bits.
    ASSERT_EQ(model.stateVars().size(), 2u);
    size_t total_bits = model.stateBits();
    EXPECT_EQ(total_bits, 5u);

    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    // Both counters tick together: reachable = lcm-cycle of 8 and 4.
    EXPECT_EQ(graph.numStates(), 8u);
}

TEST(HdlDesigns, InstrAnnotationDrivesTourAccounting)
{
    auto result = translateSource(creditSender, "credit_sender");
    ASSERT_TRUE(result.ok()) << result.errorMessage();
    const auto &model = *result.value().model;

    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    // Some edges carry the "sent" instruction marker.
    EXPECT_GT(graph.totalEdgeInstructions(), 0u);
    EXPECT_LT(graph.totalEdgeInstructions(), graph.numEdges());
}

} // namespace
} // namespace archval::hdl

/**
 * @file
 * Unit tests for the shared PP control logic: stall machine, refill
 * FSMs, critical-word-first restart, split stores, fill-before-spill,
 * external stalls, memory-port arbitration, and the fix-up cycle.
 */

#include <gtest/gtest.h>

#include "rtl/pp_control.hh"
#include "rtl/pp_fsm_model.hh"

namespace archval::rtl
{
namespace
{

using pp::InstrClass;

/** Convenience driver: named per-cycle inputs, accumulated state. */
class ControlDriver
{
  public:
    explicit ControlDriver(const PpConfig &config)
        : control_(config), state_(PpControl::resetState())
    {
    }

    /** Per-cycle stimulus with hit/ready defaults. */
    struct Cycle
    {
        InstrClass fetch = InstrClass::Alu;
        uint32_t dual = 0;
        uint32_t ihit = 1;
        uint32_t dhit = 1;
        uint32_t dirty = 0;
        uint32_t sameLine = 0;
        uint32_t inboxReady = 1;
        uint32_t outboxReady = 1;
        uint32_t memReply = 0;
        uint32_t branchTaken = 0;
        uint32_t targetAlign = 0;
    };

    PpOutputs
    step(const Cycle &cycle)
    {
        SignalInputs inputs;
        inputs.set(PpChoiceVar::FetchClass,
                   static_cast<uint32_t>(cycle.fetch) - 1);
        inputs.set(PpChoiceVar::Dual, cycle.dual);
        inputs.set(PpChoiceVar::IHit, cycle.ihit);
        inputs.set(PpChoiceVar::DHit, cycle.dhit);
        inputs.set(PpChoiceVar::Dirty, cycle.dirty);
        inputs.set(PpChoiceVar::SameLine, cycle.sameLine);
        inputs.set(PpChoiceVar::InboxReady, cycle.inboxReady);
        inputs.set(PpChoiceVar::OutboxReady, cycle.outboxReady);
        inputs.set(PpChoiceVar::MemReply, cycle.memReply);
        inputs.set(PpChoiceVar::BranchTaken, cycle.branchTaken);
        inputs.set(PpChoiceVar::TargetAlign, cycle.targetAlign);
        PpOutputs outputs;
        state_ = control_.step(state_, inputs, outputs);
        return outputs;
    }

    /** Fetch @p cls and run enough hit cycles to park it in MEM. */
    void
    bringToMem(InstrClass cls)
    {
        step({.fetch = cls});
        step({});
        step({});
    }

    const PpControlState &state() const { return state_; }

  private:
    PpControl control_;
    PpControlState state_;
};

PpConfig
testConfig()
{
    PpConfig config = PpConfig::smallPreset();
    config.lineWords = 2;
    return config;
}

TEST(PpControl, ResetStateIsQuiescent)
{
    PpControlState state = PpControl::resetState();
    EXPECT_EQ(state.rdClass, InstrClass::None);
    EXPECT_EQ(state.irefill, IRefill::Idle);
    EXPECT_EQ(state.drefill, DRefill::Idle);
    EXPECT_EQ(state.memPort, MemPort::Free);
    EXPECT_TRUE(state.exDone);
    EXPECT_TRUE(state.memDone);
}

TEST(PpControl, InstructionFlowsThroughPipe)
{
    ControlDriver driver(testConfig());
    auto out = driver.step({.fetch = InstrClass::Load});
    EXPECT_TRUE(out.fetch);
    EXPECT_EQ(out.fetchCount, 1u);
    EXPECT_EQ(driver.state().rdClass, InstrClass::Load);

    driver.step({});
    EXPECT_EQ(driver.state().exClass, InstrClass::Load);
    driver.step({});
    EXPECT_EQ(driver.state().memClass, InstrClass::Load);
    EXPECT_FALSE(driver.state().memDone);
}

TEST(PpControl, LoadHitCompletesWithoutStall)
{
    ControlDriver driver(testConfig());
    driver.bringToMem(InstrClass::Load);
    auto out = driver.step({.dhit = 1});
    EXPECT_TRUE(out.probe);
    EXPECT_TRUE(out.loadHit);
    EXPECT_FALSE(out.dStall);
    EXPECT_TRUE(out.advance);
}

TEST(PpControl, LoadMissStallsUntilCriticalWord)
{
    ControlDriver driver(testConfig());
    driver.bringToMem(InstrClass::Load);

    // Miss cycle: refill request, pipe frozen.
    auto out = driver.step({.dhit = 0});
    EXPECT_TRUE(out.dMissStart);
    EXPECT_TRUE(out.dStall);
    EXPECT_TRUE(out.frozen);
    EXPECT_EQ(driver.state().drefill, DRefill::Req);

    // Grant cycle: port acquired, still frozen.
    out = driver.step({});
    EXPECT_EQ(driver.state().drefill, DRefill::CritWait);
    EXPECT_EQ(driver.state().memPort, MemPort::BusyD);
    EXPECT_TRUE(out.frozen);

    // No reply yet: still frozen.
    out = driver.step({.memReply = 0});
    EXPECT_TRUE(out.frozen);

    // Critical word: restart same cycle (critical-word-first).
    out = driver.step({.memReply = 1});
    EXPECT_TRUE(out.critWord);
    EXPECT_FALSE(out.frozen);
    EXPECT_TRUE(out.advance);
    EXPECT_EQ(driver.state().drefill, DRefill::Fill);

    // Remaining beat completes the refill in the background.
    out = driver.step({.memReply = 1});
    EXPECT_TRUE(out.dRefillDone);
    EXPECT_EQ(driver.state().drefill, DRefill::Idle);
    EXPECT_EQ(driver.state().memPort, MemPort::Free);
}

TEST(PpControl, SingleWordLineSkipsFillState)
{
    PpConfig config = testConfig();
    config.lineWords = 1;
    ControlDriver driver(config);
    driver.bringToMem(InstrClass::Load);
    driver.step({.dhit = 0});
    driver.step({});
    auto out = driver.step({.memReply = 1});
    EXPECT_TRUE(out.critWord);
    EXPECT_TRUE(out.dRefillDone);
    EXPECT_EQ(driver.state().drefill, DRefill::Idle);
}

TEST(PpControl, FollowingMemOpWaitsForRefillCompletion)
{
    // Bug #5's setup: a load misses, the following load reaches MEM
    // while the fill is still in progress and must wait.
    ControlDriver driver(testConfig());
    driver.step({.fetch = InstrClass::Load});
    driver.step({.fetch = InstrClass::Load});
    driver.step({});
    // First load probes and misses.
    driver.step({.dhit = 0});
    driver.step({}); // grant
    auto out = driver.step({.memReply = 1}); // critical word, restart
    EXPECT_TRUE(out.critWord);
    // Pipe advanced: second load is now in MEM while fill continues.
    EXPECT_EQ(driver.state().memClass, InstrClass::Load);
    EXPECT_FALSE(driver.state().memDone);
    EXPECT_EQ(driver.state().drefill, DRefill::Fill);
    out = driver.step({.memReply = 0});
    EXPECT_TRUE(out.dStall); // waiting on the busy cache
    out = driver.step({.memReply = 1}); // fill done
    EXPECT_EQ(driver.state().drefill, DRefill::Idle);
    // Next cycle the second load probes and hits.
    out = driver.step({.dhit = 1});
    EXPECT_TRUE(out.loadHit);
}

TEST(PpControl, SplitStoreProbesThenCommitsInBackground)
{
    ControlDriver driver(testConfig());
    driver.bringToMem(InstrClass::Store);
    auto out = driver.step({.dhit = 1});
    EXPECT_TRUE(out.storeProbe);
    EXPECT_FALSE(out.dStall);
    EXPECT_TRUE(driver.state().storePending);
    // No memory op follows: the data write drains next cycle.
    out = driver.step({});
    EXPECT_TRUE(out.storeCommit);
    EXPECT_FALSE(driver.state().storePending);
}

TEST(PpControl, LoadToOtherLineBypassesPendingStore)
{
    ControlDriver driver(testConfig());
    driver.step({.fetch = InstrClass::Store});
    driver.step({.fetch = InstrClass::Load});
    driver.step({});
    driver.step({.dhit = 1}); // store probes; storePending set
    EXPECT_TRUE(driver.state().storePending);
    // The load probes next; different line: no conflict.
    auto out = driver.step({.dhit = 1, .sameLine = 0});
    EXPECT_TRUE(out.loadHit);
    EXPECT_FALSE(out.conflict);
    // Store still pending (the load used the port).
    EXPECT_TRUE(driver.state().storePending);
    out = driver.step({});
    EXPECT_TRUE(out.storeCommit);
}

TEST(PpControl, LoadToSameLineTakesConflictStall)
{
    ControlDriver driver(testConfig());
    driver.step({.fetch = InstrClass::Store});
    driver.step({.fetch = InstrClass::Load});
    driver.step({});
    driver.step({.dhit = 1}); // store probes
    // Load to the same line: conflict stall drains the store first.
    auto out = driver.step({.sameLine = 1});
    EXPECT_TRUE(out.conflict);
    EXPECT_TRUE(out.dStall);
    EXPECT_TRUE(out.storeCommit);
    EXPECT_FALSE(driver.state().storePending);
    // Retry cycle: the load now probes and hits.
    out = driver.step({.dhit = 1});
    EXPECT_TRUE(out.loadHit);
    EXPECT_FALSE(out.dStall);
}

TEST(PpControl, BackToBackStoresConflict)
{
    ControlDriver driver(testConfig());
    driver.step({.fetch = InstrClass::Store});
    driver.step({.fetch = InstrClass::Store});
    driver.step({});
    driver.step({.dhit = 1}); // first store probes
    auto out = driver.step({}); // second store: conflict, no SameLine read
    EXPECT_TRUE(out.conflict);
    out = driver.step({.dhit = 1});
    EXPECT_TRUE(out.storeProbe);
}

TEST(PpControl, SwitchStallsUntilInboxReady)
{
    ControlDriver driver(testConfig());
    driver.step({.fetch = InstrClass::Switch});
    driver.step({}); // switch moves to EX
    EXPECT_EQ(driver.state().exClass, InstrClass::Switch);
    EXPECT_FALSE(driver.state().exDone);

    auto out = driver.step({.inboxReady = 0});
    EXPECT_TRUE(out.extStall);
    EXPECT_TRUE(out.frozen);
    out = driver.step({.inboxReady = 0});
    EXPECT_TRUE(out.extStall);
    out = driver.step({.inboxReady = 1});
    EXPECT_TRUE(out.inboxPop);
    EXPECT_FALSE(out.extStall);
    EXPECT_TRUE(out.advance);
}

TEST(PpControl, SendStallsUntilOutboxReady)
{
    ControlDriver driver(testConfig());
    driver.step({.fetch = InstrClass::Send});
    driver.step({});
    auto out = driver.step({.outboxReady = 0});
    EXPECT_TRUE(out.extStall);
    out = driver.step({.outboxReady = 1});
    EXPECT_TRUE(out.outboxPush);
    EXPECT_FALSE(out.extStall);
}

TEST(PpControl, IMissRefillsAndFixesUp)
{
    ControlDriver driver(testConfig());
    auto out = driver.step({.ihit = 0});
    EXPECT_TRUE(out.iMissStart);
    EXPECT_TRUE(out.iStall);
    EXPECT_FALSE(out.frozen); // I-stall inserts bubbles, no freeze
    EXPECT_EQ(driver.state().irefill, IRefill::Req);
    EXPECT_EQ(driver.state().rdClass, InstrClass::None);

    out = driver.step({}); // grant
    EXPECT_EQ(driver.state().irefill, IRefill::Fill);
    EXPECT_EQ(driver.state().memPort, MemPort::BusyI);

    out = driver.step({.memReply = 1});
    out = driver.step({.memReply = 1}); // line of 2 words done
    EXPECT_EQ(driver.state().irefill, IRefill::Fixup);
    EXPECT_EQ(driver.state().memPort, MemPort::Free);
    EXPECT_TRUE(out.iRefillDone);

    out = driver.step({});
    EXPECT_TRUE(out.fixup);
    EXPECT_EQ(driver.state().irefill, IRefill::Idle);

    out = driver.step({.fetch = InstrClass::Alu});
    EXPECT_TRUE(out.fetch);
}

TEST(PpControl, FixupWaitsWhileFrozen)
{
    // Bug #4's mechanism: the fix-up cycle must be qualified on
    // MemStall. Here a SWITCH external stall freezes the pipe during
    // Fixup; the correct control holds Fixup until the stall clears.
    ControlDriver driver(testConfig());
    driver.step({.fetch = InstrClass::Switch});
    // I-miss while switch moves toward EX.
    driver.step({.ihit = 0});
    EXPECT_EQ(driver.state().exClass, InstrClass::Switch);
    driver.step({.inboxReady = 0}); // grant + ext stall begins
    EXPECT_EQ(driver.state().irefill, IRefill::Fill);
    driver.step({.inboxReady = 0, .memReply = 1});
    auto out = driver.step({.inboxReady = 0, .memReply = 1});
    EXPECT_EQ(driver.state().irefill, IRefill::Fixup);
    // Frozen by the external stall: fixup must hold.
    out = driver.step({.inboxReady = 0});
    EXPECT_TRUE(out.frozen);
    EXPECT_FALSE(out.fixup);
    EXPECT_EQ(driver.state().irefill, IRefill::Fixup);
    // Stall clears: fixup completes.
    out = driver.step({.inboxReady = 1});
    EXPECT_TRUE(out.fixup);
    EXPECT_EQ(driver.state().irefill, IRefill::Idle);
}

TEST(PpControl, DirtyMissSpillsThenWritesBack)
{
    ControlDriver driver(testConfig());
    driver.bringToMem(InstrClass::Load);
    auto out = driver.step({.dhit = 0, .dirty = 1});
    EXPECT_TRUE(out.spillCopy);
    EXPECT_EQ(driver.state().spill, Spill::Hold);
    EXPECT_EQ(driver.state().drefill, DRefill::Req);

    driver.step({}); // grant to D
    driver.step({.memReply = 1}); // critical word
    out = driver.step({.memReply = 1}); // fill done
    EXPECT_EQ(driver.state().drefill, DRefill::Idle);
    EXPECT_EQ(driver.state().spill, Spill::Hold);

    out = driver.step({}); // spill moves to WbReq (fill before spill)
    EXPECT_EQ(driver.state().spill, Spill::WbReq);
    out = driver.step({}); // granted the port
    EXPECT_EQ(driver.state().spill, Spill::Wb);
    EXPECT_EQ(driver.state().memPort, MemPort::BusyWb);
    driver.step({.memReply = 1});
    out = driver.step({.memReply = 1});
    EXPECT_TRUE(out.wbDone);
    EXPECT_EQ(driver.state().spill, Spill::Idle);
    EXPECT_EQ(driver.state().memPort, MemPort::Free);
}

TEST(PpControl, SecondDirtyMissBlocksOnSpillBuffer)
{
    ControlDriver driver(testConfig());
    // First dirty miss.
    driver.step({.fetch = InstrClass::Load});
    driver.step({.fetch = InstrClass::Load});
    driver.step({});
    driver.step({.dhit = 0, .dirty = 1});
    driver.step({});
    driver.step({.memReply = 1}); // crit word; second load advances
    driver.step({.memReply = 1}); // fill done; spill still Hold
    EXPECT_EQ(driver.state().spill, Spill::Hold);
    // Second load probes dirty-miss while the spill buffer is full.
    auto out = driver.step({.dhit = 0, .dirty = 1});
    EXPECT_TRUE(out.spillBlocked);
    EXPECT_TRUE(out.dStall);
    EXPECT_EQ(driver.state().drefill, DRefill::Idle);
}

TEST(PpControl, SimultaneousMissesShareThePortSerially)
{
    // Simultaneous I and D cache misses (bug #2's setup): there is
    // only one path to the memory controller, so the D-miss must
    // wait while the I-refill owns the port — the mutual "interlock"
    // the paper credits for keeping the state space manageable.
    ControlDriver driver(testConfig());
    driver.step({.fetch = InstrClass::Load}); // rd=LD
    driver.step({.ihit = 0}); // fetch misses; LD moves to EX
    EXPECT_EQ(driver.state().irefill, IRefill::Req);
    driver.step({}); // I granted; LD moves to MEM
    EXPECT_EQ(driver.state().memPort, MemPort::BusyI);
    EXPECT_EQ(driver.state().memClass, InstrClass::Load);

    // The load probes and misses while the I-refill holds the port.
    auto out = driver.step({.dhit = 0});
    EXPECT_TRUE(out.dMissStart);
    EXPECT_EQ(driver.state().drefill, DRefill::Req);
    EXPECT_EQ(driver.state().memPort, MemPort::BusyI);

    // I-refill streams its two words; the D request keeps waiting.
    driver.step({.memReply = 1});
    out = driver.step({.memReply = 1});
    EXPECT_TRUE(out.iRefillDone);
    EXPECT_EQ(driver.state().irefill, IRefill::Fixup);
    EXPECT_EQ(driver.state().drefill, DRefill::Req);

    // Port free: the D request wins the grant; the I fix-up cycle
    // must *hold* because the pipe is frozen on the D-stall (the
    // very qualification whose absence was bug #4).
    out = driver.step({});
    EXPECT_EQ(driver.state().memPort, MemPort::BusyD);
    EXPECT_EQ(driver.state().drefill, DRefill::CritWait);
    EXPECT_FALSE(out.fixup);
    EXPECT_EQ(driver.state().irefill, IRefill::Fixup);

    // Critical word restarts the pipe; the fix-up completes in the
    // same unfrozen cycle.
    out = driver.step({.memReply = 1});
    EXPECT_TRUE(out.critWord);
    EXPECT_TRUE(out.fixup);
    EXPECT_EQ(driver.state().irefill, IRefill::Idle);
    out = driver.step({.memReply = 1});
    EXPECT_TRUE(out.dRefillDone);
}

TEST(PpControl, DualIssueCountsTwoInstructions)
{
    PpConfig config = testConfig();
    config.dualIssue = true;
    ControlDriver driver(config);
    auto out = driver.step({.fetch = InstrClass::Alu, .dual = 1});
    EXPECT_EQ(out.fetchCount, 2u);
    out = driver.step({.fetch = InstrClass::Alu, .dual = 0});
    EXPECT_EQ(out.fetchCount, 1u);
}

TEST(PpControl, TakenBranchSquashesYoungerStages)
{
    PpConfig config = testConfig();
    config.modelBranches = true;
    ControlDriver driver(config);
    driver.step({.fetch = InstrClass::Branch});
    driver.step({.fetch = InstrClass::Load}); // delay-slot fetch
    EXPECT_EQ(driver.state().exClass, InstrClass::Branch);
    auto out = driver.step({.branchTaken = 1});
    EXPECT_TRUE(out.branchTaken);
    EXPECT_FALSE(out.fetch); // redirect cycle
    // The load that was in RD is squashed on its way to EX.
    EXPECT_EQ(driver.state().exClass, InstrClass::None);
    EXPECT_EQ(driver.state().rdClass, InstrClass::None);
}

TEST(PpControl, NotTakenBranchFallsThrough)
{
    PpConfig config = testConfig();
    config.modelBranches = true;
    ControlDriver driver(config);
    driver.step({.fetch = InstrClass::Branch});
    driver.step({.fetch = InstrClass::Load});
    auto out = driver.step({.fetch = InstrClass::Alu,
                            .branchTaken = 0});
    EXPECT_FALSE(out.branchTaken);
    EXPECT_TRUE(out.fetch);
    EXPECT_EQ(driver.state().exClass, InstrClass::Load);
}

TEST(PpControl, WbStageTracksClasses)
{
    PpConfig config = testConfig();
    config.modelWbStage = true;
    ControlDriver driver(config);
    driver.step({.fetch = InstrClass::Load});
    driver.step({});
    driver.step({});
    driver.step({.dhit = 1}); // load completes in MEM, moves to WB
    EXPECT_EQ(driver.state().wbClass, InstrClass::Load);
    driver.step({});
    EXPECT_EQ(driver.state().wbClass, InstrClass::Alu);
}

TEST(PpControl, WbClassStaysNoneWhenDisabled)
{
    ControlDriver driver(testConfig());
    driver.step({.fetch = InstrClass::Load});
    driver.step({});
    driver.step({});
    driver.step({.dhit = 1});
    EXPECT_EQ(driver.state().wbClass, InstrClass::None);
}

TEST(PpControl, AlignmentAdvancesWithFetch)
{
    PpConfig config = testConfig();
    config.modelAlignment = true;
    config.lineWords = 4;
    ControlDriver driver(config);
    driver.step({});
    EXPECT_EQ(driver.state().fetchAlign, 1u);
    driver.step({});
    driver.step({});
    driver.step({});
    EXPECT_EQ(driver.state().fetchAlign, 0u); // wrapped
}

TEST(PpControl, DualIssueBlockedAtLineEnd)
{
    PpConfig config = testConfig();
    config.modelAlignment = true;
    config.dualIssue = true;
    config.lineWords = 2;
    ControlDriver driver(config);
    // align 0 -> pairing allowed.
    auto out = driver.step({.dual = 1});
    EXPECT_EQ(out.fetchCount, 2u);
    EXPECT_EQ(driver.state().fetchAlign, 0u); // 0+2 mod 2
    // Single fetch moves to align 1 (line end): pairing impossible.
    out = driver.step({.dual = 0});
    EXPECT_EQ(driver.state().fetchAlign, 1u);
    out = driver.step({.dual = 0});
    EXPECT_EQ(out.fetchCount, 1u);
}

TEST(PpControl, TakenBranchSetsTargetAlignment)
{
    PpConfig config = testConfig();
    config.modelBranches = true;
    config.modelAlignment = true;
    config.lineWords = 4;
    ControlDriver driver(config);
    driver.step({.fetch = InstrClass::Branch});
    driver.step({});
    auto out = driver.step({.branchTaken = 1, .targetAlign = 3});
    EXPECT_TRUE(out.branchTaken);
    EXPECT_EQ(driver.state().fetchAlign, 3u);
}

TEST(PpControl, ExtStallDoesNotLoseCompletedMemOp)
{
    // A load hits in MEM while a SEND in EX is still waiting: the
    // pipe freezes but the load's completion must stick.
    ControlDriver driver(testConfig());
    driver.step({.fetch = InstrClass::Send});
    driver.step({.fetch = InstrClass::Load});
    driver.step({.outboxReady = 0}); // send enters EX, stalls; load RD->EX?
    // Pipe frozen: the load is still in RD.
    EXPECT_EQ(driver.state().exClass, InstrClass::Send);
    auto out = driver.step({.outboxReady = 1});
    EXPECT_TRUE(out.outboxPush);
    // Now the load proceeds normally.
    out = driver.step({});
    EXPECT_EQ(driver.state().memClass, InstrClass::Load);
    out = driver.step({.dhit = 1});
    EXPECT_TRUE(out.loadHit);
}

} // namespace
} // namespace archval::rtl

/**
 * @file
 * Additional graph-layer tests: state-graph bookkeeping, summaries,
 * SCC structure of enumerated models, and the postman baseline on a
 * real enumerated graph (not just hand-built ones).
 */

#include <gtest/gtest.h>

#include "graph/postman.hh"
#include "graph/state_graph.hh"
#include "graph/tour.hh"
#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"
#include "support/status.hh"

namespace archval::graph
{
namespace
{

TEST(StateGraph, AddStateAndEdgeBookkeeping)
{
    StateGraph g;
    BitVec a(4), b(4);
    b.setField(0, 4, 9);
    StateId s0 = g.addState(a);
    StateId s1 = g.addState(b);
    EXPECT_EQ(s0, 0u);
    EXPECT_EQ(s1, 1u);
    EXPECT_TRUE(g.statesRetained());
    EXPECT_EQ(g.packedState(1).getField(0, 4), 9u);

    EdgeId e = g.addEdge(s0, s1, 77, 2);
    EXPECT_EQ(g.edge(e).src, s0);
    EXPECT_EQ(g.edge(e).dst, s1);
    EXPECT_EQ(g.edge(e).choiceCode, 77u);
    EXPECT_EQ(g.edge(e).instrCount, 2u);
    EXPECT_EQ(g.outEdges(s0).size(), 1u);
    EXPECT_TRUE(g.outEdges(s1).empty());
    EXPECT_EQ(g.totalEdgeInstructions(), 2u);
    EXPECT_GT(g.memoryBytes(), 0u);
}

TEST(StateGraph, RetentionTrackedByFlagNotContents)
{
    // A zero-bit packed state is still a retained state: retention
    // is decided by which insertion API ran, not by vector width.
    StateGraph g;
    g.addState(BitVec(0));
    EXPECT_TRUE(g.statesRetained());
    EXPECT_EQ(g.packedState(0).numBits(), 0u);

    StateGraph u;
    u.addStateUnretained();
    EXPECT_FALSE(u.statesRetained());

    // An empty graph has nothing contradicting retention.
    StateGraph empty;
    EXPECT_TRUE(empty.statesRetained());
}

TEST(StateGraph, MixedRetentionRejected)
{
    StateGraph g;
    g.addState(BitVec(4));
    EXPECT_THROW(g.addStateUnretained(), FatalError);
    EXPECT_THROW(g.addStatesUnretained(2), FatalError);

    StateGraph u;
    u.addStateUnretained();
    EXPECT_THROW(u.addState(BitVec(4)), FatalError);
    std::vector<BitVec> bulk(1, BitVec(4));
    EXPECT_THROW(u.addStates(std::move(bulk)), FatalError);
}

TEST(StateGraph, BulkInsertionMatchesIncremental)
{
    StateGraph bulk;
    std::vector<BitVec> states;
    for (uint64_t i = 0; i < 4; ++i) {
        BitVec v(4);
        v.setField(0, 4, i);
        states.push_back(v);
    }
    bulk.addStates(std::move(states));
    std::vector<Edge> edges = {{0, 1, 5, 1}, {1, 2, 6, 0},
                               {0, 2, 7, 2}, {2, 3, 8, 0}};
    bulk.addEdges(edges);

    StateGraph one;
    for (uint64_t i = 0; i < 4; ++i) {
        BitVec v(4);
        v.setField(0, 4, i);
        one.addState(v);
    }
    for (const Edge &e : edges)
        one.addEdge(e.src, e.dst, e.choiceCode, e.instrCount);

    ASSERT_EQ(bulk.numStates(), one.numStates());
    ASSERT_EQ(bulk.numEdges(), one.numEdges());
    for (StateId s = 0; s < bulk.numStates(); ++s) {
        EXPECT_EQ(bulk.packedState(s), one.packedState(s));
        EXPECT_EQ(bulk.outEdges(s), one.outEdges(s));
    }
    for (EdgeId e = 0; e < bulk.numEdges(); ++e) {
        EXPECT_EQ(bulk.edge(e).src, one.edge(e).src);
        EXPECT_EQ(bulk.edge(e).dst, one.edge(e).dst);
        EXPECT_EQ(bulk.edge(e).choiceCode, one.edge(e).choiceCode);
        EXPECT_EQ(bulk.edge(e).instrCount, one.edge(e).instrCount);
    }
}

TEST(StateGraph, ParallelEdgesPreserved)
{
    StateGraph g;
    g.addStateUnretained();
    g.addStateUnretained();
    g.addEdge(0, 1, 0, 0);
    g.addEdge(0, 1, 1, 0);
    g.addEdge(0, 1, 2, 0);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.outEdges(0).size(), 3u);
}

TEST(StateGraph, SelfLoopsCount)
{
    StateGraph g;
    g.addStateUnretained();
    g.addEdge(0, 0, 0, 1);
    auto summary = summarize(g);
    EXPECT_EQ(summary.numSccs, 1u);
    EXPECT_EQ(summary.numSinkStates, 0u);
    EXPECT_DOUBLE_EQ(summary.meanOutDegree, 1.0);
}

TEST(StateGraph, SummaryRenderHasRows)
{
    StateGraph g;
    g.addStateUnretained();
    std::string text = renderSummary(summarize(g));
    EXPECT_NE(text.find("states"), std::string::npos);
    EXPECT_NE(text.find("SCCs"), std::string::npos);
}

class EnumeratedGraphFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        rtl::PpConfig config = rtl::PpConfig::smallPreset();
        config.lineWords = 1; // keep the postman solve cheap
        model_ = new rtl::PpFsmModel(config);
        murphi::Enumerator enumerator(*model_);
        graph_ = new StateGraph(enumerator.runOrThrow());
    }

    static void
    TearDownTestSuite()
    {
        delete graph_;
        delete model_;
        graph_ = nullptr;
        model_ = nullptr;
    }

    static rtl::PpFsmModel *model_;
    static StateGraph *graph_;
};

rtl::PpFsmModel *EnumeratedGraphFixture::model_ = nullptr;
StateGraph *EnumeratedGraphFixture::graph_ = nullptr;

TEST_F(EnumeratedGraphFixture, EverythingReachableFromReset)
{
    auto reach = reachableFrom(*graph_, graph_->resetState());
    for (StateId s = 0; s < graph_->numStates(); ++s)
        EXPECT_TRUE(reach[s]) << "state " << s;
}

TEST_F(EnumeratedGraphFixture, ControlGraphIsOneBigScc)
{
    // The PP control always drains back to quiescence, so the
    // enumerated graph collapses into a single strongly-connected
    // component (this is why one unlimited trace suffices).
    auto summary = summarize(*graph_);
    EXPECT_EQ(summary.largestScc, graph_->numStates());
    EXPECT_EQ(summary.numSinkStates, 0u);
}

TEST_F(EnumeratedGraphFixture, PostmanSolvesEnumeratedGraph)
{
    auto result = solveResettablePostman(*graph_);
    auto tour = hierholzerTour(*graph_, result);
    EXPECT_EQ(checkPostmanTour(*graph_, result, tour), "");
    // Lower bound sanity: at least every edge once.
    EXPECT_GE(result.totalTraversals, graph_->numEdges());
}

TEST_F(EnumeratedGraphFixture, PostmanNoWorseThanGreedy)
{
    auto postman = solveResettablePostman(*graph_);
    TourGenerator generator(*graph_);
    auto traces = generator.run();
    ASSERT_EQ(checkTourCoverage(*graph_, traces), "");
    uint64_t greedy_cost = generator.stats().totalEdgeTraversals +
                           (generator.stats().numTraces - 1);
    EXPECT_LE(postman.tourLength, greedy_cost);
}

TEST_F(EnumeratedGraphFixture, TourDeterministicAcrossRuns)
{
    TourGenerator a(*graph_), b(*graph_);
    auto ta = a.run();
    auto tb = b.run();
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i)
        EXPECT_EQ(ta[i].edges, tb[i].edges) << "trace " << i;
}

TEST_F(EnumeratedGraphFixture, LimitMonotonicity)
{
    // Tighter limits never reduce the trace count.
    uint64_t previous = 0;
    for (uint64_t limit : {0ull, 50'000ull, 5'000ull, 500ull}) {
        TourOptions options;
        options.maxInstructionsPerTrace = limit;
        TourGenerator generator(*graph_, options);
        auto traces = generator.run();
        ASSERT_EQ(checkTourCoverage(*graph_, traces), "");
        EXPECT_GE(traces.size(), previous);
        previous = traces.size();
    }
}

} // namespace
} // namespace archval::graph

/**
 * @file
 * Tests for trace-file serialization: round trips, error handling,
 * and replaying a reloaded trace set through the player.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "harness/vector_player.hh"
#include "murphi/enumerator.hh"
#include "vecgen/trace_io.hh"

namespace archval::vecgen
{
namespace
{

class TraceIoFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        config_ = new rtl::PpConfig(rtl::PpConfig::smallPreset());
        model_ = new rtl::PpFsmModel(*config_);
        murphi::Enumerator enumerator(*model_);
        graph_ = new graph::StateGraph(enumerator.runOrThrow());
        graph::TourOptions options;
        options.maxInstructionsPerTrace = 500;
        graph::TourGenerator tours(*graph_, options);
        auto tour_traces = tours.run();
        VectorGenerator generator(*model_, 3);
        traces_ = new std::vector<TestTrace>(
            generator.generateAll(*graph_, tour_traces));
    }

    static void
    TearDownTestSuite()
    {
        delete traces_;
        delete graph_;
        delete model_;
        delete config_;
        traces_ = nullptr;
        graph_ = nullptr;
        model_ = nullptr;
        config_ = nullptr;
    }

    static rtl::PpConfig *config_;
    static rtl::PpFsmModel *model_;
    static graph::StateGraph *graph_;
    static std::vector<TestTrace> *traces_;
};

rtl::PpConfig *TraceIoFixture::config_ = nullptr;
rtl::PpFsmModel *TraceIoFixture::model_ = nullptr;
graph::StateGraph *TraceIoFixture::graph_ = nullptr;
std::vector<TestTrace> *TraceIoFixture::traces_ = nullptr;

bool
tracesEqual(const TestTrace &a, const TestTrace &b)
{
    return a.traceIndex == b.traceIndex &&
           a.instructions == b.instructions && a.cycles == b.cycles &&
           a.fetchStream == b.fetchStream &&
           a.retiredStream == b.retiredStream && a.inbox == b.inbox;
}

TEST_F(TraceIoFixture, SerializeRoundTrip)
{
    ASSERT_FALSE(traces_->empty());
    for (size_t i = 0; i < std::min<size_t>(traces_->size(), 5); ++i) {
        std::string text = serializeTrace((*traces_)[i]);
        auto parsed = deserializeTrace(text);
        ASSERT_TRUE(parsed.ok()) << parsed.errorMessage();
        EXPECT_TRUE(tracesEqual((*traces_)[i], parsed.value()))
            << "trace " << i;
    }
}

TEST_F(TraceIoFixture, FileRoundTrip)
{
    std::string path = std::filesystem::temp_directory_path() /
                       "archval_trace_test.avt";
    auto write = writeTraceFile((*traces_)[0], path);
    ASSERT_TRUE(write.ok()) << write.errorMessage();
    auto read = readTraceFile(path);
    ASSERT_TRUE(read.ok()) << read.errorMessage();
    EXPECT_TRUE(tracesEqual((*traces_)[0], read.value()));
    std::remove(path.c_str());
}

TEST_F(TraceIoFixture, TraceSetRoundTripAndReplay)
{
    std::string dir = std::filesystem::temp_directory_path() /
                      "archval_trace_set_test";
    std::filesystem::remove_all(dir);

    std::vector<TestTrace> subset(
        traces_->begin(),
        traces_->begin() + std::min<size_t>(traces_->size(), 8));
    auto written = writeTraceSet(subset, dir);
    ASSERT_TRUE(written.ok()) << written.errorMessage();
    EXPECT_EQ(written.value(), subset.size());

    auto reloaded = readTraceSet(dir);
    ASSERT_TRUE(reloaded.ok()) << reloaded.errorMessage();
    ASSERT_EQ(reloaded.value().size(), subset.size());

    // Replaying a reloaded trace must behave identically: clean on
    // the healthy design.
    harness::VectorPlayer player(*config_);
    for (const auto &trace : reloaded.value()) {
        auto result = player.play(trace);
        EXPECT_FALSE(result.diverged) << result.diff;
    }
    std::filesystem::remove_all(dir);
}

TEST_F(TraceIoFixture, FileNameConvention)
{
    EXPECT_EQ(traceFileName(0), "trace_000000.avt");
    EXPECT_EQ(traceFileName(42), "trace_000042.avt");
}

TEST(TraceIo, RejectsBadMagic)
{
    EXPECT_FALSE(deserializeTrace("not a trace\n").ok());
}

TEST(TraceIo, RejectsTruncatedInput)
{
    TestTrace trace;
    trace.cycles.push_back(rtl::ForcedSignals{});
    trace.fetchStream.push_back(0x1234);
    trace.retiredStream.push_back(0x1234);
    std::string text = serializeTrace(trace);
    for (size_t cut : {text.size() / 4, text.size() / 2,
                       text.size() - 5}) {
        EXPECT_FALSE(deserializeTrace(text.substr(0, cut)).ok())
            << "cut at " << cut;
    }
}

TEST(TraceIo, ReadMissingFileFails)
{
    EXPECT_FALSE(readTraceFile("/nonexistent/path.avt").ok());
}

} // namespace
} // namespace archval::vecgen

/**
 * @file
 * Unit tests for the support library: bit vectors, RNG, strings,
 * stats, status types.
 */

#include <gtest/gtest.h>

#include <set>

#include "support/bitvec.hh"
#include "support/json.hh"
#include "support/memusage.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "support/status.hh"
#include "support/strings.hh"

namespace archval
{
namespace
{

TEST(BitVec, DefaultIsEmpty)
{
    BitVec v;
    EXPECT_EQ(v.numBits(), 0u);
}

TEST(BitVec, SetAndGetSingleBits)
{
    BitVec v(130);
    EXPECT_FALSE(v.get(0));
    EXPECT_FALSE(v.get(129));
    v.set(0, true);
    v.set(64, true);
    v.set(129, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(1));
    v.set(64, false);
    EXPECT_FALSE(v.get(64));
}

TEST(BitVec, FieldRoundTripWithinWord)
{
    BitVec v(64);
    v.setField(5, 11, 0x5a5);
    EXPECT_EQ(v.getField(5, 11), 0x5a5u);
    EXPECT_EQ(v.getField(0, 5), 0u);
    EXPECT_EQ(v.getField(16, 16), 0u);
}

TEST(BitVec, FieldCrossesWordBoundary)
{
    BitVec v(128);
    v.setField(60, 10, 0x3ff);
    EXPECT_EQ(v.getField(60, 10), 0x3ffu);
    EXPECT_TRUE(v.get(63));
    EXPECT_TRUE(v.get(64));
    v.setField(60, 10, 0x155);
    EXPECT_EQ(v.getField(60, 10), 0x155u);
}

TEST(BitVec, FullWidth64Field)
{
    BitVec v(64);
    v.setField(0, 64, ~uint64_t(0));
    EXPECT_EQ(v.getField(0, 64), ~uint64_t(0));
}

TEST(BitVec, SetFieldMasksExcessBits)
{
    BitVec v(32);
    v.setField(0, 4, 0xff);
    EXPECT_EQ(v.getField(0, 4), 0xfu);
    EXPECT_EQ(v.getField(4, 4), 0u);
}

TEST(BitVec, EqualityAndHash)
{
    BitVec a(70), b(70);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    a.set(69, true);
    EXPECT_NE(a, b);
    b.set(69, true);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(BitVec, DifferentWidthsNotEqual)
{
    BitVec a(8), b(9);
    EXPECT_NE(a, b);
}

TEST(BitVec, ClearResetsContents)
{
    BitVec v(100);
    v.setField(90, 10, 0x3ff);
    v.clear();
    EXPECT_EQ(v.getField(90, 10), 0u);
    EXPECT_EQ(v.numBits(), 100u);
}

TEST(BitVec, ToStringMsbFirst)
{
    BitVec v(4);
    v.set(0, true);
    v.set(3, true);
    EXPECT_EQ(v.toString(), "1001");
}

TEST(BitVec, OrderingIsTotal)
{
    BitVec a(8), b(8);
    b.set(0, true);
    EXPECT_TRUE(a < b);
    EXPECT_FALSE(b < a);
    EXPECT_FALSE(a < a);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(3);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.below(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 200; ++i) {
        uint64_t v = rng.range(10, 12);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 12u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0, 10));
        EXPECT_TRUE(rng.chance(10, 10));
    }
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(5);
    std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
    auto sorted = items;
    rng.shuffle(items);
    std::sort(items.begin(), items.end());
    EXPECT_EQ(items, sorted);
}

TEST(Strings, Split)
{
    auto fields = splitString("a,b,,c", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "");
    EXPECT_EQ(fields[3], "c");
}

TEST(Strings, SplitEmpty)
{
    auto fields = splitString("", ',');
    ASSERT_EQ(fields.size(), 1u);
    EXPECT_EQ(fields[0], "");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trimString("  hi \t"), "hi");
    EXPECT_EQ(trimString(""), "");
    EXPECT_EQ(trimString("   "), "");
    EXPECT_EQ(trimString("x"), "x");
}

TEST(Strings, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("module foo", "module"));
    EXPECT_FALSE(startsWith("mod", "module"));
    EXPECT_TRUE(endsWith("foo.v", ".v"));
    EXPECT_FALSE(endsWith("v", ".v"));
}

TEST(Strings, Format)
{
    EXPECT_EQ(formatString("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(formatString("%s", ""), "");
}

TEST(Strings, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1172848), "1,172,848");
    EXPECT_EQ(withCommas(229571), "229,571");
}

TEST(Strings, HumanBytes)
{
    EXPECT_EQ(humanBytes(512), "512.0 B");
    EXPECT_EQ(humanBytes(34 * 1024ull * 1024ull), "34.0 MB");
}

TEST(Strings, HumanSeconds)
{
    EXPECT_EQ(humanSeconds(30.0), "30.0 secs");
    EXPECT_EQ(humanSeconds(24 * 60.0), "24.0 mins");
    EXPECT_EQ(humanSeconds(58.9 * 3600.0), "58.9 hours");
}

TEST(Stats, CountersAccumulate)
{
    StatSet stats;
    stats.add("x");
    stats.add("x", 4);
    EXPECT_EQ(stats.counter("x"), 5u);
    EXPECT_EQ(stats.counter("absent"), 0u);
}

TEST(Stats, ScalarTracksMinMaxMean)
{
    StatSet stats;
    stats.sample("lat", 1.0);
    stats.sample("lat", 3.0);
    stats.sample("lat", 2.0);
    auto s = stats.scalar("lat");
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Stats, RenderContainsEntries)
{
    StatSet stats;
    stats.add("edges", 1234);
    auto text = stats.render();
    EXPECT_NE(text.find("edges"), std::string::npos);
    EXPECT_NE(text.find("1,234"), std::string::npos);
}

TEST(Status, FatalThrows)
{
    EXPECT_THROW(fatal("boom"), FatalError);
}

TEST(Status, ResultValue)
{
    Result<int> r(41);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 41);
}

TEST(Status, ResultError)
{
    auto r = Result<int>::error("nope");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.errorMessage(), "nope");
}

TEST(MemUsage, RssIsPositiveOnLinux)
{
    EXPECT_GT(currentRssBytes(), 0u);
    EXPECT_GE(peakRssBytes(), currentRssBytes() / 2);
}

TEST(Json, ParseScalars)
{
    EXPECT_TRUE(json::parse("null").value().isNull());
    EXPECT_EQ(json::parse("true").value().asBool(), true);
    EXPECT_EQ(json::parse("false").value().asBool(false), false);
    EXPECT_EQ(json::parse("42").value().asInt(), 42);
    EXPECT_EQ(json::parse("-7").value().asInt(), -7);
    EXPECT_TRUE(json::parse("42").value().isInt());
    EXPECT_FALSE(json::parse("42.5").value().isInt());
    EXPECT_DOUBLE_EQ(json::parse("42.5").value().asDouble(), 42.5);
    EXPECT_DOUBLE_EQ(json::parse("-1e3").value().asDouble(), -1000.0);
    EXPECT_EQ(json::parse("\"hi\\n\\\"there\\\"\"").value().asString(),
              "hi\n\"there\"");
}

TEST(Json, ParseStructures)
{
    auto r = json::parse(
        " {\"a\": [1, 2, {\"b\": null}], \"c\": \"x\"} ");
    ASSERT_TRUE(r.ok()) << r.errorMessage();
    const json::Value &v = r.value();
    ASSERT_TRUE(v.isObject());
    ASSERT_TRUE(v.get("a").isArray());
    EXPECT_EQ(v.get("a").items().size(), 3u);
    EXPECT_EQ(v.get("a").items()[1].asInt(), 2);
    EXPECT_TRUE(v.get("a").items()[2].get("b").isNull());
    EXPECT_EQ(v.get("c").asString(), "x");
    EXPECT_FALSE(v.has("missing"));
    EXPECT_TRUE(v.get("missing").isNull());
}

TEST(Json, RejectsMalformedInput)
{
    const char *bad[] = {
        "",          "{",         "[1,",       "tru",
        "{\"a\":}",  "{\"a\" 1}", "[1 2]",     "\"unterminated",
        "01",        "1.",        "1e",        "nullx",
        "{]",        "\"\\q\"",   "\"\\u12\"", "[1],[2]",
    };
    for (const char *text : bad) {
        EXPECT_FALSE(json::parse(text).ok())
            << "accepted malformed input: " << text;
    }
    // Raw control characters must be escaped inside strings.
    EXPECT_FALSE(json::parse("\"a\nb\"").ok());
}

TEST(Json, RejectsDeepNesting)
{
    std::string deep(200, '[');
    deep += std::string(200, ']');
    EXPECT_FALSE(json::parse(deep).ok());
    EXPECT_TRUE(json::parse(deep, 400).ok());
}

TEST(Json, SerializeRoundTrip)
{
    json::Value v = json::Value::object();
    v.set("id", int64_t{7});
    v.set("name", "enum \"fast\"\n");
    v.set("flag", true);
    v.set("ratio", 0.25);
    json::Value arr = json::Value::array();
    arr.push(int64_t{1});
    arr.push(json::Value());
    v.set("list", std::move(arr));

    std::string text = v.serialize();
    auto back = json::parse(text);
    ASSERT_TRUE(back.ok()) << back.errorMessage();
    EXPECT_TRUE(back.value() == v) << text;
    // Integers survive bit-exactly.
    EXPECT_EQ(back.value().get("id").asInt(), 7);
    EXPECT_TRUE(back.value().get("id").isInt());
}

TEST(Json, LargeIntegersStayExact)
{
    int64_t big = INT64_MAX - 3;
    json::Value v(big);
    auto back = json::parse(v.serialize());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().asInt(), big);
}

} // namespace
} // namespace archval

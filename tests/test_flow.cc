/**
 * @file
 * Tests for the top-level ValidationFlow API.
 */

#include <gtest/gtest.h>

#include "core/validation_flow.hh"
#include "hdl/translate.hh"

namespace archval::core
{
namespace
{

TEST(Flow, FullRunBugFreeIsClean)
{
    PpValidationFlow flow(rtl::PpConfig::smallPreset());
    FlowReport report = flow.run();
    EXPECT_FALSE(report.bugFound());
    EXPECT_GT(report.tracesPlayed, 0u);
    EXPECT_GT(report.cyclesSimulated, 0u);
    EXPECT_EQ(report.lockstepErrors, 0u);
}

TEST(Flow, PhasesAreLazyAndCached)
{
    PpValidationFlow flow(rtl::PpConfig::smallPreset());
    const auto &graph1 = flow.enumerate();
    const auto &graph2 = flow.enumerate();
    EXPECT_EQ(&graph1, &graph2);
    EXPECT_GT(flow.enumStats().numStates, 0u);
    const auto &tours = flow.makeTours();
    EXPECT_GT(tours.size(), 0u);
    EXPECT_EQ(flow.tourStats().numTraces, tours.size());
}

TEST(Flow, InjectedBugIsReported)
{
    FlowOptions options;
    options.stopAtFirstDivergence = true;
    PpValidationFlow flow(rtl::PpConfig::smallPreset(), options);
    rtl::BugSet bugs;
    bugs.set(static_cast<size_t>(rtl::BugId::Bug2RefillLatch));
    FlowReport report = flow.run(bugs);
    EXPECT_TRUE(report.bugFound());
    ASSERT_FALSE(report.divergences.empty());
    EXPECT_NE(report.render().find("divergence"), std::string::npos);
}

TEST(Flow, LockstepOptionChecksCleanly)
{
    FlowOptions options;
    options.checkLockstep = true;
    PpValidationFlow flow(rtl::PpConfig::smallPreset(), options);
    FlowReport report = flow.run();
    EXPECT_EQ(report.lockstepErrors, 0u);
    EXPECT_FALSE(report.bugFound());
}

TEST(Flow, TourLimitPropagates)
{
    FlowOptions options;
    options.tour.maxInstructionsPerTrace = 50;
    PpValidationFlow flow(rtl::PpConfig::smallPreset(), options);
    flow.makeTours();
    EXPECT_GT(flow.tourStats().tracesTerminatedByLimit, 0u);
}

TEST(Flow, ExploreModelOnHdlDesign)
{
    auto translated = hdl::translateSource(R"(
        module gray(clk, step);
          input clk;
          input step;
          reg [2:0] count;
          always @(posedge clk) if (step) count <= count + 3'd1;
        endmodule
    )", "gray");
    ASSERT_TRUE(translated.ok()) << translated.errorMessage();
    ModelExploration exploration =
        exploreModel(*translated.value().model);
    EXPECT_EQ(exploration.enumStats.numStates, 8u);
    EXPECT_GT(exploration.tourStats.totalEdgeTraversals, 0u);
    EXPECT_NE(exploration.render().find("state enumeration"),
              std::string::npos);
}

TEST(Flow, ReportRenderHasAllRows)
{
    PpValidationFlow flow(rtl::PpConfig::smallPreset());
    FlowReport report = flow.run();
    std::string text = report.render();
    EXPECT_NE(text.find("traces played"), std::string::npos);
    EXPECT_NE(text.find("instructions"), std::string::npos);
}

} // namespace
} // namespace archval::core

/**
 * @file
 * Observability tests (ctest label `service`, TSan-clean): the
 * flight recorder's wait-free event ring and crash dumps (including
 * the SIGUSR1 path), the Prometheus HTTP endpoint's exposition and
 * malformed-request hardening, and the daemon's `stats` protocol
 * verb with live /metrics scrapes while jobs run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/daemon.hh"
#include "service/metrics_http.hh"
#include "service/protocol.hh"
#include "support/flight_recorder.hh"
#include "support/json.hh"
#include "support/telemetry.hh"

namespace archval
{
namespace
{

using service::Daemon;
using service::FrameReader;

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

/** RAII: recorder disarmed (and its ring ignored) when the test
 *  exits, whatever happened inside. */
struct RecorderSession
{
    explicit RecorderSession(flight::FlightRecorderOptions options)
    {
        flight::initFlightRecorder(options);
    }
    ~RecorderSession() { flight::shutdownFlightRecorder(); }
};

json::Value
parseDump(const std::string &text)
{
    Result<json::Value> parsed = json::parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.errorMessage() << "\n" << text;
    return parsed.ok() ? parsed.take() : json::Value::object();
}

std::vector<std::string>
crashFiles(const std::string &dir)
{
    std::vector<std::string> out;
    if (DIR *d = ::opendir(dir.c_str())) {
        while (struct dirent *entry = ::readdir(d)) {
            const std::string name = entry->d_name;
            if (name.rfind("crash-", 0) == 0)
                out.push_back(dir + "/" + name);
        }
        ::closedir(d);
    }
    return out;
}

std::string
slurp(const std::string &path)
{
    std::string out;
    if (std::FILE *f = std::fopen(path.c_str(), "r")) {
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            out.append(buf, n);
        std::fclose(f);
    }
    return out;
}

/** Send raw bytes to a loopback TCP port and read until the server
 *  closes (the endpoint always answers Connection: close). */
std::string
httpExchange(int port, const std::string &request)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return {};
    }
    if (!service::sendAll(fd, request.data(), request.size())) {
        ::close(fd);
        return {};
    }
    std::string response;
    char buf[16 * 1024];
    ssize_t n;
    while ((n = service::recvRetry(fd, buf, sizeof(buf))) > 0)
        response.append(buf, static_cast<size_t>(n));
    ::close(fd);
    return response;
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendFrame(int fd, const json::Value &message)
{
    const std::string wire = service::encodeFrame(message);
    return service::sendAll(fd, wire.data(), wire.size());
}

bool
readEvent(int fd, FrameReader &reader, json::Value &event)
{
    std::string payload;
    char buf[64 * 1024];
    while (true) {
        FrameReader::Status status = reader.next(payload);
        if (status == FrameReader::Status::Ready) {
            Result<json::Value> parsed = json::parse(payload);
            if (!parsed.ok())
                return false;
            event = parsed.take();
            return true;
        }
        if (status == FrameReader::Status::Error)
            return false;
        ssize_t n = service::recvRetry(fd, buf, sizeof(buf));
        if (n <= 0)
            return false;
        reader.feed(buf, static_cast<size_t>(n));
    }
}

std::string
socketPath(const char *tag)
{
    return "/tmp/archval_obs_" + std::to_string(::getpid()) + tag +
           ".sock";
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST(FlightRecorder, DisabledPathIsInertButDumpStillRenders)
{
    flight::shutdownFlightRecorder();
    ASSERT_FALSE(flight::flightRecorderEnabled());
    flight::recordEvent(flight::EventKind::JobStarted, 1, 2, "x");
    json::Value dump =
        parseDump(flight::dumpFlightRecorder("unit-test"));
    EXPECT_EQ(dump.get("reason").asString(), "unit-test");
    EXPECT_TRUE(dump.has("events"));
}

TEST(FlightRecorder, RecordsLifecycleEventsInOrder)
{
    flight::FlightRecorderOptions options;
    options.handleSigusr1 = false;
    options.handleTerminate = false;
    options.activeJobsJson = [] {
        return std::string("[{\"job\": 17}]");
    };
    RecorderSession session(options);
    ASSERT_TRUE(flight::flightRecorderEnabled());

    flight::recordEvent(flight::EventKind::JobAccepted, 9, 3,
                        "replay");
    flight::recordEvent(flight::EventKind::JobStarted, 9, 3,
                        "replay");
    flight::recordEvent(flight::EventKind::JobDone, 9, 0, "ok");

    json::Value dump = parseDump(flight::dumpFlightRecorder("test"));
    const auto &events = dump.get("events").items();
    ASSERT_GE(events.size(), 3u);
    const size_t n = events.size();
    EXPECT_EQ(events[n - 3].get("kind").asString(), "job_accepted");
    EXPECT_EQ(events[n - 3].get("a").asInt(), 9);
    EXPECT_EQ(events[n - 3].get("b").asInt(), 3);
    EXPECT_EQ(events[n - 3].get("detail").asString(), "replay");
    EXPECT_EQ(events[n - 2].get("kind").asString(), "job_started");
    EXPECT_EQ(events[n - 1].get("kind").asString(), "job_done");
    EXPECT_EQ(events[n - 1].get("detail").asString(), "ok");
    // Ring order is oldest-first.
    EXPECT_LE(events[n - 3].get("seq").asInt(),
              events[n - 1].get("seq").asInt());
    // Host callback and registry digest are embedded.
    ASSERT_EQ(dump.get("activeJobs").items().size(), 1u);
    EXPECT_EQ(
        dump.get("activeJobs").items()[0].get("job").asInt(), 17);
    EXPECT_TRUE(dump.has("metrics"));
}

TEST(FlightRecorder, RingWrapsOverwritingOldest)
{
    flight::FlightRecorderOptions options;
    options.handleSigusr1 = false;
    options.handleTerminate = false;
    RecorderSession session(options);
    const uint64_t dropped_before = flight::droppedFlightEvents();
    // The ring is process-wide (1024 slots by default); overrun it.
    for (uint64_t i = 0; i < 2000; ++i)
        flight::recordEvent(flight::EventKind::JobProgress, i, 0,
                            "tick");
    EXPECT_GE(flight::droppedFlightEvents() - dropped_before, 900u);
    json::Value dump = parseDump(flight::dumpFlightRecorder("wrap"));
    const auto &events = dump.get("events").items();
    ASSERT_FALSE(events.empty());
    EXPECT_LE(events.size(), 1024u);
    // The newest event survived the wrap.
    EXPECT_EQ(events.back().get("a").asInt(), 1999);
}

TEST(FlightRecorder, DetailTruncatesAt48BytesWithoutAllocation)
{
    flight::FlightRecorderOptions options;
    options.handleSigusr1 = false;
    options.handleTerminate = false;
    RecorderSession session(options);
    const std::string long_detail(100, 'x');
    flight::recordEvent(flight::EventKind::FrameError, 1, 0,
                        long_detail);
    json::Value dump =
        parseDump(flight::dumpFlightRecorder("trunc"));
    const auto &events = dump.get("events").items();
    ASSERT_FALSE(events.empty());
    const std::string detail =
        events.back().get("detail").asString();
    EXPECT_EQ(detail, std::string(48, 'x'));
}

TEST(FlightRecorder, ConcurrentWritersAndDumpersAreClean)
{
    flight::FlightRecorderOptions options;
    options.handleSigusr1 = false;
    options.handleTerminate = false;
    RecorderSession session(options);

    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&stop, t] {
            uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                flight::recordEvent(
                    flight::EventKind::JobProgress,
                    static_cast<uint64_t>(t), i++, "hammer");
            }
        });
    }
    // Dump repeatedly while the ring churns: torn slots are allowed
    // (they appear with kind "torn"), structurally invalid JSON is
    // not.
    for (int i = 0; i < 50; ++i) {
        json::Value dump =
            parseDump(flight::dumpFlightRecorder("churn"));
        EXPECT_TRUE(dump.has("events"));
    }
    stop.store(true);
    for (auto &t : writers)
        t.join();
}

TEST(FlightRecorder, Sigusr1DumpsCrashFileNamingReason)
{
    const std::string dir = ::testing::TempDir() + "obs_crash";
    ::mkdir(dir.c_str(), 0777);
    for (const std::string &stale : crashFiles(dir))
        std::remove(stale.c_str());

    flight::FlightRecorderOptions options;
    options.crashDir = dir;
    options.handleTerminate = false;
    RecorderSession session(options);
    flight::recordEvent(flight::EventKind::JobStarted, 33, 1,
                        "enumerate");

    ASSERT_EQ(::raise(SIGUSR1), 0);
    // The handler only writes a pipe byte; the watcher thread does
    // the dump. Poll for the file.
    std::vector<std::string> files;
    for (int i = 0; i < 500 && files.empty(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        files = crashFiles(dir);
    }
    ASSERT_FALSE(files.empty()) << "no crash file after SIGUSR1";
    json::Value dump = parseDump(slurp(files[0]));
    EXPECT_EQ(dump.get("reason").asString(), "SIGUSR1");
    bool saw_job = false, saw_signal = false;
    for (const json::Value &ev : dump.get("events").items()) {
        if (ev.get("kind").asString() == "job_started" &&
            ev.get("a").asInt() == 33)
            saw_job = true;
        if (ev.get("kind").asString() == "signal")
            saw_signal = true;
    }
    EXPECT_TRUE(saw_job);
    EXPECT_TRUE(saw_signal);
    for (const std::string &file : files)
        std::remove(file.c_str());
}

// ---------------------------------------------------------------------
// Prometheus HTTP endpoint
// ---------------------------------------------------------------------

TEST(MetricsHttp, ServesRendererOutputOnGetMetrics)
{
    service::MetricsHttpServer server;
    ASSERT_EQ(server.start(0, [] {
        return std::string("# golden body\n");
    }),
              "");
    ASSERT_GT(server.port(), 0);
    std::string response = httpExchange(
        server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(response.find("# golden body\n"), std::string::npos);
    server.stop();
}

TEST(MetricsHttp, MalformedRequestsAre4xxNeverCrashes)
{
    service::MetricsHttpServer server;
    ASSERT_EQ(server.start(0, [] { return std::string("ok\n"); }),
              "");
    const int port = server.port();

    // Plain garbage.
    EXPECT_NE(httpExchange(port, "garbage\r\n\r\n")
                  .find("HTTP/1.1 400"),
              std::string::npos);
    // Binary noise (a length-prefixed frame, the likely accident).
    EXPECT_NE(httpExchange(
                  port, std::string("\x10\x00\x00\x00{\"v\":1}\r\n\r\n",
                                    16))
                  .find("HTTP/1.1 400"),
              std::string::npos);
    // Wrong method, wrong target.
    EXPECT_NE(httpExchange(
                  port, "POST /metrics HTTP/1.1\r\n\r\n")
                  .find("HTTP/1.1 405"),
              std::string::npos);
    EXPECT_NE(
        httpExchange(port, "GET /other HTTP/1.1\r\n\r\n")
            .find("HTTP/1.1 404"),
        std::string::npos);
    // A peer that connects and immediately hangs up.
    {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<uint16_t>(port));
        ASSERT_EQ(::connect(fd,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        ::close(fd);
    }
    // The server survived all of it.
    EXPECT_NE(httpExchange(port, "GET /metrics HTTP/1.1\r\n\r\n")
                  .find("HTTP/1.1 200"),
              std::string::npos);
    server.stop();
}

TEST(MetricsHttp, RendererExceptionIs500)
{
    service::MetricsHttpServer server;
    ASSERT_EQ(server.start(0, []() -> std::string {
        throw std::runtime_error("boom");
    }),
              "");
    std::string response = httpExchange(
        server.port(), "GET /metrics HTTP/1.1\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.1 500"), std::string::npos);
    server.stop();
}

TEST(MetricsHttp, ConcurrentScrapesDuringRegistryChurn)
{
    service::MetricsHttpServer server;
    ASSERT_EQ(server.start(0, [] {
        return telemetry::renderPrometheus(
            telemetry::snapshotMetrics());
    }),
              "");
    const int port = server.port();

    // Register up front so the very first scrape already sees the
    // family; the mutators then only bump values.
    telemetry::counter("obs.scrape_churn").add(1);

    std::atomic<bool> stop{false};
    std::vector<std::thread> mutators;
    for (int t = 0; t < 2; ++t) {
        mutators.emplace_back([&stop] {
            while (!stop.load(std::memory_order_relaxed)) {
                telemetry::counter("obs.scrape_churn").add(1);
                telemetry::histogram("obs.scrape_hist{verb=x}")
                    .record(0.01);
            }
        });
    }
    for (int i = 0; i < 20; ++i) {
        std::string response = httpExchange(
            port, "GET /metrics HTTP/1.1\r\n\r\n");
        EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
        EXPECT_NE(response.find("archval_obs_scrape_churn_total"),
                  std::string::npos);
    }
    stop.store(true);
    for (auto &t : mutators)
        t.join();
    server.stop();
}

// ---------------------------------------------------------------------
// Daemon: stats verb + live /metrics
// ---------------------------------------------------------------------

TEST(DaemonStats, StatsVerbAndMetricsEndpointWhileJobsRun)
{
    telemetry::resetMetricsForTesting();
    const std::string path = socketPath("stats");
    Daemon::Options options;
    options.unixPath = path;
    options.workers = 1;
    options.metricsPort = 0; // ephemeral
    Daemon daemon(options);
    ASSERT_EQ(daemon.start(), "");
    ASSERT_GT(daemon.metricsPort(), 0);

    // Scrape while a replay job runs: every response a full 200.
    std::atomic<bool> job_done{false};
    std::thread scraper([&] {
        while (!job_done.load(std::memory_order_relaxed)) {
            std::string response = httpExchange(
                daemon.metricsPort(),
                "GET /metrics HTTP/1.1\r\n\r\n");
            EXPECT_NE(response.find("HTTP/1.1 200"),
                      std::string::npos);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
    });

    int fd = connectUnix(path);
    ASSERT_GE(fd, 0);
    json::Value request = json::Value::object();
    request.set("verb", "replay");
    FrameReader reader;
    json::Value event;
    ASSERT_TRUE(sendFrame(fd, request));
    std::string verdict;
    while (readEvent(fd, reader, event)) {
        if (event.get("type").asString() == "result") {
            verdict = event.get("verdict").asString();
            break;
        }
        ASSERT_NE(event.get("type").asString(), "error")
            << event.get("message").asString();
    }
    job_done.store(true);
    scraper.join();
    EXPECT_EQ(verdict, "ok");

    // The stats verb over the same connection.
    json::Value stats_req = json::Value::object();
    stats_req.set("verb", "stats");
    ASSERT_TRUE(sendFrame(fd, stats_req));
    ASSERT_TRUE(readEvent(fd, reader, event));
    EXPECT_EQ(event.get("type").asString(), "stats");
    EXPECT_GT(event.get("uptimeSeconds").asDouble(), 0.0);
    EXPECT_TRUE(event.has("build"));
    EXPECT_EQ(event.get("queue").get("queued").asInt(-1), 0);
    EXPECT_GE(event.get("queue").get("bound").asInt(), 1);
    EXPECT_EQ(event.get("sessions").get("sessions").asInt(-1), 1);
    EXPECT_GT(event.get("process").get("rssBytes").asInt(), 0);
    const json::Value &metrics = event.get("metrics");
    EXPECT_GE(metrics
                  .get("service.job_run_seconds{verb=replay}.count")
                  .asInt(),
              1);
    EXPECT_GE(
        metrics
            .get("service.job_queue_wait_seconds{verb=replay}"
                 ".count")
            .asInt(),
        1);
    ::close(fd);

    // After the job: the queue-split histograms are in /metrics.
    std::string exposition = httpExchange(
        daemon.metricsPort(), "GET /metrics HTTP/1.1\r\n\r\n");
    EXPECT_NE(exposition.find("archval_service_job_run_seconds_"
                              "bucket{verb=\"replay\",le=\"+Inf\"}"),
              std::string::npos);
    EXPECT_NE(
        exposition.find(
            "archval_service_job_queue_wait_seconds_count"
            "{verb=\"replay\"}"),
        std::string::npos);
    EXPECT_NE(exposition.find("archval_service_queue_depth "),
              std::string::npos);
    EXPECT_NE(exposition.find("archval_process_rss_bytes "),
              std::string::npos);

    daemon.stop();
    daemon.wait();
    std::remove(path.c_str());
}

TEST(DaemonStats, MetricsPortDisabledByDefault)
{
    const std::string path = socketPath("noport");
    Daemon::Options options;
    options.unixPath = path;
    Daemon daemon(options);
    ASSERT_EQ(daemon.start(), "");
    EXPECT_EQ(daemon.metricsPort(), -1);
    // stats still answers without the HTTP endpoint.
    int fd = connectUnix(path);
    ASSERT_GE(fd, 0);
    json::Value stats_req = json::Value::object();
    stats_req.set("verb", "stats");
    ASSERT_TRUE(sendFrame(fd, stats_req));
    FrameReader reader;
    json::Value event;
    ASSERT_TRUE(readEvent(fd, reader, event));
    EXPECT_EQ(event.get("type").asString(), "stats");
    ::close(fd);
    daemon.stop();
    daemon.wait();
    std::remove(path.c_str());
}

} // namespace
} // namespace archval

/**
 * @file
 * Service-layer tests (ctest label `service`): protocol framing,
 * the warm-vs-cold replay differential, JobManager lifecycle
 * (streaming, cancellation, error containment) and a real
 * unix-socket daemon with concurrent clients. The whole file must
 * stay TSan-clean — it is part of the ARCHVAL_SANITIZE=thread build.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <pthread.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "harness/replay_engine.hh"
#include "harness/vector_player.hh"
#include "service/daemon.hh"
#include "service/job_manager.hh"
#include "service/protocol.hh"
#include "service/session_cache.hh"
#include "support/status.hh"

using namespace archval;
using namespace archval::service;

// ---------------------------------------------------------------
// Protocol framing
// ---------------------------------------------------------------

TEST(Framing, RoundTripSingleAndBack2Back)
{
    json::Value a = json::Value::object();
    a.set("verb", "ping");
    json::Value b = json::Value::object();
    b.set("verb", "list");
    b.set("n", static_cast<int64_t>(42));

    std::string wire = encodeFrame(a) + encodeFrame(b);
    FrameReader reader;
    reader.feed(wire.data(), wire.size());

    std::string payload;
    ASSERT_EQ(reader.next(payload), FrameReader::Status::Ready);
    EXPECT_EQ(payload, a.serialize());
    ASSERT_EQ(reader.next(payload), FrameReader::Status::Ready);
    EXPECT_EQ(payload, b.serialize());
    EXPECT_EQ(reader.next(payload), FrameReader::Status::NeedMore);
    EXPECT_FALSE(reader.failed());
}

TEST(Framing, TruncatedInputIsNeedMoreByteByByte)
{
    json::Value msg = json::Value::object();
    msg.set("verb", "status");
    msg.set("job", static_cast<int64_t>(7));
    const std::string wire = encodeFrame(msg);

    FrameReader reader;
    std::string payload;
    for (size_t i = 0; i + 1 < wire.size(); ++i) {
        reader.feed(wire.data() + i, 1);
        ASSERT_EQ(reader.next(payload),
                  FrameReader::Status::NeedMore)
            << "after byte " << i;
    }
    reader.feed(wire.data() + wire.size() - 1, 1);
    ASSERT_EQ(reader.next(payload), FrameReader::Status::Ready);
    EXPECT_EQ(payload, msg.serialize());
}

TEST(Framing, OversizedLengthIsStickyError)
{
    // 0xFFFFFFFF little-endian length prefix: larger than any
    // allowed frame.
    const unsigned char bad[] = {0xff, 0xff, 0xff, 0xff, 'x'};
    FrameReader reader;
    reader.feed(bad, sizeof(bad));
    std::string payload;
    EXPECT_EQ(reader.next(payload), FrameReader::Status::Error);
    EXPECT_TRUE(reader.failed());
    EXPECT_FALSE(reader.error().empty());

    // Sticky: feeding good bytes afterwards cannot resynchronize.
    json::Value msg = json::Value::object();
    msg.set("verb", "ping");
    const std::string good = encodeFrame(msg);
    reader.feed(good.data(), good.size());
    EXPECT_EQ(reader.next(payload), FrameReader::Status::Error);
}

TEST(Framing, ZeroLengthIsError)
{
    const unsigned char bad[] = {0, 0, 0, 0};
    FrameReader reader;
    reader.feed(bad, sizeof(bad));
    std::string payload;
    EXPECT_EQ(reader.next(payload), FrameReader::Status::Error);
}

TEST(Framing, EncodeRejectsUnsendablePayloads)
{
    EXPECT_THROW(encodeFrame(std::string()), FatalError);
    EXPECT_THROW(encodeFrame(std::string(kMaxFrameBytes + 1, 'x')),
                 FatalError);
    // Exactly at the cap is legal and round-trips.
    const std::string frame =
        encodeFrame(std::string(1024, 'y'));
    FrameReader reader;
    reader.feed(frame.data(), frame.size());
    std::string payload;
    ASSERT_EQ(reader.next(payload), FrameReader::Status::Ready);
    EXPECT_EQ(payload.size(), 1024u);
}

// ---------------------------------------------------------------
// EINTR safety of the shared socket helpers
// ---------------------------------------------------------------

namespace
{

std::atomic<int> g_signal_count{0};

void
countSignal(int)
{
    g_signal_count.fetch_add(1, std::memory_order_relaxed);
}

/** Install a SIGUSR1 handler *without* SA_RESTART for the test's
 *  scope, so blocking send()/recv() calls genuinely return EINTR
 *  instead of the kernel restarting them — the exact environment
 *  that used to drop event frames mid-transfer. */
struct SignalGuard
{
    struct sigaction old {};

    SignalGuard()
    {
        struct sigaction sa {};
        sa.sa_handler = countSignal;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = 0; // deliberately no SA_RESTART
        EXPECT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);
        g_signal_count.store(0, std::memory_order_relaxed);
    }

    ~SignalGuard() { ::sigaction(SIGUSR1, &old, nullptr); }
};

} // namespace

TEST(EintrSafety, SendAllDeliversEveryFrameUnderSignalFire)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    // Shrink the send buffer so the sender spends most of its time
    // blocked inside send(), where the signals land.
    int sndbuf = 4096;
    ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf,
                 sizeof(sndbuf));
    SignalGuard guard;

    json::Value msg = json::Value::object();
    msg.set("type", "progress");
    msg.set("pad", std::string(16 * 1024, 'x'));
    const std::string wire = encodeFrame(msg);
    constexpr int kFrames = 48;

    std::atomic<bool> send_ok{true};
    std::atomic<bool> sending{true};
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    std::thread sender([&] {
        for (int i = 0; i < kFrames && send_ok.load(); ++i) {
            if (!sendAll(fds[0], wire.data(), wire.size()))
                send_ok.store(false);
        }
        ::shutdown(fds[0], SHUT_WR);
        sending.store(false);
        released.wait(); // stay alive while the signaler may fire
    });
    pthread_t target = sender.native_handle();
    std::thread signaler([&] {
        while (sending.load()) {
            ::pthread_kill(target, SIGUSR1);
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
        }
    });

    // Drain in small chunks; every byte of every frame must arrive
    // in order, however many signals interrupted the transfer.
    FrameReader reader;
    std::string payload;
    size_t frames = 0;
    char buf[2048];
    while (true) {
        ssize_t n = recvRetry(fds[1], buf, sizeof(buf));
        ASSERT_GE(n, 0);
        if (n == 0)
            break;
        reader.feed(buf, static_cast<size_t>(n));
        while (reader.next(payload) == FrameReader::Status::Ready)
            ++frames;
        ASSERT_FALSE(reader.failed()) << reader.error();
    }
    signaler.join();
    release.set_value();
    sender.join();
    ::close(fds[0]);
    ::close(fds[1]);

    EXPECT_TRUE(send_ok.load());
    EXPECT_EQ(frames, static_cast<size_t>(kFrames));
    EXPECT_GT(g_signal_count.load(), 0);
}

TEST(EintrSafety, RecvRetryDeliversEveryFrameUnderSignalFire)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    SignalGuard guard;

    json::Value msg = json::Value::object();
    msg.set("type", "metrics");
    msg.set("pad", std::string(4 * 1024, 'y'));
    const std::string wire = encodeFrame(msg);
    constexpr int kFrames = 16;

    std::atomic<bool> recv_ok{true};
    std::atomic<bool> receiving{true};
    std::atomic<size_t> frames{0};
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    std::thread receiver([&] {
        FrameReader reader;
        std::string payload;
        char buf[1024];
        while (true) {
            ssize_t n = recvRetry(fds[1], buf, sizeof(buf));
            if (n < 0) {
                recv_ok.store(false);
                break;
            }
            if (n == 0)
                break;
            reader.feed(buf, static_cast<size_t>(n));
            while (reader.next(payload) ==
                   FrameReader::Status::Ready)
                frames.fetch_add(1);
            if (reader.failed()) {
                recv_ok.store(false);
                break;
            }
        }
        receiving.store(false);
        released.wait();
    });
    pthread_t target = receiver.native_handle();
    std::thread signaler([&] {
        while (receiving.load()) {
            ::pthread_kill(target, SIGUSR1);
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
        }
    });

    // Trickle the bytes so the receiver keeps re-entering a blocking
    // recv() between chunks.
    for (int i = 0; i < kFrames; ++i) {
        size_t off = 0;
        while (off < wire.size()) {
            const size_t chunk = std::min<size_t>(512,
                                                  wire.size() - off);
            ASSERT_EQ(::send(fds[0], wire.data() + off, chunk,
                             MSG_NOSIGNAL),
                      static_cast<ssize_t>(chunk));
            off += chunk;
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
        }
    }
    ::shutdown(fds[0], SHUT_WR);
    signaler.join();
    release.set_value();
    receiver.join();
    ::close(fds[0]);
    ::close(fds[1]);

    EXPECT_TRUE(recv_ok.load());
    EXPECT_EQ(frames.load(), static_cast<size_t>(kFrames));
    EXPECT_GT(g_signal_count.load(), 0);
}

// ---------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------

TEST(JobRequestParse, VerbsAndBugs)
{
    json::Value msg = json::Value::object();
    msg.set("verb", "replay");
    json::Value bugs = json::Value::array();
    bugs.push(json::Value("bug1"));
    bugs.push(json::Value(static_cast<int64_t>(3)));
    msg.set("bugs", std::move(bugs));
    Result<JobRequest> parsed = JobRequest::fromJson(msg);
    ASSERT_TRUE(parsed.ok()) << parsed.errorMessage();
    EXPECT_TRUE(parsed.value().bugs.test(0));
    EXPECT_TRUE(parsed.value().bugs.test(3));
    EXPECT_EQ(parsed.value().bugs.count(), 2u);

    msg.set("verb", "frobnicate");
    EXPECT_FALSE(JobRequest::fromJson(msg).ok());

    msg.set("verb", "replay");
    json::Value bad = json::Value::array();
    bad.push(json::Value("bug9"));
    msg.set("bugs", std::move(bad));
    EXPECT_FALSE(JobRequest::fromJson(msg).ok());
}

TEST(DesignSpecParse, FingerprintSeparatesGenerationKnobs)
{
    DesignSpec a;
    DesignSpec b;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.enumThreads = 4; // graph is bit-identical for any worker count
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.vectorSeed = 2;
    EXPECT_NE(a.fingerprint(), b.fingerprint());

    DesignSpec bogus;
    bogus.preset = "gigantic";
    EXPECT_THROW(bogus.toConfig(), FatalError);
}

TEST(DesignSpecParse, WrongTypedFieldsAreBadRequests)
{
    auto parse = [](const char *text) {
        Result<json::Value> value = json::parse(text);
        EXPECT_TRUE(value.ok()) << text;
        return DesignSpec::fromJson(value.value());
    };

    // The historical bug: `500000.0` is a JSON double, so the old
    // asInt()-with-fallback parse silently ran with the *default*
    // maxStates — a different fingerprint, different results, and no
    // indication to the client. It must be a bad request instead.
    Result<DesignSpec> dbl = parse("{\"maxStates\": 500000.0}");
    ASSERT_FALSE(dbl.ok());
    EXPECT_NE(dbl.errorMessage().find("bad request"),
              std::string::npos);
    EXPECT_NE(dbl.errorMessage().find("maxStates"),
              std::string::npos);

    EXPECT_FALSE(parse("{\"maxStates\": \"lots\"}").ok());
    EXPECT_FALSE(parse("{\"lineWords\": -2}").ok());
    EXPECT_FALSE(parse("{\"modelBranches\": 1}").ok()); // bool field
    EXPECT_FALSE(parse("{\"nestedPrefixSplits\": \"yes\"}").ok());
    EXPECT_FALSE(parse("{\"preset\": 3}").ok());
    EXPECT_FALSE(parse("[1, 2]").ok()); // design must be an object

    // Correctly typed fields still parse, absent ones keep defaults.
    Result<DesignSpec> good =
        parse("{\"maxStates\": 250000, \"dualIssue\": true}");
    ASSERT_TRUE(good.ok()) << good.errorMessage();
    EXPECT_EQ(good.value().maxStates, 250'000u);
    EXPECT_EQ(good.value().dualIssue, 1);
    EXPECT_EQ(good.value().preset, "small");
}

TEST(JobRequestParse, WrongTypedJobFieldsAreBadRequests)
{
    auto parse = [](const char *text) {
        Result<json::Value> value = json::parse(text);
        EXPECT_TRUE(value.ok()) << text;
        return JobRequest::fromJson(value.value());
    };

    EXPECT_FALSE(
        parse("{\"verb\": \"replay\", \"threads\": 2.5}").ok());
    EXPECT_FALSE(
        parse("{\"verb\": \"replay\", \"seed\": \"one\"}").ok());
    EXPECT_FALSE(
        parse("{\"verb\": \"fuzz\", \"rounds\": true}").ok());

    // A wrong-typed *design* field surfaces through the same path.
    Result<JobRequest> nested = parse(
        "{\"verb\": \"replay\", \"design\": {\"maxStates\": 1.5}}");
    ASSERT_FALSE(nested.ok());
    EXPECT_NE(nested.errorMessage().find("maxStates"),
              std::string::npos);

    Result<JobRequest> good =
        parse("{\"verb\": \"replay\", \"threads\": 4}");
    ASSERT_TRUE(good.ok()) << good.errorMessage();
    EXPECT_EQ(good.value().threads, 4u);
}

// ---------------------------------------------------------------
// Warm-vs-cold differential
// ---------------------------------------------------------------

namespace
{

void
expectSamePlay(const harness::PlayResult &x,
               const harness::PlayResult &y, const char *what)
{
    EXPECT_EQ(x.diverged, y.diverged) << what;
    EXPECT_EQ(x.diff, y.diff) << what;
    EXPECT_EQ(x.cycles, y.cycles) << what;
    EXPECT_EQ(x.instructions, y.instructions) << what;
    EXPECT_EQ(x.lockstepErrors, y.lockstepErrors) << what;
    EXPECT_EQ(x.drained, y.drained) << what;
    EXPECT_EQ(x.skipped, y.skipped) << what;
}

} // namespace

TEST(WarmReplay, WarmRunIsByteIdenticalToColdAndSequential)
{
    DesignSpec spec; // small preset, service defaults
    Session session(spec);
    ASSERT_EQ(session.ensure(Session::Stage::Vectors, nullptr), "");
    const auto &traces = session.vectors();
    ASSERT_FALSE(traces.empty());

    rtl::BugSet bug;
    bug.set(static_cast<size_t>(rtl::BugId::Bug4FixupLost));
    std::vector<rtl::BugSet> bug_sets{rtl::BugSet{}, bug};

    harness::ReplayOptions options;
    options.numThreads = 2;
    options.checkpointStride = 128;
    options.warmCache = session.warmCache();

    // Cold: populates the session's warm cache.
    harness::ReplayEngine cold(session.config(), options);
    auto cold_plays = cold.playAll(traces, bug_sets);
    const harness::ReplayStats cold_stats = cold.stats();
    EXPECT_EQ(cold_stats.warmHits, 0u);
    EXPECT_EQ(cold_stats.warmInserts, traces.size());

    // Warm: a second engine on the same cache (a repeat service
    // request) must produce byte-identical results while simulating
    // at most 10% of the cold run's cycles.
    harness::ReplayEngine warmed(session.config(), options);
    auto warm_plays = warmed.playAll(traces, bug_sets);
    const harness::ReplayStats warm_stats = warmed.stats();
    EXPECT_EQ(warm_stats.warmHits, traces.size());
    EXPECT_GE(warm_stats.warmCopies, traces.size());

    ASSERT_EQ(cold_plays.size(), warm_plays.size());
    for (size_t i = 0; i < cold_plays.size(); ++i)
        expectSamePlay(cold_plays[i], warm_plays[i], "warm vs cold");

    // The whole bug-free donor block is avoided on the warm repeat
    // (the bug block may still simulate when the bug triggers before
    // the first chain link, so the bound for this two-block batch is
    // one half).
    EXPECT_LE(warm_stats.simulatedCycles * 2,
              cold_stats.simulatedCycles)
        << "warm=" << warm_stats.simulatedCycles
        << " cold=" << cold_stats.simulatedCycles;

    // The acceptance bar — a repeat of the plain replay job (no bug
    // block) simulates >= 90% fewer cycles than its cold run; here
    // it is a pure donor-result copy, so zero.
    harness::ReplayEngine repeat(session.config(), options);
    auto repeat_plays =
        repeat.playAll(traces, {rtl::BugSet{}});
    const harness::ReplayStats repeat_stats = repeat.stats();
    EXPECT_EQ(repeat_stats.warmHits, traces.size());
    EXPECT_LE(repeat_stats.simulatedCycles * 10,
              cold_stats.simulatedCycles)
        << "repeat=" << repeat_stats.simulatedCycles
        << " cold=" << cold_stats.simulatedCycles;
    for (size_t t = 0; t < traces.size(); ++t)
        expectSamePlay(cold_plays[t], repeat_plays[t],
                       "repeat vs cold donor block");

    // And both agree with the plain sequential player.
    harness::VectorPlayer player(session.config());
    for (size_t b = 0; b < bug_sets.size(); ++b) {
        for (size_t t = 0; t < traces.size(); ++t) {
            harness::PlayResult seq =
                player.play(traces[t], bug_sets[b]);
            expectSamePlay(seq,
                           warm_plays[b * traces.size() + t],
                           "warm vs sequential");
        }
    }
}

// ---------------------------------------------------------------
// JobManager
// ---------------------------------------------------------------

namespace
{

/** Thread-safe event collector with terminal-event waiting. */
class Collector
{
  public:
    EventSink sink()
    {
        return [this](const json::Value &event) {
            std::lock_guard<std::mutex> lock(mutex_);
            events_.push_back(event);
            cv_.notify_all();
        };
    }

    /** Block until the job sees result/error/cancelled. */
    json::Value waitTerminal()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return findTerminal() >= 0; });
        return events_[static_cast<size_t>(findTerminal())];
    }

    std::vector<json::Value> events() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return events_;
    }

  private:
    int findTerminal() const
    {
        for (size_t i = 0; i < events_.size(); ++i) {
            const std::string &type =
                events_[i].get("type").asString();
            if (type == "result" || type == "error" ||
                type == "cancelled")
                return static_cast<int>(i);
        }
        return -1;
    }

    mutable std::mutex mutex_;
    mutable std::condition_variable cv_;
    std::vector<json::Value> events_;
};

JobRequest
makeRequest(const std::string &verb, uint64_t vector_seed = 1)
{
    JobRequest request;
    request.verb = verb;
    request.design.vectorSeed = vector_seed;
    request.threads = 2;
    return request;
}

} // namespace

TEST(JobManager, EnumerateThenWarmReplayReportsCacheHits)
{
    SessionCache sessions;
    JobManager manager(sessions, 2);

    Collector enum_events;
    manager.submit(makeRequest("enumerate"), enum_events.sink());
    json::Value enum_result = enum_events.waitTerminal();
    ASSERT_EQ(enum_result.get("type").asString(), "result");
    EXPECT_GT(enum_result.get("states").asInt(), 0);

    Collector cold_events;
    manager.submit(makeRequest("replay"), cold_events.sink());
    json::Value cold = cold_events.waitTerminal();
    ASSERT_EQ(cold.get("type").asString(), "result");
    EXPECT_EQ(cold.get("verdict").asString(), "ok");
    EXPECT_EQ(cold.get("warm").get("hits").asInt(), 0);
    EXPECT_GT(cold.get("simulatedCycles").asInt(), 0);

    Collector warm_events;
    manager.submit(makeRequest("replay"), warm_events.sink());
    json::Value warm = warm_events.waitTerminal();
    ASSERT_EQ(warm.get("type").asString(), "result");
    // The cache-hit metric the tentpole promises: the repeat request
    // hits the session warm cache on every trace and re-simulates
    // at most 10% of the cold run.
    EXPECT_EQ(warm.get("warm").get("hits").asInt(),
              warm.get("traces").asInt());
    EXPECT_LE(warm.get("simulatedCycles").asInt() * 10,
              cold.get("simulatedCycles").asInt());

    // Byte-identical per-trace results across requests.
    EXPECT_EQ(warm.get("plays").serialize(),
              cold.get("plays").serialize());

    // Both replay jobs found the session the enumerate job created.
    EXPECT_GE(sessions.stats().hits, 2u);
    EXPECT_EQ(sessions.stats().sessions, 1u);
}

TEST(JobManager, BadRequestsAreErrorsNotCrashes)
{
    SessionCache sessions;
    JobManager manager(sessions, 1);

    JobRequest bogus = makeRequest("replay");
    bogus.design.preset = "gigantic";
    Collector events;
    uint64_t id = manager.submit(bogus, events.sink());
    json::Value terminal = events.waitTerminal();
    EXPECT_EQ(terminal.get("type").asString(), "error");
    EXPECT_NE(terminal.get("message").asString().find("preset"),
              std::string::npos);

    auto info = manager.status(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, "failed");

    // The manager is still alive and serves the next job.
    Collector ok_events;
    manager.submit(makeRequest("enumerate"), ok_events.sink());
    EXPECT_EQ(ok_events.waitTerminal().get("type").asString(),
              "result");
}

TEST(JobManager, CancelQueuedAndMidJob)
{
    SessionCache sessions;
    JobManager manager(sessions, 1); // single worker: determinism

    // Queued cancellation: hold the single worker inside job A's
    // `started` emit until B has been cancelled, so B is provably
    // still queued — it must terminate with `cancelled` and never
    // emit `started`.
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    Collector a_events;
    EventSink a_sink = [inner = a_events.sink(),
                        released](const json::Value &event) {
        inner(event);
        if (event.get("type").asString() == "started")
            released.wait();
    };
    manager.submit(makeRequest("enumerate", 101), a_sink);
    Collector b_events;
    uint64_t b = manager.submit(makeRequest("enumerate", 102),
                                b_events.sink());
    EXPECT_TRUE(manager.cancel(b));
    release.set_value();
    json::Value b_terminal = b_events.waitTerminal();
    EXPECT_EQ(b_terminal.get("type").asString(), "cancelled");
    for (const json::Value &event : b_events.events())
        EXPECT_NE(event.get("type").asString(), "started");
    ASSERT_EQ(a_events.waitTerminal().get("type").asString(),
              "result");
    EXPECT_FALSE(manager.cancel(b)); // already terminal

    // Mid-job cancellation, deterministically: the sink cancels the
    // job the moment its session-build progress event appears, so
    // the enumeration stage observes the flag via its cancel hook.
    std::shared_ptr<Collector> collector =
        std::make_shared<Collector>();
    JobManager *mgr = &manager;
    EventSink cancelling_sink =
        [collector, mgr](const json::Value &event) {
            collector->sink()(event);
            if (event.get("type").asString() == "progress" &&
                event.get("phase").asString() == "session")
                mgr->cancel(static_cast<uint64_t>(
                    event.get("job").asInt()));
        };
    uint64_t c = manager.submit(makeRequest("enumerate", 103),
                                cancelling_sink);
    json::Value c_terminal = collector->waitTerminal();
    EXPECT_EQ(c_terminal.get("type").asString(), "cancelled");
    auto info = manager.status(c);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, "cancelled");
}

// ---------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------

TEST(JobManager, QueueBoundRejectsWithExplicitBusyFrame)
{
    SessionCache sessions;
    JobManager manager(sessions, 1, /*queue_bound=*/1);

    // Park the single worker inside job A so the queue state below
    // is deterministic.
    std::promise<void> a_started;
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    Collector a_events;
    EventSink a_sink = [inner = a_events.sink(), &a_started,
                        released](const json::Value &event) {
        inner(event);
        if (event.get("type").asString() == "started") {
            a_started.set_value();
            released.wait();
        }
    };
    manager.submit(makeRequest("enumerate", 301), a_sink);
    a_started.get_future().wait(); // A runs; the queue is empty

    Collector b_events;
    manager.submit(makeRequest("enumerate", 301), b_events.sink());

    // B fills the bound: C must be rejected immediately with an
    // explicit busy error frame, not silently queued or dropped.
    Collector c_events;
    uint64_t c = manager.submit(makeRequest("enumerate", 301),
                                c_events.sink());
    json::Value rejected = c_events.waitTerminal();
    EXPECT_EQ(rejected.get("type").asString(), "error");
    EXPECT_TRUE(rejected.get("busy").asBool());
    EXPECT_NE(rejected.get("message").asString().find("busy"),
              std::string::npos);
    auto info = manager.status(c);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, "rejected");
    EXPECT_FALSE(manager.cancel(c)); // already terminal

    release.set_value();
    EXPECT_EQ(b_events.waitTerminal().get("type").asString(),
              "result");
    EXPECT_EQ(a_events.waitTerminal().get("type").asString(),
              "result");

    // The rejection was not sticky: with the queue drained the next
    // submit is admitted normally.
    Collector d_events;
    manager.submit(makeRequest("enumerate", 301), d_events.sink());
    EXPECT_EQ(d_events.waitTerminal().get("type").asString(),
              "result");
}

TEST(JobManager, DequeueIsRoundRobinAcrossClients)
{
    SessionCache sessions;
    JobManager manager(sessions, 1, 16);

    std::mutex order_mutex;
    std::vector<int> order;
    auto tagging = [&](Collector &collector, int tag) {
        return EventSink([inner = collector.sink(), &order_mutex,
                          &order, tag](const json::Value &event) {
            if (event.get("type").asString() == "started") {
                std::lock_guard<std::mutex> lock(order_mutex);
                order.push_back(tag);
            }
            inner(event);
        });
    };

    // Park the worker inside A (client 1) while the backlog forms.
    std::promise<void> a_started;
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    Collector a_events;
    EventSink a_sink = [inner = a_events.sink(), &a_started,
                        released](const json::Value &event) {
        inner(event);
        if (event.get("type").asString() == "started") {
            a_started.set_value();
            released.wait();
        }
    };
    manager.submit(makeRequest("enumerate", 311), a_sink,
                   /*client=*/1);
    a_started.get_future().wait();

    Collector b_events;
    Collector e_events;
    Collector c_events;
    manager.submit(makeRequest("enumerate", 311),
                   tagging(b_events, 1), /*client=*/1);
    manager.submit(makeRequest("enumerate", 311),
                   tagging(e_events, 2), /*client=*/1);
    manager.submit(makeRequest("enumerate", 311),
                   tagging(c_events, 3), /*client=*/2);
    release.set_value();
    b_events.waitTerminal();
    e_events.waitTerminal();
    c_events.waitTerminal();
    a_events.waitTerminal();

    // Global FIFO would drain client 1's backlog (B, then E) before
    // client 2 ever started; round-robin interleaves: B, C, E.
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

// ---------------------------------------------------------------
// Daemon over a real unix socket
// ---------------------------------------------------------------

namespace
{

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendFrame(int fd, const json::Value &message)
{
    const std::string wire = encodeFrame(message);
    size_t off = 0;
    while (off < wire.size()) {
        ssize_t n = ::send(fd, wire.data() + off, wire.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
readEvent(int fd, FrameReader &reader, json::Value &event)
{
    std::string payload;
    char buf[64 * 1024];
    while (true) {
        FrameReader::Status status = reader.next(payload);
        if (status == FrameReader::Status::Ready) {
            Result<json::Value> parsed = json::parse(payload);
            if (!parsed.ok())
                return false;
            event = parsed.take();
            return true;
        }
        if (status == FrameReader::Status::Error)
            return false;
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return false;
        reader.feed(buf, static_cast<size_t>(n));
    }
}

std::string
socketPath()
{
    // Short and unique: unix socket paths cap at ~100 chars.
    return "/tmp/archval_test_" + std::to_string(::getpid()) +
           ".sock";
}

} // namespace

TEST(Daemon, ConcurrentClientsGetByteIdenticalResults)
{
    const std::string path = socketPath();
    Daemon::Options options;
    options.unixPath = path;
    options.workers = 2;
    Daemon daemon(options);
    ASSERT_EQ(daemon.start(), "");

    constexpr int kClients = 4;
    std::vector<std::string> plays(kClients);
    std::vector<std::string> verdicts(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            int fd = connectUnix(path);
            ASSERT_GE(fd, 0);
            json::Value request = json::Value::object();
            request.set("verb", "replay");
            request.set("threads", static_cast<int64_t>(2));
            ASSERT_TRUE(sendFrame(fd, request));
            FrameReader reader;
            json::Value event;
            while (readEvent(fd, reader, event)) {
                const std::string &type =
                    event.get("type").asString();
                if (type == "result") {
                    plays[i] = event.get("plays").serialize();
                    verdicts[i] =
                        event.get("verdict").asString();
                    break;
                }
                ASSERT_NE(type, "error")
                    << event.get("message").asString();
                ASSERT_NE(type, "cancelled");
            }
            ::close(fd);
        });
    }
    for (std::thread &t : clients)
        t.join();

    for (int i = 0; i < kClients; ++i) {
        EXPECT_EQ(verdicts[i], "ok") << "client " << i;
        ASSERT_FALSE(plays[i].empty()) << "client " << i;
        EXPECT_EQ(plays[i], plays[0]) << "client " << i;
    }
    // All four requests shared one session.
    EXPECT_EQ(daemon.sessions().stats().sessions, 1u);
    EXPECT_GE(daemon.sessions().stats().hits, 3u);

    daemon.stop();
    daemon.wait();
}

TEST(Daemon, ControlVerbsAndProtocolDamage)
{
    const std::string path = socketPath() + "2";
    Daemon::Options options;
    options.unixPath = path;
    options.workers = 1;
    Daemon daemon(options);
    ASSERT_EQ(daemon.start(), "");

    // Normal control round-trip.
    int fd = connectUnix(path);
    ASSERT_GE(fd, 0);
    json::Value ping = json::Value::object();
    ping.set("verb", "ping");
    ASSERT_TRUE(sendFrame(fd, ping));
    FrameReader reader;
    json::Value event;
    ASSERT_TRUE(readEvent(fd, reader, event));
    EXPECT_EQ(event.get("type").asString(), "pong");

    json::Value status = json::Value::object();
    status.set("verb", "status");
    status.set("job", static_cast<int64_t>(999));
    ASSERT_TRUE(sendFrame(fd, status));
    ASSERT_TRUE(readEvent(fd, reader, event));
    EXPECT_EQ(event.get("type").asString(), "error");
    ::close(fd);

    // A frame with a hostile length prefix fails only that
    // connection: one error frame, then EOF.
    int bad = connectUnix(path);
    ASSERT_GE(bad, 0);
    const unsigned char hostile[] = {0xff, 0xff, 0xff, 0x7f, 'x'};
    ASSERT_EQ(::send(bad, hostile, sizeof(hostile), MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(hostile)));
    FrameReader bad_reader;
    ASSERT_TRUE(readEvent(bad, bad_reader, event));
    EXPECT_EQ(event.get("type").asString(), "error");
    char drain[256];
    EXPECT_LE(::recv(bad, drain, sizeof(drain), 0), 0); // EOF
    ::close(bad);

    // Garbage JSON in a well-formed frame: same containment.
    int garbage = connectUnix(path);
    ASSERT_GE(garbage, 0);
    const std::string wire = encodeFrame(std::string("{not json"));
    ASSERT_TRUE(::send(garbage, wire.data(), wire.size(),
                       MSG_NOSIGNAL) ==
                static_cast<ssize_t>(wire.size()));
    FrameReader garbage_reader;
    ASSERT_TRUE(readEvent(garbage, garbage_reader, event));
    EXPECT_EQ(event.get("type").asString(), "error");
    ::close(garbage);

    // The daemon survived both and still answers.
    int again = connectUnix(path);
    ASSERT_GE(again, 0);
    ASSERT_TRUE(sendFrame(again, ping));
    FrameReader again_reader;
    ASSERT_TRUE(readEvent(again, again_reader, event));
    EXPECT_EQ(event.get("type").asString(), "pong");

    // Shutdown verb stops the daemon.
    json::Value shutdown = json::Value::object();
    shutdown.set("verb", "shutdown");
    ASSERT_TRUE(sendFrame(again, shutdown));
    ASSERT_TRUE(readEvent(again, again_reader, event));
    EXPECT_EQ(event.get("type").asString(), "shutting_down");
    ::close(again);
    daemon.wait();
}

TEST(Daemon, WrongTypedDesignFieldIsBadRequestFrame)
{
    const std::string path = socketPath() + "3";
    Daemon::Options options;
    options.unixPath = path;
    options.workers = 1;
    Daemon daemon(options);
    ASSERT_EQ(daemon.start(), "");

    int fd = connectUnix(path);
    ASSERT_GE(fd, 0);
    // Sent as raw text: re-serializing a parsed Value would print
    // the integral double back as `500000` and lose the very typing
    // mistake under test.
    const std::string wire = encodeFrame(std::string(
        "{\"verb\": \"replay\", \"design\": {\"maxStates\": "
        "500000.0}}"));
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));

    // The double-typed field answers with a `bad request` error
    // frame naming the field — not a silently defaulted job.
    FrameReader reader;
    json::Value event;
    ASSERT_TRUE(readEvent(fd, reader, event));
    EXPECT_EQ(event.get("type").asString(), "error");
    EXPECT_NE(event.get("message").asString().find("maxStates"),
              std::string::npos);

    // The connection and the daemon both survive the bad request.
    json::Value ping = json::Value::object();
    ping.set("verb", "ping");
    ASSERT_TRUE(sendFrame(fd, ping));
    ASSERT_TRUE(readEvent(fd, reader, event));
    EXPECT_EQ(event.get("type").asString(), "pong");
    ::close(fd);

    daemon.stop();
    daemon.wait();
}

// ---------------------------------------------------------------
// Session persistence across daemon restarts
// ---------------------------------------------------------------

namespace
{

/** Remove every file in @p dir, then the directory itself. */
void
removeTree(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (d) {
        while (dirent *entry = ::readdir(d)) {
            const std::string name = entry->d_name;
            if (name != "." && name != "..")
                ::unlink((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

std::string
makeStoreDir(const char *tag)
{
    std::string tmpl = ::testing::TempDir() + "/archval-store-" +
                       tag + "-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    EXPECT_NE(::mkdtemp(buf.data()), nullptr);
    return std::string(buf.data());
}

} // namespace

TEST(SessionPersistence, DaemonRestartReplaysWarmByteIdentical)
{
    const std::string store = makeStoreDir("restart");
    const std::string path = socketPath() + "p";

    struct Run
    {
        std::string plays;
        int64_t cycles = 0;
        int64_t warmHits = 0;
        int64_t traces = 0;
    };

    // One full daemon lifetime: serve one replay job over a real
    // socket, then stop — the moral equivalent of a restart.
    auto runReplay = [&](bool expect_restore) {
        Run run;
        Daemon::Options options;
        options.unixPath = path;
        options.workers = 2;
        options.sessionDir = store;
        Daemon daemon(options);
        EXPECT_EQ(daemon.start(), "");
        int fd = connectUnix(path);
        EXPECT_GE(fd, 0);
        json::Value request = json::Value::object();
        request.set("verb", "replay");
        request.set("threads", static_cast<int64_t>(2));
        EXPECT_TRUE(sendFrame(fd, request));
        FrameReader reader;
        json::Value event;
        while (readEvent(fd, reader, event)) {
            const std::string &type = event.get("type").asString();
            EXPECT_NE(type, "error")
                << event.get("message").asString();
            if (type == "result") {
                run.plays = event.get("plays").serialize();
                run.cycles = event.get("simulatedCycles").asInt();
                run.warmHits = event.get("warm").get("hits").asInt();
                run.traces = event.get("traces").asInt();
                break;
            }
        }
        ::close(fd);
        daemon.stop();
        daemon.wait(); // workers joined: the post-job save is done
        const SessionCache::Stats stats = daemon.sessions().stats();
        if (expect_restore)
            EXPECT_GE(stats.restoreHits, 1u);
        else
            EXPECT_GE(stats.saves, 1u);
        return run;
    };

    const Run cold = runReplay(false);
    ASSERT_FALSE(cold.plays.empty());
    EXPECT_EQ(cold.warmHits, 0);
    EXPECT_GT(cold.cycles, 0);

    const Run warm = runReplay(true);
    // The headline guarantee: after a restart on the same store the
    // results are byte-identical and >= 90% of the cold run's
    // simulated cycles are avoided (every trace hits the restored
    // warm cache).
    EXPECT_EQ(warm.plays, cold.plays);
    EXPECT_GT(warm.traces, 0);
    EXPECT_EQ(warm.warmHits, warm.traces);
    EXPECT_LE(warm.cycles * 10, cold.cycles)
        << "warm=" << warm.cycles << " cold=" << cold.cycles;

    removeTree(store);
}

TEST(SessionPersistence, DamagedStoreDegradesToColdRebuild)
{
    const std::string store = makeStoreDir("damage");
    std::string store_file;
    std::string cold_plays;

    {
        SessionCache sessions(4, store);
        JobManager manager(sessions, 2);
        Collector events;
        manager.submit(makeRequest("replay"), events.sink());
        json::Value result = events.waitTerminal();
        ASSERT_EQ(result.get("type").asString(), "result")
            << result.get("message").asString();
        cold_plays = result.get("plays").serialize();
        manager.shutdown(); // workers joined: the save is on disk
        EXPECT_GE(sessions.stats().saves, 1u);
        store_file =
            sessions.store().pathFor(DesignSpec{}.fingerprint());
    }
    struct stat st;
    ASSERT_EQ(::stat(store_file.c_str(), &st), 0);
    ASSERT_GT(st.st_size, 0);

    // Flip one bit in the middle of the store: the restore must be
    // counted as a failure and the session rebuilt cold — with
    // byte-identical results and no crash.
    {
        int fd = ::open(store_file.c_str(), O_RDWR);
        ASSERT_GE(fd, 0);
        uint8_t byte = 0;
        ASSERT_EQ(::pread(fd, &byte, 1, st.st_size / 2), 1);
        byte ^= 0x40;
        ASSERT_EQ(::pwrite(fd, &byte, 1, st.st_size / 2), 1);
        ::close(fd);

        SessionCache sessions(4, store);
        JobManager manager(sessions, 2);
        Collector events;
        manager.submit(makeRequest("replay"), events.sink());
        json::Value result = events.waitTerminal();
        ASSERT_EQ(result.get("type").asString(), "result")
            << result.get("message").asString();
        EXPECT_EQ(result.get("plays").serialize(), cold_plays);
        EXPECT_EQ(result.get("warm").get("hits").asInt(), 0);
        EXPECT_GE(sessions.stats().restoreFailures, 1u);
        manager.shutdown(); // rewrites a clean store on its way out
    }

    // Truncation mid-record: same degradation posture.
    ASSERT_EQ(::stat(store_file.c_str(), &st), 0);
    ASSERT_EQ(::truncate(store_file.c_str(), st.st_size / 3), 0);
    {
        SessionCache sessions(4, store);
        JobManager manager(sessions, 2);
        Collector events;
        manager.submit(makeRequest("replay"), events.sink());
        json::Value result = events.waitTerminal();
        ASSERT_EQ(result.get("type").asString(), "result")
            << result.get("message").asString();
        EXPECT_EQ(result.get("plays").serialize(), cold_plays);
        EXPECT_GE(sessions.stats().restoreFailures, 1u);
        manager.shutdown();
    }

    removeTree(store);
}

TEST(SessionPersistence, SizeCapEvictsLruAndEvictedRebuildsCold)
{
    const std::string store = makeStoreDir("cap");

    // Uncapped first lifetime: persist session A (vectorSeed 1) and
    // learn its on-disk size.
    std::string file_a, plays_a;
    {
        SessionCache sessions(4, store);
        JobManager manager(sessions, 2);
        Collector events;
        manager.submit(makeRequest("replay", 1), events.sink());
        json::Value result = events.waitTerminal();
        ASSERT_EQ(result.get("type").asString(), "result")
            << result.get("message").asString();
        plays_a = result.get("plays").serialize();
        manager.shutdown(); // workers joined: the save is on disk
        EXPECT_GE(sessions.stats().saves, 1u);
        file_a = sessions.store().pathFor(
            makeRequest("replay", 1).design.fingerprint());
    }
    struct stat st;
    ASSERT_EQ(::stat(file_a.c_str(), &st), 0);
    ASSERT_GT(st.st_size, 0);

    // Capped second lifetime: saving session B (vectorSeed 2) pushes
    // the directory past the cap, so A — the least recently used
    // file — is evicted while B, just written, must survive even
    // though the directory may still exceed the cap with only B in
    // it (a single oversize session always persists).
    const size_t cap = static_cast<size_t>(st.st_size) +
                       static_cast<size_t>(st.st_size) / 2;
    std::string file_b;
    {
        SessionCache sessions(4, store, cap);
        JobManager manager(sessions, 2);
        Collector events;
        manager.submit(makeRequest("replay", 2), events.sink());
        json::Value result = events.waitTerminal();
        ASSERT_EQ(result.get("type").asString(), "result")
            << result.get("message").asString();
        manager.shutdown();
        EXPECT_GE(sessions.store().stats().evictions, 1u);
        file_b = sessions.store().pathFor(
            makeRequest("replay", 2).design.fingerprint());
    }
    EXPECT_NE(::stat(file_a.c_str(), &st), 0)
        << "LRU file survived the cap";
    EXPECT_EQ(::stat(file_b.c_str(), &st), 0)
        << "just-written file was evicted";

    // Eviction is not an error state: the evicted fingerprint's next
    // job is a restore miss that rebuilds cold — byte-identical to
    // the original run, no warm hits, no crash.
    {
        SessionCache sessions(4, store, cap);
        JobManager manager(sessions, 2);
        Collector events;
        manager.submit(makeRequest("replay", 1), events.sink());
        json::Value result = events.waitTerminal();
        ASSERT_EQ(result.get("type").asString(), "result")
            << result.get("message").asString();
        EXPECT_EQ(result.get("plays").serialize(), plays_a);
        EXPECT_EQ(result.get("warm").get("hits").asInt(), 0);
        EXPECT_GE(sessions.store().stats().restoreMisses, 1u);
        manager.shutdown();
    }

    removeTree(store);
}

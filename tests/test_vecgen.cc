/**
 * @file
 * Tests for the vector generator: stream/cycle accounting, class
 * agreement between tour edges and generated instructions, conflict
 * address constraints, squash filtering, force-script rendering.
 */

#include <gtest/gtest.h>

#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"
#include "vecgen/vector_gen.hh"

namespace archval::vecgen
{
namespace
{

using rtl::PpChoiceVar;
using rtl::PpConfig;
using rtl::PpFsmModel;

/** Shared enumeration of the small preset. */
class VecGenFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        model_ = new PpFsmModel(PpConfig::smallPreset());
        murphi::Enumerator enumerator(*model_);
        graph_ = new graph::StateGraph(enumerator.runOrThrow());
        graph::TourGenerator tours(*graph_);
        traces_ = new std::vector<graph::Trace>(tours.run());
    }

    static void
    TearDownTestSuite()
    {
        delete traces_;
        delete graph_;
        delete model_;
        traces_ = nullptr;
        graph_ = nullptr;
        model_ = nullptr;
    }

    static PpFsmModel *model_;
    static graph::StateGraph *graph_;
    static std::vector<graph::Trace> *traces_;
};

PpFsmModel *VecGenFixture::model_ = nullptr;
graph::StateGraph *VecGenFixture::graph_ = nullptr;
std::vector<graph::Trace> *VecGenFixture::traces_ = nullptr;

TEST_F(VecGenFixture, TourCoversGraph)
{
    EXPECT_EQ(checkTourCoverage(*graph_, *traces_), "");
    EXPECT_GT(traces_->size(), 0u);
}

TEST_F(VecGenFixture, CycleAndInstructionAccounting)
{
    VectorGenerator generator(*model_, 7);
    for (size_t i = 0; i < std::min<size_t>(traces_->size(), 10); ++i) {
        TestTrace trace =
            generator.generate(*graph_, (*traces_)[i], i);
        EXPECT_EQ(trace.cycles.size(), (*traces_)[i].edges.size());
        EXPECT_EQ(trace.instructions, (*traces_)[i].instructions);
        EXPECT_EQ(trace.fetchStream.size(), trace.instructions);
        // No branches in the small preset: nothing squashed.
        EXPECT_EQ(trace.retiredStream.size(), trace.fetchStream.size());
    }
}

TEST_F(VecGenFixture, FetchClassesMatchTourChoices)
{
    VectorGenerator generator(*model_, 11);
    auto codec = model_->makeChoiceCodec();
    const auto &tour = (*traces_)[0];
    TestTrace trace = generator.generate(*graph_, tour, 0);

    size_t fetch_pos = 0;
    for (size_t i = 0; i < tour.edges.size(); ++i) {
        const auto &edge = graph_->edge(tour.edges[i]);
        auto choice = codec.decode(edge.choiceCode);
        uint32_t ihit =
            choice[static_cast<size_t>(PpChoiceVar::IHit)];
        if (!ihit)
            continue; // no fetch this cycle
        ASSERT_LT(fetch_pos, trace.fetchStream.size());
        pp::InstrClass expected = static_cast<pp::InstrClass>(
            choice[static_cast<size_t>(PpChoiceVar::FetchClass)] + 1);
        EXPECT_EQ(pp::classOfWord(trace.fetchStream[fetch_pos]),
                  expected)
            << "cycle " << i;
        fetch_pos += 1 + choice[static_cast<size_t>(PpChoiceVar::Dual)];
    }
    EXPECT_EQ(fetch_pos, trace.fetchStream.size());
}

TEST_F(VecGenFixture, InboxWordPerRetiredSwitch)
{
    VectorGenerator generator(*model_, 13);
    for (size_t i = 0; i < std::min<size_t>(traces_->size(), 20); ++i) {
        TestTrace trace =
            generator.generate(*graph_, (*traces_)[i], i);
        size_t switches = 0;
        for (uint32_t word : trace.retiredStream) {
            if (pp::classOfWord(word) == pp::InstrClass::Switch)
                ++switches;
        }
        EXPECT_EQ(trace.inbox.size(), switches);
    }
}

TEST_F(VecGenFixture, MemOpsUseR0BaseWithinDmem)
{
    VectorGenerator generator(*model_, 17);
    TestTrace trace = generator.generate(*graph_, (*traces_)[0], 0);
    const uint32_t dmem_bytes =
        model_->config().machine.dmemWords * 4;
    for (uint32_t word : trace.fetchStream) {
        auto d = pp::decode(word);
        if (d.cls() == pp::InstrClass::Load ||
            d.cls() == pp::InstrClass::Store) {
            EXPECT_EQ(d.rs, 0);
            EXPECT_GE(d.imm, 0);
            EXPECT_LT(static_cast<uint32_t>(d.imm), dmem_bytes);
            EXPECT_EQ(d.imm % 4, 0);
        }
    }
}

TEST_F(VecGenFixture, DeterministicForSameSeed)
{
    VectorGenerator a(*model_, 99), b(*model_, 99);
    TestTrace ta = a.generate(*graph_, (*traces_)[0], 0);
    TestTrace tb = b.generate(*graph_, (*traces_)[0], 0);
    EXPECT_EQ(ta.fetchStream, tb.fetchStream);
    EXPECT_EQ(ta.inbox, tb.inbox);
}

TEST_F(VecGenFixture, DifferentSeedsDifferInOperands)
{
    VectorGenerator a(*model_, 1), b(*model_, 2);
    TestTrace ta = a.generate(*graph_, (*traces_)[0], 0);
    TestTrace tb = b.generate(*graph_, (*traces_)[0], 0);
    // Same classes, same length; operand bits should differ somewhere.
    ASSERT_EQ(ta.fetchStream.size(), tb.fetchStream.size());
    bool any_diff = false;
    for (size_t i = 0; i < ta.fetchStream.size(); ++i)
        any_diff |= ta.fetchStream[i] != tb.fetchStream[i];
    if (!ta.fetchStream.empty()) {
        EXPECT_TRUE(any_diff);
    }
}

TEST_F(VecGenFixture, ForceScriptMentionsSignalsAndInstructions)
{
    VectorGenerator generator(*model_, 23);
    TestTrace trace = generator.generate(*graph_, (*traces_)[0], 0);
    std::string script = generator.renderForceScript(trace);
    EXPECT_NE(script.find("force icache.hit"), std::string::npos);
    EXPECT_NE(script.find("initial begin"), std::string::npos);
    EXPECT_NE(script.find("// fetch"), std::string::npos);
}

TEST_F(VecGenFixture, StatsAccumulate)
{
    VectorGenerator generator(*model_, 29);
    generator.generate(*graph_, (*traces_)[0], 0);
    generator.generate(*graph_, (*traces_)[1 % traces_->size()], 1);
    EXPECT_EQ(generator.stats().traces, 2u);
    EXPECT_GT(generator.stats().cycles, 0u);
}

} // namespace
} // namespace archval::vecgen

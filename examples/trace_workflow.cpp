/**
 * @file
 * Domain example: the two-team workflow the paper ran at Stanford —
 * one run *generates* the vector files, later runs *replay* them
 * against the implementation under test (here: with any chosen bug
 * injected), re-using the same trace set.
 *
 *   trace_workflow generate <dir> [small|full] [limit N]
 *   trace_workflow replay <dir> [bug N]...
 *   trace_workflow demo            (generate + replay in a tmp dir)
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/validation_flow.hh"
#include "harness/vector_player.hh"
#include "support/strings.hh"
#include "vecgen/trace_io.hh"
#include "support/telemetry.hh"

using namespace archval;

namespace
{

int
generate(const std::string &dir, const rtl::PpConfig &config,
         uint64_t limit)
{
    core::FlowOptions options;
    options.tour.maxInstructionsPerTrace = limit;
    core::PpValidationFlow flow(config, options);
    const auto &vectors = flow.makeVectors();

    auto written = vecgen::writeTraceSet(vectors, dir);
    if (!written.ok()) {
        std::fprintf(stderr, "write failed: %s\n",
                     written.errorMessage().c_str());
        return 1;
    }
    std::printf("generated %zu trace file(s) in %s\n",
                written.value(), dir.c_str());
    std::printf("  graph: %s states, %s edges; %s instructions "
                "total\n",
                withCommas(flow.enumStats().numStates).c_str(),
                withCommas(flow.enumStats().numEdges).c_str(),
                withCommas(flow.tourStats().totalInstructions)
                    .c_str());
    return 0;
}

int
replay(const std::string &dir, const rtl::PpConfig &config,
       const rtl::BugSet &bugs)
{
    auto traces = vecgen::readTraceSet(dir);
    if (!traces.ok()) {
        std::fprintf(stderr, "read failed: %s\n",
                     traces.errorMessage().c_str());
        return 1;
    }

    harness::VectorPlayer player(config);
    uint64_t diverged = 0, cycles = 0;
    std::string first_diff;
    for (const auto &trace : traces.value()) {
        auto result = player.play(trace, bugs);
        cycles += result.cycles;
        if (result.diverged) {
            ++diverged;
            if (first_diff.empty()) {
                first_diff = formatString(
                    "trace %zu (%s): %s", trace.traceIndex,
                    vecgen::traceFileName(trace.traceIndex).c_str(),
                    result.diff.c_str());
            }
        }
    }
    std::printf("replayed %zu trace(s), %s cycles: %s\n",
                traces.value().size(), withCommas(cycles).c_str(),
                diverged ? formatString("%llu DIVERGED",
                                        (unsigned long long)diverged)
                               .c_str()
                         : "all clean");
    if (!first_diff.empty())
        std::printf("  first divergence: %s\n", first_diff.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    archval::telemetry::initTelemetryFromEnv();
    std::string mode = argc > 1 ? argv[1] : "demo";
    rtl::PpConfig config = rtl::PpConfig::smallPreset();
    rtl::BugSet bugs;
    std::string dir;
    uint64_t limit = 10'000;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "small") {
            config = rtl::PpConfig::smallPreset();
        } else if (arg == "full") {
            config = rtl::PpConfig::fullPreset();
        } else if (arg == "limit" && i + 1 < argc) {
            limit = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "bug" && i + 1 < argc) {
            unsigned n = std::strtoul(argv[++i], nullptr, 0);
            if (n >= 1 && n <= rtl::numBugs)
                bugs.set(n - 1);
        } else if (dir.empty()) {
            dir = arg;
        }
    }

    if (mode == "generate") {
        if (dir.empty()) {
            std::fprintf(stderr, "generate needs a directory\n");
            return 2;
        }
        return generate(dir, config, limit);
    }
    if (mode == "replay") {
        if (dir.empty()) {
            std::fprintf(stderr, "replay needs a directory\n");
            return 2;
        }
        return replay(dir, config, bugs);
    }
    if (mode == "demo") {
        std::string tmp =
            (std::filesystem::temp_directory_path() /
             "archval_trace_demo")
                .string();
        std::filesystem::remove_all(tmp);
        std::printf("== generate ==\n");
        if (int rc = generate(tmp, config, limit); rc != 0)
            return rc;
        std::printf("\n== replay (healthy design) ==\n");
        if (int rc = replay(tmp, config, {}); rc != 0)
            return rc;
        std::printf("\n== replay (bug #6 injected) ==\n");
        rtl::BugSet demo_bugs;
        demo_bugs.set(
            static_cast<size_t>(rtl::BugId::Bug6StaleConflict));
        int rc = replay(tmp, config, demo_bugs);
        std::filesystem::remove_all(tmp);
        return rc;
    }
    std::fprintf(stderr,
                 "usage: %s generate|replay|demo <dir> [small|full] "
                 "[limit N] [bug N]\n",
                 argv[0]);
    return 2;
}

/**
 * @file
 * Quickstart: the whole methodology in two bites.
 *
 * Part 1 runs the generic pipeline on a tiny annotated Verilog
 * design: translate -> enumerate -> transition tours.
 *
 * Part 2 runs the full Protocol Processor flow: enumerate the PP
 * control, generate covering test vectors, inject one of the
 * published FLASH PP bugs, and watch the vectors expose it while the
 * bug-free design runs clean.
 */

#include <cstdio>

#include "core/validation_flow.hh"
#include "hdl/translate.hh"
#include "rtl/faults.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

using namespace archval;

namespace
{

const char *trafficLight = R"(
// A traffic light: green (with a timer) -> yellow -> red -> green.
// The pedestrian request is a free input the enumerator drives with
// every value combination.
module traffic(clk, walk_req);
  input clk;
  input walk_req;
  reg [1:0] state;   // vfsm state state reset 0
  reg [1:0] timer;   // vfsm state timer reset 0

  always @(posedge clk) begin
    case (state)
      2'd0: begin
        if (walk_req && timer == 2'd3) begin
          state <= 2'd1;
          timer <= 2'd0;
        end else if (timer != 2'd3)
          timer <= timer + 2'd1;
      end
      2'd1: state <= 2'd2;
      2'd2: begin
        if (timer == 2'd2) begin
          state <= 2'd0;
          timer <= 2'd0;
        end else
          timer <= timer + 2'd1;
      end
      default: state <= 2'd0;
    endcase
  end
endmodule
)";

} // namespace

int
main()
{
    archval::telemetry::initTelemetryFromEnv();
    std::printf("=== Part 1: annotated Verilog -> FSM -> tours ===\n");
    auto translated = hdl::translateSource(trafficLight, "traffic");
    if (!translated.ok()) {
        std::fprintf(stderr, "translate failed: %s\n",
                     translated.errorMessage().c_str());
        return 1;
    }
    for (const auto &note : translated.value().notes)
        std::printf("note: %s\n", note.c_str());

    core::ModelExploration exploration =
        core::exploreModel(*translated.value().model);
    std::printf("%s\n", exploration.render().c_str());

    std::printf("=== Part 2: Protocol Processor validation ===\n");
    core::PpValidationFlow flow(rtl::PpConfig::smallPreset());
    flow.enumerate();
    std::printf("PP control: %s states, %s edges\n",
                withCommas(flow.enumStats().numStates).c_str(),
                withCommas(flow.enumStats().numEdges).c_str());

    core::FlowReport clean = flow.run();
    std::printf("\nbug-free design:\n%s", clean.render().c_str());

    rtl::BugSet bugs;
    bugs.set(static_cast<size_t>(rtl::BugId::Bug5MembusGlitch));
    core::FlowOptions options;
    core::FlowReport buggy = flow.simulate(bugs);
    std::printf("\nwith PP bug #5 injected (%s):\n%s",
                rtl::bugSummary(rtl::BugId::Bug5MembusGlitch),
                buggy.render().c_str());

    std::printf("\nverdict: clean design %s, buggy design %s\n",
                clean.bugFound() ? "DIVERGED (unexpected!)"
                                 : "matches the specification",
                buggy.bugFound() ? "caught by the generated vectors"
                                 : "NOT caught (unexpected!)");
    return clean.bugFound() || !buggy.bugFound();
}

/**
 * @file
 * Domain example: running a coverage-guided fuzz campaign.
 *
 * Walks through the third stimulus family end to end: seed a corpus
 * from tour prefixes and random walks, watch the single-threaded
 * engine admit candidates on arc/architectural novelty, then shard
 * the same loop across four workers with the CampaignRunner and hunt
 * an injected Table 2.1 bug — deterministically for a fixed
 * (seed, worker-count) pair.
 */

#include <cstdio>

#include "fuzz/campaign.hh"
#include "fuzz/engine.hh"
#include "murphi/enumerator.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

using namespace archval;

int
main()
{
    archval::telemetry::initTelemetryFromEnv();
    rtl::PpConfig config = rtl::PpConfig::smallPreset();
    rtl::PpFsmModel model(config);
    // Enumerate with the parallel sharded search; the graph is
    // bit-identical for any worker count, so everything downstream
    // (tours, vectors, the campaign itself) stays reproducible.
    murphi::EnumOptions enum_options;
    enum_options.numThreads = 4;
    murphi::Enumerator enumerator(model, enum_options);
    auto graph = enumerator.runOrThrow();
    graph::TourGenerator tour_gen(graph);
    auto tours = tour_gen.run();
    std::printf("PP control graph: %s states, %s edges (%u enum "
                "workers); %zu tour trace(s)\n\n",
                withCommas(graph.numStates()).c_str(),
                withCommas(graph.numEdges()).c_str(),
                enumerator.stats().numThreads, tours.size());

    // --- 1. The single-threaded engine: coverage feedback at work.
    std::printf("engine (1 thread, bug-free): corpus growth under "
                "feedback\n");
    fuzz::FuzzEngine engine(config, model, graph, /*seed=*/1);
    engine.seedCorpus(tours);
    std::printf("  seeded corpus: %zu entries\n",
                engine.corpus().size());
    for (int chunk = 1; chunk <= 4; ++chunk) {
        engine.run(rtl::BugSet{}, 5'000);
        const fuzz::FuzzStats &stats = engine.stats();
        std::printf("  after %7s instrs: %4llu candidates, corpus "
                    "%3zu, arcs %4llu/%llu (arc-novel %llu, "
                    "state-novel %llu)\n",
                    withCommas(stats.instructions).c_str(),
                    (unsigned long long)stats.iterations,
                    engine.corpus().size(),
                    (unsigned long long)
                        engine.coverage().coveredEdges(),
                    (unsigned long long)graph.numEdges(),
                    (unsigned long long)stats.arcNovel,
                    (unsigned long long)stats.stateNovel);
    }

    // --- 2. The parallel campaign hunting an injected bug.
    std::printf("\ncampaign (4 workers) vs bug #3 (conflict-stall "
                "address):\n");
    fuzz::CampaignOptions options;
    options.workers = 4;
    options.roundInstructions = 5'000;
    options.maxRounds = 6;
    options.seed = 11;
    rtl::BugSet bugs;
    bugs.set(static_cast<size_t>(rtl::BugId::Bug3ConflictAddr));

    fuzz::CampaignRunner runner(config, model, graph, options);
    fuzz::CampaignResult result = runner.run(bugs, tours);
    if (result.detected) {
        std::printf("  detected @ %s instrs (round %u, worker %u)\n"
                    "  %s\n",
                    withCommas(result.instructions).c_str(),
                    result.detectionRound, result.detectionWorker,
                    result.detail.c_str());
    } else {
        std::printf("  not detected within %s instrs\n",
                    withCommas(result.totalInstructions).c_str());
    }
    std::printf("  merged coverage: %s arcs (%.2f%%), %s candidates "
                "played\n",
                withCommas(result.coveredEdges).c_str(),
                100.0 * result.coverageFraction,
                withCommas(result.iterations).c_str());

    // --- 3. Determinism: replaying the campaign is bit-identical.
    fuzz::CampaignRunner replay(config, model, graph, options);
    fuzz::CampaignResult again = replay.run(bugs, tours);
    bool same = again.detected == result.detected &&
                again.instructions == result.instructions &&
                again.detail == result.detail;
    std::printf("\nreplay with the same (seed, workers): %s\n",
                same ? "bit-identical" : "MISMATCH");
    return same && result.detected ? 0 : 1;
}

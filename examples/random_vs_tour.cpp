/**
 * @file
 * Domain example: why transition tours beat random testing.
 *
 * Reproduces the paper's core efficiency argument (Section 1 /
 * Section 3): at equal simulated-instruction budgets, tour vectors
 * cover every control arc while random stimulus leaves a long tail
 * uncovered — and correspondingly, a multiple-event bug is found by
 * the tour within its (small) budget while random stimulus needs far
 * more cycles, if it finds the bug at all.
 */

#include <cstdio>

#include "harness/baselines.hh"
#include "harness/bug_hunt.hh"
#include "harness/coverage.hh"
#include "murphi/enumerator.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

using namespace archval;

int
main()
{
    archval::telemetry::initTelemetryFromEnv();
    rtl::PpConfig config = rtl::PpConfig::smallPreset();
    rtl::PpFsmModel model(config);
    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    std::printf("PP control graph: %s states, %s edges\n\n",
                withCommas(graph.numStates()).c_str(),
                withCommas(graph.numEdges()).c_str());

    // Tour coverage as a function of instruction budget.
    graph::TourGenerator tour_gen(graph);
    auto tours = tour_gen.run();
    harness::CoverageTracker tour_cov(graph);
    for (const auto &trace : tours)
        tour_cov.addTrace(trace);
    uint64_t budget = tour_cov.instructions();

    std::printf("tour: covers 100%% of arcs with %s instructions\n",
                withCommas(budget).c_str());

    // Biased-random stimulus (naturalistic event rates) at multiples
    // of the tour budget.
    std::printf("\n%12s  %14s  %9s\n", "random budget",
                "covered arcs", "coverage");
    for (unsigned factor : {1u, 2u, 4u, 8u, 16u}) {
        harness::BiasedWalker walker(model, graph, 7);
        harness::CoverageTracker cov(graph);
        while (cov.instructions() < budget * factor) {
            auto walk = walker.walk(2'000);
            if (walk.edges.empty())
                break;
            cov.addTrace(walk);
        }
        std::printf("%11ux  %14s  %8.2f%%\n", factor,
                    withCommas(cov.coveredEdges()).c_str(),
                    100.0 * cov.fraction());
    }

    // Bug-detection latency comparison for one bug.
    std::printf("\nbug-detection latency (bug #3, conflict-stall "
                "address):\n");
    vecgen::VectorGenerator generator(model, 42);
    auto vectors = generator.generateAll(graph, tours);
    harness::BugHunt hunt(config, model, graph, vectors);
    auto result =
        hunt.hunt(rtl::BugId::Bug3ConflictAddr, 8 * budget);
    std::printf("%s\n", harness::renderHuntTable({result}).c_str());
    return 0;
}

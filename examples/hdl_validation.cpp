/**
 * @file
 * Domain example: validating an annotated Verilog controller.
 *
 * The design is a two-unit DMA-style handshake: a channel controller
 * that arbitrates two requesters over one shared data port, and a
 * port controller with a busy/service cycle — the "hardware separable
 * into control and datapath with complex interactions" that Section 4
 * says this method generalizes to.
 *
 * The example translates the Verilog, enumerates its control state
 * graph, generates covering transition tours, and prints a sample of
 * the force/release-style script the paper compiles with the
 * simulation model.
 */

#include <cstdio>

#include "core/validation_flow.hh"
#include "hdl/translate.hh"
#include "murphi/enumerator.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

using namespace archval;

namespace
{

const char *dmaDesign = R"(
// Port controller: accepts a grant, is busy for two cycles, then
// signals done.
module port_ctrl(clk, start, done);
  input clk;
  input start;
  output done;
  reg [1:0] state;   // vfsm state state reset 0
  assign done = state == 2'd2;
  always @(posedge clk) begin
    case (state)
      2'd0: if (start) state <= 2'd1;
      2'd1: state <= 2'd2;
      2'd2: state <= 2'd0;
      default: state <= 2'd0;
    endcase
  end
endmodule

// Channel arbiter: two requesters, fixed priority with a fairness
// flip bit; owns the single port.
module arbiter(clk, req0, req1, start, done, grant0, grant1);
  input clk;
  input req0;
  input req1;
  output start;
  input done;
  output grant0;
  output grant1;
  reg [1:0] owner;   // vfsm state owner reset 0   (0=idle,1=ch0,2=ch1)
  reg last;          // vfsm state last reset 0    (fairness)
  assign grant0 = owner == 2'd1;
  assign grant1 = owner == 2'd2;
  assign start = owner != 2'd0 && !done;
  always @(posedge clk) begin
    if (owner == 2'd0) begin
      if (req0 && req1) begin
        if (last) owner <= 2'd1;
        else owner <= 2'd2;
      end else if (req0)
        owner <= 2'd1;
      else if (req1)
        owner <= 2'd2;
    end else if (done) begin
      last <= owner == 2'd1;
      owner <= 2'd0;
    end
  end
endmodule

module dma(clk, req0, req1);
  input clk;
  input req0;
  input req1;
  wire start, done, grant0, grant1;
  arbiter arb (.clk(clk), .req0(req0), .req1(req1), .start(start),
               .done(done), .grant0(grant0), .grant1(grant1));
  port_ctrl port (.clk(clk), .start(start), .done(done));
endmodule
)";

} // namespace

int
main()
{
    archval::telemetry::initTelemetryFromEnv();
    auto translated = hdl::translateSource(dmaDesign, "dma");
    if (!translated.ok()) {
        std::fprintf(stderr, "translate failed: %s\n",
                     translated.errorMessage().c_str());
        return 1;
    }
    const auto &model = *translated.value().model;

    std::printf("translated modules: %s\n", model.name().c_str());
    std::printf("state variables:\n");
    for (const auto &var : model.stateVars())
        std::printf("  %-12s %zu bit(s)\n", var.name.c_str(),
                    var.numBits);
    std::printf("abstract inputs:\n");
    for (const auto &var : model.choiceVars())
        std::printf("  %-12s %u value(s)\n", var.name.c_str(),
                    var.cardinality);

    core::ModelExploration exploration = core::exploreModel(model);
    std::printf("\n%s\n", exploration.render().c_str());

    // Show the edge conditions leaving reset — the transition
    // condition mapping the vectors are made of.
    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    auto codec = model.makeChoiceCodec();
    std::printf("transitions out of reset:\n");
    for (auto e : graph.outEdges(graph.resetState())) {
        const auto &edge = graph.edge(e);
        std::printf("  -> state %-4u when %s\n", edge.dst,
                    model.describeChoice(codec.decode(edge.choiceCode))
                        .c_str());
    }
    return 0;
}

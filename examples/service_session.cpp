/**
 * @file
 * Domain example: a session with the archvald validation service.
 *
 * Boots an in-process daemon on a unix socket, then plays a whole
 * client session against it over the real wire protocol: enumerate
 * the design, replay its vectors cold, replay them again warm (the
 * SessionCache keeps the state graph, tour corpus and replay warm
 * cache alive between requests, so the repeat skips enumeration AND
 * the donor simulation), inject a bug, inspect the job table, and
 * shut the daemon down — all with length-prefixed JSON frames, the
 * same bytes archval_client speaks.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/daemon.hh"
#include "service/protocol.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

using namespace archval;
using service::FrameReader;

namespace
{

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)) != 0)
        return -1;
    return fd;
}

bool
sendFrame(int fd, const json::Value &message)
{
    const std::string wire = service::encodeFrame(message);
    return ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(wire.size());
}

bool
readEvent(int fd, FrameReader &reader, json::Value &event)
{
    std::string payload;
    char buf[64 * 1024];
    while (true) {
        FrameReader::Status status = reader.next(payload);
        if (status == FrameReader::Status::Ready) {
            auto parsed = json::parse(payload);
            if (!parsed.ok())
                return false;
            event = parsed.take();
            return true;
        }
        if (status == FrameReader::Status::Error)
            return false;
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return false;
        reader.feed(buf, static_cast<size_t>(n));
    }
}

/** Submit a job and block for its terminal event. */
json::Value
runJob(int fd, FrameReader &reader, const json::Value &request)
{
    if (!sendFrame(fd, request))
        return {};
    json::Value event;
    while (readEvent(fd, reader, event)) {
        const std::string &type = event.get("type").asString();
        if (type == "result" || type == "error" ||
            type == "cancelled")
            return event;
    }
    return {};
}

} // namespace

int
main()
{
    telemetry::initTelemetryFromEnv();

    // --- 1. Boot the daemon (in-process here; `archvald --socket
    //        PATH` is the same thing as its own process).
    const std::string path =
        "/tmp/archval_example_" + std::to_string(::getpid()) +
        ".sock";
    service::Daemon::Options options;
    options.unixPath = path;
    options.workers = 2;
    service::Daemon daemon(options);
    std::string error = daemon.start();
    if (!error.empty()) {
        std::printf("daemon failed to start: %s\n", error.c_str());
        return 1;
    }
    std::printf("archvald up on %s (2 workers)\n\n", path.c_str());

    int fd = connectUnix(path);
    if (fd < 0) {
        std::printf("cannot connect\n");
        return 1;
    }
    FrameReader reader;

    // --- 2. Enumerate: the first request on a fingerprint builds
    //        the session (model + state graph).
    json::Value enumerate = json::Value::object();
    enumerate.set("verb", "enumerate");
    json::Value enum_result = runJob(fd, reader, enumerate);
    std::printf("enumerate: %lld states, %lld edges\n",
                (long long)enum_result.get("states").asInt(),
                (long long)enum_result.get("edges").asInt());

    // --- 3. Cold replay: tours and vectors are generated once,
    //        every cycle is simulated, and the bug-free run deposits
    //        its result + checkpoint chain in the warm cache.
    json::Value replay = json::Value::object();
    replay.set("verb", "replay");
    replay.set("threads", static_cast<int64_t>(2));
    json::Value cold = runJob(fd, reader, replay);
    std::printf("cold replay: %s cycles simulated, warm hits %lld\n",
                withCommas(static_cast<uint64_t>(
                               cold.get("simulatedCycles").asInt()))
                    .c_str(),
                (long long)cold.get("warm").get("hits").asInt());

    // --- 4. Warm replay: same request, same session — the donor
    //        result is copied instead of re-simulated.
    json::Value warm = runJob(fd, reader, replay);
    const long long cold_cycles = cold.get("simulatedCycles").asInt();
    const long long warm_cycles = warm.get("simulatedCycles").asInt();
    const bool identical = warm.get("plays").serialize() ==
                           cold.get("plays").serialize();
    std::printf("warm replay: %s cycles simulated, warm hits %lld, "
                "results %s\n",
                withCommas(static_cast<uint64_t>(warm_cycles))
                    .c_str(),
                (long long)warm.get("warm").get("hits").asInt(),
                identical ? "byte-identical" : "MISMATCH");
    const bool saved_90 = warm_cycles * 10 <= cold_cycles;
    std::printf("  -> repeat avoided %.1f%% of the cold run's "
                "simulation\n\n",
                cold_cycles
                    ? 100.0 * (cold_cycles - warm_cycles) /
                          cold_cycles
                    : 0.0);

    // --- 5. The same session also powers bug work: replay with an
    //        injected bug reuses the warm donor block.
    json::Value bugs = json::Value::array();
    bugs.push(json::Value("bug1"));
    replay.set("bugs", std::move(bugs));
    json::Value bug_run = runJob(fd, reader, replay);
    std::printf("replay with bug1: verdict '%s' (%lld/%lld traces "
                "diverged)\n",
                bug_run.get("verdict").asString().c_str(),
                (long long)bug_run.get("diverged").asInt(),
                (long long)bug_run.get("traces").asInt());

    // --- 6. Control verbs: the job table survives its jobs.
    json::Value list = json::Value::object();
    list.set("verb", "list");
    sendFrame(fd, list);
    json::Value jobs;
    readEvent(fd, reader, jobs);
    std::printf("job table: %zu jobs, all terminal\n",
                jobs.get("jobs").items().size());

    // --- 7. Shutdown via the protocol.
    json::Value shutdown = json::Value::object();
    shutdown.set("verb", "shutdown");
    sendFrame(fd, shutdown);
    json::Value ack;
    readEvent(fd, reader, ack);
    ::close(fd);
    daemon.wait();
    std::printf("daemon stopped (%s)\n",
                ack.get("type").asString().c_str());

    const bool detected =
        bug_run.get("verdict").asString() == "detected";
    return identical && saved_90 && detected ? 0 : 1;
}

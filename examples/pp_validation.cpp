/**
 * @file
 * Flagship example: validate the Protocol Processor exactly as the
 * paper does (Figure 3.1), at a chosen scale.
 *
 *   pp_validation [small|full] [limit <N>] [bug <1..6>] [lockstep]
 *
 * Enumerates the PP control, generates covering transition tours and
 * test vectors, then simulates the RTL model against the
 * instruction-level specification. With "bug N" one of the six
 * published FLASH PP bugs (Table 2.1) is injected first.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/validation_flow.hh"
#include "rtl/faults.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

using namespace archval;

int
main(int argc, char **argv)
{
    archval::telemetry::initTelemetryFromEnv();
    rtl::PpConfig config = rtl::PpConfig::smallPreset();
    core::FlowOptions options;
    rtl::BugSet bugs;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "full") {
            config = rtl::PpConfig::fullPreset();
        } else if (arg == "small") {
            config = rtl::PpConfig::smallPreset();
        } else if (arg == "limit" && i + 1 < argc) {
            options.tour.maxInstructionsPerTrace =
                std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "bug" && i + 1 < argc) {
            unsigned n = std::strtoul(argv[++i], nullptr, 0);
            if (n < 1 || n > rtl::numBugs) {
                std::fprintf(stderr, "bug number must be 1..6\n");
                return 2;
            }
            bugs.set(n - 1);
        } else if (arg == "lockstep") {
            options.checkLockstep = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [small|full] [limit N] [bug N] "
                         "[lockstep]\n",
                         argv[0]);
            return 2;
        }
    }

    core::PpValidationFlow flow(config, options);

    std::printf("== step 1+2: FSM model and state enumeration ==\n");
    flow.enumerate();
    std::printf("%s\n", flow.enumStats().render().c_str());

    std::printf("== step 3: transition tours ==\n");
    flow.makeTours();
    std::printf("%s\n", flow.tourStats().render().c_str());

    std::printf("== step 4: test vector generation ==\n");
    flow.makeVectors();
    std::printf("traces %s, cycles %s, instructions %s, "
                "constrained loads %s\n\n",
                withCommas(flow.vecStats().traces).c_str(),
                withCommas(flow.vecStats().cycles).c_str(),
                withCommas(flow.vecStats().instructions).c_str(),
                withCommas(flow.vecStats().constrainedLoads).c_str());

    std::printf("== step 5: simulate against the specification ==\n");
    if (bugs.any()) {
        for (size_t b = 0; b < rtl::numBugs; ++b) {
            if (bugs.test(b)) {
                std::printf("injected %s: %s\n",
                            rtl::bugName(static_cast<rtl::BugId>(b)),
                            rtl::bugSummary(
                                static_cast<rtl::BugId>(b)));
            }
        }
    }
    core::FlowReport report = flow.simulate(bugs);
    std::printf("%s\n", report.render().c_str());

    if (bugs.any()) {
        std::printf("expected a divergence: %s\n",
                    report.bugFound() ? "FOUND" : "MISSED");
        return report.bugFound() ? 0 : 1;
    }
    std::printf("expected a clean run: %s\n",
                report.bugFound() ? "DIVERGED" : "CLEAN");
    return report.bugFound() ? 1 : 0;
}

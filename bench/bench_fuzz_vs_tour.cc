/**
 * @file
 * Fuzz-vs-tour detection latency.
 *
 * Runs the coverage-guided fuzz campaign (4 std::thread workers) as
 * a fourth stimulus arm next to the tour, biased-random and directed
 * baselines over the six Table 2.1 bugs, then over the data-visible
 * control-mutation bank (each mutation re-enumerated, since it
 * changes the control's state graph). Also double-runs one campaign
 * to demonstrate bit-determinism for a fixed (seed, worker-count).
 *
 * Smoke configuration (the default; ARCHVAL_BENCH_SCALE=full and
 * ARCHVAL_FUZZ_SMOKE=0 deepen it) must find >= 4 of the 6 bugs by
 * fuzzing — the bench fails otherwise.
 */

#include <cstdio>

#include "bench_util.hh"
#include "fuzz/campaign.hh"
#include "harness/bug_hunt.hh"
#include "murphi/enumerator.hh"
#include "support/strings.hh"

using namespace archval;

namespace
{

bool
smokeMode()
{
    const char *env = std::getenv("ARCHVAL_FUZZ_SMOKE");
    if (env)
        return env[0] == '1';
    const char *scale = std::getenv("ARCHVAL_BENCH_SCALE");
    return !(scale && std::strcmp(scale, "full") == 0);
}

fuzz::CampaignOptions
campaignOptions(bool smoke)
{
    fuzz::CampaignOptions options;
    options.workers = 4;
    options.roundInstructions = smoke ? 6'000 : 30'000;
    options.maxRounds = smoke ? 5 : 12;
    options.seed = 2026;
    return options;
}

std::string
latencyCell(bool detected, uint64_t instructions)
{
    if (!detected)
        return "not detected";
    return formatString("@ %s instrs",
                        withCommas(instructions).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = smokeMode();
    bench::banner("Fuzz vs tour",
                  "Coverage-guided fuzzing as a stimulus source");
    std::printf("\nmode: %s\n", smoke ? "smoke" : "full");
    bench::JsonWriter json("fuzz_vs_tour");

    rtl::PpConfig config = bench::benchSimConfig();
    rtl::PpFsmModel model(config);
    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    graph::TourOptions tour_options;
    tour_options.maxInstructionsPerTrace = 10'000;
    graph::TourGenerator tour_gen(graph, tour_options);
    auto tours = tour_gen.run();
    vecgen::VectorGenerator generator(model, 2024);
    auto vectors = generator.generateAll(graph, tours);

    std::printf("graph: %s states, %s edges; %s tour trace(s)\n",
                withCommas(graph.numStates()).c_str(),
                withCommas(graph.numEdges()).c_str(),
                withCommas(tours.size()).c_str());

    // --- Determinism: same (seed, workers=4) twice, bitwise equal.
    fuzz::CampaignOptions options = campaignOptions(smoke);
    {
        rtl::BugSet bugs;
        bugs.set(static_cast<size_t>(rtl::BugId::Bug1IfaceQual));
        fuzz::CampaignRunner a(config, model, graph, options);
        fuzz::CampaignRunner b(config, model, graph, options);
        fuzz::CampaignResult ra = a.run(bugs, tours);
        fuzz::CampaignResult rb = b.run(bugs, tours);
        bool same = ra.detected == rb.detected &&
                    ra.instructions == rb.instructions &&
                    ra.cycles == rb.cycles &&
                    ra.detail == rb.detail &&
                    ra.coveredEdges == rb.coveredEdges &&
                    ra.iterations == rb.iterations;
        std::printf("\ndeterminism (N=%u workers, seed %llu, run "
                    "twice): %s\n",
                    options.workers,
                    (unsigned long long)options.seed,
                    same ? "bit-identical" : "MISMATCH");
        json.beginRow();
        json.add("section", "determinism");
        json.add("configuration", smoke ? "smoke" : "full");
        json.add("workers", options.workers);
        json.add("identical", same);
        if (!same)
            return 1;
    }

    // --- Table 2.1 bugs: four stimulus arms per bug.
    const uint64_t random_budget =
        4 * tour_gen.stats().totalInstructions;
    harness::BugHunt hunt(config, model, graph, vectors);
    hunt.setFuzzArm(fuzz::makeCampaignFuzzArm(config, model, graph,
                                              tours, options));

    std::vector<harness::HuntResult> results;
    for (size_t b = 0; b < rtl::numBugs; ++b) {
        rtl::BugId bug = static_cast<rtl::BugId>(b);
        std::printf("\nBug %zu: %s\n", b + 1, rtl::bugSummary(bug));
        results.push_back(hunt.hunt(bug, random_budget, 99 + b));
    }
    std::printf("\n%s", harness::renderHuntTable(results).c_str());

    unsigned tour_found = 0, random_found = 0, fuzz_found = 0;
    for (const auto &r : results) {
        tour_found += r.tour.detected;
        random_found += r.random.detected;
        fuzz_found += r.fuzz.detected;
    }
    std::printf("\nsummary: tour %u/6, biased-random %u/6, fuzz "
                "campaign %u/6 (need >= 4)\n",
                tour_found, random_found, fuzz_found);

    for (const auto &r : results) {
        json.beginRow();
        json.add("section", "hunt");
        json.add("configuration", smoke ? "smoke" : "full");
        json.add("bug", rtl::bugName(r.bug));
        json.add("tour_detected", r.tour.detected);
        json.add("random_detected", r.random.detected);
        json.add("directed_detected", r.directed.detected);
        json.add("fuzz_detected", r.fuzz.detected);
        json.add("tour_instructions", r.tour.instructions);
        json.add("fuzz_instructions", r.fuzz.instructions);
    }

    // --- Mutation bank: each data-visible control mutation changes
    // the state graph itself, so the model is re-enumerated and the
    // campaign hunts the divergence with no BugSet injected — the
    // buggy control is the design under test.
    std::printf("\nmutation bank (data-visible control mutations):\n");
    std::printf("  %-22s %-22s %-22s\n", "mutation", "tour vectors",
                "fuzz campaign");
    for (size_t m = 0; m < rtl::numMutations; ++m) {
        rtl::MutationId mutation = static_cast<rtl::MutationId>(m);
        if (!rtl::mutationDataVisible(mutation))
            continue;
        rtl::PpConfig mutated = config;
        mutated.mutations.set(m);
        rtl::PpFsmModel mutated_model(mutated);
        murphi::Enumerator mutated_enum(mutated_model);
        auto mutated_graph = mutated_enum.runOrThrow();
        graph::TourGenerator mutated_tour_gen(mutated_graph,
                                              tour_options);
        auto mutated_tours = mutated_tour_gen.run();

        // Tour baseline on the mutated design.
        vecgen::VectorGenerator mutated_gen(mutated_model, 2024);
        harness::VectorPlayer player(mutated);
        bool tour_detected = false;
        uint64_t tour_instrs = 0;
        for (size_t i = 0; i < mutated_tours.size(); ++i) {
            auto trace = mutated_gen.generate(mutated_graph,
                                              mutated_tours[i], i);
            harness::PlayResult play = player.play(trace);
            tour_instrs += play.instructions;
            if (play.diverged) {
                tour_detected = true;
                break;
            }
        }

        fuzz::CampaignRunner runner(mutated, mutated_model,
                                    mutated_graph, options);
        fuzz::CampaignResult campaign =
            runner.run(rtl::BugSet{}, mutated_tours);

        std::printf("  %-22s %-22s %-22s\n",
                    rtl::mutationName(mutation),
                    latencyCell(tour_detected, tour_instrs).c_str(),
                    latencyCell(campaign.detected,
                                campaign.instructions)
                        .c_str());

        json.beginRow();
        json.add("section", "mutation");
        json.add("configuration", smoke ? "smoke" : "full");
        json.add("mutation", rtl::mutationName(mutation));
        json.add("tour_detected", tour_detected);
        json.add("fuzz_detected", campaign.detected);
        json.add("mutated_states", mutated_graph.numStates());
        json.add("mutated_edges", mutated_graph.numEdges());
    }

    if (!json.write(bench::jsonPath(argc, argv))) {
        std::fprintf(stderr, "failed to write --json output\n");
        return 1;
    }
    return fuzz_found >= 4 ? 0 : 1;
}

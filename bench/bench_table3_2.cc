/**
 * @file
 * Table 3.2 — State enumeration statistics, plus the Figure 3.2
 * model structure.
 *
 * Enumerates the PP control FSM network and prints the same rows the
 * paper reports: number of states, bits per state, execution time,
 * memory requirement, and number of edges. Absolute values differ
 * (the paper's PP is the real FLASH design enumerated on a
 * DECstation 5000/240); the comparison shows the *shape*: a state
 * count orders of magnitude below 2^bits because the interacting
 * FSMs interlock.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"
#include "support/strings.hh"

using namespace archval;

int
main(int argc, char **argv)
{
    bench::banner("Table 3.2", "State enumeration statistics");

    const char *scale = std::getenv("ARCHVAL_BENCH_SCALE");
    const bool small = scale && std::strcmp(scale, "small") == 0;
    rtl::PpConfig config = bench::benchConfig();
    rtl::PpFsmModel model(config);

    std::printf("\nFigure 3.2 — FSM network of the PP (modeled "
                "abstraction):\n");
    std::printf("  latched control state (%zu bits):\n",
                model.stateBits());
    for (const auto &var : model.stateVars())
        std::printf("    %-18s %zu bit(s)\n", var.name.c_str(),
                    var.numBits);
    std::printf("  abstract blocks (nondeterministic inputs):\n");
    for (const auto &var : model.choiceVars()) {
        if (var.cardinality > 1)
            std::printf("    %-18s %u choice(s)\n", var.name.c_str(),
                        var.cardinality);
    }

    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    const auto &stats = enumerator.stats();

    std::printf("\n");
    bench::rowHeader();
    bench::row("Number of states", "229,571",
               withCommas(stats.numStates));
    bench::row("Number of bits per state", "98",
               std::to_string(stats.bitsPerState));
    bench::row("Execution time (cpu secs)", "18,307",
               formatString("%.1f", stats.cpuSeconds));
    bench::row("Memory requirement", "34 MB",
               humanBytes(stats.memoryBytes));
    bench::row("Number of edges in state graph", "1,172,848",
               withCommas(stats.numEdges));

    double log2_reachable =
        stats.numStates ? std::log2(double(stats.numStates)) : 0.0;
    std::printf(
        "\nshape check: reachable states ~2^%.1f out of 2^%zu "
        "possible\n(paper: ~2^18 out of 2^98) — the mutual stalling "
        "of the FSMs prevents the\nexponential explosion the state "
        "bits suggest.\n",
        log2_reachable, stats.bitsPerState);

    bench::JsonWriter json("table3_2");
    json.beginRow();
    json.add("section", "enumeration");
    json.add("configuration", small ? "small" : "full");
    json.add("states", stats.numStates);
    json.add("edges", stats.numEdges);
    json.add("bits_per_state", stats.bitsPerState);
    json.add("transitions_tried", stats.transitionsTried);
    json.add("transitions_valid", stats.transitionsValid);
    json.add("cpu_seconds", stats.cpuSeconds);
    json.add("memory_bytes", stats.memoryBytes);
    if (!json.write(bench::jsonPath(argc, argv))) {
        std::fprintf(stderr, "failed to write --json output\n");
        return 1;
    }
    return 0;
}

/**
 * @file
 * Table 2.1 — The six Protocol Processor bugs.
 *
 * Injects each published PP bug into the RTL model and reports which
 * stimulus source exposes it: the generated transition-tour vectors,
 * random legal stimulus at the same interfaces, and the hand-written
 * directed-test suite. The paper's finding — these multiple-event
 * bugs are found by the generated vectors but not (or only at great
 * cost) by the other methods — is the headline result.
 *
 * `--json <path>` additionally writes the per-bug detection table as
 * JSON (CI uses BENCH_table2_1.json; see tools/bench_diff.py).
 */

#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_util.hh"
#include "harness/bug_hunt.hh"
#include "murphi/enumerator.hh"
#include "support/strings.hh"

using namespace archval;

int
main(int argc, char **argv)
{
    bench::banner("Table 2.1", "Synopsis of discovered bugs");

    rtl::PpConfig config = bench::benchSimConfig();
    rtl::PpFsmModel model(config);
    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    // The 10,000-instruction trace limit of Table 3.3: short traces
    // localize a divergence to a small re-runnable test.
    graph::TourOptions tour_options;
    tour_options.maxInstructionsPerTrace = 10'000;
    graph::TourGenerator tour_gen(graph, tour_options);
    auto tours = tour_gen.run();
    vecgen::VectorGenerator generator(model, 2024);
    auto vectors = generator.generateAll(graph, tours);

    std::printf("\ngraph: %s states, %s edges; %s tour trace(s), "
                "%s instructions\n",
                withCommas(graph.numStates()).c_str(),
                withCommas(graph.numEdges()).c_str(),
                withCommas(tours.size()).c_str(),
                withCommas(tour_gen.stats().totalInstructions)
                    .c_str());

    // Random budget: 4x the tour's instruction cost.
    const uint64_t random_budget =
        4 * tour_gen.stats().totalInstructions;

    // The tour and random arms replay through the checkpointed
    // engine: all available cores, default cache budget. Results are
    // byte-identical to the sequential player by contract.
    harness::ReplayOptions replay;
    replay.numThreads =
        std::max(1u, std::thread::hardware_concurrency());
    harness::BugHunt hunt(config, model, graph, vectors, replay);
    std::vector<harness::HuntResult> results;
    for (size_t b = 0; b < rtl::numBugs; ++b) {
        rtl::BugId bug = static_cast<rtl::BugId>(b);
        std::printf("\nBug %zu: %s\n", b + 1, rtl::bugSummary(bug));
        results.push_back(hunt.hunt(bug, random_budget, 99 + b));
    }

    std::printf("\n%s", harness::renderHuntTable(results).c_str());

    bench::JsonWriter json("table2_1");
    unsigned tour_found = 0, random_found = 0, directed_found = 0;
    for (const auto &r : results) {
        tour_found += r.tour.detected;
        random_found += r.random.detected;
        directed_found += r.directed.detected;
        json.beginRow();
        json.add("bug", (uint64_t)(size_t(r.bug) + 1));
        json.add("tour_detected", r.tour.detected);
        json.add("tour_instructions", r.tour.instructions);
        json.add("tour_cycles", r.tour.cycles);
        json.add("random_detected", r.random.detected);
        json.add("random_instructions", r.random.instructions);
        json.add("directed_detected", r.directed.detected);
    }
    std::string path = bench::jsonPath(argc, argv);
    if (!json.write(path)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf(
        "\nsummary: tour vectors found %u/6 bugs; biased-random "
        "stimulus (4x budget)\nfound %u/6; directed tests found "
        "%u/6. (paper: all six found by generated\nvectors, none by "
        "the hand-written or random vectors used previously)\n",
        tour_found, random_found, directed_found);
    return tour_found == rtl::numBugs ? 0 : 1;
}

/**
 * @file
 * State-space scaling ablation.
 *
 * The paper observes that "the mutual stalling of FSMs prevents the
 * exponential explosion in states that would be expected based on
 * the number of state bits" (Section 3.2). This bench sweeps the
 * model's abstraction knobs — line length (refill counter depth),
 * dual issue, branches, WB tracking, alignment — and reports
 * reachable states vs the 2^bits upper bound for each point.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"
#include "support/strings.hh"

using namespace archval;

namespace
{

void
measure(const char *label, const rtl::PpConfig &config)
{
    rtl::PpFsmModel model(config);
    murphi::Enumerator enumerator(model);
    auto graph = enumerator.run();
    const auto &stats = enumerator.stats();
    double density =
        100.0 * double(stats.numStates) /
        std::pow(2.0, double(stats.bitsPerState));
    std::printf("%-34s %5zu %12s %14s %9.1f %12.5f%%\n", label,
                stats.bitsPerState,
                withCommas(stats.numStates).c_str(),
                withCommas(stats.numEdges).c_str(),
                stats.cpuSeconds, density);
}

} // namespace

int
main()
{
    bench::banner("Enumeration scaling",
                  "Reachable states vs abstraction detail");

    std::printf("\n%-34s %5s %12s %14s %9s %13s\n", "configuration",
                "bits", "states", "edges", "cpu s",
                "2^bits density");

    rtl::PpConfig base = rtl::PpConfig::smallPreset();
    measure("small: L=2, single-issue", base);

    rtl::PpConfig l4 = base;
    l4.lineWords = 4;
    measure("L=4 (deeper refill counters)", l4);

    rtl::PpConfig dual = l4;
    dual.dualIssue = true;
    measure("+ dual issue", dual);

    rtl::PpConfig branches = dual;
    branches.modelBranches = true;
    measure("+ squashing branches", branches);

    rtl::PpConfig wb = branches;
    wb.modelWbStage = true;
    measure("+ WB-stage tracking", wb);

    rtl::PpConfig align = wb;
    align.modelAlignment = true;
    measure("+ fetch alignment (full preset)", align);

    rtl::PpConfig l8 = align;
    l8.lineWords = 8;
    if (std::getenv("ARCHVAL_SCALING_L8"))
        measure("full with L=8", l8);

    std::printf(
        "\nshape: every knob multiplies raw state bits, yet "
        "reachable density keeps\nfalling — the FSMs' interlocks "
        "(single memory port, mutual stalls) keep the\nproduct "
        "space mostly unreachable, exactly the paper's "
        "observation.\n");
    return 0;
}

/**
 * @file
 * State-space scaling ablation.
 *
 * The paper observes that "the mutual stalling of FSMs prevents the
 * exponential explosion in states that would be expected based on
 * the number of state bits" (Section 3.2). This bench sweeps the
 * model's abstraction knobs — line length (refill counter depth),
 * dual issue, branches, WB tracking, alignment — and reports
 * reachable states vs the 2^bits upper bound for each point.
 *
 * `--json <path>` additionally writes every row as JSON (see README;
 * CI uses BENCH_enum.json).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hh"
#include "hdl/corpus.hh"
#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"
#include "support/strings.hh"
#include "support/timer.hh"

using namespace archval;

namespace
{

void
measure(const char *label, const rtl::PpConfig &config,
        bench::JsonWriter &json)
{
    rtl::PpFsmModel model(config);
    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    const auto &stats = enumerator.stats();
    double density =
        100.0 * double(stats.numStates) /
        std::pow(2.0, double(stats.bitsPerState));
    std::printf("%-34s %5zu %12s %14s %9.1f %12.5f%%\n", label,
                stats.bitsPerState,
                withCommas(stats.numStates).c_str(),
                withCommas(stats.numEdges).c_str(),
                stats.cpuSeconds, density);
    json.beginRow();
    json.add("kind", "ablation");
    json.add("configuration", label);
    json.add("bits_per_state", (uint64_t)stats.bitsPerState);
    json.add("states", stats.numStates);
    json.add("edges", stats.numEdges);
    json.add("cpu_seconds", stats.cpuSeconds);
    json.add("density_percent", density);
}

/** FNV-1a over every observable byte of the graph. */
uint64_t
graphFingerprint(const graph::StateGraph &graph)
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t value) {
        for (int i = 0; i < 8; ++i) {
            h ^= (value >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mix(graph.numStates());
    for (graph::EdgeId e = 0; e < graph.numEdges(); ++e) {
        const graph::Edge &edge = graph.edge(e);
        mix(edge.src);
        mix(edge.dst);
        mix(edge.choiceCode);
        mix(edge.instrCount);
    }
    for (graph::StateId s = 0; s < graph.numStates(); ++s) {
        for (size_t b = 0; b < graph.packedState(s).numBits(); ++b)
            mix(graph.packedState(s).get(b));
    }
    return h;
}

void
threadSweep(const rtl::PpConfig &config, bench::JsonWriter &json)
{
    std::printf("\nthread sweep on the largest design (wall-clock):\n");
    std::printf("%8s %12s %14s %9s %9s %10s\n", "threads", "states",
                "edges", "wall s", "speedup", "identical");

    rtl::PpFsmModel model(config);
    double base_seconds = 0.0;
    uint64_t base_fingerprint = 0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        murphi::EnumOptions options;
        options.numThreads = threads;
        murphi::Enumerator enumerator(model, options);
        WallTimer timer;
        auto graph = enumerator.runOrThrow();
        double seconds = timer.seconds();
        uint64_t fp = graphFingerprint(graph);
        if (threads == 1) {
            base_seconds = seconds;
            base_fingerprint = fp;
        }
        std::printf("%8u %12s %14s %9.2f %8.2fx %10s\n", threads,
                    withCommas(graph.numStates()).c_str(),
                    withCommas(graph.numEdges()).c_str(), seconds,
                    seconds > 0.0 ? base_seconds / seconds : 0.0,
                    fp == base_fingerprint ? "yes" : "NO");
        json.beginRow();
        json.add("kind", "thread_sweep");
        json.add("threads", threads);
        json.add("states", (uint64_t)graph.numStates());
        json.add("edges", (uint64_t)graph.numEdges());
        json.add("wall_seconds", seconds);
        json.add("speedup",
                 seconds > 0.0 ? base_seconds / seconds : 0.0);
        json.add("identical", fp == base_fingerprint);
    }
}

/**
 * Out-of-core sweep on the largest HDL corpus design: residency
 * budget x worker-process count, each run differenced against the
 * unbounded in-memory graph. The bench_diff gate holds the
 * tight-budget rows to `identical` and `residency_under_budget`
 * exactly — completing the design inside the budget is the headline
 * claim, not a drift-gated metric.
 */
void
oocSweep(bench::JsonWriter &json)
{
    const hdl::CorpusDesign &design = hdl::largestCorpusDesign();
    auto translated = hdl::translateCorpus(design);
    if (!translated.ok()) {
        std::fprintf(stderr, "corpus translation failed: %s\n",
                     translated.errorMessage().c_str());
        return;
    }
    const fsm::Model &model = *translated.value().model;

    std::printf("\nout-of-core sweep on %s (budget x processes):\n",
                design.name);
    std::printf("%10s %6s %12s %11s %9s %9s %10s %10s\n",
                "budget KiB", "procs", "states", "spill B",
                "pg out", "pg in", "resident", "identical");

    struct Point
    {
        size_t budgetKb;
        unsigned processes;
    };
    const Point points[] = {{0, 1}, {32, 1}, {32, 2}, {0, 2}};

    uint64_t base_fingerprint = 0;
    for (const Point &point : points) {
        murphi::EnumOptions options;
        options.memoryBudgetBytes = point.budgetKb * 1024;
        options.numProcesses = point.processes;
        murphi::Enumerator enumerator(model, options);
        WallTimer timer;
        auto graph = enumerator.runOrThrow();
        double seconds = timer.seconds();
        const auto &stats = enumerator.stats();
        uint64_t fp = graphFingerprint(graph);
        if (point.budgetKb == 0 && point.processes == 1)
            base_fingerprint = fp;
        const bool identical = fp == base_fingerprint;
        const bool under_budget =
            options.memoryBudgetBytes == 0 ||
            (stats.residencyHighWaterBytes <=
                 options.memoryBudgetBytes &&
             stats.spillFallbacks == 0);
        std::printf("%10zu %6u %12s %11s %9s %9s %10s %10s\n",
                    point.budgetKb, point.processes,
                    withCommas(graph.numStates()).c_str(),
                    withCommas(stats.spillBytesWritten).c_str(),
                    withCommas(stats.pageOuts).c_str(),
                    withCommas(stats.pageIns).c_str(),
                    under_budget ? "yes" : "OVER",
                    identical ? "yes" : "NO");
        json.beginRow();
        json.add("kind", "ooc_sweep");
        json.add("design", design.name);
        json.add("budget_kb", (uint64_t)point.budgetKb);
        json.add("processes", point.processes);
        json.add("states", (uint64_t)graph.numStates());
        json.add("edges", (uint64_t)graph.numEdges());
        json.add("wall_seconds", seconds);
        json.add("identical", identical);
        json.add("spill_bytes", stats.spillBytesWritten);
        json.add("page_ins", stats.pageIns);
        json.add("page_outs", stats.pageOuts);
        json.add("residency_high_water",
                 (uint64_t)stats.residencyHighWaterBytes);
        json.add("spill_fallbacks", stats.spillFallbacks);
        json.add("residency_under_budget", under_budget);
        json.add("largest", true);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Enumeration scaling",
                  "Reachable states vs abstraction detail");

    std::printf("\n%-34s %5s %12s %14s %9s %13s\n", "configuration",
                "bits", "states", "edges", "cpu s",
                "2^bits density");

    bench::JsonWriter json("enum_scaling");

    rtl::PpConfig base = rtl::PpConfig::smallPreset();
    measure("small: L=2, single-issue", base, json);

    rtl::PpConfig l4 = base;
    l4.lineWords = 4;
    measure("L=4 (deeper refill counters)", l4, json);

    rtl::PpConfig dual = l4;
    dual.dualIssue = true;
    measure("+ dual issue", dual, json);

    rtl::PpConfig branches = dual;
    branches.modelBranches = true;
    measure("+ squashing branches", branches, json);

    rtl::PpConfig wb = branches;
    wb.modelWbStage = true;
    measure("+ WB-stage tracking", wb, json);

    rtl::PpConfig align = wb;
    align.modelAlignment = true;
    measure("+ fetch alignment (full preset)", align, json);

    rtl::PpConfig l8 = align;
    l8.lineWords = 8;
    if (std::getenv("ARCHVAL_SCALING_L8"))
        measure("full with L=8", l8, json);

    threadSweep(align, json);
    oocSweep(json);

    std::printf(
        "\nshape: every knob multiplies raw state bits, yet "
        "reachable density keeps\nfalling — the FSMs' interlocks "
        "(single memory port, mutual stalls) keep the\nproduct "
        "space mostly unreachable, exactly the paper's "
        "observation.\n");

    std::string path = bench::jsonPath(argc, argv);
    if (!json.write(path)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    return 0;
}

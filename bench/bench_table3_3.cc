/**
 * @file
 * Table 3.3 — Test vector generation statistics.
 *
 * Runs the Figure 3.3 tour generator over the enumerated PP state
 * graph twice — without a trace limit and with a 10,000-instruction
 * per-trace limit — and prints the paper's rows for both columns.
 * The headline shape results: the per-arc instruction cost stays
 * modest, the limit adds well under 1% instruction overhead, and it
 * collapses the longest trace (and therefore the time to re-reach
 * any bug) by orders of magnitude.
 */

#include <cstdio>

#include "bench_util.hh"
#include "graph/tour.hh"
#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"
#include "support/strings.hh"

using namespace archval;

int
main()
{
    bench::banner("Table 3.3", "Test vector generation statistics");

    rtl::PpConfig config = bench::benchConfig();
    rtl::PpFsmModel model(config);
    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    std::printf("\ngraph: %s states, %s edges\n",
                withCommas(graph.numStates()).c_str(),
                withCommas(graph.numEdges()).c_str());

    graph::TourGenerator unlimited(graph);
    auto traces_unlimited = unlimited.run();
    if (auto err = graph::checkTourCoverage(graph, traces_unlimited);
        !err.empty()) {
        std::fprintf(stderr, "coverage check failed: %s\n",
                     err.c_str());
        return 1;
    }

    graph::TourOptions limit_options;
    limit_options.maxInstructionsPerTrace = 10'000;
    graph::TourGenerator limited(graph, limit_options);
    auto traces_limited = limited.run();
    if (auto err = graph::checkTourCoverage(graph, traces_limited);
        !err.empty()) {
        std::fprintf(stderr, "coverage check failed: %s\n",
                     err.c_str());
        return 1;
    }

    const auto &u = unlimited.stats();
    const auto &l = limited.stats();

    auto sim_time = [](uint64_t traversals) {
        return humanSeconds(double(traversals) / 100.0);
    };

    std::printf("\n%-34s | %-22s | %-22s\n", "",
                "with no limit", "with 10,000-instr limit");
    auto row3 = [](const char *label, const std::string &paper_u,
                   const std::string &mine_u,
                   const std::string &paper_l,
                   const std::string &mine_l) {
        std::printf("%-34s | paper %-10s us %-10s | paper %-10s "
                    "us %-10s\n",
                    label, paper_u.c_str(), mine_u.c_str(),
                    paper_l.c_str(), mine_l.c_str());
    };
    row3("Number of traces", "1,296", withCommas(u.numTraces),
         "1,296", withCommas(l.numTraces));
    row3("Total edge traversals", "21.2M",
         withCommas(u.totalEdgeTraversals), "21.3M",
         withCommas(l.totalEdgeTraversals));
    row3("Total instructions", "8.52M",
         withCommas(u.totalInstructions), "8.56M",
         withCommas(l.totalInstructions));
    row3("Generation time (cpu s)", "161,159",
         formatString("%.1f", u.generationSeconds), "193,330",
         formatString("%.1f", l.generationSeconds));
    row3("Est. sim time @100Hz", "58.9 hours",
         sim_time(u.totalEdgeTraversals), "59.0 hours",
         sim_time(l.totalEdgeTraversals));
    row3("Longest single trace", "21,197,977",
         withCommas(u.longestTraceEdges), "144,520 edges",
         withCommas(l.longestTraceEdges));
    row3("Est. sim time (longest)", "58.9 hours",
         sim_time(u.longestTraceEdges), "24 mins",
         sim_time(l.longestTraceEdges));
    std::printf("%-34s | paper %-10s us %-10s | paper %-10s "
                "us %-10s\n",
                "Traces cut by the limit", "0", "0", "853",
                withCommas(l.tracesTerminatedByLimit).c_str());

    std::printf(
        "\nshape checks:\n"
        "  instructions per covered arc: %.2f (paper: 8.52M / "
        "1.17M = 7.3)\n"
        "  limit instruction overhead:   %+.3f%% (paper: +0.42%%)\n"
        "  longest-trace reduction:      %.0fx (paper: 147x)\n",
        graph.numEdges()
            ? double(u.totalInstructions) / double(graph.numEdges())
            : 0.0,
        u.totalInstructions
            ? 100.0 * (double(l.totalInstructions) -
                       double(u.totalInstructions)) /
                  double(u.totalInstructions)
            : 0.0,
        l.longestTraceEdges
            ? double(u.longestTraceEdges) /
                  double(l.longestTraceEdges)
            : 0.0);
    std::printf(
        "\nknown divergence: the paper's model has edges reachable "
        "only from reset\n(1,296 distinct input initial conditions), "
        "forcing 1,296 traces; our abstract\ninputs are memoryless, "
        "so the unlimited tour needs only %s trace(s).\n",
        withCommas(u.numTraces).c_str());
    return 0;
}

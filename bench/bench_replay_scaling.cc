/**
 * @file
 * Checkpointed-replay scaling — worker-count sweep with the prefix
 * checkpoint cache on and off.
 *
 * The batch is the hunt workload: every tour trace replayed against
 * the bug-free machine and each of the six Table 2.1 faults. The
 * engine exploits two redundancy axes — cross-trace shared stimulus
 * prefixes (checkpoint cache) and, dominating here, bug-free donor
 * reuse: a fault that never triggers on a trace provably cannot
 * change its replay, so the bugged job reuses the bug-free result
 * without stepping a cycle. This bench reports, per (workers, cache)
 * point: wall time, cycles actually stepped, the fraction of
 * demanded cycles avoided, donor copies, and whether the results
 * stayed byte-identical to the sequential player (they must — the
 * cache is a pure accelerator).
 *
 * `--json <path>` additionally writes the table as JSON (see
 * README; CI uses BENCH_replay.json).
 */

#include <cstdio>
#include <optional>

#include "bench_util.hh"
#include "harness/replay_engine.hh"
#include "murphi/enumerator.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"
#include "support/timer.hh"

using namespace archval;

namespace
{

/** FNV-1a over every observable field of a result batch. */
uint64_t
fingerprint(const std::vector<harness::PlayResult> &results)
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t value) {
        for (int i = 0; i < 8; ++i) {
            h ^= (value >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    for (const harness::PlayResult &r : results) {
        mix(r.diverged);
        mix(r.cycles);
        mix(r.instructions);
        mix(r.lockstepErrors);
        mix(r.drained);
        mix(r.skipped);
        mix(r.diff.size());
        for (char c : r.diff)
            mix(static_cast<unsigned char>(c));
    }
    return h;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Replay scaling",
                  "Checkpointed batch replay: workers x prefix "
                  "cache");

    telemetry::setThreadName("main");
    std::optional<telemetry::ScopedSpan> phase;
    phase.emplace("bench.setup");

    rtl::PpConfig config = bench::benchSimConfig();
    rtl::PpFsmModel model(config);
    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    // The Table 3.3 trace limit, applied as nested prefix splits:
    // consecutive traces share their whole stem, which is the shape
    // the checkpoint cache exploits (each stem simulates once).
    graph::TourOptions tour_options;
    tour_options.maxInstructionsPerTrace = 10'000;
    tour_options.nestedPrefixSplits = true;
    graph::TourGenerator tour_gen(graph, tour_options);
    auto tours = tour_gen.run();
    vecgen::VectorGenerator generator(model, 2024);
    auto vectors = generator.generateAll(graph, tours);

    // The hunt workload: bug-free (the donor block) plus every
    // Table 2.1 fault, each as its own bug set.
    std::vector<rtl::BugSet> bug_sets;
    bug_sets.emplace_back();
    for (size_t b = 0; b < rtl::numBugs; ++b) {
        rtl::BugSet set;
        set.set(b);
        bug_sets.push_back(set);
    }

    uint64_t batch_cycles = 0;
    for (const auto &trace : vectors)
        batch_cycles += trace.cycles.size();
    std::printf("\nbatch: %s traces x %zu bug sets, %s forced "
                "cycles (graph: %s states, %s edges)\n\n",
                withCommas(vectors.size()).c_str(), bug_sets.size(),
                withCommas(batch_cycles * bug_sets.size()).c_str(),
                withCommas(graph.numStates()).c_str(),
                withCommas(graph.numEdges()).c_str());

    // Sequential reference: the plain per-trace player path the
    // engine must match byte-for-byte.
    phase.emplace("bench.seq_reference");
    harness::ReplayOptions seq_options;
    seq_options.numThreads = 1;
    seq_options.checkpointBudgetBytes = 0;
    harness::ReplayEngine sequential(config, seq_options);
    WallTimer seq_timer;
    auto reference = sequential.playAll(vectors, bug_sets);
    double seq_seconds = seq_timer.seconds();
    const uint64_t base_fingerprint = fingerprint(reference);
    const uint64_t base_cycles = sequential.stats().simulatedCycles;

    bench::JsonWriter json("replay_scaling");
    std::printf("%8s %7s %8s %9s %16s %10s %7s %9s %10s\n",
                "workers", "cache", "wall s", "speedup",
                "sim cycles", "avoided", "copies", "hit rate",
                "identical");

    double best_reduction = 0.0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        for (bool cache : {false, true}) {
            phase.emplace("bench.sweep_point", "workers", threads,
                          "cache", (uint64_t)cache);
            harness::ReplayOptions options;
            options.numThreads = threads;
            options.checkpointBudgetBytes =
                cache ? (256ull << 20) : 0;
            // Stride tier off: this sweep isolates the prefix-cache
            // axis (the tier gets its own sweep below).
            options.checkpointStride = 0;
            harness::ReplayEngine engine(config, options);
            WallTimer timer;
            auto results = engine.playAll(vectors, bug_sets);
            double seconds = timer.seconds();
            const auto &stats = engine.stats();
            bool identical =
                fingerprint(results) == base_fingerprint;
            double reduction =
                base_cycles
                    ? 1.0 - double(stats.simulatedCycles) /
                                double(base_cycles)
                    : 0.0;
            if (cache && reduction > best_reduction)
                best_reduction = reduction;

            std::printf(
                "%8u %7s %8.2f %8.2fx %16s %9.1f%% %7s %8.1f%% "
                "%10s\n",
                threads, cache ? "on" : "off", seconds,
                seconds > 0.0 ? seq_seconds / seconds : 0.0,
                withCommas(stats.simulatedCycles).c_str(),
                100.0 * stats.avoidedFraction(),
                withCommas(stats.bugSetCopies).c_str(),
                100.0 * stats.hitRate(), identical ? "yes" : "NO");

            json.beginRow();
            json.add("section", "scaling");
            json.add("workers", threads);
            json.add("cache", cache);
            json.add("wall_seconds", seconds);
            json.add("simulated_cycles", stats.simulatedCycles);
            json.add("batch_cycles", stats.batchCycles);
            json.add("cycles_avoided", stats.cyclesAvoided);
            json.add("avoided_fraction", stats.avoidedFraction());
            json.add("hit_rate", stats.hitRate());
            json.add("checkpoints_published",
                     stats.checkpointsPublished);
            json.add("checkpoint_hits", stats.checkpointHits);
            json.add("bug_set_copies", stats.bugSetCopies);
            json.add("verify_fallbacks", stats.verifyFallbacks);
            json.add("cache_evictions", stats.cacheEvictions);
            json.add("peak_cache_bytes",
                     (uint64_t)stats.peakCacheBytes);
            json.add("identical", identical);
            if (!identical)
                return 1;
        }
    }

    std::printf("\nsummary: prefix sharing removes %.1f%% of the "
                "simulated cycles on this batch\n(cache on vs off); "
                "results stay byte-identical to the sequential "
                "player at\nevery point.\n",
                100.0 * best_reduction);

    // ------------------------------------------------------------------
    // Tiered in-trace checkpointing: stride x spill sweep. The jobs
    // this tier targets are the ones donor copying cannot touch —
    // (trace, bug) pairs whose fault *did* trigger on the bug-free
    // run. Each such job resumes from the greatest periodic donor
    // checkpoint strictly below its first trigger cycle (bug mask
    // re-armed at restore). "Savings" is avoided/avoidable: the
    // fraction of the jobs' reset-to-trigger lead cycles never
    // re-stepped. The lead is the right denominator — everything
    // past the trigger is the diverged run itself, which any scheme
    // must simulate — and it is the Table 3.3 quantity, the time to
    // rerun a simulation to reach a bug. A tiny memory budget plus a
    // spill cap routes the chain through the CRC-checked disk tier.
    //
    // The sweep runs on the *plain* 10k-limit batch (the Table 2.1
    // hunt workload). On the nested batch above the tier is
    // structurally idle: every trace re-walks the same stem, so the
    // fault conjunctions fire within that stem's first few hundred
    // cycles of every trace, below the first checkpoint of any
    // useful stride. Plain traces cover disjoint graph regions, so
    // trigger cycles spread across the whole trace length.
    // ------------------------------------------------------------------
    phase.emplace("bench.plain_setup");
    graph::TourOptions plain_options;
    plain_options.maxInstructionsPerTrace = 10'000;
    graph::TourGenerator plain_gen(graph, plain_options);
    auto plain_tours = plain_gen.run();
    auto plain_vectors = generator.generateAll(graph, plain_tours);

    harness::ReplayEngine plain_seq(config, seq_options);
    auto plain_reference = plain_seq.playAll(plain_vectors, bug_sets);
    const uint64_t plain_fingerprint = fingerprint(plain_reference);

    std::printf("\nstride x spill sweep (plain 10k-limit batch, %s "
                "traces):\n",
                withCommas(plain_vectors.size()).c_str());
    std::printf("%8s %10s %8s %6s %6s %9s %8s %8s %10s\n",
                "stride", "spill MB", "chkpts", "trig", "hits",
                "savings", "spill w", "spill r", "identical");

    double best_savings = 0.0;
    for (size_t stride : {size_t{0}, size_t{256}, size_t{1024},
                          size_t{4096}}) {
        for (size_t spill_mb : {size_t{0}, size_t{256}}) {
            phase.emplace("bench.stride_point", "stride",
                          (uint64_t)stride, "spill_mb",
                          (uint64_t)spill_mb);
            harness::ReplayOptions options;
            options.numThreads = 4;
            options.checkpointStride = stride;
            // Memory holds only a handful of snapshots when a spill
            // cap is set, so the chain actually exercises the tier.
            options.checkpointBudgetBytes =
                spill_mb ? (4ull << 20) : (256ull << 20);
            options.spillBudgetBytes = spill_mb << 20;
            harness::ReplayEngine engine(config, options);
            WallTimer timer;
            auto results = engine.playAll(plain_vectors, bug_sets);
            double seconds = timer.seconds();
            const auto &stats = engine.stats();
            bool identical =
                fingerprint(results) == plain_fingerprint;
            if (stride > 0 && stats.strideSavings() > best_savings)
                best_savings = stats.strideSavings();

            std::printf(
                "%8zu %10zu %8s %6s %6s %8.1f%% %8s %8s %10s\n",
                stride, spill_mb,
                withCommas(stats.strideCheckpoints).c_str(),
                withCommas(stats.triggeredJobs).c_str(),
                withCommas(stats.strideHits).c_str(),
                100.0 * stats.strideSavings(),
                withCommas(stats.spillWrites).c_str(),
                withCommas(stats.spillReads).c_str(),
                identical ? "yes" : "NO");

            json.beginRow();
            json.add("section", "stride");
            json.add("stride", (uint64_t)stride);
            json.add("spill_budget_mb", (uint64_t)spill_mb);
            json.add("wall_seconds", seconds);
            json.add("stride_checkpoints", stats.strideCheckpoints);
            json.add("triggered_jobs", stats.triggeredJobs);
            json.add("triggered_job_cycles",
                     stats.triggeredJobCycles);
            json.add("triggered_lead_cycles",
                     stats.triggeredLeadCycles);
            json.add("stride_hits", stats.strideHits);
            json.add("stride_resume_cycles",
                     stats.strideResumeCycles);
            json.add("stride_savings", stats.strideSavings());
            json.add("simulated_cycles", stats.simulatedCycles);
            json.add("spill_writes", stats.spillWrites);
            json.add("spill_reads", stats.spillReads);
            json.add("spill_bytes", stats.spillBytes);
            json.add("spill_fallbacks", stats.spillFallbacks);
            json.add("identical", identical);
            if (!identical)
                return 1;
        }
    }

    std::printf("\nsummary: in-trace checkpoints skip %.1f%% of the "
                "cycles between reset and the\nbugs' first triggers "
                "at the best stride (the time to re-reach a bug); "
                "results\nstay byte-identical throughout.\n",
                100.0 * best_savings);

    phase.reset();
    std::string path = bench::jsonPath(argc, argv);
    if (!json.write(path)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    return best_reduction > 0.30 && best_savings > 0.30 ? 0 : 1;
}

/**
 * @file
 * Shared helpers for the table/figure reproduction benches: aligned
 * paper-vs-measured rows and scale selection via ARCHVAL_BENCH_SCALE.
 */

#ifndef ARCHVAL_BENCH_BENCH_UTIL_HH
#define ARCHVAL_BENCH_BENCH_UTIL_HH

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "rtl/pp_config.hh"
#include "support/telemetry.hh"

namespace archval::bench
{

/** Print a bench banner. Also arms telemetry from the environment
 *  (ARCHVAL_TRACE / ARCHVAL_HEARTBEAT) — every bench calls banner()
 *  first, so tracing works uniformly with no per-bench wiring. */
inline void
banner(const char *id, const char *title)
{
    telemetry::initTelemetryFromEnv();
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s — %s\n", id, title);
    std::printf("==================================================="
                "===========\n");
}

/** Print one "row | paper value | measured value" line. */
inline void
row(const char *label, const std::string &paper,
    const std::string &measured)
{
    std::printf("  %-34s %20s   %20s\n", label, paper.c_str(),
                measured.c_str());
}

/** Print the table header for paper-vs-measured rows. */
inline void
rowHeader()
{
    std::printf("  %-34s %20s   %20s\n", "", "paper (PP, 1995)",
                "this reproduction");
    std::printf("  %-34s %20s   %20s\n", "",
                "--------------------", "--------------------");
}

/**
 * @return the PP configuration benches should use: the full preset by
 * default, the small preset when ARCHVAL_BENCH_SCALE=small (useful
 * for smoke runs).
 */
inline rtl::PpConfig
benchConfig()
{
    const char *scale = std::getenv("ARCHVAL_BENCH_SCALE");
    if (scale && std::strcmp(scale, "small") == 0)
        return rtl::PpConfig::smallPreset();
    return rtl::PpConfig::fullPreset();
}

/**
 * @return the path following a `--json` flag in @p argv, or "" when
 * the flag is absent. Benches that support machine-readable output
 * pass the result to JsonWriter::write.
 */
inline std::string
jsonPath(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            return argv[i + 1];
    }
    return {};
}

/** @return logical CPU count of this host (0 when unknown). */
inline unsigned
hostCpuCount()
{
    return std::thread::hardware_concurrency();
}

/** @return physical memory of this host in bytes (0 when unknown). */
inline uint64_t
hostMemoryBytes()
{
    long pages = ::sysconf(_SC_PHYS_PAGES);
    long page_size = ::sysconf(_SC_PAGE_SIZE);
    if (pages <= 0 || page_size <= 0)
        return 0;
    return uint64_t(pages) * uint64_t(page_size);
}

/**
 * Minimal JSON emitter for bench results: one object per measured
 * row, wrapped as {"bench": <name>, "host": {...}, "rows": [...]}.
 * Keys repeat the printed table's column names so the JSON and the
 * human table stay in sync. The host object records the environment
 * the numbers were measured on (CPU count, physical memory) so
 * archived results are interpretable — wall-clock rows from a 1-CPU
 * container say nothing about multi-core scaling.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::string bench) : bench_(std::move(bench))
    {
    }

    /** Start a new result row; add() calls append to it. */
    void beginRow() { rows_.emplace_back(); }

    void add(const std::string &key, const std::string &value)
    {
        rows_.back().emplace_back(key, quote(value));
    }

    void add(const std::string &key, const char *value)
    {
        add(key, std::string(value));
    }

    template <typename T,
              typename = std::enable_if_t<std::is_arithmetic_v<T>>>
    void
    add(const std::string &key, T value)
    {
        char buf[32];
        if constexpr (std::is_same_v<T, bool>) {
            rows_.back().emplace_back(key,
                                      value ? "true" : "false");
            return;
        } else if constexpr (std::is_floating_point_v<T>) {
            std::snprintf(buf, sizeof buf, "%.10g", double(value));
        } else if constexpr (std::is_signed_v<T>) {
            std::snprintf(buf, sizeof buf, "%lld",
                          (long long)value);
        } else {
            std::snprintf(buf, sizeof buf, "%llu",
                          (unsigned long long)value);
        }
        rows_.back().emplace_back(key, buf);
    }

    /** Write the document to @p path; no-op on an empty path.
     *  @return false only on an I/O failure. */
    bool write(const std::string &path) const
    {
        if (path.empty())
            return true;
        std::FILE *file = std::fopen(path.c_str(), "w");
        if (!file)
            return false;
        std::fprintf(file, "{\n  \"bench\": %s,\n", quote(bench_).c_str());
        std::fprintf(file,
                     "  \"host\": {\"cpus\": %u, "
                     "\"memory_bytes\": %llu},\n",
                     hostCpuCount(),
                     (unsigned long long)hostMemoryBytes());
        std::fprintf(file, "  \"rows\": [");
        for (size_t r = 0; r < rows_.size(); ++r) {
            std::fprintf(file, "%s\n    {", r ? "," : "");
            for (size_t f = 0; f < rows_[r].size(); ++f) {
                std::fprintf(file, "%s%s: %s", f ? ", " : "",
                             quote(rows_[r][f].first).c_str(),
                             rows_[r][f].second.c_str());
            }
            std::fprintf(file, "}");
        }
        // Observability snapshot: the whole metrics registry as of
        // this emission, so bench_diff can gate on counters (cache
        // hit rates, fallback counts) alongside the printed rows.
        std::fprintf(file, "\n  ],\n  \"metrics\": %s\n}\n",
                     telemetry::metricsJson(telemetry::snapshotMetrics())
                         .c_str());
        return std::fclose(file) == 0;
    }

  private:
    static std::string quote(const std::string &text)
    {
        std::string out = "\"";
        for (char c : text) {
            if (c == '"' || c == '\\') {
                out += '\\';
                out += c;
            } else if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
        out += '"';
        return out;
    }

    std::string bench_;
    std::vector<std::vector<std::pair<std::string, std::string>>>
        rows_;
};

/** @return a smaller config for simulation-heavy benches. */
inline rtl::PpConfig
benchSimConfig()
{
    const char *scale = std::getenv("ARCHVAL_BENCH_SCALE");
    if (scale && std::strcmp(scale, "full") == 0)
        return rtl::PpConfig::fullPreset();
    return rtl::PpConfig::smallPreset();
}

} // namespace archval::bench

#endif // ARCHVAL_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Shared helpers for the table/figure reproduction benches: aligned
 * paper-vs-measured rows and scale selection via ARCHVAL_BENCH_SCALE.
 */

#ifndef ARCHVAL_BENCH_BENCH_UTIL_HH
#define ARCHVAL_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "rtl/pp_config.hh"

namespace archval::bench
{

/** Print a bench banner. */
inline void
banner(const char *id, const char *title)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s — %s\n", id, title);
    std::printf("==================================================="
                "===========\n");
}

/** Print one "row | paper value | measured value" line. */
inline void
row(const char *label, const std::string &paper,
    const std::string &measured)
{
    std::printf("  %-34s %20s   %20s\n", label, paper.c_str(),
                measured.c_str());
}

/** Print the table header for paper-vs-measured rows. */
inline void
rowHeader()
{
    std::printf("  %-34s %20s   %20s\n", "", "paper (PP, 1995)",
                "this reproduction");
    std::printf("  %-34s %20s   %20s\n", "",
                "--------------------", "--------------------");
}

/**
 * @return the PP configuration benches should use: the full preset by
 * default, the small preset when ARCHVAL_BENCH_SCALE=small (useful
 * for smoke runs).
 */
inline rtl::PpConfig
benchConfig()
{
    const char *scale = std::getenv("ARCHVAL_BENCH_SCALE");
    if (scale && std::strcmp(scale, "small") == 0)
        return rtl::PpConfig::smallPreset();
    return rtl::PpConfig::fullPreset();
}

/** @return a smaller config for simulation-heavy benches. */
inline rtl::PpConfig
benchSimConfig()
{
    const char *scale = std::getenv("ARCHVAL_BENCH_SCALE");
    if (scale && std::strcmp(scale, "full") == 0)
        return rtl::PpConfig::fullPreset();
    return rtl::PpConfig::smallPreset();
}

} // namespace archval::bench

#endif // ARCHVAL_BENCH_BENCH_UTIL_HH

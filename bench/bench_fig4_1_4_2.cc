/**
 * @file
 * Figures 4.1 / 4.2 — What the method can and cannot catch.
 *
 * Figure 4.1: the implementation has *more* behaviours than the
 * specification (an extra transition into an erroneous state).
 * Enumerating the implementation FSM exercises the extra arc and the
 * comparison exposes it; enumerating the specification (protocol-
 * conformance style) never drives the offending input and misses it.
 *
 * Figure 4.2: the implementation has *fewer* behaviours (two inputs
 * erroneously merged onto one transition). With the paper's default
 * first-condition edge labelling only one of the two conditions is
 * ever exercised, so the bug can be missed; recording all unique
 * conditions (the fix proposed in Section 4) catches it.
 */

#include <cstdio>

#include "bench_util.hh"
#include "fsm/built_model.hh"
#include "graph/tour.hh"
#include "murphi/enumerator.hh"

using namespace archval;

namespace
{

/**
 * Walk @p tour over @p graph (enumerated from @p driver) feeding the
 * same input symbols to @p observer; @return number of cycles where
 * the two machines' state names disagree (unknown inputs self-loop).
 */
unsigned
lockstepMismatches(const graph::StateGraph &graph,
                   const std::vector<graph::Trace> &tours,
                   const fsm::ExplicitFsm &driver,
                   const fsm::ExplicitFsm &observer)
{
    unsigned mismatches = 0;
    size_t state_bits = 1;
    while ((size_t(1) << state_bits) < driver.numStates())
        ++state_bits;
    for (const auto &trace : tours) {
        size_t observer_state = 0; // reset
        for (graph::EdgeId e : trace.edges) {
            const auto &edge = graph.edge(e);
            // Single choice variable: the code is the input index.
            size_t input = static_cast<size_t>(edge.choiceCode);
            const std::string &symbol = driver.inputs()[input];

            // The observer may not know this symbol; unknown inputs
            // are ignored (self-loop).
            size_t next = observer_state;
            for (size_t i = 0; i < observer.numInputs(); ++i) {
                if (observer.inputs()[i] == symbol) {
                    if (auto stepped =
                            observer.step(observer_state, i))
                        next = *stepped;
                    break;
                }
            }
            observer_state = next;

            const std::string &impl_state =
                driver.states()[graph.packedState(edge.dst)
                                    .getField(0, state_bits)];
            if (impl_state != observer.states()[observer_state])
                ++mismatches;
        }
    }
    return mismatches;
}

std::pair<graph::StateGraph, std::vector<graph::Trace>>
enumerateAndTour(const fsm::ExplicitFsm &fsm,
                 murphi::EdgeRecording recording)
{
    auto model = fsm.toModel();
    murphi::EnumOptions options;
    options.recording = recording;
    murphi::Enumerator enumerator(*model, options);
    auto graph = enumerator.runOrThrow();
    graph::TourGenerator tours(graph);
    auto traces = tours.run();
    return {std::move(graph), std::move(traces)};
}

} // namespace

int
main()
{
    bench::banner("Fig 4.1 / 4.2",
                  "Erroneous implementations: more / fewer "
                  "behaviours");

    // ------------------------------------------------------------------
    // Figure 4.1 — implementation with MORE behaviours.
    // ------------------------------------------------------------------
    fsm::ExplicitFsm spec41("spec41");
    spec41.addState("A");
    spec41.addState("B");
    spec41.addInput("a");
    spec41.addInput("b");
    spec41.addTransition("A", "a", "B");
    spec41.addTransition("B", "b", "A");

    fsm::ExplicitFsm impl41("impl41");
    impl41.addState("A");
    impl41.addState("B");
    impl41.addState("C"); // erroneous extra state
    impl41.addInput("a");
    impl41.addInput("b");
    impl41.addInput("c"); // input the spec does not model
    impl41.addTransition("A", "a", "B");
    impl41.addTransition("B", "b", "A");
    impl41.addTransition("B", "c", "C"); // the extra behaviour
    impl41.addTransition("C", "b", "A");

    auto [impl_graph, impl_tours] = enumerateAndTour(
        impl41, murphi::EdgeRecording::FirstCondition);
    unsigned impl_driven =
        lockstepMismatches(impl_graph, impl_tours, impl41, spec41);

    auto [spec_graph, spec_tours] = enumerateAndTour(
        spec41, murphi::EdgeRecording::FirstCondition);
    unsigned spec_driven =
        lockstepMismatches(spec_graph, spec_tours, spec41, impl41);

    std::printf("\nFigure 4.1 (impl adds B--c-->C):\n");
    std::printf("  tours from the IMPLEMENTATION graph: %u "
                "mismatch(es) -> bug %s\n",
                impl_driven, impl_driven ? "EXPOSED" : "missed");
    std::printf("  tours from the SPECIFICATION graph:  %u "
                "mismatch(es) -> bug %s\n",
                spec_driven, spec_driven ? "exposed" : "MISSED");
    std::printf("  (conformance testing enumerates the spec and "
                "misses implementation-only\n   behaviours; this "
                "method enumerates the implementation)\n");

    // ------------------------------------------------------------------
    // Figure 4.2 — implementation with FEWER behaviours.
    // ------------------------------------------------------------------
    fsm::ExplicitFsm spec42("spec42");
    spec42.addState("A");
    spec42.addState("B");
    spec42.addState("C");
    spec42.addInput("a");
    spec42.addInput("b");
    spec42.addInput("c");
    spec42.addTransition("A", "a", "B");
    spec42.addTransition("A", "c", "C"); // distinct behaviour on c
    spec42.addTransition("B", "b", "A");
    spec42.addTransition("C", "b", "A");

    fsm::ExplicitFsm impl42("impl42");
    impl42.addState("A");
    impl42.addState("B");
    impl42.addState("C"); // exists but erroneously unreachable
    impl42.addInput("a");
    impl42.addInput("b");
    impl42.addInput("c");
    impl42.addTransition("A", "a", "B");
    impl42.addTransition("A", "c", "B"); // merged with "a" (the bug)
    impl42.addTransition("B", "b", "A");
    impl42.addTransition("C", "b", "A");

    auto [first_graph, first_tours] = enumerateAndTour(
        impl42, murphi::EdgeRecording::FirstCondition);
    unsigned first_found =
        lockstepMismatches(first_graph, first_tours, impl42, spec42);

    auto [all_graph, all_tours] = enumerateAndTour(
        impl42, murphi::EdgeRecording::AllConditions);
    unsigned all_found =
        lockstepMismatches(all_graph, all_tours, impl42, spec42);

    std::printf("\nFigure 4.2 (impl merges A--c--> onto the A--a--> "
                "arc):\n");
    std::printf("  first-condition labelling: %zu edge(s) from A, "
                "%u mismatch(es) -> bug %s\n",
                first_graph.outEdges(0).size(), first_found,
                first_found ? "exposed" : "MISSED");
    std::printf("  all-conditions labelling:  %zu edge(s) from A, "
                "%u mismatch(es) -> bug %s\n",
                all_graph.outEdges(0).size(), all_found,
                all_found ? "EXPOSED" : "missed");
    std::printf("  (Section 4's proposed fix: capture all unique "
                "transition conditions,\n   not just the first one "
                "per state pair)\n");

    bool shape_ok = impl_driven > 0 && spec_driven == 0 &&
                    first_found == 0 && all_found > 0;
    std::printf("\nshape check: %s\n", shape_ok ? "OK" : "FAILED");
    return shape_ok ? 0 : 1;
}

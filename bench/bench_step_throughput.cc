/**
 * @file
 * Step-kernel throughput: interpreted expression walking vs compiled
 * bytecode vs 64-lane bit-sliced evaluation, over every design in the
 * HDL corpus.
 *
 * Two layers are measured per design:
 *
 *  - kernel-level expansion: repeated passes expanding every
 *    reachable state through every choice code (states/sec and
 *    cycles/sec, where one cycle = one (state, choice) step). This
 *    is the apples-to-apples number the speedup columns gate on.
 *  - end-to-end enumeration wall time per kernel (informational;
 *    includes hashing/interning, which is kernel-independent).
 *
 * Every mode's graph fingerprint is cross-checked before timing —
 * a fast wrong kernel is not a result. The committed baseline gates
 * `speedup_bytecode` >= 2x and `speedup_sliced` >= 8x on the largest
 * design (bench_diff.py MIN_FLOORS).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "compile/bytecode.hh"
#include "compile/kernel.hh"
#include "graph/state_graph.hh"
#include "hdl/corpus.hh"
#include "murphi/enumerator.hh"
#include "support/timer.hh"

namespace archval
{
namespace
{

/** One timed enumeration; @return (fingerprint, seconds, stats). */
struct EnumRun
{
    uint64_t fingerprint;
    double seconds;
    murphi::EnumStats stats;
};

EnumRun
runEnum(const fsm::Model &model, murphi::StepKernel kernel)
{
    murphi::EnumOptions options;
    options.compiledStep = kernel;
    murphi::Enumerator enumerator(model, options);
    WallTimer timer;
    graph::StateGraph graph = enumerator.runOrThrow();
    EnumRun run;
    run.seconds = timer.seconds();
    run.fingerprint = graph::fingerprint(graph);
    run.stats = enumerator.stats();
    return run;
}

/** Time repeated full passes of @p pass (one pass = expand every
 *  state once); @return seconds per pass. */
template <typename Fn>
double
secondsPerPass(Fn &&pass)
{
    pass(); // warm-up (page in code, touch buffers)
    WallTimer timer;
    size_t passes = 0;
    do {
        pass();
        ++passes;
    } while (timer.seconds() < 0.25);
    return timer.seconds() / double(passes);
}

void
benchDesign(const hdl::CorpusDesign &design,
            bench::JsonWriter &writer)
{
    auto translated = hdl::translateCorpus(design);
    if (!translated.ok())
        fatal(translated.errorMessage());
    const fsm::Model &model = *translated.value().model;
    const uint64_t combos =
        model.makeChoiceCodec().numCombinations();

    // End-to-end enumeration per kernel, fingerprint-checked.
    EnumRun interp = runEnum(model, murphi::StepKernel::Interpreted);
    EnumRun bytecode = runEnum(model, murphi::StepKernel::Bytecode);
    EnumRun sliced = runEnum(model, murphi::StepKernel::BitSliced);
    if (bytecode.fingerprint != interp.fingerprint ||
        sliced.fingerprint != interp.fingerprint)
        fatal(std::string("kernel fingerprint mismatch on ") +
              design.name);

    // Reachable states for the kernel-level passes.
    murphi::Enumerator enumerator(model);
    graph::StateGraph graph = enumerator.runOrThrow();
    const size_t num_states = graph.numStates();
    std::vector<const BitVec *> states(num_states);
    for (size_t s = 0; s < num_states; ++s)
        states[s] = &graph.packedState(s);

    auto program = compile::lower(*model.compileSpec());
    compile::ScalarKernel scalar(program);
    compile::SlicedKernel slicedKernel(program);

    uint64_t sink_count = 0;
    auto count_sink = [&sink_count](uint64_t, fsm::Transition &&t) {
        sink_count += t.next.numBits();
    };

    const double interp_pass = secondsPerPass([&] {
        for (const BitVec *state : states)
            model.forEachTransition(*state, count_sink);
    });
    const double bytecode_pass = secondsPerPass([&] {
        for (const BitVec *state : states)
            scalar.forEachTransition(*state, count_sink);
    });
    const double sliced_pass = secondsPerPass([&] {
        for (size_t i = 0; i < num_states; i += 64) {
            const size_t chunk =
                std::min<size_t>(64, num_states - i);
            slicedKernel.expandBatch(
                &states[i], chunk,
                [&sink_count](size_t, uint64_t,
                              fsm::Transition &&t) {
                    sink_count += t.next.numBits();
                });
        }
    });
    if (sink_count == 0)
        fatal("kernel passes produced no transitions");

    const double interp_sps = double(num_states) / interp_pass;
    const double bytecode_sps = double(num_states) / bytecode_pass;
    const double sliced_sps = double(num_states) / sliced_pass;
    const double speedup_bytecode = interp_pass / bytecode_pass;
    const double speedup_sliced = interp_pass / sliced_pass;

    std::printf("  %-16s %8zu states %4llu combos | "
                "%11.0f / %11.0f / %11.0f states/s | "
                "bytecode %5.1fx sliced %5.1fx%s\n",
                design.name, num_states,
                (unsigned long long)combos, interp_sps,
                bytecode_sps, sliced_sps, speedup_bytecode,
                speedup_sliced, design.largest ? "  [largest]" : "");

    writer.beginRow();
    writer.add("design", design.name);
    writer.add("largest", design.largest);
    writer.add("states", (uint64_t)num_states);
    writer.add("edges", (uint64_t)graph.numEdges());
    writer.add("combos", combos);
    writer.add("interp_states_per_sec", interp_sps);
    writer.add("bytecode_states_per_sec", bytecode_sps);
    writer.add("sliced_states_per_sec", sliced_sps);
    writer.add("interp_cycles_per_sec", interp_sps * double(combos));
    writer.add("bytecode_cycles_per_sec",
               bytecode_sps * double(combos));
    writer.add("sliced_cycles_per_sec", sliced_sps * double(combos));
    writer.add("speedup_bytecode", speedup_bytecode);
    writer.add("speedup_sliced", speedup_sliced);
    writer.add("enum_interp_seconds", interp.seconds);
    writer.add("enum_bytecode_seconds", bytecode.seconds);
    writer.add("enum_sliced_seconds", sliced.seconds);
    writer.add("sliced_fallback_lanes",
               sliced.stats.slicedFallbackLanes);
    writer.add("bytecode_bytes", (uint64_t)program->byteSize());
    writer.add("bytecode_regs", (uint64_t)program->numRegs);
}

} // namespace
} // namespace archval

int
main(int argc, char **argv)
{
    using namespace archval;
    bench::banner("bench_step_throughput",
                  "step kernels: interpreted vs bytecode vs "
                  "bit-sliced (states/sec, cycles/sec)");
    std::string json = bench::jsonPath(argc, argv);

    bench::JsonWriter writer("step_throughput");
    for (const auto &design : hdl::designCorpus())
        benchDesign(design, writer);

    if (!writer.write(json)) {
        std::fprintf(stderr, "failed to write %s\n", json.c_str());
        return 1;
    }
    return 0;
}

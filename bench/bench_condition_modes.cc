/**
 * @file
 * Edge-recording mode ablation: FirstCondition (the paper's
 * default) vs AllConditions (the Section 4 fix).
 *
 * Measures the cost of the fix on the PP model — extra edges, extra
 * tour length — that the paper trades against the Figure 4.2 bug
 * class (demonstrated end-to-end in bench_fig4_1_4_2).
 */

#include <cstdio>

#include "bench_util.hh"
#include "graph/tour.hh"
#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"
#include "support/strings.hh"

using namespace archval;

namespace
{

struct ModeResult
{
    uint64_t states;
    uint64_t edges;
    uint64_t traversals;
    uint64_t instructions;
    double enumSecs;
    double tourSecs;
};

ModeResult
measure(const rtl::PpConfig &config, murphi::EdgeRecording recording)
{
    rtl::PpFsmModel model(config);
    murphi::EnumOptions options;
    options.recording = recording;
    murphi::Enumerator enumerator(model, options);
    auto graph = enumerator.runOrThrow();
    graph::TourGenerator tours(graph);
    auto traces = tours.run();
    return {enumerator.stats().numStates, enumerator.stats().numEdges,
            tours.stats().totalEdgeTraversals,
            tours.stats().totalInstructions,
            enumerator.stats().cpuSeconds,
            tours.stats().generationSeconds};
}

} // namespace

int
main()
{
    bench::banner("Condition modes",
                  "FirstCondition vs AllConditions edge recording");

    rtl::PpConfig config = bench::benchSimConfig();
    ModeResult first =
        measure(config, murphi::EdgeRecording::FirstCondition);
    ModeResult all =
        measure(config, murphi::EdgeRecording::AllConditions);

    std::printf("\n%-26s %16s %16s %9s\n", "", "first-condition",
                "all-conditions", "ratio");
    auto line = [](const char *label, uint64_t a, uint64_t b) {
        std::printf("%-26s %16s %16s %8.2fx\n", label,
                    withCommas(a).c_str(), withCommas(b).c_str(),
                    a ? double(b) / double(a) : 0.0);
    };
    line("reachable states", first.states, all.states);
    line("state-graph edges", first.edges, all.edges);
    line("tour edge traversals", first.traversals, all.traversals);
    line("tour instructions", first.instructions, all.instructions);
    std::printf("%-26s %15.1fs %15.1fs\n", "enumeration time",
                first.enumSecs, all.enumSecs);
    std::printf("%-26s %15.1fs %15.1fs\n", "tour generation time",
                first.tourSecs, all.tourSecs);

    std::printf(
        "\nshape: the state set is identical; only the edge labels "
        "multiply. The fix's\nsimulation cost is the edge ratio — "
        "the price of catching the Figure 4.2\n\"fewer behaviours\" "
        "bug class (see bench_fig4_1_4_2).\n");
    return 0;
}

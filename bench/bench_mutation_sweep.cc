/**
 * @file
 * Control-mutation sweep — what the methodology can and cannot see
 * (Section 4's caveat, measured).
 *
 * Each mutation drops one qualification term inside the PP control
 * equations (a "single control logic" bug in the Table 1.1
 * taxonomy). Because the FSM model is derived from the same mutated
 * control, the vectors still drive the implementation through every
 * arc of its (buggy) state graph; result comparison then catches
 * exactly the mutations whose misbehaviour reaches architectural
 * state, while timing-only mutations escape — "performance bugs may
 * be in the design and not detected" unless the specification is
 * made cycle-accurate.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/validation_flow.hh"
#include "rtl/mutations.hh"
#include "support/strings.hh"

using namespace archval;

int
main()
{
    bench::banner("Mutation sweep",
                  "Single-control-logic bugs through the full flow");

    rtl::PpConfig base = bench::benchSimConfig();

    std::printf("\n%-18s %-44s %10s %10s %10s\n", "mutation",
                "dropped qualification", "states", "detected",
                "expected");
    bool shape_ok = true;
    for (size_t m = 0; m < rtl::numMutations; ++m) {
        rtl::MutationId mutation = static_cast<rtl::MutationId>(m);
        rtl::PpConfig config = base;
        config.mutations.set(m);

        core::FlowOptions options;
        options.stopAtFirstDivergence = true;
        core::PpValidationFlow flow(config, options);
        core::FlowReport report = flow.run();

        bool expected = rtl::mutationDataVisible(mutation);
        bool ok = report.bugFound() == expected;
        shape_ok &= ok;
        std::printf("%-18s %-44s %10s %10s %10s%s\n",
                    rtl::mutationName(mutation),
                    rtl::mutationSummary(mutation),
                    withCommas(flow.enumStats().numStates).c_str(),
                    report.bugFound() ? "yes" : "no",
                    expected ? "yes" : "no", ok ? "" : "  <-- ?");
    }

    std::printf(
        "\nnotes:\n"
        "  - detected mutations corrupt architectural state "
        "(ordering violations, lost\n    stores, wedged ports); the "
        "flow exposes them like any Table 2.1 bug.\n"
        "  - undetected mutations change only timing; catching them "
        "needs a\n    cycle-accurate specification (the paper's "
        "stated limitation, which it\n    deliberately avoided to "
        "keep the models independent).\n");
    std::printf("\nshape check: %s\n", shape_ok ? "OK" : "FAILED");
    return shape_ok ? 0 : 1;
}

/**
 * @file
 * Microbenchmarks (google-benchmark) of the library's hot paths:
 * packed-state hashing, the PP next-state function, explicit-state
 * enumeration throughput, and tour generation throughput. These are
 * the knobs behind the Table 3.2 / 3.3 "execution time" rows.
 */

#include <benchmark/benchmark.h>

#include "graph/tour.hh"
#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"
#include "support/bitvec.hh"
#include "support/rng.hh"

using namespace archval;

namespace
{

void
BM_BitVecHash(benchmark::State &state)
{
    BitVec vec(static_cast<size_t>(state.range(0)));
    Rng rng(1);
    for (size_t i = 0; i < vec.numBits(); i += 64) {
        vec.setField(i, std::min<size_t>(64, vec.numBits() - i),
                     rng.next());
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(vec.hash());
}
BENCHMARK(BM_BitVecHash)->Arg(32)->Arg(98)->Arg(256);

void
BM_BitVecFieldAccess(benchmark::State &state)
{
    BitVec vec(128);
    uint64_t i = 0;
    for (auto _ : state) {
        vec.setField((i * 7) % 64, 9, i);
        benchmark::DoNotOptimize(vec.getField((i * 11) % 64, 9));
        ++i;
    }
}
BENCHMARK(BM_BitVecFieldAccess);

void
BM_PpNextState(benchmark::State &state)
{
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    BitVec reset = model.resetState();
    fsm::Choice choice(rtl::numPpChoiceVars, 0);
    choice[static_cast<size_t>(rtl::PpChoiceVar::IHit)] = 1;
    for (auto _ : state) {
        auto t = model.next(reset, choice);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_PpNextState);

void
BM_Enumeration(benchmark::State &state)
{
    rtl::PpConfig config = rtl::PpConfig::smallPreset();
    for (auto _ : state) {
        rtl::PpFsmModel model(config);
        murphi::Enumerator enumerator(model);
        auto graph = enumerator.runOrThrow();
        benchmark::DoNotOptimize(graph.numStates());
        state.counters["states/s"] = benchmark::Counter(
            static_cast<double>(graph.numStates()),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_Enumeration)->Unit(benchmark::kMillisecond);

void
BM_TourGeneration(benchmark::State &state)
{
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    for (auto _ : state) {
        graph::TourGenerator generator(graph);
        auto traces = generator.run();
        benchmark::DoNotOptimize(traces.size());
        state.counters["edges/s"] = benchmark::Counter(
            static_cast<double>(
                generator.stats().totalEdgeTraversals),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_TourGeneration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

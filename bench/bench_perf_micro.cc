/**
 * @file
 * Microbenchmarks (google-benchmark) of the library's hot paths:
 * packed-state hashing, the PP next-state function, explicit-state
 * enumeration throughput, and tour generation throughput. These are
 * the knobs behind the Table 3.2 / 3.3 "execution time" rows.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "graph/tour.hh"
#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"
#include "support/bitvec.hh"
#include "support/rng.hh"

using namespace archval;

namespace
{

void
BM_BitVecHash(benchmark::State &state)
{
    BitVec vec(static_cast<size_t>(state.range(0)));
    Rng rng(1);
    for (size_t i = 0; i < vec.numBits(); i += 64) {
        vec.setField(i, std::min<size_t>(64, vec.numBits() - i),
                     rng.next());
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(vec.hash());
}
BENCHMARK(BM_BitVecHash)->Arg(32)->Arg(98)->Arg(256);

void
BM_BitVecFieldAccess(benchmark::State &state)
{
    BitVec vec(128);
    uint64_t i = 0;
    for (auto _ : state) {
        vec.setField((i * 7) % 64, 9, i);
        benchmark::DoNotOptimize(vec.getField((i * 11) % 64, 9));
        ++i;
    }
}
BENCHMARK(BM_BitVecFieldAccess);

void
BM_PpNextState(benchmark::State &state)
{
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    BitVec reset = model.resetState();
    fsm::Choice choice(rtl::numPpChoiceVars, 0);
    choice[static_cast<size_t>(rtl::PpChoiceVar::IHit)] = 1;
    for (auto _ : state) {
        auto t = model.next(reset, choice);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_PpNextState);

void
BM_Enumeration(benchmark::State &state)
{
    rtl::PpConfig config = rtl::PpConfig::smallPreset();
    for (auto _ : state) {
        rtl::PpFsmModel model(config);
        murphi::Enumerator enumerator(model);
        auto graph = enumerator.runOrThrow();
        benchmark::DoNotOptimize(graph.numStates());
        state.counters["states/s"] = benchmark::Counter(
            static_cast<double>(graph.numStates()),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_Enumeration)->Unit(benchmark::kMillisecond);

void
BM_TourGeneration(benchmark::State &state)
{
    rtl::PpFsmModel model(rtl::PpConfig::smallPreset());
    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    for (auto _ : state) {
        graph::TourGenerator generator(graph);
        auto traces = generator.run();
        benchmark::DoNotOptimize(traces.size());
        state.counters["edges/s"] = benchmark::Counter(
            static_cast<double>(
                generator.stats().totalEdgeTraversals),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_TourGeneration)->Unit(benchmark::kMillisecond);

/**
 * Console reporter that also records every run into a JsonWriter
 * row, so `--json PATH` emits the same machine-readable shape as
 * the other benches (bench_diff.py compatible) while the console
 * table stays untouched.
 */
class JsonCollectingReporter : public benchmark::ConsoleReporter
{
  public:
    explicit JsonCollectingReporter(archval::bench::JsonWriter &writer)
        : writer_(writer)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            writer_.beginRow();
            writer_.add("benchmark", run.benchmark_name());
            writer_.add("time_unit",
                        benchmark::GetTimeUnitString(run.time_unit));
            writer_.add("real_time", run.GetAdjustedRealTime());
            writer_.add("cpu_time", run.GetAdjustedCPUTime());
            writer_.add("iterations",
                        static_cast<uint64_t>(run.iterations));
            for (const auto &[name, counter] : run.counters)
                writer_.add(name, counter.value);
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    archval::bench::JsonWriter &writer_;
};

} // namespace

int
main(int argc, char **argv)
{
    // google-benchmark rejects flags it does not know, so strip the
    // repo-convention `--json PATH` before Initialize sees it.
    std::string json_path;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[i + 1];
            ++i;
            continue;
        }
        args.push_back(argv[i]);
    }
    int filtered_argc = static_cast<int>(args.size());
    benchmark::Initialize(&filtered_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                               args.data()))
        return 1;

    archval::bench::JsonWriter writer("perf_micro");
    JsonCollectingReporter reporter(writer);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    if (!writer.write(json_path)) {
        std::fprintf(stderr, "failed to write %s\n",
                     json_path.c_str());
        return 1;
    }
    return 0;
}

/**
 * @file
 * Figures 2.2 / 2.3 — Bug #5 timing diagrams.
 *
 * Drives the RTL model through the bug-#5 scenario and prints the
 * cycle-by-cycle waveform for both cases: the glitch masked by the
 * refill logic's second write (Figure 2.2) and the external stall
 * landing in the window of opportunity so garbage reaches the
 * register file (Figure 2.3).
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/bug5_scenario.hh"

using namespace archval;

namespace
{

void
show(const char *title, const harness::Bug5Outcome &outcome)
{
    std::printf("\n%s\n", title);
    for (const auto &line : outcome.waveform)
        std::printf("  %s\n", line.c_str());
    std::printf("  register value: 0x%08x (expected 0x%08x) -> %s\n",
                outcome.loadedValue, outcome.expectedValue,
                outcome.corrupted ? "CORRUPTED" : "correct");
}

} // namespace

int
main()
{
    bench::banner("Fig 2.2 / 2.3", "Bug #5 timing diagrams");
    rtl::PpConfig config = bench::benchSimConfig();

    std::printf("\nscenario: a load misses the D-cache; another "
                "load/store follows in the pipe;\nthe critical-word-"
                "first restart drives the word onto Membus, the "
                "glitch\noverwrites it, and the refill logic's second "
                "write normally corrects it.\n");

    show("Figure 2.2 — glitch masked (no external stall):",
         harness::runBug5Scenario(config, false, true));
    show("Figure 2.3 — external stall in the window (garbage "
         "written):",
         harness::runBug5Scenario(config, true, true));
    show("fixed design, same external stall (for contrast):",
         harness::runBug5Scenario(config, true, false));

    auto masked = harness::runBug5Scenario(config, false, true);
    auto corrupted = harness::runBug5Scenario(config, true, true);
    auto fixed = harness::runBug5Scenario(config, true, false);
    bool shape_ok =
        !masked.corrupted && corrupted.corrupted && !fixed.corrupted;
    std::printf("\nshape check: %s (glitch masked without stall, "
                "garbage with stall, fixed\ndesign immune)\n",
                shape_ok ? "OK" : "FAILED");
    return shape_ok ? 0 : 1;
}

/**
 * @file
 * Bug-detection latency — instructions to first divergence for each
 * injected PP bug under transition-tour stimulus vs random stimulus.
 *
 * The paper's motivation: "each of the conditions is so improbable
 * that finding an error that occurs at the conjunction of these
 * cases requires a prohibitively large number of simulation cycles"
 * with random testing (Section 1).
 *
 * `--json <path>` additionally writes the per-bug latency rows as
 * JSON (CI uses BENCH_bug_latency.json; see tools/bench_diff.py).
 */

#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_util.hh"
#include "harness/bug_hunt.hh"
#include "murphi/enumerator.hh"
#include "support/strings.hh"

using namespace archval;

int
main(int argc, char **argv)
{
    bench::banner("Detection latency",
                  "Instructions to detection: tour vs random, per "
                  "bug");

    rtl::PpConfig config = bench::benchSimConfig();
    rtl::PpFsmModel model(config);
    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    graph::TourGenerator tour_gen(graph);
    // A 10k trace limit keeps per-bug re-runs short (the paper's
    // rationale for splitting traces).
    graph::TourOptions tour_options;
    tour_options.maxInstructionsPerTrace = 10'000;
    graph::TourGenerator limited(graph, tour_options);
    auto tours = limited.run();
    vecgen::VectorGenerator generator(model, 777);
    auto vectors = generator.generateAll(graph, tours);

    const uint64_t tour_budget = limited.stats().totalInstructions;
    const uint64_t random_budget = 8 * tour_budget;

    std::printf("\ntour budget %s instructions; random budget %s "
                "(8x)\n\n",
                withCommas(tour_budget).c_str(),
                withCommas(random_budget).c_str());

    // Replay the tour and random arms through the checkpointed
    // engine on all available cores (byte-identical by contract).
    harness::ReplayOptions replay;
    replay.numThreads =
        std::max(1u, std::thread::hardware_concurrency());
    harness::BugHunt hunt(config, model, graph, vectors, replay);
    std::printf("%-5s  %-34s  %18s  %18s  %8s\n", "bug",
                "mechanism", "tour instrs", "random instrs",
                "ratio");
    bench::JsonWriter json("bug_latency");
    for (size_t b = 0; b < rtl::numBugs; ++b) {
        rtl::BugId bug = static_cast<rtl::BugId>(b);
        auto result = hunt.hunt(bug, random_budget, 4242 + b);
        json.beginRow();
        json.add("bug", (uint64_t)(b + 1));
        json.add("tour_detected", result.tour.detected);
        json.add("tour_instructions", result.tour.instructions);
        json.add("random_detected", result.random.detected);
        json.add("random_instructions", result.random.instructions);
        json.add("random_budget", random_budget);
        std::string tour_cell =
            result.tour.detected
                ? withCommas(result.tour.instructions)
                : "not detected";
        std::string random_cell =
            result.random.detected
                ? withCommas(result.random.instructions)
                : formatString(">%s",
                               withCommas(random_budget).c_str());
        std::string ratio = "-";
        if (result.tour.detected && result.random.detected &&
            result.tour.instructions > 0) {
            ratio = formatString(
                "%.1fx", double(result.random.instructions) /
                             double(result.tour.instructions));
        } else if (result.tour.detected && !result.random.detected) {
            ratio = "inf";
        }
        std::string mech = rtl::bugSummary(bug);
        if (mech.size() > 34)
            mech = mech.substr(0, 31) + "...";
        std::printf("%-5s  %-34s  %18s  %18s  %8s\n",
                    rtl::bugName(bug), mech.c_str(),
                    tour_cell.c_str(), random_cell.c_str(),
                    ratio.c_str());
    }
    std::printf("\nshape: the tour's exhaustive arc coverage bounds "
                "detection by its own length;\nrandom stimulus pays "
                "a large multiple, or never reaches the "
                "conjunction.\n");
    std::string path = bench::jsonPath(argc, argv);
    if (!json.write(path)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    return 0;
}

/**
 * @file
 * Ablation of the Figure 3.3 tour-generation design choices.
 *
 *  - Greedy DFS+BFS (the paper's algorithm) vs the optimal
 *    resettable Chinese Postman tour [EJ72]: how much re-traversal
 *    overhead does avoiding backtracking cost? (Section 3.3 argues
 *    re-traversal is cheap in simulation and near-optimality is not
 *    required.)
 *  - Trace-limit sweep: the Table 3.3 trade-off between the longest
 *    single trace (time to re-reach a bug) and total overhead,
 *    across several per-trace instruction limits.
 *  - Replay ablation: plain limit cuts vs nested prefix splits under
 *    the checkpointed replay engine — nesting trades a larger
 *    nominal batch for heavy cross-trace sharing the engine removes.
 *
 * `--json <path>` additionally writes every measured row as JSON
 * (CI uses BENCH_tour_ablation.json; see tools/bench_diff.py).
 */

#include <cstdio>

#include "bench_util.hh"
#include "graph/postman.hh"
#include "graph/tour.hh"
#include "harness/replay_engine.hh"
#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"
#include "support/strings.hh"
#include "support/timer.hh"

using namespace archval;

int
main(int argc, char **argv)
{
    bench::banner("Tour ablation",
                  "Greedy DFS+BFS vs Chinese Postman; trace-limit "
                  "sweep");

    rtl::PpConfig config = bench::benchSimConfig();
    rtl::PpFsmModel model(config);
    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();
    std::printf("\ngraph: %s states, %s edges\n",
                withCommas(graph.numStates()).c_str(),
                withCommas(graph.numEdges()).c_str());

    // --- optimal baseline -------------------------------------------------
    WallTimer postman_timer;
    auto postman = graph::solveResettablePostman(graph);
    auto euler = graph::hierholzerTour(graph, postman);
    double postman_secs = postman_timer.seconds();
    if (auto err = graph::checkPostmanTour(graph, postman, euler);
        !err.empty()) {
        std::fprintf(stderr, "postman check failed: %s\n",
                     err.c_str());
        return 1;
    }

    WallTimer greedy_timer;
    graph::TourGenerator greedy(graph);
    auto greedy_traces = greedy.run();
    double greedy_secs = greedy_timer.seconds();

    std::printf("\n%-28s %16s %16s\n", "", "greedy DFS+BFS",
                "Chinese Postman");
    std::printf("%-28s %16s %16s\n", "edge traversals",
                withCommas(greedy.stats().totalEdgeTraversals).c_str(),
                withCommas(postman.totalTraversals).c_str());
    std::printf("%-28s %16s %16s\n", "trace restarts",
                withCommas(greedy.stats().numTraces - 1).c_str(),
                withCommas(postman.resetReturns).c_str());
    std::printf("%-28s %16.2f %16.2f\n", "generation time (s)",
                greedy_secs, postman_secs);
    double overhead =
        postman.tourLength
            ? (double(greedy.stats().totalEdgeTraversals +
                      greedy.stats().numTraces - 1) /
                   double(postman.tourLength) -
               1.0) * 100.0
            : 0.0;
    std::printf("%-28s %15.1f%%\n",
                "greedy overhead vs optimal", overhead);

    bench::JsonWriter json("tour_ablation");
    json.beginRow();
    json.add("section", "postman");
    json.add("greedy_traversals",
             greedy.stats().totalEdgeTraversals);
    json.add("greedy_restarts",
             (uint64_t)(greedy.stats().numTraces - 1));
    json.add("postman_traversals", postman.totalTraversals);
    json.add("postman_restarts", postman.resetReturns);
    json.add("greedy_overhead_pct", overhead);
    json.add("greedy_seconds", greedy_secs);
    json.add("postman_seconds", postman_secs);

    // --- trace-limit sweep -------------------------------------------------
    std::printf("\ntrace-limit sweep (Table 3.3 trade-off):\n");
    std::printf("%12s %10s %16s %16s %18s\n", "limit", "traces",
                "instructions", "longest trace",
                "est. re-run @100Hz");
    for (uint64_t limit : {uint64_t(0), uint64_t(100'000),
                           uint64_t(10'000), uint64_t(1'000)}) {
        graph::TourOptions options;
        options.maxInstructionsPerTrace = limit;
        graph::TourGenerator generator(graph, options);
        auto traces = generator.run();
        if (auto err = graph::checkTourCoverage(graph, traces);
            !err.empty()) {
            std::fprintf(stderr, "coverage check failed: %s\n",
                         err.c_str());
            return 1;
        }
        const auto &stats = generator.stats();
        std::printf("%12s %10s %16s %16s %18s\n",
                    limit ? withCommas(limit).c_str() : "none",
                    withCommas(stats.numTraces).c_str(),
                    withCommas(stats.totalInstructions).c_str(),
                    withCommas(stats.longestTraceEdges).c_str(),
                    humanSeconds(double(stats.longestTraceEdges) /
                                 100.0)
                        .c_str());
        json.beginRow();
        json.add("section", "limit_sweep");
        json.add("limit", limit);
        json.add("traces", (uint64_t)stats.numTraces);
        json.add("instructions", stats.totalInstructions);
        json.add("longest_trace_edges", stats.longestTraceEdges);
    }
    std::printf("\nshape: tighter limits multiply trace count but "
                "barely change total cost,\nwhile slashing the "
                "longest trace — the paper's argument for splitting "
                "tours\n(\"extremely helpful in reducing the time "
                "needed to rerun a simulation to\nreach a bug\").\n");

    // --- checkpointed replay ablation --------------------------------------
    // How the split mode interacts with harness::ReplayEngine on the
    // bug-free batch: plain cuts share almost nothing (restart paths
    // route through a bushy BFS tree), nested prefix splits share
    // their entire stems, which the checkpoint cache simulates once.
    std::printf("\nreplay ablation (10k limit, bug-free batch, "
                "checkpoint cache on/off):\n");
    std::printf("%8s %16s %16s %16s %9s\n", "split", "batch cycles",
                "sim (cache off)", "sim (cache on)", "avoided");
    for (bool nested : {false, true}) {
        graph::TourOptions options;
        options.maxInstructionsPerTrace = 10'000;
        options.nestedPrefixSplits = nested;
        graph::TourGenerator generator(graph, options);
        auto traces = generator.run();
        vecgen::VectorGenerator vecgen_(model, 2024);
        auto vectors = vecgen_.generateAll(graph, traces);

        uint64_t sim[2] = {0, 0};
        uint64_t batch = 0;
        double avoided = 0.0;
        for (bool cache : {false, true}) {
            harness::ReplayOptions replay;
            replay.checkpointBudgetBytes =
                cache ? (256ull << 20) : 0;
            harness::ReplayEngine engine(config, replay);
            engine.playAll(vectors);
            sim[cache] = engine.stats().simulatedCycles;
            batch = engine.stats().batchCycles;
            if (cache)
                avoided = engine.stats().avoidedFraction();
        }
        std::printf("%8s %16s %16s %16s %8.1f%%\n",
                    nested ? "nested" : "plain",
                    withCommas(batch).c_str(),
                    withCommas(sim[0]).c_str(),
                    withCommas(sim[1]).c_str(), 100.0 * avoided);
        json.beginRow();
        json.add("section", "replay_ablation");
        json.add("nested", nested);
        json.add("batch_cycles", batch);
        json.add("sim_cycles_cache_off", sim[0]);
        json.add("sim_cycles_cache_on", sim[1]);
        json.add("avoided_fraction", avoided);
    }
    std::printf("\nshape: nested splits inflate the nominal batch "
                "(every trace re-walks its\nstem) but the engine "
                "replays each stem once, so the marginal cost of a "
                "split\nreturns to roughly one limit's worth of new "
                "cycles per trace.\n");
    std::string path = bench::jsonPath(argc, argv);
    if (!json.write(path)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    return 0;
}

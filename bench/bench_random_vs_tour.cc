/**
 * @file
 * Coverage-efficiency comparison — the methodology's core claim.
 *
 * "Using the complete set of vectors maximizes the probability of
 * finding errors in the smallest amount of simulation time"
 * (Section 1). This bench plots arc coverage against simulated
 * instructions for transition-tour vectors versus uniform random
 * legal stimulus, and reports the long tail random testing leaves
 * uncovered.
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/baselines.hh"
#include "harness/coverage.hh"
#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"
#include "support/strings.hh"

using namespace archval;

int
main(int argc, char **argv)
{
    bench::banner("Coverage series",
                  "Arc coverage vs simulated instructions: tour vs "
                  "random");

    rtl::PpConfig config = bench::benchSimConfig();
    rtl::PpFsmModel model(config);
    murphi::Enumerator enumerator(model);
    auto graph = enumerator.runOrThrow();

    graph::TourGenerator tour_gen(graph);
    auto tours = tour_gen.run();

    // Sample the tour's coverage curve at fixed instruction steps.
    const uint64_t tour_budget = tour_gen.stats().totalInstructions;
    const unsigned points = 10;
    const uint64_t step = tour_budget / points + 1;

    harness::CoverageTracker tour_cov(graph);
    uint64_t next_sample = step;
    for (const auto &trace : tours) {
        for (graph::EdgeId e : trace.edges) {
            tour_cov.addEdge(e, graph.edge(e).instrCount);
            if (tour_cov.instructions() >= next_sample) {
                tour_cov.samplePoint();
                next_sample += step;
            }
        }
    }
    tour_cov.samplePoint();

    // Two random baselines at 16x the tour's budget: naturalistic
    // biased-random (the paper's baseline) and graph-uniform random
    // (an unrealistically strong randomizer that knows every event
    // is worth trying equally often).
    harness::CoverageTracker biased_cov(graph);
    {
        harness::BiasedWalker walker(model, graph, 17);
        uint64_t sample_at = step;
        while (biased_cov.instructions() < 16 * tour_budget) {
            auto walk = walker.walk(2'000);
            if (walk.edges.empty())
                break;
            for (graph::EdgeId e : walk.edges) {
                biased_cov.addEdge(e, graph.edge(e).instrCount);
                if (biased_cov.instructions() >= sample_at) {
                    biased_cov.samplePoint();
                    sample_at += step;
                }
            }
        }
        biased_cov.samplePoint();
    }

    harness::CoverageTracker rand_cov(graph);
    harness::RandomWalker walker(graph, 17);
    next_sample = step;
    while (rand_cov.instructions() < 16 * tour_budget) {
        auto walk = walker.walk(500);
        if (walk.edges.empty())
            break;
        for (graph::EdgeId e : walk.edges) {
            rand_cov.addEdge(e, graph.edge(e).instrCount);
            if (rand_cov.instructions() >= next_sample) {
                rand_cov.samplePoint();
                next_sample += step;
            }
        }
    }
    rand_cov.samplePoint();

    std::printf("\ngraph: %s states, %s edges; tour budget %s "
                "instructions\n",
                withCommas(graph.numStates()).c_str(),
                withCommas(graph.numEdges()).c_str(),
                withCommas(tour_budget).c_str());

    std::printf("\n%14s  %14s  %16s  %16s\n", "instructions",
                "tour", "biased random", "uniform random");
    const auto &tc = tour_cov.curve();
    const auto &bc = biased_cov.curve();
    const auto &rc = rand_cov.curve();
    size_t rows = std::max({tc.size(), bc.size(), rc.size()});
    auto pct = [&](const auto &curve, size_t i) -> std::string {
        if (i >= curve.size())
            return "-";
        return formatString("%6.2f%%", 100.0 * curve[i].coveredEdges /
                                           graph.numEdges());
    };
    for (size_t i = 0; i < rows; ++i) {
        std::string instrs =
            i < rc.size()   ? withCommas(rc[i].instructions)
            : i < bc.size() ? withCommas(bc[i].instructions)
                            : withCommas(tc[i].instructions);
        std::printf("%14s  %14s  %16s  %16s\n", instrs.c_str(),
                    pct(tc, i).c_str(), pct(bc, i).c_str(),
                    pct(rc, i).c_str());
    }

    uint64_t biased_uncovered =
        graph.numEdges() - biased_cov.coveredEdges();
    uint64_t uniform_uncovered =
        graph.numEdges() - rand_cov.coveredEdges();
    std::printf(
        "\nafter 16x the tour's budget, biased-random stimulus "
        "still leaves %s arcs\n(%.2f%%) unexercised and even "
        "graph-uniform random leaves %s (%.2f%%) — the\nimprobable "
        "corner-case interactions where multiple-event bugs hide.\n",
        withCommas(biased_uncovered).c_str(),
        100.0 * biased_uncovered / graph.numEdges(),
        withCommas(uniform_uncovered).c_str(),
        100.0 * uniform_uncovered / graph.numEdges());

    bench::JsonWriter json("random_vs_tour");
    json.beginRow();
    json.add("section", "graph");
    json.add("states", graph.numStates());
    json.add("edges", graph.numEdges());
    json.add("tour_budget_instructions", tour_budget);
    auto coverage_row = [&](const char *kind,
                            const harness::CoverageTracker &cov) {
        json.beginRow();
        json.add("section", "coverage");
        json.add("kind", kind);
        json.add("covered_edges", cov.coveredEdges());
        json.add("uncovered_edges",
                 graph.numEdges() - cov.coveredEdges());
        json.add("coverage_fraction",
                 double(cov.coveredEdges()) / graph.numEdges());
        json.add("instructions", cov.instructions());
    };
    coverage_row("tour", tour_cov);
    coverage_row("biased_random", biased_cov);
    coverage_row("uniform_random", rand_cov);
    if (!json.write(bench::jsonPath(argc, argv))) {
        std::fprintf(stderr, "failed to write --json output\n");
        return 1;
    }
    return 0;
}

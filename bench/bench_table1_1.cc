/**
 * @file
 * Table 1.1 — Classification of MIPS R4000 errata.
 *
 * The paper motivates the method with the published MIPS
 * R4000PC/SC rev 2.2/3.0 errata, classified by which parts of the
 * design interacted to cause each bug. We reproduce the table
 * verbatim (it is published data) and classify our injectable PP
 * fault library by the same taxonomy to show the reproduction
 * targets the class that dominates real errata: multiple-event
 * interactions.
 */

#include <cstdio>

#include "bench_util.hh"
#include "rtl/faults.hh"
#include "support/strings.hh"

using namespace archval;

int
main()
{
    bench::banner("Table 1.1", "Classification of MIPS R4000 errata");

    struct Row
    {
        const char *cls;
        unsigned count;
        double percent;
    };
    // Published errata classification (paper Table 1.1).
    const Row mips[] = {
        {"Pipeline/Datapath ONLY bugs", 3, 6.5},
        {"Single Control Logic Bugs", 17, 37.0},
        {"Multiple Event Bugs", 26, 56.5},
    };

    std::printf("\nMIPS R4000 errata (published data, reproduced):\n");
    std::printf("  %-32s %8s %10s\n", "Bug Class", "Number",
                "% of Total");
    unsigned total = 0;
    for (const Row &r : mips) {
        std::printf("  %-32s %8u %9.1f%%\n", r.cls, r.count,
                    r.percent);
        total += r.count;
    }
    std::printf("  %-32s %8u %9.1f%%\n", "Total Reported Errata",
                total, 100.0);

    // Our injectable fault library under the same taxonomy.
    unsigned counts[3] = {0, 0, 0};
    for (size_t b = 0; b < rtl::numBugs; ++b) {
        counts[static_cast<size_t>(
            rtl::bugClassOf(static_cast<rtl::BugId>(b)))]++;
    }
    std::printf("\nThis reproduction's injectable PP fault library "
                "(Table 2.1 bugs):\n");
    std::printf("  %-32s %8s\n", "Bug Class", "Number");
    std::printf("  %-32s %8u\n",
                rtl::bugClassName(rtl::BugClass::PipelineDatapathOnly),
                counts[0]);
    std::printf("  %-32s %8u\n",
                rtl::bugClassName(rtl::BugClass::SingleControlLogic),
                counts[1]);
    std::printf("  %-32s %8u\n",
                rtl::bugClassName(rtl::BugClass::MultipleEvent),
                counts[2]);
    std::printf("\nAll six published PP bugs are multiple-event "
                "interactions — the class the\nmethodology targets "
                "(%u/%u = %.1f%% of the R4000 errata).\n",
                mips[2].count, total,
                100.0 * mips[2].count / total);
    return 0;
}

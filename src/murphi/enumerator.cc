#include "enumerator.hh"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "support/logging.hh"
#include "support/memusage.hh"
#include "support/status.hh"
#include "support/strings.hh"
#include "support/timer.hh"

namespace archval::murphi
{

std::string
EnumStats::render() const
{
    std::string out;
    out += formatString("Number of states        %s\n",
                        withCommas(numStates).c_str());
    out += formatString("Number of bits per state %zu\n", bitsPerState);
    out += formatString("Execution time          %.1f cpu secs\n",
                        cpuSeconds);
    out += formatString("Memory requirement      %s\n",
                        humanBytes(memoryBytes).c_str());
    out += formatString("Number of edges         %s\n",
                        withCommas(numEdges).c_str());
    out += formatString("Transitions tried/valid %s / %s\n",
                        withCommas(transitionsTried).c_str(),
                        withCommas(transitionsValid).c_str());
    return out;
}

Enumerator::Enumerator(const fsm::Model &model, EnumOptions options)
    : model_(model), options_(options)
{
}

graph::StateGraph
Enumerator::run()
{
    CpuTimer timer;

    const fsm::ChoiceCodec codec = model_.makeChoiceCodec();
    const uint64_t combos = codec.numCombinations();
    const size_t state_bits = model_.stateBits();

    graph::StateGraph graph;
    std::unordered_map<BitVec, graph::StateId, BitVecHash> known;
    std::deque<graph::StateId> frontier;

    // BFS needs the packed vector of every state to expand it; retain
    // a private copy when the caller asked the graph not to keep them.
    std::vector<BitVec> privateStates;
    auto packed_of = [&](graph::StateId id) -> const BitVec & {
        return options_.retainStates ? graph.packedState(id)
                                     : privateStates[id];
    };

    auto intern = [&](BitVec state) -> std::pair<graph::StateId, bool> {
        auto it = known.find(state);
        if (it != known.end())
            return {it->second, false};
        graph::StateId id =
            graph.addState(options_.retainStates ? state : BitVec());
        if (!options_.retainStates)
            privateStates.push_back(state);
        known.emplace(std::move(state), id);
        return {id, true};
    };

    BitVec reset = model_.resetState();
    if (reset.numBits() != state_bits)
        panic("model reset state width mismatch");
    intern(reset);
    frontier.push_back(0);

    // Per-source dedup of destinations (FirstCondition mode).
    std::unordered_set<uint64_t> dst_seen;

    while (!frontier.empty()) {
        graph::StateId src = frontier.front();
        frontier.pop_front();

        dst_seen.clear();
        stats_.transitionsTried += combos;

        // Copy: interning new states may reallocate the state store
        // while the generator still holds the source state.
        const BitVec src_packed = packed_of(src);
        model_.forEachTransition(
            src_packed,
            [&](uint64_t code, fsm::Transition &&transition) {
                ++stats_.transitionsValid;
                unsigned instrs = transition.instructions;
                auto [dst, is_new] =
                    intern(std::move(transition.next));
                if (is_new) {
                    frontier.push_back(dst);
                    if (options_.maxStates &&
                        graph.numStates() > options_.maxStates) {
                        fatal(formatString(
                            "state explosion: more than %llu states",
                            static_cast<unsigned long long>(
                                options_.maxStates)));
                    }
                    if (options_.progressInterval &&
                        graph.numStates() %
                                options_.progressInterval == 0) {
                        logInfo(formatString(
                            "enumerated %zu states, %zu edges",
                            graph.numStates(), graph.numEdges()));
                    }
                }

                bool record;
                if (options_.recording ==
                    EdgeRecording::FirstCondition) {
                    // "Only one permutation is recorded" per
                    // (src, dst) pair: the first condition found.
                    record = dst_seen.insert(dst).second;
                } else {
                    // AllConditions (the Section 4 fix): every
                    // distinct condition becomes its own edge.
                    record = true;
                }
                if (record) {
                    graph.addEdge(src, dst, code,
                                  static_cast<uint32_t>(instrs));
                }
            });
    }

    stats_.numStates = graph.numStates();
    stats_.numEdges = graph.numEdges();
    stats_.bitsPerState = state_bits;
    stats_.cpuSeconds = timer.seconds();
    // Footprint: the graph itself plus the hash table's keys and
    // buckets (approximate; matches what the paper's "memory
    // requirement" row reports for the enumeration).
    size_t table_bytes = known.size() *
        (sizeof(BitVec) + sizeof(graph::StateId) + 2 * sizeof(void *));
    for (const auto &[key, id] : known)
        table_bytes += key.memoryBytes();
    stats_.memoryBytes = graph.memoryBytes() + table_bytes;
    return graph;
}

} // namespace archval::murphi

#include "enumerator.hh"

#include "enum_internal.hh"

#include <algorithm>
#include <array>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "compile/fsm_spec.hh"
#include "compile/kernel.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/table_memory.hh"
#include "support/telemetry.hh"
#include "support/timer.hh"

namespace archval::murphi
{

std::string
EnumStats::render() const
{
    std::string out;
    out += formatString("Number of states        %s\n",
                        withCommas(numStates).c_str());
    out += formatString("Number of bits per state %zu\n", bitsPerState);
    out += formatString("Execution time          %.1f cpu secs\n",
                        cpuSeconds);
    out += formatString("Memory requirement      %s\n",
                        humanBytes(memoryBytes).c_str());
    out += formatString("Number of edges         %s\n",
                        withCommas(numEdges).c_str());
    out += formatString("Transitions tried/valid %s / %s\n",
                        withCommas(transitionsTried).c_str(),
                        withCommas(transitionsValid).c_str());
    if (numThreads > 1) {
        uint64_t widest = 0;
        double peak = 0.0;
        for (const LevelStats &level : levels) {
            widest = std::max(widest, level.frontierWidth);
            peak = std::max(peak, level.statesPerSec());
        }
        out += formatString("Worker threads          %u over %zu shards\n",
                            numThreads, numShards);
        out += formatString("BFS levels              %zu (max frontier %s)\n",
                            levels.size(), withCommas(widest).c_str());
        out += formatString("Peak throughput         %s states/sec\n",
                            withCommas(uint64_t(peak)).c_str());
        out += formatString("Shard occupancy         min %s / max %s\n",
                            withCommas(minShardStates).c_str(),
                            withCommas(maxShardStates).c_str());
    }
    if (numProcesses > 1 || spillBytesWritten || pageIns || pageOuts ||
        spillFallbacks) {
        out += formatString("Worker processes        %u\n",
                            numProcesses);
        out += formatString("Spill bytes written     %s\n",
                            humanBytes(spillBytesWritten).c_str());
        out += formatString("Shard pages in/out      %s / %s\n",
                            withCommas(pageIns).c_str(),
                            withCommas(pageOuts).c_str());
        out += formatString("Residency high water    %s\n",
                            humanBytes(residencyHighWaterBytes).c_str());
        out += formatString("Spill fallbacks         %s\n",
                            withCommas(spillFallbacks).c_str());
    }
    return out;
}

std::string
EnumStats::renderLevels() const
{
    std::string out = formatString("%6s %12s %12s %12s %12s\n", "level",
                                   "frontier", "new states", "new edges",
                                   "states/sec");
    for (size_t i = 0; i < levels.size(); ++i) {
        const LevelStats &level = levels[i];
        out += formatString("%6zu %12s %12s %12s %12s\n", i,
                            withCommas(level.frontierWidth).c_str(),
                            withCommas(level.newStates).c_str(),
                            withCommas(level.newEdges).c_str(),
                            withCommas(uint64_t(
                                level.statesPerSec())).c_str());
    }
    return out;
}

namespace detail
{

size_t
stateTableBytes(const StateTable &table)
{
    size_t payload = 0;
    for (const auto &[key, id] : table)
        payload += key.memoryBytes();
    return hashTableFootprint(table.bucket_count(), table.size(),
                              sizeof(StateTable::value_type), payload)
        .total();
}

std::string
stateExplosionMessage(uint64_t max_states)
{
    return formatString(
        "state explosion: search exceeds %llu states",
        static_cast<unsigned long long>(max_states));
}

std::string
resetWidthMessage(size_t reset_bits, size_t state_bits)
{
    return formatString(
        "model reset state is %zu bits but the state layout "
        "declares %zu",
        reset_bits, state_bits);
}

void
recordEnumMetrics(const EnumStats &stats)
{
    telemetry::counter("enum.states").add(stats.numStates);
    telemetry::counter("enum.edges").add(stats.numEdges);
    telemetry::counter("enum.levels").add(stats.levels.size());
    telemetry::gauge("enum.shard_states_min")
        .set(static_cast<int64_t>(stats.minShardStates));
    telemetry::gauge("enum.shard_states_max")
        .set(static_cast<int64_t>(stats.maxShardStates));
}

} // namespace detail

using detail::kPendingFlag;
using detail::recordEnumMetrics;
using detail::resetWidthMessage;
using detail::StateTable;
using detail::stateExplosionMessage;
using detail::stateTableBytes;

Enumerator::Enumerator(const fsm::Model &model, EnumOptions options)
    : model_(model), options_(options)
{
}

Result<graph::StateGraph>
Enumerator::run()
{
    unsigned threads = options_.numThreads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    stats_ = EnumStats{};

    // Resolve the step kernel once per run: lower the model's
    // compiled-form spec when one exists, otherwise fall back to the
    // interpreted step (recorded, never an error — closure-based
    // models simply have no compiled form).
    program_.reset();
    if (options_.compiledStep != StepKernel::Interpreted) {
        if (auto spec = model_.compileSpec()) {
            program_ = compile::lower(*spec);
            stats_.kernelUsed = options_.compiledStep;
        } else {
            stats_.compiledFallback = true;
            telemetry::counter("compile.enum_fallbacks").add();
        }
    }

    // A table budget or a worker-process count selects the
    // out-of-core search; both produce bit-identical graphs, so the
    // dispatch is purely a residency/topology decision.
    if (options_.memoryBudgetBytes > 0 || options_.numProcesses > 1)
        return runOutOfCore(threads);

    return threads == 1 ? runSequential() : runParallel(threads);
}

graph::StateGraph
Enumerator::runOrThrow()
{
    Result<graph::StateGraph> result = run();
    if (!result.ok())
        fatal(result.errorMessage());
    return result.take();
}

Result<graph::StateGraph>
Enumerator::runSequential()
{
    telemetry::ScopedSpan run_span("enum.run", "threads", 1);
    CpuTimer timer;

    const fsm::ChoiceCodec codec = model_.makeChoiceCodec();
    const uint64_t combos = codec.numCombinations();
    const size_t state_bits = model_.stateBits();

    graph::StateGraph graph;
    StateTable known;
    std::deque<graph::StateId> frontier;

    // BFS needs the packed vector of every state to expand it; retain
    // a private copy when the caller asked the graph not to keep them.
    std::vector<BitVec> privateStates;
    auto packed_of = [&](graph::StateId id) -> const BitVec & {
        return options_.retainStates ? graph.packedState(id)
                                     : privateStates[id];
    };

    auto intern = [&](BitVec state) -> std::pair<graph::StateId, bool> {
        auto it = known.find(state);
        if (it != known.end())
            return {it->second, false};
        graph::StateId id = options_.retainStates
                                ? graph.addState(state)
                                : graph.addStateUnretained();
        if (!options_.retainStates)
            privateStates.push_back(state);
        known.emplace(std::move(state), id);
        return {id, true};
    };

    BitVec reset = model_.resetState();
    if (reset.numBits() != state_bits) {
        return Result<graph::StateGraph>::error(
            resetWidthMessage(reset.numBits(), state_bits));
    }
    intern(std::move(reset));
    frontier.push_back(0);

    // Per-source dedup of destinations (FirstCondition mode).
    std::unordered_set<uint64_t> dst_seen;

    // BFS level watermarks: ids below level_end are the current
    // level; everything interned beyond it belongs to the next.
    uint64_t level_first = 0;
    uint64_t level_end = 1;
    uint64_t level_start_edges = 0;
    WallTimer level_timer;
    telemetry::Gauge &frontier_gauge = telemetry::gauge("enum.frontier");
    std::optional<telemetry::ScopedSpan> level_span;
    if (telemetry::tracingEnabled())
        level_span.emplace("enum.level", "level", 0, "frontier", 1);
    auto close_level = [&] {
        LevelStats level;
        level.frontierWidth = level_end - level_first;
        level.newStates = graph.numStates() - level_end;
        level.newEdges = graph.numEdges() - level_start_edges;
        level.seconds = level_timer.seconds();
        stats_.levels.push_back(level);
        level_first = level_end;
        level_end = graph.numStates();
        level_start_edges = graph.numEdges();
        level_timer.reset();
        frontier_gauge.set(
            static_cast<int64_t>(level_end - level_first));
        level_span.reset();
        if (telemetry::tracingEnabled()) {
            level_span.emplace("enum.level", "level",
                               stats_.levels.size(), "frontier",
                               level_end - level_first);
        }
    };

    // Per-run step kernels (sequential search: one of each at most).
    std::optional<compile::ScalarKernel> scalar;
    std::optional<compile::SlicedKernel> sliced;
    if (program_) {
        if (stats_.kernelUsed == StepKernel::BitSliced)
            sliced.emplace(program_);
        else
            scalar.emplace(program_);
    }

    std::string error;

    // One discovered transition out of `src`. Identical for every
    // kernel: the kernels reproduce the interpreter's callback
    // sequence exactly, so dedup/cap/recording semantics carry over.
    auto handle = [&](graph::StateId src, uint64_t code,
                      fsm::Transition &&transition) {
        ++stats_.transitionsValid;
        if (!error.empty())
            return;
        unsigned instrs = transition.instructions;
        // Enforce the cap *before* interning: the over-limit
        // state must not enter the graph or the table.
        if (options_.maxStates &&
            graph.numStates() >= options_.maxStates &&
            known.find(transition.next) == known.end()) {
            error = stateExplosionMessage(options_.maxStates);
            return;
        }
        auto [dst, is_new] = intern(std::move(transition.next));
        if (is_new) {
            frontier.push_back(dst);
            if (options_.progressInterval &&
                graph.numStates() % options_.progressInterval == 0) {
                logInfo(formatString(
                    "enumerated %zu states, %zu edges",
                    graph.numStates(), graph.numEdges()));
            }
        }

        bool record;
        if (options_.recording == EdgeRecording::FirstCondition) {
            // "Only one permutation is recorded" per
            // (src, dst) pair: the first condition found.
            record = dst_seen.insert(dst).second;
        } else {
            // AllConditions (the Section 4 fix): every
            // distinct condition becomes its own edge.
            record = true;
        }
        if (record)
            graph.addEdge(src, dst, code,
                          static_cast<uint32_t>(instrs));
    };

    while (!frontier.empty() && error.empty()) {
        if (options_.cancelFlag &&
            options_.cancelFlag->load(std::memory_order_relaxed)) {
            error = "enumeration cancelled";
            break;
        }
        // Peek-based level close (frontier ids ascend, so the front
        // crossing the watermark closes the level exactly where the
        // popped id used to).
        if (frontier.front() == level_end)
            close_level();

        if (sliced) {
            // Batch up to 64 same-level sources into one bit-sliced
            // expansion. Source pointers are read only before the
            // sink runs, so interning (which may reallocate the
            // state store) cannot invalidate them mid-batch.
            std::array<graph::StateId, 64> ids;
            std::array<const BitVec *, 64> srcs;
            size_t chunk = 0;
            while (chunk < 64 && !frontier.empty() &&
                   frontier.front() < level_end) {
                ids[chunk] = frontier.front();
                frontier.pop_front();
                ++chunk;
            }
            for (size_t i = 0; i < chunk; ++i)
                srcs[i] = &packed_of(ids[i]);
            stats_.transitionsTried += combos * chunk;
            size_t cur_lane = SIZE_MAX;
            sliced->expandBatch(
                srcs.data(), chunk,
                [&](size_t lane, uint64_t code,
                    fsm::Transition &&transition) {
                    if (lane != cur_lane) {
                        cur_lane = lane;
                        dst_seen.clear();
                    }
                    handle(ids[lane], code, std::move(transition));
                });
            continue;
        }

        graph::StateId src = frontier.front();
        frontier.pop_front();
        dst_seen.clear();
        stats_.transitionsTried += combos;

        // Copy: interning new states may reallocate the state store
        // while the generator still holds the source state.
        const BitVec src_packed = packed_of(src);
        auto on_transition = [&](uint64_t code,
                                 fsm::Transition &&transition) {
            handle(src, code, std::move(transition));
        };
        if (scalar)
            scalar->forEachTransition(src_packed, on_transition);
        else
            model_.forEachTransition(src_packed, on_transition);
    }
    if (!error.empty())
        return Result<graph::StateGraph>::error(error);
    close_level();
    level_span.reset();

    stats_.numStates = graph.numStates();
    stats_.numEdges = graph.numEdges();
    stats_.bitsPerState = state_bits;
    stats_.cpuSeconds = timer.seconds();
    stats_.numThreads = 1;
    stats_.numShards = 1;
    stats_.minShardStates = known.size();
    stats_.maxShardStates = known.size();
    if (sliced)
        stats_.slicedFallbackLanes = sliced->scalarFallbackLanes();
    size_t private_bytes = 0;
    for (const BitVec &state : privateStates)
        private_bytes += state.memoryBytes() + sizeof(state);
    stats_.memoryBytes =
        graph.memoryBytes() + stateTableBytes(known) + private_bytes;
    recordEnumMetrics(stats_);
    return graph;
}

Result<graph::StateGraph>
Enumerator::runParallel(unsigned num_threads)
{
    telemetry::ScopedSpan run_span("enum.run", "threads", num_threads);
    CpuTimer timer;

    const fsm::ChoiceCodec codec = model_.makeChoiceCodec();
    const uint64_t combos = codec.numCombinations();
    const size_t state_bits = model_.stateBits();
    const bool retain = options_.retainStates;
    const bool first_condition =
        options_.recording == EdgeRecording::FirstCondition;

    // Shard count: a power of two comfortably above the worker count
    // so that stripes stay short and contention stays low.
    size_t num_shards = 1;
    unsigned shard_bits = 0;
    while (num_shards < size_t(num_threads) * 4) {
        num_shards <<= 1;
        ++shard_bits;
    }
    const size_t shard_mask = num_shards - 1;

    /**
     * One stripe of the state table. During a level's expansion,
     * workers insert unseen states under the shard lock with a
     * *provisional* id naming the shard and its pending slot; at the
     * level barrier the provisional ids are rewritten (through the
     * stable pointers below) to canonical BFS ids assigned in
     * first-occurrence order over the canonical transition walk.
     */
    struct Shard
    {
        std::mutex mutex;
        StateTable map;
        // unordered_map nodes are stable across rehash, so raw
        // pointers into the map survive the level.
        std::vector<const BitVec *> pendingKeys;
        std::vector<graph::StateId *> pendingIds;
    };
    std::vector<Shard> shards(num_shards);

    graph::StateGraph graph;
    std::vector<BitVec> privateStates;
    auto packed_of = [&](graph::StateId id) -> const BitVec & {
        return retain ? graph.packedState(id) : privateStates[id];
    };

    BitVec reset = model_.resetState();
    if (reset.numBits() != state_bits) {
        return Result<graph::StateGraph>::error(
            resetWidthMessage(reset.numBits(), state_bits));
    }
    {
        const size_t hash = BitVecHash{}(reset);
        if (retain) {
            graph.addState(reset);
        } else {
            graph.addStateUnretained();
            privateStates.push_back(reset);
        }
        shards[hash & shard_mask].map.emplace(std::move(reset), 0);
    }

    /** One worker-discovered transition; dst may be provisional. */
    struct TransRec
    {
        uint64_t code;
        graph::StateId dst;
        uint32_t instrs;
    };
    /** All transitions found by one worker, grouped per source. */
    struct WorkerOut
    {
        std::vector<TransRec> trans;
        std::vector<uint64_t> perSource;
        uint64_t valid = 0;
        uint64_t fallbackLanes = 0;
    };

    std::vector<graph::StateId> level = {0};
    std::string error;
    telemetry::Gauge &frontier_gauge = telemetry::gauge("enum.frontier");
    telemetry::Histogram &barrier_wait =
        telemetry::histogram("enum.barrier_wait_seconds");

    while (!level.empty() && error.empty()) {
        if (options_.cancelFlag &&
            options_.cancelFlag->load(std::memory_order_relaxed)) {
            error = "enumeration cancelled";
            break;
        }
        WallTimer level_timer;
        const size_t width = level.size();
        const unsigned workers = static_cast<unsigned>(
            std::min<size_t>(num_threads, width));
        std::vector<WorkerOut> outs(workers);
        frontier_gauge.set(static_cast<int64_t>(width));
        telemetry::ScopedSpan level_span("enum.level", "level",
                                         stats_.levels.size(),
                                         "frontier", width);
        std::vector<uint64_t> finish_ns(workers, 0);

        // Expand a disjoint contiguous slice of the level. Sources
        // are visited in level order and transitions buffered in
        // generation order, so the concatenation of all worker
        // buffers is exactly the sequential expansion order.
        const uint64_t job_id = telemetry::currentJobId();
        auto expand = [&, job_id](unsigned w) {
            telemetry::JobScope job_scope(job_id);
            const size_t begin = width * w / workers;
            const size_t end = width * (w + 1) / workers;
            if (telemetry::tracingEnabled()) {
                telemetry::setThreadName(
                    formatString("enum.worker.%u", w));
            }
            telemetry::ScopedSpan expand_span(
                "enum.expand", "worker", w, "sources", end - begin);
            WorkerOut &out = outs[w];
            out.perSource.reserve(end - begin);
            std::unordered_set<uint64_t> dst_seen;

            // Per-worker step kernels: kernels hold mutable scratch
            // and are not thread-safe, so each worker owns its own.
            std::optional<compile::ScalarKernel> scalar;
            std::optional<compile::SlicedKernel> sliced;
            if (program_) {
                if (stats_.kernelUsed == StepKernel::BitSliced)
                    sliced.emplace(program_);
                else
                    scalar.emplace(program_);
            }

            auto record = [&](uint64_t code,
                              fsm::Transition &&transition) {
                ++out.valid;
                uint32_t instrs = transition.instructions;
                BitVec state = std::move(transition.next);
                const size_t hash = BitVecHash{}(state);
                Shard &shard = shards[hash & shard_mask];
                graph::StateId dst;
                {
                    std::lock_guard<std::mutex> lock(shard.mutex);
                    auto [it, inserted] =
                        shard.map.try_emplace(std::move(state), 0);
                    if (inserted) {
                        uint32_t slot = static_cast<uint32_t>(
                            shard.pendingKeys.size());
                        if (slot >= (kPendingFlag >> shard_bits)) {
                            panic("enumerator: provisional "
                                  "id space exhausted");
                        }
                        it->second =
                            kPendingFlag | (slot << shard_bits) |
                            static_cast<uint32_t>(hash & shard_mask);
                        shard.pendingKeys.push_back(&it->first);
                        shard.pendingIds.push_back(&it->second);
                    }
                    dst = it->second;
                }
                // Provisional ids are stable per state for
                // the whole level, so FirstCondition dedup
                // on them equals dedup on canonical ids.
                if (first_condition &&
                    !dst_seen.insert(dst).second) {
                    return;
                }
                out.trans.push_back({code, dst, instrs});
            };

            if (sliced) {
                // Bit-sliced batches of up to 64 sources from this
                // worker's slice. The sink arrives source-major in
                // lane order, so splitting the transition buffer by
                // per-lane counts preserves the per-source grouping
                // the barrier walk expects.
                for (size_t i = begin; i < end;) {
                    const size_t chunk =
                        std::min<size_t>(64, end - i);
                    std::array<const BitVec *, 64> srcs;
                    for (size_t k = 0; k < chunk; ++k)
                        srcs[k] = &packed_of(level[i + k]);
                    std::array<uint64_t, 64> counts{};
                    size_t cur_lane = SIZE_MAX;
                    sliced->expandBatch(
                        srcs.data(), chunk,
                        [&](size_t lane, uint64_t code,
                            fsm::Transition &&transition) {
                            if (lane != cur_lane) {
                                cur_lane = lane;
                                dst_seen.clear();
                            }
                            const size_t before = out.trans.size();
                            record(code, std::move(transition));
                            counts[lane] +=
                                out.trans.size() - before;
                        });
                    for (size_t k = 0; k < chunk; ++k)
                        out.perSource.push_back(counts[k]);
                    i += chunk;
                }
                out.fallbackLanes = sliced->scalarFallbackLanes();
            } else {
                for (size_t i = begin; i < end; ++i) {
                    const BitVec &src_packed = packed_of(level[i]);
                    const size_t before = out.trans.size();
                    dst_seen.clear();
                    auto on_transition =
                        [&](uint64_t code,
                            fsm::Transition &&transition) {
                            record(code, std::move(transition));
                        };
                    if (scalar)
                        scalar->forEachTransition(src_packed,
                                                  on_transition);
                    else
                        model_.forEachTransition(src_packed,
                                                 on_transition);
                    out.perSource.push_back(out.trans.size() -
                                            before);
                }
            }
            finish_ns[w] = telemetry::nowNs();
        };

        if (workers == 1) {
            expand(0);
        } else {
            std::vector<std::thread> threads;
            threads.reserve(workers);
            for (unsigned w = 0; w < workers; ++w)
                threads.emplace_back(expand, w);
            for (std::thread &t : threads)
                t.join();
        }

        // Barrier imbalance: how long each worker sat idle between
        // finishing its slice and the slowest worker finishing.
        const uint64_t slowest =
            *std::max_element(finish_ns.begin(), finish_ns.end());
        for (unsigned w = 0; w < workers; ++w)
            barrier_wait.record(double(slowest - finish_ns[w]) / 1e9);

        stats_.transitionsTried += uint64_t(width) * combos;
        for (const WorkerOut &out : outs) {
            stats_.transitionsValid += out.valid;
            stats_.slicedFallbackLanes += out.fallbackLanes;
        }

        // --- Level barrier: canonical id assignment ----------------
        // Walk workers in index order, sources in level order and
        // transitions in generation order — the sequential BFS
        // discovery order — assigning the next id to each pending
        // state at its first occurrence. This makes ids, states and
        // edges bit-identical to the sequential search for every
        // worker count.
        const uint64_t interned = graph.numStates();
        const uint64_t edges_before = graph.numEdges();
        std::vector<graph::StateId> next_level;
        std::vector<BitVec> new_states;
        std::vector<graph::Edge> new_edges;
        for (unsigned w = 0; w < workers && error.empty(); ++w) {
            WorkerOut &out = outs[w];
            const size_t begin = width * w / workers;
            size_t cursor = 0;
            for (size_t i = 0; i < out.perSource.size() &&
                               error.empty(); ++i) {
                const graph::StateId src = level[begin + i];
                for (uint64_t t = 0; t < out.perSource[i];
                     ++t, ++cursor) {
                    const TransRec &rec = out.trans[cursor];
                    graph::StateId dst = rec.dst;
                    if (dst & kPendingFlag) {
                        const uint32_t raw = dst & ~kPendingFlag;
                        Shard &shard = shards[raw & shard_mask];
                        const uint32_t slot = raw >> shard_bits;
                        graph::StateId current =
                            *shard.pendingIds[slot];
                        if (current & kPendingFlag) {
                            if (options_.maxStates &&
                                interned + new_states.size() >=
                                    options_.maxStates) {
                                error = stateExplosionMessage(
                                    options_.maxStates);
                                break;
                            }
                            current = static_cast<graph::StateId>(
                                interned + new_states.size());
                            *shard.pendingIds[slot] = current;
                            new_states.push_back(
                                *shard.pendingKeys[slot]);
                            next_level.push_back(current);
                        }
                        dst = current;
                    }
                    new_edges.push_back(
                        {src, dst, rec.code, rec.instrs});
                }
            }
        }
        if (!error.empty())
            break;

        if (retain) {
            graph.addStates(std::move(new_states));
        } else {
            graph.addStatesUnretained(new_states.size());
            privateStates.reserve(privateStates.size() +
                                  new_states.size());
            for (BitVec &state : new_states)
                privateStates.push_back(std::move(state));
            new_states.clear();
        }
        graph.addEdges(new_edges);
        for (Shard &shard : shards) {
            shard.pendingKeys.clear();
            shard.pendingIds.clear();
        }

        LevelStats level_stats;
        level_stats.frontierWidth = width;
        level_stats.newStates = graph.numStates() - interned;
        level_stats.newEdges = graph.numEdges() - edges_before;
        level_stats.seconds = level_timer.seconds();
        stats_.levels.push_back(level_stats);

        if (options_.progressInterval) {
            const uint64_t interval = options_.progressInterval;
            if (graph.numStates() / interval > interned / interval) {
                logInfo(formatString(
                    "enumerated %zu states, %zu edges",
                    graph.numStates(), graph.numEdges()));
            }
            logInfo(formatString(
                "level %zu: frontier %llu, +%llu states, "
                "%llu states/sec",
                stats_.levels.size() - 1,
                static_cast<unsigned long long>(
                    level_stats.frontierWidth),
                static_cast<unsigned long long>(
                    level_stats.newStates),
                static_cast<unsigned long long>(
                    level_stats.statesPerSec())));
        }

        level = std::move(next_level);
    }
    if (!error.empty())
        return Result<graph::StateGraph>::error(error);

    stats_.numStates = graph.numStates();
    stats_.numEdges = graph.numEdges();
    stats_.bitsPerState = state_bits;
    stats_.cpuSeconds = timer.seconds();
    stats_.numThreads = num_threads;
    stats_.numShards = num_shards;
    size_t table_bytes = 0;
    size_t min_occupancy = SIZE_MAX;
    size_t max_occupancy = 0;
    for (const Shard &shard : shards) {
        table_bytes += stateTableBytes(shard.map);
        min_occupancy = std::min(min_occupancy, shard.map.size());
        max_occupancy = std::max(max_occupancy, shard.map.size());
    }
    stats_.minShardStates = min_occupancy;
    stats_.maxShardStates = max_occupancy;
    size_t private_bytes = 0;
    for (const BitVec &state : privateStates)
        private_bytes += state.memoryBytes() + sizeof(state);
    stats_.memoryBytes =
        graph.memoryBytes() + table_bytes + private_bytes;
    recordEnumMetrics(stats_);
    return graph;
}

} // namespace archval::murphi

/**
 * @file
 * Out-of-core support for the enumerator: CRC-guarded spill files
 * for the BFS frontier and the partitioned state table, plus the
 * forked expansion-worker pool.
 *
 * On-disk format (see DESIGN.md, "Out-of-core sharded enumeration"):
 * both file kinds are support::RecordFileWriter/Reader record files
 * — `[magic u32][version u32]` then `[size u64][crc u32][payload]`
 * records — written atomically (temp file + rename) and fully
 * CRC-verified on the way back in. A frontier file holds one BFS
 * level's packed state vectors; a shard file holds one table
 * partition's (state, canonical id) entries. The first record of
 * each file is a header naming what the file claims to be (level or
 * partition index, state width, entry count); a reader that finds
 * any mismatch or damage reports failure instead of returning bytes
 * it cannot vouch for, and the enumerator then either rebuilds the
 * content from the retained graph or fails the run with a typed
 * error — never a silently different graph.
 *
 * The ProcessPool forks stateless expansion workers that exchange
 * frontier batches over pipes using the same length-prefixed frame
 * discipline as src/service/protocol (4-byte little-endian length,
 * then payload — here with a CRC-32 ahead of the payload, since a
 * half-written pipe frame from a killed worker must read as damage).
 * Children only expand states; the parent does all interning and
 * canonical id assignment, which is what keeps the produced graph
 * bit-identical to the in-process search.
 *
 * Tracing crosses the fork boundary: each expand request carries the
 * parent's job correlation id, the child records its expansion spans
 * under that id, and every response ships the spans back so the
 * parent can fold them into its own trace (one synthetic trace
 * thread per child). A trace of a service job therefore accounts for
 * work done in forked workers too.
 */

#ifndef ARCHVAL_MURPHI_OOC_HH
#define ARCHVAL_MURPHI_OOC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/state_graph.hh"
#include "support/bitvec.hh"
#include "support/telemetry.hh"

namespace archval::fsm
{
class Model;
} // namespace archval::fsm

namespace archval::compile
{
struct Program;
} // namespace archval::compile

namespace archval::murphi::ooc
{

/** Interned state table (one partition's worth). */
using StateMap =
    std::unordered_map<BitVec, graph::StateId, BitVecHash>;

/** Frontier file identity: "AVF1" + format version. */
constexpr uint32_t kFrontierMagic = 0x31465641;
/** Shard (table partition) file identity: "AVP1". */
constexpr uint32_t kShardMagic = 0x31505641;
constexpr uint32_t kSpillVersion = 1;

/**
 * Fault-injection hooks (testing only). Null members are skipped;
 * production runs pass no hooks at all. They let the differential
 * battery damage spill files between write and read, and kill
 * worker processes mid-level, to prove every failure either
 * rebuilds correctly or surfaces a typed error.
 */
struct TestHooks
{
    /** After a shard file was committed: (path, partition). */
    std::function<void(const std::string &, size_t)> afterShardPageOut;
    /** After a frontier file was committed: (path). */
    std::function<void(const std::string &)> afterFrontierWrite;
    /** At the start of each BFS level: (level, worker pids — empty
     *  without a process pool). */
    std::function<void(size_t, const std::vector<int> &)> onLevelStart;
};

/**
 * Scratch directory for one enumeration run: a fresh mkdtemp
 * subdirectory under @p base (or $TMPDIR / /tmp when @p base is
 * empty), recursively removed on destruction. An uncreatable base
 * leaves ok() false — the caller degrades to in-memory.
 */
class SpillDir
{
  public:
    explicit SpillDir(const std::string &base);
    ~SpillDir();

    SpillDir(const SpillDir &) = delete;
    SpillDir &operator=(const SpillDir &) = delete;

    bool ok() const { return !path_.empty(); }
    const std::string &path() const { return path_; }

  private:
    std::string path_; ///< empty when creation failed
};

/** @name Frontier spill files (one per BFS level)
 * Records: header `[level u64][stateBits u64][count u64]`, then
 * batches `[n u64][n × ceil(stateBits/64) words]`.
 * @{ */
/** @return the frontier file path for @p level under @p dir. */
std::string frontierPath(const std::string &dir, size_t level);

/** Write @p states as level @p level's frontier file (atomic).
 *  @return false on any write failure (target untouched); on
 *  success adds the file size to @p bytes_written. */
bool writeFrontierFile(const std::string &path, uint64_t level,
                       size_t state_bits,
                       const std::vector<BitVec> &states,
                       uint64_t *bytes_written);

/** Read a frontier file back, expecting exactly @p expect_count
 *  states of @p state_bits bits for @p level. @return false — with
 *  @p out cleared — on any damage or header mismatch. */
bool readFrontierFile(const std::string &path, uint64_t level,
                      size_t state_bits, size_t expect_count,
                      std::vector<BitVec> &out);
/** @} */

/** @name Shard (table partition) spill files
 * Records: header `[partition u64][stateBits u64][count u64]`, then
 * batches `[n u64][n × (id u32 + state words)]`.
 * @{ */
/** @return the shard file path for @p partition under @p dir. */
std::string shardPath(const std::string &dir, size_t partition);

/** Page @p table out to @p path (atomic). @return false on any
 *  write failure (target untouched, table intact). */
bool writeShardFile(const std::string &path, uint64_t partition,
                    size_t state_bits, const StateMap &table,
                    uint64_t *bytes_written);

/** Page a shard file back in, calling @p sink once per entry.
 *  @return false on any damage, header mismatch, or entry-count
 *  mismatch — the caller must then discard whatever the sink
 *  received and rebuild or fail. */
bool readShardFile(const std::string &path, uint64_t partition,
                   size_t state_bits,
                   const std::function<void(BitVec &&,
                                            graph::StateId)> &sink);
/** @} */

/**
 * Forked expansion workers. Each child owns one request and one
 * response pipe; a batch of packed frontier states goes out, the
 * child expands every state through its step kernel and streams the
 * raw transitions back (per-source counts + code/instrs/next-state
 * records, in exactly the callback order of the in-process kernels).
 * Any frame failure — child killed mid-level, short read, CRC
 * mismatch, oversize response — marks the worker dead and returns
 * false; the caller re-expands that slice in-process, which produces
 * the identical transitions.
 */
class ProcessPool
{
  public:
    /** Fork @p processes workers. @p program may be null (the
     *  interpreted step); @p bit_sliced selects the 64-lane kernel
     *  when a program is present. Fork failures leave the affected
     *  workers dead (alive() false) rather than failing the pool. */
    ProcessPool(const fsm::Model &model,
                std::shared_ptr<const compile::Program> program,
                bool bit_sliced, unsigned processes,
                size_t state_bits);
    ~ProcessPool();

    ProcessPool(const ProcessPool &) = delete;
    ProcessPool &operator=(const ProcessPool &) = delete;

    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }
    bool alive(unsigned w) const { return workers_[w].alive; }

    /** @return the worker pids (−1 for dead slots), for test hooks
     *  and telemetry. */
    std::vector<int> pids() const;

    /** One worker's expansion of one frontier batch. perSource holds
     *  the raw (pre-dedup) transition count of each source, in
     *  order; codes/instrs/states are the flattened transitions. */
    struct Expansion
    {
        uint64_t fallbackLanes = 0;
        std::vector<uint64_t> perSource;
        std::vector<uint64_t> codes;
        std::vector<uint32_t> instrs;
        std::vector<BitVec> states;
        /** Spans the child recorded while expanding this batch
         *  (empty unless tracing is enabled). */
        std::vector<telemetry::ForeignSpan> spans;
    };

    /** Send a frontier batch to worker @p w, stamped with the
     *  calling thread's job correlation id. @return false (worker
     *  marked dead) on any write failure. */
    bool sendBatch(unsigned w, const BitVec *const *states,
                   size_t count);

    /** Receive worker @p w's expansion of its last batch. @return
     *  false (worker marked dead) on any frame damage. */
    bool recvBatch(unsigned w, Expansion &out);

  private:
    [[noreturn]] void childLoop(int in_fd, int out_fd);
    void markDead(unsigned w);

    const fsm::Model &model_;
    std::shared_ptr<const compile::Program> program_;
    bool bitSliced_;
    size_t stateBits_;

    struct Worker
    {
        int pid = -1;
        int toChild = -1;
        int fromChild = -1;
        bool alive = false;
    };
    std::vector<Worker> workers_;
};

} // namespace archval::murphi::ooc

#endif // ARCHVAL_MURPHI_OOC_HH

#include "ooc.hh"

#include <algorithm>
#include <array>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <optional>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "compile/kernel.hh"
#include "fsm/model.hh"
#include "support/spill_store.hh"
#include "support/status.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

namespace archval::murphi::ooc
{

namespace
{

/** States per batch record / response chunk: big enough to amortize
 *  the record framing, small enough to keep resident buffers flat. */
constexpr size_t kBatchStates = 512;

/** Largest pipe frame either side will believe. A level whose
 *  expansion exceeds this degrades to in-process expansion of that
 *  slice, it does not crash or truncate. */
constexpr uint64_t kMaxOocFrameBytes = 1ull << 30;

/** Pipe commands (first payload byte of a parent->child frame). */
constexpr uint8_t kCmdExpand = 1;
constexpr uint8_t kCmdShutdown = 2;

/** Response status (first payload byte of a child->parent frame). */
constexpr uint8_t kRespOk = 0;
constexpr uint8_t kRespOverflow = 1;

size_t
wordsFor(size_t state_bits)
{
    return (state_bits + 63) / 64;
}

void
packU32(std::vector<uint8_t> &out, uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void
packU64(std::vector<uint8_t> &out, uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void
packState(std::vector<uint8_t> &out, const BitVec &state,
          size_t state_bits)
{
    const size_t words = wordsFor(state_bits);
    for (size_t w = 0; w < words; ++w) {
        const size_t lsb = w * 64;
        const size_t width = std::min<size_t>(64, state_bits - lsb);
        packU64(out, state.getField(lsb, width));
    }
}

/** Bounds-checked little-endian reader; any overrun flips ok. */
struct Reader
{
    const uint8_t *data;
    size_t size;
    size_t pos = 0;
    bool ok = true;

    size_t remaining() const { return size - pos; }

    uint8_t
    u8()
    {
        if (!ok || remaining() < 1) {
            ok = false;
            return 0;
        }
        return data[pos++];
    }

    uint32_t
    u32()
    {
        if (!ok || remaining() < 4) {
            ok = false;
            return 0;
        }
        uint32_t value = 0;
        for (int i = 0; i < 4; ++i)
            value |= uint32_t(data[pos + i]) << (8 * i);
        pos += 4;
        return value;
    }

    uint64_t
    u64()
    {
        if (!ok || remaining() < 8) {
            ok = false;
            return 0;
        }
        uint64_t value = 0;
        for (int i = 0; i < 8; ++i)
            value |= uint64_t(data[pos + i]) << (8 * i);
        pos += 8;
        return value;
    }

    BitVec
    state(size_t state_bits)
    {
        BitVec out(state_bits);
        const size_t words = wordsFor(state_bits);
        for (size_t w = 0; w < words; ++w) {
            const size_t lsb = w * 64;
            const size_t width =
                std::min<size_t>(64, state_bits - lsb);
            out.setField(lsb, width, u64());
        }
        return out;
    }

    std::string
    str(size_t len)
    {
        if (!ok || remaining() < len) {
            ok = false;
            return {};
        }
        std::string out(reinterpret_cast<const char *>(data + pos),
                        len);
        pos += len;
        return out;
    }
};

/** Span record inside a kRespOk frame:
 *  `[nameLen u64][name][startNs u64][durNs u64][jobId u64]`. */
void
packSpan(std::vector<uint8_t> &out, const telemetry::ForeignSpan &s)
{
    packU64(out, s.name.size());
    out.insert(out.end(), s.name.begin(), s.name.end());
    packU64(out, s.startNs);
    packU64(out, s.durNs);
    packU64(out, s.jobId);
}

bool
writeAllFd(int fd, const uint8_t *data, size_t size)
{
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<size_t>(n);
    }
    return true;
}

bool
readAllFd(int fd, uint8_t *data, size_t size)
{
    while (size > 0) {
        const ssize_t n = ::read(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF mid-frame: peer died
        data += n;
        size -= static_cast<size_t>(n);
    }
    return true;
}

/** One frame: [len u32][crc u32][payload]. The length prefix is the
 *  same discipline as service/protocol; the CRC makes a half-written
 *  frame from a killed worker read as damage, not as data. */
bool
sendFrame(int fd, const std::vector<uint8_t> &payload)
{
    if (payload.size() > kMaxOocFrameBytes)
        return false;
    uint8_t header[8];
    for (int i = 0; i < 4; ++i)
        header[i] = static_cast<uint8_t>(payload.size() >> (8 * i));
    const uint32_t crc = crc32(payload.data(), payload.size());
    for (int i = 0; i < 4; ++i)
        header[4 + i] = static_cast<uint8_t>(crc >> (8 * i));
    return writeAllFd(fd, header, sizeof(header)) &&
           writeAllFd(fd, payload.data(), payload.size());
}

bool
recvFrame(int fd, std::vector<uint8_t> &payload)
{
    uint8_t header[8];
    if (!readAllFd(fd, header, sizeof(header)))
        return false;
    uint64_t len = 0;
    uint32_t crc = 0;
    for (int i = 0; i < 4; ++i)
        len |= uint64_t(header[i]) << (8 * i);
    for (int i = 0; i < 4; ++i)
        crc |= uint32_t(header[4 + i]) << (8 * i);
    if (len > kMaxOocFrameBytes)
        return false;
    payload.resize(len);
    if (!readAllFd(fd, payload.data(), len))
        return false;
    return crc32(payload.data(), payload.size()) == crc;
}

} // namespace

// --- Spill scratch directory ----------------------------------------

SpillDir::SpillDir(const std::string &base)
{
    std::string root = base;
    if (root.empty()) {
        const char *tmp = std::getenv("TMPDIR");
        root = tmp && *tmp ? tmp : "/tmp";
    } else {
        ::mkdir(root.c_str(), 0777); // EEXIST is fine
    }
    std::string templ = root + "/archval-enum-XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr)
        path_ = buf.data();
}

SpillDir::~SpillDir()
{
    if (path_.empty())
        return;
    if (DIR *dir = ::opendir(path_.c_str())) {
        while (struct dirent *entry = ::readdir(dir)) {
            const std::string name = entry->d_name;
            if (name == "." || name == "..")
                continue;
            ::unlink((path_ + "/" + name).c_str());
        }
        ::closedir(dir);
    }
    ::rmdir(path_.c_str());
}

// --- Frontier spill files -------------------------------------------

std::string
frontierPath(const std::string &dir, size_t level)
{
    return formatString("%s/frontier-%06zu.avf", dir.c_str(), level);
}

bool
writeFrontierFile(const std::string &path, uint64_t level,
                  size_t state_bits,
                  const std::vector<BitVec> &states,
                  uint64_t *bytes_written)
{
    RecordFileWriter writer(path, kFrontierMagic, kSpillVersion);
    std::vector<uint8_t> rec;
    packU64(rec, level);
    packU64(rec, state_bits);
    packU64(rec, states.size());
    bool ok = writer.append(rec);
    for (size_t i = 0; i < states.size() && ok; i += kBatchStates) {
        const size_t n =
            std::min(kBatchStates, states.size() - i);
        rec.clear();
        packU64(rec, n);
        for (size_t k = 0; k < n; ++k)
            packState(rec, states[i + k], state_bits);
        ok = writer.append(rec);
    }
    const uint64_t bytes = writer.bytesWritten();
    ok = ok && writer.commit();
    if (ok && bytes_written)
        *bytes_written += bytes;
    return ok;
}

bool
readFrontierFile(const std::string &path, uint64_t level,
                 size_t state_bits, size_t expect_count,
                 std::vector<BitVec> &out)
{
    out.clear();
    RecordFileReader reader(path, kFrontierMagic, kSpillVersion);
    if (!reader.ok())
        return false;
    using RS = RecordFileReader::Status;
    std::vector<uint8_t> rec;
    if (reader.next(rec) != RS::Record)
        return false;
    Reader header{rec.data(), rec.size()};
    const uint64_t file_level = header.u64();
    const uint64_t file_bits = header.u64();
    const uint64_t file_count = header.u64();
    if (!header.ok || header.pos != header.size ||
        file_level != level || file_bits != state_bits ||
        file_count != expect_count)
        return false;
    out.reserve(expect_count);
    const size_t state_bytes = wordsFor(state_bits) * 8;
    RS status;
    while ((status = reader.next(rec)) == RS::Record) {
        Reader in{rec.data(), rec.size()};
        const uint64_t n = in.u64();
        if (!in.ok || n * state_bytes != in.remaining() ||
            out.size() + n > expect_count) {
            out.clear();
            return false;
        }
        for (uint64_t k = 0; k < n; ++k)
            out.push_back(in.state(state_bits));
    }
    if (status != RS::End || out.size() != expect_count) {
        out.clear();
        return false;
    }
    return true;
}

// --- Shard (table partition) spill files ----------------------------

std::string
shardPath(const std::string &dir, size_t partition)
{
    return formatString("%s/shard-%04zx.avp", dir.c_str(),
                        partition);
}

bool
writeShardFile(const std::string &path, uint64_t partition,
               size_t state_bits, const StateMap &table,
               uint64_t *bytes_written)
{
    RecordFileWriter writer(path, kShardMagic, kSpillVersion);
    std::vector<uint8_t> rec;
    packU64(rec, partition);
    packU64(rec, state_bits);
    packU64(rec, table.size());
    bool ok = writer.append(rec);
    rec.clear();
    uint64_t in_batch = 0;
    std::vector<uint8_t> batch;
    for (auto it = table.begin(); it != table.end() && ok; ++it) {
        packU32(batch, it->second);
        packState(batch, it->first, state_bits);
        if (++in_batch == kBatchStates) {
            rec.clear();
            packU64(rec, in_batch);
            rec.insert(rec.end(), batch.begin(), batch.end());
            ok = writer.append(rec);
            batch.clear();
            in_batch = 0;
        }
    }
    if (ok && in_batch > 0) {
        rec.clear();
        packU64(rec, in_batch);
        rec.insert(rec.end(), batch.begin(), batch.end());
        ok = writer.append(rec);
    }
    const uint64_t bytes = writer.bytesWritten();
    ok = ok && writer.commit();
    if (ok && bytes_written)
        *bytes_written += bytes;
    return ok;
}

bool
readShardFile(const std::string &path, uint64_t partition,
              size_t state_bits,
              const std::function<void(BitVec &&, graph::StateId)>
                  &sink)
{
    RecordFileReader reader(path, kShardMagic, kSpillVersion);
    if (!reader.ok())
        return false;
    using RS = RecordFileReader::Status;
    std::vector<uint8_t> rec;
    if (reader.next(rec) != RS::Record)
        return false;
    Reader header{rec.data(), rec.size()};
    const uint64_t file_partition = header.u64();
    const uint64_t file_bits = header.u64();
    const uint64_t file_count = header.u64();
    if (!header.ok || header.pos != header.size ||
        file_partition != partition || file_bits != state_bits)
        return false;
    const size_t entry_bytes = 4 + wordsFor(state_bits) * 8;
    uint64_t seen = 0;
    RS status;
    while ((status = reader.next(rec)) == RS::Record) {
        Reader in{rec.data(), rec.size()};
        const uint64_t n = in.u64();
        if (!in.ok || n * entry_bytes != in.remaining() ||
            seen + n > file_count)
            return false;
        for (uint64_t k = 0; k < n; ++k) {
            const graph::StateId id = in.u32();
            sink(in.state(state_bits), id);
        }
        seen += n;
    }
    return status == RS::End && seen == file_count;
}

// --- Forked expansion workers ---------------------------------------

ProcessPool::ProcessPool(
    const fsm::Model &model,
    std::shared_ptr<const compile::Program> program, bool bit_sliced,
    unsigned processes, size_t state_bits)
    : model_(model), program_(std::move(program)),
      bitSliced_(bit_sliced), stateBits_(state_bits)
{
    // Pin the span-clock epoch before forking: children inherit the
    // initialized static, so their span timestamps land on the same
    // timeline as the parent's when shipped back.
    telemetry::nowNs();

    // Writes to a dead worker's pipe must come back as EPIPE, not a
    // process-killing SIGPIPE. Only replace the default disposition;
    // a host (the daemon) that already handles SIGPIPE keeps its
    // handler.
    struct sigaction current
    {
    };
    if (::sigaction(SIGPIPE, nullptr, &current) == 0 &&
        current.sa_handler == SIG_DFL) {
        current.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &current, nullptr);
    }

    workers_.resize(processes);
    for (unsigned w = 0; w < processes; ++w) {
        int req[2] = {-1, -1};
        int resp[2] = {-1, -1};
        if (::pipe(req) != 0)
            continue;
        if (::pipe(resp) != 0) {
            ::close(req[0]);
            ::close(req[1]);
            continue;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(req[0]);
            ::close(req[1]);
            ::close(resp[0]);
            ::close(resp[1]);
            continue;
        }
        if (pid == 0) {
            // Child: keep only this worker's pipe ends. Never
            // returns; exits via _exit so no inherited atexit
            // machinery (telemetry flush, stdio) runs twice.
            ::close(req[1]);
            ::close(resp[0]);
            for (unsigned p = 0; p < w; ++p) {
                ::close(workers_[p].toChild);
                ::close(workers_[p].fromChild);
            }
            childLoop(req[0], resp[1]);
        }
        ::close(req[0]);
        ::close(resp[1]);
        workers_[w] = Worker{static_cast<int>(pid), req[1], resp[0],
                             true};
    }
}

ProcessPool::~ProcessPool()
{
    std::vector<uint8_t> shutdown{kCmdShutdown};
    for (unsigned w = 0; w < workers_.size(); ++w) {
        Worker &worker = workers_[w];
        if (worker.alive) {
            sendFrame(worker.toChild, shutdown); // best-effort
            ::close(worker.toChild);
            ::close(worker.fromChild);
            worker.alive = false;
        }
        if (worker.pid > 0) {
            int status = 0;
            ::waitpid(worker.pid, &status, 0);
            worker.pid = -1;
        }
    }
}

std::vector<int>
ProcessPool::pids() const
{
    std::vector<int> out;
    out.reserve(workers_.size());
    for (const Worker &worker : workers_)
        out.push_back(worker.alive ? worker.pid : -1);
    return out;
}

void
ProcessPool::markDead(unsigned w)
{
    Worker &worker = workers_[w];
    if (!worker.alive)
        return;
    ::close(worker.toChild);
    ::close(worker.fromChild);
    worker.alive = false;
    if (worker.pid > 0) {
        int status = 0;
        ::waitpid(worker.pid, &status, 0);
        worker.pid = -1;
    }
}

bool
ProcessPool::sendBatch(unsigned w, const BitVec *const *states,
                       size_t count)
{
    if (!workers_[w].alive)
        return false;
    std::vector<uint8_t> payload;
    payload.reserve(1 + 16 + count * wordsFor(stateBits_) * 8);
    payload.push_back(kCmdExpand);
    packU64(payload, telemetry::currentJobId());
    packU64(payload, count);
    for (size_t i = 0; i < count; ++i)
        packState(payload, *states[i], stateBits_);
    if (!sendFrame(workers_[w].toChild, payload)) {
        markDead(w);
        return false;
    }
    return true;
}

bool
ProcessPool::recvBatch(unsigned w, Expansion &out)
{
    out = Expansion{};
    if (!workers_[w].alive)
        return false;
    std::vector<uint8_t> payload;
    if (!recvFrame(workers_[w].fromChild, payload)) {
        markDead(w);
        return false;
    }
    Reader in{payload.data(), payload.size()};
    const uint8_t status = in.u8();
    if (!in.ok || status != kRespOk) {
        // kRespOverflow is an honest "too big for one frame": the
        // worker stays alive, the caller re-expands in-process.
        if (!in.ok)
            markDead(w);
        return false;
    }
    out.fallbackLanes = in.u64();
    const uint64_t nsrc = in.u64();
    if (!in.ok || nsrc * 8 > in.remaining()) {
        markDead(w);
        return false;
    }
    out.perSource.resize(nsrc);
    uint64_t total = 0;
    for (uint64_t i = 0; i < nsrc; ++i) {
        out.perSource[i] = in.u64();
        total += out.perSource[i];
    }
    // The span section (its count word at minimum) follows the
    // transitions, so "remaining" must cover both.
    const size_t trans_bytes = 8 + 4 + wordsFor(stateBits_) * 8;
    if (!in.ok || in.remaining() < 8 ||
        (in.remaining() - 8) / trans_bytes < total) {
        markDead(w);
        return false;
    }
    out.codes.reserve(total);
    out.instrs.reserve(total);
    out.states.reserve(total);
    for (uint64_t t = 0; t < total; ++t) {
        out.codes.push_back(in.u64());
        out.instrs.push_back(in.u32());
        out.states.push_back(in.state(stateBits_));
    }
    const uint64_t nspans = in.u64();
    // 32 bytes is the smallest possible span record (empty name);
    // divide instead of multiply so a hostile count cannot wrap.
    if (!in.ok || nspans > in.remaining() / 32) {
        markDead(w);
        return false;
    }
    out.spans.reserve(nspans);
    for (uint64_t s = 0; s < nspans; ++s) {
        telemetry::ForeignSpan span;
        span.name = in.str(in.u64());
        span.startNs = in.u64();
        span.durNs = in.u64();
        span.jobId = in.u64();
        if (!in.ok) {
            markDead(w);
            return false;
        }
        out.spans.push_back(std::move(span));
    }
    if (!in.ok || in.pos != in.size) {
        markDead(w);
        return false;
    }
    return true;
}

void
ProcessPool::childLoop(int in_fd, int out_fd)
{
    // Per-child step kernels, built once and reused across levels
    // (kernels hold mutable scratch; this child is single-threaded).
    std::optional<compile::ScalarKernel> scalar;
    std::optional<compile::SlicedKernel> sliced;
    if (program_) {
        if (bitSliced_)
            sliced.emplace(program_);
        else
            scalar.emplace(program_);
    }
    uint64_t reported_fallback = 0;

    // Spans recorded by the parent's threads before the fork live in
    // this thread's inherited ring; drop them so only spans from this
    // child's own work ever ship back.
    telemetry::drainThreadSpans();

    std::vector<uint8_t> payload;
    std::vector<BitVec> sources;
    std::vector<uint64_t> per_source;
    std::vector<uint8_t> trans;
    for (;;) {
        if (!recvFrame(in_fd, payload))
            ::_exit(0); // parent gone
        Reader in{payload.data(), payload.size()};
        const uint8_t cmd = in.u8();
        if (!in.ok || cmd != kCmdExpand)
            ::_exit(0);
        const uint64_t job_id = in.u64();
        const uint64_t count = in.u64();
        const size_t state_bytes = wordsFor(stateBits_) * 8;
        if (!in.ok || count * state_bytes != in.remaining())
            ::_exit(0);
        sources.clear();
        sources.reserve(count);
        for (uint64_t i = 0; i < count; ++i)
            sources.push_back(in.state(stateBits_));

        // Expand every source through the kernel, buffering the raw
        // transition stream (no dedup here: the parent replays the
        // stream through the same interning/dedup path the thread
        // workers use, so semantics cannot diverge).
        per_source.assign(count, 0);
        trans.clear();
        // Expansion work runs under the requesting job's correlation
        // id inside one span per batch; the span (and anything the
        // kernels record) ships back in the response.
        telemetry::JobScope job_scope(job_id);
        std::optional<telemetry::ScopedSpan> batch_span;
        if (telemetry::tracingEnabled())
            batch_span.emplace("ooc.child.expand", "sources", count);
        auto emit = [&](size_t source, uint64_t code,
                        fsm::Transition &&transition) {
            ++per_source[source];
            packU64(trans, code);
            packU32(trans,
                    static_cast<uint32_t>(transition.instructions));
            packState(trans, transition.next, stateBits_);
        };
        if (sliced) {
            for (size_t i = 0; i < sources.size(); i += 64) {
                const size_t chunk =
                    std::min<size_t>(64, sources.size() - i);
                std::array<const BitVec *, 64> srcs;
                for (size_t k = 0; k < chunk; ++k)
                    srcs[k] = &sources[i + k];
                sliced->expandBatch(
                    srcs.data(), chunk,
                    [&](size_t lane, uint64_t code,
                        fsm::Transition &&transition) {
                        emit(i + lane, code, std::move(transition));
                    });
            }
        } else {
            for (size_t i = 0; i < sources.size(); ++i) {
                auto on_transition = [&](uint64_t code,
                                         fsm::Transition &&tr) {
                    emit(i, code, std::move(tr));
                };
                if (scalar)
                    scalar->forEachTransition(sources[i],
                                              on_transition);
                else
                    model_.forEachTransition(sources[i],
                                             on_transition);
            }
        }

        // Kernel fallback-lane counts are cumulative per instance;
        // report the delta so the parent can sum per level.
        uint64_t fallback_delta = 0;
        if (sliced) {
            const uint64_t now = sliced->scalarFallbackLanes();
            fallback_delta = now - reported_fallback;
            reported_fallback = now;
        }

        // Close the batch span so it lands in the thread ring, then
        // drain everything this batch recorded for the response.
        batch_span.reset();
        const std::vector<telemetry::ForeignSpan> spans =
            telemetry::drainThreadSpans();
        uint64_t span_bytes = 8;
        for (const telemetry::ForeignSpan &s : spans)
            span_bytes += 32 + s.name.size();

        std::vector<uint8_t> resp;
        const uint64_t resp_size = 1 + 8 + 8 +
                                   per_source.size() * 8 +
                                   trans.size() + span_bytes;
        if (resp_size > kMaxOocFrameBytes) {
            resp.push_back(kRespOverflow);
        } else {
            resp.reserve(resp_size);
            resp.push_back(kRespOk);
            packU64(resp, fallback_delta);
            packU64(resp, per_source.size());
            for (uint64_t n : per_source)
                packU64(resp, n);
            resp.insert(resp.end(), trans.begin(), trans.end());
            packU64(resp, spans.size());
            for (const telemetry::ForeignSpan &s : spans)
                packSpan(resp, s);
        }
        if (!sendFrame(out_fd, resp))
            ::_exit(0);
    }
}

} // namespace archval::murphi::ooc

/**
 * @file
 * Out-of-core enumeration: the level-synchronous BFS of
 * enumerator.cc with bounded table residency and optional forked
 * expansion workers.
 *
 * Three departures from the in-memory parallel search, none of which
 * may change a single produced byte (the differential battery in
 * tests/test_enum_ooc.cc holds this to graph::fingerprint equality):
 *
 *  - Delayed duplicate detection. Workers never probe the global
 *    state table; every destination is interned into a level-local
 *    per-partition candidate table and gets a provisional id — even
 *    states already known from earlier levels. Resolution against
 *    the partitioned table happens at the level barrier, one
 *    partition at a time, so only one partition need be resident
 *    while resolving. Provisional ids are stable per state for the
 *    whole level, so FirstCondition dedup on them equals dedup on
 *    canonical ids, and the canonical-id walk (workers in index
 *    order, sources in level order, transitions in generation order)
 *    is byte-for-byte the in-memory walk.
 *
 *  - Paged partitions and a spilled frontier. Cold partitions are
 *    written to CRC-guarded shard files and their tables freed; the
 *    next level's frontier is written to a frontier file at the
 *    barrier and read back when the level starts. Any read damage
 *    either rebuilds the content from the retained graph (counted in
 *    enum.spill_fallbacks) or, when states are not retained, fails
 *    the run with a typed error — never a silently different graph.
 *
 *  - Forked expansion workers. With numProcesses > 1, frontier
 *    slices ship to child processes over CRC-framed pipes and the
 *    raw transition streams are replayed here through the identical
 *    interning path, so the children contribute cycles, not
 *    semantics. A worker dying mid-level degrades to re-expanding
 *    its slice in-process, which produces the same transitions.
 */

#include "enumerator.hh"

#include "enum_internal.hh"
#include "ooc.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>

#include "compile/kernel.hh"
#include "support/flight_recorder.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/table_memory.hh"
#include "support/telemetry.hh"
#include "support/timer.hh"

namespace archval::murphi
{

using detail::kPendingFlag;

Result<graph::StateGraph>
Enumerator::runOutOfCore(unsigned num_threads)
{
    telemetry::ScopedSpan run_span("enum.run", "threads", num_threads);
    CpuTimer timer;

    const fsm::ChoiceCodec codec = model_.makeChoiceCodec();
    const uint64_t combos = codec.numCombinations();
    const size_t state_bits = model_.stateBits();
    const bool retain = options_.retainStates;
    const bool first_condition =
        options_.recording == EdgeRecording::FirstCondition;
    const ooc::TestHooks *hooks = options_.testHooks;

    telemetry::Counter &spill_bytes_ctr =
        telemetry::counter("enum.spill_bytes");
    telemetry::Counter &page_in_ctr =
        telemetry::counter("enum.page_ins");
    telemetry::Counter &page_out_ctr =
        telemetry::counter("enum.page_outs");
    telemetry::Counter &fallback_ctr =
        telemetry::counter("enum.spill_fallbacks");

    auto spill_fallback = [&](const char *why) {
        ++stats_.spillFallbacks;
        fallback_ctr.add();
        flight::recordEvent(flight::EventKind::SpillFallback,
                            telemetry::currentJobId(), 0, why);
        logWarn(formatString("enumerator (out-of-core): %s", why));
    };

    // Partition count: a power of two; high enough that one resident
    // partition is a small slice of the table, and never below the
    // thread count's contention-comfort point.
    size_t num_parts = 1;
    unsigned part_bits = 0;
    const size_t min_parts =
        options_.oocPartitions
            ? options_.oocPartitions
            : std::max<size_t>(64, size_t(num_threads) * 4);
    while (num_parts < min_parts) {
        num_parts <<= 1;
        ++part_bits;
    }
    const size_t part_mask = num_parts - 1;

    // Spill scratch: requested by a non-zero budget. An unusable
    // directory degrades the run to fully-resident tables rather
    // than failing it — the graph is identical either way.
    const bool paging_requested = options_.memoryBudgetBytes > 0;
    std::optional<ooc::SpillDir> spill_dir;
    if (paging_requested)
        spill_dir.emplace(options_.spillDir);
    bool paging = paging_requested && spill_dir && spill_dir->ok();
    if (paging_requested && !paging)
        spill_fallback("spill directory unusable; "
                       "running fully resident");
    const std::string spill_path = paging ? spill_dir->path() : "";

    ResidencyBudget budget;
    budget.budgetBytes = options_.memoryBudgetBytes;

    /**
     * One partition of the interned state table, plus its
     * level-local candidate table (delayed duplicate detection; see
     * file comment). unordered_map nodes are stable across rehash,
     * so the raw pointers into `cand` survive the level.
     */
    struct Partition
    {
        std::mutex mutex;
        detail::StateTable table;
        size_t tablePayload = 0;    ///< summed key.memoryBytes()
        bool resident = true;
        bool spilled = false;       ///< a shard file exists on disk
        uint64_t spilledCount = 0;  ///< entries in that file
        uint64_t lastUse = 0;       ///< LRU clock for eviction
        detail::StateTable cand;    ///< this level's candidates
        std::vector<const BitVec *> pendingKeys;
        std::vector<graph::StateId *> pendingIds;
        std::vector<char> resolvedKnown; ///< slot was already interned
    };
    std::vector<Partition> parts(num_parts);
    uint64_t use_clock = 0;
    std::string error;

    auto partition_bytes = [&](const Partition &part) {
        return hashTableFootprint(
                   part.table.bucket_count(), part.table.size(),
                   sizeof(detail::StateTable::value_type),
                   part.tablePayload)
            .total();
    };

    auto page_out = [&](size_t p) -> bool {
        Partition &part = parts[p];
        const std::string path = ooc::shardPath(spill_path, p);
        uint64_t bytes = 0;
        if (!ooc::writeShardFile(path, p, state_bits, part.table,
                                 &bytes)) {
            return false;
        }
        stats_.spillBytesWritten += bytes;
        spill_bytes_ctr.add(bytes);
        ++stats_.pageOuts;
        page_out_ctr.add();
        part.spilled = true;
        part.spilledCount = part.table.size();
        detail::StateTable().swap(part.table);
        part.tablePayload = 0;
        part.resident = false;
        if (hooks && hooks->afterShardPageOut)
            hooks->afterShardPageOut(path, p);
        return true;
    };

    // Evict least-recently-used resident partitions (never @p keep)
    // until the resident footprint fits the budget or nothing
    // evictable remains. A failed page-out stops eviction for this
    // call — a sick disk must not be retried per partition.
    auto enforce_budget = [&](size_t keep) {
        if (!paging)
            return;
        for (;;) {
            size_t resident_bytes = 0;
            for (const Partition &part : parts) {
                if (part.resident)
                    resident_bytes += partition_bytes(part);
            }
            if (resident_bytes <= budget.budgetBytes)
                break;
            size_t victim = SIZE_MAX;
            uint64_t oldest = UINT64_MAX;
            for (size_t p = 0; p < num_parts; ++p) {
                const Partition &part = parts[p];
                if (p == keep || !part.resident ||
                    part.table.empty()) {
                    continue;
                }
                if (part.lastUse < oldest) {
                    oldest = part.lastUse;
                    victim = p;
                }
            }
            if (victim == SIZE_MAX)
                break;
            if (!page_out(victim)) {
                spill_fallback("shard page-out failed; "
                               "keeping partition resident");
                break;
            }
        }
    };

    graph::StateGraph graph;

    // Page a partition's table back in (CRC-verified). Damage
    // rebuilds the partition from the retained graph — the graph is
    // the ground truth the table merely indexes — or, when states
    // are not retained, fails the run with a typed error.
    auto ensure_resident = [&](size_t p) -> bool {
        Partition &part = parts[p];
        part.lastUse = ++use_clock;
        if (part.resident)
            return true;
        const std::string path = ooc::shardPath(spill_path, p);
        uint64_t payload = 0;
        bool ok = ooc::readShardFile(
            path, p, state_bits,
            [&](BitVec &&key, graph::StateId id) {
                payload += key.memoryBytes();
                part.table.emplace(std::move(key), id);
            });
        if (ok && part.table.size() != part.spilledCount)
            ok = false;
        if (!ok) {
            detail::StateTable().swap(part.table);
            part.tablePayload = 0;
            if (!retain) {
                ++stats_.spillFallbacks;
                fallback_ctr.add();
                error = formatString(
                    "shard spill file %s is damaged and packed "
                    "states are not retained; cannot rebuild",
                    path.c_str());
                part.resident = true; // (empty) — no more reads
                return false;
            }
            spill_fallback("shard spill file damaged; "
                           "rebuilding partition from graph");
            for (graph::StateId id = 0; id < graph.numStates();
                 ++id) {
                const BitVec &state = graph.packedState(id);
                const size_t hash = BitVecHash{}(state);
                if ((hash & part_mask) != p)
                    continue;
                part.tablePayload += state.memoryBytes();
                part.table.emplace(state, id);
            }
        } else {
            part.tablePayload = payload;
        }
        part.resident = true;
        ++stats_.pageIns;
        page_in_ctr.add();
        enforce_budget(p);
        return true;
    };

    BitVec reset = model_.resetState();
    if (reset.numBits() != state_bits) {
        return Result<graph::StateGraph>::error(
            detail::resetWidthMessage(reset.numBits(), state_bits));
    }
    std::vector<BitVec> level_states;
    level_states.push_back(reset);
    {
        const size_t hash = BitVecHash{}(reset);
        Partition &part = parts[hash & part_mask];
        part.tablePayload += reset.memoryBytes();
        if (retain)
            graph.addState(std::move(reset));
        else
            graph.addStateUnretained();
        part.table.emplace(std::move(level_states.front()), 0);
        // The frontier still needs the packed reset state.
        level_states.front() = graph.statesRetained()
                                   ? graph.packedState(0)
                                   : model_.resetState();
    }

    // Forked expansion workers (see ooc::ProcessPool). The parent
    // stays single-threaded in this mode — the children are the
    // parallelism.
    std::optional<ooc::ProcessPool> pool;
    if (options_.numProcesses > 1) {
        pool.emplace(model_, program_,
                     stats_.kernelUsed == StepKernel::BitSliced,
                     options_.numProcesses, state_bits);
        bool any_alive = false;
        for (unsigned w = 0; w < pool->size(); ++w)
            any_alive = any_alive || pool->alive(w);
        if (!any_alive) {
            spill_fallback("no expansion worker could be forked; "
                           "expanding in-process");
            pool.reset();
        }
    }

    // Parent-side kernels, for single-process mode worker threads
    // (constructed per worker below) and for re-expanding the slice
    // of a lost worker process (constructed lazily here, reused
    // across levels — so sliced fallback lanes must be reported as
    // deltas, mirroring what the children do).
    std::optional<compile::ScalarKernel> local_scalar;
    std::optional<compile::SlicedKernel> local_sliced;
    uint64_t local_sliced_reported = 0;
    auto local_kernels = [&] {
        if (program_ && !local_scalar && !local_sliced) {
            if (stats_.kernelUsed == StepKernel::BitSliced)
                local_sliced.emplace(program_);
            else
                local_scalar.emplace(program_);
        }
    };

    /** One worker-discovered transition; dst is provisional. */
    struct TransRec
    {
        uint64_t code;
        graph::StateId dst;
        uint32_t instrs;
    };
    /** All transitions found for one slice, grouped per source. */
    struct WorkerOut
    {
        std::vector<TransRec> trans;
        std::vector<uint64_t> perSource;
        uint64_t valid = 0;
        uint64_t fallbackLanes = 0;
    };

    // Intern a destination into its partition's candidate table and
    // return its (stable for the level) provisional id. This is the
    // only interning path — thread workers, process-stream replay
    // and lost-worker re-expansion all land here.
    auto intern_cand = [&](BitVec &&state) -> graph::StateId {
        const size_t hash = BitVecHash{}(state);
        Partition &part = parts[hash & part_mask];
        std::lock_guard<std::mutex> lock(part.mutex);
        auto [it, inserted] =
            part.cand.try_emplace(std::move(state), 0);
        if (inserted) {
            const uint32_t slot =
                static_cast<uint32_t>(part.pendingKeys.size());
            if (slot >= (kPendingFlag >> part_bits))
                panic("enumerator: provisional id space exhausted");
            it->second = kPendingFlag | (slot << part_bits) |
                         static_cast<uint32_t>(hash & part_mask);
            part.pendingKeys.push_back(&it->first);
            part.pendingIds.push_back(&it->second);
        }
        return it->second;
    };

    telemetry::Gauge &frontier_gauge =
        telemetry::gauge("enum.frontier");
    telemetry::Gauge &residency_gauge =
        telemetry::gauge("enum.residency_high_water");
    telemetry::Histogram &barrier_wait =
        telemetry::histogram("enum.barrier_wait_seconds");

    bool frontier_spill_enabled = paging;
    bool frontier_on_disk = false;
    size_t width = 1;
    uint64_t level_first = 0;
    size_t level_index = 0;

    while (width > 0 && error.empty()) {
        if (options_.cancelFlag &&
            options_.cancelFlag->load(std::memory_order_relaxed)) {
            error = "enumeration cancelled";
            break;
        }
        if (hooks && hooks->onLevelStart) {
            hooks->onLevelStart(level_index,
                                pool ? pool->pids()
                                     : std::vector<int>{});
        }
        WallTimer level_timer;

        // Reload a spilled frontier. The file carries the level, the
        // state width and the exact count, all CRC-guarded; damage
        // rebuilds the frontier from the retained graph (this
        // level's ids are [level_first, level_first + width)) or
        // fails the run typed.
        if (frontier_on_disk) {
            const std::string path =
                ooc::frontierPath(spill_path, level_index);
            const bool ok = ooc::readFrontierFile(
                path, level_index, state_bits, width, level_states);
            ::remove(path.c_str());
            frontier_on_disk = false;
            if (!ok) {
                if (!retain) {
                    ++stats_.spillFallbacks;
                    fallback_ctr.add();
                    error = formatString(
                        "frontier spill file %s is damaged and "
                        "packed states are not retained; cannot "
                        "rebuild",
                        path.c_str());
                    break;
                }
                spill_fallback("frontier spill file damaged; "
                               "rebuilding from graph");
                level_states.clear();
                level_states.reserve(width);
                for (size_t i = 0; i < width; ++i) {
                    level_states.push_back(graph.packedState(
                        static_cast<graph::StateId>(level_first +
                                                    i)));
                }
            }
        }

        const unsigned workers = static_cast<unsigned>(
            std::max<size_t>(1, std::min<size_t>(
                                    pool ? pool->size() : num_threads,
                                    width)));
        std::vector<WorkerOut> outs(workers);
        frontier_gauge.set(static_cast<int64_t>(width));
        telemetry::ScopedSpan level_span("enum.level", "level",
                                         level_index, "frontier",
                                         width);

        // Expand [begin, end) of the level in-process with the given
        // kernels, recording into `out` in exactly the canonical
        // order (sources in level order, transitions in generation
        // order). Used by the worker threads and by lost-process
        // re-expansion, so thread mode and process mode cannot
        // diverge in recording semantics.
        auto expand_slice = [&](WorkerOut &out, size_t begin,
                                size_t end,
                                compile::ScalarKernel *scalar,
                                compile::SlicedKernel *sliced) {
            out.perSource.reserve(out.perSource.size() +
                                  (end - begin));
            std::unordered_set<uint64_t> dst_seen;
            auto record = [&](uint64_t code,
                              fsm::Transition &&transition) {
                ++out.valid;
                const uint32_t instrs = transition.instructions;
                const graph::StateId dst =
                    intern_cand(std::move(transition.next));
                if (first_condition &&
                    !dst_seen.insert(dst).second) {
                    return;
                }
                out.trans.push_back({code, dst, instrs});
            };
            if (sliced) {
                for (size_t i = begin; i < end;) {
                    const size_t chunk =
                        std::min<size_t>(64, end - i);
                    std::array<const BitVec *, 64> srcs;
                    for (size_t k = 0; k < chunk; ++k)
                        srcs[k] = &level_states[i + k];
                    std::array<uint64_t, 64> counts{};
                    size_t cur_lane = SIZE_MAX;
                    sliced->expandBatch(
                        srcs.data(), chunk,
                        [&](size_t lane, uint64_t code,
                            fsm::Transition &&transition) {
                            if (lane != cur_lane) {
                                cur_lane = lane;
                                dst_seen.clear();
                            }
                            const size_t before = out.trans.size();
                            record(code, std::move(transition));
                            counts[lane] +=
                                out.trans.size() - before;
                        });
                    for (size_t k = 0; k < chunk; ++k)
                        out.perSource.push_back(counts[k]);
                    i += chunk;
                }
            } else {
                for (size_t i = begin; i < end; ++i) {
                    const size_t before = out.trans.size();
                    dst_seen.clear();
                    auto on_transition =
                        [&](uint64_t code,
                            fsm::Transition &&transition) {
                            record(code, std::move(transition));
                        };
                    if (scalar)
                        scalar->forEachTransition(level_states[i],
                                                  on_transition);
                    else
                        model_.forEachTransition(level_states[i],
                                                 on_transition);
                    out.perSource.push_back(out.trans.size() -
                                            before);
                }
            }
        };

        if (pool) {
            // Ship every slice before collecting any response: the
            // children read a whole request before writing, so this
            // cannot deadlock, and it keeps all workers busy.
            std::vector<const BitVec *> ptrs(width);
            for (size_t i = 0; i < width; ++i)
                ptrs[i] = &level_states[i];
            std::vector<char> sent(workers, 0);
            for (unsigned w = 0; w < workers; ++w) {
                const size_t begin = width * w / workers;
                const size_t end = width * (w + 1) / workers;
                sent[w] = pool->sendBatch(w, ptrs.data() + begin,
                                          end - begin);
            }
            for (unsigned w = 0; w < workers; ++w) {
                const size_t begin = width * w / workers;
                const size_t end = width * (w + 1) / workers;
                ooc::ProcessPool::Expansion exp;
                if (!sent[w] || !pool->recvBatch(w, exp)) {
                    // Worker lost (killed, fork failed, damaged
                    // frame, oversize level): re-expand its slice
                    // here — same kernels, same order, same graph.
                    spill_fallback("expansion worker lost; "
                                   "re-expanding slice in-process");
                    local_kernels();
                    expand_slice(
                        outs[w], begin, end,
                        local_scalar ? &*local_scalar : nullptr,
                        local_sliced ? &*local_sliced : nullptr);
                    if (local_sliced) {
                        const uint64_t now =
                            local_sliced->scalarFallbackLanes();
                        outs[w].fallbackLanes +=
                            now - local_sliced_reported;
                        local_sliced_reported = now;
                    }
                    continue;
                }
                // Fold the child's spans into this trace as one
                // synthetic thread per worker process.
                if (!exp.spans.empty())
                    telemetry::recordForeignSpans(
                        formatString("ooc.child.%u", w), exp.spans);
                // Replay the child's raw transition stream through
                // the same interning/dedup path the in-process
                // expansion uses.
                WorkerOut &out = outs[w];
                out.fallbackLanes += exp.fallbackLanes;
                out.perSource.reserve(exp.perSource.size());
                std::unordered_set<uint64_t> dst_seen;
                size_t cursor = 0;
                for (size_t i = 0; i < exp.perSource.size(); ++i) {
                    dst_seen.clear();
                    const size_t before = out.trans.size();
                    for (uint64_t t = 0; t < exp.perSource[i];
                         ++t, ++cursor) {
                        ++out.valid;
                        const graph::StateId dst = intern_cand(
                            std::move(exp.states[cursor]));
                        if (first_condition &&
                            !dst_seen.insert(dst).second) {
                            continue;
                        }
                        out.trans.push_back(
                            {exp.codes[cursor], dst,
                             exp.instrs[cursor]});
                    }
                    out.perSource.push_back(out.trans.size() -
                                            before);
                }
            }
        } else {
            std::vector<uint64_t> finish_ns(workers, 0);
            const uint64_t job_id = telemetry::currentJobId();
            auto expand = [&, job_id](unsigned w) {
                telemetry::JobScope job_scope(job_id);
                const size_t begin = width * w / workers;
                const size_t end = width * (w + 1) / workers;
                if (telemetry::tracingEnabled()) {
                    telemetry::setThreadName(
                        formatString("enum.worker.%u", w));
                }
                telemetry::ScopedSpan expand_span(
                    "enum.expand", "worker", w, "sources",
                    end - begin);
                // Per-worker step kernels: kernels hold mutable
                // scratch and are not thread-safe.
                std::optional<compile::ScalarKernel> scalar;
                std::optional<compile::SlicedKernel> sliced;
                if (program_) {
                    if (stats_.kernelUsed == StepKernel::BitSliced)
                        sliced.emplace(program_);
                    else
                        scalar.emplace(program_);
                }
                expand_slice(outs[w], begin, end,
                             scalar ? &*scalar : nullptr,
                             sliced ? &*sliced : nullptr);
                if (sliced) {
                    outs[w].fallbackLanes =
                        sliced->scalarFallbackLanes();
                }
                finish_ns[w] = telemetry::nowNs();
            };
            if (workers == 1) {
                expand(0);
            } else {
                std::vector<std::thread> threads;
                threads.reserve(workers);
                for (unsigned w = 0; w < workers; ++w)
                    threads.emplace_back(expand, w);
                for (std::thread &t : threads)
                    t.join();
            }
            const uint64_t slowest = *std::max_element(
                finish_ns.begin(), finish_ns.end());
            for (unsigned w = 0; w < workers; ++w) {
                barrier_wait.record(
                    double(slowest - finish_ns[w]) / 1e9);
            }
        }

        stats_.transitionsTried += uint64_t(width) * combos;
        for (const WorkerOut &out : outs) {
            stats_.transitionsValid += out.valid;
            stats_.slicedFallbackLanes += out.fallbackLanes;
        }

        // --- Level barrier ----------------------------------------
        // (1) Delayed duplicate detection: resolve each partition's
        // candidates against its table, paging partitions in one at
        // a time. Candidates found in the table get their canonical
        // id written through the stable pointer; the rest stay
        // provisional for the walk below to number.
        for (size_t p = 0; p < num_parts && error.empty(); ++p) {
            Partition &part = parts[p];
            if (part.pendingKeys.empty())
                continue;
            part.resolvedKnown.assign(part.pendingKeys.size(), 0);
            if (!ensure_resident(p))
                break;
            for (size_t slot = 0; slot < part.pendingKeys.size();
                 ++slot) {
                auto it = part.table.find(*part.pendingKeys[slot]);
                if (it != part.table.end()) {
                    *part.pendingIds[slot] = it->second;
                    part.resolvedKnown[slot] = 1;
                }
            }
        }
        if (!error.empty())
            break;

        // (2) Canonical id assignment: the identical walk to the
        // in-memory parallel search — workers in index order,
        // sources in level order, transitions in generation order —
        // numbering each still-provisional state at its first
        // occurrence. This is what makes the graph bit-identical.
        const uint64_t interned = graph.numStates();
        const uint64_t edges_before = graph.numEdges();
        std::vector<BitVec> new_states;
        std::vector<graph::Edge> new_edges;
        for (unsigned w = 0; w < workers && error.empty(); ++w) {
            WorkerOut &out = outs[w];
            const size_t begin = width * w / workers;
            size_t cursor = 0;
            for (size_t i = 0;
                 i < out.perSource.size() && error.empty(); ++i) {
                const graph::StateId src = static_cast<graph::StateId>(
                    level_first + begin + i);
                for (uint64_t t = 0; t < out.perSource[i];
                     ++t, ++cursor) {
                    const TransRec &rec = out.trans[cursor];
                    graph::StateId dst = rec.dst;
                    if (dst & kPendingFlag) {
                        const uint32_t raw = dst & ~kPendingFlag;
                        Partition &part = parts[raw & part_mask];
                        const uint32_t slot = raw >> part_bits;
                        graph::StateId current =
                            *part.pendingIds[slot];
                        if (current & kPendingFlag) {
                            if (options_.maxStates &&
                                interned + new_states.size() >=
                                    options_.maxStates) {
                                error =
                                    detail::stateExplosionMessage(
                                        options_.maxStates);
                                break;
                            }
                            current = static_cast<graph::StateId>(
                                interned + new_states.size());
                            *part.pendingIds[slot] = current;
                            new_states.push_back(
                                *part.pendingKeys[slot]);
                        }
                        dst = current;
                    }
                    new_edges.push_back(
                        {src, dst, rec.code, rec.instrs});
                }
            }
        }
        if (!error.empty())
            break;

        // (3) Intern the newly numbered states into their
        // partitions' tables (again paging one partition at a time).
        for (size_t p = 0; p < num_parts && error.empty(); ++p) {
            Partition &part = parts[p];
            if (part.pendingKeys.empty())
                continue;
            if (!ensure_resident(p))
                break;
            for (size_t slot = 0; slot < part.pendingKeys.size();
                 ++slot) {
                if (part.resolvedKnown[slot])
                    continue;
                const graph::StateId id = *part.pendingIds[slot];
                part.tablePayload +=
                    part.pendingKeys[slot]->memoryBytes();
                part.table.emplace(*part.pendingKeys[slot], id);
            }
        }
        if (!error.empty())
            break;

        // (4) Commit states and edges to the graph.
        std::vector<BitVec> next_states;
        if (retain) {
            next_states = new_states;
            graph.addStates(std::move(new_states));
        } else {
            graph.addStatesUnretained(new_states.size());
            next_states = std::move(new_states);
        }
        graph.reserveEdges(graph.numEdges() + new_edges.size());
        graph.addEdges(new_edges);

        // (6) Drop the level-local candidate tables.
        for (Partition &part : parts) {
            detail::StateTable().swap(part.cand);
            part.pendingKeys.clear();
            part.pendingIds.clear();
            part.resolvedKnown.clear();
        }

        // (5) Spill the next frontier. Only a non-empty frontier is
        // written (so every written file is read back), and a write
        // failure keeps the in-memory vector and stops spilling —
        // degradation, not damage.
        const size_t new_count = next_states.size();
        if (frontier_spill_enabled && new_count > 0) {
            const std::string path =
                ooc::frontierPath(spill_path, level_index + 1);
            uint64_t bytes = 0;
            if (ooc::writeFrontierFile(path, level_index + 1,
                                       state_bits, next_states,
                                       &bytes)) {
                stats_.spillBytesWritten += bytes;
                spill_bytes_ctr.add(bytes);
                frontier_on_disk = true;
                std::vector<BitVec>().swap(next_states);
                if (hooks && hooks->afterFrontierWrite)
                    hooks->afterFrontierWrite(path);
            } else {
                spill_fallback("frontier spill write failed; "
                               "keeping frontier in memory");
                frontier_spill_enabled = false;
            }
        }

        // (7) Enforce the budget at its steady-state point and take
        // the residency reading the acceptance gate asserts on.
        if (paging) {
            enforce_budget(SIZE_MAX);
            size_t resident_bytes = 0;
            for (const Partition &part : parts) {
                if (part.resident)
                    resident_bytes += partition_bytes(part);
            }
            budget.update(resident_bytes);
            residency_gauge.set(
                static_cast<int64_t>(budget.highWaterBytes));
        }

        LevelStats level_stats;
        level_stats.frontierWidth = width;
        level_stats.newStates = graph.numStates() - interned;
        level_stats.newEdges = graph.numEdges() - edges_before;
        level_stats.seconds = level_timer.seconds();
        stats_.levels.push_back(level_stats);

        if (options_.progressInterval) {
            const uint64_t interval = options_.progressInterval;
            if (graph.numStates() / interval > interned / interval) {
                logInfo(formatString(
                    "enumerated %zu states, %zu edges",
                    graph.numStates(), graph.numEdges()));
            }
        }

        level_first = interned;
        level_states = std::move(next_states);
        width = new_count;
        ++level_index;
    }
    if (!error.empty())
        return Result<graph::StateGraph>::error(error);

    stats_.numStates = graph.numStates();
    stats_.numEdges = graph.numEdges();
    stats_.bitsPerState = state_bits;
    stats_.cpuSeconds = timer.seconds();
    stats_.numThreads = pool ? 1 : num_threads;
    stats_.numProcesses = pool ? pool->size() : 1;
    stats_.numShards = num_parts;
    stats_.residencyHighWaterBytes = budget.highWaterBytes;
    size_t table_bytes = 0;
    size_t min_occupancy = SIZE_MAX;
    size_t max_occupancy = 0;
    for (const Partition &part : parts) {
        const size_t entries = part.resident
                                   ? part.table.size()
                                   : size_t(part.spilledCount);
        if (part.resident)
            table_bytes += partition_bytes(part);
        min_occupancy = std::min(min_occupancy, entries);
        max_occupancy = std::max(max_occupancy, entries);
    }
    stats_.minShardStates = min_occupancy;
    stats_.maxShardStates = max_occupancy;
    size_t level_bytes = 0;
    for (const BitVec &state : level_states)
        level_bytes += state.memoryBytes() + sizeof(state);
    stats_.memoryBytes =
        graph.memoryBytes() + table_bytes + level_bytes;
    detail::recordEnumMetrics(stats_);
    return graph;
}

} // namespace archval::murphi

/**
 * @file
 * Internals shared between the enumerator's in-memory searches
 * (enumerator.cc) and the out-of-core search (enum_ooc.cc). Not part
 * of the public murphi interface.
 */

#ifndef ARCHVAL_MURPHI_ENUM_INTERNAL_HH
#define ARCHVAL_MURPHI_ENUM_INTERNAL_HH

#include <cstdint>
#include <string>

#include "murphi/enumerator.hh"
#include "murphi/ooc.hh"

namespace archval::murphi::detail
{

/** Interned state table (one shard / partition). */
using StateTable = ooc::StateMap;

/**
 * High bit marks a provisional (not yet canonically numbered) state
 * id. A provisional id encodes (shard, pending slot) so the barrier
 * walk can find the entry to renumber; both the thread-parallel and
 * the out-of-core searches must agree on this layout, so it lives
 * here exactly once.
 */
constexpr graph::StateId kPendingFlag = 0x8000'0000u;

/** Footprint of one interning table, buckets + nodes + key words. */
size_t stateTableBytes(const StateTable &table);

/** Error text for a search that exceeded EnumOptions::maxStates. */
std::string stateExplosionMessage(uint64_t max_states);

/** Error text for a reset state whose width disagrees with the
 *  declared state layout. */
std::string resetWidthMessage(size_t reset_bits, size_t state_bits);

/** Publish the run's headline counters/gauges (enum.states etc.). */
void recordEnumMetrics(const EnumStats &stats);

} // namespace archval::murphi::detail

#endif // ARCHVAL_MURPHI_ENUM_INTERNAL_HH

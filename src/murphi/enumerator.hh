/**
 * @file
 * Explicit-state enumeration of a synchronous FSM model.
 *
 * Implements the paper's Section 3.2: breadth-first search from the
 * reset state, trying every permutation of abstract-block choices at
 * every state. Two edge-recording modes are provided:
 *
 *  - FirstCondition (the paper's default): "although more than one
 *    permutation of actions can cause the same transition from one
 *    state to another, only one is recorded" — one edge per distinct
 *    (src, dst) pair, labelled with the first condition found.
 *  - AllConditions (the fix proposed in Section 4): one edge per
 *    distinct (src, dst, condition), which catches the Figure 4.2
 *    "fewer behaviours" bug class at the cost of a larger graph.
 */

#ifndef ARCHVAL_MURPHI_ENUMERATOR_HH
#define ARCHVAL_MURPHI_ENUMERATOR_HH

#include <cstdint>
#include <string>

#include "fsm/model.hh"
#include "graph/state_graph.hh"

namespace archval::murphi
{

/** Edge recording policy (see file comment). */
enum class EdgeRecording
{
    FirstCondition,
    AllConditions,
};

/** Enumeration options. */
struct EnumOptions
{
    EdgeRecording recording = EdgeRecording::FirstCondition;

    /** Abort with an error once this many states are reached
     *  (0 = unlimited). Guards against state explosion. */
    uint64_t maxStates = 0;

    /** Retain packed state vectors in the graph (needed by the
     *  vector generator's condition mapping and by debug output). */
    bool retainStates = true;

    /** Emit progress to the log every this many states (0 = never). */
    uint64_t progressInterval = 0;
};

/** Statistics matching the paper's Table 3.2 rows. */
struct EnumStats
{
    uint64_t numStates = 0;       ///< reachable states
    uint64_t numEdges = 0;        ///< recorded state-graph edges
    size_t bitsPerState = 0;      ///< packed state width
    double cpuSeconds = 0.0;      ///< enumeration CPU time
    size_t memoryBytes = 0;       ///< graph + hash table footprint
    uint64_t transitionsTried = 0; ///< choice tuples evaluated
    uint64_t transitionsValid = 0; ///< tuples that were legal actions

    /** Render as an aligned table next to the paper's values. */
    std::string render() const;
};

/**
 * Runs the reachability search over a model and produces the state
 * graph. Single-use: construct, run(), read stats().
 */
class Enumerator
{
  public:
    /**
     * @param model Model to enumerate (must outlive the Enumerator).
     * @param options Search options.
     */
    explicit Enumerator(const fsm::Model &model, EnumOptions options = {});

    /**
     * Run BFS to a fixpoint.
     * @return the complete reachable state graph; state 0 is reset.
     */
    graph::StateGraph run();

    /** @return statistics of the completed run. */
    const EnumStats &stats() const { return stats_; }

  private:
    const fsm::Model &model_;
    EnumOptions options_;
    EnumStats stats_;
};

} // namespace archval::murphi

#endif // ARCHVAL_MURPHI_ENUMERATOR_HH

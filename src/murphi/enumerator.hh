/**
 * @file
 * Explicit-state enumeration of a synchronous FSM model.
 *
 * Implements the paper's Section 3.2: breadth-first search from the
 * reset state, trying every permutation of abstract-block choices at
 * every state. Two edge-recording modes are provided:
 *
 *  - FirstCondition (the paper's default): "although more than one
 *    permutation of actions can cause the same transition from one
 *    state to another, only one is recorded" — one edge per distinct
 *    (src, dst) pair, labelled with the first condition found.
 *  - AllConditions (the fix proposed in Section 4): one edge per
 *    distinct (src, dst, condition), which catches the Figure 4.2
 *    "fewer behaviours" bug class at the cost of a larger graph.
 *
 * The search runs either sequentially (numThreads == 1) or as a
 * level-synchronous parallel BFS (numThreads > 1): the state hash
 * table is striped into shards keyed by BitVecHash, worker threads
 * expand disjoint slices of the current BFS level interning newly
 * discovered states into the shards under per-shard locks, and state
 * ids are assigned in canonical BFS order at each level barrier. The
 * produced StateGraph is bit-identical for any worker count and
 * matches the sequential search state-for-state and edge-for-edge
 * (see DESIGN.md, "Parallel sharded enumeration").
 */

#ifndef ARCHVAL_MURPHI_ENUMERATOR_HH
#define ARCHVAL_MURPHI_ENUMERATOR_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fsm/model.hh"
#include "graph/state_graph.hh"
#include "support/status.hh"

namespace archval::compile
{
struct Program;
} // namespace archval::compile

namespace archval::murphi
{

namespace ooc
{
struct TestHooks;
} // namespace ooc

/** Edge recording policy (see file comment). */
enum class EdgeRecording
{
    FirstCondition,
    AllConditions,
};

/**
 * Which step kernel expands frontier states.
 *
 * Interpreted walks the model's expression tree per transition;
 * Bytecode runs the model's lowered compile::Program through the
 * scalar threaded interpreter; BitSliced additionally packs up to 64
 * frontier states into bit planes and expands them per choice code in
 * one pass. All three produce bit-identical graphs. Compiled modes
 * need the model to publish a compileSpec(); models that return none
 * (e.g. closure-based models) silently fall back to Interpreted and
 * the fallback is reported in EnumStats.
 */
enum class StepKernel
{
    Interpreted,
    Bytecode,
    BitSliced,
};

/** Enumeration options. */
struct EnumOptions
{
    EdgeRecording recording = EdgeRecording::FirstCondition;

    /** Stop with an error once interning another state would exceed
     *  this many (0 = unlimited). Guards against state explosion;
     *  the over-limit state is never interned. */
    uint64_t maxStates = 0;

    /** Retain packed state vectors in the graph (needed by the
     *  vector generator's condition mapping and by debug output). */
    bool retainStates = true;

    /** Emit progress to the log every this many states (0 = never).
     *  In parallel mode progress is emitted at level barriers. */
    uint64_t progressInterval = 0;

    /** Worker threads for the level-synchronous parallel search.
     *  1 = the sequential search; 0 = one per hardware thread. The
     *  resulting graph is bit-identical for every value. */
    unsigned numThreads = 1;

    /** Cooperative cancellation: when non-null and it reads true,
     *  the search stops at the next source (sequential) or level
     *  barrier (parallel) and run() returns an error result — the
     *  same recoverable path as maxStates, never a process exit.
     *  The flag is only read. */
    const std::atomic<bool> *cancelFlag = nullptr;

    /** Step kernel for frontier expansion (see StepKernel). */
    StepKernel compiledStep = StepKernel::Interpreted;

    /**
     * Byte budget for the resident interned-state table (0 =
     * unbounded, everything stays in memory). A non-zero budget
     * selects the out-of-core search: the table is partitioned, cold
     * partitions are paged out to CRC-guarded spill files under
     * spillDir, and the BFS frontier is spilled between levels. The
     * produced graph is bit-identical to the in-memory search for
     * every budget. An unusable spill directory degrades the run
     * back to in-memory (counted in enum.spill_fallbacks) rather
     * than failing it.
     */
    size_t memoryBudgetBytes = 0;

    /** Base directory for spill scratch (empty = $TMPDIR or /tmp).
     *  A fresh subdirectory is created per run and removed after. */
    std::string spillDir;

    /**
     * Expansion worker processes (1 = expand in-process). Values
     * above 1 also select the out-of-core search: frontier slices
     * are shipped to forked workers over pipes and the raw
     * transition streams are replayed through the same interning
     * path the in-process search uses, so the graph stays
     * bit-identical. A worker dying mid-level degrades to local
     * re-expansion of its slice (counted in enum.spill_fallbacks).
     */
    unsigned numProcesses = 1;

    /** Out-of-core table partition count (0 = default; rounded up
     *  to a power of two). 1 is legal — the pathological single
     *  partition — and mainly useful for tests. */
    size_t oocPartitions = 0;

    /** Fault-injection hooks for the out-of-core search (testing
     *  only; see ooc::TestHooks). Not owned. */
    const ooc::TestHooks *testHooks = nullptr;
};

/** Per-BFS-level observability (frontier shape and throughput). */
struct LevelStats
{
    uint64_t frontierWidth = 0; ///< states expanded at this level
    uint64_t newStates = 0;     ///< states first reached here
    uint64_t newEdges = 0;      ///< edges recorded at this level
    double seconds = 0.0;       ///< wall-clock time for the level

    /** @return expansion throughput for this level (0 when the
     *  level completed faster than the clock resolution). */
    double
    statesPerSec() const
    {
        return seconds > 0.0 ? double(frontierWidth) / seconds : 0.0;
    }
};

/** Statistics matching the paper's Table 3.2 rows. */
struct EnumStats
{
    uint64_t numStates = 0;       ///< reachable states
    uint64_t numEdges = 0;        ///< recorded state-graph edges
    size_t bitsPerState = 0;      ///< packed state width
    double cpuSeconds = 0.0;      ///< enumeration CPU time
    size_t memoryBytes = 0;       ///< graph + hash table footprint
    uint64_t transitionsTried = 0; ///< choice tuples evaluated
    uint64_t transitionsValid = 0; ///< tuples that were legal actions

    unsigned numThreads = 1;      ///< worker threads actually used
    size_t numShards = 1;         ///< hash table stripes

    /** Kernel that actually ran (Interpreted when the model has no
     *  compiled form and the requested mode fell back). */
    StepKernel kernelUsed = StepKernel::Interpreted;
    bool compiledFallback = false; ///< compiled mode requested, no spec
    uint64_t slicedFallbackLanes = 0; ///< per-lane scalar-path steps
    size_t minShardStates = 0;    ///< final occupancy, emptiest shard
    size_t maxShardStates = 0;    ///< final occupancy, fullest shard
    std::vector<LevelStats> levels; ///< per-BFS-level breakdown

    /** @name Out-of-core search (all zero for in-memory runs) @{ */
    unsigned numProcesses = 1;    ///< expansion worker processes
    uint64_t spillBytesWritten = 0; ///< spill file bytes written
    uint64_t pageIns = 0;         ///< shard page-in operations
    uint64_t pageOuts = 0;        ///< shard page-out operations
    uint64_t spillFallbacks = 0;  ///< degraded-path events (see
                                  ///< enum.spill_fallbacks)
    /** High-water mark of the post-eviction resident table bytes;
     *  stays <= memoryBudgetBytes whenever spillFallbacks == 0. */
    size_t residencyHighWaterBytes = 0;
    /** @} */

    /** Render as an aligned table next to the paper's values. */
    std::string render() const;

    /** Render the per-level breakdown as its own table. */
    std::string renderLevels() const;
};

/**
 * Runs the reachability search over a model and produces the state
 * graph. Single-use: construct, run(), read stats().
 */
class Enumerator
{
  public:
    /**
     * @param model Model to enumerate (must outlive the Enumerator).
     * @param options Search options.
     */
    explicit Enumerator(const fsm::Model &model, EnumOptions options = {});

    /**
     * Run BFS to a fixpoint.
     *
     * Never terminates the process: exceeding maxStates or a model
     * whose reset state width disagrees with its declared layout
     * come back as error results, so long-running callers (BugHunt,
     * fuzz campaigns) can skip the configuration and keep going.
     *
     * @return the complete reachable state graph (state 0 is reset),
     *         or an error describing why the search was abandoned.
     */
    Result<graph::StateGraph> run();

    /**
     * Convenience wrapper over run() for callers without a recovery
     * path: @return the graph, or throw FatalError on failure.
     */
    graph::StateGraph runOrThrow();

    /** @return statistics of the completed run. */
    const EnumStats &stats() const { return stats_; }

  private:
    Result<graph::StateGraph> runSequential();
    Result<graph::StateGraph> runParallel(unsigned num_threads);
    /** Out-of-core search (enum_ooc.cc): disk-backed frontier,
     *  partitioned table under a residency budget, optional forked
     *  expansion workers. Bit-identical output to the above. */
    Result<graph::StateGraph> runOutOfCore(unsigned num_threads);

    const fsm::Model &model_;
    EnumOptions options_;
    EnumStats stats_;
    /** Lowered bytecode when a compiled kernel is active this run. */
    std::shared_ptr<const compile::Program> program_;
};

} // namespace archval::murphi

#endif // ARCHVAL_MURPHI_ENUMERATOR_HH

/**
 * @file
 * Control-logic mutations: injectable "single control logic" bugs
 * (the second class of the paper's Table 1.1 taxonomy).
 *
 * Where the six Table 2.1 faults corrupt datapath values under
 * multi-event conjunctions, each mutation here drops or flips one
 * qualification term *inside the control equations themselves* —
 * the classic slip of an overlooked corner case. Because the FSM
 * model and the RTL core share PpControl, a mutation changes both
 * coherently, exactly as in the paper where the model is derived
 * from the (buggy) implementation; the divergence is then exposed by
 * the architectural comparison when the mutated control mishandles
 * data movement.
 */

#ifndef ARCHVAL_RTL_MUTATIONS_HH
#define ARCHVAL_RTL_MUTATIONS_HH

#include <bitset>
#include <cstdint>

namespace archval::rtl
{

/** Single-control-logic mutations of the PP control equations. */
enum class MutationId : uint8_t
{
    /** The background split-store data write is not qualified on
     *  "no probe this cycle": a store commit can race a load's
     *  probe, breaking the load-bypass ordering. */
    CommitIgnoresProbe = 0,

    /** The conflict check is dropped for loads entirely: a load to
     *  the pending store's own line bypasses it and reads stale
     *  data. */
    ConflictDropsLoadCheck,

    /** The conflict check drops the second-store case: back-to-back
     *  stores no longer drain the first store's data write before
     *  the second probes, clobbering the pending-store record. */
    ConflictIgnoresStore,

    /** The memory-port arbiter loses the D-over-I priority: an
     *  I-refill request can starve a waiting D-refill grant. */
    PortPriorityDropped,

    /** The I-refill fix-up cycle is not qualified on the frozen
     *  pipe (the control-level form of bug #4). */
    FixupUnqualified,

    /** A dirty-miss is allowed to start its refill even when the
     *  spill buffer is still occupied: the previous victim is
     *  overwritten (lost writeback). */
    SpillOverrun,

    NumMutations,
};

/** Number of defined mutations. */
constexpr size_t numMutations =
    static_cast<size_t>(MutationId::NumMutations);

/** Set of enabled mutations. */
using MutationSet = std::bitset<numMutations>;

/** @return short identifier, e.g. "m3_conflict_store". */
const char *mutationName(MutationId mutation);

/** @return one-line description. */
const char *mutationSummary(MutationId mutation);

/**
 * @return true when the mutation corrupts architectural data (and is
 * therefore detectable by result comparison); false when its effect
 * is timing-only — the class the paper's Section 4 concedes this
 * methodology cannot detect without a cycle-accurate specification.
 */
bool mutationDataVisible(MutationId mutation);

} // namespace archval::rtl

#endif // ARCHVAL_RTL_MUTATIONS_HH

/**
 * @file
 * Cycle-accurate model of the Protocol Processor — the "RTL
 * implementation" of Figure 3.1.
 *
 * The core drives the shared PpControl next-state function with real
 * (program mode) or forced (vector mode) interface signals and moves
 * architectural data accordingly:
 *
 *  - Program mode: a complete dual-issue in-order processor. Real PC,
 *    real (tags-only) I- and D-cache arrays with LRU / dirty bits /
 *    spill buffer, real branch resolution, a latency-modelled memory
 *    controller port, and Inbox/Outbox queue models. Used by the
 *    directed-test baseline and the examples.
 *  - Vector mode: the simulation target of the paper's methodology.
 *    Interface signals (cache hits, readiness, memory replies) are
 *    forced cycle-by-cycle from generated test vectors — the
 *    "force/release" commands of Section 3.3 — and instructions come
 *    from the abstract I-cache's chosen stream.
 *
 * Architectural data always lives in a flat backing store (the cache
 * arrays hold tags, not data), so the machine is sequentially
 * equivalent to the instruction-level reference simulator unless one
 * of the six injectable Table 2.1 bugs corrupts a value.
 *
 * Datapath timing contract: each instruction performs its register
 * and memory effects at its retire point (when its packet leaves the
 * MEM stage), in program order. The two in-order exceptions mirror
 * the real statically-scheduled PP: branch outcomes are read in EX
 * (the scheduler must keep a branch's sources two packets away from
 * their producer), and split-store data writes drain in the
 * background under the conflict FSM's protection.
 */

#ifndef ARCHVAL_RTL_PP_CORE_HH
#define ARCHVAL_RTL_PP_CORE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pp/isa.hh"
#include "pp/ref_sim.hh"
#include "rtl/faults.hh"
#include "rtl/pp_control.hh"
#include "rtl/pp_fsm_model.hh"

namespace archval::rtl
{

/** Operating mode (see file comment). */
enum class CoreMode
{
    Program, ///< fetch from program memory via a real PC
    Vector,  ///< fetch from a generated stream; signals forced
};

/** Per-cycle forced signal values for vector mode. */
using ForcedSignals = std::array<uint32_t, numPpChoiceVars>;

/** Memory/interface timing knobs for program mode. */
struct CoreTiming
{
    unsigned memLatency = 3;       ///< cycles to the first reply beat
    unsigned outboxCapacity = 2;   ///< entries before SEND stalls
    unsigned outboxDrainCycles = 4; ///< cycles per outbox drain
};

/**
 * The Protocol Processor core.
 */
class PpCore
{
  public:
    /**
     * @param config Machine parameters (shared with PpFsmModel).
     * @param mode Program or Vector operation.
     */
    explicit PpCore(const PpConfig &config,
                    CoreMode mode = CoreMode::Program);

    /** @name Program-mode setup @{ */
    /** Load @p program and reset the machine. */
    void loadProgram(std::vector<uint32_t> program);
    /** Set program-mode timing knobs. */
    void setTiming(const CoreTiming &timing) { timing_ = timing; }
    /** @} */

    /** @name Vector-mode setup @{ */
    /** Load the fetch stream chosen by the test generator. */
    void loadStream(std::vector<uint32_t> stream);
    /** Set the forced interface signals for the next cycle. */
    void forceSignals(const ForcedSignals &signals);
    /** @} */

    /** Provide Inbox contents (consumed by SWITCH). */
    void setInbox(std::deque<uint32_t> inbox);

    /** @name Checkpointing (value-semantics snapshots) @{ */
    /**
     * Opaque bit-exact checkpoint of the whole core: control state,
     * architectural data, pipeline packets, stream/inbox positions,
     * cycle and retire counters, bug bookkeeping. Cheap to copy and
     * share (immutable, reference-counted); restore() resumes as if
     * the run had never stopped.
     */
    class Snapshot
    {
      public:
        Snapshot() = default;
        /** @return true when this snapshot holds a state. */
        bool valid() const { return state_ != nullptr; }
        /** @return approximate heap+object footprint in bytes. */
        size_t bytes() const;
        /** @return cycles executed at capture time. */
        uint64_t cycles() const;
        /** @return fetch-stream words consumed at capture time. */
        size_t streamConsumed() const;
        /** @return Inbox words left unconsumed at capture time. */
        size_t inboxRemaining() const;

        /**
         * Serialize to a self-contained byte record for the disk
         * spill tier. Same-host format (native endianness and struct
         * layout), versioned and tagged with the capture
         * configuration so deserializeSnapshot() can reject foreign
         * records. @return an empty vector for an invalid snapshot.
         */
        std::vector<uint8_t> serialize() const;

      private:
        friend class PpCore;
        std::shared_ptr<const PpCore> state_;
    };

    /** @return a bit-exact checkpoint of the current state. */
    Snapshot snapshot() const;

    /**
     * Rebuild a snapshot from Snapshot::serialize() bytes.
     * @return an invalid snapshot when the record is malformed,
     * truncated, or was captured under a different configuration or
     * mode — callers fall back to from-reset replay rather than
     * trusting damaged bytes.
     */
    static Snapshot deserializeSnapshot(const PpConfig &config,
                                        CoreMode mode,
                                        const uint8_t *data,
                                        size_t size);

    /** Resume from @p snap (same config and mode required). */
    void restore(const Snapshot &snap);

    /**
     * Resume from @p snap and force the enabled-bug mask to @p bugs.
     *
     * This is the cross-bug-set restore of the tiered checkpoint
     * scheme: fault effects are strictly guarded by their trigger
     * conjunctions and trigger cycles are recorded whether or not a
     * bug is enabled, so a snapshot whose cycle count lies strictly
     * below every first-trigger cycle of @p bugs (on the donor run)
     * is bit-identical to the state a run with @p bugs enabled would
     * have reached — except for the mask itself, which this call
     * re-arms. The caller owns that validity check.
     */
    void restoreWithBugs(const Snapshot &snap, const BugSet &bugs);

    /**
     * Replace the vector-mode fetch stream while keeping the consumed
     * position — used when a checkpoint is resumed under a different
     * trace that shares the consumed prefix. The already-consumed
     * words must be identical (checked).
     */
    void rebindStream(const std::vector<uint32_t> &stream);

    /**
     * Replace the Inbox with @p inbox minus its first @p consumed
     * words. The checkpoint already popped those; the caller verifies
     * against the donor trace that they match what was popped.
     */
    void rebindInbox(const std::deque<uint32_t> &inbox,
                     size_t consumed);

    /** @return approximate footprint of one snapshot of this core. */
    size_t snapshotBytes() const;
    /** @} */

    /** Preload a data-memory word. */
    void pokeDmem(uint32_t word_index, uint32_t value);

    /** Enable or disable an injectable bug. */
    void setBug(BugId bug, bool enable);

    /** @return the enabled bug set. */
    const BugSet &bugs() const { return bugs_; }

    /**
     * @return the first cycle at which @p bug's trigger conjunction
     * held on this run — evaluated whether or not the bug is enabled
     * — or UINT64_MAX when it never held. Because every injected
     * fault's effect is strictly guarded by its trigger conjunction,
     * a run with @p bug enabled is bit-identical to this run through
     * any prefix ending at or before the returned cycle; if the
     * trigger never held, through the entire run. The replay engine
     * uses this to resume (or wholly reuse) bug-free replays for
     * bugged ones.
     */
    uint64_t bugFirstTrigger(BugId bug) const
    {
        return bugFirstTrigger_[static_cast<size_t>(bug)];
    }

    /** Advance one clock. @return false once halted (program mode). */
    bool step();

    /** Run up to @p max_cycles or until halt. @return cycles run. */
    uint64_t run(uint64_t max_cycles = 1'000'000);

    /** @return true when no instruction is in flight and all control
     *  FSMs are idle (used to drain vector traces). */
    bool pipeEmpty() const;

    /** @return true after HALT retired (program mode). */
    bool halted() const { return halted_; }

    /** @return the architectural state (same shape as RefSim's). */
    pp::ArchState archState() const;

    /** @return the current control state (for lockstep checks). */
    const PpControlState &controlState() const { return control_; }

    /** @return the outputs of the most recent cycle. */
    const PpOutputs &lastOutputs() const { return lastOutputs_; }

    /** @return total clock cycles executed. */
    uint64_t cycles() const { return cycles_; }

    /** @return instructions retired (architecturally executed). */
    uint64_t instructionsRetired() const { return retired_; }

    /** @return instructions consumed from the vector-mode stream. */
    uint64_t streamConsumed() const { return streamPos_; }

    /** @return register @p index. */
    uint32_t reg(unsigned index) const { return regs_[index & 31]; }

    /** @return one-line pipeline/waveform dump for this cycle (used
     *  by the bug #5 timing-diagram bench). */
    std::string waveLine() const;

  private:
    /** One instruction occupying a pipeline slot. */
    struct MicroOp
    {
        uint32_t word = 0;
        pp::DecodedInstr d;
        uint32_t pc = 0;
        uint32_t memAddr = 0;      ///< byte address (mem ops)
        bool addrValid = false;
        uint32_t inboxValue = 0;   ///< value popped by SWITCH
        bool inboxValid = false;
        bool corruptToNop = false; ///< bug1/bug4 effect
        bool valueCorrupt = false; ///< bug2/bug5 effect
        bool useStale = false;     ///< bug6 effect
        uint32_t staleValue = 0;
    };

    /** A fetch packet (1 or 2 micro-ops). */
    struct Packet
    {
        std::array<MicroOp, 2> ops;
        unsigned count = 0;
        bool valid = false;
    };

    /** Tags-only cache way. */
    struct CacheLine
    {
        bool valid = false;
        bool dirty = false;
        uint32_t tag = 0;
    };

    void reset();

    /** Append the whole machine state to @p out (spill tier). */
    void serializeInto(std::vector<uint8_t> &out) const;

    /** Overwrite this core's state from serializeInto() bytes.
     *  @return false (state unspecified) on any mismatch. */
    bool deserializeFrom(const uint8_t *data, size_t size);

    /** Build this cycle's control inputs (program mode). */
    ForcedSignals computeSignals();

    /** Fetch the next packet (mode dependent). */
    Packet fetchPacket(pp::InstrClass cls, unsigned count);

    /** Architecturally execute @p packet (retire point). */
    void retirePacket(Packet &packet);

    /** Execute one micro-op at retire. */
    void retireOp(MicroOp &op);

    /** @return byte address of a mem op, masked into dmem. */
    uint32_t effectiveAddress(const MicroOp &op) const;

    /** D-cache index/tag helpers (program mode). @{ */
    uint32_t dcacheSetOf(uint32_t addr) const;
    uint32_t dcacheTagOf(uint32_t addr) const;
    bool dcacheProbe(uint32_t addr) const;
    bool dcacheVictimDirty(uint32_t addr) const;
    void dcacheFill(uint32_t addr);
    void dcacheMarkDirty(uint32_t addr);
    bool icacheProbe(uint32_t pc) const;
    void icacheFill(uint32_t pc);
    /** @} */

    /** @return true when @p a and @p b share a cache line. */
    bool sameLine(uint32_t a, uint32_t b) const;

    PpConfig config_;
    CoreMode mode_;
    CoreTiming timing_;
    PpControl controller_;
    PpControlState control_;
    PpOutputs lastOutputs_;
    BugSet bugs_;

    // Architectural state.
    std::array<uint32_t, 32> regs_{};
    std::vector<uint32_t> dmem_;
    std::vector<uint32_t> outbox_;
    std::deque<uint32_t> inbox_;

    // Program mode.
    std::vector<uint32_t> program_;
    uint32_t pc_ = 0;
    std::vector<CacheLine> icacheLines_;
    std::vector<CacheLine> dcacheLines_; // sets * ways
    std::vector<uint8_t> dcacheLru_;     // way to evict next, per set
    uint32_t drefillAddr_ = 0; ///< line being D-refilled
    uint32_t irefillPc_ = 0;   ///< line being I-refilled
    unsigned memWait_ = 0;     ///< cycles until the next reply beat
    unsigned outboxDrain_ = 0; ///< cycles until the next outbox drain
    size_t outboxOccupancy_ = 0;

    // Vector mode.
    std::vector<uint32_t> stream_;
    size_t streamPos_ = 0;
    ForcedSignals forced_{};
    bool forcedValid_ = false;

    // Pipeline.
    Packet rdPacket_;
    Packet exPacket_;
    Packet memPacket_;

    // Split store data write.
    struct PendingStore
    {
        bool valid = false;
        uint32_t addr = 0;
        uint32_t data = 0;
    } pendingStore_;

    // Bug bookkeeping.
    bool bug1Armed_ = false;  ///< corrupt next fetched instruction
    bool bug4Armed_ = false;  ///< fix-up was held while frozen
    struct Bug5Window
    {
        bool open = false;
        uint8_t reg = 0;
        uint32_t garbage = 0;
    } bug5_;

    /** Record a bug trigger conjunction holding this cycle. */
    void noteBugTrigger(BugId bug)
    {
        size_t i = static_cast<size_t>(bug);
        if (bugFirstTrigger_[i] == UINT64_MAX)
            bugFirstTrigger_[i] = cycles_;
    }

    /** First trigger cycle per bug; see bugFirstTrigger(). */
    std::array<uint64_t, numBugs> bugFirstTrigger_ = [] {
        std::array<uint64_t, numBugs> a{};
        a.fill(UINT64_MAX);
        return a;
    }();

    bool halted_ = false;
    uint64_t cycles_ = 0;
    uint64_t retired_ = 0;
};

} // namespace archval::rtl

#endif // ARCHVAL_RTL_PP_CORE_HH

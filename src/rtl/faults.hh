/**
 * @file
 * Injectable faults reproducing the six Protocol Processor bugs of
 * Table 2.1. Each fault is a small behavioural deviation in the RTL
 * datapath, gated on exactly the control-event conjunction the paper
 * describes; all are "multiple event" class bugs that require an
 * improbable interaction to manifest as an architectural-state
 * difference.
 */

#ifndef ARCHVAL_RTL_FAULTS_HH
#define ARCHVAL_RTL_FAULTS_HH

#include <bitset>
#include <cstdint>
#include <string>

namespace archval::rtl
{

/** The injectable PP bugs (numbering follows Table 2.1). */
enum class BugId : uint8_t
{
    Bug1IfaceQual = 0, ///< unqualified memctrl interface signal sends
                       ///< wrong data to the I-cache when a D request
                       ///< overlaps the I-refill
    Bug2RefillLatch,   ///< D-refill return latch loses its data on a
                       ///< simultaneous I-stall
    Bug3ConflictAddr,  ///< conflict-stalled load address not held;
                       ///< the following load/store's address is used
    Bug4FixupLost,     ///< I-stall fix-up cycle not qualified on
                       ///< MemStall; restored state lost
    Bug5MembusGlitch,  ///< glitch on Membus-valid latches Z values
                       ///< when an external stall lands in the window
    Bug6StaleConflict, ///< conflict stall + D-hit + simultaneous
                       ///< I-stall loads stale data
    NumBugs,
};

/** Number of injectable bugs. */
constexpr size_t numBugs = static_cast<size_t>(BugId::NumBugs);

/** Set of enabled bugs. */
using BugSet = std::bitset<numBugs>;

/** @return short identifier, e.g. "bug3". */
const char *bugName(BugId bug);

/** @return the Table 2.1 one-line summary. */
const char *bugSummary(BugId bug);

/**
 * Classification taxonomy of Table 1.1 (applied to the MIPS R4000
 * errata in the paper and to our fault library in bench_table1_1).
 */
enum class BugClass : uint8_t
{
    PipelineDatapathOnly, ///< datapath-local, no control involvement
    SingleControlLogic,   ///< one control FSM wrong in isolation
    MultipleEvent,        ///< interaction of several units/corner
                          ///< cases
};

/** @return printable class name. */
const char *bugClassName(BugClass cls);

/** @return the taxonomy class of an injectable PP bug. */
BugClass bugClassOf(BugId bug);

} // namespace archval::rtl

#endif // ARCHVAL_RTL_FAULTS_HH

#include "pp_core.hh"

#include <cstring>
#include <type_traits>

#include "support/status.hh"
#include "support/strings.hh"

namespace archval::rtl
{

namespace
{

using pp::DecodedInstr;
using pp::Funct;
using pp::InstrClass;
using pp::Opcode;

bool
isMemClass(InstrClass cls)
{
    return cls == InstrClass::Load || cls == InstrClass::Store;
}

/** Map an instruction class to the FetchClass choice value. */
uint32_t
choiceOfClass(InstrClass cls)
{
    return static_cast<uint32_t>(cls) - 1;
}

/** Garbage pattern for bug-corrupted values ("Z values latched"). */
constexpr uint32_t garbageValue = 0x2a2a2a2au;

} // namespace

PpCore::PpCore(const PpConfig &config, CoreMode mode)
    : config_(config), mode_(mode), controller_(config)
{
    dmem_.resize(config_.machine.dmemWords, 0);
    icacheLines_.resize(config_.icacheSets);
    dcacheLines_.resize(config_.dcacheSets * config_.dcacheWays);
    dcacheLru_.resize(config_.dcacheSets, 0);
    reset();
}

void
PpCore::reset()
{
    control_ = PpControl::resetState();
    lastOutputs_ = PpOutputs{};
    regs_.fill(0);
    std::fill(dmem_.begin(), dmem_.end(), 0);
    outbox_.clear();
    inbox_.clear();
    pc_ = 0;
    for (auto &line : icacheLines_)
        line = CacheLine{};
    for (auto &line : dcacheLines_)
        line = CacheLine{};
    std::fill(dcacheLru_.begin(), dcacheLru_.end(), 0);
    memWait_ = 0;
    outboxDrain_ = 0;
    outboxOccupancy_ = 0;
    streamPos_ = 0;
    forcedValid_ = false;
    rdPacket_ = Packet{};
    exPacket_ = Packet{};
    memPacket_ = Packet{};
    pendingStore_ = PendingStore{};
    bug1Armed_ = false;
    bug4Armed_ = false;
    bug5_ = Bug5Window{};
    bugFirstTrigger_.fill(UINT64_MAX);
    halted_ = false;
    cycles_ = 0;
    retired_ = 0;
}

void
PpCore::loadProgram(std::vector<uint32_t> program)
{
    if (mode_ != CoreMode::Program)
        fatal("loadProgram requires program mode");
    program_ = std::move(program);
    reset();
}

void
PpCore::loadStream(std::vector<uint32_t> stream)
{
    if (mode_ != CoreMode::Vector)
        fatal("loadStream requires vector mode");
    stream_ = std::move(stream);
    reset();
}

void
PpCore::forceSignals(const ForcedSignals &signals)
{
    forced_ = signals;
    forcedValid_ = true;
}

void
PpCore::setInbox(std::deque<uint32_t> inbox)
{
    inbox_ = std::move(inbox);
}

size_t
PpCore::Snapshot::bytes() const
{
    return state_ ? state_->snapshotBytes() : 0;
}

uint64_t
PpCore::Snapshot::cycles() const
{
    return state_ ? state_->cycles_ : 0;
}

size_t
PpCore::Snapshot::streamConsumed() const
{
    return state_ ? state_->streamPos_ : 0;
}

size_t
PpCore::Snapshot::inboxRemaining() const
{
    return state_ ? state_->inbox_.size() : 0;
}

PpCore::Snapshot
PpCore::snapshot() const
{
    // Every member is value-semantic, so a copy of the whole core is
    // a bit-exact checkpoint by construction — there is no hidden
    // state to forget when the model grows a new field.
    Snapshot snap;
    snap.state_ = std::make_shared<const PpCore>(*this);
    return snap;
}

void
PpCore::restore(const Snapshot &snap)
{
    if (!snap.valid())
        fatal("restore from an empty snapshot");
    if (snap.state_->mode_ != mode_)
        fatal("snapshot/core mode mismatch");
    *this = *snap.state_;
}

void
PpCore::restoreWithBugs(const Snapshot &snap, const BugSet &bugs)
{
    restore(snap);
    bugs_ = bugs;
}

namespace
{

/**
 * Byte-stream helpers for the spill-tier snapshot record. The format
 * is a plain concatenation of trivially-copyable blocks and
 * length-prefixed arrays in native layout — a spill record never
 * leaves the host, and SpillStore CRC-checks the bytes in transit;
 * the reader only has to reject structural damage (bad lengths,
 * foreign configuration), which it does by refusing to read past the
 * end and by checking every length against the constructing config.
 */
struct ByteWriter
{
    std::vector<uint8_t> &out;

    void raw(const void *data, size_t size)
    {
        const uint8_t *p = static_cast<const uint8_t *>(data);
        out.insert(out.end(), p, p + size);
    }

    template <typename T>
    void pod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        raw(&value, sizeof value);
    }

    void u32(uint32_t value) { pod(value); }
    void u64(uint64_t value) { pod(value); }
    void b(bool value) { pod(uint8_t(value ? 1 : 0)); }

    template <typename T>
    void vec(const std::vector<T> &values)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        u64(values.size());
        raw(values.data(), values.size() * sizeof(T));
    }
};

struct ByteReader
{
    const uint8_t *data;
    size_t size;
    size_t pos = 0;
    bool ok = true;

    bool raw(void *out, size_t n)
    {
        if (!ok || size - pos < n) {
            ok = false;
            return false;
        }
        std::memcpy(out, data + pos, n);
        pos += n;
        return true;
    }

    template <typename T>
    bool pod(T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        return raw(&value, sizeof value);
    }

    uint32_t u32()
    {
        uint32_t v = 0;
        pod(v);
        return v;
    }

    uint64_t u64()
    {
        uint64_t v = 0;
        pod(v);
        return v;
    }

    bool b()
    {
        uint8_t v = 0;
        pod(v);
        return v != 0;
    }

    template <typename T>
    bool vec(std::vector<T> &values)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        uint64_t n = u64();
        if (!ok || (size - pos) / sizeof(T) < n) {
            ok = false;
            return false;
        }
        values.resize(n);
        return raw(values.data(), n * sizeof(T));
    }
};

constexpr uint32_t snapshotMagic = 0x41565353u; // "AVSS"
constexpr uint32_t snapshotVersion = 1;

} // namespace

void
PpCore::serializeInto(std::vector<uint8_t> &out) const
{
    ByteWriter w{out};
    w.u32(snapshotMagic);
    w.u32(snapshotVersion);
    w.u32(static_cast<uint32_t>(mode_));
    // Configuration fingerprint: enough to reject a record captured
    // under a different machine shape before any length is trusted.
    w.u32(config_.lineWords);
    w.u32(config_.dcacheSets);
    w.u32(config_.dcacheWays);
    w.u32(config_.icacheSets);
    w.u32(config_.machine.dmemWords);

    w.pod(control_);
    w.pod(lastOutputs_);
    w.pod(timing_);
    w.u32(static_cast<uint32_t>(bugs_.to_ulong()));
    w.pod(regs_);
    w.vec(dmem_);
    w.vec(outbox_);
    w.u64(inbox_.size());
    for (uint32_t word : inbox_)
        w.u32(word);
    w.vec(program_);
    w.u32(pc_);
    w.vec(icacheLines_);
    w.vec(dcacheLines_);
    w.vec(dcacheLru_);
    w.u32(drefillAddr_);
    w.u32(irefillPc_);
    w.u32(memWait_);
    w.u32(outboxDrain_);
    w.u64(outboxOccupancy_);
    w.vec(stream_);
    w.u64(streamPos_);
    w.pod(forced_);
    w.b(forcedValid_);
    w.pod(rdPacket_);
    w.pod(exPacket_);
    w.pod(memPacket_);
    w.pod(pendingStore_);
    w.b(bug1Armed_);
    w.b(bug4Armed_);
    w.pod(bug5_);
    w.pod(bugFirstTrigger_);
    w.b(halted_);
    w.u64(cycles_);
    w.u64(retired_);
}

bool
PpCore::deserializeFrom(const uint8_t *data, size_t size)
{
    ByteReader r{data, size};
    if (r.u32() != snapshotMagic || r.u32() != snapshotVersion ||
        r.u32() != static_cast<uint32_t>(mode_) ||
        r.u32() != config_.lineWords ||
        r.u32() != config_.dcacheSets ||
        r.u32() != config_.dcacheWays ||
        r.u32() != config_.icacheSets ||
        r.u32() != config_.machine.dmemWords || !r.ok)
        return false;

    r.pod(control_);
    r.pod(lastOutputs_);
    r.pod(timing_);
    bugs_ = BugSet(r.u32());
    r.pod(regs_);
    r.vec(dmem_);
    r.vec(outbox_);
    uint64_t inbox_words = r.u64();
    if (!r.ok || (r.size - r.pos) / sizeof(uint32_t) < inbox_words)
        return false;
    inbox_.clear();
    for (uint64_t i = 0; i < inbox_words; ++i)
        inbox_.push_back(r.u32());
    r.vec(program_);
    pc_ = r.u32();
    r.vec(icacheLines_);
    r.vec(dcacheLines_);
    r.vec(dcacheLru_);
    drefillAddr_ = r.u32();
    irefillPc_ = r.u32();
    memWait_ = r.u32();
    outboxDrain_ = r.u32();
    outboxOccupancy_ = r.u64();
    r.vec(stream_);
    streamPos_ = r.u64();
    r.pod(forced_);
    forcedValid_ = r.b();
    r.pod(rdPacket_);
    r.pod(exPacket_);
    r.pod(memPacket_);
    r.pod(pendingStore_);
    bug1Armed_ = r.b();
    bug4Armed_ = r.b();
    r.pod(bug5_);
    r.pod(bugFirstTrigger_);
    halted_ = r.b();
    cycles_ = r.u64();
    retired_ = r.u64();

    // Structural checks: every container the config sizes must come
    // back at its constructed size, and the record must be consumed
    // exactly — a partial or padded record is damage, not a version.
    return r.ok && r.pos == r.size &&
           dmem_.size() == config_.machine.dmemWords &&
           icacheLines_.size() == config_.icacheSets &&
           dcacheLines_.size() ==
               size_t(config_.dcacheSets) * config_.dcacheWays &&
           dcacheLru_.size() == config_.dcacheSets &&
           streamPos_ <= stream_.size();
}

std::vector<uint8_t>
PpCore::Snapshot::serialize() const
{
    std::vector<uint8_t> out;
    if (state_) {
        out.reserve(state_->snapshotBytes());
        state_->serializeInto(out);
    }
    return out;
}

PpCore::Snapshot
PpCore::deserializeSnapshot(const PpConfig &config, CoreMode mode,
                            const uint8_t *data, size_t size)
{
    auto core = std::make_shared<PpCore>(config, mode);
    Snapshot snap;
    if (core->deserializeFrom(data, size))
        snap.state_ = std::move(core);
    return snap;
}

void
PpCore::rebindStream(const std::vector<uint32_t> &stream)
{
    if (mode_ != CoreMode::Vector)
        fatal("rebindStream requires vector mode");
    if (stream.size() < streamPos_)
        fatal("rebindStream: new stream shorter than consumed prefix");
    for (size_t i = 0; i < streamPos_; ++i) {
        if (stream[i] != stream_[i])
            fatal("rebindStream: consumed prefix differs");
    }
    stream_.assign(stream.begin(), stream.end());
}

void
PpCore::rebindInbox(const std::deque<uint32_t> &inbox, size_t consumed)
{
    if (consumed > inbox.size())
        fatal("rebindInbox: consumed count exceeds inbox size");
    inbox_.assign(inbox.begin() + static_cast<long>(consumed),
                  inbox.end());
}

size_t
PpCore::snapshotBytes() const
{
    return sizeof(PpCore) +
           dmem_.capacity() * sizeof(uint32_t) +
           outbox_.capacity() * sizeof(uint32_t) +
           inbox_.size() * sizeof(uint32_t) +
           program_.capacity() * sizeof(uint32_t) +
           stream_.capacity() * sizeof(uint32_t) +
           icacheLines_.capacity() * sizeof(CacheLine) +
           dcacheLines_.capacity() * sizeof(CacheLine) +
           dcacheLru_.capacity();
}

void
PpCore::pokeDmem(uint32_t word_index, uint32_t value)
{
    dmem_[word_index % config_.machine.dmemWords] = value;
}

void
PpCore::setBug(BugId bug, bool enable)
{
    bugs_.set(static_cast<size_t>(bug), enable);
}

uint32_t
PpCore::effectiveAddress(const MicroOp &op) const
{
    uint32_t base = regs_[op.d.rs];
    uint32_t addr = base + static_cast<uint32_t>(
                               static_cast<int32_t>(op.d.imm));
    return addr & config_.machine.dmemByteMask() & ~3u;
}

uint32_t
PpCore::dcacheSetOf(uint32_t addr) const
{
    uint32_t line = addr / (config_.lineWords * 4);
    return line % config_.dcacheSets;
}

uint32_t
PpCore::dcacheTagOf(uint32_t addr) const
{
    uint32_t line = addr / (config_.lineWords * 4);
    return line / config_.dcacheSets;
}

bool
PpCore::dcacheProbe(uint32_t addr) const
{
    uint32_t set = dcacheSetOf(addr);
    uint32_t tag = dcacheTagOf(addr);
    for (unsigned way = 0; way < config_.dcacheWays; ++way) {
        const auto &line = dcacheLines_[set * config_.dcacheWays + way];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

bool
PpCore::dcacheVictimDirty(uint32_t addr) const
{
    uint32_t set = dcacheSetOf(addr);
    const auto &victim =
        dcacheLines_[set * config_.dcacheWays + dcacheLru_[set]];
    return victim.valid && victim.dirty;
}

void
PpCore::dcacheFill(uint32_t addr)
{
    uint32_t set = dcacheSetOf(addr);
    unsigned way = dcacheLru_[set];
    auto &line = dcacheLines_[set * config_.dcacheWays + way];
    line.valid = true;
    line.dirty = false;
    line.tag = dcacheTagOf(addr);
    // Filled way becomes most recently used.
    dcacheLru_[set] =
        static_cast<uint8_t>((way + 1) % config_.dcacheWays);
}

void
PpCore::dcacheMarkDirty(uint32_t addr)
{
    uint32_t set = dcacheSetOf(addr);
    uint32_t tag = dcacheTagOf(addr);
    for (unsigned way = 0; way < config_.dcacheWays; ++way) {
        auto &line = dcacheLines_[set * config_.dcacheWays + way];
        if (line.valid && line.tag == tag) {
            line.dirty = true;
            // Touch for LRU: evict the other way next (2-way).
            if (config_.dcacheWays == 2)
                dcacheLru_[set] = static_cast<uint8_t>(1 - way);
            return;
        }
    }
}

bool
PpCore::icacheProbe(uint32_t pc) const
{
    uint32_t line = pc / config_.lineWords;
    const auto &entry = icacheLines_[line % config_.icacheSets];
    return entry.valid && entry.tag == line / config_.icacheSets;
}

void
PpCore::icacheFill(uint32_t pc)
{
    uint32_t line = pc / config_.lineWords;
    auto &entry = icacheLines_[line % config_.icacheSets];
    entry.valid = true;
    entry.tag = line / config_.icacheSets;
}

bool
PpCore::sameLine(uint32_t a, uint32_t b) const
{
    uint32_t line_bytes = config_.lineWords * 4;
    return a / line_bytes == b / line_bytes;
}

ForcedSignals
PpCore::computeSignals()
{
    ForcedSignals s{};

    // Fetch interface: probe the I-cache at the current PC and
    // classify the instruction(s) there.
    uint32_t fetch_word =
        pc_ < program_.size() ? program_[pc_] : pp::encodeNop();
    InstrClass fetch_cls = pp::classOfWord(fetch_word);
    if (!config_.modelBranches && fetch_cls == InstrClass::Branch)
        fatal("program contains a branch but modelBranches is off");
    s[static_cast<size_t>(PpChoiceVar::IHit)] =
        pc_ < program_.size() ? (icacheProbe(pc_) ? 1 : 0) : 1;
    s[static_cast<size_t>(PpChoiceVar::FetchClass)] =
        choiceOfClass(fetch_cls);
    if (config_.dualIssue && pc_ + 1 < program_.size()) {
        InstrClass second = pp::classOfWord(program_[pc_ + 1]);
        bool pairable = second == InstrClass::Alu &&
                        fetch_cls != InstrClass::Branch &&
                        (pc_ / config_.lineWords ==
                         (pc_ + 1) / config_.lineWords);
        s[static_cast<size_t>(PpChoiceVar::Dual)] = pairable ? 1 : 0;
    }

    // MEM-stage interface: compute the access address once and probe
    // the D-cache.
    if (memPacket_.valid && isMemClass(memPacket_.ops[0].d.cls()) &&
        !control_.memDone) {
        MicroOp &op = memPacket_.ops[0];
        if (!op.addrValid) {
            op.memAddr = effectiveAddress(op);
            op.addrValid = true;
        }
        s[static_cast<size_t>(PpChoiceVar::DHit)] =
            dcacheProbe(op.memAddr) ? 1 : 0;
        s[static_cast<size_t>(PpChoiceVar::Dirty)] =
            dcacheVictimDirty(op.memAddr) ? 1 : 0;
        s[static_cast<size_t>(PpChoiceVar::SameLine)] =
            pendingStore_.valid &&
                    sameLine(op.memAddr, pendingStore_.addr)
                ? 1
                : 0;
    }

    // External units.
    s[static_cast<size_t>(PpChoiceVar::InboxReady)] =
        inbox_.empty() ? 0 : 1;
    s[static_cast<size_t>(PpChoiceVar::OutboxReady)] =
        outboxOccupancy_ < timing_.outboxCapacity ? 1 : 0;

    // Branch outcome, resolved in EX. The static schedule must keep
    // a branch's sources clear of in-flight producers (see file
    // comment); reading the committed register file here is the
    // machine's contract.
    if (config_.modelBranches && exPacket_.valid &&
        exPacket_.ops[0].d.cls() == InstrClass::Branch) {
        const DecodedInstr &d = exPacket_.ops[0].d;
        bool taken = false;
        if (d.op == Opcode::J)
            taken = true;
        else if (d.op == Opcode::Beq)
            taken = regs_[d.rs] == regs_[d.rt];
        else if (d.op == Opcode::Bne)
            taken = regs_[d.rs] != regs_[d.rt];
        s[static_cast<size_t>(PpChoiceVar::BranchTaken)] = taken ? 1 : 0;
        if (config_.modelAlignment) {
            uint32_t target =
                d.op == Opcode::J
                    ? d.target
                    : exPacket_.ops[0].pc + 1 +
                          static_cast<uint32_t>(
                              static_cast<int32_t>(d.imm));
            s[static_cast<size_t>(PpChoiceVar::TargetAlign)] =
                target % config_.lineWords;
        }
    }

    // Memory controller reply beat.
    s[static_cast<size_t>(PpChoiceVar::MemReply)] =
        control_.memPort != MemPort::Free && memWait_ == 0 ? 1 : 0;

    return s;
}

PpCore::Packet
PpCore::fetchPacket(InstrClass cls, unsigned count)
{
    Packet packet;
    packet.valid = true;
    packet.count = count;
    for (unsigned slot = 0; slot < count; ++slot) {
        MicroOp &op = packet.ops[slot];
        if (mode_ == CoreMode::Vector) {
            op.word = streamPos_ < stream_.size()
                          ? stream_[streamPos_++]
                          : pp::encodeNop();
        } else {
            op.word = pc_ < program_.size() ? program_[pc_]
                                            : pp::encodeNop();
            op.pc = pc_;
            ++pc_;
        }
        op.d = pp::decode(op.word);
    }
    if (packet.count > 0 && packet.ops[0].d.cls() != cls) {
        panic(formatString(
            "fetch stream out of sync: expected class %s, got %s "
            "(%s)",
            pp::instrClassName(cls),
            pp::instrClassName(packet.ops[0].d.cls()),
            packet.ops[0].d.toString().c_str()));
    }
    if (bug1Armed_ || bug4Armed_) {
        // Bug #1: the I-cache received wrong data for this line.
        // Bug #4: the lost fix-up clobbered the restored registers.
        // Either way the instruction's effects are lost in the
        // implementation while the specification executes it.
        packet.ops[0].corruptToNop = true;
        bug1Armed_ = false;
        bug4Armed_ = false;
    }
    return packet;
}

void
PpCore::retireOp(MicroOp &op)
{
    auto write_reg = [&](unsigned index, uint32_t value) {
        if ((index & 31) != 0)
            regs_[index & 31] = value;
    };

    if (op.corruptToNop)
        return;

    const DecodedInstr &d = op.d;
    uint32_t rs = regs_[d.rs];
    uint32_t rt = regs_[d.rt];

    switch (d.op) {
      case Opcode::Special:
        switch (d.funct) {
          case Funct::Sll:
            write_reg(d.rd, rt << d.shamt);
            break;
          case Funct::Srl:
            write_reg(d.rd, rt >> d.shamt);
            break;
          case Funct::Sra:
            write_reg(d.rd, static_cast<uint32_t>(
                                static_cast<int32_t>(rt) >> d.shamt));
            break;
          case Funct::Add:
            write_reg(d.rd, rs + rt);
            break;
          case Funct::Sub:
            write_reg(d.rd, rs - rt);
            break;
          case Funct::And:
            write_reg(d.rd, rs & rt);
            break;
          case Funct::Or:
            write_reg(d.rd, rs | rt);
            break;
          case Funct::Xor:
            write_reg(d.rd, rs ^ rt);
            break;
          case Funct::Slt:
            write_reg(d.rd, static_cast<int32_t>(rs) <
                                static_cast<int32_t>(rt));
            break;
        }
        break;
      case Opcode::Addi:
        write_reg(d.rt, rs + static_cast<uint32_t>(
                                 static_cast<int32_t>(d.imm)));
        break;
      case Opcode::Slti:
        write_reg(d.rt, static_cast<int32_t>(rs) <
                            static_cast<int32_t>(d.imm));
        break;
      case Opcode::Andi:
        write_reg(d.rt, rs & static_cast<uint16_t>(d.imm));
        break;
      case Opcode::Ori:
        write_reg(d.rt, rs | static_cast<uint16_t>(d.imm));
        break;
      case Opcode::Xori:
        write_reg(d.rt, rs ^ static_cast<uint16_t>(d.imm));
        break;
      case Opcode::Lui:
        write_reg(d.rt, static_cast<uint32_t>(
                            static_cast<uint16_t>(d.imm)) << 16);
        break;
      case Opcode::Lw: {
        if (!op.addrValid) {
            op.memAddr = effectiveAddress(op);
            op.addrValid = true;
        }
        uint32_t value;
        if (op.useStale)
            value = op.staleValue;
        else
            value = dmem_[op.memAddr / 4];
        if (op.valueCorrupt)
            value = garbageValue;
        write_reg(d.rt, value);
        break;
      }
      case Opcode::Sw:
        // Split store: the pending (addr, data) record was captured
        // at the store's completion point (probe hit or critical
        // word); the data write drains later under the conflict
        // FSM's protection (storeCommit). Nothing to do at retire.
        break;
      case Opcode::Switch:
        if (!op.inboxValid)
            panic("SWITCH retired without an Inbox word");
        write_reg(d.rt, op.inboxValue);
        break;
      case Opcode::Send:
        outbox_.push_back(rs);
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::J:
        // Control effects only; handled at the squash point.
        break;
      case Opcode::Halt:
        halted_ = true;
        break;
    }
}

void
PpCore::retirePacket(Packet &packet)
{
    for (unsigned slot = 0; slot < packet.count; ++slot) {
        retireOp(packet.ops[slot]);
        ++retired_;
        // Nothing younger than a retired HALT may execute.
        if (halted_)
            break;
    }
    packet = Packet{};
}

bool
PpCore::step()
{
    if (halted_)
        return false;

    // ------------------------------------------------------------------
    // 1. Assemble this cycle's interface signals.
    // ------------------------------------------------------------------
    ForcedSignals signals;
    if (mode_ == CoreMode::Vector) {
        if (!forcedValid_)
            fatal("vector mode requires forceSignals before step");
        signals = forced_;
        forcedValid_ = false;
        // The MEM-stage address is still computed from the real
        // datapath (the generator constrained it to be consistent
        // with the forced SameLine choice).
        if (memPacket_.valid &&
            isMemClass(memPacket_.ops[0].d.cls()) &&
            !control_.memDone && !memPacket_.ops[0].addrValid) {
            memPacket_.ops[0].memAddr =
                effectiveAddress(memPacket_.ops[0]);
            memPacket_.ops[0].addrValid = true;
        }
    } else {
        signals = computeSignals();
    }

    SignalInputs inputs;
    for (size_t i = 0; i < numPpChoiceVars; ++i)
        inputs.set(static_cast<PpChoiceVar>(i), signals[i]);

    // ------------------------------------------------------------------
    // 2. Advance the control.
    // ------------------------------------------------------------------
    const PpControlState prev = control_;
    PpOutputs out;
    PpControlState next = controller_.step(prev, inputs, out);

    // ------------------------------------------------------------------
    // 3. EX-stage handshakes (order of pops/pushes == program order).
    // ------------------------------------------------------------------
    if (out.inboxPop) {
        if (!exPacket_.valid || inbox_.empty())
            panic("inboxPop with no SWITCH in EX or empty inbox");
        exPacket_.ops[0].inboxValue = inbox_.front();
        exPacket_.ops[0].inboxValid = true;
        inbox_.pop_front();
    }
    if (out.outboxPush) {
        // Handshake consumes an Outbox slot now; the value is bound
        // at the SEND's retire point (program order).
        ++outboxOccupancy_;
    }

    // ------------------------------------------------------------------
    // 4. Bug hooks that fire on this cycle's control events. All are
    //    conjunctions of multiple rare conditions (Table 2.1). Each
    //    trigger conjunction is evaluated whether or not its bug is
    //    enabled — noteBugTrigger feeds bugFirstTrigger(), which lets
    //    the replay engine bound how long a bugged run coincides with
    //    a bug-free one — but effects stay strictly guarded by the
    //    bug-set bit, so an untriggered bug never perturbs the run.
    // ------------------------------------------------------------------
    MicroOp *mem_op = memPacket_.valid ? &memPacket_.ops[0] : nullptr;

    // Bug #5 window: an external stall arriving right after the
    // critical word prevents the correcting second write, leaving
    // garbage in the register file. (The window only ever opens when
    // bug #5 is enabled; its first trigger is the window opening.)
    if (bug5_.open) {
        if (out.extStall && bug5_.reg != 0)
            regs_[bug5_.reg] = bug5_.garbage;
        bug5_.open = false;
    }

    if (out.critWord && mem_op && prev.memClass == InstrClass::Load) {
        // Bug #2: the D-refill return latch is not qualified on the
        // I-stall; with a simultaneous I-cache miss in flight the
        // returned word is lost.
        if (prev.irefill != IRefill::Idle) {
            noteBugTrigger(BugId::Bug2RefillLatch);
            if (bugs_.test(
                    static_cast<size_t>(BugId::Bug2RefillLatch)))
                mem_op->valueCorrupt = true;
        }
        // Bug #5: the glitch on Membus-valid exists only when a
        // following load/store sits in the pipe; open the window.
        bool follower_mem =
            (exPacket_.valid &&
             isMemClass(exPacket_.ops[0].d.cls())) ||
            (rdPacket_.valid && isMemClass(rdPacket_.ops[0].d.cls()));
        if (follower_mem) {
            noteBugTrigger(BugId::Bug5MembusGlitch);
            if (bugs_.test(
                    static_cast<size_t>(BugId::Bug5MembusGlitch))) {
                bug5_.open = true;
                bug5_.reg = mem_op->d.rt;
                bug5_.garbage = garbageValue;
            }
        }
    }

    if (out.conflict && mem_op && prev.memClass == InstrClass::Load) {
        // Bug #6: conflict stall with a simultaneous I-stall loads
        // the stale value instead of the just-written one.
        if (out.iStall && pendingStore_.valid) {
            noteBugTrigger(BugId::Bug6StaleConflict);
            if (bugs_.test(
                    static_cast<size_t>(BugId::Bug6StaleConflict))) {
                mem_op->useStale = true;
                mem_op->staleValue = dmem_[mem_op->memAddr / 4];
            }
        }
        // Bug #3: the conflict-stalled load's address register is not
        // held; a following load/store overwrites it.
        if (exPacket_.valid &&
            isMemClass(exPacket_.ops[0].d.cls())) {
            noteBugTrigger(BugId::Bug3ConflictAddr);
            if (bugs_.test(
                    static_cast<size_t>(BugId::Bug3ConflictAddr)))
                mem_op->memAddr = effectiveAddress(exPacket_.ops[0]);
        }
    }

    // Bug #4: the fix-up cycle is not qualified on MemStall; if the
    // stall holds it, the restored instruction registers are lost.
    if (prev.irefill == IRefill::Fixup && out.frozen) {
        noteBugTrigger(BugId::Bug4FixupLost);
        if (bugs_.test(static_cast<size_t>(BugId::Bug4FixupLost)))
            bug4Armed_ = true;
    }

    // Bug #1: during an I-refill, an unqualified memory-controller
    // interface signal lets an overlapping D request corrupt the
    // data returned to the I-cache.
    if (out.iFillBeat && prev.drefill == DRefill::Req) {
        noteBugTrigger(BugId::Bug1IfaceQual);
        if (bugs_.test(static_cast<size_t>(BugId::Bug1IfaceQual)))
            bug1Armed_ = true;
    }

    // ------------------------------------------------------------------
    // 5. Split-store data write (after the bug-6 stale capture), and
    //    capture of a newly completing store's (addr, data). The
    //    capture point matches exactly where the control raises its
    //    storePending bit, so commit can never find the record
    //    missing even if the pipe freezes before the store retires.
    // ------------------------------------------------------------------
    if (out.storeCommit) {
        if (!pendingStore_.valid)
            panic("storeCommit with no pending store data");
        dmem_[pendingStore_.addr / 4] = pendingStore_.data;
        pendingStore_.valid = false;
    }
    bool store_completes =
        mem_op && prev.memClass == InstrClass::Store &&
        (out.storeProbe ||
         (out.critWord && prev.memClass == InstrClass::Store));
    if (store_completes) {
        if (!mem_op->addrValid) {
            mem_op->memAddr = effectiveAddress(*mem_op);
            mem_op->addrValid = true;
        }
        pendingStore_.valid = true;
        pendingStore_.addr = mem_op->memAddr;
        pendingStore_.data = regs_[mem_op->d.rt];
    }

    // ------------------------------------------------------------------
    // 6. Cache arrays and memory-port timing (program mode).
    // ------------------------------------------------------------------
    if (mode_ == CoreMode::Program) {
        if (out.dMissStart && mem_op)
            drefillAddr_ = mem_op->memAddr;
        if (out.dRefillDone) {
            dcacheFill(drefillAddr_);
            // A store that missed writes its line dirty.
            if (pendingStore_.valid &&
                sameLine(pendingStore_.addr, drefillAddr_))
                dcacheMarkDirty(drefillAddr_);
        }
        if (out.storeProbe && mem_op)
            dcacheMarkDirty(mem_op->memAddr);
        if (out.iMissStart)
            irefillPc_ = pc_;
        if (out.iRefillDone)
            icacheFill(irefillPc_);

        // Memory latency: a fresh grant waits memLatency cycles for
        // the first beat; subsequent beats stream back to back.
        bool granted = prev.memPort == MemPort::Free &&
                       next.memPort != MemPort::Free;
        if (granted)
            memWait_ = timing_.memLatency;
        else if (memWait_ > 0)
            --memWait_;

        // Outbox drains one entry every outboxDrainCycles.
        if (outboxOccupancy_ > 0) {
            if (++outboxDrain_ >= timing_.outboxDrainCycles) {
                outboxDrain_ = 0;
                --outboxOccupancy_;
            }
        }
    }

    // ------------------------------------------------------------------
    // 7. Pipeline advance: retire, shift, squash, fetch.
    // ------------------------------------------------------------------
    if (out.advance) {
        // The WB stage never stalls (the PP has no exceptions), so
        // architectural effects land at MEM-exit; wbClass is
        // control-only state tracked by PpControl.
        if (memPacket_.valid)
            retirePacket(memPacket_);
        memPacket_ = exPacket_;
        if (out.branchTaken) {
            // Squash the RD packet and redirect the PC.
            if (mode_ == CoreMode::Program && memPacket_.valid) {
                const DecodedInstr &d = memPacket_.ops[0].d;
                uint32_t target;
                if (d.op == Opcode::J) {
                    target = d.target;
                } else {
                    target = memPacket_.ops[0].pc + 1 +
                             static_cast<uint32_t>(
                                 static_cast<int32_t>(d.imm));
                }
                pc_ = target;
            }
            exPacket_ = Packet{};
            rdPacket_ = Packet{};
        } else {
            exPacket_ = rdPacket_;
            rdPacket_ = out.fetch
                            ? fetchPacket(out.fetchClass, out.fetchCount)
                            : Packet{};
        }
    }

    if (halted_) {
        // HALT retired this cycle: squash everything younger, but an
        // older split store's pending data write must still land.
        if (pendingStore_.valid) {
            dmem_[pendingStore_.addr / 4] = pendingStore_.data;
            pendingStore_.valid = false;
        }
        rdPacket_ = Packet{};
        exPacket_ = Packet{};
        memPacket_ = Packet{};
        bug5_.open = false;
    }

    ++cycles_;
    control_ = next;
    lastOutputs_ = out;
    return !halted_;
}

uint64_t
PpCore::run(uint64_t max_cycles)
{
    if (mode_ != CoreMode::Program)
        fatal("run() is program-mode only; drive vector mode per "
              "cycle");
    uint64_t start = cycles_;
    while (!halted_ && cycles_ - start < max_cycles)
        step();
    return cycles_ - start;
}

bool
PpCore::pipeEmpty() const
{
    // Packets made purely of NOPs are architecturally inert; the
    // vector-mode drain keeps fetching NOPs from the exhausted
    // stream, so they must not count as in-flight work.
    auto inert = [](const Packet &packet) {
        if (!packet.valid)
            return true;
        for (unsigned slot = 0; slot < packet.count; ++slot) {
            if (!packet.ops[slot].d.isNop())
                return false;
        }
        return true;
    };
    return inert(rdPacket_) && inert(exPacket_) && inert(memPacket_) &&
           !pendingStore_.valid && !bug5_.open &&
           control_.irefill == IRefill::Idle &&
           control_.drefill == DRefill::Idle &&
           control_.spill == Spill::Idle &&
           control_.memPort == MemPort::Free;
}

pp::ArchState
PpCore::archState() const
{
    pp::ArchState state;
    state.regs.assign(regs_.begin(), regs_.end());
    state.dmem = dmem_;
    state.outbox = outbox_;
    return state;
}

std::string
PpCore::waveLine() const
{
    const PpOutputs &o = lastOutputs_;
    const char *membus = "    .   ";
    if (o.critWord)
        membus = "CRITWORD";
    else if (o.dFillBeat)
        membus = "fillbeat";
    else if (o.iFillBeat)
        membus = "ifill   ";
    else if (o.wbBeat)
        membus = "wb      ";
    return formatString(
        "cyc=%-6llu membus=%s valid=%d extstall=%d dstall=%d "
        "istall=%d conflict=%d fetch=%d",
        static_cast<unsigned long long>(cycles_), membus,
        o.critWord || o.dFillBeat ? 1 : 0, o.extStall ? 1 : 0,
        o.dStall ? 1 : 0, o.iStall ? 1 : 0, o.conflict ? 1 : 0,
        o.fetch ? 1 : 0);
}

} // namespace archval::rtl

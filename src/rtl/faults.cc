#include "faults.hh"

namespace archval::rtl
{

const char *
bugName(BugId bug)
{
    switch (bug) {
      case BugId::Bug1IfaceQual:
        return "bug1";
      case BugId::Bug2RefillLatch:
        return "bug2";
      case BugId::Bug3ConflictAddr:
        return "bug3";
      case BugId::Bug4FixupLost:
        return "bug4";
      case BugId::Bug5MembusGlitch:
        return "bug5";
      case BugId::Bug6StaleConflict:
        return "bug6";
      default:
        return "?";
    }
}

const char *
bugSummary(BugId bug)
{
    switch (bug) {
      case BugId::Bug1IfaceQual:
        return "Interface miscommunication between PP's cache "
               "controller and the Memory Controller";
      case BugId::Bug2RefillLatch:
        return "Latch not qualified on all stall conditions and lost "
               "data";
      case BugId::Bug3ConflictAddr:
        return "Cache conflict stall can cause wrong address to be "
               "used on the stalled load";
      case BugId::Bug4FixupLost:
        return "I-Stall fix-up cycle lost if I-Stall condition occurs "
               "during Mem-Stall";
      case BugId::Bug5MembusGlitch:
        return "Glitch on bus valid signal allows Z values to be "
               "latched on a load miss followed by a load/store "
               "interrupted by an external stall";
      case BugId::Bug6StaleConflict:
        return "Cache conflict stall with D-Cache hit and "
               "simultaneous I-stall results in stale data being "
               "loaded";
      default:
        return "?";
    }
}

const char *
bugClassName(BugClass cls)
{
    switch (cls) {
      case BugClass::PipelineDatapathOnly:
        return "Pipeline/Datapath ONLY";
      case BugClass::SingleControlLogic:
        return "Single Control Logic";
      case BugClass::MultipleEvent:
        return "Multiple Event";
    }
    return "?";
}

BugClass
bugClassOf(BugId bug)
{
    // All six published PP bugs are interactions between units in
    // corner cases: the "multiple event" class of Table 1.1.
    (void)bug;
    return BugClass::MultipleEvent;
}

} // namespace archval::rtl

#include "pp_fsm_model.hh"

#include <bit>

#include "support/status.hh"

namespace archval::rtl
{

namespace
{

/** Bits needed to hold values 0..max_value. */
size_t
bitsFor(unsigned max_value)
{
    size_t bits = std::bit_width(max_value);
    return bits == 0 ? 1 : bits;
}

} // namespace

PpFsmModel::PpFsmModel(const PpConfig &config) : control_(config)
{
    const size_t count_bits = bitsFor(config.lineWords);
    const size_t align_bits = bitsFor(config.lineWords - 1);
    stateVars_ = {
        {"pipe.rd_class", 3, 0},
        {"pipe.ex_class", 3, 0},
        {"pipe.mem_class", 3, 0},
        {"pipe.wb_class", 3, 0},
        {"pc.align", align_bits, 0},
        {"pipe.ex_done", 1, 1},
        {"pipe.mem_done", 1, 1},
        {"store.pending", 1, 0},
        {"icache.refill", 2, 0},
        {"icache.count", count_bits, 0},
        {"dcache.refill", 2, 0},
        {"dcache.count", count_bits, 0},
        {"spill.state", 2, 0},
        {"spill.count", count_bits, 0},
        {"memctrl.port", 2, 0},
    };
    layout_ = fsm::StateLayout(stateVars_);

    choiceVars_ = {
        {"icache.fetch_class", config.numClasses()},
        {"pipe.dual", config.dualIssue ? 2u : 1u},
        {"icache.hit", 2},
        {"dcache.hit", 2},
        {"dcache.dirty", 2},
        {"dcache.same_line", 2},
        {"inbox.ready", 2},
        {"outbox.ready", 2},
        {"memctrl.reply", 2},
        {"branch.taken", config.modelBranches ? 2u : 1u},
        {"branch.target_align",
         config.modelBranches && config.modelAlignment
             ? config.lineWords
             : 1u},
    };
    if (choiceVars_.size() != numPpChoiceVars)
        panic("choice variable list out of sync with PpChoiceVar");
    codec_ = fsm::ChoiceCodec(choiceVars_);
}

const std::vector<fsm::StateVarInfo> &
PpFsmModel::stateVars() const
{
    return stateVars_;
}

const std::vector<fsm::ChoiceVarInfo> &
PpFsmModel::choiceVars() const
{
    return choiceVars_;
}

BitVec
PpFsmModel::pack(const PpControlState &state) const
{
    BitVec packed(layout_.totalBits());
    layout_.set(packed, 0, static_cast<uint64_t>(state.rdClass));
    layout_.set(packed, 1, static_cast<uint64_t>(state.exClass));
    layout_.set(packed, 2, static_cast<uint64_t>(state.memClass));
    layout_.set(packed, 3, static_cast<uint64_t>(state.wbClass));
    layout_.set(packed, 4, state.fetchAlign);
    layout_.set(packed, 5, state.exDone);
    layout_.set(packed, 6, state.memDone);
    layout_.set(packed, 7, state.storePending);
    layout_.set(packed, 8, static_cast<uint64_t>(state.irefill));
    layout_.set(packed, 9, state.irefillCount);
    layout_.set(packed, 10, static_cast<uint64_t>(state.drefill));
    layout_.set(packed, 11, state.drefillCount);
    layout_.set(packed, 12, static_cast<uint64_t>(state.spill));
    layout_.set(packed, 13, state.spillCount);
    layout_.set(packed, 14, static_cast<uint64_t>(state.memPort));
    return packed;
}

PpControlState
PpFsmModel::unpack(const BitVec &packed) const
{
    PpControlState state;
    state.rdClass =
        static_cast<pp::InstrClass>(layout_.get(packed, 0));
    state.exClass =
        static_cast<pp::InstrClass>(layout_.get(packed, 1));
    state.memClass =
        static_cast<pp::InstrClass>(layout_.get(packed, 2));
    state.wbClass =
        static_cast<pp::InstrClass>(layout_.get(packed, 3));
    state.fetchAlign = static_cast<uint8_t>(layout_.get(packed, 4));
    state.exDone = layout_.get(packed, 5);
    state.memDone = layout_.get(packed, 6);
    state.storePending = layout_.get(packed, 7);
    state.irefill = static_cast<IRefill>(layout_.get(packed, 8));
    state.irefillCount =
        static_cast<uint8_t>(layout_.get(packed, 9));
    state.drefill = static_cast<DRefill>(layout_.get(packed, 10));
    state.drefillCount =
        static_cast<uint8_t>(layout_.get(packed, 11));
    state.spill = static_cast<Spill>(layout_.get(packed, 12));
    state.spillCount = static_cast<uint8_t>(layout_.get(packed, 13));
    state.memPort = static_cast<MemPort>(layout_.get(packed, 14));
    return state;
}

BitVec
PpFsmModel::resetState() const
{
    return pack(PpControl::resetState());
}

std::optional<fsm::Transition>
PpFsmModel::next(const BitVec &state, const fsm::Choice &choice) const
{
    ChoiceInputs inputs(choice);
    PpOutputs outputs;
    PpControlState next_state =
        control_.step(unpack(state), inputs, outputs);
    if (!inputs.canonical())
        return std::nullopt;
    fsm::Transition t;
    t.next = pack(next_state);
    t.instructions = outputs.fetchCount;
    return t;
}

PpOutputs
PpFsmModel::outputsFor(const BitVec &state,
                       const fsm::Choice &choice) const
{
    ChoiceInputs inputs(choice);
    PpOutputs outputs;
    control_.step(unpack(state), inputs, outputs);
    return outputs;
}

fsm::Choice
PpFsmModel::canonicalize(
    const BitVec &state,
    const std::array<uint32_t, numPpChoiceVars> &values) const
{
    // Track which variables the control examines under these values.
    class TrackingInputs : public PpInputs
    {
      public:
        explicit TrackingInputs(
            const std::array<uint32_t, numPpChoiceVars> &values)
            : values_(values)
        {
        }

        uint32_t
        read(PpChoiceVar var) override
        {
            used_[static_cast<size_t>(var)] = true;
            return values_[static_cast<size_t>(var)];
        }

        bool used(size_t index) const { return used_[index]; }

      private:
        const std::array<uint32_t, numPpChoiceVars> &values_;
        std::array<bool, numPpChoiceVars> used_{};
    };

    TrackingInputs inputs(values);
    PpOutputs outputs;
    control_.step(unpack(state), inputs, outputs);

    fsm::Choice choice(numPpChoiceVars, 0);
    for (size_t v = 0; v < numPpChoiceVars; ++v) {
        if (inputs.used(v))
            choice[v] = values[v] % choiceVars_[v].cardinality;
    }
    return choice;
}

namespace
{

/**
 * PpInputs over a partial assignment: bound variables return their
 * value; unbound variables return 0 and are recorded in read order.
 */
class ForkingInputs : public PpInputs
{
  public:
    ForkingInputs(const std::array<int32_t, numPpChoiceVars> &bound)
        : bound_(bound)
    {
    }

    uint32_t
    read(PpChoiceVar var) override
    {
        size_t index = static_cast<size_t>(var);
        if (bound_[index] >= 0)
            return static_cast<uint32_t>(bound_[index]);
        if (!seen_[index]) {
            seen_[index] = true;
            readOrder_[numRead_++] = index;
        }
        return 0;
    }

    /** Unbound variables read during the run, in first-read order. */
    size_t numRead() const { return numRead_; }
    size_t readVar(size_t i) const { return readOrder_[i]; }

  private:
    const std::array<int32_t, numPpChoiceVars> &bound_;
    std::array<bool, numPpChoiceVars> seen_{};
    std::array<size_t, numPpChoiceVars> readOrder_{};
    size_t numRead_ = 0;
};

} // namespace

void
PpFsmModel::forEachTransition(
    const BitVec &state,
    const std::function<void(uint64_t, fsm::Transition &&)> &fn) const
{
    const PpControlState unpacked = unpack(state);

    // Partial assignment: -1 = unbound (reads as 0).
    std::array<int32_t, numPpChoiceVars> bound;
    bound.fill(-1);

    // Each run handles the subspace where all previously-bound
    // variables have their values and every *other* variable the
    // control reads is 0; it then forks each read-but-unbound
    // variable to its non-zero values, with the earlier read vars
    // pinned to 0 — a trie over read order, visiting each canonical
    // tuple exactly once.
    std::function<void()> explore = [&]() {
        ForkingInputs inputs(bound);
        PpOutputs outputs;
        PpControlState next_state =
            control_.step(unpacked, inputs, outputs);

        fsm::Choice choice(numPpChoiceVars, 0);
        for (size_t v = 0; v < numPpChoiceVars; ++v) {
            if (bound[v] >= 0)
                choice[v] = static_cast<uint32_t>(bound[v]);
        }
        fsm::Transition transition;
        transition.next = pack(next_state);
        transition.instructions = outputs.fetchCount;
        fn(codec_.encode(choice), std::move(transition));

        for (size_t i = 0; i < inputs.numRead(); ++i) {
            size_t var = inputs.readVar(i);
            uint32_t cardinality = choiceVars_[var].cardinality;
            for (uint32_t value = 1; value < cardinality; ++value) {
                bound[var] = static_cast<int32_t>(value);
                explore();
            }
            // Pin to 0 for the remaining forks at this level; the
            // caller's value (unbound) is restored afterwards.
            bound[var] = 0;
        }
        for (size_t i = 0; i < inputs.numRead(); ++i)
            bound[inputs.readVar(i)] = -1;
    };

    explore();
}

} // namespace archval::rtl

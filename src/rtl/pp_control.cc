#include "pp_control.hh"

#include "support/status.hh"
#include "support/strings.hh"

namespace archval::rtl
{

namespace
{

using pp::InstrClass;

bool
isMem(InstrClass cls)
{
    return cls == InstrClass::Load || cls == InstrClass::Store;
}

bool
isComm(InstrClass cls)
{
    return cls == InstrClass::Switch || cls == InstrClass::Send;
}

/** Map a FetchClass choice value (0-based) to an instruction class. */
InstrClass
classFromChoice(uint32_t value)
{
    switch (value) {
      case 0:
        return InstrClass::Alu;
      case 1:
        return InstrClass::Load;
      case 2:
        return InstrClass::Store;
      case 3:
        return InstrClass::Switch;
      case 4:
        return InstrClass::Send;
      case 5:
        return InstrClass::Branch;
      default:
        panic("bad fetch class choice");
    }
}

} // namespace

const char *
ppChoiceVarName(PpChoiceVar var)
{
    switch (var) {
      case PpChoiceVar::FetchClass:
        return "fetch_class";
      case PpChoiceVar::Dual:
        return "dual";
      case PpChoiceVar::IHit:
        return "ihit";
      case PpChoiceVar::DHit:
        return "dhit";
      case PpChoiceVar::Dirty:
        return "dirty";
      case PpChoiceVar::SameLine:
        return "same_line";
      case PpChoiceVar::InboxReady:
        return "inbox_ready";
      case PpChoiceVar::OutboxReady:
        return "outbox_ready";
      case PpChoiceVar::MemReply:
        return "mem_reply";
      case PpChoiceVar::BranchTaken:
        return "branch_taken";
      case PpChoiceVar::TargetAlign:
        return "target_align";
      default:
        return "?";
    }
}

std::string
PpControlState::toString() const
{
    static const char *irefill_names[] = {"Idle", "Req", "Fill", "Fixup"};
    static const char *drefill_names[] = {"Idle", "Req", "CritWait",
                                          "Fill"};
    static const char *spill_names[] = {"Idle", "Hold", "WbReq", "Wb"};
    static const char *port_names[] = {"Free", "BusyD", "BusyI",
                                       "BusyWb"};
    return formatString(
        "pipe[%s/%s/%s/%s] align=%u exDone=%d memDone=%d stPend=%d "
        "iref=%s/%u dref=%s/%u spill=%s/%u port=%s",
        pp::instrClassName(rdClass), pp::instrClassName(exClass),
        pp::instrClassName(memClass), pp::instrClassName(wbClass),
        fetchAlign, exDone, memDone, storePending,
        irefill_names[static_cast<int>(irefill)], irefillCount,
        drefill_names[static_cast<int>(drefill)], drefillCount,
        spill_names[static_cast<int>(spill)], spillCount,
        port_names[static_cast<int>(memPort)]);
}

PpControlState
PpControl::step(const PpControlState &state, PpInputs &in,
                PpOutputs &out) const
{
    const unsigned line_words = config_.lineWords;
    auto mutated = [&](MutationId m) {
        return config_.mutations.test(static_cast<size_t>(m));
    };
    PpControlState next = state;
    out = PpOutputs{};

    // ------------------------------------------------------------------
    // EX stage: SWITCH and SEND handshake with the Inbox / Outbox.
    // ------------------------------------------------------------------
    if (!state.exDone) {
        if (state.exClass == InstrClass::Switch) {
            if (in.read(PpChoiceVar::InboxReady)) {
                next.exDone = true;
                out.inboxPop = true;
            }
        } else if (state.exClass == InstrClass::Send) {
            if (in.read(PpChoiceVar::OutboxReady)) {
                next.exDone = true;
                out.outboxPush = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // MEM stage: split-store conflict check and D-cache tag probe.
    // ------------------------------------------------------------------
    bool probed = false;
    if (isMem(state.memClass) && !state.memDone) {
        if (state.drefill != DRefill::Idle) {
            // Cache busy with a refill (possibly our own): wait. The
            // critical-word-first restart below will complete us if
            // the refill is ours.
        } else if (state.storePending &&
                   ((state.memClass == InstrClass::Store &&
                     !mutated(MutationId::ConflictIgnoresStore)) ||
                    (state.memClass == InstrClass::Load &&
                     !mutated(MutationId::ConflictDropsLoadCheck) &&
                     in.read(PpChoiceVar::SameLine)))) {
            // Cache conflict stall: the split store's data write must
            // drain before this access may proceed.
            out.conflict = true;
            out.storeCommit = true;
            next.storePending = false;
        } else {
            probed = true;
            out.probe = true;
            if (in.read(PpChoiceVar::DHit)) {
                next.memDone = true;
                if (state.memClass == InstrClass::Store) {
                    // Split store: tag probe now, data write later.
                    next.storePending = true;
                    out.storeProbe = true;
                } else {
                    out.loadHit = true;
                }
            } else if (in.read(PpChoiceVar::Dirty)) {
                if (state.spill != Spill::Idle &&
                    !mutated(MutationId::SpillOverrun)) {
                    // Fill-before-spill resource hazard: the spill
                    // buffer still holds the previous victim.
                    out.spillBlocked = true;
                } else {
                    next.spill = Spill::Hold;
                    out.spillCopy = true;
                    next.drefill = DRefill::Req;
                    out.dMissStart = true;
                }
            } else {
                next.drefill = DRefill::Req;
                out.dMissStart = true;
            }
        }
    }

    // Background completion of the split store's data write: happens
    // when nothing else used the cache data port this cycle.
    if (state.storePending && !out.conflict &&
        (!probed || mutated(MutationId::CommitIgnoresProbe)) &&
        state.drefill == DRefill::Idle) {
        next.storePending = false;
        out.storeCommit = true;
    }

    // ------------------------------------------------------------------
    // Memory-controller port arbitration and refill/writeback FSMs.
    // Priority: D-refill > I-refill > spill writeback (fill before
    // spill). Grants are based on start-of-cycle state, one per cycle.
    // ------------------------------------------------------------------
    const bool port_free = state.memPort == MemPort::Free;

    // D-cache refill FSM.
    if (state.drefill == DRefill::Req) {
        if (port_free) {
            next.memPort = MemPort::BusyD;
            next.drefill = DRefill::CritWait;
        }
    } else if (state.drefill == DRefill::CritWait) {
        if (in.read(PpChoiceVar::MemReply)) {
            // Critical word first: the stalled access completes now.
            out.critWord = true;
            next.memDone = true;
            if (state.memClass == InstrClass::Store)
                next.storePending = true;
            if (line_words > 1) {
                next.drefill = DRefill::Fill;
                next.drefillCount =
                    static_cast<uint8_t>(line_words - 1);
            } else {
                next.drefill = DRefill::Idle;
                next.memPort = MemPort::Free;
                out.dRefillDone = true;
            }
        }
    } else if (state.drefill == DRefill::Fill) {
        if (in.read(PpChoiceVar::MemReply)) {
            out.dFillBeat = true;
            --next.drefillCount;
            if (next.drefillCount == 0) {
                next.drefill = DRefill::Idle;
                next.memPort = MemPort::Free;
                out.dRefillDone = true;
            }
        }
    }

    // I-cache refill FSM (Fixup handled below, after stall derivation).
    if (state.irefill == IRefill::Req) {
        if (port_free &&
            (state.drefill != DRefill::Req ||
             mutated(MutationId::PortPriorityDropped))) {
            next.memPort = MemPort::BusyI;
            next.irefill = IRefill::Fill;
            next.irefillCount = static_cast<uint8_t>(line_words);
        }
    } else if (state.irefill == IRefill::Fill) {
        if (in.read(PpChoiceVar::MemReply)) {
            out.iFillBeat = true;
            --next.irefillCount;
            if (next.irefillCount == 0) {
                next.irefill = IRefill::Fixup;
                next.memPort = MemPort::Free;
                out.iRefillDone = true;
            }
        }
    }

    // Spill-buffer FSM.
    if (state.spill == Spill::Hold) {
        // Fill before spill: the displacing refill completes first.
        if (state.drefill == DRefill::Idle)
            next.spill = Spill::WbReq;
    } else if (state.spill == Spill::WbReq) {
        if (port_free && state.drefill != DRefill::Req &&
            state.irefill != IRefill::Req) {
            next.memPort = MemPort::BusyWb;
            next.spill = Spill::Wb;
            next.spillCount = static_cast<uint8_t>(line_words);
        }
    } else if (state.spill == Spill::Wb) {
        if (in.read(PpChoiceVar::MemReply)) {
            out.wbBeat = true;
            --next.spillCount;
            if (next.spillCount == 0) {
                next.spill = Spill::Idle;
                next.memPort = MemPort::Free;
                out.wbDone = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Stall machine.
    // ------------------------------------------------------------------
    out.dStall = isMem(state.memClass) && !next.memDone;
    out.extStall = isComm(state.exClass) && !next.exDone;
    out.frozen = out.dStall || out.extStall;

    // I-refill fix-up cycle: restores the instruction registers after
    // the I-stall. It is qualified on the pipe being un-frozen — the
    // mechanism whose *missing* qualification was PP bug #4.
    if (state.irefill == IRefill::Fixup &&
        (!out.frozen || mutated(MutationId::FixupUnqualified))) {
        next.irefill = IRefill::Idle;
        out.fixup = true;
    }

    // ------------------------------------------------------------------
    // Fetch and pipeline advance.
    // ------------------------------------------------------------------
    if (!out.frozen) {
        bool squash = false;
        if (config_.modelBranches &&
            state.exClass == InstrClass::Branch) {
            // Squashing branch resolves as it leaves EX; taken
            // branches squash the younger stages and suppress the
            // fetch (redirect cycle).
            if (in.read(PpChoiceVar::BranchTaken)) {
                squash = true;
                out.branchTaken = true;
            }
        }

        InstrClass fetched = InstrClass::None;
        if (!squash) {
            if (state.irefill == IRefill::Idle &&
                next.irefill == IRefill::Idle) {
                if (in.read(PpChoiceVar::IHit)) {
                    fetched = classFromChoice(
                        in.read(PpChoiceVar::FetchClass));
                    out.fetch = true;
                    out.fetchClass = fetched;
                    out.fetchCount = 1;
                    // Dual issue cannot pair across an I-cache line
                    // boundary; at the last slot of a line the
                    // second-slot choice is not even examined.
                    bool pair_ok =
                        !config_.modelAlignment ||
                        static_cast<unsigned>(state.fetchAlign) + 1 <
                            config_.lineWords;
                    if (config_.dualIssue && pair_ok)
                        out.fetchCount +=
                            in.read(PpChoiceVar::Dual);
                } else {
                    next.irefill = IRefill::Req;
                    out.iMissStart = true;
                }
            }
        }
        out.iStall = !out.fetch && !squash;

        out.advance = true;
        if (config_.modelWbStage)
            next.wbClass = state.memClass;
        next.memClass = state.exClass;
        next.memDone = !isMem(state.exClass);
        next.exClass = squash ? InstrClass::None : state.rdClass;
        next.exDone = !isComm(next.exClass);
        next.rdClass = fetched;

        if (config_.modelAlignment) {
            if (squash) {
                // The redirect lands at the target's alignment — an
                // abstract-PC choice.
                next.fetchAlign = static_cast<uint8_t>(
                    in.read(PpChoiceVar::TargetAlign));
            } else if (out.fetch) {
                next.fetchAlign = static_cast<uint8_t>(
                    (state.fetchAlign + out.fetchCount) %
                    config_.lineWords);
            }
        }
    } else {
        out.iStall = state.irefill != IRefill::Idle;
    }

    return next;
}

} // namespace archval::rtl

/**
 * @file
 * Control logic of the Protocol Processor — the single definition
 * shared by the cycle-accurate RTL model and the FSM model.
 *
 * The paper derives its FSM model directly from the implementation
 * Verilog so that "bugs in the design are modeled and can be
 * exposed". This library gets the same property by construction: the
 * pure next-state function below *is* the implementation control, and
 * the FSM model (PpFsmModel) simply drives it with nondeterministic
 * abstract inputs while the RTL model (PpCore) drives it with real
 * (or forced) signals.
 *
 * The modeled network matches Figure 3.2: pipeline instruction
 * registers holding abstract instruction classes, the I-cache refill
 * FSM (with its post-stall fix-up cycle), the D-cache refill FSM with
 * critical-word-first restart, the fill-before-spill FSM with its
 * spill buffer, the split-store/cache-conflict FSM, the stall
 * machine, and the single shared memory-controller port.
 */

#ifndef ARCHVAL_RTL_PP_CONTROL_HH
#define ARCHVAL_RTL_PP_CONTROL_HH

#include <cstdint>
#include <string>

#include "pp/isa.hh"
#include "rtl/pp_config.hh"

namespace archval::rtl
{

/** I-cache refill FSM states. */
enum class IRefill : uint8_t
{
    Idle = 0, ///< fetching normally
    Req,      ///< miss taken; requesting the memory port
    Fill,     ///< receiving line words from memory
    Fixup,    ///< restoring instruction registers after the stall
};

/** D-cache refill FSM states. */
enum class DRefill : uint8_t
{
    Idle = 0, ///< no refill in progress
    Req,      ///< miss taken; requesting the memory port
    CritWait, ///< waiting for the critical (missed-on) word
    Fill,     ///< critical word delivered; filling the rest of line
};

/** Fill-before-spill FSM states. */
enum class Spill : uint8_t
{
    Idle = 0, ///< spill buffer empty
    Hold,     ///< dirty victim parked in the spill buffer
    WbReq,    ///< refill done; requesting the port for writeback
    Wb,       ///< writing the spill buffer back to memory
};

/** Memory-controller port owner. */
enum class MemPort : uint8_t
{
    Free = 0,
    BusyD,  ///< D-cache refill
    BusyI,  ///< I-cache refill
    BusyWb, ///< spill-buffer writeback
};

/**
 * Latched control state. This is exactly the state the enumerator
 * packs into its state vectors; every field is architectural to the
 * control (no hidden RTL state feeds back into it).
 */
struct PpControlState
{
    pp::InstrClass rdClass = pp::InstrClass::None;  ///< RD stage
    pp::InstrClass exClass = pp::InstrClass::None;  ///< EX stage
    pp::InstrClass memClass = pp::InstrClass::None; ///< MEM stage
    pp::InstrClass wbClass = pp::InstrClass::None;  ///< WB stage
                                                    ///< (optional)
    uint8_t fetchAlign = 0; ///< PC offset within the I-cache line
                            ///< (optional; 0 when not modeled)
    bool exDone = true;   ///< EX-stage op finished its EX work
    bool memDone = true;  ///< MEM-stage op finished its access
    bool storePending = false; ///< split store's data write pending
    IRefill irefill = IRefill::Idle;
    uint8_t irefillCount = 0; ///< words left in the I-refill
    DRefill drefill = DRefill::Idle;
    uint8_t drefillCount = 0; ///< words left after the critical one
    Spill spill = Spill::Idle;
    uint8_t spillCount = 0; ///< words left in the writeback
    MemPort memPort = MemPort::Free;

    bool operator==(const PpControlState &other) const = default;

    /** @return compact rendering for debug and edge dumps. */
    std::string toString() const;
};

/** Identifiers of the abstract (choice) inputs to the control. */
enum class PpChoiceVar : uint8_t
{
    FetchClass = 0, ///< class of the instruction being fetched
    Dual,           ///< second (control-neutral) ALU op in the packet
    IHit,           ///< I-cache tag probe outcome
    DHit,           ///< D-cache tag probe outcome
    Dirty,          ///< victim line dirty (spill needed) on a D-miss
    SameLine,       ///< load address matches the pending store's line
    InboxReady,     ///< Inbox can service a SWITCH
    OutboxReady,    ///< Outbox can accept a SEND
    MemReply,       ///< memory returns a word beat this cycle
    BranchTaken,    ///< EX-stage branch resolves taken (extension)
    TargetAlign,    ///< taken-branch target alignment in its line
    NumVars,
};

/** Number of abstract input variables. */
constexpr size_t numPpChoiceVars =
    static_cast<size_t>(PpChoiceVar::NumVars);

/** @return printable name of a choice variable. */
const char *ppChoiceVarName(PpChoiceVar var);

/**
 * Source of the control's abstract inputs.
 *
 * The control reads an input only in cycles where it is relevant;
 * read() must record which variables were consumed so the FSM model
 * can reject non-canonical choice tuples (unconsumed variables must
 * be zero) — this implements the paper's constrained abstract blocks.
 */
class PpInputs
{
  public:
    virtual ~PpInputs() = default;

    /** @return the value of @p var this cycle (and mark it used). */
    virtual uint32_t read(PpChoiceVar var) = 0;
};

/** Per-cycle control outputs consumed by the datapath (RTL model). */
struct PpOutputs
{
    bool fetch = false;          ///< a packet enters RD this cycle
    pp::InstrClass fetchClass = pp::InstrClass::None;
    unsigned fetchCount = 0;     ///< instructions in the packet (0-2)
    bool iMissStart = false;     ///< fetch missed; I-refill begins

    bool frozen = false;   ///< pipe held this cycle
    bool dStall = false;   ///< MEM-stage op unfinished
    bool extStall = false; ///< SWITCH/SEND waiting on Inbox/Outbox
    bool iStall = false;   ///< fetch unavailable this cycle

    bool probe = false;        ///< D-cache tag probe performed
    bool loadHit = false;      ///< probe was a load hit
    bool storeProbe = false;   ///< probe was a store hit (split store)
    bool storeCommit = false;  ///< pending store data written
    bool conflict = false;     ///< conflict stall taken this cycle
    bool dMissStart = false;   ///< probe missed; D-refill begins
    bool spillCopy = false;    ///< victim copied to the spill buffer
    bool spillBlocked = false; ///< miss blocked on a busy spill buffer
    bool critWord = false;     ///< critical word delivered (restart)
    bool dFillBeat = false;    ///< non-critical refill word accepted
    bool dRefillDone = false;  ///< last refill word accepted
    bool iFillBeat = false;    ///< I-refill word accepted
    bool iRefillDone = false;  ///< last I-refill word accepted
    bool fixup = false;        ///< I-refill fix-up cycle completes
    bool wbBeat = false;       ///< writeback beat sent to memory
    bool wbDone = false;       ///< writeback finished

    bool inboxPop = false;   ///< SWITCH consumed an Inbox word
    bool outboxPush = false; ///< SEND delivered a word to the Outbox
    bool branchTaken = false; ///< EX branch squashes younger stages
    bool advance = false;     ///< pipeline registers shifted
};

/**
 * The pure synchronous next-state function of the PP control.
 *
 * Deterministic given (state, inputs); reads inputs only when they
 * are relevant in the current state.
 */
class PpControl
{
  public:
    /** @param config Model parameters (line length, feature flags). */
    explicit PpControl(const PpConfig &config) : config_(config) {}

    /** @return the reset control state. */
    static PpControlState resetState() { return PpControlState{}; }

    /**
     * Advance one clock.
     *
     * @param state Current latched state.
     * @param inputs Abstract input source for this cycle.
     * @param[out] outputs Derived control outputs for the datapath.
     * @return the next latched state.
     */
    PpControlState step(const PpControlState &state, PpInputs &inputs,
                        PpOutputs &outputs) const;

    /** @return the configuration. */
    const PpConfig &config() const { return config_; }

  private:
    PpConfig config_;
};

} // namespace archval::rtl

#endif // ARCHVAL_RTL_PP_CONTROL_HH

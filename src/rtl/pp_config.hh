/**
 * @file
 * Configuration shared by the PP control logic, the cycle-accurate
 * RTL model, and the FSM model derived from them.
 */

#ifndef ARCHVAL_RTL_PP_CONFIG_HH
#define ARCHVAL_RTL_PP_CONFIG_HH

#include "pp/ref_sim.hh"
#include "rtl/mutations.hh"

namespace archval::rtl
{

/** Parameters of the Protocol Processor model. */
struct PpConfig
{
    /** Enabled control-logic mutations (single-control-logic bugs;
     *  shared by the FSM model and the RTL core, so the model is
     *  always derived from the same — possibly buggy — control). */
    MutationSet mutations;

    /** Words per cache line; each refill/writeback moves this many
     *  memory-reply beats. Larger lines deepen the refill counters
     *  and grow the control state space (bench_enum_scaling). */
    unsigned lineWords = 4;

    /** Model dual-issue fetch packets (a second, control-neutral ALU
     *  op may ride along; affects only instruction accounting). */
    bool dualIssue = true;

    /** Model squashing branches (the paper's announced extension;
     *  adds the Branch instruction class and the taken/not-taken
     *  abstract choice). */
    bool modelBranches = false;

    /** Track the abstract instruction class through the WB stage
     *  (the paper models the pipeline registers of every stage). */
    bool modelWbStage = false;

    /** Track fetch alignment within the I-cache line: dual issue
     *  cannot pair across a line boundary, and a taken branch lands
     *  at a nondeterministic target alignment. */
    bool modelAlignment = false;

    /** Data/instruction memory parameters for the RTL model. */
    pp::MachineConfig machine;

    /** Real D-cache geometry in the RTL model (2-way in the PP). */
    unsigned dcacheSets = 8;
    unsigned dcacheWays = 2;

    /** Real I-cache geometry in the RTL model (direct mapped). */
    unsigned icacheSets = 16;

    /** @return number of program-visible instruction classes. */
    unsigned
    numClasses() const
    {
        return modelBranches ? 6 : 5;
    }

    /** Preset tuned for fast unit tests (minimal counters). */
    static PpConfig smallPreset();

    /** Preset used for the paper-scale enumeration (Table 3.2). */
    static PpConfig fullPreset();
};

} // namespace archval::rtl

#endif // ARCHVAL_RTL_PP_CONFIG_HH

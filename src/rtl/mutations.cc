#include "mutations.hh"

namespace archval::rtl
{

const char *
mutationName(MutationId mutation)
{
    switch (mutation) {
      case MutationId::CommitIgnoresProbe:
        return "m1_commit_probe";
      case MutationId::ConflictDropsLoadCheck:
        return "m2_conflict_load";
      case MutationId::ConflictIgnoresStore:
        return "m3_conflict_store";
      case MutationId::PortPriorityDropped:
        return "m4_port_priority";
      case MutationId::FixupUnqualified:
        return "m5_fixup_unqual";
      case MutationId::SpillOverrun:
        return "m6_spill_overrun";
      default:
        return "?";
    }
}

const char *
mutationSummary(MutationId mutation)
{
    switch (mutation) {
      case MutationId::CommitIgnoresProbe:
        return "split-store data write not qualified on 'no probe "
               "this cycle'";
      case MutationId::ConflictDropsLoadCheck:
        return "loads never conflict-check against the pending "
               "store";
      case MutationId::ConflictIgnoresStore:
        return "back-to-back stores no longer drain the first "
               "store's data write";
      case MutationId::PortPriorityDropped:
        return "memory-port arbiter loses the D-refill-first "
               "priority";
      case MutationId::FixupUnqualified:
        return "I-refill fix-up cycle not qualified on the frozen "
               "pipe";
      case MutationId::SpillOverrun:
        return "dirty miss starts its refill over an occupied spill "
               "buffer";
      default:
        return "?";
    }
}

bool
mutationDataVisible(MutationId mutation)
{
    switch (mutation) {
      case MutationId::ConflictDropsLoadCheck:
      case MutationId::ConflictIgnoresStore:
        return true;
      case MutationId::SpillOverrun:
        // Restarting the spill FSM over an in-flight writeback
        // wedges the memory port: later accesses never complete, so
        // their effects are missing from the final state — result
        // comparison catches the hang.
        return true;
      case MutationId::CommitIgnoresProbe:
      case MutationId::PortPriorityDropped:
      case MutationId::FixupUnqualified:
        // Timing-only under this model's data substitutions (see
        // DESIGN.md): result comparison cannot see them, exactly the
        // Section 4 caveat about performance bugs.
        return false;
      default:
        return false;
    }
}

} // namespace archval::rtl

#include "pp_config.hh"

namespace archval::rtl
{

PpConfig
PpConfig::smallPreset()
{
    PpConfig config;
    config.lineWords = 2;
    config.dualIssue = false;
    config.modelBranches = false;
    config.machine.dmemWords = 256;
    config.dcacheSets = 4;
    config.dcacheWays = 2;
    config.icacheSets = 4;
    return config;
}

PpConfig
PpConfig::fullPreset()
{
    PpConfig config;
    config.lineWords = 4;
    config.dualIssue = true;
    config.modelBranches = true;
    config.modelWbStage = true;
    config.modelAlignment = true;
    config.machine.dmemWords = 4096;
    config.dcacheSets = 8;
    config.dcacheWays = 2;
    config.icacheSets = 16;
    return config;
}

} // namespace archval::rtl

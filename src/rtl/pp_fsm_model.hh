/**
 * @file
 * FSM model of the PP control — the output of the paper's "HDL to
 * FSM translator" step for the Protocol Processor (Figure 3.2).
 *
 * Wraps the shared PpControl next-state function as an fsm::Model:
 * the abstract datapath and interface units (PC, caches, pipeline
 * registers, Inbox, Outbox, memory controller) become
 * nondeterministic choice variables, and the model rejects
 * non-canonical choice tuples (a variable that the control did not
 * examine this cycle must be zero), which both prunes the search and
 * implements the paper's "constraining the abstract models".
 */

#ifndef ARCHVAL_RTL_PP_FSM_MODEL_HH
#define ARCHVAL_RTL_PP_FSM_MODEL_HH

#include <array>

#include "fsm/model.hh"
#include "rtl/pp_control.hh"

namespace archval::rtl
{

/**
 * PpInputs implementation that reads values from a choice tuple and
 * records which variables were consumed.
 */
class ChoiceInputs : public PpInputs
{
  public:
    /** @param choice One value per PpChoiceVar, in enum order. */
    explicit ChoiceInputs(const fsm::Choice &choice) : choice_(choice) {}

    uint32_t
    read(PpChoiceVar var) override
    {
        size_t index = static_cast<size_t>(var);
        used_[index] = true;
        return choice_[index];
    }

    /** @return true when every non-zero component was consumed. */
    bool
    canonical() const
    {
        for (size_t i = 0; i < numPpChoiceVars; ++i) {
            if (!used_[i] && choice_[i] != 0)
                return false;
        }
        return true;
    }

  private:
    const fsm::Choice &choice_;
    std::array<bool, numPpChoiceVars> used_{};
};

/**
 * PpInputs implementation over concrete signal values (used by the
 * RTL model and by the vector player, where values come from real
 * wires or from force/release commands).
 */
class SignalInputs : public PpInputs
{
  public:
    /** Set the value of @p var for this cycle. */
    void
    set(PpChoiceVar var, uint32_t value)
    {
        values_[static_cast<size_t>(var)] = value;
    }

    uint32_t
    read(PpChoiceVar var) override
    {
        return values_[static_cast<size_t>(var)];
    }

  private:
    std::array<uint32_t, numPpChoiceVars> values_{};
};

/**
 * The PP control as an enumerable synchronous model.
 */
class PpFsmModel : public fsm::Model
{
  public:
    /** @param config PP parameters (shared with the RTL model). */
    explicit PpFsmModel(const PpConfig &config);

    std::string name() const override { return "pp_control"; }
    const std::vector<fsm::StateVarInfo> &stateVars() const override;
    const std::vector<fsm::ChoiceVarInfo> &choiceVars() const override;
    BitVec resetState() const override;
    std::optional<fsm::Transition>
    next(const BitVec &state, const fsm::Choice &choice) const override;

    /**
     * Sparse transition generator: explores only canonical choice
     * tuples by forking on the first input the control reads that is
     * not yet bound, instead of filtering the full cartesian
     * product. Identical results to the default, hundreds of times
     * faster on this model.
     */
    void forEachTransition(
        const BitVec &state,
        const std::function<void(uint64_t, fsm::Transition &&)> &fn)
        const override;

    /** Pack a control state into the enumerator's bit vector. */
    BitVec pack(const PpControlState &state) const;

    /** Unpack an enumerator bit vector into a control state. */
    PpControlState unpack(const BitVec &packed) const;

    /** Re-run the control for (state, choice) to recover the cycle's
     *  outputs (used by the vector generator). */
    PpOutputs outputsFor(const BitVec &state,
                         const fsm::Choice &choice) const;

    /**
     * Canonicalize arbitrary per-variable values into a legal choice
     * tuple for @p state: runs the control once and zeroes every
     * variable it did not examine. The result is always accepted by
     * next(). Used by the biased-random stimulus baseline, which
     * samples realistic event probabilities without knowing which
     * inputs matter in a given state.
     */
    fsm::Choice canonicalize(const BitVec &state,
                             const std::array<uint32_t,
                                              numPpChoiceVars> &values)
        const;

    /** @return the configuration. */
    const PpConfig &config() const { return control_.config(); }

  private:
    PpControl control_;
    std::vector<fsm::StateVarInfo> stateVars_;
    std::vector<fsm::ChoiceVarInfo> choiceVars_;
    fsm::StateLayout layout_;
    fsm::ChoiceCodec codec_;
};

} // namespace archval::rtl

#endif // ARCHVAL_RTL_PP_FSM_MODEL_HH

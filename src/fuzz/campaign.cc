#include "campaign.hh"

#include <optional>
#include <thread>

#include "support/status.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

namespace archval::fuzz
{

CampaignRunner::CampaignRunner(const rtl::PpConfig &config,
                               const rtl::PpFsmModel &model,
                               const graph::StateGraph &graph,
                               CampaignOptions options,
                               FuzzOptions fuzz_options)
    : config_(config), model_(model), graph_(graph),
      options_(options), fuzzOptions_(fuzz_options)
{
    if (options_.workers == 0)
        fatal("CampaignRunner needs at least one worker");
}

uint64_t
CampaignRunner::workerSeed(unsigned worker) const
{
    // splitmix64 of (seed, worker): decorrelates the per-worker RNG
    // streams while staying a pure function of the pair.
    uint64_t z = options_.seed + 0x9e3779b97f4a7c15ull * (worker + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

CampaignResult
CampaignRunner::run(const rtl::BugSet &bugs,
                    const std::vector<graph::Trace> &seed_tours)
{
    const unsigned workers = options_.workers;

    std::vector<std::unique_ptr<FuzzEngine>> engines;
    engines.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        engines.push_back(std::make_unique<FuzzEngine>(
            config_, model_, graph_, workerSeed(w), fuzzOptions_));
        // Disjoint seed-evaluation shards; every corpus holds all of
        // its own seeds for mutation.
        engines.back()->seedCorpus(seed_tours, w, workers);
    }

    // Replay arm: concretize every worker's pending seeds (a pure
    // function of the candidates) and batch-replay them through the
    // checkpointed engine; the workers then consume the primed
    // results instead of re-simulating, bit-identically.
    {
        std::vector<vecgen::TestTrace> seed_traces;
        std::vector<size_t> counts(workers, 0);
        for (unsigned w = 0; w < workers; ++w) {
            for (const Candidate &seed :
                 engines[w]->pendingSeedCandidates()) {
                vecgen::VectorGenerator generator(model_,
                                                  seed.vecgenSeed);
                seed_traces.push_back(
                    generator.generate(graph_, seed.trace));
                ++counts[w];
            }
        }
        if (!seed_traces.empty()) {
            harness::ReplayOptions replay = options_.replay;
            if (replay.numThreads == 0)
                replay.numThreads = workers;
            if (!replay.cancelFlag)
                replay.cancelFlag = options_.cancelFlag;
            harness::ReplayEngine replayer(config_, replay);
            std::vector<harness::PlayResult> plays =
                replayer.playAll(seed_traces, bugs);
            size_t at = 0;
            for (unsigned w = 0; w < workers; ++w) {
                engines[w]->primePendingSeedResults(
                    std::vector<harness::PlayResult>(
                        plays.begin() + static_cast<long>(at),
                        plays.begin() +
                            static_cast<long>(at + counts[w])));
                at += counts[w];
            }
        }
    }

    CampaignResult result;
    uint64_t instructions_before = 0;
    uint64_t cycles_before = 0;

    for (unsigned round = 0; round < options_.maxRounds; ++round) {
        if (options_.cancelFlag &&
            options_.cancelFlag->load(std::memory_order_relaxed)) {
            result.cancelled = true;
            break;
        }
        telemetry::ScopedSpan round_span("fuzz.round", "round", round,
                                         "workers", workers);
        std::vector<uint64_t> instr_at_start(workers);
        std::vector<uint64_t> cycles_at_start(workers);
        std::vector<FuzzDetection> outcomes(workers);

        // Workers touch only their private engine during a round;
        // the model/graph are shared read-only. Results are merged
        // at the barrier in worker-index order, so thread scheduling
        // cannot leak into any reported value.
        std::vector<std::thread> threads;
        threads.reserve(workers);
        const uint64_t job_id = telemetry::currentJobId();
        for (unsigned w = 0; w < workers; ++w) {
            instr_at_start[w] = engines[w]->stats().instructions;
            cycles_at_start[w] = engines[w]->stats().cycles;
            threads.emplace_back([&, w, job_id] {
                telemetry::JobScope job_scope(job_id);
                if (telemetry::tracingEnabled()) {
                    telemetry::setThreadName(
                        formatString("fuzz.worker.%u", w));
                }
                outcomes[w] = engines[w]->run(
                    bugs, options_.roundInstructions);
            });
        }
        for (std::thread &t : threads)
            t.join();

        // Resolve detections deterministically: lowest worker index
        // wins; latency charges all lower-indexed workers' full
        // round spend plus the winner's spend at detection.
        std::optional<unsigned> winner;
        for (unsigned w = 0; w < workers; ++w) {
            if (outcomes[w].detected) {
                winner = w;
                break;
            }
        }
        if (winner) {
            unsigned w = *winner;
            result.detected = true;
            result.detectionRound = round;
            result.detectionWorker = w;
            result.detail = formatString(
                "round %u worker %u: %s", round, w,
                outcomes[w].detail.c_str());
            result.instructions = instructions_before;
            result.cycles = cycles_before;
            for (unsigned v = 0; v < w; ++v) {
                result.instructions += engines[v]->stats().instructions -
                                       instr_at_start[v];
                result.cycles +=
                    engines[v]->stats().cycles - cycles_at_start[v];
            }
            result.instructions +=
                outcomes[w].instructions - instr_at_start[w];
            result.cycles += outcomes[w].cycles - cycles_at_start[w];
            break;
        }

        // Barrier merge, worker-index order: coverage, hash sets,
        // then corpus broadcast.
        harness::CoverageTracker merged(graph_);
        std::unordered_set<uint64_t> hashes;
        for (unsigned w = 0; w < workers; ++w) {
            merged.merge(engines[w]->coverage());
            hashes.insert(engines[w]->seenHashes().begin(),
                          engines[w]->seenHashes().end());
        }
        std::vector<std::vector<CorpusEntry>> adds(workers);
        for (unsigned w = 0; w < workers; ++w)
            adds[w] = engines[w]->takeRoundAdds();
        for (unsigned w = 0; w < workers; ++w) {
            engines[w]->mergeCoverage(merged);
            engines[w]->mergeSeenHashes(hashes);
            for (unsigned v = 0; v < workers; ++v) {
                if (v != w)
                    engines[w]->adoptEntries(adds[v]);
            }
        }

        instructions_before = 0;
        cycles_before = 0;
        for (unsigned w = 0; w < workers; ++w) {
            instructions_before += engines[w]->stats().instructions;
            cycles_before += engines[w]->stats().cycles;
        }
    }

    // Whole-campaign accounting and merged coverage (independent of
    // whether/when a detection ended the campaign).
    harness::CoverageTracker final_coverage(graph_);
    for (unsigned w = 0; w < workers; ++w) {
        result.totalInstructions += engines[w]->stats().instructions;
        result.totalCycles += engines[w]->stats().cycles;
        result.iterations += engines[w]->stats().iterations;
        final_coverage.merge(engines[w]->coverage());
    }
    result.coveredEdges = final_coverage.coveredEdges();
    result.coverageFraction = final_coverage.fraction();
    result.corpusSize = engines[0]->corpus().size();
    if (!result.detected) {
        result.instructions = result.totalInstructions;
        result.cycles = result.totalCycles;
    }
    return result;
}

harness::FuzzArm
makeCampaignFuzzArm(const rtl::PpConfig &config,
                    const rtl::PpFsmModel &model,
                    const graph::StateGraph &graph,
                    const std::vector<graph::Trace> &seed_tours,
                    CampaignOptions options, FuzzOptions fuzz_options)
{
    return [&config, &model, &graph, &seed_tours, options,
            fuzz_options](rtl::BugId bug) -> harness::Detection {
        CampaignOptions per_bug = options;
        // Decorrelate campaigns across bugs while keeping each one a
        // pure function of (seed, bug, worker-count).
        per_bug.seed =
            options.seed * 1'000'003 + static_cast<uint64_t>(bug);
        CampaignRunner runner(config, model, graph, per_bug,
                              fuzz_options);
        rtl::BugSet bugs;
        bugs.set(static_cast<size_t>(bug));
        CampaignResult campaign = runner.run(bugs, seed_tours);

        harness::Detection detection;
        detection.detected = campaign.detected;
        detection.instructions = campaign.instructions;
        detection.cycles = campaign.cycles;
        detection.detail = campaign.detail;
        return detection;
    };
}

} // namespace archval::fuzz

#include "corpus.hh"

#include <algorithm>

#include "support/status.hh"

namespace archval::fuzz
{

size_t
Corpus::add(Candidate candidate, uint64_t energy, uint64_t new_arcs,
            bool new_state)
{
    CorpusEntry entry;
    entry.candidate = std::move(candidate);
    entry.energy = std::max<uint64_t>(energy, 1);
    entry.newArcs = new_arcs;
    entry.newState = new_state;
    entries_.push_back(std::move(entry));
    if (maxEntries_ && entries_.size() > maxEntries_)
        evictOne();
    return entries_.size() - 1;
}

size_t
Corpus::pick(Rng &rng)
{
    if (entries_.empty())
        panic("Corpus::pick on empty corpus");
    uint64_t total = 0;
    for (const CorpusEntry &entry : entries_)
        total += entry.energy;
    uint64_t draw = rng.below(total);
    for (size_t i = 0; i < entries_.size(); ++i) {
        if (draw < entries_[i].energy) {
            entries_[i].energy =
                std::max<uint64_t>(entries_[i].energy / 2, 1);
            return i;
        }
        draw -= entries_[i].energy;
    }
    return entries_.size() - 1; // unreachable
}

void
Corpus::evictOne()
{
    size_t victim = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
        if (entries_[i].energy < entries_[victim].energy)
            victim = i;
    }
    entries_.erase(entries_.begin() + victim);
}

} // namespace archval::fuzz

/**
 * @file
 * Parallel fuzz campaign: shards the coverage-guided loop across
 * std::thread workers while staying bit-deterministic for a fixed
 * (seed, worker-count) pair.
 *
 * Determinism scheme: the campaign proceeds in rounds. Within a
 * round every worker runs its own FuzzEngine — private RNG stream,
 * corpus, coverage tracker and architectural-hash set — against the
 * shared read-only model and graph, so thread scheduling cannot
 * influence any worker's results. At the round barrier the workers'
 * feedback state is exchanged in worker-index order: arc coverage is
 * OR-merged, hash sets are unioned, and every entry a worker
 * admitted is broadcast to all other corpora. Detections are
 * likewise resolved in worker-index order, making the reported
 * latency independent of which thread finished first.
 */

#ifndef ARCHVAL_FUZZ_CAMPAIGN_HH
#define ARCHVAL_FUZZ_CAMPAIGN_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/engine.hh"
#include "harness/bug_hunt.hh"

namespace archval::fuzz
{

/** Campaign tuning. */
struct CampaignOptions
{
    unsigned workers = 4;             ///< std::thread worker count
    uint64_t roundInstructions = 20'000; ///< per worker per round
    unsigned maxRounds = 8;           ///< campaign length bound
    uint64_t seed = 1;                ///< campaign master seed

    /** Replay-arm tuning: every worker's pending seeds are
     *  batch-replayed through harness::ReplayEngine before round 0
     *  and the engines primed with the results. numThreads = 0
     *  means "use the campaign worker count". */
    harness::ReplayOptions replay = [] {
        harness::ReplayOptions options;
        options.numThreads = 0;
        return options;
    }();

    /** Cooperative cancellation: when non-null and it reads true,
     *  the campaign stops at the next round barrier (and the seed
     *  replay skips its remaining jobs) with
     *  CampaignResult::cancelled set. The flag is only read. */
    const std::atomic<bool> *cancelFlag = nullptr;
};

/** Outcome of a campaign against one bug set. */
struct CampaignResult
{
    bool detected = false;
    bool cancelled = false; ///< stopped early by the cancel flag
    uint64_t instructions = 0; ///< deterministic latency (see .cc)
    uint64_t cycles = 0;
    std::string detail;
    unsigned detectionRound = 0;
    unsigned detectionWorker = 0;

    uint64_t totalInstructions = 0; ///< whole-campaign simulation
    uint64_t totalCycles = 0;
    uint64_t iterations = 0;        ///< candidates played (all workers)
    uint64_t coveredEdges = 0;      ///< merged arc coverage
    double coverageFraction = 0.0;
    size_t corpusSize = 0;          ///< merged corpus entries
};

/**
 * Runs sharded fuzz campaigns. Reusable: each run() builds fresh
 * workers from the campaign seed.
 */
class CampaignRunner
{
  public:
    /**
     * @param config Machine configuration.
     * @param model Enumerated FSM model (shared, read-only).
     * @param graph Enumerated state graph (shared, read-only).
     */
    CampaignRunner(const rtl::PpConfig &config,
                   const rtl::PpFsmModel &model,
                   const graph::StateGraph &graph,
                   CampaignOptions options = {},
                   FuzzOptions fuzz_options = {});

    /**
     * Fuzz against @p bugs, seeding every worker's corpus from
     * @p seed_tours.
     */
    CampaignResult run(const rtl::BugSet &bugs,
                       const std::vector<graph::Trace> &seed_tours);

  private:
    /** @return the deterministic per-worker engine seed. */
    uint64_t workerSeed(unsigned worker) const;

    rtl::PpConfig config_;
    const rtl::PpFsmModel &model_;
    const graph::StateGraph &graph_;
    CampaignOptions options_;
    FuzzOptions fuzzOptions_;
};

/**
 * Package a fuzz campaign as BugHunt's fourth stimulus arm. The
 * returned closure captures the references; they must outlive it.
 */
harness::FuzzArm
makeCampaignFuzzArm(const rtl::PpConfig &config,
                    const rtl::PpFsmModel &model,
                    const graph::StateGraph &graph,
                    const std::vector<graph::Trace> &seed_tours,
                    CampaignOptions options = {},
                    FuzzOptions fuzz_options = {});

} // namespace archval::fuzz

#endif // ARCHVAL_FUZZ_CAMPAIGN_HH

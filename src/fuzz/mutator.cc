#include "mutator.hh"

#include <algorithm>
#include <unordered_map>

#include "support/strings.hh"

namespace archval::fuzz
{

const char *
mutationOpName(MutationOp op)
{
    switch (op) {
    case MutationOp::Splice:
        return "splice";
    case MutationOp::TruncateExtend:
        return "truncate_extend";
    case MutationOp::EdgeFlip:
        return "edge_flip";
    case MutationOp::ClassResample:
        return "class_resample";
    default:
        return "?";
    }
}

TraceMutator::TraceMutator(const graph::StateGraph &graph,
                           uint64_t max_instructions)
    : graph_(graph), maxInstructions_(max_instructions)
{
}

std::vector<graph::StateId>
TraceMutator::stateSequence(const graph::Trace &trace) const
{
    std::vector<graph::StateId> states;
    states.reserve(trace.edges.size() + 1);
    states.push_back(graph_.resetState());
    for (graph::EdgeId e : trace.edges)
        states.push_back(graph_.edge(e).dst);
    return states;
}

void
TraceMutator::refreshAccounting(graph::Trace &trace) const
{
    trace.instructions = 0;
    for (graph::EdgeId e : trace.edges)
        trace.instructions += graph_.edge(e).instrCount;
    trace.limitTerminated = false;
}

void
TraceMutator::extendRandomly(graph::Trace &trace,
                             graph::StateId state, uint64_t max_extra,
                             Rng &rng) const
{
    uint64_t added = 0;
    while (trace.instructions < maxInstructions_ &&
           added < max_extra) {
        const auto &out = graph_.outEdges(state);
        if (out.empty())
            break;
        graph::EdgeId e = out[rng.index(out.size())];
        trace.edges.push_back(e);
        trace.instructions += graph_.edge(e).instrCount;
        state = graph_.edge(e).dst;
        ++added;
    }
}

Candidate
TraceMutator::mutate(const Candidate &base, const Candidate &donor,
                     Rng &rng)
{
    auto op = static_cast<MutationOp>(
        rng.index(static_cast<size_t>(MutationOp::NumOps)));
    return apply(op, base, donor, rng);
}

Candidate
TraceMutator::apply(MutationOp op, const Candidate &base,
                    const Candidate &donor, Rng &rng)
{
    switch (op) {
    case MutationOp::Splice:
        return splice(base, donor, rng);
    case MutationOp::TruncateExtend:
        return truncateExtend(base, rng);
    case MutationOp::EdgeFlip:
        return edgeFlip(base, rng);
    case MutationOp::ClassResample:
    default:
        return classResample(base, rng);
    }
}

Candidate
TraceMutator::splice(const Candidate &base, const Candidate &donor,
                     Rng &rng)
{
    if (base.trace.edges.empty() || donor.trace.edges.empty())
        return truncateExtend(base, rng);

    // Index the donor's states so a shared state can be found from
    // any cut point in the base. Keep the *last* donor position per
    // state so splices tend to pull in the donor's tail behaviour.
    std::unordered_map<graph::StateId, size_t> donor_pos;
    std::vector<graph::StateId> donor_states =
        stateSequence(donor.trace);
    for (size_t i = 0; i < donor_states.size(); ++i)
        donor_pos[donor_states[i]] = i;

    std::vector<graph::StateId> base_states =
        stateSequence(base.trace);
    // Try a few random cut points before giving up.
    for (int attempt = 0; attempt < 4; ++attempt) {
        size_t cut = rng.index(base_states.size());
        auto it = donor_pos.find(base_states[cut]);
        if (it == donor_pos.end())
            continue;
        Candidate mutant;
        mutant.vecgenSeed = base.vecgenSeed;
        mutant.trace.edges.assign(base.trace.edges.begin(),
                                  base.trace.edges.begin() + cut);
        mutant.trace.edges.insert(
            mutant.trace.edges.end(),
            donor.trace.edges.begin() + it->second,
            donor.trace.edges.end());
        refreshAccounting(mutant.trace);
        if (!mutant.trace.edges.empty())
            return mutant;
    }
    return truncateExtend(base, rng);
}

Candidate
TraceMutator::truncateExtend(const Candidate &base, Rng &rng)
{
    Candidate mutant;
    mutant.vecgenSeed = base.vecgenSeed;
    size_t cut = base.trace.edges.empty()
                     ? 0
                     : rng.index(base.trace.edges.size());
    mutant.trace.edges.assign(base.trace.edges.begin(),
                              base.trace.edges.begin() + cut);
    refreshAccounting(mutant.trace);
    graph::StateId state =
        cut == 0 ? graph_.resetState()
                 : graph_.edge(mutant.trace.edges.back()).dst;
    extendRandomly(mutant.trace, state, 64 + rng.index(192), rng);
    if (mutant.trace.edges.empty()) {
        // Sink right at reset (degenerate graph): keep the base.
        mutant.trace = base.trace;
        refreshAccounting(mutant.trace);
    }
    return mutant;
}

Candidate
TraceMutator::edgeFlip(const Candidate &base, Rng &rng)
{
    if (base.trace.edges.empty())
        return truncateExtend(base, rng);

    Candidate mutant;
    mutant.vecgenSeed = base.vecgenSeed;
    size_t flip = rng.index(base.trace.edges.size());
    mutant.trace.edges.assign(base.trace.edges.begin(),
                              base.trace.edges.begin() + flip);

    graph::EdgeId original = base.trace.edges[flip];
    graph::StateId src = graph_.edge(original).src;
    const auto &out = graph_.outEdges(src);
    graph::EdgeId replacement = original;
    if (out.size() > 1) {
        // Draw among the other out-edges of the same state.
        size_t draw = rng.index(out.size() - 1);
        for (graph::EdgeId e : out) {
            if (e == original)
                continue;
            if (draw == 0) {
                replacement = e;
                break;
            }
            --draw;
        }
    }
    mutant.trace.edges.push_back(replacement);

    // Re-legalize the tail: rejoin the base's suffix at the first
    // later position whose source state matches where the flip
    // landed; random-walk when no rejoin exists.
    graph::StateId landed = graph_.edge(replacement).dst;
    size_t rejoin = base.trace.edges.size();
    for (size_t i = flip + 1; i < base.trace.edges.size(); ++i) {
        if (graph_.edge(base.trace.edges[i]).src == landed) {
            rejoin = i;
            break;
        }
    }
    if (rejoin < base.trace.edges.size()) {
        mutant.trace.edges.insert(mutant.trace.edges.end(),
                                  base.trace.edges.begin() + rejoin,
                                  base.trace.edges.end());
        refreshAccounting(mutant.trace);
    } else {
        refreshAccounting(mutant.trace);
        extendRandomly(mutant.trace, landed,
                       base.trace.edges.size() - flip, rng);
    }
    return mutant;
}

Candidate
TraceMutator::classResample(const Candidate &base, Rng &rng)
{
    Candidate mutant;
    mutant.trace = base.trace;
    refreshAccounting(mutant.trace);
    mutant.vecgenSeed = rng.next();
    return mutant;
}

std::string
checkTraceValid(const graph::StateGraph &graph,
                const graph::Trace &trace)
{
    graph::StateId at = graph.resetState();
    uint64_t instructions = 0;
    for (size_t i = 0; i < trace.edges.size(); ++i) {
        graph::EdgeId e = trace.edges[i];
        if (e >= graph.numEdges())
            return formatString("edge %zu: id %u out of range", i, e);
        if (graph.edge(e).src != at)
            return formatString(
                "edge %zu: source %u != current state %u", i,
                graph.edge(e).src, at);
        at = graph.edge(e).dst;
        instructions += graph.edge(e).instrCount;
    }
    if (instructions != trace.instructions)
        return formatString("instruction total %llu != recomputed %llu",
                            (unsigned long long)trace.instructions,
                            (unsigned long long)instructions);
    return {};
}

} // namespace archval::fuzz

/**
 * @file
 * Seed corpus for the coverage-guided fuzzer.
 *
 * A corpus entry is one reset-rooted trace through the enumerated
 * state graph plus the operand-randomness seed used to concretize it
 * into vectors. Entries carry an energy: the scheduler draws entries
 * with probability proportional to energy, and energy decays as an
 * entry is picked, so fresh inputs (which covered new arcs or new
 * architectural behaviour when admitted) get mutated first — the
 * AFL-style priority scheme mapped onto transition traces.
 */

#ifndef ARCHVAL_FUZZ_CORPUS_HH
#define ARCHVAL_FUZZ_CORPUS_HH

#include <cstdint>
#include <vector>

#include "graph/tour.hh"
#include "support/rng.hh"

namespace archval::fuzz
{

/** One fuzz candidate: an abstract walk plus concretization seed. */
struct Candidate
{
    graph::Trace trace;      ///< reset-rooted walk in the state graph
    uint64_t vecgenSeed = 1; ///< operand/opcode randomness seed
};

/** One scheduled corpus entry. */
struct CorpusEntry
{
    Candidate candidate;
    uint64_t energy = 0;   ///< scheduling weight (decays on pick)
    uint64_t newArcs = 0;  ///< arcs first covered when admitted
    bool newState = false; ///< admitted for a new architectural hash
};

/**
 * Energy-weighted collection of fuzz seeds. Deterministic: selection
 * consumes only the caller-supplied Rng, and iteration order is
 * insertion order.
 */
class Corpus
{
  public:
    /** @param max_entries Oldest low-energy entries are evicted past
     *         this bound (0 = unbounded). */
    explicit Corpus(size_t max_entries = 0)
        : maxEntries_(max_entries)
    {
    }

    /**
     * Admit @p candidate with @p energy (clamped to at least 1).
     * @return index of the new entry.
     */
    size_t add(Candidate candidate, uint64_t energy,
               uint64_t new_arcs = 0, bool new_state = false);

    /**
     * Draw an entry with probability proportional to energy and
     * halve the winner's energy (floor 1).
     * @return the drawn index; corpus must be non-empty.
     */
    size_t pick(Rng &rng);

    /** @return entry @p index. */
    const CorpusEntry &entry(size_t index) const
    {
        return entries_[index];
    }

    /** @return number of entries. */
    size_t size() const { return entries_.size(); }

    /** @return true when no entries are held. */
    bool empty() const { return entries_.empty(); }

    /** @return all entries (insertion order). */
    const std::vector<CorpusEntry> &entries() const { return entries_; }

  private:
    /** Evict the lowest-energy entry (ties: oldest). */
    void evictOne();

    std::vector<CorpusEntry> entries_;
    size_t maxEntries_;
};

} // namespace archval::fuzz

#endif // ARCHVAL_FUZZ_CORPUS_HH

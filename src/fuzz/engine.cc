#include "engine.hh"

#include <algorithm>

#include "harness/baselines.hh"
#include "pp/ref_sim.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"
#include "vecgen/vector_gen.hh"

namespace archval::fuzz
{

FuzzEngine::FuzzEngine(const rtl::PpConfig &config,
                       const rtl::PpFsmModel &model,
                       const graph::StateGraph &graph, uint64_t seed,
                       FuzzOptions options)
    : config_(config), model_(model), graph_(graph),
      options_(options), rng_(seed), corpus_(options.corpusMax),
      mutator_(graph, options.maxTraceInstructions), player_(config),
      coverage_(graph)
{
}

void
FuzzEngine::seedCorpus(const std::vector<graph::Trace> &tours,
                       size_t offset, size_t stride)
{
    std::vector<Candidate> seeds;

    // Tour prefixes: the tour's front edges are the cheapest dense
    // coverage available, and every prefix of a reset-rooted walk is
    // itself a reset-rooted walk.
    size_t take = std::min(options_.seedTours, tours.size());
    for (size_t i = 0; i < take; ++i) {
        Candidate seed;
        seed.vecgenSeed = rng_.next();
        for (graph::EdgeId e : tours[i].edges) {
            if (seed.trace.instructions >=
                options_.maxTraceInstructions)
                break;
            seed.trace.edges.push_back(e);
            seed.trace.instructions += graph_.edge(e).instrCount;
        }
        if (!seed.trace.edges.empty())
            seeds.push_back(std::move(seed));
    }

    // Uniform random walks diversify the initial population beyond
    // the tour's deterministic edge order.
    for (size_t i = 0; i < options_.seedWalks; ++i) {
        harness::RandomWalker walker(graph_, rng_.next());
        Candidate seed;
        seed.vecgenSeed = rng_.next();
        seed.trace = walker.walk(options_.maxTraceInstructions);
        if (!seed.trace.edges.empty())
            seeds.push_back(std::move(seed));
    }

    for (size_t i = 0; i < seeds.size(); ++i) {
        corpus_.add(seeds[i], 4);
        if (stride <= 1 || i % stride == offset)
            pendingSeeds_.push_back(seeds[i]);
    }
}

uint64_t
FuzzEngine::archSignature(const vecgen::TestTrace &trace) const
{
    // Reference execution of the retired stream (bug-independent):
    // hashes what the stimulus *does* architecturally, so novelty
    // rewards new datapath behaviour, not artifacts of the fault
    // under test.
    pp::RefSim ref(config_.machine);
    ref.setStreamMode(true);
    ref.loadProgram(trace.retiredStream);
    ref.setInbox(trace.inbox);
    ref.run(trace.retiredStream.size() + 8);
    pp::ArchState state = ref.archState();

    uint64_t hash = 0xcbf29ce484222325ull;
    auto mix = [&hash](uint32_t word) {
        hash ^= word;
        hash *= 0x100000001b3ull;
    };
    for (uint32_t r : state.regs)
        mix(r);
    for (uint32_t w : state.dmem)
        mix(w);
    for (uint32_t w : state.outbox)
        mix(w);
    mix(static_cast<uint32_t>(state.outbox.size()));
    return hash;
}

std::vector<Candidate>
FuzzEngine::pendingSeedCandidates() const
{
    return std::vector<Candidate>(pendingSeeds_.begin() + nextPending_,
                                  pendingSeeds_.end());
}

void
FuzzEngine::primePendingSeedResults(
    std::vector<harness::PlayResult> results)
{
    primedOffset_ = nextPending_;
    primedSeedResults_ = std::move(results);
}

std::optional<FuzzDetection>
FuzzEngine::evaluate(const Candidate &candidate,
                     const rtl::BugSet &bugs, bool from_seed,
                     const char *origin,
                     const harness::PlayResult *primed)
{
    telemetry::ScopedSpan span("fuzz.iter", "edges",
                               candidate.trace.edges.size());
    ++stats_.iterations;
    telemetry::counter("fuzz.iterations").add(1);

    // Arc novelty is static: the candidate is a walk in the
    // enumerated graph, so its coverage is known before simulation.
    uint64_t before = coverage_.coveredEdges();
    coverage_.addTrace(candidate.trace);
    uint64_t new_arcs = coverage_.coveredEdges() - before;

    vecgen::VectorGenerator generator(model_, candidate.vecgenSeed);
    vecgen::TestTrace trace =
        generator.generate(graph_, candidate.trace,
                           static_cast<size_t>(stats_.iterations));

    harness::PlayResult play =
        primed ? *primed : player_.play(trace, bugs);
    stats_.instructions += play.instructions;
    stats_.cycles += play.cycles;

    uint64_t signature = archSignature(trace);
    bool new_state = seenHashes_.insert(signature).second;

    if ((new_arcs > 0 || new_state) && !from_seed) {
        uint64_t energy = 1 + 8 * new_arcs + (new_state ? 4 : 0);
        size_t index =
            corpus_.add(candidate, energy, new_arcs, new_state);
        roundAdds_.push_back(corpus_.entry(index));
        ++stats_.admitted;
        telemetry::counter("fuzz.admitted").add(1);
    }
    if (new_arcs > 0) {
        ++stats_.arcNovel;
        telemetry::counter("fuzz.arc_novel").add(1);
    }
    if (new_state) {
        ++stats_.stateNovel;
        telemetry::counter("fuzz.state_novel").add(1);
    }

    if (play.diverged) {
        FuzzDetection detection;
        detection.detected = true;
        detection.iterations = stats_.iterations;
        detection.instructions = stats_.instructions;
        detection.cycles = stats_.cycles;
        detection.detail =
            formatString("%s candidate %llu (%llu edges): %s", origin,
                         (unsigned long long)stats_.iterations,
                         (unsigned long long)candidate.trace.edges.size(),
                         play.diff.c_str());
        return detection;
    }
    return std::nullopt;
}

std::optional<FuzzDetection>
FuzzEngine::step(const rtl::BugSet &bugs)
{
    if (nextPending_ < pendingSeeds_.size()) {
        size_t index = nextPending_++;
        const Candidate &seed = pendingSeeds_[index];
        const harness::PlayResult *primed = nullptr;
        if (index >= primedOffset_ &&
            index - primedOffset_ < primedSeedResults_.size())
            primed = &primedSeedResults_[index - primedOffset_];
        return evaluate(seed, bugs, /*from_seed=*/true, "seed",
                        primed);
    }
    if (corpus_.empty())
        return std::nullopt; // degenerate graph: nothing to mutate

    size_t base_index = corpus_.pick(rng_);
    size_t donor_index = rng_.index(corpus_.size());
    Candidate base = corpus_.entry(base_index).candidate;
    Candidate donor = corpus_.entry(donor_index).candidate;
    auto op = static_cast<MutationOp>(
        rng_.index(static_cast<size_t>(MutationOp::NumOps)));
    Candidate mutant = mutator_.apply(op, base, donor, rng_);
    return evaluate(mutant, bugs, /*from_seed=*/false,
                    mutationOpName(op));
}

FuzzDetection
FuzzEngine::run(const rtl::BugSet &bugs, uint64_t instruction_budget)
{
    uint64_t target = stats_.instructions + instruction_budget;
    // Iteration cap: guards livelock on graphs whose walks retire
    // (almost) no instructions — every candidate costs >= 1 cycle.
    uint64_t max_iterations = stats_.iterations + instruction_budget;
    while (stats_.instructions < target &&
           stats_.iterations < max_iterations) {
        bool had_pending = nextPending_ < pendingSeeds_.size();
        if (auto detection = step(bugs))
            return *detection;
        if (!had_pending && corpus_.empty())
            break; // nothing to mutate and no seeds left
    }
    FuzzDetection exhausted;
    exhausted.iterations = stats_.iterations;
    exhausted.instructions = stats_.instructions;
    exhausted.cycles = stats_.cycles;
    return exhausted;
}

void
FuzzEngine::mergeCoverage(const harness::CoverageTracker &other)
{
    coverage_.merge(other);
}

void
FuzzEngine::mergeSeenHashes(const std::unordered_set<uint64_t> &other)
{
    seenHashes_.insert(other.begin(), other.end());
}

void
FuzzEngine::adoptEntries(const std::vector<CorpusEntry> &entries)
{
    for (const CorpusEntry &entry : entries)
        corpus_.add(entry.candidate, entry.energy, entry.newArcs,
                    entry.newState);
}

std::vector<CorpusEntry>
FuzzEngine::takeRoundAdds()
{
    std::vector<CorpusEntry> result = std::move(roundAdds_);
    roundAdds_.clear();
    return result;
}

} // namespace archval::fuzz

/**
 * @file
 * Coverage-guided mutational fuzz loop — the third stimulus family
 * next to transition tours and random walks.
 *
 * The engine repeatedly draws a corpus entry, mutates it with the
 * graph-aware TraceMutator, concretizes it through the existing
 * VectorGenerator and plays it on the RTL core against the reference
 * simulator (the same player every other stimulus source uses). A
 * candidate is kept when it is *interesting* under either feedback
 * signal:
 *
 *  - arc novelty: the walk exercises a state-graph arc no previous
 *    candidate exercised (the paper's coverage metric, now used as
 *    live feedback instead of a precomputed objective);
 *  - architectural novelty: the reference execution of the
 *    candidate's retired stream ends in an architectural state
 *    (registers, memory, outbox) never hashed before — the
 *    ProcessorFuzz CSR-transition idea mapped onto PP architectural
 *    state, which rewards new datapath behaviour even on saturated
 *    arc coverage.
 *
 * A divergence between implementation and specification during any
 * play is recorded as a bug detection, exactly as in BugHunt.
 */

#ifndef ARCHVAL_FUZZ_ENGINE_HH
#define ARCHVAL_FUZZ_ENGINE_HH

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "fuzz/corpus.hh"
#include "fuzz/mutator.hh"
#include "harness/coverage.hh"
#include "harness/vector_player.hh"
#include "rtl/faults.hh"

namespace archval::fuzz
{

/** Fuzz-loop tuning. */
struct FuzzOptions
{
    /** Instruction-length bound for candidate traces. */
    uint64_t maxTraceInstructions = 800;

    /** Tour traces (prefixes) admitted as seeds. */
    size_t seedTours = 4;

    /** Uniform random walks admitted as seeds. */
    size_t seedWalks = 4;

    /** Corpus size bound (0 = unbounded). */
    size_t corpusMax = 256;
};

/** First divergence found by a fuzz run. */
struct FuzzDetection
{
    bool detected = false;
    uint64_t iterations = 0;   ///< candidates played until detection
    uint64_t instructions = 0; ///< cumulative core instructions
    uint64_t cycles = 0;       ///< cumulative core cycles
    std::string detail;        ///< candidate identification + diff
};

/** Aggregated loop statistics. */
struct FuzzStats
{
    uint64_t iterations = 0;    ///< candidates evaluated
    uint64_t admitted = 0;      ///< candidates kept in the corpus
    uint64_t arcNovel = 0;      ///< kept for new arc coverage
    uint64_t stateNovel = 0;    ///< kept for new architectural hash
    uint64_t instructions = 0;  ///< core instructions simulated
    uint64_t cycles = 0;        ///< core cycles simulated
};

/**
 * Single-threaded coverage-guided fuzz loop. Deterministic for a
 * fixed seed; the CampaignRunner shards several engines and merges
 * their feedback state at round barriers.
 */
class FuzzEngine
{
  public:
    /**
     * @param config Machine configuration.
     * @param model Enumerated FSM model (concretization).
     * @param graph Enumerated state graph (mutation + coverage).
     * @param seed Determines the whole engine behaviour.
     */
    FuzzEngine(const rtl::PpConfig &config,
               const rtl::PpFsmModel &model,
               const graph::StateGraph &graph, uint64_t seed,
               FuzzOptions options = {});

    /**
     * Populate the corpus: prefixes of @p tours plus fresh uniform
     * random walks, all queued for evaluation. With sharding, worker
     * @p stride engines evaluate disjoint seed subsets starting at
     * @p offset (every engine still *holds* all seeds for mutation).
     */
    void seedCorpus(const std::vector<graph::Trace> &tours,
                    size_t offset = 0, size_t stride = 1);

    /**
     * Evaluate one candidate (a queued seed, else a fresh mutant)
     * against @p bugs.
     * @return the detection when this candidate diverged.
     */
    std::optional<FuzzDetection> step(const rtl::BugSet &bugs);

    /**
     * Run until a divergence or @p instruction_budget simulated
     * core instructions.
     */
    FuzzDetection run(const rtl::BugSet &bugs,
                      uint64_t instruction_budget);

    /** @return accumulated statistics. */
    const FuzzStats &stats() const { return stats_; }

    /** @return the corpus (insertion order). */
    const Corpus &corpus() const { return corpus_; }

    /** @return arc-coverage feedback state. */
    const harness::CoverageTracker &coverage() const
    {
        return coverage_;
    }

    /** @name Campaign-merge hooks (round barriers). @{ */

    /** Fold another engine's arc coverage into this one. */
    void mergeCoverage(const harness::CoverageTracker &other);

    /** Fold another engine's architectural-hash set into this one. */
    void mergeSeenHashes(const std::unordered_set<uint64_t> &other);

    /** @return architectural hashes seen so far. */
    const std::unordered_set<uint64_t> &seenHashes() const
    {
        return seenHashes_;
    }

    /** Adopt corpus entries discovered by another engine (adopted
     *  entries are not re-reported by takeRoundAdds()). */
    void adoptEntries(const std::vector<CorpusEntry> &entries);

    /** @return entries this engine admitted since the last call
     *  (move-out; robust against corpus eviction). */
    std::vector<CorpusEntry> takeRoundAdds();

    /** @} */

    /** @name Seed pre-play hooks (campaign replay arm). @{ */

    /** @return seed candidates not yet evaluated, in evaluation
     *  order. Their concretized traces — and therefore their
     *  PlayResults — are pure functions of the candidates, so a
     *  campaign can batch-replay them ahead of time. */
    std::vector<Candidate> pendingSeedCandidates() const;

    /**
     * Install precomputed PlayResults for the pending seeds, aligned
     * with pendingSeedCandidates(). step() consumes them instead of
     * re-simulating; each must equal what play() of the concretized
     * candidate would return (the campaign computes them through
     * harness::ReplayEngine, whose results carry that guarantee).
     */
    void primePendingSeedResults(std::vector<harness::PlayResult> results);

    /** @} */

  private:
    /** Evaluate @p candidate; updates feedback state and stats.
     *  @p from_seed suppresses corpus re-admission of unchanged
     *  seeds. @return detection when the play diverged. */
    std::optional<FuzzDetection>
    evaluate(const Candidate &candidate, const rtl::BugSet &bugs,
             bool from_seed, const char *origin,
             const harness::PlayResult *primed = nullptr);

    /** FNV-1a hash of the reference run's final architectural
     *  state. */
    uint64_t archSignature(const vecgen::TestTrace &trace) const;

    rtl::PpConfig config_;
    const rtl::PpFsmModel &model_;
    const graph::StateGraph &graph_;
    FuzzOptions options_;
    Rng rng_;
    Corpus corpus_;
    TraceMutator mutator_;
    harness::VectorPlayer player_;
    harness::CoverageTracker coverage_;
    std::unordered_set<uint64_t> seenHashes_;
    FuzzStats stats_;

    /** Seed candidates still awaiting evaluation. */
    std::vector<Candidate> pendingSeeds_;
    size_t nextPending_ = 0;

    /** Precomputed PlayResults for pendingSeeds_[primedOffset_..]. */
    std::vector<harness::PlayResult> primedSeedResults_;
    size_t primedOffset_ = 0;

    /** Entries admitted since the last takeRoundAdds(). */
    std::vector<CorpusEntry> roundAdds_;
};

} // namespace archval::fuzz

#endif // ARCHVAL_FUZZ_ENGINE_HH

/**
 * @file
 * Structure-preserving mutations over reset-rooted traces.
 *
 * Unlike byte-level fuzzers, every mutant must remain a legal walk in
 * the enumerated state graph — otherwise the vector generator cannot
 * concretize it and the player cannot force the control along it. The
 * mutator therefore edits traces only with graph-aware operators:
 *
 *  - splice: keep a prefix of one trace and continue with another
 *    trace's suffix from a shared state;
 *  - truncate-and-extend: cut a trace and random-walk onward from
 *    the cut state;
 *  - edge flip: replace one edge with a different out-edge of the
 *    same state, then re-legalize the tail (rejoin the original
 *    suffix where possible, random-walk otherwise);
 *  - class resample: keep the walk, redraw the operand/opcode
 *    randomness seed so every instruction is re-concretized within
 *    its class (the datapath-value dimension the control walk does
 *    not pin down).
 */

#ifndef ARCHVAL_FUZZ_MUTATOR_HH
#define ARCHVAL_FUZZ_MUTATOR_HH

#include <cstdint>

#include "fuzz/corpus.hh"
#include "graph/state_graph.hh"
#include "support/rng.hh"

namespace archval::fuzz
{

/** Mutation operators (drawn uniformly unless weighted). */
enum class MutationOp : uint8_t
{
    Splice = 0,
    TruncateExtend,
    EdgeFlip,
    ClassResample,
    NumOps,
};

/** @return printable operator name. */
const char *mutationOpName(MutationOp op);

/**
 * Applies graph-aware mutations to candidates. Stateless apart from
 * the graph reference; all randomness comes from the caller's Rng so
 * per-worker determinism is preserved.
 */
class TraceMutator
{
  public:
    /**
     * @param graph Graph the traces walk (must outlive the mutator).
     * @param max_instructions Length bound for mutant traces.
     */
    TraceMutator(const graph::StateGraph &graph,
                 uint64_t max_instructions);

    /**
     * Produce a mutant of @p base. The @p donor (for splices) may be
     * any other corpus trace; when splicing fails to find a shared
     * state the operator falls back to truncate-and-extend.
     * @return a valid reset-rooted candidate.
     */
    Candidate mutate(const Candidate &base, const Candidate &donor,
                     Rng &rng);

    /** Apply a specific operator (exposed for tests). */
    Candidate apply(MutationOp op, const Candidate &base,
                    const Candidate &donor, Rng &rng);

    /**
     * @return the state sequence of @p trace: position i is the
     * state *before* edge i; the final entry is the end state.
     */
    std::vector<graph::StateId>
    stateSequence(const graph::Trace &trace) const;

  private:
    /** Append uniform random-walk edges from @p state until the
     *  instruction bound or @p max_extra edges. */
    void extendRandomly(graph::Trace &trace, graph::StateId state,
                        uint64_t max_extra, Rng &rng) const;

    /** Recompute instruction totals of @p trace from its edges. */
    void refreshAccounting(graph::Trace &trace) const;

    Candidate splice(const Candidate &base, const Candidate &donor,
                     Rng &rng);
    Candidate truncateExtend(const Candidate &base, Rng &rng);
    Candidate edgeFlip(const Candidate &base, Rng &rng);
    Candidate classResample(const Candidate &base, Rng &rng);

    const graph::StateGraph &graph_;
    uint64_t maxInstructions_;
};

/**
 * Verify that @p trace is a connected walk starting at reset with
 * consistent instruction accounting. @return empty string on
 * success, else a description of the violation (test helper).
 */
std::string checkTraceValid(const graph::StateGraph &graph,
                            const graph::Trace &trace);

} // namespace archval::fuzz

#endif // ARCHVAL_FUZZ_MUTATOR_HH

#include "postman.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "support/status.hh"
#include "support/strings.hh"

namespace archval::graph
{

namespace
{

/** Arc in the min-cost-flow network (paired with its residual). */
struct FlowArc
{
    uint32_t to;
    int64_t capacity;
    int64_t cost;
    EdgeId realEdge; ///< underlying graph edge, or resetReturnEdge
};

/** Successive-shortest-path min-cost flow with SPFA (handles the
 *  negative-cost residual arcs). Arcs are stored in pairs: arc 2k is
 *  forward, arc 2k+1 its residual. */
class MinCostFlow
{
  public:
    explicit MinCostFlow(size_t num_nodes) : adjacency_(num_nodes) {}

    size_t
    addArc(uint32_t from, uint32_t to, int64_t capacity, int64_t cost,
           EdgeId real_edge)
    {
        size_t id = arcs_.size();
        arcs_.push_back({to, capacity, cost, real_edge});
        arcs_.push_back({from, 0, -cost, real_edge});
        adjacency_[from].push_back(id);
        adjacency_[to].push_back(id + 1);
        return id;
    }

    /** Send up to @p amount units from @p source to @p sink.
     *  @return units actually sent. */
    int64_t
    send(uint32_t source, uint32_t sink, int64_t amount)
    {
        int64_t sent = 0;
        while (sent < amount) {
            if (!shortestPath(source, sink))
                break;
            // Find bottleneck along the path.
            int64_t push = amount - sent;
            for (uint32_t v = sink; v != source;) {
                size_t arc = parentArc_[v];
                push = std::min(push, arcs_[arc].capacity);
                v = arcs_[arc ^ 1].to;
            }
            for (uint32_t v = sink; v != source;) {
                size_t arc = parentArc_[v];
                arcs_[arc].capacity -= push;
                arcs_[arc ^ 1].capacity += push;
                v = arcs_[arc ^ 1].to;
            }
            sent += push;
        }
        return sent;
    }

    /** @return flow pushed through forward arc @p id. */
    int64_t flowOn(size_t id) const { return arcs_[id ^ 1].capacity; }

  private:
    bool
    shortestPath(uint32_t source, uint32_t sink)
    {
        const int64_t inf = std::numeric_limits<int64_t>::max() / 4;
        dist_.assign(adjacency_.size(), inf);
        inQueue_.assign(adjacency_.size(), false);
        parentArc_.assign(adjacency_.size(), SIZE_MAX);

        std::deque<uint32_t> queue;
        dist_[source] = 0;
        queue.push_back(source);
        inQueue_[source] = true;

        while (!queue.empty()) {
            uint32_t v = queue.front();
            queue.pop_front();
            inQueue_[v] = false;
            for (size_t arc : adjacency_[v]) {
                const FlowArc &a = arcs_[arc];
                if (a.capacity <= 0)
                    continue;
                int64_t nd = dist_[v] + a.cost;
                if (nd < dist_[a.to]) {
                    dist_[a.to] = nd;
                    parentArc_[a.to] = arc;
                    if (!inQueue_[a.to]) {
                        queue.push_back(a.to);
                        inQueue_[a.to] = true;
                    }
                }
            }
        }
        return parentArc_[sink] != SIZE_MAX ||
               (sink == source && false);
    }

    std::vector<FlowArc> arcs_;
    std::vector<std::vector<size_t>> adjacency_;
    std::vector<int64_t> dist_;
    std::vector<bool> inQueue_;
    std::vector<size_t> parentArc_;
};

} // namespace

PostmanResult
solveResettablePostman(const StateGraph &graph)
{
    const size_t n = graph.numStates();
    const StateId reset = graph.resetState();

    PostmanResult result;
    result.multiplicity.assign(graph.numEdges(), 1);

    // delta = indeg - outdeg with every edge traversed once. A node
    // with positive delta must originate extra traversals; negative
    // delta must terminate extra traversals.
    std::vector<int64_t> delta(n, 0);
    for (EdgeId e = 0; e < graph.numEdges(); ++e) {
        const Edge &edge = graph.edge(e);
        ++delta[edge.dst];
        --delta[edge.src];
    }

    // Min-cost flow from surplus-in nodes to surplus-out nodes over
    // real arcs (cost 1) plus virtual v->reset arcs (cost 1). A single
    // super-source/super-sink carries all supply.
    const uint32_t super_source = static_cast<uint32_t>(n);
    const uint32_t super_sink = static_cast<uint32_t>(n + 1);
    MinCostFlow flow(n + 2);
    const int64_t inf = std::numeric_limits<int64_t>::max() / 8;

    std::vector<size_t> real_arc_ids(graph.numEdges());
    for (EdgeId e = 0; e < graph.numEdges(); ++e) {
        const Edge &edge = graph.edge(e);
        real_arc_ids[e] = flow.addArc(edge.src, edge.dst, inf, 1, e);
    }
    std::vector<size_t> virtual_arc_ids(n, SIZE_MAX);
    for (uint32_t v = 0; v < n; ++v) {
        if (v != reset) {
            virtual_arc_ids[v] =
                flow.addArc(v, reset, inf, 1, resetReturnEdge);
        }
    }

    int64_t total_supply = 0;
    for (uint32_t v = 0; v < n; ++v) {
        if (delta[v] > 0) {
            flow.addArc(super_source, v, delta[v], 0, resetReturnEdge);
            total_supply += delta[v];
        } else if (delta[v] < 0) {
            flow.addArc(v, super_sink, -delta[v], 0, resetReturnEdge);
        }
    }

    int64_t sent = flow.send(super_source, super_sink, total_supply);
    if (sent != total_supply)
        panic("postman: imbalance could not be routed");

    for (EdgeId e = 0; e < graph.numEdges(); ++e) {
        result.multiplicity[e] +=
            static_cast<uint32_t>(flow.flowOn(real_arc_ids[e]));
    }
    for (uint32_t v = 0; v < n; ++v) {
        if (virtual_arc_ids[v] != SIZE_MAX)
            result.resetReturns +=
                static_cast<uint64_t>(flow.flowOn(virtual_arc_ids[v]));
    }

    for (uint32_t m : result.multiplicity)
        result.totalTraversals += m;
    result.tourLength = result.totalTraversals + result.resetReturns;
    return result;
}

std::vector<EdgeId>
hierholzerTour(const StateGraph &graph, const PostmanResult &result)
{
    const size_t n = graph.numStates();
    const StateId reset = graph.resetState();

    // Remaining traversals per real edge, plus per-node virtual
    // returns computed from the balance (in - out over real edges).
    std::vector<uint32_t> remaining = result.multiplicity;
    std::vector<int64_t> balance(n, 0);
    for (EdgeId e = 0; e < graph.numEdges(); ++e) {
        const Edge &edge = graph.edge(e);
        balance[edge.dst] += result.multiplicity[e];
        balance[edge.src] -= result.multiplicity[e];
    }
    std::vector<uint64_t> virtual_out(n, 0);
    for (uint32_t v = 0; v < n; ++v) {
        if (v != reset && balance[v] > 0)
            virtual_out[v] = static_cast<uint64_t>(balance[v]);
    }

    // Per-node scan position over its out-edge list.
    std::vector<uint32_t> position(n, 0);

    std::vector<EdgeId> tour;
    std::vector<std::pair<StateId, EdgeId>> stack;
    stack.push_back({reset, resetReturnEdge});

    while (!stack.empty()) {
        StateId v = stack.back().first;
        const auto &out = graph.outEdges(v);
        uint32_t &pos = position[v];
        while (pos < out.size() && remaining[out[pos]] == 0)
            ++pos;
        if (pos < out.size()) {
            EdgeId e = out[pos];
            --remaining[e];
            stack.push_back({graph.edge(e).dst, e});
        } else if (virtual_out[v] > 0) {
            --virtual_out[v];
            stack.push_back({reset, resetReturnEdge});
        } else {
            // Dead end: pop and emit (tour built in reverse).
            EdgeId via = stack.back().second;
            stack.pop_back();
            if (!stack.empty())
                tour.push_back(via);
        }
    }
    std::reverse(tour.begin(), tour.end());
    return tour;
}

std::string
checkPostmanTour(const StateGraph &graph, const PostmanResult &result,
                 const std::vector<EdgeId> &tour)
{
    std::vector<uint32_t> seen(graph.numEdges(), 0);
    StateId at = graph.resetState();
    for (EdgeId e : tour) {
        if (e == resetReturnEdge) {
            at = graph.resetState();
            continue;
        }
        const Edge &edge = graph.edge(e);
        if (edge.src != at) {
            return formatString(
                "tour discontinuity: edge %u leaves %u but walk at %u",
                e, edge.src, at);
        }
        at = edge.dst;
        ++seen[e];
    }
    for (EdgeId e = 0; e < graph.numEdges(); ++e) {
        if (seen[e] != result.multiplicity[e]) {
            return formatString(
                "edge %u traversed %u times, expected %u", e, seen[e],
                result.multiplicity[e]);
        }
    }
    return "";
}

} // namespace archval::graph

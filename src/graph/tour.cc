#include "tour.hh"

#include <algorithm>
#include <deque>

#include "support/status.hh"
#include "support/strings.hh"
#include "support/timer.hh"

namespace archval::graph
{

std::string
TourStats::render() const
{
    std::string out;
    out += formatString("Number of traces generated     %s\n",
                        withCommas(numTraces).c_str());
    out += formatString("Total edge traversals          %s\n",
                        withCommas(totalEdgeTraversals).c_str());
    out += formatString("Total instructions generated   %s\n",
                        withCommas(totalInstructions).c_str());
    out += formatString("Generation time                %.1f cpu secs\n",
                        generationSeconds);
    out += formatString("Est. simulation time @ 100Hz   %s\n",
                        humanSeconds(double(totalEdgeTraversals) / 100.0)
                            .c_str());
    out += formatString("Longest single trace           %s edges\n",
                        withCommas(longestTraceEdges).c_str());
    out += formatString("Est. sim time (longest trace)  %s\n",
                        humanSeconds(double(longestTraceEdges) / 100.0)
                            .c_str());
    out += formatString("Traces terminated by limit     %s\n",
                        withCommas(tracesTerminatedByLimit).c_str());
    return out;
}

TourGenerator::TourGenerator(const StateGraph &graph, TourOptions options)
    : graph_(graph), options_(options)
{
}

void
TourGenerator::coverEdge(EdgeId edge)
{
    if (!covered_[edge]) {
        covered_[edge] = true;
        --remainingUncovered_;
    }
}

void
TourGenerator::takeEdge(EdgeId edge, Trace &trace)
{
    trace.edges.push_back(edge);
    trace.instructions += graph_.edge(edge).instrCount;
    ++stats_.totalEdgeTraversals;
    stats_.totalInstructions += graph_.edge(edge).instrCount;
    coverEdge(edge);
}

bool
TourGenerator::atLimit(const Trace &trace) const
{
    return options_.maxInstructionsPerTrace != 0 &&
           trace.instructions >= options_.maxInstructionsPerTrace;
}

StateId
TourGenerator::traverseDfs(StateId state, Trace &trace)
{
    // Follow untraversed edges greedily until none leave the current
    // state or the trace hits its instruction limit. States may be
    // revisited; only edge coverage matters. The limit is checked
    // *after* each edge so that every DFS entry makes progress (at
    // least one new edge per trace) — without this, a trace whose
    // reset-to-work BFS prefix already exhausts the budget would
    // cover nothing and generation would never terminate.
    for (;;) {
        const auto &out = graph_.outEdges(state);
        uint32_t &pos = nextUncovered_[state];
        while (pos < out.size() && covered_[out[pos]])
            ++pos;
        if (pos >= out.size())
            return state;
        EdgeId edge = out[pos];
        takeEdge(edge, trace);
        state = graph_.edge(edge).dst;
        if (atLimit(trace))
            return state;
    }
}

bool
TourGenerator::hasUncovered(StateId state)
{
    const auto &out = graph_.outEdges(state);
    uint32_t &pos = nextUncovered_[state];
    while (pos < out.size() && covered_[out[pos]])
        ++pos;
    return pos < out.size();
}

void
TourGenerator::buildStaticRoutes()
{
    const size_t n = graph_.numStates();
    const StateId reset = graph_.resetState();

    // Forward BFS tree from reset: fromResetEdge_[v] is the tree
    // edge entering v; depthOrder_ lists states in BFS order.
    fromResetEdge_.assign(n, invalidEdge);
    depthOrder_.clear();
    depthOrder_.reserve(n);
    {
        std::vector<bool> visited(n, false);
        std::deque<StateId> queue;
        visited[reset] = true;
        queue.push_back(reset);
        depthOrder_.push_back(reset);
        while (!queue.empty()) {
            StateId u = queue.front();
            queue.pop_front();
            for (EdgeId e : graph_.outEdges(u)) {
                StateId v = graph_.edge(e).dst;
                if (visited[v])
                    continue;
                visited[v] = true;
                fromResetEdge_[v] = e;
                depthOrder_.push_back(v);
                queue.push_back(v);
            }
        }
    }

    // Reverse BFS in-tree toward reset: toResetEdge_[v] is the first
    // hop of a shortest walk v -> ... -> reset (invalid when reset
    // is unreachable from v). Needs reverse adjacency, built here in
    // CSR form by counting sort.
    std::vector<uint32_t> offsets(n + 1, 0);
    for (EdgeId e = 0; e < graph_.numEdges(); ++e)
        ++offsets[graph_.edge(e).dst + 1];
    for (size_t i = 1; i < offsets.size(); ++i)
        offsets[i] += offsets[i - 1];
    std::vector<EdgeId> reverse_edges(graph_.numEdges());
    {
        std::vector<uint32_t> cursor(offsets.begin(),
                                     offsets.end() - 1);
        for (EdgeId e = 0; e < graph_.numEdges(); ++e)
            reverse_edges[cursor[graph_.edge(e).dst]++] = e;
    }

    toResetEdge_.assign(n, invalidEdge);
    {
        std::vector<bool> visited(n, false);
        std::deque<StateId> queue;
        visited[reset] = true;
        queue.push_back(reset);
        while (!queue.empty()) {
            StateId u = queue.front();
            queue.pop_front();
            for (uint32_t i = offsets[u]; i < offsets[u + 1]; ++i) {
                EdgeId e = reverse_edges[i];
                StateId v = graph_.edge(e).src;
                if (visited[v])
                    continue;
                visited[v] = true;
                toResetEdge_[v] = e; // forward edge v -> ... -> reset
                queue.push_back(v);
            }
        }
    }

    workCursor_ = 0;
}

StateId
TourGenerator::nextWorkState()
{
    // Coverage is monotone, so a single depth-ordered cursor visits
    // each state at most once across the whole run.
    while (workCursor_ < depthOrder_.size()) {
        StateId s = depthOrder_[workCursor_];
        if (hasUncovered(s))
            return s;
        ++workCursor_;
    }
    return invalidState;
}

StateId
TourGenerator::traverseBfs(StateId state, Trace &trace)
{
    if (hasUncovered(state))
        return state;

    StateId target = nextWorkState();
    if (target == invalidState)
        return invalidState;

    const StateId reset = graph_.resetState();

    // Leg 1: back to reset along the static in-tree (re-traversing
    // covered edges is cheap in simulation).
    if (state != reset) {
        if (toResetEdge_[state] == invalidEdge)
            return invalidState; // must start a fresh trace
        while (state != reset) {
            EdgeId e = toResetEdge_[state];
            takeEdge(e, trace);
            state = graph_.edge(e).dst;
        }
    }

    // Leg 2: reset to the target along the forward BFS tree.
    if (target != reset) {
        if (fromResetEdge_[target] == invalidEdge)
            panic("tour: uncovered edges unreachable from reset");
        std::vector<EdgeId> path;
        for (StateId cur = target; cur != reset;) {
            EdgeId e = fromResetEdge_[cur];
            path.push_back(e);
            cur = graph_.edge(e).src;
        }
        for (auto it = path.rbegin(); it != path.rend(); ++it)
            takeEdge(*it, trace);
    }
    return target;
}

namespace
{

/**
 * Split @p full into its nested prefixes, cut where the running
 * instruction count crosses each multiple of @p limit. The last
 * emitted trace is @p full itself, so coverage is preserved.
 */
std::vector<Trace>
splitNestedPrefixes(const StateGraph &graph, const Trace &full,
                    uint64_t limit)
{
    std::vector<Trace> out;
    Trace prefix;
    uint64_t next_cut = limit;
    for (size_t i = 0; i < full.edges.size(); ++i) {
        EdgeId e = full.edges[i];
        prefix.edges.push_back(e);
        prefix.instructions += graph.edge(e).instrCount;
        if (prefix.instructions >= next_cut &&
            i + 1 < full.edges.size()) {
            Trace cut = prefix;
            cut.limitTerminated = true;
            out.push_back(std::move(cut));
            while (prefix.instructions >= next_cut)
                next_cut += limit;
        }
    }
    out.push_back(full);
    return out;
}

} // namespace

std::vector<Trace>
TourGenerator::run()
{
    CpuTimer timer;

    const bool nested = options_.nestedPrefixSplits &&
                        options_.maxInstructionsPerTrace != 0;
    const uint64_t nested_limit = options_.maxInstructionsPerTrace;
    if (nested) {
        // Generate unlimited walks; the limit is applied afterwards
        // as nested prefix cuts rather than in-walk terminations.
        options_.maxInstructionsPerTrace = 0;
    }

    covered_.assign(graph_.numEdges(), false);
    nextUncovered_.assign(graph_.numStates(), 0);
    remainingUncovered_ = graph_.numEdges();
    buildStaticRoutes();

    std::vector<Trace> traces;
    const StateId reset = graph_.resetState();

    Trace trace;
    StateId state = reset;

    while (remainingUncovered_ > 0) {
        // Inner loop: DFS until stuck, then BFS to the nearest state
        // with work left; stop on the instruction limit or when
        // nothing is reachable from here.
        for (;;) {
            state = traverseDfs(state, trace);
            if (remainingUncovered_ == 0)
                break;
            if (atLimit(trace)) {
                trace.limitTerminated = true;
                break;
            }
            StateId next = traverseBfs(state, trace);
            if (next == invalidState)
                break;
            state = next;
            // No limit check here: the next DFS pass must take at
            // least one new edge first, or traces that spend their
            // whole budget on the connecting path would make no
            // progress.
        }

        // Close the current output file.
        if (!trace.edges.empty()) {
            if (trace.limitTerminated)
                ++stats_.tracesTerminatedByLimit;
            traces.push_back(std::move(trace));
        }
        trace = Trace();

        if (remainingUncovered_ == 0)
            break;

        // Explore phase: start a new trace from reset and path to any
        // remaining untraversed edge.
        state = traverseBfs(reset, trace);
        if (state == invalidState) {
            // Untraversed edges exist but are unreachable from reset.
            // Cannot happen for graphs produced by enumeration from
            // reset; bail out rather than spin.
            panic("tour: uncovered edges unreachable from reset");
        }
    }

    if (nested) {
        options_.maxInstructionsPerTrace = nested_limit;
        std::vector<Trace> split;
        for (const Trace &full : traces) {
            auto prefixes =
                splitNestedPrefixes(graph_, full, nested_limit);
            for (auto &p : prefixes)
                split.push_back(std::move(p));
        }
        traces = std::move(split);
        // The accumulated counters describe the un-split walks;
        // recount over what is actually emitted.
        stats_.totalEdgeTraversals = 0;
        stats_.totalInstructions = 0;
        stats_.tracesTerminatedByLimit = 0;
        for (const auto &t : traces) {
            stats_.totalEdgeTraversals += t.edges.size();
            stats_.totalInstructions += t.instructions;
            if (t.limitTerminated)
                ++stats_.tracesTerminatedByLimit;
        }
    }

    // "Remove empty last output file": only non-empty traces were kept.
    stats_.numTraces = traces.size();
    for (const auto &t : traces) {
        if (t.edges.size() > stats_.longestTraceEdges) {
            stats_.longestTraceEdges = t.edges.size();
            stats_.longestTraceInstructions = t.instructions;
        }
    }
    stats_.generationSeconds = timer.seconds();
    return traces;
}

std::string
checkTourCoverage(const StateGraph &graph, const std::vector<Trace> &traces)
{
    std::vector<bool> covered(graph.numEdges(), false);
    for (size_t t = 0; t < traces.size(); ++t) {
        const Trace &trace = traces[t];
        if (trace.edges.empty())
            return formatString("trace %zu is empty", t);
        StateId at = graph.resetState();
        uint64_t instrs = 0;
        for (EdgeId e : trace.edges) {
            const Edge &edge = graph.edge(e);
            if (edge.src != at) {
                return formatString(
                    "trace %zu: edge %u departs from state %u but walk "
                    "is at state %u",
                    t, e, edge.src, at);
            }
            at = edge.dst;
            instrs += edge.instrCount;
            covered[e] = true;
        }
        if (instrs != trace.instructions) {
            return formatString(
                "trace %zu: recorded %llu instructions but edges sum "
                "to %llu",
                t,
                static_cast<unsigned long long>(trace.instructions),
                static_cast<unsigned long long>(instrs));
        }
    }
    for (EdgeId e = 0; e < graph.numEdges(); ++e) {
        if (!covered[e])
            return formatString("edge %u never traversed", e);
    }
    return "";
}

} // namespace archval::graph

#include "state_graph.hh"

#include <algorithm>

#include "support/status.hh"
#include "support/strings.hh"

namespace archval::graph
{

void
StateGraph::setRetention(bool retain)
{
    if (!retentionSet_) {
        retainStates_ = retain;
        retentionSet_ = true;
    } else if (retainStates_ != retain) {
        fatal(retain
                  ? "StateGraph: retained state added to a graph "
                    "built without state retention"
                  : "StateGraph: unretained state added to a graph "
                    "built with state retention");
    }
}

StateId
StateGraph::addState(BitVec packed)
{
    setRetention(true);
    StateId id = static_cast<StateId>(outEdges_.size());
    outEdges_.emplace_back();
    packedStates_.push_back(std::move(packed));
    return id;
}

StateId
StateGraph::addStateUnretained()
{
    setRetention(false);
    StateId id = static_cast<StateId>(outEdges_.size());
    outEdges_.emplace_back();
    return id;
}

void
StateGraph::addStates(std::vector<BitVec> &&packed)
{
    setRetention(true);
    outEdges_.resize(outEdges_.size() + packed.size());
    if (packedStates_.empty()) {
        packedStates_ = std::move(packed);
    } else {
        packedStates_.reserve(packedStates_.size() + packed.size());
        for (BitVec &state : packed)
            packedStates_.push_back(std::move(state));
    }
    packed.clear();
}

void
StateGraph::addStatesUnretained(size_t count)
{
    setRetention(false);
    outEdges_.resize(outEdges_.size() + count);
}

void
StateGraph::reserveStates(size_t expected)
{
    outEdges_.reserve(expected);
    if (retainStates_)
        packedStates_.reserve(expected);
}

void
StateGraph::reserveEdges(size_t expected)
{
    edges_.reserve(expected);
}

EdgeId
StateGraph::addEdge(StateId src, StateId dst, uint64_t choice_code,
                    uint32_t instr_count)
{
    if (src >= outEdges_.size() || dst >= outEdges_.size())
        panic("StateGraph::addEdge out of range");
    EdgeId id = static_cast<EdgeId>(edges_.size());
    edges_.push_back({src, dst, choice_code, instr_count});
    outEdges_[src].push_back(id);
    return id;
}

void
StateGraph::addEdges(const std::vector<Edge> &batch)
{
    EdgeId id = static_cast<EdgeId>(edges_.size());
    edges_.reserve(edges_.size() + batch.size());
    for (const Edge &e : batch) {
        if (e.src >= outEdges_.size() || e.dst >= outEdges_.size())
            panic("StateGraph::addEdges out of range");
        edges_.push_back(e);
        outEdges_[e.src].push_back(id++);
    }
}

const std::vector<EdgeId> &
StateGraph::outEdges(StateId state) const
{
    if (state >= outEdges_.size())
        panic("StateGraph::outEdges out of range");
    return outEdges_[state];
}

const BitVec &
StateGraph::packedState(StateId state) const
{
    if (!retainStates_)
        panic("StateGraph::packedState: states were not retained");
    if (state >= packedStates_.size())
        panic("StateGraph::packedState out of range");
    return packedStates_[state];
}

uint64_t
StateGraph::totalEdgeInstructions() const
{
    uint64_t total = 0;
    for (const auto &e : edges_)
        total += e.instrCount;
    return total;
}

size_t
StateGraph::memoryBytes() const
{
    size_t bytes = edges_.capacity() * sizeof(Edge);
    for (const auto &adj : outEdges_)
        bytes += adj.capacity() * sizeof(EdgeId) + sizeof(adj);
    for (const auto &s : packedStates_)
        bytes += s.memoryBytes() + sizeof(s);
    return bytes;
}

SccResult
stronglyConnectedComponents(const StateGraph &graph)
{
    const size_t n = graph.numStates();
    SccResult result;
    result.componentOf.assign(n, UINT32_MAX);

    std::vector<uint32_t> index(n, UINT32_MAX);
    std::vector<uint32_t> lowlink(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<StateId> stack;
    uint32_t next_index = 0;

    // Iterative Tarjan: frame = (state, next out-edge position).
    struct Frame
    {
        StateId state;
        size_t edgePos;
    };
    std::vector<Frame> frames;

    for (StateId root = 0; root < n; ++root) {
        if (index[root] != UINT32_MAX)
            continue;
        frames.push_back({root, 0});
        index[root] = lowlink[root] = next_index++;
        stack.push_back(root);
        onStack[root] = true;

        while (!frames.empty()) {
            Frame &frame = frames.back();
            const auto &out = graph.outEdges(frame.state);
            bool descended = false;
            while (frame.edgePos < out.size()) {
                StateId dst = graph.edge(out[frame.edgePos]).dst;
                ++frame.edgePos;
                if (index[dst] == UINT32_MAX) {
                    index[dst] = lowlink[dst] = next_index++;
                    stack.push_back(dst);
                    onStack[dst] = true;
                    frames.push_back({dst, 0});
                    descended = true;
                    break;
                } else if (onStack[dst]) {
                    lowlink[frame.state] =
                        std::min(lowlink[frame.state], index[dst]);
                }
            }
            if (descended)
                continue;

            // All out-edges processed; pop and propagate lowlink.
            StateId state = frame.state;
            frames.pop_back();
            if (!frames.empty()) {
                StateId parent = frames.back().state;
                lowlink[parent] = std::min(lowlink[parent],
                                           lowlink[state]);
            }
            if (lowlink[state] == index[state]) {
                uint32_t comp = static_cast<uint32_t>(
                    result.numComponents++);
                for (;;) {
                    StateId member = stack.back();
                    stack.pop_back();
                    onStack[member] = false;
                    result.componentOf[member] = comp;
                    if (member == state)
                        break;
                }
            }
        }
    }
    return result;
}

std::vector<bool>
reachableFrom(const StateGraph &graph, StateId start)
{
    std::vector<bool> seen(graph.numStates(), false);
    if (start >= graph.numStates())
        return seen;
    std::vector<StateId> frontier = {start};
    seen[start] = true;
    while (!frontier.empty()) {
        StateId state = frontier.back();
        frontier.pop_back();
        for (EdgeId e : graph.outEdges(state)) {
            StateId dst = graph.edge(e).dst;
            if (!seen[dst]) {
                seen[dst] = true;
                frontier.push_back(dst);
            }
        }
    }
    return seen;
}

GraphSummary
summarize(const StateGraph &graph)
{
    GraphSummary s;
    s.numStates = graph.numStates();
    s.numEdges = graph.numEdges();
    for (StateId i = 0; i < graph.numStates(); ++i) {
        size_t degree = graph.outEdges(i).size();
        s.maxOutDegree = std::max(s.maxOutDegree, degree);
        if (degree == 0)
            ++s.numSinkStates;
    }
    s.meanOutDegree =
        s.numStates ? double(s.numEdges) / double(s.numStates) : 0.0;

    auto scc = stronglyConnectedComponents(graph);
    s.numSccs = scc.numComponents;
    std::vector<size_t> sizes(scc.numComponents, 0);
    for (uint32_t comp : scc.componentOf) {
        if (comp != UINT32_MAX)
            ++sizes[comp];
    }
    for (size_t size : sizes)
        s.largestScc = std::max(s.largestScc, size);
    return s;
}

std::string
renderSummary(const GraphSummary &s)
{
    std::string out;
    out += formatString("states          %s\n",
                        withCommas(s.numStates).c_str());
    out += formatString("edges           %s\n",
                        withCommas(s.numEdges).c_str());
    out += formatString("mean out-degree %.2f\n", s.meanOutDegree);
    out += formatString("max out-degree  %zu\n", s.maxOutDegree);
    out += formatString("sink states     %zu\n", s.numSinkStates);
    out += formatString("SCCs            %s (largest %s)\n",
                        withCommas(s.numSccs).c_str(),
                        withCommas(s.largestScc).c_str());
    return out;
}

uint64_t
fingerprint(const StateGraph &graph)
{
    uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    auto mix = [&h](uint64_t value) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (value >> (byte * 8)) & 0xff;
            h *= 0x100000001b3ull; // FNV prime
        }
    };
    mix(graph.numStates());
    if (graph.statesRetained()) {
        for (StateId s = 0; s < graph.numStates(); ++s)
            mix(graph.packedState(s).hash());
    }
    mix(graph.numEdges());
    for (EdgeId e = 0; e < graph.numEdges(); ++e) {
        const Edge &edge = graph.edge(e);
        mix(edge.src);
        mix(edge.dst);
        mix(edge.choiceCode);
        mix(edge.instrCount);
    }
    return h;
}

} // namespace archval::graph

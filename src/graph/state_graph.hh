/**
 * @file
 * State graph produced by full state enumeration.
 *
 * Vertices are reachable control states; each directed edge is a
 * clock-cycle transition labelled with the packed choice code (the
 * environment action) that caused it, plus the number of architectural
 * instructions that transition consumes (used by trace limits).
 */

#ifndef ARCHVAL_GRAPH_STATE_GRAPH_HH
#define ARCHVAL_GRAPH_STATE_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/bitvec.hh"

namespace archval::graph
{

using StateId = uint32_t;
using EdgeId = uint32_t;

/** Sentinel for "no state". */
constexpr StateId invalidState = UINT32_MAX;

/** One labelled transition. */
struct Edge
{
    StateId src;        ///< source state
    StateId dst;        ///< destination state
    uint64_t choiceCode; ///< packed environment choice (ChoiceCodec)
    uint32_t instrCount; ///< instructions consumed by this transition
};

/**
 * Directed multigraph over enumerated states.
 *
 * Built incrementally by the enumerator, then used read-only by tour
 * generation and analysis. Optionally retains the packed state vector
 * of every state for debugging and condition mapping.
 */
class StateGraph
{
  public:
    /**
     * Add a state whose packed vector is retained (a zero-width
     * vector is legal: a model whose control state is fully
     * implicit). The first insertion fixes the graph's retention
     * mode; mixing retained and unretained states is a FatalError.
     * @return the new state's id.
     */
    StateId addState(BitVec packed);

    /** Add a state without retaining a packed vector (see
     *  addState() for the retention-mode contract). */
    StateId addStateUnretained();

    /** Bulk-append retained states in order; ids are assigned
     *  consecutively starting at the current numStates(). */
    void addStates(std::vector<BitVec> &&packed);

    /** Bulk-append @p count unretained states. */
    void addStatesUnretained(size_t count);

    /** Add an edge; @return the new edge's id. */
    EdgeId addEdge(StateId src, StateId dst, uint64_t choice_code,
                   uint32_t instr_count);

    /** Bulk-append edges (one adjacency pass, no per-edge calls);
     *  sources and destinations must already exist. */
    void addEdges(const std::vector<Edge> &batch);

    /** Pre-size the state containers for @p expected states. */
    void reserveStates(size_t expected);

    /** Pre-size the edge container for @p expected edges. */
    void reserveEdges(size_t expected);

    /** @return number of states. */
    size_t numStates() const { return outEdges_.size(); }

    /** @return number of edges. */
    size_t numEdges() const { return edges_.size(); }

    /** @return edge record for @p id. */
    const Edge &edge(EdgeId id) const { return edges_[id]; }

    /** @return ids of edges leaving @p state. */
    const std::vector<EdgeId> &outEdges(StateId state) const;

    /** @return the packed state vector; panics when retention is
     *  off or @p state is out of range. */
    const BitVec &packedState(StateId state) const;

    /** @return true when packed states are retained. An empty graph
     *  reports true (retention is decided by the first insertion,
     *  and nothing contradicts it yet). */
    bool statesRetained() const { return retainStates_; }

    /** @return the reset (initial) state id; always 0 by construction. */
    StateId resetState() const { return 0; }

    /** @return total instruction count across all edges. */
    uint64_t totalEdgeInstructions() const;

    /** @return approximate heap bytes held by the graph. */
    size_t memoryBytes() const;

  private:
    void setRetention(bool retain);

    std::vector<Edge> edges_;
    std::vector<std::vector<EdgeId>> outEdges_;
    std::vector<BitVec> packedStates_;
    bool retainStates_ = true;  ///< retention mode (see statesRetained)
    bool retentionSet_ = false; ///< first insertion happened
};

/** Strongly-connected-component decomposition (iterative Tarjan). */
struct SccResult
{
    std::vector<uint32_t> componentOf; ///< state -> component index
    size_t numComponents = 0;
};

/** Compute SCCs of @p graph. */
SccResult stronglyConnectedComponents(const StateGraph &graph);

/** @return states reachable from @p start (BFS over out-edges). */
std::vector<bool> reachableFrom(const StateGraph &graph, StateId start);

/** Degree and connectivity summary for reports. */
struct GraphSummary
{
    size_t numStates = 0;
    size_t numEdges = 0;
    size_t maxOutDegree = 0;
    double meanOutDegree = 0.0;
    size_t numSinkStates = 0;  ///< states with no out-edges
    size_t numSccs = 0;
    size_t largestScc = 0;
};

/** Compute a summary of @p graph. */
GraphSummary summarize(const StateGraph &graph);

/** Render @p summary as a printable block. */
std::string renderSummary(const GraphSummary &summary);

/**
 * Order-sensitive structural fingerprint of a graph: an FNV-1a hash
 * over every edge record (in id order) and every retained packed
 * state (in id order). Two graphs fingerprint equal iff the same
 * states and edges were produced in the same order — the equality the
 * enumerator guarantees across step kernels and worker counts.
 */
uint64_t fingerprint(const StateGraph &graph);

} // namespace archval::graph

#endif // ARCHVAL_GRAPH_STATE_GRAPH_HH

/**
 * @file
 * Chinese Postman lower bound and Euler-tour construction.
 *
 * The paper (Section 3.3) notes that a minimal transition tour of a
 * non-symmetric strongly-connected graph is the Chinese Postman
 * Problem [EJ72], solvable in polynomial time, but deliberately uses
 * the cheaper greedy DFS+BFS scheme instead. This module provides the
 * optimal baseline so the overhead of the greedy scheme can be
 * measured (bench_tour_ablation).
 *
 * Enumerated state graphs are reset-rooted and generally not strongly
 * connected (some edges exist only out of reset). We therefore solve
 * the *resettable* variant: the simulator may return to reset at any
 * time at the cost of one virtual transition, which models starting a
 * new trace. Virtual reset returns make the reachable graph strongly
 * connected, so the postman augmentation always exists.
 */

#ifndef ARCHVAL_GRAPH_POSTMAN_HH
#define ARCHVAL_GRAPH_POSTMAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/state_graph.hh"

namespace archval::graph
{

/** Result of the postman augmentation. */
struct PostmanResult
{
    /** How many times each real edge must be traversed (>= 1). */
    std::vector<uint32_t> multiplicity;

    /** Virtual state->reset returns used (trace restarts). */
    uint64_t resetReturns = 0;

    /** Total traversals of real edges (sum of multiplicity). */
    uint64_t totalTraversals = 0;

    /** Lower-bound tour length including virtual returns. */
    uint64_t tourLength = 0;
};

/**
 * Solve the resettable directed Chinese Postman Problem on @p graph.
 *
 * Balances in/out degree using successive BFS shortest paths (all
 * real edges cost 1; the virtual return to reset costs 1).
 *
 * @param graph Reset-rooted state graph.
 * @return the augmentation; multiplicity[e] >= 1 for every edge.
 */
PostmanResult solveResettablePostman(const StateGraph &graph);

/**
 * Build a closed Euler tour over the multigraph defined by
 * @p multiplicity (each edge e appears multiplicity[e] times) plus
 * virtual reset returns, starting and ending at reset, using
 * Hierholzer's algorithm.
 *
 * @param graph The underlying graph.
 * @param result A balanced augmentation from solveResettablePostman.
 * @return sequence of edge ids; a value of UINT32_MAX denotes a
 *         virtual return to reset (a trace boundary).
 */
std::vector<EdgeId> hierholzerTour(const StateGraph &graph,
                                   const PostmanResult &result);

/** Sentinel edge id marking a virtual return to reset in a tour. */
constexpr EdgeId resetReturnEdge = UINT32_MAX;

/**
 * Verify that @p tour is a closed walk from reset covering each edge
 * e exactly multiplicity[e] times. @return empty string on success.
 */
std::string checkPostmanTour(const StateGraph &graph,
                             const PostmanResult &result,
                             const std::vector<EdgeId> &tour);

} // namespace archval::graph

#endif // ARCHVAL_GRAPH_POSTMAN_HH

/**
 * @file
 * Transition-tour generation over a state graph (paper Section 3.3).
 *
 * Implements the Figure 3.3 algorithm verbatim: a greedy depth-first
 * traversal that marks edges covered as it goes; when no untraversed
 * edge leaves the current state, a breadth-first "explore" finds the
 * nearest state that still has one and the shortest path to it is
 * appended to the tour (re-traversing edges is cheap in simulation,
 * backtracking is not). When nothing is reachable, a new trace is
 * started from reset. An optional per-trace instruction limit splits
 * long traces so any bug can be re-reached quickly (Table 3.3).
 */

#ifndef ARCHVAL_GRAPH_TOUR_HH
#define ARCHVAL_GRAPH_TOUR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/state_graph.hh"

namespace archval::graph
{

/** One reset-rooted trace: a walk in the graph starting at reset. */
struct Trace
{
    std::vector<EdgeId> edges; ///< edges in traversal order
    uint64_t instructions = 0; ///< total instructions in the trace
    bool limitTerminated = false; ///< cut by the per-trace limit
};

/** Tour generation options. */
struct TourOptions
{
    /** Per-trace instruction limit; 0 disables (paper compares
     *  unlimited vs a 10,000-instruction limit). */
    uint64_t maxInstructionsPerTrace = 0;

    /**
     * With a nonzero limit, emit each generated trace's limit-spaced
     * nested prefixes instead of cutting the walk: every emitted
     * trace re-traverses the tour from reset and extends it by up to
     * one limit's worth of new instructions, so consecutive traces
     * share their entire stem. Under harness::ReplayEngine's
     * checkpoint cache the batch then simulates each stem once (each
     * trace resumes from its predecessor's snapshot) while any bug
     * remains re-reachable from the nearest checkpoint within one
     * limit. Total batch instructions grow roughly quadratically
     * with the trace count — meant for checkpointed replay, not
     * sequential simulation.
     */
    bool nestedPrefixSplits = false;
};

/** Statistics matching the paper's Table 3.3 rows. */
struct TourStats
{
    uint64_t numTraces = 0;
    uint64_t totalEdgeTraversals = 0;
    uint64_t totalInstructions = 0;
    uint64_t longestTraceEdges = 0;
    uint64_t longestTraceInstructions = 0;
    uint64_t tracesTerminatedByLimit = 0;
    double generationSeconds = 0.0;

    /** Render as an aligned table next to the paper's values. */
    std::string render() const;
};

/**
 * Generates a covering set of reset-rooted traces whose union
 * traverses every edge of the graph at least once.
 */
class TourGenerator
{
  public:
    /**
     * @param graph Graph to cover (must outlive the generator).
     * @param options Generation options.
     */
    explicit TourGenerator(const StateGraph &graph,
                           TourOptions options = {});

    /**
     * Run the Figure 3.3 algorithm.
     * @return traces whose union covers every edge.
     */
    std::vector<Trace> run();

    /** @return statistics of the completed run. */
    const TourStats &stats() const { return stats_; }

  private:
    /** Greedy DFS from @p state; appends covered edges to @p trace.
     *  @return the state where no untraversed edge was available. */
    StateId traverseDfs(StateId state, Trace &trace);

    /** Explore phase: route from @p state to a state that still has
     *  an untraversed out-edge, appending the connecting path to
     *  @p trace.
     *
     *  Figure 3.3 breadth-first-searches from every stuck point; on
     *  large graphs that is quadratic (very plausibly the dominant
     *  term in the paper's 161,159-second generation time). This
     *  implementation instead routes *via reset* along two static
     *  trees computed once — a reverse-BFS in-tree toward reset and
     *  a forward-BFS tree from reset — consuming work states in
     *  increasing depth order. Paths are a constant factor longer
     *  (bounded by twice the graph's BFS depth) but re-traversal is
     *  exactly the cost the paper calls cheap, and generation
     *  becomes linear in the graph size.
     *
     *  @return the reached state, or invalidState when reset cannot
     *  be re-reached from @p state (a new trace must start). */
    StateId traverseBfs(StateId state, Trace &trace);

    /** Build the two static routing trees (once per run). */
    void buildStaticRoutes();

    /** @return the shallowest state that still has untraversed
     *  out-edges, or invalidState when none remain. */
    StateId nextWorkState();

    /** @return true when @p state has an untraversed out-edge
     *  (advances its scan pointer past covered edges). */
    bool hasUncovered(StateId state);

    /** Mark @p edge traversed; update coverage bookkeeping. */
    void coverEdge(EdgeId edge);

    /** Append @p edge to @p trace, covering it if still uncovered. */
    void takeEdge(EdgeId edge, Trace &trace);

    /** @return true when @p trace is at or past the instruction
     *  limit. */
    bool atLimit(const Trace &trace) const;

    const StateGraph &graph_;
    TourOptions options_;
    TourStats stats_;

    std::vector<bool> covered_;
    /** Per-state index of the first possibly-uncovered out-edge
     *  (advances monotonically; makes repeated DFS linear). */
    std::vector<uint32_t> nextUncovered_;
    uint64_t remainingUncovered_ = 0;

    /** Static routing (built once per run). @{ */
    std::vector<EdgeId> toResetEdge_;   ///< first hop toward reset
    std::vector<EdgeId> fromResetEdge_; ///< BFS-tree edge into state
    std::vector<StateId> depthOrder_;   ///< states by BFS depth
    size_t workCursor_ = 0;             ///< scan position
    /** @} */

    static constexpr EdgeId invalidEdge = UINT32_MAX;
};

/**
 * Verify that @p traces cover every edge of @p graph, are connected
 * walks, and start at reset. @return empty string on success, else a
 * description of the first violation (used by tests and benches).
 */
std::string checkTourCoverage(const StateGraph &graph,
                              const std::vector<Trace> &traces);

} // namespace archval::graph

#endif // ARCHVAL_GRAPH_TOUR_HH

#include "elaborate.hh"

#include <map>

#include "support/strings.hh"

namespace archval::hdl
{

namespace
{

struct ElabError
{
    std::string message;
};

[[noreturn]] void
elabFail(size_t line, const std::string &msg)
{
    throw ElabError{formatString("line %zu: %s", line, msg.c_str())};
}

using ParamEnv = std::map<std::string, uint64_t>;

/** Constant-fold an expression over parameters only. */
uint64_t
constEval(const Expr &expr, const ParamEnv &params)
{
    switch (expr.kind) {
      case ExprKind::Literal:
        return expr.value;
      case ExprKind::Identifier: {
        auto it = params.find(expr.name);
        if (it == params.end())
            elabFail(expr.line, "'" + expr.name +
                                    "' is not a parameter; widths and "
                                    "parameter values must be "
                                    "constant");
        return it->second;
      }
      case ExprKind::Unary: {
        uint64_t a = constEval(*expr.args[0], params);
        if (expr.op == "!")
            return !a;
        if (expr.op == "~")
            return ~a;
        if (expr.op == "-")
            return static_cast<uint64_t>(-static_cast<int64_t>(a));
        elabFail(expr.line, "unsupported constant unary " + expr.op);
      }
      case ExprKind::Binary: {
        uint64_t a = constEval(*expr.args[0], params);
        uint64_t b = constEval(*expr.args[1], params);
        const std::string &op = expr.op;
        if (op == "+")
            return a + b;
        if (op == "-")
            return a - b;
        if (op == "<<")
            return b >= 64 ? 0 : a << b;
        if (op == ">>")
            return b >= 64 ? 0 : a >> b;
        if (op == "==")
            return a == b;
        if (op == "!=")
            return a != b;
        if (op == "<")
            return a < b;
        if (op == ">")
            return a > b;
        if (op == "&")
            return a & b;
        if (op == "|")
            return a | b;
        if (op == "^")
            return a ^ b;
        elabFail(expr.line, "unsupported constant binary " + op);
      }
      case ExprKind::Ternary:
        return constEval(*expr.args[0], params)
                   ? constEval(*expr.args[1], params)
                   : constEval(*expr.args[2], params);
      default:
        elabFail(expr.line, "unsupported constant expression");
    }
}

uint64_t
constEvalOrSelf(const Expr &expr, const ParamEnv &params, size_t arg)
{
    return constEval(*expr.args[arg], params);
}

/** Rewrites identifiers: parameters fold to literals, signal names
 *  get the instance prefix. */
ExprPtr
rewriteExpr(const Expr &expr, const std::string &prefix,
            const ParamEnv &params)
{
    if (expr.kind == ExprKind::Identifier) {
        auto it = params.find(expr.name);
        if (it != params.end()) {
            auto lit = std::make_unique<Expr>();
            lit->kind = ExprKind::Literal;
            lit->value = it->second;
            lit->line = expr.line;
            return lit;
        }
        auto node = cloneExpr(expr);
        node->name = prefix + expr.name;
        return node;
    }

    auto node = std::make_unique<Expr>();
    node->kind = expr.kind;
    node->value = expr.value;
    node->literalWidth = expr.literalWidth;
    node->op = expr.op;
    node->msb = expr.msb;
    node->lsb = expr.lsb;
    node->line = expr.line;
    node->name = expr.name;

    if (expr.kind == ExprKind::Select) {
        node->name = prefix + expr.name;
        // Fold select indices (they may reference parameters).
        node->msb = static_cast<int>(constEvalOrSelf(expr, params, 0));
        node->lsb = expr.args.size() > 1
                        ? static_cast<int>(
                              constEvalOrSelf(expr, params, 1))
                        : node->msb;
        return node;
    }

    for (const auto &arg : expr.args)
        node->args.push_back(rewriteExpr(*arg, prefix, params));
    return node;
}

/** Statement rewriting with prefixing and parameter folding. */
StmtPtr
rewriteStmt(const Stmt &stmt, const std::string &prefix,
            const ParamEnv &params)
{
    auto node = std::make_unique<Stmt>();
    node->kind = stmt.kind;
    node->nonBlocking = stmt.nonBlocking;
    node->line = stmt.line;
    node->targetMsb = stmt.targetMsb;
    node->targetLsb = stmt.targetLsb;
    if (!stmt.target.empty())
        node->target = prefix + stmt.target;
    if (stmt.rhs)
        node->rhs = rewriteExpr(*stmt.rhs, prefix, params);
    if (stmt.condition)
        node->condition = rewriteExpr(*stmt.condition, prefix, params);
    if (stmt.thenStmt)
        node->thenStmt = rewriteStmt(*stmt.thenStmt, prefix, params);
    if (stmt.elseStmt)
        node->elseStmt = rewriteStmt(*stmt.elseStmt, prefix, params);
    if (stmt.subject)
        node->subject = rewriteExpr(*stmt.subject, prefix, params);
    for (const auto &arm : stmt.arms) {
        CaseArm arm_copy;
        for (const auto &label : arm.labels) {
            // Case labels must be constants; fold them now.
            auto lit = std::make_unique<Expr>();
            lit->kind = ExprKind::Literal;
            lit->value = constEval(*label, params);
            lit->line = label->line;
            arm_copy.labels.push_back(std::move(lit));
        }
        if (arm.body)
            arm_copy.body = rewriteStmt(*arm.body, prefix, params);
        node->arms.push_back(std::move(arm_copy));
    }
    for (const auto &child : stmt.body)
        node->body.push_back(rewriteStmt(*child, prefix, params));
    return node;
}

/** Recursive flattener. */
class Flattener
{
  public:
    Flattener(const Design &design, ElabDesign &out)
        : design_(design), out_(out)
    {
    }

    void
    instantiate(const Module &module, const std::string &prefix,
                ParamEnv params, bool is_top, unsigned depth)
    {
        if (depth > 16)
            elabFail(module.line, "instantiation too deep (cycle?)");

        // Parameter defaults, evaluated with overrides already in
        // the environment taking precedence.
        for (const auto &param : module.params) {
            if (!params.count(param.name))
                params[param.name] = constEval(*param.value, params);
        }

        // Nets.
        for (const auto &net : module.nets) {
            ElabNet elab;
            elab.name = prefix + net.name;
            elab.kind = net.kind;
            elab.line = net.line;
            elab.topPort = is_top && (net.kind == NetKind::Input ||
                                      net.kind == NetKind::Output);
            if (net.msbExpr) {
                uint64_t msb = constEval(*net.msbExpr, params);
                uint64_t lsb = constEval(*net.lsbExpr, params);
                if (lsb > msb || msb - lsb + 1 > 64)
                    elabFail(net.line, "bad range on " + net.name);
                elab.width = static_cast<unsigned>(msb - lsb + 1);
            } else {
                elab.width = 1;
            }
            out_.nets.push_back(std::move(elab));
        }

        // Assigns.
        for (const auto &assign : module.assigns) {
            ElabAssign elab;
            elab.target = prefix + assign.target;
            elab.rhs = rewriteExpr(*assign.rhs, prefix, params);
            elab.translated = assign.translated;
            elab.line = assign.line;
            out_.assigns.push_back(std::move(elab));
        }

        // Always blocks.
        for (const auto &block : module.always) {
            ElabAlways elab;
            elab.sequential = block.sequential;
            elab.body = rewriteStmt(*block.body, prefix, params);
            elab.translated = block.translated;
            elab.line = block.line;
            out_.always.push_back(std::move(elab));
        }

        // Annotations.
        for (const auto &ann : module.annotations) {
            Annotation elab = ann;
            elab.name = prefix + ann.name;
            out_.annotations.push_back(std::move(elab));
        }

        // Instances: child nets live under "prefix.inst."; port
        // connections become continuous assigns.
        for (const auto &instance : module.instances) {
            const Module *child = design_.findModule(
                instance.moduleName);
            if (!child) {
                elabFail(instance.line, "unknown module '" +
                                            instance.moduleName + "'");
            }
            std::string child_prefix =
                prefix + instance.instanceName + ".";

            ParamEnv child_params;
            for (const auto &[name, expr] : instance.paramOverrides)
                child_params[name] = constEval(*expr, params);

            instantiate(*child, child_prefix, child_params, false,
                        depth + 1);

            for (const auto &[port, expr] : instance.connections) {
                // Find the port's direction in the child module.
                const NetDecl *port_decl = nullptr;
                for (const auto &net : child->nets) {
                    if (net.name == port) {
                        port_decl = &net;
                        break;
                    }
                }
                if (!port_decl) {
                    elabFail(instance.line,
                             "unknown port '" + port + "' on " +
                                 instance.moduleName);
                }
                if (port_decl->kind == NetKind::Input) {
                    ElabAssign bind;
                    bind.target = child_prefix + port;
                    bind.rhs = rewriteExpr(*expr, prefix, params);
                    bind.line = instance.line;
                    out_.assigns.push_back(std::move(bind));
                } else {
                    // Output (or output reg): the connection must be
                    // a plain identifier in the parent.
                    if (expr->kind != ExprKind::Identifier) {
                        elabFail(instance.line,
                                 "output port '" + port +
                                     "' must connect to a plain "
                                     "identifier");
                    }
                    ElabAssign bind;
                    bind.target = prefix + expr->name;
                    auto ref = std::make_unique<Expr>();
                    ref->kind = ExprKind::Identifier;
                    ref->name = child_prefix + port;
                    ref->line = instance.line;
                    bind.rhs = std::move(ref);
                    bind.line = instance.line;
                    out_.assigns.push_back(std::move(bind));
                }
            }
        }
    }

  private:
    const Design &design_;
    ElabDesign &out_;
};

} // namespace

const ElabNet *
ElabDesign::findNet(const std::string &name) const
{
    for (const auto &net : nets) {
        if (net.name == name)
            return &net;
    }
    return nullptr;
}

Result<ElabDesign>
elaborate(const Design &design, const std::string &top)
{
    const Module *top_module = design.findModule(top);
    if (!top_module) {
        return Result<ElabDesign>::error("no module named '" + top +
                                         "'");
    }
    try {
        ElabDesign out;
        out.top = top;
        Flattener flattener(design, out);
        flattener.instantiate(*top_module, "", {}, true, 0);
        return out;
    } catch (const ElabError &error) {
        return Result<ElabDesign>::error(error.message);
    }
}

} // namespace archval::hdl

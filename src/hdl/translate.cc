#include "translate.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "compile/fsm_spec.hh"
#include "hdl/parser.hh"
#include "support/strings.hh"

namespace archval::hdl
{

namespace
{

struct XlatError
{
    std::string message;
};

[[noreturn]] void
xlatFail(size_t line, const std::string &msg)
{
    throw XlatError{formatString("line %zu: %s", line, msg.c_str())};
}

uint64_t
maskFor(unsigned width)
{
    return width >= 64 ? ~uint64_t(0)
                       : (uint64_t(1) << width) - 1;
}

ExprPtr
makeLiteral(uint64_t value)
{
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::Literal;
    node->value = value;
    return node;
}

ExprPtr
makeIdentifier(const std::string &name)
{
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::Identifier;
    node->name = name;
    return node;
}

ExprPtr
makeBinary(const char *op, ExprPtr a, ExprPtr b)
{
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::Binary;
    node->op = op;
    node->args.push_back(std::move(a));
    node->args.push_back(std::move(b));
    return node;
}

ExprPtr
makeTernary(ExprPtr cond, ExprPtr then_e, ExprPtr else_e)
{
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::Ternary;
    node->args.push_back(std::move(cond));
    node->args.push_back(std::move(then_e));
    node->args.push_back(std::move(else_e));
    return node;
}

/** Collect identifier names referenced by an expression. */
void
collectRefs(const Expr &expr, std::set<std::string> &refs)
{
    if (expr.kind == ExprKind::Identifier ||
        expr.kind == ExprKind::Select)
        refs.insert(expr.name);
    for (const auto &arg : expr.args)
        collectRefs(*arg, refs);
}

} // namespace

/** Interpreter state of a translated model. */
struct HdlModel::Impl
{
    enum class Sym
    {
        State,
        Choice,
        Comb,
        Constant, ///< tied-off nets (e.g. a reset port)
    };

    struct NetInfo
    {
        Sym sym;
        size_t index = 0; ///< state var / choice var / comb slot
        unsigned width = 1;
        uint64_t constant = 0;
    };

    struct CombNode
    {
        std::string name;
        ExprPtr expr;
        unsigned width;
        size_t slot;
    };

    std::string top;
    std::vector<fsm::StateVarInfo> stateVars;
    std::vector<fsm::ChoiceVarInfo> choiceVars;
    fsm::StateLayout layout;
    std::map<std::string, NetInfo> nets;
    std::vector<CombNode> comb; ///< topological order
    std::vector<ExprPtr> nextExprs; ///< per state var
    std::string instrNet;
    std::shared_ptr<const compile::FsmSpec> spec; ///< compiled form

    unsigned
    widthOf(const std::string &name) const
    {
        auto it = nets.find(name);
        return it == nets.end() ? 64 : it->second.width;
    }

    unsigned
    exprWidth(const Expr &expr) const
    {
        switch (expr.kind) {
          case ExprKind::Literal:
            return expr.literalWidth > 0
                       ? static_cast<unsigned>(expr.literalWidth)
                       : 32;
          case ExprKind::Identifier:
            return widthOf(expr.name);
          case ExprKind::Select:
            return static_cast<unsigned>(expr.msb - expr.lsb + 1);
          case ExprKind::Unary:
            if (expr.op == "!" || expr.op == "&" || expr.op == "|" ||
                expr.op == "^")
                return 1;
            return exprWidth(*expr.args[0]);
          case ExprKind::Binary: {
            const std::string &op = expr.op;
            if (op == "==" || op == "!=" || op == "<" || op == "<=" ||
                op == ">" || op == ">=" || op == "&&" || op == "||")
                return 1;
            if (op == "<<" || op == ">>")
                return exprWidth(*expr.args[0]);
            return std::max(exprWidth(*expr.args[0]),
                            exprWidth(*expr.args[1]));
          }
          case ExprKind::Ternary:
            return std::max(exprWidth(*expr.args[1]),
                            exprWidth(*expr.args[2]));
          case ExprKind::Concat: {
            unsigned total = 0;
            for (const auto &arg : expr.args)
                total += exprWidth(*arg);
            return std::min(total, 64u);
          }
        }
        return 64;
    }

    struct EvalCtx
    {
        const BitVec *state;
        const fsm::Choice *choice;
        const std::vector<uint64_t> *combVals;
    };

    uint64_t
    readNet(const std::string &name, const EvalCtx &ctx) const
    {
        auto it = nets.find(name);
        if (it == nets.end())
            xlatFail(0, "reference to unknown net '" + name + "'");
        const NetInfo &info = it->second;
        switch (info.sym) {
          case Sym::State:
            return layout.get(*ctx.state, info.index);
          case Sym::Choice:
            return (*ctx.choice)[info.index];
          case Sym::Comb:
            return (*ctx.combVals)[info.index];
          case Sym::Constant:
            return info.constant;
        }
        return 0;
    }

    uint64_t
    eval(const Expr &expr, const EvalCtx &ctx) const
    {
        switch (expr.kind) {
          case ExprKind::Literal:
            return expr.value;
          case ExprKind::Identifier:
            return readNet(expr.name, ctx);
          case ExprKind::Select: {
            uint64_t base = readNet(expr.name, ctx);
            unsigned width =
                static_cast<unsigned>(expr.msb - expr.lsb + 1);
            return (base >> expr.lsb) & maskFor(width);
          }
          case ExprKind::Unary: {
            uint64_t a = eval(*expr.args[0], ctx);
            unsigned aw = exprWidth(*expr.args[0]);
            if (expr.op == "!")
                return !a;
            if (expr.op == "~")
                return ~a & maskFor(aw);
            if (expr.op == "-")
                return (~a + 1) & maskFor(aw);
            if (expr.op == "&")
                return a == maskFor(aw);
            if (expr.op == "|")
                return a != 0;
            if (expr.op == "^")
                return __builtin_popcountll(a) & 1;
            xlatFail(expr.line, "bad unary op " + expr.op);
          }
          case ExprKind::Binary: {
            const std::string &op = expr.op;
            if (op == "&&")
                return eval(*expr.args[0], ctx) &&
                       eval(*expr.args[1], ctx);
            if (op == "||")
                return eval(*expr.args[0], ctx) ||
                       eval(*expr.args[1], ctx);
            uint64_t a = eval(*expr.args[0], ctx);
            uint64_t b = eval(*expr.args[1], ctx);
            unsigned w = exprWidth(expr);
            if (op == "+")
                return (a + b) & maskFor(w);
            if (op == "-")
                return (a - b) & maskFor(w);
            if (op == "<<")
                return b >= 64 ? 0 : (a << b) & maskFor(w);
            if (op == ">>")
                return b >= 64 ? 0 : a >> b;
            if (op == "&")
                return a & b;
            if (op == "|")
                return a | b;
            if (op == "^")
                return a ^ b;
            if (op == "==")
                return a == b;
            if (op == "!=")
                return a != b;
            if (op == "<")
                return a < b;
            if (op == "<=")
                return a <= b;
            if (op == ">")
                return a > b;
            if (op == ">=")
                return a >= b;
            xlatFail(expr.line, "bad binary op " + op);
          }
          case ExprKind::Ternary:
            return eval(*expr.args[0], ctx)
                       ? eval(*expr.args[1], ctx)
                       : eval(*expr.args[2], ctx);
          case ExprKind::Concat: {
            uint64_t value = 0;
            for (const auto &arg : expr.args) {
                unsigned aw = exprWidth(*arg);
                value = (value << aw) |
                        (eval(*arg, ctx) & maskFor(aw));
            }
            return value;
          }
        }
        return 0;
    }

    void
    evalComb(const EvalCtx &ctx, std::vector<uint64_t> &vals) const
    {
        for (const CombNode &node : comb) {
            EvalCtx inner{ctx.state, ctx.choice, &vals};
            vals[node.slot] =
                eval(*node.expr, inner) & maskFor(node.width);
        }
    }
};

HdlModel::HdlModel(std::unique_ptr<Impl> impl) : impl_(std::move(impl))
{
}

HdlModel::~HdlModel() = default;

std::string
HdlModel::name() const
{
    return impl_->top;
}

const std::vector<fsm::StateVarInfo> &
HdlModel::stateVars() const
{
    return impl_->stateVars;
}

const std::vector<fsm::ChoiceVarInfo> &
HdlModel::choiceVars() const
{
    return impl_->choiceVars;
}

BitVec
HdlModel::resetState() const
{
    BitVec state(impl_->layout.totalBits());
    for (size_t i = 0; i < impl_->stateVars.size(); ++i)
        impl_->layout.set(state, i, impl_->stateVars[i].resetValue);
    return state;
}

std::optional<fsm::Transition>
HdlModel::next(const BitVec &state, const fsm::Choice &choice) const
{
    std::vector<uint64_t> comb_vals(impl_->comb.size(), 0);
    Impl::EvalCtx ctx{&state, &choice, &comb_vals};
    impl_->evalComb(ctx, comb_vals);

    fsm::Transition t;
    t.next = BitVec(impl_->layout.totalBits());
    for (size_t i = 0; i < impl_->stateVars.size(); ++i) {
        uint64_t value = impl_->eval(*impl_->nextExprs[i], ctx);
        impl_->layout.set(t.next, i,
                          value &
                              maskFor(static_cast<unsigned>(
                                  impl_->stateVars[i].numBits)));
    }
    if (!impl_->instrNet.empty()) {
        t.instructions = static_cast<unsigned>(
            impl_->readNet(impl_->instrNet, ctx));
    }
    return t;
}

uint64_t
HdlModel::evalNet(const std::string &net, const BitVec &state,
                  const fsm::Choice &choice) const
{
    std::vector<uint64_t> comb_vals(impl_->comb.size(), 0);
    Impl::EvalCtx ctx{&state, &choice, &comb_vals};
    impl_->evalComb(ctx, comb_vals);
    return impl_->readNet(net, ctx);
}

std::shared_ptr<const compile::FsmSpec>
HdlModel::compileSpec() const
{
    return impl_->spec;
}

namespace
{

/** Pending symbolic assignments inside an always block. */
using Env = std::map<std::string, ExprPtr>;

Env
copyEnv(const Env &env)
{
    Env out;
    for (const auto &[name, expr] : env)
        out[name] = cloneExpr(*expr);
    return out;
}

/**
 * Substitute pending blocking assignments into an expression
 * (combinational blocks only).
 */
ExprPtr
substitute(const Expr &expr, const Env &env)
{
    if (expr.kind == ExprKind::Identifier) {
        auto it = env.find(expr.name);
        if (it != env.end())
            return cloneExpr(*it->second);
        return cloneExpr(expr);
    }
    if (expr.kind == ExprKind::Select) {
        auto it = env.find(expr.name);
        if (it != env.end()) {
            // (pending >> lsb) & mask
            unsigned width =
                static_cast<unsigned>(expr.msb - expr.lsb + 1);
            ExprPtr shifted = makeBinary(
                ">>", cloneExpr(*it->second),
                makeLiteral(static_cast<uint64_t>(expr.lsb)));
            return makeBinary("&", std::move(shifted),
                              makeLiteral(maskFor(width)));
        }
        return cloneExpr(expr);
    }
    auto node = std::make_unique<Expr>();
    node->kind = expr.kind;
    node->value = expr.value;
    node->literalWidth = expr.literalWidth;
    node->name = expr.name;
    node->op = expr.op;
    node->msb = expr.msb;
    node->lsb = expr.lsb;
    node->line = expr.line;
    for (const auto &arg : expr.args)
        node->args.push_back(substitute(*arg, env));
    return node;
}

/** Desugar a case statement into an if/else chain. */
StmtPtr
desugarCase(const Stmt &stmt)
{
    // Find the default arm (if any) as the innermost else.
    StmtPtr chain;
    for (const auto &arm : stmt.arms) {
        if (arm.labels.empty())
            chain = cloneStmt(*arm.body);
    }
    for (auto it = stmt.arms.rbegin(); it != stmt.arms.rend(); ++it) {
        if (it->labels.empty())
            continue;
        ExprPtr cond;
        for (const auto &label : it->labels) {
            ExprPtr eq = makeBinary("==", cloneExpr(*stmt.subject),
                                    cloneExpr(*label));
            cond = cond ? makeBinary("||", std::move(cond),
                                     std::move(eq))
                        : std::move(eq);
        }
        auto wrapper = std::make_unique<Stmt>();
        wrapper->kind = StmtKind::If;
        wrapper->line = stmt.line;
        wrapper->condition = std::move(cond);
        wrapper->thenStmt = cloneStmt(*it->body);
        wrapper->elseStmt = std::move(chain);
        chain = std::move(wrapper);
    }
    if (!chain) {
        chain = std::make_unique<Stmt>();
        chain->kind = StmtKind::Block;
        chain->line = stmt.line;
    }
    return chain;
}

/** Symbolic executor for one always block. */
class SymbolicExec
{
  public:
    SymbolicExec(bool sequential, const ElabDesign &design,
                 std::set<std::string> &held)
        : sequential_(sequential), design_(design), held_(held)
    {
    }

    void
    exec(const Stmt &stmt, Env &env)
    {
        switch (stmt.kind) {
          case StmtKind::Block:
            for (const auto &child : stmt.body)
                exec(*child, env);
            return;
          case StmtKind::Assign:
            execAssign(stmt, env);
            return;
          case StmtKind::If:
            execIf(stmt, env);
            return;
          case StmtKind::Case: {
            StmtPtr chain = desugarCase(stmt);
            exec(*chain, env);
            return;
          }
        }
    }

  private:
    void
    execAssign(const Stmt &stmt, Env &env)
    {
        if (sequential_ && !stmt.nonBlocking) {
            xlatFail(stmt.line,
                     "sequential blocks must use non-blocking "
                     "assignment (<=)");
        }
        if (!sequential_ && stmt.nonBlocking) {
            xlatFail(stmt.line,
                     "combinational blocks must use blocking "
                     "assignment (=)");
        }

        ExprPtr rhs = sequential_ ? cloneExpr(*stmt.rhs)
                                  : substitute(*stmt.rhs, env);

        if (stmt.targetMsb >= 0) {
            // Read-modify-write for a part-select target.
            ExprPtr base;
            auto it = env.find(stmt.target);
            if (it != env.end()) {
                base = cloneExpr(*it->second);
            } else {
                base = makeIdentifier(stmt.target);
                if (!sequential_)
                    held_.insert(stmt.target);
            }
            unsigned width = static_cast<unsigned>(
                stmt.targetMsb - stmt.targetLsb + 1);
            uint64_t field_mask = maskFor(width)
                                  << stmt.targetLsb;
            ExprPtr cleared = makeBinary(
                "&", std::move(base),
                makeLiteral(~field_mask));
            ExprPtr field = makeBinary(
                "<<",
                makeBinary("&", std::move(rhs),
                           makeLiteral(maskFor(width))),
                makeLiteral(
                    static_cast<uint64_t>(stmt.targetLsb)));
            rhs = makeBinary("|", std::move(cleared),
                             std::move(field));
        }
        env[stmt.target] = std::move(rhs);
    }

    void
    execIf(const Stmt &stmt, Env &env)
    {
        ExprPtr cond = sequential_
                           ? cloneExpr(*stmt.condition)
                           : substitute(*stmt.condition, env);

        Env then_env = copyEnv(env);
        exec(*stmt.thenStmt, then_env);
        Env else_env = copyEnv(env);
        if (stmt.elseStmt)
            exec(*stmt.elseStmt, else_env);

        std::set<std::string> targets;
        for (const auto &[name, expr] : then_env)
            targets.insert(name);
        for (const auto &[name, expr] : else_env)
            targets.insert(name);

        for (const std::string &target : targets) {
            auto pick = [&](Env &branch) -> ExprPtr {
                auto it = branch.find(target);
                if (it != branch.end())
                    return std::move(it->second);
                // Not assigned on this path: hold the previous
                // value. In a combinational block this is the
                // implicit latch of the paper's footnote.
                if (!sequential_)
                    held_.insert(target);
                return makeIdentifier(target);
            };
            ExprPtr t = pick(then_env);
            ExprPtr e = pick(else_env);
            env[target] = makeTernary(cloneExpr(*cond), std::move(t),
                                      std::move(e));
        }
    }

    bool sequential_;
    const ElabDesign &design_;
    std::set<std::string> &held_;
};

/**
 * Lower the translated expression network into a compile::FsmSpec.
 *
 * Every node replicates the interpreter's semantics exactly —
 * including its width rules (`Impl::exprWidth`) and where masking
 * does and does not happen — so compiled kernels are bit-identical to
 * `HdlModel::next` by construction. Select desugars to shift+mask,
 * concat to shift/or folds, reductions to compares/parity; `&&`/`||`
 * evaluate eagerly, which is sound because every operand is
 * side-effect-free.
 */
class SpecLowering
{
  public:
    SpecLowering(const HdlModel::Impl &impl, compile::FsmSpec &spec)
        : impl_(impl), spec_(spec), builder_(spec)
    {
    }

    void
    run()
    {
        spec_.name = impl_.top;
        spec_.stateVars = impl_.stateVars;
        spec_.choiceVars = impl_.choiceVars;

        using Sym = HdlModel::Impl::Sym;
        for (const auto &[name, info] : impl_.nets) {
            switch (info.sym) {
              case Sym::State:
                netNode_[name] = builder_.stateRef(
                    static_cast<uint32_t>(info.index));
                break;
              case Sym::Choice:
                netNode_[name] = builder_.choiceRef(
                    static_cast<uint32_t>(info.index));
                break;
              case Sym::Constant:
                netNode_[name] = builder_.constant(info.constant);
                break;
              case Sym::Comb:
                break; // defined below, in dependency order
            }
        }
        // Comb nets are masked to their declared width on
        // definition, exactly like Impl::evalComb.
        for (const auto &node : impl_.comb) {
            netNode_[node.name] =
                builder_.mask(lower(*node.expr), node.width);
        }
        for (size_t i = 0; i < impl_.stateVars.size(); ++i) {
            spec_.nextRoots.push_back(builder_.mask(
                lower(*impl_.nextExprs[i]),
                static_cast<unsigned>(impl_.stateVars[i].numBits)));
        }
        if (!impl_.instrNet.empty())
            spec_.instrRoot = netRef(impl_.instrNet, 0);
        // No legality root: every HDL choice tuple is a legal
        // environment action (next() never returns nullopt).
    }

  private:
    uint32_t
    netRef(const std::string &name, size_t line)
    {
        auto it = netNode_.find(name);
        if (it == netNode_.end())
            xlatFail(line, "compile: unresolved net '" + name + "'");
        return it->second;
    }

    uint32_t
    lower(const Expr &expr)
    {
        using compile::SpecOp;
        switch (expr.kind) {
          case ExprKind::Literal:
            return builder_.constant(expr.value);
          case ExprKind::Identifier:
            return netRef(expr.name, expr.line);
          case ExprKind::Select: {
            unsigned width =
                static_cast<unsigned>(expr.msb - expr.lsb + 1);
            uint32_t shifted = builder_.binary(
                SpecOp::Shr, netRef(expr.name, expr.line),
                builder_.constant(
                    static_cast<uint64_t>(expr.lsb)));
            return builder_.mask(shifted, width);
          }
          case ExprKind::Unary: {
            uint32_t a = lower(*expr.args[0]);
            unsigned aw = impl_.exprWidth(*expr.args[0]);
            if (expr.op == "!")
                return builder_.unary(SpecOp::Not, a);
            if (expr.op == "~")
                return builder_.unary(SpecOp::BitNot, a, aw);
            if (expr.op == "-")
                return builder_.unary(SpecOp::Neg, a, aw);
            if (expr.op == "&")
                return builder_.binary(
                    SpecOp::Eq, a, builder_.constant(maskFor(aw)));
            if (expr.op == "|")
                return builder_.binary(SpecOp::Ne, a,
                                       builder_.constant(0));
            if (expr.op == "^")
                return builder_.unary(SpecOp::RedXor, a);
            xlatFail(expr.line, "compile: bad unary op " + expr.op);
          }
          case ExprKind::Binary: {
            const std::string &op = expr.op;
            uint32_t a = lower(*expr.args[0]);
            uint32_t b = lower(*expr.args[1]);
            if (op == "&&")
                return builder_.binary(SpecOp::LAnd, a, b);
            if (op == "||")
                return builder_.binary(SpecOp::LOr, a, b);
            unsigned w = impl_.exprWidth(expr);
            if (op == "+")
                return builder_.binary(SpecOp::Add, a, b, w);
            if (op == "-")
                return builder_.binary(SpecOp::Sub, a, b, w);
            if (op == "<<")
                return builder_.binary(SpecOp::Shl, a, b, w);
            if (op == ">>")
                return builder_.binary(SpecOp::Shr, a, b);
            if (op == "&")
                return builder_.binary(SpecOp::And, a, b);
            if (op == "|")
                return builder_.binary(SpecOp::Or, a, b);
            if (op == "^")
                return builder_.binary(SpecOp::Xor, a, b);
            if (op == "==")
                return builder_.binary(SpecOp::Eq, a, b);
            if (op == "!=")
                return builder_.binary(SpecOp::Ne, a, b);
            if (op == "<")
                return builder_.binary(SpecOp::Lt, a, b);
            if (op == "<=")
                return builder_.binary(SpecOp::Le, a, b);
            if (op == ">")
                return builder_.binary(SpecOp::Gt, a, b);
            if (op == ">=")
                return builder_.binary(SpecOp::Ge, a, b);
            xlatFail(expr.line, "compile: bad binary op " + op);
          }
          case ExprKind::Ternary:
            return builder_.mux(lower(*expr.args[0]),
                                lower(*expr.args[1]),
                                lower(*expr.args[2]));
          case ExprKind::Concat: {
            // value = (value << aw) | (arg & maskFor(aw)), folded
            // left to right; the shift of the accumulator is raw
            // (unmasked), exactly as in Impl::eval.
            uint32_t acc = compile::kNoNode;
            for (const auto &arg : expr.args) {
                unsigned aw = impl_.exprWidth(*arg);
                uint32_t part = builder_.mask(lower(*arg), aw);
                if (acc == compile::kNoNode) {
                    acc = part; // (0 << aw) | part == part
                    continue;
                }
                uint32_t shifted = builder_.binary(
                    SpecOp::Shl, acc,
                    builder_.constant(aw));
                acc = builder_.binary(SpecOp::Or, shifted, part);
            }
            return acc == compile::kNoNode ? builder_.constant(0)
                                           : acc;
          }
        }
        xlatFail(expr.line, "compile: bad expression kind");
    }

    const HdlModel::Impl &impl_;
    compile::FsmSpec &spec_;
    compile::SpecBuilder builder_;
    std::map<std::string, uint32_t> netNode_;
};

} // namespace

Result<TranslateResult>
translate(const ElabDesign &design)
{
    try {
        auto impl = std::make_unique<HdlModel::Impl>();
        impl->top = design.top;
        TranslateResult result;

        // Annotation lookups.
        std::map<std::string, uint64_t> state_resets;
        std::map<std::string, uint64_t> input_cards;
        std::set<std::string> state_annotated;
        for (const auto &ann : design.annotations) {
            switch (ann.kind) {
              case Annotation::Kind::State:
                state_annotated.insert(ann.name);
                if (ann.hasValue)
                    state_resets[ann.name] = ann.value;
                break;
              case Annotation::Kind::Input:
                input_cards[ann.name] = ann.hasValue ? ann.value : 0;
                break;
              case Annotation::Kind::Instr:
                impl->instrNet = ann.name;
                break;
            }
        }

        // Symbolically execute always blocks.
        Env seq_env;
        Env comb_env;
        std::set<std::string> held;
        for (const auto &block : design.always) {
            if (!block.translated)
                continue;
            std::set<std::string> block_held;
            SymbolicExec exec(block.sequential, design, block_held);
            Env env;
            exec.exec(*block.body, env);
            Env &merged = block.sequential ? seq_env : comb_env;
            for (auto &[target, expr] : env) {
                if (merged.count(target)) {
                    xlatFail(block.line,
                             "'" + target +
                                 "' is assigned by more than one "
                                 "always block");
                }
                merged[target] = std::move(expr);
            }
            held.insert(block_held.begin(), block_held.end());
        }

        // Continuous assigns join the combinational set.
        std::map<std::string, const ExprPtr *> assigns;
        for (const auto &assign : design.assigns) {
            if (!assign.translated)
                continue;
            if (comb_env.count(assign.target) ||
                assigns.count(assign.target)) {
                xlatFail(assign.line, "'" + assign.target +
                                          "' has multiple drivers");
            }
            assigns[assign.target] = &assign.rhs;
        }

        // Classify nets.
        //  State: sequential targets, annotated states, and inferred
        //  combinational latches.
        std::set<std::string> state_names;
        for (const auto &[target, expr] : seq_env)
            state_names.insert(target);
        state_names.insert(state_annotated.begin(),
                           state_annotated.end());
        for (const std::string &latch : held) {
            if (!state_names.count(latch)) {
                state_names.insert(latch);
                result.notes.push_back(
                    "inferred latch on combinational target '" +
                    latch +
                    "' (incomplete assignment); made explicit "
                    "state");
            }
        }

        auto net_width = [&](const std::string &name) -> unsigned {
            const ElabNet *net = design.findNet(name);
            if (!net)
                xlatFail(0, "no declaration for '" + name + "'");
            return net->width;
        };

        for (const std::string &name : state_names) {
            fsm::StateVarInfo info;
            info.name = name;
            info.numBits = net_width(name);
            auto it = state_resets.find(name);
            info.resetValue = it == state_resets.end() ? 0 : it->second;
            impl->nets[name] = {HdlModel::Impl::Sym::State,
                                impl->stateVars.size(),
                                static_cast<unsigned>(info.numBits),
                                0};
            impl->stateVars.push_back(std::move(info));
        }

        // Choice variables: annotated inputs plus unannotated top
        // input ports (clock and reset are tied off).
        auto add_choice = [&](const std::string &name,
                              uint64_t cardinality) {
            fsm::ChoiceVarInfo info;
            info.name = name;
            info.cardinality = static_cast<uint32_t>(cardinality);
            impl->nets[name] = {HdlModel::Impl::Sym::Choice,
                                impl->choiceVars.size(),
                                net_width(name), 0};
            impl->choiceVars.push_back(std::move(info));
        };

        for (const auto &[name, card] : input_cards) {
            unsigned width = net_width(name);
            uint64_t cardinality =
                card > 0 ? card : (uint64_t(1) << std::min(width, 20u));
            if (cardinality > 4096) {
                xlatFail(0, "input '" + name +
                                "' needs an explicit cardinality "
                                "(width too large to enumerate)");
            }
            add_choice(name, cardinality);
        }

        for (const auto &net : design.nets) {
            if (!net.topPort || net.kind != NetKind::Input)
                continue;
            if (impl->nets.count(net.name))
                continue; // already a choice via annotation
            if (net.name == "clk" || net.name == "clock") {
                impl->nets[net.name] = {
                    HdlModel::Impl::Sym::Constant, 0, net.width, 0};
                continue;
            }
            if (net.name == "rst" || net.name == "reset" ||
                net.name == "rst_n" || net.name == "reset_n") {
                // Reset is modeled by the explicit reset state; the
                // wire is tied inactive (0 for active-high, 1 for
                // active-low).
                uint64_t tied =
                    endsWith(net.name, "_n") ? 1 : 0;
                impl->nets[net.name] = {
                    HdlModel::Impl::Sym::Constant, 0, net.width,
                    tied};
                result.notes.push_back("tied off reset port '" +
                                       net.name + "'");
                continue;
            }
            if (net.width > 12) {
                xlatFail(net.line,
                         "top-level input '" + net.name +
                             "' is too wide to enumerate; annotate "
                             "it with a vfsm input cardinality");
            }
            add_choice(net.name, uint64_t(1) << net.width);
            result.notes.push_back(
                "free input '" + net.name + "' enumerates " +
                std::to_string(uint64_t(1) << net.width) +
                " values");
        }

        // Combinational nodes (assigns + complete comb targets).
        struct Pending
        {
            std::string name;
            ExprPtr expr;
        };
        std::vector<Pending> pending;
        for (auto &[target, expr] : comb_env) {
            if (state_names.count(target))
                continue; // latched: handled as state below
            pending.push_back({target, std::move(expr)});
        }
        for (auto &[target, expr] : assigns)
            pending.push_back({target, cloneExpr(**expr)});

        // Register comb slots before sorting (for dependency
        // resolution).
        for (size_t i = 0; i < pending.size(); ++i) {
            if (impl->nets.count(pending[i].name)) {
                xlatFail(0, "'" + pending[i].name +
                                "' is both state/input and "
                                "combinational");
            }
            impl->nets[pending[i].name] = {
                HdlModel::Impl::Sym::Comb, i,
                net_width(pending[i].name), 0};
        }

        // Topological sort of the combinational network.
        std::vector<int> mark(pending.size(), 0); // 0=new 1=open 2=done
        std::vector<size_t> order;
        std::function<void(size_t)> visit = [&](size_t index) {
            if (mark[index] == 2)
                return;
            if (mark[index] == 1) {
                xlatFail(0, "combinational loop through '" +
                                pending[index].name + "'");
            }
            mark[index] = 1;
            std::set<std::string> refs;
            collectRefs(*pending[index].expr, refs);
            for (const std::string &ref : refs) {
                auto it = impl->nets.find(ref);
                if (it == impl->nets.end()) {
                    xlatFail(0, "'" + pending[index].name +
                                    "' references undriven net '" +
                                    ref + "'");
                }
                if (it->second.sym == HdlModel::Impl::Sym::Comb)
                    visit(it->second.index);
            }
            mark[index] = 2;
            order.push_back(index);
        };
        for (size_t i = 0; i < pending.size(); ++i)
            visit(i);

        impl->comb.reserve(order.size());
        for (size_t index : order) {
            HdlModel::Impl::CombNode node;
            node.name = pending[index].name;
            node.expr = std::move(pending[index].expr);
            node.width = impl->nets[node.name].width;
            node.slot = index;
            impl->comb.push_back(std::move(node));
        }

        // Next-state expressions.
        impl->nextExprs.resize(impl->stateVars.size());
        for (size_t i = 0; i < impl->stateVars.size(); ++i) {
            const std::string &name = impl->stateVars[i].name;
            auto seq_it = seq_env.find(name);
            auto comb_it = comb_env.find(name);
            if (seq_it != seq_env.end()) {
                impl->nextExprs[i] = std::move(seq_it->second);
            } else if (comb_it != comb_env.end()) {
                // Inferred latch: its "next" value is the latch
                // function itself.
                impl->nextExprs[i] = std::move(comb_it->second);
            } else {
                impl->nextExprs[i] = makeIdentifier(name);
                result.notes.push_back("state '" + name +
                                       "' is never assigned; holds "
                                       "its reset value");
            }
        }

        // Validate all references in next-state expressions.
        for (const auto &expr : impl->nextExprs) {
            std::set<std::string> refs;
            collectRefs(*expr, refs);
            for (const std::string &ref : refs) {
                if (!impl->nets.count(ref))
                    xlatFail(0, "undriven net '" + ref +
                                    "' referenced by sequential "
                                    "logic");
            }
        }
        if (!impl->instrNet.empty() &&
            !impl->nets.count(impl->instrNet)) {
            xlatFail(0, "vfsm instr net '" + impl->instrNet +
                            "' does not exist");
        }

        impl->layout = fsm::StateLayout(impl->stateVars);

        // Lower the expression network into the compiled-form spec
        // up front: translation already paid for elaboration, and an
        // eager build means compileSpec() can never fail later.
        auto spec = std::make_shared<compile::FsmSpec>();
        SpecLowering(*impl, *spec).run();
        impl->spec = std::move(spec);

        result.model.reset(new HdlModel(std::move(impl)));
        return result;
    } catch (const XlatError &error) {
        return Result<TranslateResult>::error(error.message);
    }
}

Result<TranslateResult>
translateSource(const std::string &source, const std::string &top)
{
    auto design = parse(source);
    if (!design.ok())
        return Result<TranslateResult>::error(design.errorMessage());
    auto elaborated = elaborate(design.value(), top);
    if (!elaborated.ok())
        return Result<TranslateResult>::error(
            elaborated.errorMessage());
    return translate(elaborated.value());
}

} // namespace archval::hdl

/**
 * @file
 * Elaboration: resolve parameters, compute vector widths, and flatten
 * the module hierarchy into a single netlist with dot-separated
 * hierarchical names (instance connections become continuous
 * assigns). The single implicit clock of the synchronous model means
 * posedge clocks are checked for consistency and then dropped.
 */

#ifndef ARCHVAL_HDL_ELABORATE_HH
#define ARCHVAL_HDL_ELABORATE_HH

#include <string>
#include <vector>

#include "hdl/ast.hh"
#include "support/status.hh"

namespace archval::hdl
{

/** Flattened net. */
struct ElabNet
{
    std::string name; ///< hierarchical, e.g. "ctrl.state"
    NetKind kind = NetKind::Wire;
    unsigned width = 1;
    bool topPort = false; ///< input/output of the top module
    size_t line = 0;
};

/** Flattened continuous assign. */
struct ElabAssign
{
    std::string target;
    ExprPtr rhs;
    bool translated = true;
    size_t line = 0;
};

/** Flattened always block. */
struct ElabAlways
{
    bool sequential = false;
    StmtPtr body;
    bool translated = true;
    size_t line = 0;
};

/** Flattened design rooted at one top module. */
struct ElabDesign
{
    std::string top;
    std::vector<ElabNet> nets;
    std::vector<ElabAssign> assigns;
    std::vector<ElabAlways> always;
    std::vector<Annotation> annotations; ///< names hierarchical

    /** @return net by name, or nullptr. */
    const ElabNet *findNet(const std::string &name) const;
};

/**
 * Elaborate @p design with @p top as the root module.
 *
 * @return the flattened design or an error.
 */
Result<ElabDesign> elaborate(const Design &design,
                             const std::string &top);

} // namespace archval::hdl

#endif // ARCHVAL_HDL_ELABORATE_HH

/**
 * @file
 * Recursive-descent parser for the mini-Verilog subset (see ast.hh
 * for the accepted grammar).
 */

#ifndef ARCHVAL_HDL_PARSER_HH
#define ARCHVAL_HDL_PARSER_HH

#include <string>

#include "hdl/ast.hh"
#include "support/status.hh"

namespace archval::hdl
{

/**
 * Parse @p source into a design.
 *
 * @return the design, or an error naming the offending line.
 */
Result<Design> parse(const std::string &source);

} // namespace archval::hdl

#endif // ARCHVAL_HDL_PARSER_HH

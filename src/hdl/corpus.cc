/**
 * @file
 * Built-in annotated-Verilog design corpus. See corpus.hh.
 */

#include "hdl/corpus.hh"

#include "support/status.hh"

namespace archval::hdl
{
namespace
{

/** Two-floor elevator with door timer and request latching. */
const char *elevator = R"(
module elevator(clk, req0, req1);
  input clk;
  input req0;
  input req1;
  reg floor;        // vfsm state floor reset 0
  reg [1:0] mode;   // vfsm state mode reset 0  (0=idle,1=move,2=door)
  reg [1:0] timer;  // vfsm state timer reset 0
  reg pend0;        // vfsm state pend0 reset 0
  reg pend1;        // vfsm state pend1 reset 0

  wire want_here;
  wire want_there;
  assign want_here = (floor == 1'b0 && pend0) ||
                     (floor == 1'b1 && pend1);
  assign want_there = (floor == 1'b0 && pend1) ||
                      (floor == 1'b1 && pend0);

  always @(posedge clk) begin
    if (req0) pend0 <= 1'b1;
    if (req1) pend1 <= 1'b1;

    case (mode)
      2'd0: begin                 // idle
        if (want_here) begin
          mode <= 2'd2;           // open the door here
          timer <= 2'd0;
        end else if (want_there)
          mode <= 2'd1;           // start moving
      end
      2'd1: begin                 // moving (one cycle per floor)
        floor <= !floor;
        mode <= 2'd2;
        timer <= 2'd0;
      end
      2'd2: begin                 // door open, 2-cycle dwell
        if (timer == 2'd1) begin
          if (floor == 1'b0) pend0 <= 1'b0;
          else pend1 <= 1'b0;
          mode <= 2'd0;
        end else
          timer <= timer + 2'd1;
      end
      default: mode <= 2'd0;
    endcase
  end
endmodule
)";

/** Credit-based flow-control sender: a classic protocol FSM. */
const char *creditSender = R"(
module credit_sender(clk, want_send, credit_return);
  input clk;
  input want_send;
  input credit_return;
  parameter MAX = 3;
  reg [1:0] credits;  // vfsm state credits reset 3
  wire can_send;
  assign can_send = credits != 2'd0;  // vfsm instr sent
  wire sent;
  assign sent = want_send && can_send;

  always @(posedge clk) begin
    if (sent && !credit_return)
      credits <= credits - 2'd1;
    else if (!sent && credit_return && credits != MAX)
      credits <= credits + 2'd1;
  end
endmodule
)";

/**
 * Four-channel DMA arbiter: the corpus "largest" design. Twelve state
 * bits and 32 choice combinations per state give wide BFS frontiers
 * (hundreds of states per level), which is what the bit-sliced kernel
 * is built for; the priority encoder, burst arithmetic and completion
 * counter give the bytecode a realistic amount of combinational work.
 */
const char *dmaArbiter = R"(
module dma_arbiter(clk, req0, req1, req2, req3, done);
  input clk;
  input req0;
  input req1;
  input req2;
  input req3;
  input done;
  reg [1:0] grant;   // vfsm state grant reset 0
  reg busy;          // vfsm state busy reset 0
  reg [1:0] burst;   // vfsm state burst reset 0
  reg p0;            // vfsm state p0 reset 0
  reg p1;            // vfsm state p1 reset 0
  reg p2;            // vfsm state p2 reset 0
  reg p3;            // vfsm state p3 reset 0
  reg [2:0] served;  // vfsm state served reset 0

  wire any_pending;
  assign any_pending = p0 || p1 || p2 || p3;
  wire [1:0] pick;   // fixed-priority encoder
  assign pick = p0 ? 2'd0 : (p1 ? 2'd1 : (p2 ? 2'd2 : 2'd3));
  wire beat;
  assign beat = busy && done;  // vfsm instr beat
  wire finished;
  assign finished = beat && burst == 2'd0;

  always @(posedge clk) begin
    if (req0) p0 <= 1'b1;
    if (req1) p1 <= 1'b1;
    if (req2) p2 <= 1'b1;
    if (req3) p3 <= 1'b1;

    if (!busy && any_pending) begin
      grant <= pick;
      busy <= 1'b1;
      burst <= served[1:0] + 2'd1;  // vary burst length over time
    end else if (finished) begin
      busy <= 1'b0;
      served <= served + 3'd1;
      case (grant)
        2'd0: p0 <= 1'b0;
        2'd1: p1 <= 1'b0;
        2'd2: p2 <= 1'b0;
        default: p3 <= 1'b0;
      endcase
    end else if (beat)
      burst <= burst - 2'd1;
  end
endmodule
)";

/**
 * Barrel rotator: rotates an 8-bit pattern by a variable amount each
 * cycle. The data-dependent shift counts exercise the bit-sliced
 * kernel's scalar per-lane fallback (variable shifts cannot be
 * expressed as lane-parallel plane formulas).
 */
const char *barrelRotator = R"(
module barrel_rotator(clk, amt, en);
  input clk;
  input [1:0] amt;
  input en;
  reg [7:0] pattern;  // vfsm state pattern reset 1
  wire [3:0] inv;
  assign inv = 4'd8 - {2'd0, amt};
  wire [7:0] rotated;
  assign rotated = (pattern << amt) | (pattern >> inv);

  always @(posedge clk)
    if (en) pattern <= rotated;
endmodule
)";

} // namespace

const std::vector<CorpusDesign> &
designCorpus()
{
    static const std::vector<CorpusDesign> corpus = {
        {"elevator", "elevator", elevator, false},
        {"credit_sender", "credit_sender", creditSender, false},
        {"dma_arbiter", "dma_arbiter", dmaArbiter, true},
        {"barrel_rotator", "barrel_rotator", barrelRotator, false},
    };
    return corpus;
}

const CorpusDesign &
largestCorpusDesign()
{
    for (const auto &design : designCorpus()) {
        if (design.largest)
            return design;
    }
    fatal("design corpus has no largest entry");
}

Result<TranslateResult>
translateCorpus(const CorpusDesign &design)
{
    return translateSource(design.source, design.top);
}

} // namespace archval::hdl

/**
 * @file
 * Lexer for the synthesizable mini-Verilog subset.
 *
 * The paper's translator accepts a "stylized synthesizable subset of
 * Verilog" with a mostly one-to-one mapping into the synchronous
 * model, plus comment-embedded directives that control translation.
 * This lexer recognizes that subset: identifiers, sized/unsized
 * numeric literals, operators, punctuation, and `// vfsm ...`
 * directive comments (all other comments are skipped).
 */

#ifndef ARCHVAL_HDL_LEXER_HH
#define ARCHVAL_HDL_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.hh"

namespace archval::hdl
{

/** Token kinds. */
enum class TokKind
{
    Identifier, ///< names and keywords (keyword check by text)
    Number,     ///< numeric literal (value + optional size)
    Punct,      ///< operator or punctuation, in text
    Directive,  ///< "// vfsm ..." comment body (without the prefix)
    Eof,
};

/** One token. */
struct Token
{
    TokKind kind = TokKind::Eof;
    std::string text;    ///< identifier / punct / directive body
    uint64_t value = 0;  ///< numeric value for Number
    int width = -1;      ///< declared bit width for sized numbers
    size_t line = 0;     ///< 1-based source line
};

/**
 * Tokenize @p source.
 *
 * @return tokens ending with an Eof token, or an error naming the
 *         offending line.
 */
Result<std::vector<Token>> lex(const std::string &source);

} // namespace archval::hdl

#endif // ARCHVAL_HDL_LEXER_HH

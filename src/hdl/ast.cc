#include "ast.hh"

namespace archval::hdl
{

const Module *
Design::findModule(const std::string &name) const
{
    for (const Module &module : modules) {
        if (module.name == name)
            return &module;
    }
    return nullptr;
}

ExprPtr
cloneExpr(const Expr &expr)
{
    auto copy = std::make_unique<Expr>();
    copy->kind = expr.kind;
    copy->value = expr.value;
    copy->literalWidth = expr.literalWidth;
    copy->name = expr.name;
    copy->op = expr.op;
    copy->msb = expr.msb;
    copy->lsb = expr.lsb;
    copy->line = expr.line;
    copy->args.reserve(expr.args.size());
    for (const auto &arg : expr.args)
        copy->args.push_back(cloneExpr(*arg));
    return copy;
}

StmtPtr
cloneStmt(const Stmt &stmt)
{
    auto copy = std::make_unique<Stmt>();
    copy->kind = stmt.kind;
    copy->target = stmt.target;
    copy->targetMsb = stmt.targetMsb;
    copy->targetLsb = stmt.targetLsb;
    copy->nonBlocking = stmt.nonBlocking;
    copy->line = stmt.line;
    if (stmt.rhs)
        copy->rhs = cloneExpr(*stmt.rhs);
    if (stmt.condition)
        copy->condition = cloneExpr(*stmt.condition);
    if (stmt.thenStmt)
        copy->thenStmt = cloneStmt(*stmt.thenStmt);
    if (stmt.elseStmt)
        copy->elseStmt = cloneStmt(*stmt.elseStmt);
    if (stmt.subject)
        copy->subject = cloneExpr(*stmt.subject);
    for (const auto &arm : stmt.arms) {
        CaseArm arm_copy;
        for (const auto &label : arm.labels)
            arm_copy.labels.push_back(cloneExpr(*label));
        if (arm.body)
            arm_copy.body = cloneStmt(*arm.body);
        copy->arms.push_back(std::move(arm_copy));
    }
    for (const auto &child : stmt.body)
        copy->body.push_back(cloneStmt(*child));
    return copy;
}

} // namespace archval::hdl

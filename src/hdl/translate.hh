/**
 * @file
 * HDL-to-FSM translation — step 1 of the methodology (Figure 3.1).
 *
 * Converts an elaborated design into an enumerable fsm::Model:
 *
 *  - Registers written by sequential always blocks become latched
 *    state variables (reset values from `vfsm state ... reset N`
 *    annotations, default 0).
 *  - Annotated `vfsm input` nets and unconnected top-level input
 *    ports become nondeterministic choice variables: the abstract
 *    blocks that "try every combination of values".
 *  - Continuous assigns and combinational always blocks form the
 *    next-state/output network, evaluated in dependency order;
 *    combinational cycles are an error.
 *  - A combinational target not assigned on every path holds its
 *    previous value: the implicit latch of the paper's footnote 1.
 *    The translator makes it an explicit state variable and reports
 *    it in the translation notes.
 *  - A `vfsm instr <net>` annotation names the per-cycle instruction
 *    count used by the tour generator's trace limits.
 */

#ifndef ARCHVAL_HDL_TRANSLATE_HH
#define ARCHVAL_HDL_TRANSLATE_HH

#include <memory>
#include <string>
#include <vector>

#include "fsm/model.hh"
#include "hdl/elaborate.hh"
#include "support/status.hh"

namespace archval::hdl
{

class HdlModel;

/** Translation result plus diagnostics. */
struct TranslateResult
{
    std::unique_ptr<HdlModel> model;
    std::vector<std::string> notes; ///< inferred latches, defaults
};

/** Translate @p design into an enumerable model. */
Result<TranslateResult> translate(const ElabDesign &design);

/** Convenience: parse + elaborate + translate in one call. */
Result<TranslateResult> translateSource(const std::string &source,
                                        const std::string &top);

/**
 * fsm::Model produced by translation. The interpreter evaluates the
 * combinational network and next-state functions per transition.
 */
class HdlModel : public fsm::Model
{
  public:
    ~HdlModel() override;

    std::string name() const override;
    const std::vector<fsm::StateVarInfo> &stateVars() const override;
    const std::vector<fsm::ChoiceVarInfo> &choiceVars() const override;
    BitVec resetState() const override;
    std::optional<fsm::Transition>
    next(const BitVec &state, const fsm::Choice &choice) const override;

    /**
     * The compiled-form spec of this model, built eagerly at
     * translation time; bit-exact with next() by construction (the
     * spec encodes the interpreter's width/masking rules node by
     * node). See compile/fsm_spec.hh.
     */
    std::shared_ptr<const compile::FsmSpec> compileSpec() const override;

    /**
     * Evaluate a named net for (state, choice) — lets tests inspect
     * outputs of the combinational network.
     */
    uint64_t evalNet(const std::string &net, const BitVec &state,
                     const fsm::Choice &choice) const;

    struct Impl; ///< public so translate.cc internals can name it

  private:
    friend Result<TranslateResult> translate(const ElabDesign &);
    explicit HdlModel(std::unique_ptr<Impl> impl);
    std::unique_ptr<Impl> impl_;
};

} // namespace archval::hdl

#endif // ARCHVAL_HDL_TRANSLATE_HH

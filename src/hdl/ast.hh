/**
 * @file
 * AST for the synthesizable mini-Verilog subset.
 *
 * Supported constructs: module declarations with ports, parameter /
 * input / output / wire / reg declarations (vectors up to 64 bits),
 * continuous assigns, combinational always blocks (@* with blocking
 * assignments), sequential always blocks (@(posedge clk) with
 * non-blocking assignments), if/else, case with default, module
 * instantiation with named connections, and the expression grammar
 * (ternary, logical, bitwise, equality, relational, shift, add,
 * unary, bit/part select, parenthesis, identifiers, literals).
 *
 * vfsm directives annotate the design for translation:
 *   // vfsm state <reg> [reset <value>]   - control state variable
 *   // vfsm input <wire> [<cardinality>]  - abstract free input
 *   // vfsm off / on                      - suspend / resume
 */

#ifndef ARCHVAL_HDL_AST_HH
#define ARCHVAL_HDL_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace archval::hdl
{

/** Expression node kinds. */
enum class ExprKind
{
    Literal,
    Identifier,
    Unary,   ///< ! ~ - & | ^ (reduction for & | ^)
    Binary,  ///< arithmetic / logical / relational / shift
    Ternary, ///< cond ? a : b
    Select,  ///< id[bit] or id[msb:lsb]
    Concat,  ///< {a, b, ...}
};

/** Expression tree node. */
struct Expr
{
    ExprKind kind = ExprKind::Literal;
    uint64_t value = 0;      ///< Literal value
    int literalWidth = -1;   ///< Literal declared width (-1 unsized)
    std::string name;        ///< Identifier / Select base
    std::string op;          ///< Unary / Binary operator text
    std::vector<std::unique_ptr<Expr>> args; ///< operands
    int msb = -1, lsb = -1;  ///< Select range (msb==lsb for bit)
    size_t line = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

/** Statement kinds inside always blocks. */
enum class StmtKind
{
    Assign, ///< blocking or non-blocking assignment
    If,
    Case,
    Block, ///< begin ... end
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** One case arm. */
struct CaseArm
{
    std::vector<ExprPtr> labels; ///< empty = default
    StmtPtr body;
};

/** Statement node. */
struct Stmt
{
    StmtKind kind = StmtKind::Block;
    // Assign
    std::string target;
    int targetMsb = -1, targetLsb = -1; ///< optional part select
    ExprPtr rhs;
    bool nonBlocking = false;
    // If
    ExprPtr condition;
    StmtPtr thenStmt;
    StmtPtr elseStmt; ///< may be null
    // Case
    ExprPtr subject;
    std::vector<CaseArm> arms;
    // Block
    std::vector<StmtPtr> body;
    size_t line = 0;
};

/** Net/variable declaration kinds. */
enum class NetKind
{
    Input,
    Output,
    Wire,
    Reg,
};

/** Declaration of a net, variable, or port. */
struct NetDecl
{
    NetKind kind = NetKind::Wire;
    std::string name;
    unsigned width = 1; ///< bits; recomputed at elaboration when
                        ///< range expressions are present
    ExprPtr msbExpr;    ///< optional [msb:lsb] range (may reference
    ExprPtr lsbExpr;    ///< parameters; evaluated at elaboration)
    size_t line = 0;
};

/** Parameter declaration. */
struct ParamDecl
{
    std::string name;
    ExprPtr value;
};

/** Continuous assignment. */
struct AssignDecl
{
    std::string target;
    ExprPtr rhs;
    size_t line = 0;
    bool translated = true; ///< false inside "vfsm off" regions
};

/** Always block. */
struct AlwaysBlock
{
    bool sequential = false; ///< @(posedge clk) vs @*
    std::string clock;       ///< clock name for sequential blocks
    StmtPtr body;
    size_t line = 0;
    bool translated = true;
};

/** Module instantiation with named connections. */
struct Instance
{
    std::string moduleName;
    std::string instanceName;
    std::vector<std::pair<std::string, ExprPtr>> connections;
    std::vector<std::pair<std::string, ExprPtr>> paramOverrides;
    size_t line = 0;
};

/** vfsm annotation attached to a module. */
struct Annotation
{
    enum class Kind
    {
        State, ///< vfsm state <name> [reset <value>]
        Input, ///< vfsm input <name> [<cardinality>]
        Instr, ///< vfsm instr <name>: per-cycle instruction count
    };
    Kind kind;
    std::string name;
    uint64_t value = 0; ///< reset value or cardinality
    bool hasValue = false;
    size_t line = 0;
};

/** One module. */
struct Module
{
    std::string name;
    std::vector<std::string> portOrder;
    std::vector<NetDecl> nets;
    std::vector<ParamDecl> params;
    std::vector<AssignDecl> assigns;
    std::vector<AlwaysBlock> always;
    std::vector<Instance> instances;
    std::vector<Annotation> annotations;
    size_t line = 0;
};

/** A parsed source file (design). */
struct Design
{
    std::vector<Module> modules;

    /** @return module by name or nullptr. */
    const Module *findModule(const std::string &name) const;
};

/** Deep-copy helpers (used by elaboration). @{ */
ExprPtr cloneExpr(const Expr &expr);
StmtPtr cloneStmt(const Stmt &stmt);
/** @} */

} // namespace archval::hdl

#endif // ARCHVAL_HDL_AST_HH

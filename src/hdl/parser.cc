#include "parser.hh"

#include "hdl/lexer.hh"
#include "support/strings.hh"

namespace archval::hdl
{

namespace
{

/** Internal parse error carrying a formatted message. */
struct ParseError
{
    std::string message;
};

[[noreturn]] void
parseFail(size_t line, const std::string &msg)
{
    throw ParseError{formatString("line %zu: %s", line, msg.c_str())};
}

/** Token cursor with convenience accessors. */
class Cursor
{
  public:
    explicit Cursor(std::vector<Token> tokens)
        : tokens_(std::move(tokens))
    {
    }

    const Token &peek(size_t ahead = 0) const
    {
        size_t index = pos_ + ahead;
        if (index >= tokens_.size())
            index = tokens_.size() - 1; // Eof
        return tokens_[index];
    }

    const Token &
    next()
    {
        const Token &tok = peek();
        if (tok.kind != TokKind::Eof)
            ++pos_;
        return tok;
    }

    bool
    atPunct(const std::string &text) const
    {
        return peek().kind == TokKind::Punct && peek().text == text;
    }

    bool
    atIdent(const std::string &text) const
    {
        return peek().kind == TokKind::Identifier &&
               peek().text == text;
    }

    bool
    eatPunct(const std::string &text)
    {
        if (!atPunct(text))
            return false;
        next();
        return true;
    }

    bool
    eatIdent(const std::string &text)
    {
        if (!atIdent(text))
            return false;
        next();
        return true;
    }

    void
    expectPunct(const std::string &text)
    {
        if (!eatPunct(text)) {
            parseFail(peek().line, "expected '" + text + "', got '" +
                                       peek().text + "'");
        }
    }

    std::string
    expectIdentifier(const char *what)
    {
        if (peek().kind != TokKind::Identifier)
            parseFail(peek().line, std::string("expected ") + what);
        return next().text;
    }

    size_t line() const { return peek().line; }

  private:
    std::vector<Token> tokens_;
    size_t pos_ = 0;
};

/** Expression parser (precedence climbing). */
class ExprParser
{
  public:
    explicit ExprParser(Cursor &cursor) : cur_(cursor) {}

    ExprPtr parse() { return parseTernary(); }

  private:
    ExprPtr
    parseTernary()
    {
        ExprPtr cond = parseBinary(0);
        if (cur_.eatPunct("?")) {
            auto node = std::make_unique<Expr>();
            node->kind = ExprKind::Ternary;
            node->line = cur_.line();
            node->args.push_back(std::move(cond));
            node->args.push_back(parseTernary());
            cur_.expectPunct(":");
            node->args.push_back(parseTernary());
            return node;
        }
        return cond;
    }

    /** Binary levels, loosest first. */
    static constexpr const char *levels[][5] = {
        {"||", nullptr},
        {"&&", nullptr},
        {"|", nullptr},
        {"^", nullptr},
        {"&", nullptr},
        {"==", "!=", nullptr},
        {"<", "<=", ">", ">=", nullptr},
        {"<<", ">>", nullptr},
        {"+", "-", nullptr},
    };
    static constexpr size_t numLevels = 9;

    ExprPtr
    parseBinary(size_t level)
    {
        if (level >= numLevels)
            return parseUnary();
        ExprPtr left = parseBinary(level + 1);
        for (;;) {
            const char *matched = nullptr;
            for (const char *const *op = levels[level]; *op; ++op) {
                if (cur_.atPunct(*op)) {
                    matched = *op;
                    break;
                }
            }
            if (!matched)
                return left;
            cur_.next();
            auto node = std::make_unique<Expr>();
            node->kind = ExprKind::Binary;
            node->op = matched;
            node->line = cur_.line();
            node->args.push_back(std::move(left));
            node->args.push_back(parseBinary(level + 1));
            left = std::move(node);
        }
    }

    ExprPtr
    parseUnary()
    {
        for (const char *op : {"!", "~", "-", "&", "|", "^"}) {
            if (cur_.atPunct(op)) {
                cur_.next();
                auto node = std::make_unique<Expr>();
                node->kind = ExprKind::Unary;
                node->op = op;
                node->line = cur_.line();
                node->args.push_back(parseUnary());
                return node;
            }
        }
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        const Token &tok = cur_.peek();
        if (tok.kind == TokKind::Number) {
            auto node = std::make_unique<Expr>();
            node->kind = ExprKind::Literal;
            node->value = tok.value;
            node->literalWidth = tok.width;
            node->line = tok.line;
            cur_.next();
            return node;
        }
        if (cur_.eatPunct("(")) {
            ExprPtr inner = parse();
            cur_.expectPunct(")");
            return inner;
        }
        if (cur_.eatPunct("{")) {
            auto node = std::make_unique<Expr>();
            node->kind = ExprKind::Concat;
            node->line = tok.line;
            node->args.push_back(parse());
            while (cur_.eatPunct(","))
                node->args.push_back(parse());
            cur_.expectPunct("}");
            return node;
        }
        if (tok.kind == TokKind::Identifier) {
            std::string name = cur_.next().text;
            if (cur_.eatPunct("[")) {
                auto node = std::make_unique<Expr>();
                node->kind = ExprKind::Select;
                node->name = name;
                node->line = tok.line;
                node->args.push_back(parse());
                if (cur_.eatPunct(":"))
                    node->args.push_back(parse());
                cur_.expectPunct("]");
                return node;
            }
            auto node = std::make_unique<Expr>();
            node->kind = ExprKind::Identifier;
            node->name = name;
            node->line = tok.line;
            return node;
        }
        parseFail(tok.line, "expected expression, got '" + tok.text +
                                "'");
    }

    Cursor &cur_;
};

constexpr const char *ExprParser::levels[][5];

/** Module-body parser. */
class ModuleParser
{
  public:
    ModuleParser(Cursor &cursor) : cur_(cursor) {}

    Module
    parseModule()
    {
        Module module;
        module.line = cur_.line();
        module.name = cur_.expectIdentifier("module name");
        cur_.expectPunct("(");
        if (!cur_.atPunct(")")) {
            module.portOrder.push_back(
                cur_.expectIdentifier("port name"));
            while (cur_.eatPunct(","))
                module.portOrder.push_back(
                    cur_.expectIdentifier("port name"));
        }
        cur_.expectPunct(")");
        cur_.expectPunct(";");

        bool translating = true;
        while (!cur_.eatIdent("endmodule")) {
            if (cur_.peek().kind == TokKind::Eof)
                parseFail(cur_.line(), "missing endmodule");
            if (cur_.peek().kind == TokKind::Directive) {
                handleDirective(module, translating);
                continue;
            }
            parseItem(module, translating);
        }
        return module;
    }

  private:
    void
    handleDirective(Module &module, bool &translating)
    {
        const Token tok = cur_.next();
        auto fields = splitString(tok.text, ' ');
        std::vector<std::string> words;
        for (auto &field : fields) {
            std::string word = trimString(field);
            if (!word.empty())
                words.push_back(word);
        }
        if (words.empty())
            parseFail(tok.line, "empty vfsm directive");

        if (words[0] == "on") {
            translating = true;
        } else if (words[0] == "off") {
            translating = false;
        } else if (words[0] == "state") {
            if (words.size() < 2)
                parseFail(tok.line, "vfsm state needs a name");
            Annotation ann;
            ann.kind = Annotation::Kind::State;
            ann.name = words[1];
            ann.line = tok.line;
            if (words.size() >= 4 && words[2] == "reset") {
                ann.value = std::strtoull(words[3].c_str(), nullptr, 0);
                ann.hasValue = true;
            }
            module.annotations.push_back(std::move(ann));
        } else if (words[0] == "input") {
            if (words.size() < 2)
                parseFail(tok.line, "vfsm input needs a name");
            Annotation ann;
            ann.kind = Annotation::Kind::Input;
            ann.name = words[1];
            ann.line = tok.line;
            if (words.size() >= 3) {
                ann.value = std::strtoull(words[2].c_str(), nullptr, 0);
                ann.hasValue = true;
            }
            module.annotations.push_back(std::move(ann));
        } else if (words[0] == "instr") {
            if (words.size() < 2)
                parseFail(tok.line, "vfsm instr needs a name");
            Annotation ann;
            ann.kind = Annotation::Kind::Instr;
            ann.name = words[1];
            ann.line = tok.line;
            module.annotations.push_back(std::move(ann));
        } else {
            parseFail(tok.line,
                      "unknown vfsm directive '" + words[0] + "'");
        }
    }

    void
    parseItem(Module &module, bool translating)
    {
        const Token &tok = cur_.peek();
        if (tok.kind != TokKind::Identifier)
            parseFail(tok.line, "expected module item, got '" +
                                    tok.text + "'");

        if (tok.text == "input" || tok.text == "output" ||
            tok.text == "wire" || tok.text == "reg") {
            parseNetDecl(module);
        } else if (tok.text == "parameter") {
            cur_.next();
            ParamDecl param;
            param.name = cur_.expectIdentifier("parameter name");
            cur_.expectPunct("=");
            param.value = ExprParser(cur_).parse();
            cur_.expectPunct(";");
            module.params.push_back(std::move(param));
        } else if (tok.text == "assign") {
            cur_.next();
            AssignDecl assign;
            assign.line = tok.line;
            assign.translated = translating;
            assign.target = cur_.expectIdentifier("assign target");
            cur_.expectPunct("=");
            assign.rhs = ExprParser(cur_).parse();
            cur_.expectPunct(";");
            module.assigns.push_back(std::move(assign));
        } else if (tok.text == "always") {
            parseAlways(module, translating);
        } else if (tok.text == "initial" || tok.text == "task" ||
                   tok.text == "function") {
            parseFail(tok.line,
                      "'" + tok.text +
                          "' is outside the synthesizable subset; "
                          "wrap it in vfsm off/on");
        } else {
            parseInstance(module);
        }
    }

    void
    parseNetDecl(Module &module)
    {
        const Token kind_tok = cur_.next();
        NetKind kind = kind_tok.text == "input"    ? NetKind::Input
                       : kind_tok.text == "output" ? NetKind::Output
                       : kind_tok.text == "wire"   ? NetKind::Wire
                                                   : NetKind::Reg;
        // "output reg" combination.
        if (kind == NetKind::Output && cur_.eatIdent("reg"))
            kind = NetKind::Reg; // an output that is also a reg

        ExprPtr msb, lsb;
        if (cur_.eatPunct("[")) {
            msb = ExprParser(cur_).parse();
            cur_.expectPunct(":");
            lsb = ExprParser(cur_).parse();
            cur_.expectPunct("]");
        }
        for (;;) {
            NetDecl decl;
            decl.kind = kind;
            decl.line = kind_tok.line;
            decl.name = cur_.expectIdentifier("net name");
            if (msb) {
                decl.msbExpr = cloneExpr(*msb);
                decl.lsbExpr = cloneExpr(*lsb);
            }
            module.nets.push_back(std::move(decl));
            if (!cur_.eatPunct(","))
                break;
        }
        cur_.expectPunct(";");
    }

    void
    parseAlways(Module &module, bool translating)
    {
        const Token always_tok = cur_.next();
        AlwaysBlock block;
        block.line = always_tok.line;
        block.translated = translating;
        cur_.expectPunct("@");
        if (cur_.eatPunct("*")) {
            block.sequential = false;
        } else {
            cur_.expectPunct("(");
            if (cur_.eatPunct("*")) {
                block.sequential = false;
            } else if (cur_.eatIdent("posedge")) {
                block.sequential = true;
                block.clock = cur_.expectIdentifier("clock name");
            } else {
                // Sensitivity list form: treat as combinational.
                block.sequential = false;
                cur_.expectIdentifier("signal name");
                while (cur_.eatIdent("or") || cur_.eatPunct(","))
                    cur_.expectIdentifier("signal name");
            }
            cur_.expectPunct(")");
        }
        block.body = parseStmt();
        module.always.push_back(std::move(block));
    }

    StmtPtr
    parseStmt()
    {
        const Token &tok = cur_.peek();
        auto stmt = std::make_unique<Stmt>();
        stmt->line = tok.line;

        if (cur_.eatIdent("begin")) {
            stmt->kind = StmtKind::Block;
            while (!cur_.eatIdent("end")) {
                if (cur_.peek().kind == TokKind::Eof)
                    parseFail(cur_.line(), "missing end");
                stmt->body.push_back(parseStmt());
            }
            return stmt;
        }
        if (cur_.eatIdent("if")) {
            stmt->kind = StmtKind::If;
            cur_.expectPunct("(");
            stmt->condition = ExprParser(cur_).parse();
            cur_.expectPunct(")");
            stmt->thenStmt = parseStmt();
            if (cur_.eatIdent("else"))
                stmt->elseStmt = parseStmt();
            return stmt;
        }
        if (cur_.eatIdent("case")) {
            stmt->kind = StmtKind::Case;
            cur_.expectPunct("(");
            stmt->subject = ExprParser(cur_).parse();
            cur_.expectPunct(")");
            while (!cur_.eatIdent("endcase")) {
                if (cur_.peek().kind == TokKind::Eof)
                    parseFail(cur_.line(), "missing endcase");
                CaseArm arm;
                if (cur_.eatIdent("default")) {
                    cur_.expectPunct(":");
                } else {
                    arm.labels.push_back(ExprParser(cur_).parse());
                    while (cur_.eatPunct(","))
                        arm.labels.push_back(ExprParser(cur_).parse());
                    cur_.expectPunct(":");
                }
                arm.body = parseStmt();
                stmt->arms.push_back(std::move(arm));
            }
            return stmt;
        }

        // Assignment: target [select] ('=' | '<=') expr ';'
        stmt->kind = StmtKind::Assign;
        stmt->target = cur_.expectIdentifier("assignment target");
        if (cur_.eatPunct("[")) {
            ExprPtr msb = ExprParser(cur_).parse();
            ExprPtr lsb;
            if (cur_.eatPunct(":"))
                lsb = ExprParser(cur_).parse();
            cur_.expectPunct("]");
            if (msb->kind != ExprKind::Literal ||
                (lsb && lsb->kind != ExprKind::Literal)) {
                parseFail(stmt->line,
                          "part-select targets must use literal "
                          "indices");
            }
            stmt->targetMsb = static_cast<int>(msb->value);
            stmt->targetLsb =
                lsb ? static_cast<int>(lsb->value) : stmt->targetMsb;
        }
        if (cur_.eatPunct("<=")) {
            stmt->nonBlocking = true;
        } else {
            cur_.expectPunct("=");
        }
        stmt->rhs = ExprParser(cur_).parse();
        cur_.expectPunct(";");
        return stmt;
    }

    void
    parseInstance(Module &module)
    {
        Instance instance;
        instance.line = cur_.line();
        instance.moduleName = cur_.expectIdentifier("module name");
        if (cur_.eatPunct("#")) {
            cur_.expectPunct("(");
            do {
                cur_.expectPunct(".");
                std::string param =
                    cur_.expectIdentifier("parameter name");
                cur_.expectPunct("(");
                instance.paramOverrides.emplace_back(
                    param, ExprParser(cur_).parse());
                cur_.expectPunct(")");
            } while (cur_.eatPunct(","));
            cur_.expectPunct(")");
        }
        instance.instanceName =
            cur_.expectIdentifier("instance name");
        cur_.expectPunct("(");
        if (!cur_.atPunct(")")) {
            do {
                cur_.expectPunct(".");
                std::string port = cur_.expectIdentifier("port name");
                cur_.expectPunct("(");
                instance.connections.emplace_back(
                    port, ExprParser(cur_).parse());
                cur_.expectPunct(")");
            } while (cur_.eatPunct(","));
        }
        cur_.expectPunct(")");
        cur_.expectPunct(";");
        module.instances.push_back(std::move(instance));
    }

    Cursor &cur_;
};

} // namespace

Result<Design>
parse(const std::string &source)
{
    auto tokens = lex(source);
    if (!tokens.ok())
        return Result<Design>::error(tokens.errorMessage());

    try {
        Cursor cursor(tokens.take());
        Design design;
        while (cursor.peek().kind != TokKind::Eof) {
            // Directives before "module" are ignored.
            if (cursor.peek().kind == TokKind::Directive) {
                cursor.next();
                continue;
            }
            if (!cursor.eatIdent("module")) {
                parseFail(cursor.line(), "expected 'module', got '" +
                                             cursor.peek().text + "'");
            }
            ModuleParser parser(cursor);
            design.modules.push_back(parser.parseModule());
        }
        return design;
    } catch (const ParseError &error) {
        return Result<Design>::error(error.message);
    }
}

} // namespace archval::hdl

/**
 * @file
 * Built-in corpus of annotated-Verilog controller designs.
 *
 * One shared list of realistic designs used by the differential
 * compile tests, the step-throughput benchmarks, and anything else
 * that wants "every HDL design" without re-embedding source strings.
 * The corpus spans the behaviours the compiled kernels must handle:
 * small protocol FSMs, a wide-frontier arbiter (the largest design,
 * used for throughput claims), and a barrel rotator whose variable
 * shift amounts force the bit-sliced kernel's scalar per-lane
 * fallback.
 */

#ifndef ARCHVAL_HDL_CORPUS_HH
#define ARCHVAL_HDL_CORPUS_HH

#include <vector>

#include "hdl/translate.hh"

namespace archval::hdl
{

/** One corpus entry: a named design plus its source text. */
struct CorpusDesign
{
    const char *name;   ///< corpus key (unique)
    const char *top;    ///< top module for elaboration
    const char *source; ///< annotated-Verilog text
    bool largest;       ///< the benchmark "largest HDL design"
};

/** All built-in designs. Stable order; exactly one has `largest`. */
const std::vector<CorpusDesign> &designCorpus();

/** The designated largest design (widest frontiers, most logic). */
const CorpusDesign &largestCorpusDesign();

/** Parse + elaborate + translate one corpus entry. */
Result<TranslateResult> translateCorpus(const CorpusDesign &design);

} // namespace archval::hdl

#endif // ARCHVAL_HDL_CORPUS_HH

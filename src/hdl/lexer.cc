#include "lexer.hh"

#include <cctype>
#include <cstring>

#include "support/strings.hh"

namespace archval::hdl
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$';
}

/** Multi-character punctuation, longest first. */
const char *multiPunct[] = {
    "<=", ">=", "==", "!=", "&&", "||", "<<", ">>",
};

} // namespace

Result<std::vector<Token>>
lex(const std::string &source)
{
    using Out = std::vector<Token>;
    std::vector<Token> tokens;
    size_t line = 1;
    size_t i = 0;
    const size_t n = source.size();

    auto err = [&](const std::string &msg) {
        return Result<Out>::error(
            formatString("line %zu: %s", line, msg.c_str()));
    };

    while (i < n) {
        char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Comments: "// vfsm ..." is a directive, others skipped.
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            size_t end = source.find('\n', i);
            if (end == std::string::npos)
                end = n;
            std::string body = trimString(source.substr(i + 2, end - i - 2));
            if (startsWith(body, "vfsm")) {
                Token tok;
                tok.kind = TokKind::Directive;
                tok.text = trimString(body.substr(4));
                tok.line = line;
                tokens.push_back(tok);
            }
            i = end;
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            size_t end = source.find("*/", i + 2);
            if (end == std::string::npos)
                return err("unterminated block comment");
            for (size_t j = i; j < end; ++j) {
                if (source[j] == '\n')
                    ++line;
            }
            i = end + 2;
            continue;
        }

        if (isIdentStart(c)) {
            size_t start = i;
            while (i < n && isIdentChar(source[i]))
                ++i;
            Token tok;
            tok.kind = TokKind::Identifier;
            tok.text = source.substr(start, i - start);
            tok.line = line;
            tokens.push_back(tok);
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            // Either a plain decimal or the start of a sized literal
            // like 4'b0101 / 8'hff / 3'd5.
            size_t start = i;
            while (i < n &&
                   std::isdigit(static_cast<unsigned char>(source[i])))
                ++i;
            uint64_t first =
                std::strtoull(source.substr(start, i - start).c_str(),
                              nullptr, 10);
            Token tok;
            tok.kind = TokKind::Number;
            tok.line = line;
            if (i < n && source[i] == '\'') {
                ++i;
                if (i >= n)
                    return err("truncated sized literal");
                char base_char = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(
                        source[i])));
                ++i;
                int base;
                switch (base_char) {
                  case 'b':
                    base = 2;
                    break;
                  case 'o':
                    base = 8;
                    break;
                  case 'd':
                    base = 10;
                    break;
                  case 'h':
                    base = 16;
                    break;
                  default:
                    return err("bad literal base");
                }
                size_t digits_start = i;
                while (i < n && (std::isalnum(static_cast<unsigned char>(
                                     source[i])) ||
                                 source[i] == '_'))
                    ++i;
                std::string digits;
                for (char d :
                     source.substr(digits_start, i - digits_start)) {
                    if (d != '_')
                        digits.push_back(d);
                }
                if (digits.empty())
                    return err("sized literal with no digits");
                char *endp = nullptr;
                tok.value = std::strtoull(digits.c_str(), &endp, base);
                if (endp != digits.c_str() + digits.size())
                    return err("bad digits in sized literal");
                tok.width = static_cast<int>(first);
                if (tok.width <= 0 || tok.width > 64)
                    return err("literal width out of range");
            } else {
                tok.value = first;
                tok.width = -1;
            }
            tokens.push_back(tok);
            continue;
        }

        // Punctuation.
        bool matched = false;
        for (const char *punct : multiPunct) {
            size_t len = std::strlen(punct);
            if (source.compare(i, len, punct) == 0) {
                Token tok;
                tok.kind = TokKind::Punct;
                tok.text = punct;
                tok.line = line;
                tokens.push_back(tok);
                i += len;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;

        static const std::string single = "()[]{}:;,.=<>!&|^~+-*?/#@";
        if (single.find(c) != std::string::npos) {
            Token tok;
            tok.kind = TokKind::Punct;
            tok.text = std::string(1, c);
            tok.line = line;
            tokens.push_back(tok);
            ++i;
            continue;
        }

        return err(formatString("unexpected character '%c'", c));
    }

    Token eof;
    eof.kind = TokKind::Eof;
    eof.line = line;
    tokens.push_back(eof);
    return tokens;
}

} // namespace archval::hdl

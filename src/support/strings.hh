/**
 * @file
 * Small string utilities shared by the HDL frontend and report code.
 */

#ifndef ARCHVAL_SUPPORT_STRINGS_HH
#define ARCHVAL_SUPPORT_STRINGS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace archval
{

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> splitString(std::string_view text, char sep);

/** Strip leading and trailing whitespace. */
std::string trimString(std::string_view text);

/** @return true when @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** @return true when @p text ends with @p suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/** printf-style formatting into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** @return @p value with thousands separators, e.g. 1,172,848. */
std::string withCommas(uint64_t value);

/** @return a human-readable byte count, e.g. "34.0 MB". */
std::string humanBytes(uint64_t bytes);

/** @return a human-readable duration, e.g. "58.9 hours" / "24 mins". */
std::string humanSeconds(double seconds);

} // namespace archval

#endif // ARCHVAL_SUPPORT_STRINGS_HH

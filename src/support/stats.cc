#include "stats.hh"

#include <algorithm>

#include "strings.hh"

namespace archval
{

void
ScalarStat::sample(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
}

void
StatSet::add(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

void
StatSet::sample(const std::string &name, double value)
{
    scalars_[name].sample(value);
}

uint64_t
StatSet::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

ScalarStat
StatSet::scalar(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? ScalarStat{} : it->second;
}

std::string
StatSet::render() const
{
    size_t width = 0;
    for (const auto &[name, value] : counters_)
        width = std::max(width, name.size());
    for (const auto &[name, value] : scalars_)
        width = std::max(width, name.size());

    std::string out;
    for (const auto &[name, value] : counters_) {
        out += formatString("%-*s %s\n", int(width), name.c_str(),
                            withCommas(value).c_str());
    }
    for (const auto &[name, stat] : scalars_) {
        out += formatString(
            "%-*s n=%llu mean=%.3f min=%.3f max=%.3f\n", int(width),
            name.c_str(),
            static_cast<unsigned long long>(stat.count()), stat.mean(),
            stat.min(), stat.max());
    }
    return out;
}

} // namespace archval

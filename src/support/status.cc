#include "status.hh"

#include <cstdio>
#include <cstdlib>

#include "flight_recorder.hh"

namespace archval
{

void
panic(const std::string &msg)
{
    flight::recordEvent(flight::EventKind::Fatal, 0, 0, msg);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    // Leave a ring event at throw time: a FatalError that escapes to
    // std::terminate then crashes with the cause already recorded.
    // Handled FatalErrors (one job failing on bad input) stay cheap —
    // one relaxed load when the recorder is off.
    flight::recordEvent(flight::EventKind::Fatal, 0, 0, msg);
    throw FatalError(msg);
}

} // namespace archval

#include "status.hh"

#include <cstdio>
#include <cstdlib>

namespace archval
{

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

} // namespace archval

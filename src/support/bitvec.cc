#include "bitvec.hh"

#include "status.hh"

namespace archval
{

namespace
{

constexpr size_t wordBits = 64;

size_t
wordsFor(size_t num_bits)
{
    return (num_bits + wordBits - 1) / wordBits;
}

} // namespace

BitVec::BitVec(size_t num_bits)
    : numBits_(num_bits), words_(wordsFor(num_bits), 0)
{
}

bool
BitVec::get(size_t index) const
{
    if (index >= numBits_)
        panic("BitVec::get out of range");
    return (words_[index / wordBits] >> (index % wordBits)) & 1;
}

void
BitVec::set(size_t index, bool value)
{
    if (index >= numBits_)
        panic("BitVec::set out of range");
    uint64_t mask = uint64_t(1) << (index % wordBits);
    if (value)
        words_[index / wordBits] |= mask;
    else
        words_[index / wordBits] &= ~mask;
}

uint64_t
BitVec::getField(size_t lsb, size_t width) const
{
    if (width > 64)
        panic("BitVec::getField width > 64");
    if (width == 0)
        return 0;
    if (lsb + width > numBits_)
        panic("BitVec::getField out of range");

    size_t word = lsb / wordBits;
    size_t offset = lsb % wordBits;
    uint64_t value = words_[word] >> offset;
    if (offset + width > wordBits)
        value |= words_[word + 1] << (wordBits - offset);
    if (width < 64)
        value &= (uint64_t(1) << width) - 1;
    return value;
}

void
BitVec::setField(size_t lsb, size_t width, uint64_t value)
{
    if (width > 64)
        panic("BitVec::setField width > 64");
    if (width == 0)
        return;
    if (lsb + width > numBits_)
        panic("BitVec::setField out of range");

    uint64_t mask =
        width == 64 ? ~uint64_t(0) : (uint64_t(1) << width) - 1;
    value &= mask;

    size_t word = lsb / wordBits;
    size_t offset = lsb % wordBits;
    words_[word] = (words_[word] & ~(mask << offset)) | (value << offset);
    if (offset + width > wordBits) {
        size_t high_bits = offset + width - wordBits;
        uint64_t high_mask = (uint64_t(1) << high_bits) - 1;
        words_[word + 1] = (words_[word + 1] & ~high_mask) |
                           (value >> (wordBits - offset));
    }
}

void
BitVec::clear()
{
    for (auto &w : words_)
        w = 0;
}

std::string
BitVec::toString() const
{
    std::string out;
    out.reserve(numBits_);
    for (size_t i = numBits_; i-- > 0;)
        out.push_back(get(i) ? '1' : '0');
    return out;
}

size_t
BitVec::hash() const
{
    // FNV-1a over the words, folded with the width so that vectors of
    // different widths with equal payloads do not collide trivially.
    uint64_t h = 1469598103934665603ull ^ numBits_;
    for (uint64_t w : words_) {
        h ^= w;
        h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
}

bool
BitVec::operator==(const BitVec &other) const
{
    return numBits_ == other.numBits_ && words_ == other.words_;
}

bool
BitVec::operator<(const BitVec &other) const
{
    if (numBits_ != other.numBits_)
        return numBits_ < other.numBits_;
    return words_ < other.words_;
}

} // namespace archval

/**
 * @file
 * Lightweight status/result types and fatal-error helpers.
 *
 * The library distinguishes two classes of failure, following the
 * gem5 convention:
 *  - panic(): an internal invariant was violated (a bug in this
 *    library). Aborts.
 *  - fatal(): the user supplied bad input (malformed HDL, impossible
 *    configuration). Throws FatalError so callers and tests can catch.
 *
 * Recoverable, expected failures (e.g. parse errors that a caller may
 * want to report) are carried in Result<T>.
 */

#ifndef ARCHVAL_SUPPORT_STATUS_HH
#define ARCHVAL_SUPPORT_STATUS_HH

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace archval
{

/** Exception thrown for unrecoverable user-input errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Abort with a message; use for internal invariant violations only.
 *
 * @param msg Description of the violated invariant.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Throw FatalError; use when user input makes continuing impossible.
 *
 * @param msg Description of the user-facing error.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Value-or-error result type for recoverable failures.
 *
 * A Result either holds a value of type T or an error message.
 */
template <typename T>
class Result
{
  public:
    /** Construct a successful result holding @p value. */
    Result(T value) : value_(std::move(value)) {}

    /** Construct a failed result carrying @p msg. */
    static Result
    error(std::string msg)
    {
        Result r;
        r.error_ = std::move(msg);
        return r;
    }

    /** @return true when a value is present. */
    bool ok() const { return value_.has_value(); }

    /** @return the error message; empty when ok(). */
    const std::string &errorMessage() const { return error_; }

    /** @return the held value; panics when !ok(). */
    const T &
    value() const
    {
        if (!value_)
            panic("Result::value() on error result: " + error_);
        return *value_;
    }

    /** @return the held value by move; panics when !ok(). */
    T &&
    take()
    {
        if (!value_)
            panic("Result::take() on error result: " + error_);
        return std::move(*value_);
    }

  private:
    Result() = default;

    std::optional<T> value_;
    std::string error_;
};

} // namespace archval

#endif // ARCHVAL_SUPPORT_STATUS_HH

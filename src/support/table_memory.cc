#include "table_memory.hh"

namespace archval
{

TableFootprint
hashTableFootprint(size_t bucket_count, size_t num_entries,
                   size_t entry_bytes, size_t payload_bytes)
{
    TableFootprint footprint;
    // Separate chaining: one pointer per bucket, plus per node the
    // entry itself, a next pointer, and (libstdc++/libc++ both cache
    // it for non-trivial keys) the stored hash.
    footprint.bucketBytes = bucket_count * sizeof(void *);
    footprint.nodeBytes =
        num_entries * (entry_bytes + sizeof(void *) + sizeof(size_t));
    footprint.payloadBytes = payload_bytes;
    return footprint;
}

} // namespace archval

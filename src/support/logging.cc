#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace archval
{

namespace
{

std::atomic<LogLevel> globalLevel{LogLevel::Warn};

/** Serializes the stderr write so lines from concurrent replay/enum
 *  workers never tear. The line itself is built outside the lock. */
std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
      default:
        return "log";
    }
}

void
emitLine(LogLevel level, const char *tag, const std::string &msg)
{
    if (static_cast<int>(level) >
        static_cast<int>(globalLevel.load(std::memory_order_relaxed)))
        return;
    std::string line = "[";
    line += levelTag(level);
    line += "]";
    if (tag) {
        line += "[";
        line += tag;
        line += "]";
    }
    line += " ";
    line += msg;
    line += "\n";
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    emitLine(level, nullptr, msg);
}

void
logTagged(LogLevel level, const char *tag, const std::string &msg)
{
    emitLine(level, tag, msg);
}

} // namespace archval

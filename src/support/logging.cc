#include "logging.hh"

#include <cstdio>

namespace archval
{

namespace
{

LogLevel globalLevel = LogLevel::Warn;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
      default:
        return "log";
    }
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(globalLevel))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelTag(level), msg.c_str());
}

} // namespace archval

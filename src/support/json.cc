#include "json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/strings.hh"

namespace archval::json
{

namespace
{

const Value &
nullValue()
{
    static const Value v;
    return v;
}

} // namespace

Value::Value(uint64_t u)
{
    if (u <= static_cast<uint64_t>(INT64_MAX)) {
        kind_ = Kind::Int;
        int_ = static_cast<int64_t>(u);
    } else {
        kind_ = Kind::Double;
        double_ = static_cast<double>(u);
    }
}

Value
Value::array()
{
    Value v;
    v.kind_ = Kind::Array;
    return v;
}

Value
Value::object()
{
    Value v;
    v.kind_ = Kind::Object;
    return v;
}

bool
Value::asBool(bool fallback) const
{
    return kind_ == Kind::Bool ? bool_ : fallback;
}

int64_t
Value::asInt(int64_t fallback) const
{
    if (kind_ == Kind::Int)
        return int_;
    if (kind_ == Kind::Double)
        return static_cast<int64_t>(double_);
    return fallback;
}

double
Value::asDouble(double fallback) const
{
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    if (kind_ == Kind::Double)
        return double_;
    return fallback;
}

Value &
Value::set(const std::string &key, Value v)
{
    kind_ = Kind::Object;
    object_[key] = std::move(v);
    return *this;
}

const Value &
Value::get(const std::string &key) const
{
    auto it = object_.find(key);
    return it == object_.end() ? nullValue() : it->second;
}

bool
Value::has(const std::string &key) const
{
    return object_.count(key) != 0;
}

bool
Value::operator==(const Value &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return bool_ == other.bool_;
      case Kind::Int:
        return int_ == other.int_;
      case Kind::Double:
        return double_ == other.double_;
      case Kind::String:
        return string_ == other.string_;
      case Kind::Array:
        return array_ == other.array_;
      case Kind::Object:
        return object_ == other.object_;
    }
    return false;
}

std::string
quote(std::string_view text)
{
    std::string out = "\"";
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += formatString("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
    return out;
}

std::string
Value::serialize() const
{
    switch (kind_) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return bool_ ? "true" : "false";
      case Kind::Int:
        return formatString("%lld", static_cast<long long>(int_));
      case Kind::Double:
        if (!std::isfinite(double_))
            return "null"; // JSON has no Inf/NaN
        return formatString("%.17g", double_);
      case Kind::String:
        return quote(string_);
      case Kind::Array: {
        std::string out = "[";
        for (size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += ',';
            out += array_[i].serialize();
        }
        out += ']';
        return out;
      }
      case Kind::Object: {
        std::string out = "{";
        bool first = true;
        for (const auto &[key, value] : object_) {
            if (!first)
                out += ',';
            first = false;
            out += quote(key) + ":" + value.serialize();
        }
        out += '}';
        return out;
      }
    }
    return "null";
}

namespace
{

/** Recursive-descent parser over a string_view; collects the first
 *  error and stops. */
class Parser
{
  public:
    Parser(std::string_view text, size_t max_depth)
        : text_(text), maxDepth_(max_depth)
    {
    }

    Result<Value>
    run()
    {
        Value v = parseValue(0);
        if (!error_.empty())
            return fail();
        skipWs();
        if (pos_ != text_.size()) {
            error_ = "trailing garbage";
            return fail();
        }
        return v;
    }

  private:
    Result<Value>
    fail()
    {
        return Result<Value>::error(formatString(
            "json parse error at byte %zu: %s", pos_,
            error_.c_str()));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    Value
    parseValue(size_t depth)
    {
        if (depth > maxDepth_) {
            error_ = "nesting too deep";
            return {};
        }
        skipWs();
        if (pos_ >= text_.size()) {
            error_ = "unexpected end of input";
            return {};
        }
        char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(depth);
          case '[':
            return parseArray(depth);
          case '"':
            return parseString();
          case 't':
            if (literal("true"))
                return Value(true);
            break;
          case 'f':
            if (literal("false"))
                return Value(false);
            break;
          case 'n':
            if (literal("null"))
                return Value();
            break;
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            break;
        }
        if (error_.empty())
            error_ = formatString("unexpected character '%c'", c);
        return {};
    }

    Value
    parseObject(size_t depth)
    {
        ++pos_; // '{'
        Value out = Value::object();
        if (consume('}'))
            return out;
        while (error_.empty()) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                error_ = "expected object key";
                return {};
            }
            Value key = parseString();
            if (!error_.empty())
                return {};
            if (!consume(':')) {
                error_ = "expected ':'";
                return {};
            }
            Value value = parseValue(depth + 1);
            if (!error_.empty())
                return {};
            out.set(key.asString(), std::move(value));
            if (consume('}'))
                return out;
            if (!consume(',')) {
                error_ = "expected ',' or '}'";
                return {};
            }
        }
        return {};
    }

    Value
    parseArray(size_t depth)
    {
        ++pos_; // '['
        Value out = Value::array();
        if (consume(']'))
            return out;
        while (error_.empty()) {
            Value value = parseValue(depth + 1);
            if (!error_.empty())
                return {};
            out.push(std::move(value));
            if (consume(']'))
                return out;
            if (!consume(',')) {
                error_ = "expected ',' or ']'";
                return {};
            }
        }
        return {};
    }

    Value
    parseString()
    {
        ++pos_; // '"'
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return Value(std::move(out));
            if (static_cast<unsigned char>(c) < 0x20) {
                error_ = "raw control character in string";
                return {};
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    error_ = "truncated \\u escape";
                    return {};
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else {
                        error_ = "bad \\u escape";
                        return {};
                    }
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are passed through as two separate encodings; the
                // protocol never emits them).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                error_ = "bad escape character";
                return {};
            }
        }
        error_ = "unterminated string";
        return {};
    }

    Value
    parseNumber()
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        size_t digits_start = pos_;
        while (pos_ < text_.size() && std::isdigit(
                   static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ == digits_start) {
            error_ = "malformed number";
            return {};
        }
        // JSON forbids leading zeros ("01").
        if (pos_ - digits_start > 1 && text_[digits_start] == '0') {
            error_ = "leading zero in number";
            return {};
        }
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            size_t frac_start = pos_;
            while (pos_ < text_.size() && std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            if (pos_ == frac_start) {
                error_ = "malformed fraction";
                return {};
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            size_t exp_start = pos_;
            while (pos_ < text_.size() && std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            if (pos_ == exp_start) {
                error_ = "malformed exponent";
                return {};
            }
        }
        std::string_view token = text_.substr(start, pos_ - start);
        if (integral) {
            int64_t value = 0;
            auto [ptr, ec] = std::from_chars(
                token.data(), token.data() + token.size(), value);
            if (ec == std::errc() && ptr == token.data() + token.size())
                return Value(value);
            // Out-of-int64-range integer: fall through to double.
        }
        double value = 0.0;
        // from_chars<double> is spotty across libstdc++ versions;
        // the token is already validated, so strtod is safe here.
        value = std::strtod(std::string(token).c_str(), nullptr);
        return Value(value);
    }

    std::string_view text_;
    size_t maxDepth_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace

Result<Value>
parse(std::string_view text, size_t max_depth)
{
    return Parser(text, max_depth).run();
}

} // namespace archval::json

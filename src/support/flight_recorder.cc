#include "flight_recorder.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <csignal>
#include <ctime>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <unistd.h>

#include "logging.hh"
#include "strings.hh"
#include "telemetry.hh"

namespace archval::flight
{

namespace
{

constexpr size_t kDetailBytes = 48;

/**
 * One ring slot. Every field is an atomic so concurrent writers and
 * the dump reader are race-free by construction; the `seq` stamp
 * makes torn reads *detectable*: a writer stores `2*ticket + 1`
 * before and `2*ticket + 2` after the payload, so a reader that sees
 * anything but the even stamp it expects (before and after reading
 * the payload) knows the slot was mid-write or already recycled.
 */
struct Slot
{
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> ns{0};
    std::atomic<uint64_t> kindAndLen{0}; ///< kind | detailLen << 32
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint64_t> detail[kDetailBytes / 8];
};

struct Ring
{
    size_t capacity = 0;
    size_t mask = 0;
    std::atomic<uint64_t> head{0}; ///< next ticket to claim
    std::unique_ptr<Slot[]> slots;
};

struct Global
{
    std::atomic<bool> enabled{false};
    std::atomic<Ring *> ring{nullptr}; ///< set once, leaked

    std::mutex mutex; ///< init/shutdown + options
    FlightRecorderOptions options;

    int pipeFds[2] = {-1, -1};
    std::thread watcher;
    bool watcherRunning = false;

    struct sigaction prevSigusr1 = {};
    bool sigusr1Installed = false;

    std::terminate_handler prevTerminate = nullptr;
    bool terminateInstalled = false;
};

/** Leaked on purpose: the terminate handler and late recorders must
 *  outlive static destruction. */
Global &
global()
{
    static Global *g = new Global;
    return *g;
}

/** Self-pipe write end for the async-signal-safe SIGUSR1 handler. */
std::atomic<int> gSignalFd{-1};

extern "C" void
sigusr1Handler(int)
{
    int saved_errno = errno;
    int fd = gSignalFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        char byte = 'd';
        // Best-effort: a full pipe just coalesces dump requests.
        [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
    }
    errno = saved_errno;
}

void
terminateHandler()
{
    std::string reason = "std::terminate";
    if (std::exception_ptr current = std::current_exception()) {
        try {
            std::rethrow_exception(current);
        } catch (const std::exception &e) {
            reason += ": ";
            reason += e.what();
        } catch (...) {
            reason += ": non-std exception";
        }
    }
    dumpFlightRecorderToFile(reason);
    std::terminate_handler prev;
    {
        // No lock: terminate may fire with arbitrary locks held.
        prev = global().prevTerminate;
    }
    if (prev && prev != terminateHandler)
        prev();
    std::abort();
}

size_t
roundUpPow2(size_t value)
{
    size_t out = 64;
    while (out < value)
        out <<= 1;
    return out;
}

struct DecodedEvent
{
    uint64_t ticket = 0;
    uint64_t ns = 0;
    EventKind kind = EventKind::None;
    uint64_t a = 0;
    uint64_t b = 0;
    std::string detail;
    bool torn = false;
};

/** Read the ring's recent events, oldest first. Concurrent writers
 *  keep running; slots they touch mid-read come back `torn`. */
std::vector<DecodedEvent>
readRing(Ring &ring)
{
    std::vector<DecodedEvent> out;
    uint64_t head = ring.head.load(std::memory_order_acquire);
    uint64_t first =
        head > ring.capacity ? head - ring.capacity : 0;
    out.reserve(head - first);
    for (uint64_t ticket = first; ticket < head; ++ticket) {
        Slot &slot = ring.slots[ticket & ring.mask];
        DecodedEvent ev;
        ev.ticket = ticket;
        uint64_t expect = 2 * ticket + 2;
        uint64_t s1 = slot.seq.load(std::memory_order_acquire);
        if (s1 != expect) {
            ev.torn = true;
            out.push_back(std::move(ev));
            continue;
        }
        ev.ns = slot.ns.load(std::memory_order_relaxed);
        uint64_t kind_len =
            slot.kindAndLen.load(std::memory_order_relaxed);
        ev.kind = static_cast<EventKind>(kind_len & 0xffffffffu);
        size_t len = std::min<size_t>(kind_len >> 32, kDetailBytes);
        ev.a = slot.a.load(std::memory_order_relaxed);
        ev.b = slot.b.load(std::memory_order_relaxed);
        char detail[kDetailBytes];
        for (size_t i = 0; i < kDetailBytes / 8; ++i) {
            uint64_t word =
                slot.detail[i].load(std::memory_order_relaxed);
            std::memcpy(detail + i * 8, &word, 8);
        }
        uint64_t s2 = slot.seq.load(std::memory_order_acquire);
        if (s2 != expect) {
            ev.torn = true;
            ev.detail.clear();
        } else {
            ev.detail.assign(detail, len);
        }
        out.push_back(std::move(ev));
    }
    return out;
}

std::string
jsonQuote(std::string_view text)
{
    std::string out = "\"";
    for (char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += formatString("\\u%04x", c);
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

void
watcherLoop(int read_fd)
{
    for (;;) {
        char byte = 0;
        ssize_t n = ::read(read_fd, &byte, 1);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0 || byte == 'q')
            return;
        if (byte == 'd') {
            recordEvent(EventKind::Signal, SIGUSR1, 0, "SIGUSR1");
            std::string path = dumpFlightRecorderToFile("SIGUSR1");
            if (!path.empty())
                logInfo("flight recorder dumped to " + path);
        }
    }
}

} // namespace

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::None: return "none";
      case EventKind::JobAccepted: return "job_accepted";
      case EventKind::JobStarted: return "job_started";
      case EventKind::JobProgress: return "job_progress";
      case EventKind::JobDone: return "job_done";
      case EventKind::JobFailed: return "job_failed";
      case EventKind::JobCancelled: return "job_cancelled";
      case EventKind::JobRejected: return "job_rejected";
      case EventKind::FrameError: return "frame_error";
      case EventKind::SpillFallback: return "spill_fallback";
      case EventKind::SessionRestoreFailure:
          return "session_restore_failure";
      case EventKind::SessionEvicted: return "session_evicted";
      case EventKind::Fatal: return "fatal";
      case EventKind::Signal: return "signal";
      case EventKind::ConnectionOpen: return "connection_open";
      case EventKind::ConnectionClosed: return "connection_closed";
    }
    return "unknown";
}

bool
flightRecorderEnabled()
{
    return global().enabled.load(std::memory_order_relaxed);
}

void
recordEvent(EventKind kind, uint64_t a, uint64_t b,
            std::string_view detail)
{
    Global &g = global();
    if (!g.enabled.load(std::memory_order_relaxed))
        return;
    Ring *ring = g.ring.load(std::memory_order_acquire);
    if (!ring)
        return;
    uint64_t ticket =
        ring->head.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = ring->slots[ticket & ring->mask];
    slot.seq.store(2 * ticket + 1, std::memory_order_release);
    slot.ns.store(telemetry::nowNs(), std::memory_order_relaxed);
    size_t len = std::min(detail.size(), kDetailBytes);
    slot.kindAndLen.store(static_cast<uint64_t>(kind) |
                              (uint64_t(len) << 32),
                          std::memory_order_relaxed);
    slot.a.store(a, std::memory_order_relaxed);
    slot.b.store(b, std::memory_order_relaxed);
    char padded[kDetailBytes] = {};
    std::memcpy(padded, detail.data(), len);
    for (size_t i = 0; i < kDetailBytes / 8; ++i) {
        uint64_t word;
        std::memcpy(&word, padded + i * 8, 8);
        slot.detail[i].store(word, std::memory_order_relaxed);
    }
    slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

uint64_t
droppedFlightEvents()
{
    Ring *ring = global().ring.load(std::memory_order_acquire);
    if (!ring)
        return 0;
    uint64_t head = ring->head.load(std::memory_order_relaxed);
    return head > ring->capacity ? head - ring->capacity : 0;
}

std::string
dumpFlightRecorder(const std::string &reason)
{
    Global &g = global();
    std::string out = "{\n";
    out += "  \"reason\": " + jsonQuote(reason) + ",\n";
    out += formatString("  \"pid\": %d,\n", (int)::getpid());
    out += formatString("  \"unixTime\": %lld,\n",
                        (long long)::time(nullptr));
    out += formatString("  \"monotonicNs\": %llu,\n",
                        (unsigned long long)telemetry::nowNs());
    out += formatString(
        "  \"droppedEvents\": %llu,\n",
        (unsigned long long)droppedFlightEvents());

    out += "  \"events\": [";
    Ring *ring = g.ring.load(std::memory_order_acquire);
    bool first = true;
    if (ring) {
        for (const DecodedEvent &ev : readRing(*ring)) {
            out += first ? "\n" : ",\n";
            first = false;
            if (ev.torn) {
                out += formatString(
                    "    {\"seq\": %llu, \"torn\": true}",
                    (unsigned long long)ev.ticket);
                continue;
            }
            out += formatString(
                "    {\"seq\": %llu, \"ns\": %llu, \"kind\": %s, "
                "\"a\": %llu, \"b\": %llu",
                (unsigned long long)ev.ticket,
                (unsigned long long)ev.ns,
                jsonQuote(eventKindName(ev.kind)).c_str(),
                (unsigned long long)ev.a, (unsigned long long)ev.b);
            if (!ev.detail.empty())
                out += ", \"detail\": " + jsonQuote(ev.detail);
            out += "}";
        }
    }
    out += first ? "],\n" : "\n  ],\n";

    std::function<std::string()> jobs;
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        jobs = g.options.activeJobsJson;
    }
    std::string jobs_json = "[]";
    if (jobs) {
        try {
            jobs_json = jobs();
        } catch (...) {
            jobs_json = "[]";
        }
    }
    out += "  \"activeJobs\": " + jobs_json + ",\n";
    out += "  \"metrics\": " +
           telemetry::metricsJson(telemetry::snapshotMetrics()) +
           "\n";
    out += "}\n";
    return out;
}

std::string
dumpFlightRecorderToFile(const std::string &reason)
{
    Global &g = global();
    std::string dir;
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        dir = g.options.crashDir;
    }
    if (dir.empty())
        return std::string();
    std::string body = dumpFlightRecorder(reason);
    std::string path = formatString(
        "%s/crash-%lld-%d.json", dir.c_str(),
        (long long)::time(nullptr), (int)::getpid());
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        return std::string();
    size_t written = std::fwrite(body.data(), 1, body.size(), file);
    bool ok = std::fclose(file) == 0 && written == body.size();
    return ok ? path : std::string();
}

void
initFlightRecorder(const FlightRecorderOptions &options)
{
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.options = options;
    if (!g.ring.load(std::memory_order_acquire)) {
        Ring *ring = new Ring; // leaked with the Global singleton
        ring->capacity = roundUpPow2(options.ringCapacity);
        ring->mask = ring->capacity - 1;
        ring->slots = std::make_unique<Slot[]>(ring->capacity);
        g.ring.store(ring, std::memory_order_release);
    }
    if (options.handleSigusr1 && !g.sigusr1Installed) {
        if (::pipe(g.pipeFds) == 0) {
            gSignalFd.store(g.pipeFds[1], std::memory_order_relaxed);
            g.watcher = std::thread(watcherLoop, g.pipeFds[0]);
            g.watcherRunning = true;
            struct sigaction action = {};
            action.sa_handler = sigusr1Handler;
            sigemptyset(&action.sa_mask);
            action.sa_flags = SA_RESTART;
            ::sigaction(SIGUSR1, &action, &g.prevSigusr1);
            g.sigusr1Installed = true;
        } else {
            logWarn("flight recorder: pipe() failed; SIGUSR1 dumps "
                    "disabled");
        }
    }
    if (options.handleTerminate && !g.terminateInstalled) {
        g.prevTerminate = std::set_terminate(terminateHandler);
        g.terminateInstalled = true;
    }
    g.enabled.store(true, std::memory_order_release);
}

void
shutdownFlightRecorder()
{
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.enabled.store(false, std::memory_order_release);
    if (g.sigusr1Installed) {
        ::sigaction(SIGUSR1, &g.prevSigusr1, nullptr);
        g.sigusr1Installed = false;
    }
    if (g.watcherRunning) {
        gSignalFd.store(-1, std::memory_order_relaxed);
        char byte = 'q';
        [[maybe_unused]] ssize_t n =
            ::write(g.pipeFds[1], &byte, 1);
        g.watcher.join();
        g.watcherRunning = false;
        ::close(g.pipeFds[0]);
        ::close(g.pipeFds[1]);
        g.pipeFds[0] = g.pipeFds[1] = -1;
    }
    if (g.terminateInstalled) {
        if (g.prevTerminate)
            std::set_terminate(g.prevTerminate);
        g.terminateInstalled = false;
    }
}

} // namespace archval::flight

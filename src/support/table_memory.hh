/**
 * @file
 * Analytic memory accounting for node-based hash tables.
 *
 * The enumerator reports a "memory requirement" row (the paper's
 * Table 3.2); rather than hand-rolled per-call-site constants, the
 * footprint of every shard is computed here from the table's actual
 * bucket count and size plus the measured per-node layout of the
 * standard library's unordered_map.
 */

#ifndef ARCHVAL_SUPPORT_TABLE_MEMORY_HH
#define ARCHVAL_SUPPORT_TABLE_MEMORY_HH

#include <cstddef>

namespace archval
{

/** Breakdown of one hash-table shard's heap footprint. */
struct TableFootprint
{
    size_t bucketBytes = 0;  ///< bucket array (pointers)
    size_t nodeBytes = 0;    ///< per-node entry + link overhead
    size_t payloadBytes = 0; ///< out-of-line key/value heap data

    /** @return total bytes across all components. */
    size_t
    total() const
    {
        return bucketBytes + nodeBytes + payloadBytes;
    }

    /** Accumulate another shard's footprint into this one. */
    TableFootprint &
    operator+=(const TableFootprint &other)
    {
        bucketBytes += other.bucketBytes;
        nodeBytes += other.nodeBytes;
        payloadBytes += other.payloadBytes;
        return *this;
    }
};

/**
 * Footprint of one separate-chaining hash table shard.
 *
 * @param bucket_count The table's bucket_count().
 * @param num_entries The table's size().
 * @param entry_bytes sizeof the stored entry (e.g. the value_type
 *        pair), excluding out-of-line heap data.
 * @param payload_bytes Total out-of-line heap bytes owned by the
 *        entries (e.g. the summed BitVec word storage).
 */
TableFootprint hashTableFootprint(size_t bucket_count,
                                  size_t num_entries,
                                  size_t entry_bytes,
                                  size_t payload_bytes);

/**
 * Running residency account against a byte budget, for tables whose
 * cold partitions can be paged out. The holder recomputes partition
 * footprints (hashTableFootprint) and reports the resident total
 * here; the budget answers "must something be paged out now?" and
 * tracks the high-water mark actually reached.
 */
struct ResidencyBudget
{
    size_t budgetBytes = 0;    ///< 0 = unbounded
    size_t residentBytes = 0;  ///< current resident footprint
    size_t highWaterBytes = 0; ///< max residentBytes ever reported

    bool unbounded() const { return budgetBytes == 0; }

    bool
    overBudget() const
    {
        return !unbounded() && residentBytes > budgetBytes;
    }

    /** Report the current resident footprint. */
    void
    update(size_t bytes)
    {
        residentBytes = bytes;
        if (bytes > highWaterBytes)
            highWaterBytes = bytes;
    }
};

} // namespace archval

#endif // ARCHVAL_SUPPORT_TABLE_MEMORY_HH

/**
 * @file
 * Disk spill tier for checkpoint caches — CRC-checked records in an
 * append-only temp file under a byte cap.
 *
 * The replay engine's checkpoint cache is memory-bound long before it
 * is I/O-bound on the full-preset batch, so evicted checkpoints are
 * worth parking on disk instead of dropping: a faulted-back snapshot
 * costs one read plus a deserialize, a dropped one costs a full
 * from-reset replay. This is the same tier structure explicit-state
 * tools (Murphi's state-table spill) use, and it carries the same
 * correctness posture: every record is CRC-checked on the way back
 * in, and *any* failure — short read, flipped bit, unwritable
 * directory — degrades to a miss, never to wrong bytes.
 *
 * The store is append-only: records are never rewritten or
 * compacted, the cap bounds total bytes ever written, and the backing
 * file is unlinked when the store is destroyed. All operations are
 * thread-safe.
 */

#ifndef ARCHVAL_SUPPORT_SPILL_STORE_HH
#define ARCHVAL_SUPPORT_SPILL_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace archval
{

/** @return CRC-32 (IEEE, reflected) of @p size bytes at @p data,
 *  continuing from @p seed (pass 0 to start a new checksum). */
uint32_t crc32(const uint8_t *data, size_t size, uint32_t seed = 0);

/**
 * Append-only spill file with CRC-checked records.
 */
class SpillStore
{
  public:
    struct Options
    {
        /** Directory for the backing file; empty picks $TMPDIR or
         *  /tmp. An unusable directory disables the store (enabled()
         *  returns false) instead of failing. */
        std::string dir;

        /** Total bytes of payload the store may ever write; appends
         *  beyond the cap are refused. 0 disables the store. */
        size_t budgetBytes = 256ull << 20;
    };

    /** Returned by append() when a record was not stored. */
    static constexpr int64_t invalidId = -1;

    explicit SpillStore(const Options &options);
    ~SpillStore();

    SpillStore(const SpillStore &) = delete;
    SpillStore &operator=(const SpillStore &) = delete;

    /** @return true when the backing file is open and writable. */
    bool enabled() const { return fd_ >= 0; }

    /** @return path of the backing file ("" when disabled). */
    const std::string &path() const { return path_; }

    /**
     * Write @p size bytes at @p data as one record.
     * @return the record id, or invalidId when the record would
     * exceed the byte cap or the write failed (a failed write also
     * disables the store — a sick disk should not be retried once
     * per eviction).
     */
    int64_t append(const uint8_t *data, size_t size);

    /**
     * Read record @p id into @p out.
     * @return false — with @p out cleared — on any failure: unknown
     * id, short read, or CRC mismatch.
     */
    bool read(int64_t id, std::vector<uint8_t> &out);

    /** @name Statistics @{ */
    uint64_t writes() const;
    uint64_t reads() const;
    uint64_t readFailures() const;
    size_t bytesWritten() const;
    /** @} */

    /**
     * @name Fault-injection hooks (testing only)
     * Damage the backing file the way a real fault would, so tests
     * can prove the CRC/short-read paths degrade instead of
     * corrupting results.
     * @{
     */
    /** Flip one payload byte of record @p id on disk. */
    bool corruptRecordForTesting(int64_t id);
    /** Truncate the file so record @p id (and later) are cut off. */
    bool truncateAtRecordForTesting(int64_t id);
    /** @} */

  private:
    struct Record
    {
        uint64_t offset = 0;
        uint64_t size = 0;
        uint32_t crc = 0;
    };

    mutable std::mutex mutex_;
    int fd_ = -1;
    std::string path_;
    size_t budget_ = 0;
    size_t bytesWritten_ = 0;
    uint64_t writes_ = 0;
    uint64_t reads_ = 0;
    uint64_t readFailures_ = 0;
    std::vector<Record> records_;
};

} // namespace archval

#endif // ARCHVAL_SUPPORT_SPILL_STORE_HH

/**
 * @file
 * Disk spill tier for checkpoint caches — CRC-checked records in an
 * append-only temp file under a byte cap.
 *
 * The replay engine's checkpoint cache is memory-bound long before it
 * is I/O-bound on the full-preset batch, so evicted checkpoints are
 * worth parking on disk instead of dropping: a faulted-back snapshot
 * costs one read plus a deserialize, a dropped one costs a full
 * from-reset replay. This is the same tier structure explicit-state
 * tools (Murphi's state-table spill) use, and it carries the same
 * correctness posture: every record is CRC-checked on the way back
 * in, and *any* failure — short read, flipped bit, unwritable
 * directory — degrades to a miss, never to wrong bytes.
 *
 * The store is append-only: records are never rewritten or
 * compacted, the cap bounds total bytes ever written, and the backing
 * file is unlinked when the store is destroyed. All operations are
 * thread-safe.
 */

#ifndef ARCHVAL_SUPPORT_SPILL_STORE_HH
#define ARCHVAL_SUPPORT_SPILL_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace archval
{

/** @return CRC-32 (IEEE, reflected) of @p size bytes at @p data,
 *  continuing from @p seed (pass 0 to start a new checksum). */
uint32_t crc32(const uint8_t *data, size_t size, uint32_t seed = 0);

/**
 * Append-only spill file with CRC-checked records.
 */
class SpillStore
{
  public:
    struct Options
    {
        /** Directory for the backing file; empty picks $TMPDIR or
         *  /tmp. An unusable directory disables the store (enabled()
         *  returns false) instead of failing. */
        std::string dir;

        /** Total bytes of payload the store may ever write; appends
         *  beyond the cap are refused. 0 disables the store. */
        size_t budgetBytes = 256ull << 20;
    };

    /** Returned by append() when a record was not stored. */
    static constexpr int64_t invalidId = -1;

    explicit SpillStore(const Options &options);
    ~SpillStore();

    SpillStore(const SpillStore &) = delete;
    SpillStore &operator=(const SpillStore &) = delete;

    /** @return true when the backing file is open and writable. */
    bool enabled() const { return fd_ >= 0; }

    /** @return path of the backing file ("" when disabled). */
    const std::string &path() const { return path_; }

    /**
     * Write @p size bytes at @p data as one record.
     * @return the record id, or invalidId when the record would
     * exceed the byte cap or the write failed (a failed write also
     * disables the store — a sick disk should not be retried once
     * per eviction).
     */
    int64_t append(const uint8_t *data, size_t size);

    /**
     * Read record @p id into @p out.
     * @return false — with @p out cleared — on any failure: unknown
     * id, short read, or CRC mismatch.
     */
    bool read(int64_t id, std::vector<uint8_t> &out);

    /** @name Statistics @{ */
    uint64_t writes() const;
    uint64_t reads() const;
    uint64_t readFailures() const;
    size_t bytesWritten() const;
    /** @} */

    /**
     * @name Fault-injection hooks (testing only)
     * Damage the backing file the way a real fault would, so tests
     * can prove the CRC/short-read paths degrade instead of
     * corrupting results.
     * @{
     */
    /** Flip one payload byte of record @p id on disk. */
    bool corruptRecordForTesting(int64_t id);
    /** Truncate the file so record @p id (and later) are cut off. */
    bool truncateAtRecordForTesting(int64_t id);
    /** @} */

  private:
    struct Record
    {
        uint64_t offset = 0;
        uint64_t size = 0;
        uint32_t crc = 0;
    };

    mutable std::mutex mutex_;
    int fd_ = -1;
    std::string path_;
    size_t budget_ = 0;
    size_t bytesWritten_ = 0;
    uint64_t writes_ = 0;
    uint64_t reads_ = 0;
    uint64_t readFailures_ = 0;
    std::vector<Record> records_;
};

/**
 * @name Persistent CRC-guarded record files
 *
 * The durable sibling of SpillStore's in-file format, for stores
 * that must outlive the process (the service's session store). A
 * record file is a fixed header — magic and format version, so a
 * foreign or stale file is rejected before any payload is trusted —
 * followed by a sequence of records, each `[size u64][crc u32]
 * [payload]`. The CRC is the same reflected CRC-32 the spill tier
 * uses, and the correctness posture is the same: a reader reports
 * *any* damage (short file, bad magic, wrong version, lying length,
 * CRC mismatch) instead of returning bytes it cannot vouch for.
 *
 * Writers never touch the target path until commit(): records are
 * appended to a temp file in the same directory, then fsync'd and
 * atomically renamed over the target, so a crash mid-save leaves
 * the previous file intact and a concurrent reader never observes a
 * half-written store.
 * @{
 */

class RecordFileWriter
{
  public:
    /** Open a temp file next to @p path and write the header. A
     *  failure leaves the writer disabled (ok() false); every later
     *  call is then a harmless no-op returning false. */
    RecordFileWriter(const std::string &path, uint32_t magic,
                     uint32_t version);

    /** Discards the temp file unless commit() succeeded. */
    ~RecordFileWriter();

    RecordFileWriter(const RecordFileWriter &) = delete;
    RecordFileWriter &operator=(const RecordFileWriter &) = delete;

    /** @return true while the file is open and every write so far
     *  succeeded. */
    bool ok() const { return fd_ >= 0; }

    /** Append @p size bytes at @p data as one record (size 0 is a
     *  legal, empty record). @return false on any write failure,
     *  which also disables the writer. */
    bool append(const uint8_t *data, size_t size);
    bool append(const std::vector<uint8_t> &record);

    /** fsync and atomically rename the temp file over the target.
     *  @return false (target untouched) on any failure. */
    bool commit();

    /** @return total file bytes written so far (header + records) —
     *  what the committed file will occupy on disk. */
    uint64_t bytesWritten() const { return offset_; }

  private:
    void discard();

    int fd_ = -1;
    std::string path_;     ///< final target
    std::string tempPath_; ///< staging file (same directory)
    uint64_t offset_ = 0;
    bool committed_ = false;
};

class RecordFileReader
{
  public:
    /** Largest record a reader will believe; a corrupt length field
     *  must not translate into an absurd allocation. */
    static constexpr uint64_t kMaxRecordBytes = 1ull << 30;

    /** Open @p path and validate the header. ok() is false when the
     *  file is missing, unreadable, or carries a foreign magic or
     *  version — the caller treats all of those as "no usable
     *  store". */
    RecordFileReader(const std::string &path, uint32_t magic,
                     uint32_t version);
    ~RecordFileReader();

    RecordFileReader(const RecordFileReader &) = delete;
    RecordFileReader &operator=(const RecordFileReader &) = delete;

    bool ok() const { return fd_ >= 0; }

    enum class Status
    {
        Record,  ///< one record extracted into the out-param
        End,     ///< clean end of file, no record
        Damaged, ///< truncation, lying length, or CRC mismatch
    };

    /** Extract the next record's payload into @p out (cleared on
     *  End/Damaged). Damage is sticky: once seen, every later call
     *  reports Damaged too. */
    Status next(std::vector<uint8_t> &out);

  private:
    int fd_ = -1;
    uint64_t offset_ = 0;
    uint64_t fileSize_ = 0;
    bool damaged_ = false;
};

/**
 * @name Record-file fault injection (testing only)
 * Damage a committed record file in place the way a real fault
 * would, so readers' CRC/truncation paths can be proven to degrade
 * instead of returning wrong bytes. Counterparts of SpillStore's
 * corrupt/truncate hooks for the durable file format.
 * @{
 */
/** Flip one byte of @p path at @p offset. */
bool corruptFileByteForTesting(const std::string &path,
                               uint64_t offset);
/** Truncate @p path to its first @p keep_bytes bytes. */
bool truncateFileForTesting(const std::string &path,
                            uint64_t keep_bytes);
/** @} */

/** @} */

} // namespace archval

#endif // ARCHVAL_SUPPORT_SPILL_STORE_HH

/**
 * @file
 * Black-box flight recorder: a fixed-size lock-free ring of recent
 * lifecycle events, dumped to a crash-report file when the process
 * dies (std::terminate, SIGUSR1) so a dead daemon leaves evidence.
 *
 * Recording is wait-free and TSan-clean: a writer claims a slot with
 * one `fetch_add` on the head ticket and publishes the payload with
 * per-slot sequence stamps (seqlock style, every field an atomic).
 * Writers never block and never allocate; a reader that catches a
 * slot mid-write sees a mismatched sequence and reports the slot as
 * torn instead of publishing garbage. While the recorder is disabled
 * (every non-daemon process), `recordEvent` costs exactly one
 * relaxed atomic load.
 *
 * The dump contains the event ring (oldest first), the active-job
 * table supplied by the host's callback, and a digest of the metrics
 * registry — everything needed to reconstruct what the daemon was
 * doing when it died. `fatal()` records a Fatal ring event at throw
 * time; a FatalError that escapes to std::terminate then crashes
 * with the event already on the ring (handled FatalErrors — e.g. a
 * bad request failing one job — stay in-process and write no file).
 */

#ifndef ARCHVAL_SUPPORT_FLIGHT_RECORDER_HH
#define ARCHVAL_SUPPORT_FLIGHT_RECORDER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace archval::flight
{

/** Event classes on the ring; names appear in the dump file. */
enum class EventKind : uint32_t
{
    None = 0,
    JobAccepted,
    JobStarted,
    JobProgress,
    JobDone,
    JobFailed,
    JobCancelled,
    JobRejected,
    FrameError,
    SpillFallback,
    SessionRestoreFailure,
    SessionEvicted,
    Fatal,
    Signal,
    ConnectionOpen,
    ConnectionClosed,
};

/** @return the stable dump-file name of @p kind ("job_started"). */
const char *eventKindName(EventKind kind);

struct FlightRecorderOptions
{
    /** Directory crash reports are written into; empty disables
     *  file dumps (the ring still records for dumpToString). */
    std::string crashDir;

    /** Ring capacity; rounded up to a power of two, min 64. */
    size_t ringCapacity = 1024;

    /** Returns a JSON array describing in-flight jobs, embedded in
     *  every dump. Must be callable from any thread. */
    std::function<std::string()> activeJobsJson;

    /** Install a SIGUSR1 handler that dumps on demand (self-pipe +
     *  watcher thread; the handler itself only write()s a byte). */
    bool handleSigusr1 = true;

    /** Chain a std::terminate handler that dumps before dying. */
    bool handleTerminate = true;
};

/**
 * Arm the recorder: allocate the ring, set the enabled flag, and
 * install the requested SIGUSR1 / terminate hooks. Idempotent per
 * process (a second call reconfigures crashDir/callback but keeps
 * the ring). Thread-safe.
 */
void initFlightRecorder(const FlightRecorderOptions &options);

/** Disarm: stop the watcher thread, restore the previous SIGUSR1
 *  disposition, and disable recording. The ring's contents survive
 *  (a later init re-arms over them). */
void shutdownFlightRecorder();

/** @return true when events are being recorded (one relaxed load). */
bool flightRecorderEnabled();

/**
 * Append one event. Wait-free; safe from any thread. @p detail is
 * truncated to 48 bytes (stored inline in the slot — no allocation).
 * While the recorder is disabled this is one relaxed atomic load.
 */
void recordEvent(EventKind kind, uint64_t a = 0, uint64_t b = 0,
                 std::string_view detail = {});

/** Events overwritten since init (ring wrap count). */
uint64_t droppedFlightEvents();

/**
 * Render the crash report as JSON: reason, pid, the event ring
 * (oldest first, torn slots marked), active jobs, and the metrics
 * registry digest. Always available, even with no crashDir.
 */
std::string dumpFlightRecorder(const std::string &reason);

/**
 * Write dumpFlightRecorder() to a timestamped file
 * (`crash-<unixtime>-<pid>.json`) under the configured crashDir.
 * @return the path written, or empty when disabled or on I/O error.
 */
std::string dumpFlightRecorderToFile(const std::string &reason);

} // namespace archval::flight

#endif // ARCHVAL_SUPPORT_FLIGHT_RECORDER_HH

#include "spill_store.hh"

#include <array>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace archval
{

namespace
{

/** Lazily built reflected CRC-32 table (polynomial 0xEDB88320). */
const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

/** @return the spill directory to use for @p requested. */
std::string
spillDirectory(const std::string &requested)
{
    if (!requested.empty())
        return requested;
    if (const char *tmp = std::getenv("TMPDIR"); tmp && *tmp)
        return tmp;
    return "/tmp";
}

/** Full positioned write (EINTR-safe). @return false on failure. */
bool
pwriteAll(int fd, const uint8_t *data, size_t size, uint64_t offset)
{
    while (size > 0) {
        ssize_t n = ::pwrite(fd, data, size, (off_t)offset);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= (size_t)n;
        offset += (uint64_t)n;
    }
    return true;
}

/** Full positioned read (EINTR-safe). @return false on failure. */
bool
preadAll(int fd, uint8_t *data, size_t size, uint64_t offset)
{
    while (size > 0) {
        ssize_t n = ::pread(fd, data, size, (off_t)offset);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false; // error or short file (truncation)
        }
        data += n;
        size -= (size_t)n;
        offset += (uint64_t)n;
    }
    return true;
}

} // namespace

uint32_t
crc32(const uint8_t *data, size_t size, uint32_t seed)
{
    const auto &table = crcTable();
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

SpillStore::SpillStore(const Options &options)
    : budget_(options.budgetBytes)
{
    if (budget_ == 0)
        return;
    std::string tmpl =
        spillDirectory(options.dir) + "/archval-spill-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    int fd = ::mkstemp(buf.data());
    if (fd < 0)
        return; // unusable directory: store stays disabled
    fd_ = fd;
    path_.assign(buf.data());
}

SpillStore::~SpillStore()
{
    if (fd_ >= 0) {
        ::close(fd_);
        ::unlink(path_.c_str());
    }
}

int64_t
SpillStore::append(const uint8_t *data, size_t size)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0 || size == 0 || bytesWritten_ + size > budget_)
        return invalidId;
    Record rec;
    rec.offset = bytesWritten_;
    rec.size = size;
    rec.crc = crc32(data, size);
    if (!pwriteAll(fd_, data, size, rec.offset)) {
        // A failing disk will not get better one eviction later.
        ::close(fd_);
        ::unlink(path_.c_str());
        fd_ = -1;
        return invalidId;
    }
    bytesWritten_ += size;
    ++writes_;
    records_.push_back(rec);
    return (int64_t)records_.size() - 1;
}

bool
SpillStore::read(int64_t id, std::vector<uint8_t> &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    out.clear();
    ++reads_;
    if (fd_ < 0 || id < 0 || (size_t)id >= records_.size()) {
        ++readFailures_;
        return false;
    }
    const Record &rec = records_[(size_t)id];
    out.resize(rec.size);
    if (!preadAll(fd_, out.data(), rec.size, rec.offset) ||
        crc32(out.data(), out.size()) != rec.crc) {
        out.clear();
        ++readFailures_;
        return false;
    }
    return true;
}

uint64_t
SpillStore::writes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return writes_;
}

uint64_t
SpillStore::reads() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reads_;
}

uint64_t
SpillStore::readFailures() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return readFailures_;
}

size_t
SpillStore::bytesWritten() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytesWritten_;
}

bool
SpillStore::corruptRecordForTesting(int64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0 || id < 0 || (size_t)id >= records_.size())
        return false;
    const Record &rec = records_[(size_t)id];
    uint8_t byte = 0;
    if (!preadAll(fd_, &byte, 1, rec.offset))
        return false;
    byte ^= 0x40;
    return pwriteAll(fd_, &byte, 1, rec.offset);
}

bool
SpillStore::truncateAtRecordForTesting(int64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0 || id < 0 || (size_t)id >= records_.size())
        return false;
    return ::ftruncate(fd_, (off_t)records_[(size_t)id].offset) == 0;
}

} // namespace archval

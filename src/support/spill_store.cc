#include "spill_store.hh"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace archval
{

namespace
{

/** Lazily built reflected CRC-32 table (polynomial 0xEDB88320). */
const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

/** @return the spill directory to use for @p requested. */
std::string
spillDirectory(const std::string &requested)
{
    if (!requested.empty())
        return requested;
    if (const char *tmp = std::getenv("TMPDIR"); tmp && *tmp)
        return tmp;
    return "/tmp";
}

/** Full positioned write (EINTR-safe). @return false on failure. */
bool
pwriteAll(int fd, const uint8_t *data, size_t size, uint64_t offset)
{
    while (size > 0) {
        ssize_t n = ::pwrite(fd, data, size, (off_t)offset);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= (size_t)n;
        offset += (uint64_t)n;
    }
    return true;
}

/** Full positioned read (EINTR-safe). @return false on failure. */
bool
preadAll(int fd, uint8_t *data, size_t size, uint64_t offset)
{
    while (size > 0) {
        ssize_t n = ::pread(fd, data, size, (off_t)offset);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false; // error or short file (truncation)
        }
        data += n;
        size -= (size_t)n;
        offset += (uint64_t)n;
    }
    return true;
}

} // namespace

uint32_t
crc32(const uint8_t *data, size_t size, uint32_t seed)
{
    const auto &table = crcTable();
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

SpillStore::SpillStore(const Options &options)
    : budget_(options.budgetBytes)
{
    if (budget_ == 0)
        return;
    std::string tmpl =
        spillDirectory(options.dir) + "/archval-spill-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    int fd = ::mkstemp(buf.data());
    if (fd < 0)
        return; // unusable directory: store stays disabled
    fd_ = fd;
    path_.assign(buf.data());
}

SpillStore::~SpillStore()
{
    if (fd_ >= 0) {
        ::close(fd_);
        ::unlink(path_.c_str());
    }
}

int64_t
SpillStore::append(const uint8_t *data, size_t size)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0 || size == 0 || bytesWritten_ + size > budget_)
        return invalidId;
    Record rec;
    rec.offset = bytesWritten_;
    rec.size = size;
    rec.crc = crc32(data, size);
    if (!pwriteAll(fd_, data, size, rec.offset)) {
        // A failing disk will not get better one eviction later.
        ::close(fd_);
        ::unlink(path_.c_str());
        fd_ = -1;
        return invalidId;
    }
    bytesWritten_ += size;
    ++writes_;
    records_.push_back(rec);
    return (int64_t)records_.size() - 1;
}

bool
SpillStore::read(int64_t id, std::vector<uint8_t> &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    out.clear();
    ++reads_;
    if (fd_ < 0 || id < 0 || (size_t)id >= records_.size()) {
        ++readFailures_;
        return false;
    }
    const Record &rec = records_[(size_t)id];
    out.resize(rec.size);
    if (!preadAll(fd_, out.data(), rec.size, rec.offset) ||
        crc32(out.data(), out.size()) != rec.crc) {
        out.clear();
        ++readFailures_;
        return false;
    }
    return true;
}

uint64_t
SpillStore::writes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return writes_;
}

uint64_t
SpillStore::reads() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reads_;
}

uint64_t
SpillStore::readFailures() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return readFailures_;
}

size_t
SpillStore::bytesWritten() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytesWritten_;
}

bool
SpillStore::corruptRecordForTesting(int64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0 || id < 0 || (size_t)id >= records_.size())
        return false;
    const Record &rec = records_[(size_t)id];
    uint8_t byte = 0;
    if (!preadAll(fd_, &byte, 1, rec.offset))
        return false;
    byte ^= 0x40;
    return pwriteAll(fd_, &byte, 1, rec.offset);
}

bool
SpillStore::truncateAtRecordForTesting(int64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0 || id < 0 || (size_t)id >= records_.size())
        return false;
    return ::ftruncate(fd_, (off_t)records_[(size_t)id].offset) == 0;
}

namespace
{

/** Record-file header: [magic u32][version u32], little-endian. */
constexpr size_t kRecordHeaderBytes = 8;

void
putU32(uint8_t *out, uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<uint8_t>(value >> (8 * i));
}

void
putU64(uint8_t *out, uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<uint8_t>(value >> (8 * i));
}

uint32_t
getU32(const uint8_t *in)
{
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= uint32_t(in[i]) << (8 * i);
    return value;
}

uint64_t
getU64(const uint8_t *in)
{
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= uint64_t(in[i]) << (8 * i);
    return value;
}

} // namespace

RecordFileWriter::RecordFileWriter(const std::string &path,
                                   uint32_t magic, uint32_t version)
    : path_(path)
{
    std::string tmpl = path + ".tmpXXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    int fd = ::mkstemp(buf.data());
    if (fd < 0)
        return; // unusable directory: writer stays disabled
    fd_ = fd;
    tempPath_.assign(buf.data());
    uint8_t header[kRecordHeaderBytes];
    putU32(header, magic);
    putU32(header + 4, version);
    if (!pwriteAll(fd_, header, sizeof(header), 0)) {
        discard();
        return;
    }
    offset_ = sizeof(header);
}

RecordFileWriter::~RecordFileWriter()
{
    if (!committed_)
        discard();
}

void
RecordFileWriter::discard()
{
    if (fd_ >= 0) {
        ::close(fd_);
        ::unlink(tempPath_.c_str());
        fd_ = -1;
    }
}

bool
RecordFileWriter::append(const uint8_t *data, size_t size)
{
    if (fd_ < 0)
        return false;
    uint8_t prefix[12];
    putU64(prefix, size);
    putU32(prefix + 8, crc32(data, size));
    if (!pwriteAll(fd_, prefix, sizeof(prefix), offset_) ||
        !pwriteAll(fd_, data, size, offset_ + sizeof(prefix))) {
        discard(); // a failing disk will not improve mid-save
        return false;
    }
    offset_ += sizeof(prefix) + size;
    return true;
}

bool
RecordFileWriter::append(const std::vector<uint8_t> &record)
{
    return append(record.data(), record.size());
}

bool
RecordFileWriter::commit()
{
    if (fd_ < 0)
        return false;
    if (::fsync(fd_) != 0 ||
        ::rename(tempPath_.c_str(), path_.c_str()) != 0) {
        discard();
        return false;
    }
    ::close(fd_);
    fd_ = -1;
    committed_ = true;
    return true;
}

RecordFileReader::RecordFileReader(const std::string &path,
                                   uint32_t magic, uint32_t version)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return;
    off_t size = ::lseek(fd, 0, SEEK_END);
    uint8_t header[kRecordHeaderBytes];
    if (size < (off_t)sizeof(header) ||
        !preadAll(fd, header, sizeof(header), 0) ||
        getU32(header) != magic || getU32(header + 4) != version) {
        ::close(fd);
        return; // missing/foreign/stale: "no usable store"
    }
    fd_ = fd;
    fileSize_ = (uint64_t)size;
    offset_ = sizeof(header);
}

RecordFileReader::~RecordFileReader()
{
    if (fd_ >= 0)
        ::close(fd_);
}

RecordFileReader::Status
RecordFileReader::next(std::vector<uint8_t> &out)
{
    out.clear();
    if (fd_ < 0 || damaged_)
        return Status::Damaged;
    if (offset_ == fileSize_)
        return Status::End;
    uint8_t prefix[12];
    // Check the claimed length against what the file can actually
    // hold before allocating: a flipped bit in the size field must
    // read as damage, not as a gigabyte resize.
    if (fileSize_ - offset_ < sizeof(prefix)) {
        damaged_ = true;
        return Status::Damaged;
    }
    if (!preadAll(fd_, prefix, sizeof(prefix), offset_)) {
        damaged_ = true;
        return Status::Damaged;
    }
    const uint64_t size = getU64(prefix);
    const uint32_t crc = getU32(prefix + 8);
    if (size > kMaxRecordBytes ||
        size > fileSize_ - offset_ - sizeof(prefix)) {
        damaged_ = true;
        return Status::Damaged;
    }
    out.resize(size);
    if (!preadAll(fd_, out.data(), size, offset_ + sizeof(prefix)) ||
        crc32(out.data(), out.size()) != crc) {
        out.clear();
        damaged_ = true;
        return Status::Damaged;
    }
    offset_ += sizeof(prefix) + size;
    return Status::Record;
}

bool
corruptFileByteForTesting(const std::string &path, uint64_t offset)
{
    const int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0)
        return false;
    uint8_t byte = 0;
    bool ok = preadAll(fd, &byte, 1, offset);
    if (ok) {
        byte ^= 0x40;
        ok = pwriteAll(fd, &byte, 1, offset);
    }
    ::close(fd);
    return ok;
}

bool
truncateFileForTesting(const std::string &path, uint64_t keep_bytes)
{
    return ::truncate(path.c_str(),
                      static_cast<off_t>(keep_bytes)) == 0;
}

} // namespace archval
